(* Util.Codec: bit-exact round-trips and frame validation.

   The codec underwrites the artifact store's "warm run reproduces the
   cold run bitwise" guarantee, so the float round-trip checks compare
   IEEE bit patterns, not values. *)

module C = Util.Codec

let bits = Int64.bits_of_float

let roundtrip write read v =
  let e = C.encoder () in
  write e v;
  let d = C.decoder_of_string (C.contents e) in
  let v' = read d in
  C.expect_end d;
  v'

let test_int_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (roundtrip C.write_int C.read_int v))
    [ 0; 1; -1; 42; max_int; min_int; 1 lsl 40; -(1 lsl 40) ]

let test_i64_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check int64) (Int64.to_string v) v (roundtrip C.write_i64 C.read_i64 v))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x0123456789ABCDEFL ]

let test_bool_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check bool) "bool" v (roundtrip C.write_bool C.read_bool v))
    [ true; false ]

let test_float_bit_exact () =
  List.iter
    (fun v ->
      Alcotest.(check int64)
        (Printf.sprintf "%h" v)
        (bits v)
        (bits (roundtrip C.write_float C.read_float v)))
    [
      0.0; -0.0; 1.0; -1.0; Float.pi; 1e-300; -1e300; Float.epsilon; Float.infinity;
      Float.neg_infinity; Float.nan; Float.min_float; Float.max_float; 4.9e-324;
    ]

let test_string_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check string) "string" v (roundtrip C.write_string C.read_string v))
    [ ""; "x"; "hello"; String.init 256 Char.chr; String.make 10_000 '\xff' ]

let test_array_roundtrip () =
  let ia = Array.init 100 (fun i -> (i * 7919) - 50) in
  Alcotest.(check (array int)) "int array" ia (roundtrip C.write_int_array C.read_int_array ia);
  Alcotest.(check (array int)) "empty" [||] (roundtrip C.write_int_array C.read_int_array [||]);
  let fa = Array.init 100 (fun i -> sin (float_of_int i) *. 1e10) in
  let fa' = roundtrip C.write_float_array C.read_float_array fa in
  Array.iteri
    (fun i v -> Alcotest.(check int64) (Printf.sprintf "fa.(%d)" i) (bits v) (bits fa'.(i)))
    fa

let test_expect_end () =
  let e = C.encoder () in
  C.write_int e 1;
  C.write_int e 2;
  let d = C.decoder_of_string (C.contents e) in
  ignore (C.read_int d);
  match C.expect_end d with
  | () -> Alcotest.fail "expect_end accepted a half-read payload"
  | exception C.Corrupt _ -> ()

let frame_payload () =
  C.frame ~kind:"chol" ~version:3 (fun e ->
      C.write_int e 17;
      C.write_float_array e [| 1.5; -2.25; 1e-12 |];
      C.write_string e "ordering")

let read_back bytes =
  let d = C.unframe ~kind:"chol" ~version:3 bytes in
  let n = C.read_int d in
  let xs = C.read_float_array d in
  let s = C.read_string d in
  C.expect_end d;
  (n, xs, s)

let test_frame_roundtrip () =
  let n, xs, s = read_back (frame_payload ()) in
  Alcotest.(check int) "int through frame" 17 n;
  Alcotest.(check (array (float 0.0))) "floats through frame" [| 1.5; -2.25; 1e-12 |] xs;
  Alcotest.(check string) "string through frame" "ordering" s

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt" what
  | exception C.Corrupt _ -> ()

let read_back_payload d =
  let n = C.read_int d in
  let xs = C.read_float_array d in
  let s = C.read_string d in
  C.expect_end d;
  (n, xs, s)

let test_frame_validation () =
  let good = frame_payload () in
  expect_corrupt "wrong kind" (fun () -> C.unframe ~kind:"perm" ~version:3 good);
  expect_corrupt "older version" (fun () -> C.unframe ~kind:"chol" ~version:4 good);
  expect_corrupt "newer version" (fun () -> C.unframe ~kind:"chol" ~version:2 good);
  expect_corrupt "empty" (fun () -> C.unframe ~kind:"chol" ~version:3 "");
  (* truncation at every prefix length must be detected, never crash *)
  for len = 0 to String.length good - 1 do
    expect_corrupt
      (Printf.sprintf "truncated to %d" len)
      (fun () ->
        let d = C.unframe ~kind:"chol" ~version:3 (String.sub good 0 len) in
        ignore (read_back_payload d))
  done

let test_bit_flip_checksum () =
  let good = frame_payload () in
  (* flip one bit in every byte position: either the header check or the
     FNV-1a checksum must catch it *)
  for pos = 0 to String.length good - 1 do
    let b = Bytes.of_string good in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
    expect_corrupt
      (Printf.sprintf "bit flip at %d" pos)
      (fun () ->
        let d = C.unframe ~kind:"chol" ~version:3 (Bytes.to_string b) in
        read_back_payload d)
  done

let test_fnv1a_known () =
  (* standard FNV-1a 64 test vectors *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (C.fnv1a "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (C.fnv1a "a");
  Alcotest.(check int64) "foobar" 0x85944171f73967e8L (C.fnv1a "foobar")

let test_file_roundtrip () =
  let path = Filename.temp_file "codec_test" ".opra" in
  let payload = frame_payload () in
  C.write_file path payload;
  (match C.read_file path with
  | Some bytes -> Alcotest.(check string) "file round-trip" payload bytes
  | None -> Alcotest.fail "read_file returned None");
  Sys.remove path;
  Alcotest.(check bool) "missing file" true (C.read_file path = None)

let test_zero_length_file_is_corrupt () =
  (* Regression: a crash can leave a zero-length file under an artifact
     name (e.g. a journal entry opened but never written).  That is
     cache damage, not a miss: read_file must raise Corrupt — not
     return "" or None — so Store, Registry and the lint cache all take
     their drop-and-rebuild path. *)
  let path = Filename.temp_file "codec_test" ".opra" in
  (match C.read_file path with
  | exception C.Corrupt _ -> ()
  | Some _ -> Alcotest.fail "zero-length file read back as data"
  | None -> Alcotest.fail "zero-length file reported as a clean miss");
  Sys.remove path

let test_write_file_permissions () =
  (* temp_file creates 0600 scratch files; write_file must not leak that
     mode into the store — artifacts are shared-readable (0644 masked by
     the process umask) so cooperating shard processes under different
     users can replay each other's results. *)
  let path = Filename.temp_file "codec_perm" ".opra" in
  C.write_file path (frame_payload ());
  let umask =
    let m = Unix.umask 0o022 in
    ignore (Unix.umask m);
    m
  in
  let st = Unix.stat path in
  Alcotest.(check int) "mode is 0o644 masked by umask" (0o644 land lnot umask)
    (st.Unix.st_perm land 0o777);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "int round-trip" `Quick test_int_roundtrip;
    Alcotest.test_case "i64 round-trip" `Quick test_i64_roundtrip;
    Alcotest.test_case "bool round-trip" `Quick test_bool_roundtrip;
    Alcotest.test_case "float bit-exact round-trip" `Quick test_float_bit_exact;
    Alcotest.test_case "string round-trip" `Quick test_string_roundtrip;
    Alcotest.test_case "array round-trip" `Quick test_array_roundtrip;
    Alcotest.test_case "expect_end flags leftovers" `Quick test_expect_end;
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame validation" `Quick test_frame_validation;
    Alcotest.test_case "bit flips fail the checksum" `Quick test_bit_flip_checksum;
    Alcotest.test_case "fnv1a test vectors" `Quick test_fnv1a_known;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "zero-length file raises Corrupt" `Quick test_zero_length_file_is_corrupt;
    Alcotest.test_case "write_file chmods artifacts" `Quick test_write_file_permissions;
  ]
