(* The analysis service: admission queue, wire protocol, store
   lifecycle (LRU eviction + registry sweep), the in-process daemon
   end-to-end over a real Unix-domain socket, and crash safety of the
   `opera serve` subprocess (kill mid-request, restart, resubmit —
   bitwise identical response, journal replays covering every job that
   finished before the kill). *)

module J = Util.Json

(* ---- bounded queue ---------------------------------------------------- *)

let test_queue_order_and_capacity () =
  let q = Service.Queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Service.Queue.push q 1);
  Alcotest.(check bool) "push 2" true (Service.Queue.push q 2);
  Alcotest.(check bool) "push 3 rejected (full)" false (Service.Queue.push q 3);
  Alcotest.(check int) "length" 2 (Service.Queue.length q);
  Alcotest.(check (option int)) "pop 1 (FIFO)" (Some 1) (Service.Queue.pop q);
  Alcotest.(check bool) "push 4 after pop" true (Service.Queue.push q 4);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Service.Queue.pop q);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Service.Queue.pop q)

let test_queue_close () =
  let q = Service.Queue.create ~capacity:4 in
  Alcotest.(check bool) "push before close" true (Service.Queue.push q 1);
  Service.Queue.close q;
  Alcotest.(check bool) "push after close rejected" false (Service.Queue.push q 2);
  Alcotest.(check (option int)) "queued item still delivered" (Some 1) (Service.Queue.pop q);
  Alcotest.(check (option int)) "drained + closed -> None" None (Service.Queue.pop q);
  Alcotest.check_raises "capacity 0 refused"
    (Invalid_argument "Service.Queue.create: capacity must be >= 1") (fun () ->
      ignore (Service.Queue.create ~capacity:0))

let test_queue_blocking_pop () =
  let q = Service.Queue.create ~capacity:1 in
  let consumer = Domain.spawn (fun () -> Service.Queue.pop q) in
  (* The consumer blocks until this push wakes it. *)
  Unix.sleepf 0.02;
  Alcotest.(check bool) "push wakes consumer" true (Service.Queue.push q 42);
  Alcotest.(check (option int)) "consumer got the item" (Some 42) (Domain.join consumer);
  let q2 = Service.Queue.create ~capacity:1 in
  let consumer2 = Domain.spawn (fun () -> Service.Queue.pop q2) in
  Unix.sleepf 0.02;
  Service.Queue.close q2;
  Alcotest.(check (option int)) "close wakes consumer" None (Domain.join consumer2)

(* ---- protocol --------------------------------------------------------- *)

let dc_batch_doc () =
  J.Obj
    [
      ( "defaults",
        J.Obj
          [
            ("nodes", J.Num 60.0);
            ("order", J.Num 1.0);
            ("analysis", J.Str "dc");
            ("solver", J.Str "direct");
          ] );
      ( "jobs",
        J.List
          [
            J.Obj [ ("name", J.Str "a") ];
            J.Obj [ ("name", J.Str "b"); ("drain_scale", J.Num 1.25) ];
          ] );
    ]

let batch_line ?(reuse = true) doc =
  let fields = [ ("op", J.Str "batch"); ("batch", doc) ] in
  let fields = if reuse then fields else fields @ [ ("reuse", J.Bool false) ] in
  J.render (J.Obj fields)

let expect_error what line =
  match Service.Protocol.parse line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: parsed instead of failing" what

let test_protocol_parse () =
  (match Service.Protocol.parse {|{"op":"ping"}|} with
  | Ok Service.Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match Service.Protocol.parse {|{"op":"stats"}|} with
  | Ok Service.Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats");
  (match Service.Protocol.parse {|{"op":"shutdown"}|} with
  | Ok Service.Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown");
  (match Service.Protocol.parse (batch_line (dc_batch_doc ())) with
  | Ok (Service.Protocol.Batch { jobs; reuse }) ->
      Alcotest.(check int) "jobs parsed" 2 (Array.length jobs);
      Alcotest.(check bool) "reuse defaults on" true reuse
  | _ -> Alcotest.fail "batch");
  (match Service.Protocol.parse (batch_line ~reuse:false (dc_batch_doc ())) with
  | Ok (Service.Protocol.Batch { reuse; _ }) ->
      Alcotest.(check bool) "reuse:false honored" false reuse
  | _ -> Alcotest.fail "batch reuse:false");
  expect_error "not json" "{ nope";
  expect_error "missing op" {|{"batch":{}}|};
  expect_error "non-string op" {|{"op":7}|};
  expect_error "unknown op" {|{"op":"solve-everything"}|};
  expect_error "batch without document" {|{"op":"batch"}|};
  expect_error "batch with a bad document" {|{"op":"batch","batch":{"jobs":[{"nodez":1}]}}|};
  expect_error "batch with an empty document" {|{"op":"batch","batch":{"jobs":[]}}|}

let test_protocol_render () =
  (match J.parse Service.Protocol.pong with
  | Ok j -> Alcotest.(check bool) "pong has pong" true (J.member "pong" j <> None)
  | Error e -> Alcotest.failf "pong unparsable: %s" e);
  (match J.parse (Service.Protocol.done_line ~jobs:7) with
  | Ok j ->
      Alcotest.(check (option int)) "done jobs" (Some 7)
        (Option.bind (J.member "jobs" j) J.to_int)
  | Error e -> Alcotest.failf "done unparsable: %s" e);
  match J.parse (Service.Protocol.error_line "boom \"quoted\"") with
  | Ok j ->
      Alcotest.(check (option string)) "error roundtrip" (Some "boom \"quoted\"")
        (Option.bind (J.member "error" j) J.to_string)
  | Error e -> Alcotest.failf "error unparsable: %s" e

(* ---- store eviction / registry sweep ---------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "opera_service_test" "" in
  Sys.remove dir;
  let rm_rf () =
    if Sys.file_exists dir then begin
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:rm_rf (fun () -> f dir)

let set_mtime path t = Unix.utimes path t t

let build_artifact store ~key payload =
  Scenario.Store.find_or_build store ~kind:"blob" ~version:1 ~key
    ~encode:(fun v e -> Util.Codec.write_string e v)
    ~decode:Util.Codec.read_string
    ~build:(fun () -> payload)

let test_store_evict_lru () =
  with_temp_dir (fun dir ->
      let metrics = Util.Metrics.create () in
      let store = Scenario.Store.create ~metrics ~dir:(Some dir) () in
      ignore (build_artifact store ~key:"old" (String.make 100 'a'));
      ignore (build_artifact store ~key:"mid" (String.make 100 'b'));
      ignore (build_artifact store ~key:"new" (String.make 100 'c'));
      let file key = Filename.concat dir (Scenario.Store.file_name ~kind:"blob" ~key) in
      set_mtime (file "old") 1000.0;
      set_mtime (file "mid") 2000.0;
      set_mtime (file "new") 3000.0;
      let total =
        Array.fold_left
          (fun acc f -> acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
          0 (Sys.readdir dir)
      in
      (* Budget for exactly one artifact: the two oldest go. *)
      let removed = Scenario.Store.evict store ~max_bytes:(total / 3) () in
      Alcotest.(check int) "evicted the two oldest" 2 removed;
      Alcotest.(check bool) "oldest gone" false (Sys.file_exists (file "old"));
      Alcotest.(check bool) "middle gone" false (Sys.file_exists (file "mid"));
      Alcotest.(check bool) "newest survives" true (Sys.file_exists (file "new"));
      Alcotest.(check int) "store.evicted counter" 2
        (Util.Metrics.counter metrics "store.evicted");
      Alcotest.(check int) "already under budget: no-op" 0
        (Scenario.Store.evict store ~max_bytes:(total / 3) ()))

let test_store_evict_protect () =
  with_temp_dir (fun dir ->
      let store = Scenario.Store.create ~metrics:(Util.Metrics.create ()) ~dir:(Some dir) () in
      ignore (build_artifact store ~key:"old" (String.make 100 'a'));
      ignore (build_artifact store ~key:"new" (String.make 100 'b'));
      let file key = Filename.concat dir (Scenario.Store.file_name ~kind:"blob" ~key) in
      set_mtime (file "old") 1000.0;
      set_mtime (file "new") 2000.0;
      let protected_ = Scenario.Store.file_name ~kind:"blob" ~key:"old" in
      let removed =
        Scenario.Store.evict store ~max_bytes:1 ~protect:(fun f -> f = protected_) ()
      in
      (* The LRU pick is shielded, so the axe falls on the newer file. *)
      Alcotest.(check int) "one eviction" 1 removed;
      Alcotest.(check bool) "protected LRU file survives" true (Sys.file_exists (file "old"));
      Alcotest.(check bool) "unprotected file evicted" false (Sys.file_exists (file "new")))

let test_store_touch_on_hit () =
  with_temp_dir (fun dir ->
      let store = Scenario.Store.create ~metrics:(Util.Metrics.create ()) ~dir:(Some dir) () in
      ignore (build_artifact store ~key:"k" "payload");
      let file = Filename.concat dir (Scenario.Store.file_name ~kind:"blob" ~key:"k") in
      set_mtime file 1000.0;
      Alcotest.(check string) "hit returns the artifact" "payload"
        (build_artifact store ~key:"k" "IGNORED: must come from the cache");
      Alcotest.(check bool) "hit refreshed the mtime (LRU clock)" true
        ((Unix.stat file).Unix.st_mtime > 1000.0))

let dc_job name drain_scale =
  {
    Scenario.Job.name;
    source = Scenario.Job.Generated { nodes = 60 };
    analysis = Scenario.Job.Dc;
    order = 1;
    h = 125e-12;
    steps = 1;
    solver = Opera.Galerkin.Direct;
    policy = Opera.Galerkin.Warn;
    sigma_scale = 1.0;
    drain_scale;
    leak_scale = 1.0;
    probe = None;
  }

let test_registry_sweep () =
  with_temp_dir (fun dir ->
      let registry = Scenario.Registry.create ~dir:(Some dir) () in
      let jobs = [| dc_job "a" 1.0; dc_job "b" 1.1; dc_job "c" 1.2 |] in
      Array.iter (fun j -> Scenario.Registry.record registry j (J.Str j.Scenario.Job.name)) jobs;
      Array.iteri
        (fun i j ->
          match Scenario.Registry.path registry j with
          | Some p -> set_mtime p (1000.0 +. (1000.0 *. float_of_int i))
          | None -> Alcotest.fail "registry path missing")
        jobs;
      Alcotest.(check int) "under the cap: no-op" 0
        (Scenario.Registry.sweep registry ~max_entries:3);
      Alcotest.(check int) "sweep drops the two oldest" 2
        (Scenario.Registry.sweep registry ~max_entries:1);
      Alcotest.(check bool) "oldest entry gone" true
        (Scenario.Registry.lookup registry jobs.(0) = None);
      Alcotest.(check bool) "newest entry survives" true
        (Scenario.Registry.lookup registry jobs.(2) = Some (J.Str "c")))

(* ---- in-process daemon over a real socket ----------------------------- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when n > 0 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (n - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  go 200

let disconnect c =
  flush c.oc;
  Unix.close c.fd

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let is_terminator line =
  match J.parse line with
  | Error _ -> true
  | Ok j ->
      List.exists (fun k -> J.member k j <> None) [ "done"; "error"; "pong"; "stats"; "ok" ]

(* One request/response exchange: (records, terminator line). *)
let rpc c line =
  send c line;
  let rec go acc =
    let l = input_line c.ic in
    if is_terminator l then (List.rev acc, l) else go (l :: acc)
  in
  go []

let stats_counter c name =
  let _, line = rpc c {|{"op":"stats"}|} in
  match J.parse line with
  | Ok j -> (
      match Option.bind (J.member "stats" j) (J.member name) with
      | Some v -> Option.value ~default:0 (Option.bind (J.member "value" v) J.to_int)
      | None -> 0)
  | Error e -> Alcotest.failf "stats unparsable: %s" e

let temp_sock () =
  let p = Filename.temp_file "opera_service" ".sock" in
  Sys.remove p;
  p

let server_config ~sock ~cache_dir =
  {
    Service.Server.default_config with
    Service.Server.listen = sock;
    cache_dir;
    metrics = Util.Metrics.create ();
    handle_signals = false;
  }

let with_server config f =
  let server = Domain.spawn (fun () -> Service.Server.run config) in
  let finish () =
    (* Idempotent: tests that already shut the server down just join. *)
    (try
       let c = connect config.Service.Server.listen in
       ignore (rpc c {|{"op":"shutdown"}|});
       disconnect c
     with Unix.Unix_error (_, _, _) | Sys_error _ | End_of_file -> ());
    Domain.join server
  in
  Fun.protect ~finally:finish f

let test_serve_ping_and_errors () =
  let sock = temp_sock () in
  with_server (server_config ~sock ~cache_dir:None) (fun () ->
      let c = connect sock in
      let _, pong = rpc c {|{"op":"ping"}|} in
      Alcotest.(check string) "pong" Service.Protocol.pong pong;
      let _, err = rpc c {|{"op":"frobnicate"}|} in
      Alcotest.(check bool) "unknown op -> error line" true
        (match J.parse err with Ok j -> J.member "error" j <> None | Error _ -> false);
      let _, err2 = rpc c "not json at all" in
      Alcotest.(check bool) "garbage -> error line" true
        (match J.parse err2 with Ok j -> J.member "error" j <> None | Error _ -> false);
      (* The connection survives bad requests. *)
      let _, pong2 = rpc c {|{"op":"ping"}|} in
      Alcotest.(check string) "still serving" Service.Protocol.pong pong2;
      disconnect c)

let test_serve_warm_replay_bitwise () =
  let sock = temp_sock () in
  with_temp_dir (fun cache ->
      with_server (server_config ~sock ~cache_dir:(Some cache)) (fun () ->
          let c = connect sock in
          let line = batch_line (dc_batch_doc ()) in
          let cold_records, cold_done = rpc c line in
          Alcotest.(check int) "cold records" 2 (List.length cold_records);
          Alcotest.(check string) "done line" (Service.Protocol.done_line ~jobs:2) cold_done;
          let f_cold = stats_counter c "engine.factorizations" in
          Alcotest.(check bool) "cold run factored" true (f_cold > 0);

          (* Warm resubmission: zero factorizations, zero solves, the
             bytes of the cold response. *)
          let warm_records, warm_done = rpc c line in
          Alcotest.(check (list string)) "warm records bitwise" cold_records warm_records;
          Alcotest.(check string) "warm done line" cold_done warm_done;
          Alcotest.(check int) "no new factorizations" f_cold
            (stats_counter c "engine.factorizations");
          Alcotest.(check int) "both jobs replayed" 2 (stats_counter c "service.replays");
          Alcotest.(check int) "registry.replays" 2 (stats_counter c "registry.replays");
          Alcotest.(check int) "two requests served" 2 (stats_counter c "service.requests");

          (* reuse:false opts out of replay but not determinism. *)
          let fresh_records, _ = rpc c (batch_line ~reuse:false (dc_batch_doc ())) in
          Alcotest.(check (list string)) "reuse:false still bitwise" cold_records fresh_records;
          Alcotest.(check int) "reuse:false did not replay" 2
            (stats_counter c "service.replays");
          disconnect c))

let test_serve_eviction_keeps_replay_alive () =
  let sock = temp_sock () in
  with_temp_dir (fun cache ->
      let config =
        {
          (server_config ~sock ~cache_dir:(Some cache)) with
          Service.Server.cache_max_bytes = Some 1;
          (* sweep every request, generous entry cap *)
          max_results = Some 16;
          gc_every = 1;
        }
      in
      with_server config (fun () ->
          let c = connect sock in
          let line = batch_line (dc_batch_doc ()) in
          let cold_records, _ = rpc c line in
          (* A 1-byte budget evicts every artifact except the protected
             journal entries of the request itself; eviction runs after
             the response, so sync through a second request. *)
          let warm_records, _ = rpc c line in
          Alcotest.(check (list string)) "warm replay after eviction" cold_records warm_records;
          let kinds =
            Sys.readdir cache |> Array.to_list
            |> List.filter (fun f -> not (String.starts_with ~prefix:"result-" f))
          in
          Alcotest.(check (list string)) "only journal entries survive the 1-byte budget" []
            kinds;
          Alcotest.(check int) "replays came from the journal" 2
            (stats_counter c "service.replays");
          disconnect c))

(* ---- crash safety of the real subprocess ------------------------------ *)

let exe = "../bin/opera_cli.exe"

let spawn_server args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process exe (Array.of_list (exe :: args)) devnull devnull devnull)

let transient_batch_doc () =
  J.Obj
    [
      ( "defaults",
        J.Obj
          [
            ("nodes", J.Num 120.0);
            ("order", J.Num 2.0);
            ("analysis", J.Str "transient");
            ("solver", J.Str "direct");
            ("steps", J.Num 3.0);
            ("step_ps", J.Num 125.0);
          ] );
      ( "jobs",
        J.List
          (List.init 6 (fun i ->
               J.Obj
                 [
                   ("name", J.Str (Printf.sprintf "t%d" i));
                   ("drain_scale", J.Num (0.8 +. (0.05 *. float_of_int i)));
                 ])) );
    ]

(* The uninterrupted reference: the same batch through the engine
   directly (records are deterministic, so no cache or server is
   needed to know what the daemon must stream). *)
let reference_records doc =
  match Scenario.Job.batch_of_json doc with
  | Error e -> Alcotest.failf "reference batch: %s" e
  | Ok jobs ->
      let config =
        {
          Scenario.Engine.default_config with
          Scenario.Engine.metrics = Util.Metrics.create ();
        }
      in
      let results, _ = Scenario.Engine.run ~config jobs in
      Array.to_list (Array.map (fun r -> J.render r.Scenario.Engine.record) results)

let test_crash_restart_resubmit_bitwise () =
  let sock = temp_sock () in
  with_temp_dir (fun cache ->
      let doc = transient_batch_doc () in
      let expected = reference_records doc in
      let line = batch_line doc in
      let njobs = List.length expected in
      let kill_after = 2 in

      (* First server: read a prefix of the stream, then SIGKILL it
         mid-request. *)
      let pid1 = spawn_server [ "serve"; "--listen"; sock; "--cache-dir"; cache ] in
      let c1 = connect sock in
      send c1 line;
      let prefix = List.init kill_after (fun _ -> input_line c1.ic) in
      Alcotest.(check (list string)) "prefix matches the reference"
        (List.filteri (fun i _ -> i < kill_after) expected)
        prefix;
      Unix.kill pid1 Sys.sigkill;
      ignore (Unix.waitpid [] pid1);
      (try Unix.close c1.fd with Unix.Unix_error (_, _, _) -> ());

      (* Second server on the same cache dir (reclaiming the stale
         socket file the kill left behind): the resubmission must
         stream the reference bitwise, replaying every job the first
         server finished. *)
      let pid2 = spawn_server [ "serve"; "--listen"; sock; "--cache-dir"; cache ] in
      let c2 = connect sock in
      let records, done_line = rpc c2 line in
      Alcotest.(check (list string)) "resubmitted response bitwise" expected records;
      Alcotest.(check string) "done line" (Service.Protocol.done_line ~jobs:njobs) done_line;
      let replays = stats_counter c2 "registry.replays" in
      let writes = stats_counter c2 "registry.writes" in
      Alcotest.(check bool)
        (Printf.sprintf "journal replays (%d) cover the streamed prefix" replays)
        true (replays >= kill_after);
      Alcotest.(check int) "replays + re-runs cover the batch" njobs (replays + writes);

      (* And a third submission is pure replay. *)
      let again, _ = rpc c2 line in
      Alcotest.(check (list string)) "full replay after recovery" expected again;
      Alcotest.(check int) "every job replayed" (replays + writes + njobs)
        (stats_counter c2 "registry.replays" + writes);
      let _, ack = rpc c2 {|{"op":"shutdown"}|} in
      Alcotest.(check string) "shutdown ack" Service.Protocol.shutdown_ack ack;
      disconnect c2;
      ignore (Unix.waitpid [] pid2))

let test_sigterm_drains_and_cleans_up () =
  let sock = temp_sock () in
  with_temp_dir (fun cache ->
      let pid = spawn_server [ "serve"; "--listen"; sock; "--cache-dir"; cache ] in
      let c = connect sock in
      let _, pong = rpc c {|{"op":"ping"}|} in
      Alcotest.(check string) "alive before SIGTERM" Service.Protocol.pong pong;
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "SIGTERM drain exited %d" n
      | Unix.WSIGNALED s -> Alcotest.failf "died on signal %d instead of draining" s
      | Unix.WSTOPPED _ -> Alcotest.fail "stopped?");
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock);
      try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())

let suite =
  [
    Alcotest.test_case "queue: FIFO order and capacity" `Quick test_queue_order_and_capacity;
    Alcotest.test_case "queue: close semantics" `Quick test_queue_close;
    Alcotest.test_case "queue: blocking pop" `Quick test_queue_blocking_pop;
    Alcotest.test_case "protocol: request parsing" `Quick test_protocol_parse;
    Alcotest.test_case "protocol: response rendering" `Quick test_protocol_render;
    Alcotest.test_case "store: LRU byte-capped eviction" `Quick test_store_evict_lru;
    Alcotest.test_case "store: eviction honors protect" `Quick test_store_evict_protect;
    Alcotest.test_case "store: hits refresh the LRU clock" `Quick test_store_touch_on_hit;
    Alcotest.test_case "registry: count-capped sweep" `Quick test_registry_sweep;
    Alcotest.test_case "serve: ping and malformed requests" `Quick test_serve_ping_and_errors;
    Alcotest.test_case "serve: warm replay is bitwise and solve-free" `Slow
      test_serve_warm_replay_bitwise;
    Alcotest.test_case "serve: eviction spares the journal" `Slow
      test_serve_eviction_keeps_replay_alive;
    Alcotest.test_case "serve: kill, restart, resubmit bitwise" `Slow
      test_crash_restart_resubmit_bitwise;
    Alcotest.test_case "serve: SIGTERM drains and exits 0" `Slow
      test_sigterm_drains_and_cleans_up;
  ]
