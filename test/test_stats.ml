(* Online statistics, batch statistics, histogram, KS, PCA, Gram-Charlier. *)

let test_online_against_batch () =
  let rng = Helpers.rng () in
  let xs = Array.init 5000 (fun _ -> Prob.Rng.float_range rng (-3.0) 7.0) in
  let acc = Prob.Stats.Online.create () in
  Array.iter (Prob.Stats.Online.add acc) xs;
  Helpers.check_close ~rtol:1e-10 "mean" (Prob.Stats.mean xs) (Prob.Stats.Online.mean acc);
  Helpers.check_close ~rtol:1e-9 "variance" (Prob.Stats.variance xs)
    (Prob.Stats.Online.variance acc);
  Alcotest.(check int) "count" 5000 (Prob.Stats.Online.count acc)

let test_online_merge () =
  let rng = Helpers.rng () in
  let xs = Array.init 1000 (fun _ -> Prob.Rng.gaussian rng) in
  let ys = Array.init 700 (fun _ -> 2.0 +. Prob.Rng.gaussian rng) in
  let all = Array.append xs ys in
  let a = Prob.Stats.Online.create () and b = Prob.Stats.Online.create () in
  Array.iter (Prob.Stats.Online.add a) xs;
  Array.iter (Prob.Stats.Online.add b) ys;
  let merged = Prob.Stats.Online.merge a b in
  let direct = Prob.Stats.Online.create () in
  Array.iter (Prob.Stats.Online.add direct) all;
  Helpers.check_close ~rtol:1e-9 "merged mean" (Prob.Stats.Online.mean direct)
    (Prob.Stats.Online.mean merged);
  Helpers.check_close ~rtol:1e-8 "merged variance" (Prob.Stats.Online.variance direct)
    (Prob.Stats.Online.variance merged);
  Helpers.check_close ~rtol:1e-6 "merged skewness" (Prob.Stats.Online.skewness direct)
    (Prob.Stats.Online.skewness merged);
  Helpers.check_close ~rtol:1e-6 "merged kurtosis" (Prob.Stats.Online.kurtosis_excess direct)
    (Prob.Stats.Online.kurtosis_excess merged)

let test_online_moments_exact () =
  (* Two-point distribution {0, 1}: known central moments. *)
  let acc = Prob.Stats.Online.create () in
  for _ = 1 to 50 do
    Prob.Stats.Online.add acc 0.0;
    Prob.Stats.Online.add acc 1.0
  done;
  Helpers.check_float ~eps:1e-12 "mean" 0.5 (Prob.Stats.Online.mean acc);
  Helpers.check_float ~eps:1e-12 "variance" 0.25 (Prob.Stats.Online.variance acc);
  Helpers.check_float ~eps:1e-10 "skewness" 0.0 (Prob.Stats.Online.skewness acc);
  Helpers.check_float ~eps:1e-10 "kurtosis" (-2.0) (Prob.Stats.Online.kurtosis_excess acc)

let test_quantile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Helpers.check_float "median" 3.0 (Prob.Stats.quantile xs 0.5);
  Helpers.check_float "min" 1.0 (Prob.Stats.quantile xs 0.0);
  Helpers.check_float "max" 5.0 (Prob.Stats.quantile xs 1.0);
  Helpers.check_float "interpolated" 1.5 (Prob.Stats.quantile xs 0.125)

let test_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Helpers.check_float ~eps:1e-12 "self correlation" 1.0 (Prob.Stats.correlation xs xs);
  Helpers.check_float ~eps:1e-12 "anti correlation" (-1.0)
    (Prob.Stats.correlation xs (Array.map (fun v -> -.v) xs))

let test_histogram_basic () =
  let h = Prob.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Prob.Histogram.add_all h [| 0.5; 1.5; 1.6; 9.5; 100.0; -5.0 |];
  Alcotest.(check int) "count" 6 (Prob.Histogram.count h);
  let counts = Prob.Histogram.counts h in
  Alcotest.(check int) "bin 0 (incl clamped low)" 2 counts.(0);
  Alcotest.(check int) "bin 1" 2 counts.(1);
  Alcotest.(check int) "bin 9 (incl clamped high)" 2 counts.(9);
  Helpers.check_float ~eps:1e-9 "bin center" 1.5 (Prob.Histogram.bin_center h 1);
  let pct = Prob.Histogram.percentages h in
  Helpers.check_float ~eps:1e-9 "percentages sum to 100" 100.0 (Array.fold_left ( +. ) 0.0 pct)

let test_histogram_gap () =
  let a = Prob.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  let b = Prob.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Prob.Histogram.add_all a [| 0.25; 0.25; 0.75; 0.75 |];
  Prob.Histogram.add_all b [| 0.25; 0.75; 0.75; 0.75 |];
  Helpers.check_float ~eps:1e-9 "max gap" 25.0 (Prob.Histogram.max_percentage_gap a b)

let test_ks_same_distribution () =
  let rng = Prob.Rng.create ~seed:11L () in
  let xs = Array.init 800 (fun _ -> Prob.Rng.gaussian rng) in
  let ys = Array.init 800 (fun _ -> Prob.Rng.gaussian rng) in
  let p = Prob.Ks.p_value xs ys in
  Alcotest.(check bool) (Printf.sprintf "same dist accepted (p=%.3f)" p) true (p > 0.01)

let test_ks_different_distribution () =
  let rng = Prob.Rng.create ~seed:11L () in
  let xs = Array.init 800 (fun _ -> Prob.Rng.gaussian rng) in
  let ys = Array.init 800 (fun _ -> 1.0 +. Prob.Rng.gaussian rng) in
  let p = Prob.Ks.p_value xs ys in
  Alcotest.(check bool) (Printf.sprintf "shifted dist rejected (p=%.2g)" p) true (p < 1e-6)

let test_pca_decorrelates () =
  (* Correlated 2D Gaussian: xi2 = 0.8 xi1 + 0.6 eta. *)
  let rng = Prob.Rng.create ~seed:21L () in
  let samples =
    Array.init 5000 (fun _ ->
        let x = Prob.Rng.gaussian rng in
        let e = Prob.Rng.gaussian rng in
        [| x; (0.8 *. x) +. (0.6 *. e) |])
  in
  let pca = Prob.Pca.of_samples samples in
  let transformed = Array.map (Prob.Pca.transform pca) samples in
  let c01 =
    Prob.Stats.correlation (Array.map (fun s -> s.(0)) transformed)
      (Array.map (fun s -> s.(1)) transformed)
  in
  Alcotest.(check bool) "transformed components uncorrelated" true (Float.abs c01 < 0.05);
  (* Total variance preserved. *)
  let total_before =
    Prob.Stats.variance (Array.map (fun s -> s.(0)) samples)
    +. Prob.Stats.variance (Array.map (fun s -> s.(1)) samples)
  in
  let total_after = Array.fold_left ( +. ) 0.0 pca.Prob.Pca.variances in
  Helpers.check_close ~rtol:1e-6 "variance preserved" total_before total_after

let test_pca_roundtrip () =
  let pca =
    Prob.Pca.of_covariance ~mean:[| 1.0; -2.0 |]
      (Linalg.Dense.of_arrays [| [| 2.0; 0.3 |]; [| 0.3; 1.0 |] |])
  in
  let x = [| 0.7; 0.1 |] in
  let back = Prob.Pca.inverse_transform pca (Prob.Pca.transform pca x) in
  Helpers.check_vec ~eps:1e-10 "inverse_transform . transform = id" x back

let test_gram_charlier_gaussian_limit () =
  (* With Gaussian moments the expansions reduce to the normal pdf. *)
  let m = { Prob.Gram_charlier.mean = 0.3; variance = 4.0; skewness = 0.0; kurtosis_excess = 0.0 } in
  List.iter
    (fun x ->
      let expected = Prob.Normal.pdf ((x -. 0.3) /. 2.0) /. 2.0 in
      Helpers.check_float ~eps:1e-12 "gram-charlier" expected (Prob.Gram_charlier.gram_charlier_pdf m x);
      Helpers.check_float ~eps:1e-12 "edgeworth" expected (Prob.Gram_charlier.edgeworth_pdf m x))
    [ -3.0; 0.0; 0.3; 2.5 ]

let test_gram_charlier_integrates_to_one () =
  let m =
    { Prob.Gram_charlier.mean = 0.0; variance = 1.0; skewness = 0.4; kurtosis_excess = 0.5 }
  in
  (* Trapezoid over [-8, 8]. *)
  let n = 4000 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let x = -8.0 +. (16.0 *. float_of_int i /. float_of_int n) in
    acc := !acc +. (Prob.Gram_charlier.gram_charlier_pdf m x *. 16.0 /. float_of_int n)
  done;
  Helpers.check_float ~eps:1e-6 "integrates to 1" 1.0 !acc

let test_hermite_he () =
  Helpers.check_float "He_0" 1.0 (Prob.Gram_charlier.hermite_he 0 1.7);
  Helpers.check_float "He_1" 1.7 (Prob.Gram_charlier.hermite_he 1 1.7);
  Helpers.check_float ~eps:1e-12 "He_3(x) = x^3 - 3x" ((1.7 ** 3.0) -. (3.0 *. 1.7))
    (Prob.Gram_charlier.hermite_he 3 1.7)

let test_distributions_moments () =
  let rng = Prob.Rng.create ~seed:31L () in
  let check dist =
    let acc = Prob.Stats.Online.create () in
    for _ = 1 to 100_000 do
      Prob.Stats.Online.add acc (Prob.Distributions.sample rng dist)
    done;
    let mu = Prob.Distributions.mean dist and var = Prob.Distributions.variance dist in
    let name = Prob.Distributions.name dist in
    Helpers.check_float ~eps:(0.03 *. (1.0 +. Float.abs mu)) (name ^ " mean") mu
      (Prob.Stats.Online.mean acc);
    Helpers.check_float ~eps:(0.08 *. (1.0 +. var)) (name ^ " variance") var
      (Prob.Stats.Online.variance acc)
  in
  check (Prob.Distributions.Gaussian { mu = 2.0; sigma = 1.5 });
  check (Prob.Distributions.Lognormal { mu = 0.0; sigma = 0.4 });
  check (Prob.Distributions.Uniform { lo = -1.0; hi = 3.0 });
  check (Prob.Distributions.Exponential { rate = 2.0 });
  check (Prob.Distributions.Gamma { shape = 3.0; scale = 0.5 });
  check (Prob.Distributions.Beta { alpha = 2.0; beta = 5.0 })

let test_distribution_pdfs_normalized () =
  (* Crude quadrature check that each pdf integrates to ~1. *)
  let integrate lo hi dist =
    let n = 20000 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let x = lo +. ((hi -. lo) *. (float_of_int i +. 0.5) /. float_of_int n) in
      acc := !acc +. (Prob.Distributions.pdf dist x *. (hi -. lo) /. float_of_int n)
    done;
    !acc
  in
  Helpers.check_float ~eps:1e-4 "gaussian pdf" 1.0
    (integrate (-10.0) 10.0 (Prob.Distributions.Gaussian { mu = 0.0; sigma = 1.0 }));
  Helpers.check_float ~eps:1e-3 "lognormal pdf" 1.0
    (integrate 1e-6 50.0 (Prob.Distributions.Lognormal { mu = 0.0; sigma = 0.5 }));
  Helpers.check_float ~eps:1e-4 "gamma pdf" 1.0
    (integrate 1e-9 60.0 (Prob.Distributions.Gamma { shape = 2.0; scale = 1.5 }));
  Helpers.check_float ~eps:1e-3 "beta pdf" 1.0
    (integrate 1e-9 (1.0 -. 1e-9) (Prob.Distributions.Beta { alpha = 2.0; beta = 3.0 }))

let suite =
  [
    Alcotest.test_case "online vs batch" `Quick test_online_against_batch;
    Alcotest.test_case "online merge" `Quick test_online_merge;
    Alcotest.test_case "online exact moments" `Quick test_online_moments_exact;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "correlation" `Quick test_correlation;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basic;
    Alcotest.test_case "histogram gap" `Quick test_histogram_gap;
    Alcotest.test_case "ks same" `Slow test_ks_same_distribution;
    Alcotest.test_case "ks different" `Slow test_ks_different_distribution;
    Alcotest.test_case "pca decorrelates" `Slow test_pca_decorrelates;
    Alcotest.test_case "pca roundtrip" `Quick test_pca_roundtrip;
    Alcotest.test_case "gram-charlier gaussian limit" `Quick test_gram_charlier_gaussian_limit;
    Alcotest.test_case "gram-charlier normalization" `Quick test_gram_charlier_integrates_to_one;
    Alcotest.test_case "hermite he" `Quick test_hermite_he;
    Alcotest.test_case "distribution moments" `Slow test_distributions_moments;
    Alcotest.test_case "distribution pdfs normalized" `Slow test_distribution_pdfs_normalized;
  ]
