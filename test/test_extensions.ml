(* Extensions beyond the paper's core experiment: Sobol indices, Halton
   QMC, random-walk solver, AMG, spatial KL variation, RLC, non-Gaussian
   chaos. *)

let vdd = 1.2

(* ---- Sobol indices --------------------------------------------------- *)

let test_sobol_linear_mix () =
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  (* x = 3 xi0 + 4 xi1 + 2 xi0 xi1 : variances 9 + 16 + 4 = 29 *)
  let coefs = Array.make 6 0.0 in
  coefs.(1) <- 3.0;
  coefs.(2) <- 4.0;
  coefs.(4) <- 2.0;
  let x = Polychaos.Pce.create basis coefs in
  Helpers.check_float ~eps:1e-12 "main 0" (9.0 /. 29.0) (Polychaos.Sobol.main_effect x 0);
  Helpers.check_float ~eps:1e-12 "main 1" (16.0 /. 29.0) (Polychaos.Sobol.main_effect x 1);
  Helpers.check_float ~eps:1e-12 "total 0" (13.0 /. 29.0) (Polychaos.Sobol.total_effect x 0);
  Helpers.check_float ~eps:1e-12 "total 1" (20.0 /. 29.0) (Polychaos.Sobol.total_effect x 1);
  Helpers.check_float ~eps:1e-12 "interaction" (4.0 /. 29.0) (Polychaos.Sobol.interaction_share x);
  (* mains + interactions = 1 for 2 variables *)
  Helpers.check_float ~eps:1e-12 "partition of unity" 1.0
    (Polychaos.Sobol.main_effect x 0 +. Polychaos.Sobol.main_effect x 1
    +. Polychaos.Sobol.interaction_share x)

let test_sobol_on_grid_response () =
  (* On the paper's model, xiG (conductance) should dominate the voltage
     variance against xiL: conductance shifts move IR drops directly. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let probe = Powergrid.Grid_gen.center_node spec in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] } in
  let response, _ = Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps:6 in
  let pce = Opera.Response.pce_at response ~node:probe ~step:4 in
  let tg = Polychaos.Sobol.total_effect pce 0 and tl = Polychaos.Sobol.total_effect pce 1 in
  Alcotest.(check bool)
    (Printf.sprintf "indices sum to ~1 (%.3f)" (tg +. tl))
    true
    (tg +. tl > 0.95 && tg +. tl < 1.05);
  Alcotest.(check bool) "report renders" true
    (String.length (Polychaos.Sobol.report ~names:[| "xiG"; "xiL" |] pce) > 0)

(* ---- Halton ---------------------------------------------------------- *)

let test_halton_first_points () =
  let h = Prob.Halton.create ~skip:0 ~dim:2 () in
  let p1 = Prob.Halton.next h in
  Helpers.check_float ~eps:1e-15 "base2 of 1" 0.5 p1.(0);
  Helpers.check_float ~eps:1e-15 "base3 of 1" (1.0 /. 3.0) p1.(1);
  let p2 = Prob.Halton.next h in
  Helpers.check_float ~eps:1e-15 "base2 of 2" 0.25 p2.(0);
  Helpers.check_float ~eps:1e-15 "base3 of 2" (2.0 /. 3.0) p2.(1)

let test_halton_uniformity () =
  let h = Prob.Halton.create ~dim:3 () in
  let n = 4000 in
  let acc = Array.init 3 (fun _ -> Prob.Stats.Online.create ()) in
  for _ = 1 to n do
    let p = Prob.Halton.next h in
    Array.iteri (fun d v -> Prob.Stats.Online.add acc.(d) v) p
  done;
  Array.iteri
    (fun d a ->
      Helpers.check_float ~eps:0.005 (Printf.sprintf "dim %d mean" d) 0.5
        (Prob.Stats.Online.mean a);
      Helpers.check_float ~eps:0.01 (Printf.sprintf "dim %d var" d) (1.0 /. 12.0)
        (Prob.Stats.Online.variance a))
    acc

let test_halton_gaussian () =
  let h = Prob.Halton.create ~dim:2 () in
  let acc = Prob.Stats.Online.create () in
  for _ = 1 to 4000 do
    let p = Prob.Halton.next_gaussian h in
    Prob.Stats.Online.add acc p.(0)
  done;
  Helpers.check_float ~eps:0.02 "gaussian mean" 0.0 (Prob.Stats.Online.mean acc);
  Helpers.check_float ~eps:0.05 "gaussian var" 1.0 (Prob.Stats.Online.variance acc)

(* ---- Random walk ----------------------------------------------------- *)

let walk_circuit () =
  (* Small grid with a DC drain so the walk has motel costs. *)
  let r n1 n2 =
    { Powergrid.Circuit.rnode1 = n1; rnode2 = n2; ohms = 1.0; rkind = Powergrid.Circuit.Metal }
  in
  Powergrid.Circuit.make ~num_nodes:4
    ~resistors:[ r 0 1; r 1 2; r 2 3; r 3 0; r 0 2 ]
    ~capacitors:[]
    ~isources:[ { Powergrid.Circuit.inode = 2; wave = Powergrid.Waveform.Dc 0.05; region = 0 } ]
    ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = vdd; series_ohms = 0.5 } ]
    ()

let test_random_walk_matches_direct () =
  let a = Powergrid.Mna.assemble (walk_circuit ()) in
  let exact = Powergrid.Dc.solve a in
  let walk = Powergrid.Random_walk.prepare a ~time:0.0 in
  let rng = Prob.Rng.create ~seed:5L () in
  for node = 0 to 3 do
    let est, stderr = Powergrid.Random_walk.estimate walk rng ~node ~walks:20000 in
    Alcotest.(check bool)
      (Printf.sprintf "node %d: |%.5f - %.5f| within 5 stderr (%.2g)" node est exact.(node) stderr)
      true
      (Float.abs (est -. exact.(node)) < Float.max (5.0 *. stderr) 1e-4)
  done

let test_random_walk_on_grid () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  (* time chosen inside an activity pulse so drains are nonzero *)
  let time = 0.3e-9 in
  let exact = Powergrid.Dc.solve_at a time in
  let walk = Powergrid.Random_walk.prepare a ~time in
  let rng = Prob.Rng.create ~seed:6L () in
  let node = Powergrid.Grid_gen.center_node spec in
  let est, stderr = Powergrid.Random_walk.estimate walk rng ~node ~walks:4000 in
  Alcotest.(check bool)
    (Printf.sprintf "grid node: est %.5f exact %.5f (se %.2g)" est exact.(node) stderr)
    true
    (Float.abs (est -. exact.(node)) < Float.max (5.0 *. stderr) 2e-4)

let test_random_walk_unreachable () =
  (* A floating island must be rejected. *)
  let r n1 n2 =
    { Powergrid.Circuit.rnode1 = n1; rnode2 = n2; ohms = 1.0; rkind = Powergrid.Circuit.Metal }
  in
  let c =
    Powergrid.Circuit.make ~num_nodes:4
      ~resistors:[ r 0 1; r 2 3 ]
      ~capacitors:[]
      ~isources:[]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = vdd; series_ohms = 0.5 } ]
      ()
  in
  (* Give the island a ground path so MNA assembles, but no pad. *)
  let a =
    try Some (Powergrid.Mna.assemble c) with Invalid_argument _ -> None
  in
  match a with
  | None -> ()
  | Some a ->
      Alcotest.(check bool) "island rejected" true
        (try
           ignore (Powergrid.Random_walk.prepare a ~time:0.0);
           false
         with Invalid_argument _ | Linalg.Sparse_cholesky.Not_positive_definite _ -> true)

(* ---- AMG ------------------------------------------------------------- *)

let mesh_matrix k =
  let n = k * k in
  let b = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      let here = (r * k) + c in
      Linalg.Sparse_builder.add b here here 0.02;
      if c + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + 1)) 1.0;
      if r + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + k)) 1.0
    done
  done;
  Linalg.Sparse_builder.to_csc b

let test_amg_solves () =
  let a = mesh_matrix 24 in
  let rng = Helpers.rng () in
  let x_true = Helpers.random_vec rng (24 * 24) in
  let b = Linalg.Sparse.mul_vec a x_true in
  let amg = Linalg.Amg.build a in
  Alcotest.(check bool) "multiple levels" true (Linalg.Amg.levels amg > 1);
  let x, stats = Linalg.Amg.solve ~tol:1e-11 amg a b in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  Alcotest.(check bool) "accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-8)

let test_amg_beats_plain_cg () =
  let a = mesh_matrix 32 in
  let rng = Helpers.rng () in
  let b = Helpers.random_vec rng (32 * 32) in
  let _, plain = Linalg.Cg.solve_sparse ~tol:1e-10 a b in
  let amg = Linalg.Amg.build a in
  let _, with_amg = Linalg.Amg.solve ~tol:1e-10 amg a b in
  Alcotest.(check bool)
    (Printf.sprintf "amg %d iters < plain %d" with_amg.Linalg.Cg.iterations
       plain.Linalg.Cg.iterations)
    true
    (with_amg.Linalg.Cg.iterations < plain.Linalg.Cg.iterations)

let test_amg_level_dims_decrease () =
  let a = mesh_matrix 20 in
  let amg = Linalg.Amg.build a in
  let dims = Linalg.Amg.level_dims amg in
  let rec strictly_decreasing = function
    | a :: b :: rest -> a > b && strictly_decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool)
    ("levels " ^ String.concat ">" (List.map string_of_int dims))
    true (strictly_decreasing dims)

(* ---- Spatial KL ------------------------------------------------------ *)

let test_kl_energy_capture () =
  let spec =
    { Helpers.small_grid_spec with Powergrid.Grid_spec.regions_x = 3; regions_y = 3 }
  in
  let centers = Opera.Spatial.region_centers spec in
  Alcotest.(check int) "9 region centers" 9 (Array.length centers);
  let full = Opera.Spatial.karhunen_loeve ~sigma:0.08 ~corr_length:0.5 ~centers ~energy:1.0 in
  Alcotest.(check bool) "full keeps all variance" true (full.Opera.Spatial.captured > 0.999);
  (* With energy = 1 the truncated field variance is sigma^2 everywhere. *)
  for r = 0 to 8 do
    Helpers.check_close ~rtol:1e-6
      (Printf.sprintf "field variance region %d" r)
      (0.08 *. 0.08)
      (Opera.Spatial.field_variance full r)
  done;
  let truncated =
    Opera.Spatial.karhunen_loeve ~sigma:0.08 ~corr_length:0.5 ~centers ~energy:0.9
  in
  Alcotest.(check bool) "fewer modes than regions" true
    (Opera.Spatial.modes truncated < 9);
  Alcotest.(check bool) "captured >= requested" true
    (truncated.Opera.Spatial.captured >= 0.9 -. 1e-9)

let test_kl_sampled_field_statistics () =
  let spec =
    { Helpers.small_grid_spec with Powergrid.Grid_spec.regions_x = 2; regions_y = 2 }
  in
  let centers = Opera.Spatial.region_centers spec in
  let kl = Opera.Spatial.karhunen_loeve ~sigma:0.1 ~corr_length:0.4 ~centers ~energy:1.0 in
  let rng = Prob.Rng.create ~seed:17L () in
  let n = 20000 in
  let acc = Array.init 4 (fun _ -> Prob.Stats.Online.create ()) in
  let pair01 = ref 0.0 in
  for _ = 1 to n do
    let f = Opera.Spatial.sample_field kl rng in
    Array.iteri (fun r v -> Prob.Stats.Online.add acc.(r) v) f;
    pair01 := !pair01 +. (f.(0) *. f.(1) /. float_of_int n)
  done;
  for r = 0 to 3 do
    Helpers.check_float ~eps:0.003 (Printf.sprintf "mean region %d" r) 0.0
      (Prob.Stats.Online.mean acc.(r));
    Helpers.check_float ~eps:0.001 (Printf.sprintf "var region %d" r) 0.01
      (Prob.Stats.Online.variance acc.(r))
  done;
  (* Covariance between adjacent regions matches the kernel. *)
  let x0, y0 = centers.(0) and x1, y1 = centers.(1) in
  let expected = 0.01 *. exp (-.Float.hypot (x0 -. x1) (y0 -. y1) /. 0.4) in
  Helpers.check_float ~eps:0.001 "pair covariance" expected !pair01

let test_spatial_model_vs_mc () =
  let spec =
    { Helpers.small_grid_spec with Powergrid.Grid_spec.regions_x = 2; regions_y = 2 }
  in
  let circuit = Powergrid.Grid_gen.generate spec in
  let centers = Opera.Spatial.region_centers spec in
  let kl = Opera.Spatial.karhunen_loeve ~sigma:(0.25 /. 3.0) ~corr_length:0.6 ~centers ~energy:0.99 in
  let model =
    Opera.Spatial.build_model ~order:2 kl ~base:Opera.Varmodel.paper_default ~spec circuit
  in
  let probe = Powergrid.Grid_gen.center_node spec in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] } in
  let response, _ = Opera.Galerkin.solve_transient ~options model ~h:0.25e-9 ~steps:6 in
  let mc_cfg =
    { (Opera.Monte_carlo.default_config ~h:0.25e-9 ~steps:6) with
      Opera.Monte_carlo.samples = 400; probes = [| probe |] }
  in
  let mc = Opera.Monte_carlo.run model mc_cfg in
  (* Compare at the (step, node) where MC resolves the largest sigma. *)
  let step = ref 1 and node = ref 0 in
  for st = 1 to 6 do
    for v = 0 to model.Opera.Stochastic_model.n - 1 do
      if Opera.Monte_carlo.std_at mc ~step:st ~node:v
         > Opera.Monte_carlo.std_at mc ~step:!step ~node:!node
      then begin step := st; node := v end
    done
  done;
  let step = !step and node = !node in
  let mu_o = Opera.Response.mean_at response ~step ~node in
  let mu_m = Opera.Monte_carlo.mean_at mc ~step ~node in
  let sd_o = Opera.Response.std_at response ~step ~node in
  let sd_m = Opera.Monte_carlo.std_at mc ~step ~node in
  Helpers.check_float ~eps:(2e-4 *. vdd) "spatial mean" mu_m mu_o;
  Alcotest.(check bool)
    (Printf.sprintf "spatial sigma %.3e vs MC %.3e" sd_o sd_m)
    true
    (Float.abs (sd_o -. sd_m) /. sd_m < 0.25)

(* ---- RLC ------------------------------------------------------------- *)

let test_inductor_transient_analytic () =
  (* Pad (1 V, Rs = 1) -- node0 -- L to ground.  After a 0.5 A drain step
     at node0, v(t) = -0.5 exp(-t / tau), tau = L / R. *)
  let l = 1e-9 and rs = 1.0 in
  let tau = l /. rs in
  let step_wave = Powergrid.Waveform.Pwl [| (0.0, 0.0); (1e-15, 0.5) |] in
  let c =
    Powergrid.Circuit.make
      ~inductors:[ { Powergrid.Circuit.lnode1 = 0; lnode2 = Powergrid.Circuit.ground; henries = l } ]
      ~num_nodes:1 ~resistors:[] ~capacitors:[]
      ~isources:[ { Powergrid.Circuit.inode = 0; wave = step_wave; region = 0 } ]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = 1.0; series_ohms = rs } ]
      ()
  in
  Alcotest.(check bool) "nodal path rejects inductors" true
    (try
       ignore (Powergrid.Mna.assemble c);
       false
     with Invalid_argument _ -> true);
  let sys = Powergrid.Mna.Full.assemble c in
  let h = tau /. 400.0 in
  let steps = 800 in
  let results = Array.make (steps + 1) 0.0 in
  let cfg = Powergrid.Transient.default_config ~h ~steps in
  Powergrid.Transient.run_full cfg sys ~on_step:(fun k _ x -> results.(k) <- x.(0));
  List.iter
    (fun frac ->
      let k = int_of_float (frac *. float_of_int steps) in
      let t = float_of_int k *. h in
      let expected = -0.5 *. exp (-.t /. tau) in
      Helpers.check_float ~eps:0.005
        (Printf.sprintf "v at t = %.2f tau" (t /. tau))
        expected results.(k))
    [ 0.25; 0.5; 0.75; 1.0 ]

let test_inductor_netlist_roundtrip () =
  let text = "V1 a 0 1.2 RS=0.5\nL1 a b 2n\nR1 b 0 3\n.end\n" in
  let parsed = Powergrid.Netlist.parse_string text in
  let c = parsed.Powergrid.Netlist.circuit in
  Alcotest.(check int) "one inductor" 1 (Array.length c.Powergrid.Circuit.inductors);
  Helpers.check_float "henries" 2e-9 (c.Powergrid.Circuit.inductors.(0)).Powergrid.Circuit.henries;
  let round = Powergrid.Netlist.parse_string (Powergrid.Netlist.to_string c) in
  Alcotest.(check string) "roundtrip" (Powergrid.Circuit.stats c)
    (Powergrid.Circuit.stats round.Powergrid.Netlist.circuit)

let test_inductor_dc_is_short () =
  (* At DC an inductor is a short: node b sits at the divider voltage. *)
  let text = "V1 a 0 1.0 RS=1\nL1 a b 5n\nR1 b 0 1\n.end\n" in
  let c = (Powergrid.Netlist.parse_string text).Powergrid.Netlist.circuit in
  let v = Powergrid.Dc.solve_full (Powergrid.Mna.Full.assemble c) in
  (* divider: 1 V over Rs = 1 + R = 1 -> v_b = 0.5, v_a = 0.5 *)
  Helpers.check_float ~eps:1e-10 "v_a" 0.5 v.(0);
  Helpers.check_float ~eps:1e-10 "v_b" 0.5 v.(1)

(* ---- non-Gaussian (uniform/Legendre) chaos --------------------------- *)

let test_uniform_family_vs_mc () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let vm =
    { Opera.Varmodel.paper_default with
      Opera.Varmodel.mode = Opera.Varmodel.Separate; family = Opera.Varmodel.Uniform }
  in
  let m = Opera.Stochastic_model.build ~order:2 vm ~vdd circuit in
  Alcotest.(check string) "legendre basis" "legendre"
    ((Polychaos.Basis.families m.Opera.Stochastic_model.basis).(0)).Polychaos.Family.name;
  let probe = Powergrid.Grid_gen.center_node spec in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] } in
  let response, _ = Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps:6 in
  let mc_cfg =
    { (Opera.Monte_carlo.default_config ~h:0.25e-9 ~steps:6) with
      Opera.Monte_carlo.samples = 500; probes = [| probe |] }
  in
  let mc = Opera.Monte_carlo.run m mc_cfg in
  (* Compare at the (step, node) where MC resolves the largest sigma. *)
  let step = ref 1 and node = ref 0 in
  for st = 1 to 6 do
    for v = 0 to m.Opera.Stochastic_model.n - 1 do
      if Opera.Monte_carlo.std_at mc ~step:st ~node:v
         > Opera.Monte_carlo.std_at mc ~step:!step ~node:!node
      then begin step := st; node := v end
    done
  done;
  let step = !step and node = !node in
  let mu_o = Opera.Response.mean_at response ~step ~node in
  let mu_m = Opera.Monte_carlo.mean_at mc ~step ~node in
  let sd_o = Opera.Response.std_at response ~step ~node in
  let sd_m = Opera.Monte_carlo.std_at mc ~step ~node in
  Helpers.check_float ~eps:(2e-4 *. vdd) "uniform mean" mu_m mu_o;
  Alcotest.(check bool)
    (Printf.sprintf "uniform sigma %.3e vs MC %.3e" sd_o sd_m)
    true
    (Float.abs (sd_o -. sd_m) /. sd_m < 0.25)

let test_uniform_rejects_combined () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let vm = { Opera.Varmodel.paper_default with Opera.Varmodel.family = Opera.Varmodel.Uniform } in
  Alcotest.(check bool) "combined + uniform rejected" true
    (try
       ignore (Opera.Stochastic_model.build ~order:2 vm ~vdd circuit);
       false
     with Invalid_argument _ -> true)

let test_uniform_parameter_sigma_preserved () =
  (* The degree-1 coefficient rescaling must give the parameter the same
     standard deviation regardless of the family. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let make family =
    let vm =
      { Opera.Varmodel.paper_default with
        Opera.Varmodel.mode = Opera.Varmodel.Separate; family }
    in
    Opera.Stochastic_model.build ~order:2 vm ~vdd circuit
  in
  let sigma_of m =
    (* std of G(xi)'s (0,0) entry under sampling *)
    let rng = Prob.Rng.create ~seed:3L () in
    let acc = Prob.Stats.Online.create () in
    for _ = 1 to 8000 do
      let xi = Polychaos.Basis.sample_point m.Opera.Stochastic_model.basis rng in
      let g = Opera.Stochastic_model.g_of_sample m xi in
      Prob.Stats.Online.add acc (Linalg.Sparse.get g 0 0)
    done;
    Prob.Stats.Online.std acc
  in
  let s_gauss = sigma_of (make Opera.Varmodel.Gaussian) in
  let s_unif = sigma_of (make Opera.Varmodel.Uniform) in
  Helpers.check_close ~rtol:0.05 "same parameter sigma" s_gauss s_unif

(* ---- quasi-Monte Carlo ----------------------------------------------- *)

let test_qmc_matches_galerkin () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let probe = Powergrid.Grid_gen.center_node spec in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] } in
  let response, _ = Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps:6 in
  let mc_cfg =
    { (Opera.Monte_carlo.default_config ~h:0.25e-9 ~steps:6) with
      Opera.Monte_carlo.samples = 300; probes = [| probe |];
      sampler = Opera.Monte_carlo.Quasi_halton }
  in
  let qmc = Opera.Monte_carlo.run m mc_cfg in
  let step = 4 in
  Helpers.check_float
    ~eps:(1e-4 *. vdd)
    "qmc mean matches galerkin"
    (Opera.Response.mean_at response ~step ~node:probe)
    (Opera.Monte_carlo.mean_at qmc ~step ~node:probe)

let suite =
  [
    Alcotest.test_case "sobol linear mix" `Quick test_sobol_linear_mix;
    Alcotest.test_case "sobol on grid response" `Quick test_sobol_on_grid_response;
    Alcotest.test_case "halton first points" `Quick test_halton_first_points;
    Alcotest.test_case "halton uniformity" `Quick test_halton_uniformity;
    Alcotest.test_case "halton gaussian" `Quick test_halton_gaussian;
    Alcotest.test_case "random walk vs direct" `Slow test_random_walk_matches_direct;
    Alcotest.test_case "random walk on grid" `Slow test_random_walk_on_grid;
    Alcotest.test_case "random walk unreachable" `Quick test_random_walk_unreachable;
    Alcotest.test_case "amg solves" `Quick test_amg_solves;
    Alcotest.test_case "amg beats plain cg" `Quick test_amg_beats_plain_cg;
    Alcotest.test_case "amg levels decrease" `Quick test_amg_level_dims_decrease;
    Alcotest.test_case "kl energy capture" `Quick test_kl_energy_capture;
    Alcotest.test_case "kl sampled field stats" `Slow test_kl_sampled_field_statistics;
    Alcotest.test_case "spatial model vs mc" `Slow test_spatial_model_vs_mc;
    Alcotest.test_case "inductor transient analytic" `Quick test_inductor_transient_analytic;
    Alcotest.test_case "inductor netlist roundtrip" `Quick test_inductor_netlist_roundtrip;
    Alcotest.test_case "inductor dc short" `Quick test_inductor_dc_is_short;
    Alcotest.test_case "uniform family vs mc" `Slow test_uniform_family_vs_mc;
    Alcotest.test_case "uniform rejects combined" `Quick test_uniform_rejects_combined;
    Alcotest.test_case "uniform preserves sigma" `Slow test_uniform_parameter_sigma_preserved;
    Alcotest.test_case "qmc matches galerkin" `Slow test_qmc_matches_galerkin;
  ]

(* ---- parallel Monte Carlo --------------------------------------------- *)

let test_parallel_mc_matches_statistics () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let cfg =
    { (Opera.Monte_carlo.default_config ~h:0.25e-9 ~steps:4) with
      Opera.Monte_carlo.samples = 300; probes = [| 0; 5 |] }
  in
  let seq = Opera.Monte_carlo.run ~domains:1 m cfg in
  let par = Opera.Monte_carlo.run ~domains:4 m cfg in
  Alcotest.(check int) "same sample count" seq.Opera.Monte_carlo.samples
    par.Opera.Monte_carlo.samples;
  Alcotest.(check int) "probe samples complete" 300
    (Array.length par.Opera.Monte_carlo.probe_values.(0).(2));
  (* Different streams, same statistics: means within combined noise. *)
  let step = 1 in
  for node = 0 to m.Opera.Stochastic_model.n - 1 do
    let mu_s = Opera.Monte_carlo.mean_at seq ~step ~node in
    let mu_p = Opera.Monte_carlo.mean_at par ~step ~node in
    let sd = Float.max (Opera.Monte_carlo.std_at seq ~step ~node) 1e-9 in
    Alcotest.(check bool) "means statistically consistent" true
      (Float.abs (mu_s -. mu_p) < 6.0 *. sd /. sqrt 300.0 +. 1e-7)
  done

let test_parallel_merge_exactness () =
  (* With domains = samples, each chunk holds one sample; the merged
     variance must still be the population variance of all samples. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let cfg =
    { (Opera.Monte_carlo.default_config ~h:0.25e-9 ~steps:2) with
      Opera.Monte_carlo.samples = 8 }
  in
  let r = Opera.Monte_carlo.run ~domains:8 m cfg in
  Alcotest.(check int) "all samples ran" 8 r.Opera.Monte_carlo.samples;
  Alcotest.(check bool) "variance finite and nonnegative" true
    (Array.for_all (fun v -> Float.is_finite v && v >= -1e-18) r.Opera.Monte_carlo.variance)

let suite =
  suite
  @ [
      Alcotest.test_case "parallel mc statistics" `Slow test_parallel_mc_matches_statistics;
      Alcotest.test_case "parallel mc merge" `Quick test_parallel_merge_exactness;
    ]
