(* Hierarchical (Schur-complement macromodel) solver. *)

let grid_matrix () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  (Powergrid.Mna.g_total a, a)

let test_partition () =
  let part = Powergrid.Hierarchical.partition_by_stripes ~n:10 ~blocks:3 in
  Alcotest.(check int) "first block" 0 part.(0);
  Alcotest.(check int) "last block" 2 part.(9);
  (* non-decreasing *)
  for i = 1 to 9 do
    Alcotest.(check bool) "monotone" true (part.(i) >= part.(i - 1))
  done

let test_matches_direct () =
  let g, mna = grid_matrix () in
  let n, _ = Linalg.Sparse.dims g in
  List.iter
    (fun blocks ->
      let part = Powergrid.Hierarchical.partition_by_stripes ~n ~blocks in
      let h = Powergrid.Hierarchical.build g ~part in
      Alcotest.(check bool) "has ports" true (Powergrid.Hierarchical.ports h > 0);
      let b = Powergrid.Mna.inject mna 0.3e-9 in
      let x_h = Powergrid.Hierarchical.solve h b in
      let x_d = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor g) b in
      Alcotest.(check bool)
        (Printf.sprintf "%d blocks match direct" blocks)
        true
        (Linalg.Vec.rel_error x_h ~reference:x_d < 1e-9))
    [ 2; 4; 7 ]

let test_repeated_solves () =
  (* The macromodel is built once; many RHS solves reuse it. *)
  let g, mna = grid_matrix () in
  let n, _ = Linalg.Sparse.dims g in
  let part = Powergrid.Hierarchical.partition_by_stripes ~n ~blocks:4 in
  let h = Powergrid.Hierarchical.build g ~part in
  let f = Linalg.Sparse_cholesky.factor g in
  List.iter
    (fun t ->
      let b = Powergrid.Mna.inject mna t in
      let x_h = Powergrid.Hierarchical.solve h b in
      let x_d = Linalg.Sparse_cholesky.solve f b in
      Alcotest.(check bool) "time point matches" true
        (Linalg.Vec.rel_error x_h ~reference:x_d < 1e-9))
    [ 0.0; 0.2e-9; 0.55e-9; 1.3e-9 ]

let test_single_block_rejected () =
  let g, _ = grid_matrix () in
  let n, _ = Linalg.Sparse.dims g in
  Alcotest.(check bool) "one block rejected" true
    (try
       ignore (Powergrid.Hierarchical.build g ~part:(Array.make n 0));
       false
     with Invalid_argument _ -> true)

let test_random_spd () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 60 ~extra_edges:40 in
  let part = Powergrid.Hierarchical.partition_by_stripes ~n:60 ~blocks:5 in
  let h = Powergrid.Hierarchical.build a ~part in
  let x_true = Helpers.random_vec rng 60 in
  let b = Linalg.Sparse.mul_vec a x_true in
  let x = Powergrid.Hierarchical.solve h b in
  Alcotest.(check bool) "random spd accurate" true
    (Linalg.Vec.rel_error x ~reference:x_true < 1e-8)

let suite =
  [
    Alcotest.test_case "stripe partition" `Quick test_partition;
    Alcotest.test_case "matches direct solve" `Quick test_matches_direct;
    Alcotest.test_case "repeated solves" `Quick test_repeated_solves;
    Alcotest.test_case "single block rejected" `Quick test_single_block_rejected;
    Alcotest.test_case "random spd" `Quick test_random_spd;
  ]
