(* Anisotropic (box-truncated) bases. *)

let test_box_count () =
  Alcotest.(check int) "2x3 box" 12 (Polychaos.Multi_index.count_box ~degrees:[| 1; 2; 1 |]);
  Alcotest.(check int) "scalar" 4 (Polychaos.Multi_index.count_box ~degrees:[| 3 |])

let test_box_generate () =
  let indices = Polychaos.Multi_index.generate_box ~degrees:[| 1; 2 |] in
  Alcotest.(check int) "count" 6 (Array.length indices);
  Alcotest.(check (array int)) "zero first" [| 0; 0 |] indices.(0);
  (* all within caps, all unique, graded *)
  let seen = Hashtbl.create 8 in
  let prev_degree = ref 0 in
  Array.iter
    (fun idx ->
      Alcotest.(check bool) "caps respected" true (idx.(0) <= 1 && idx.(1) <= 2);
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen idx);
      Hashtbl.replace seen idx ();
      let d = Polychaos.Multi_index.degree idx in
      Alcotest.(check bool) "graded" true (d >= !prev_degree);
      prev_degree := d)
    indices

let test_anisotropic_basis_orthogonal () =
  let families = [| Polychaos.Family.hermite; Polychaos.Family.legendre |] in
  let b = Polychaos.Basis.anisotropic families ~degrees:[| 2; 1 |] in
  Alcotest.(check int) "size" 6 (Polychaos.Basis.size b);
  (* Orthogonality by tensor quadrature. *)
  for i = 0 to 5 do
    for j = 0 to 5 do
      let inner =
        Polychaos.Quadrature.tensor families 4 (fun xi ->
            Polychaos.Basis.eval b i xi *. Polychaos.Basis.eval b j xi)
      in
      let expected = if i = j then Polychaos.Basis.norm_sq b i else 0.0 in
      Helpers.check_float
        ~eps:(1e-9 *. (1.0 +. expected))
        (Printf.sprintf "<psi_%d psi_%d>" i j)
        expected inner
    done
  done

let test_anisotropic_pce () =
  (* Represent f = xi0^2 + xi1 exactly with degrees [2; 1] (impossible at
     isotropic order 1, wasteful at order 2 in 5 dims). *)
  let families = Array.make 2 Polychaos.Family.hermite in
  let b = Polychaos.Basis.anisotropic families ~degrees:[| 2; 1 |] in
  let f xi = (xi.(0) *. xi.(0)) +. xi.(1) in
  let p = Polychaos.Projection.project b f in
  let rng = Prob.Rng.create ~seed:77L () in
  for _ = 1 to 200 do
    let xi = Polychaos.Basis.sample_point b rng in
    Helpers.check_float ~eps:1e-9 "exact representation" (f xi) (Polychaos.Pce.eval p xi)
  done

let test_anisotropic_special_case () =
  (* The leakage special case benefits from a deep order only in the
     region variables; check an anisotropic basis gives the same mean as
     the isotropic one at equal per-dimension depth. *)
  let families = Array.make 1 Polychaos.Family.hermite in
  let b_iso = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:1 ~order:4 in
  let b_box = Polychaos.Basis.anisotropic families ~degrees:[| 4 |] in
  let lambda = 0.5 in
  let p_iso = Polychaos.Projection.lognormal_univariate b_iso ~dim:0 ~mu:0.0 ~sigma:lambda in
  let p_box = Polychaos.Projection.lognormal_univariate b_box ~dim:0 ~mu:0.0 ~sigma:lambda in
  Helpers.check_float ~eps:1e-12 "same mean" (Polychaos.Pce.mean p_iso) (Polychaos.Pce.mean p_box);
  Helpers.check_float ~eps:1e-12 "same variance" (Polychaos.Pce.variance p_iso)
    (Polychaos.Pce.variance p_box)

let suite =
  [
    Alcotest.test_case "box count" `Quick test_box_count;
    Alcotest.test_case "box generate" `Quick test_box_generate;
    Alcotest.test_case "anisotropic orthogonality" `Quick test_anisotropic_basis_orthogonal;
    Alcotest.test_case "anisotropic projection exact" `Quick test_anisotropic_pce;
    Alcotest.test_case "anisotropic lognormal" `Quick test_anisotropic_special_case;
  ]
