(* Triple-product tensors and PCE arithmetic — including the paper's
   explicit Eq. (20)/(21) matrices. *)

let test_hermite_closed_form_vs_quadrature () =
  let f = Polychaos.Family.hermite in
  for i = 0 to 4 do
    for j = 0 to 4 do
      for k = 0 to 4 do
        let closed = Polychaos.Triple_product.hermite_univariate i j k in
        let quad = Polychaos.Quadrature.expectation_of_product f [ i; j; k ] in
        Helpers.check_float
          ~eps:(1e-8 *. (1.0 +. Float.abs closed))
          (Printf.sprintf "E[He_%d He_%d He_%d]" i j k)
          closed quad
      done
    done
  done

let test_known_hermite_triples () =
  (* E[He_1 He_1 He_2] = E[x x (x^2-1)] = 3 - 1 = 2. *)
  Helpers.check_float "111 -> odd" 0.0 (Polychaos.Triple_product.hermite_univariate 1 1 1);
  Helpers.check_float "112" 2.0 (Polychaos.Triple_product.hermite_univariate 1 1 2);
  Helpers.check_float "011" 1.0 (Polychaos.Triple_product.hermite_univariate 0 1 1);
  Helpers.check_float "022" 2.0 (Polychaos.Triple_product.hermite_univariate 0 2 2);
  Helpers.check_float "123" 6.0 (Polychaos.Triple_product.hermite_univariate 1 2 3);
  Helpers.check_float "triangle violation" 0.0 (Polychaos.Triple_product.hermite_univariate 0 1 3)

let basis2 = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2

let tp2 = Polychaos.Triple_product.create basis2

let test_value_symmetry () =
  for i = 0 to 5 do
    for j = 0 to 5 do
      for k = 0 to 5 do
        let v = Polychaos.Triple_product.value tp2 i j k in
        Helpers.check_float "sym jk" v (Polychaos.Triple_product.value tp2 i k j);
        Helpers.check_float "sym ij" v (Polychaos.Triple_product.value tp2 j i k)
      done
    done
  done

let test_coupling_zero_is_norm_diagonal () =
  let t0 = Polychaos.Triple_product.coupling_matrix tp2 0 in
  let expected =
    Linalg.Dense.init 6 6 (fun j k ->
        if j = k then Polychaos.Basis.norm_sq basis2 j else 0.0)
  in
  Helpers.check_dense "T_0 = diag(norms)" expected t0

(* The paper's Eq. (20): G(xi) = Ga + Gg xiG over basis
   (1, xiG, xiL, xiG^2-1, xiG xiL, xiL^2-1). Using scalar Ga, Gg the
   augmented matrix is sum_i T_i * coefficient. *)
let paper_gt ga gg =
  Linalg.Dense.of_arrays
    [|
      [| ga; gg; 0.; 0.; 0.; 0. |];
      [| gg; ga; 0.; 2. *. gg; 0.; 0. |];
      [| 0.; 0.; ga; 0.; gg; 0. |];
      [| 0.; 2. *. gg; 0.; 2. *. ga; 0.; 0. |];
      [| 0.; 0.; gg; 0.; ga; 0. |];
      [| 0.; 0.; 0.; 0.; 0.; 2. *. ga |];
    |]

(* Eq. (21) with the paper's "2Cb" typo corrected to 0 (Cb is never
   defined; E[xiL psi_1 psi_3] = 0). *)
let paper_ct ca cc =
  Linalg.Dense.of_arrays
    [|
      [| ca; 0.; cc; 0.; 0.; 0. |];
      [| 0.; ca; 0.; 0.; cc; 0. |];
      [| cc; 0.; ca; 0.; 0.; 2. *. cc |];
      [| 0.; 0.; 0.; 2. *. ca; 0.; 0. |];
      [| 0.; cc; 0.; 0.; ca; 0. |];
      [| 0.; 0.; 2. *. cc; 0.; 0.; 2. *. ca |];
    |]

let scalar v = Linalg.Sparse.of_triplets ~nrows:1 ~ncols:1 [ (0, 0, v) ]

let galerkin_matrix terms =
  (* sum_i kron(T_i, [a_i]) for scalar terms -> 6x6 dense *)
  List.fold_left
    (fun acc (rank, v) ->
      Linalg.Dense.add acc
        (Linalg.Sparse.to_dense (Linalg.Sparse.kron (Polychaos.Triple_product.coupling_matrix tp2 rank) (scalar v))))
    (Linalg.Dense.create 6 6) terms

let test_paper_eq20 () =
  let ga = 3.7 and gg = 0.31 in
  (* xiG is dimension 0 -> rank 1. *)
  let gt = galerkin_matrix [ (0, ga); (1, gg) ] in
  Helpers.check_dense ~eps:1e-12 "Eq. (20) reproduced" (paper_gt ga gg) gt

let test_paper_eq21 () =
  let ca = 1.9 and cc = 0.23 in
  (* xiL is dimension 1 -> rank 2. *)
  let ct = galerkin_matrix [ (0, ca); (2, cc) ] in
  Helpers.check_dense ~eps:1e-12 "Eq. (21) reproduced (typo corrected)" (paper_ct ca cc) ct

let test_pce_mean_var () =
  let coefs = [| 1.5; 0.2; -0.3; 0.05; 0.1; -0.07 |] in
  let x = Polychaos.Pce.create basis2 coefs in
  Helpers.check_float "mean = a0" 1.5 (Polychaos.Pce.mean x);
  (* Eq. (23): Var = a1^2 + a2^2 + 2 a3^2 + a4^2 + 2 a5^2 *)
  let expected_var =
    (0.2 ** 2.) +. (0.3 ** 2.) +. (2. *. (0.05 ** 2.)) +. (0.1 ** 2.) +. (2. *. (0.07 ** 2.))
  in
  Helpers.check_float ~eps:1e-12 "variance via Eq. (23)" expected_var (Polychaos.Pce.variance x)

let test_pce_sampled_moments () =
  let coefs = [| 1.0; 0.3; 0.1; 0.02; 0.0; 0.05 |] in
  let x = Polychaos.Pce.create basis2 coefs in
  let rng = Prob.Rng.create ~seed:77L () in
  let acc = Prob.Stats.Online.create () in
  for _ = 1 to 100_000 do
    Prob.Stats.Online.add acc (Polychaos.Pce.sample x rng)
  done;
  Helpers.check_float ~eps:0.01 "sampled mean" (Polychaos.Pce.mean x) (Prob.Stats.Online.mean acc);
  Helpers.check_float
    ~eps:(0.05 *. Polychaos.Pce.variance x)
    "sampled variance" (Polychaos.Pce.variance x) (Prob.Stats.Online.variance acc)

let test_pce_variable_and_arithmetic () =
  let xg = Polychaos.Pce.variable basis2 0 in
  Helpers.check_float "E[xi] = 0" 0.0 (Polychaos.Pce.mean xg);
  Helpers.check_float "Var[xi] = 1" 1.0 (Polychaos.Pce.variance xg);
  let c = Polychaos.Pce.constant basis2 2.0 in
  let y = Polychaos.Pce.add (Polychaos.Pce.scale 3.0 xg) c in
  (* y = 3 xi + 2 *)
  Helpers.check_float "mean 3xi+2" 2.0 (Polychaos.Pce.mean y);
  Helpers.check_float "var 3xi+2" 9.0 (Polychaos.Pce.variance y);
  Helpers.check_float ~eps:1e-12 "eval" ((3.0 *. 0.7) +. 2.0)
    (Polychaos.Pce.eval y [| 0.7; -0.2 |])

let test_pce_mul () =
  (* xi * xi = xi^2 = (xi^2 - 1) + 1: coefficients 1 on psi_0 and psi_3. *)
  let xg = Polychaos.Pce.variable basis2 0 in
  let sq = Polychaos.Pce.mul tp2 xg xg in
  Helpers.check_float ~eps:1e-12 "E[xi^2]" 1.0 (Polychaos.Pce.mean sq);
  Helpers.check_float ~eps:1e-12 "coef on psi_3" 1.0 sq.Polychaos.Pce.coefs.(3);
  Helpers.check_float ~eps:1e-12 "Var[xi^2] = 2" 2.0 (Polychaos.Pce.variance sq);
  (* Product of the two distinct variables: xiG * xiL = psi_4. *)
  let xl = Polychaos.Pce.variable basis2 1 in
  let prod = Polychaos.Pce.mul tp2 xg xl in
  Helpers.check_float ~eps:1e-12 "coef on psi_4" 1.0 prod.Polychaos.Pce.coefs.(4);
  Helpers.check_float ~eps:1e-12 "mean xiG xiL" 0.0 (Polychaos.Pce.mean prod)

let test_pce_central_moments () =
  (* X = mu + s xi is Gaussian: m3 = 0, m4 = 3 s^4. *)
  let x = Polychaos.Pce.add (Polychaos.Pce.constant basis2 2.0)
      (Polychaos.Pce.scale 0.5 (Polychaos.Pce.variable basis2 0))
  in
  Helpers.check_float ~eps:1e-10 "m2" 0.25 (Polychaos.Pce.central_moment x 2);
  Helpers.check_float ~eps:1e-10 "m3" 0.0 (Polychaos.Pce.central_moment x 3);
  Helpers.check_float ~eps:1e-9 "m4" (3.0 *. (0.5 ** 4.0)) (Polychaos.Pce.central_moment x 4);
  Helpers.check_float ~eps:1e-8 "skewness" 0.0 (Polychaos.Pce.skewness x);
  Helpers.check_float ~eps:1e-7 "kurtosis" 0.0 (Polychaos.Pce.kurtosis_excess x)

let test_projection_of_polynomial_is_exact () =
  let b = basis2 in
  (* f(xi) = 2 + xiG + 0.5 (xiG^2 - 1) is inside the basis span. *)
  let f xi = 2.0 +. xi.(0) +. (0.5 *. ((xi.(0) *. xi.(0)) -. 1.0)) in
  let p = Polychaos.Projection.project b f in
  Helpers.check_float ~eps:1e-10 "a0" 2.0 p.Polychaos.Pce.coefs.(0);
  Helpers.check_float ~eps:1e-10 "a1" 1.0 p.Polychaos.Pce.coefs.(1);
  Helpers.check_float ~eps:1e-10 "a3" 0.5 p.Polychaos.Pce.coefs.(3);
  Helpers.check_float ~eps:1e-10 "a4" 0.0 p.Polychaos.Pce.coefs.(4)

let test_lognormal_projection () =
  (* exp(mu + s xi): closed-form Hermite coefficients vs quadrature. *)
  let order = 4 in
  let b = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:1 ~order in
  let mu = -0.3 and sigma = 0.4 in
  let closed = Polychaos.Projection.lognormal_univariate b ~dim:0 ~mu ~sigma in
  let quad = Polychaos.Projection.project b ~quad_points:20 (fun xi -> exp (mu +. (sigma *. xi.(0)))) in
  for k = 0 to Polychaos.Basis.size b - 1 do
    Helpers.check_float ~eps:1e-8
      (Printf.sprintf "lognormal coef %d" k)
      closed.Polychaos.Pce.coefs.(k) quad.Polychaos.Pce.coefs.(k)
  done;
  (* Mean of the lognormal: exp(mu + sigma^2/2). *)
  Helpers.check_float ~eps:1e-10 "lognormal mean" (exp (mu +. (sigma *. sigma /. 2.0)))
    (Polychaos.Pce.mean closed);
  (* Variance converges to the true lognormal variance as order grows. *)
  let true_var =
    Prob.Distributions.variance (Prob.Distributions.Lognormal { mu; sigma })
  in
  Helpers.check_float ~eps:(0.02 *. true_var) "lognormal variance (order 4)" true_var
    (Polychaos.Pce.variance closed)

let prop_pce_eval_linear =
  Helpers.qcheck_case ~count:50 "pce add/scale evaluate pointwise"
    QCheck.(pair (float_range (-2.) 2.) (float_range (-2.) 2.))
    (fun (s, t) ->
      let xg = Polychaos.Pce.variable basis2 0 in
      let xl = Polychaos.Pce.variable basis2 1 in
      let y = Polychaos.Pce.add (Polychaos.Pce.scale s xg) (Polychaos.Pce.scale t xl) in
      let xi = [| 0.37; -0.85 |] in
      Float.abs (Polychaos.Pce.eval y xi -. ((s *. 0.37) +. (t *. -0.85))) < 1e-10)

let suite =
  [
    Alcotest.test_case "closed form vs quadrature" `Quick test_hermite_closed_form_vs_quadrature;
    Alcotest.test_case "known hermite triples" `Quick test_known_hermite_triples;
    Alcotest.test_case "tensor symmetry" `Quick test_value_symmetry;
    Alcotest.test_case "T_0 = diag(norms)" `Quick test_coupling_zero_is_norm_diagonal;
    Alcotest.test_case "paper Eq. (20)" `Quick test_paper_eq20;
    Alcotest.test_case "paper Eq. (21)" `Quick test_paper_eq21;
    Alcotest.test_case "pce mean/var Eq. (23)" `Quick test_pce_mean_var;
    Alcotest.test_case "pce sampled moments" `Slow test_pce_sampled_moments;
    Alcotest.test_case "pce variable/arith" `Quick test_pce_variable_and_arithmetic;
    Alcotest.test_case "pce galerkin product" `Quick test_pce_mul;
    Alcotest.test_case "pce central moments" `Quick test_pce_central_moments;
    Alcotest.test_case "projection exact on span" `Quick test_projection_of_polynomial_is_exact;
    Alcotest.test_case "lognormal projection" `Quick test_lognormal_projection;
    prop_pce_eval_linear;
  ]
