(* Property-based (qcheck) coverage of the numeric substrates. *)

let small_float = QCheck.float_range (-5.0) 5.0

let vec n = QCheck.(array_of_size (Gen.return n) small_float)

(* --- sparse algebra ---------------------------------------------------- *)

let prop_add_commutes =
  Helpers.qcheck_case ~count:40 "sparse add commutes" QCheck.(int_range 3 20) (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:n in
      let b = Helpers.random_sparse_spd rng n ~extra_edges:(2 * n) in
      Linalg.Sparse.approx_equal ~tol:1e-12 (Linalg.Sparse.add a b) (Linalg.Sparse.add b a))

let prop_transpose_involution =
  Helpers.qcheck_case ~count:40 "transpose involution" QCheck.(int_range 3 25) (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:n in
      Linalg.Sparse.approx_equal ~tol:0.0 a (Linalg.Sparse.transpose (Linalg.Sparse.transpose a)))

let prop_spmv_linear =
  Helpers.qcheck_case ~count:40 "spmv is linear" (QCheck.pair (vec 12) (vec 12)) (fun (x, y) ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng 12 ~extra_edges:12 in
      let lhs = Linalg.Sparse.mul_vec a (Linalg.Vec.add x y) in
      let rhs = Linalg.Vec.add (Linalg.Sparse.mul_vec a x) (Linalg.Sparse.mul_vec a y) in
      Linalg.Vec.approx_equal ~tol:1e-8 lhs rhs)

let prop_permute_preserves_solution =
  Helpers.qcheck_case ~count:25 "sym permutation preserves quadratic form"
    QCheck.(int_range 4 16)
    (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:n in
      let p = Array.init n (fun i -> i) in
      Prob.Rng.shuffle rng p;
      let ap = Linalg.Sparse.permute_sym a p in
      let x = Helpers.random_vec rng n in
      let xp = Linalg.Perm.apply_vec p x in
      let q1 = Linalg.Vec.dot x (Linalg.Sparse.mul_vec a x) in
      let q2 = Linalg.Vec.dot xp (Linalg.Sparse.mul_vec ap xp) in
      Float.abs (q1 -. q2) < 1e-8 *. (1.0 +. Float.abs q1))

let prop_lower_plus_strict_upper =
  Helpers.qcheck_case ~count:30 "lower + strict upper = all" QCheck.(int_range 3 20) (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:(2 * n) in
      let lower = Linalg.Sparse.lower a in
      let upper = Linalg.Sparse.upper a in
      let diag = Linalg.Sparse.of_diag (Linalg.Sparse.diag a) in
      let sum = Linalg.Sparse.axpy ~alpha:(-1.0) diag (Linalg.Sparse.add lower upper) in
      Linalg.Sparse.approx_equal ~tol:1e-12 a sum)

(* --- factorizations ---------------------------------------------------- *)

let prop_cholesky_solves =
  Helpers.qcheck_case ~count:25 "sparse cholesky residual" QCheck.(int_range 4 40) (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:(2 * n) in
      let b = Helpers.random_vec rng n in
      let x = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor a) b in
      let r = Linalg.Vec.sub (Linalg.Sparse.mul_vec a x) b in
      Linalg.Vec.norm2 r < 1e-8 *. (1.0 +. Linalg.Vec.norm2 b))

let prop_lu_solves_permuted_spd =
  Helpers.qcheck_case ~count:25 "sparse lu residual" QCheck.(int_range 4 30) (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:n in
      let b = Helpers.random_vec rng n in
      let x = Linalg.Sparse_lu.solve (Linalg.Sparse_lu.factor a) b in
      let r = Linalg.Vec.sub (Linalg.Sparse.mul_vec a x) b in
      Linalg.Vec.norm2 r < 1e-8 *. (1.0 +. Linalg.Vec.norm2 b))

let prop_all_orderings_agree =
  Helpers.qcheck_case ~count:15 "orderings give identical solutions" QCheck.(int_range 6 30)
    (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:(2 * n) in
      let b = Helpers.random_vec rng n in
      let solve kind = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor ~ordering:kind a) b in
      let x0 = solve Linalg.Ordering.Natural in
      List.for_all
        (fun kind -> Linalg.Vec.approx_equal ~tol:1e-7 x0 (solve kind))
        [ Linalg.Ordering.Rcm; Linalg.Ordering.Min_degree; Linalg.Ordering.Nested_dissection ])

(* --- probability -------------------------------------------------------- *)

let prop_normal_cdf_monotone =
  Helpers.qcheck_case "normal cdf monotone" QCheck.(pair small_float small_float) (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Prob.Normal.cdf lo <= Prob.Normal.cdf hi +. 1e-12)

let prop_histogram_mass =
  Helpers.qcheck_case ~count:40 "histogram conserves mass"
    QCheck.(array_of_size Gen.(int_range 1 200) small_float)
    (fun xs ->
      let h = Prob.Histogram.create ~lo:(-5.0) ~hi:5.0 ~bins:7 in
      Prob.Histogram.add_all h xs;
      Prob.Histogram.count h = Array.length xs
      && Float.abs (Array.fold_left ( +. ) 0.0 (Prob.Histogram.percentages h) -. 100.0) < 1e-9)

let prop_quantile_bounds =
  Helpers.qcheck_case ~count:40 "quantile stays within data"
    QCheck.(pair (array_of_size Gen.(int_range 1 50) small_float) (float_range 0.0 1.0))
    (fun (xs, q) ->
      let v = Prob.Stats.quantile xs q in
      v >= Linalg.Vec.min xs -. 1e-12 && v <= Linalg.Vec.max xs +. 1e-12)

let prop_online_mean_bounds =
  Helpers.qcheck_case ~count:40 "online mean within min/max"
    QCheck.(array_of_size Gen.(int_range 1 100) small_float)
    (fun xs ->
      let acc = Prob.Stats.Online.create () in
      Array.iter (Prob.Stats.Online.add acc) xs;
      let mu = Prob.Stats.Online.mean acc in
      mu >= Linalg.Vec.min xs -. 1e-9 && mu <= Linalg.Vec.max xs +. 1e-9)

(* --- polynomial chaos ---------------------------------------------------- *)

let prop_pce_linearity_of_mean =
  Helpers.qcheck_case ~count:40 "pce mean is linear"
    QCheck.(pair small_float small_float)
    (fun (alpha, c) ->
      let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
      let x = Polychaos.Pce.variable basis 0 in
      let y = Polychaos.Pce.add (Polychaos.Pce.scale alpha x) (Polychaos.Pce.constant basis c) in
      Float.abs (Polychaos.Pce.mean y -. c) < 1e-12)

let prop_pce_variance_scaling =
  Helpers.qcheck_case ~count:40 "variance scales quadratically" small_float (fun alpha ->
      let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
      let x = Polychaos.Pce.variable basis 1 in
      let y = Polychaos.Pce.scale alpha x in
      Float.abs (Polychaos.Pce.variance y -. (alpha *. alpha)) < 1e-9)

let prop_eval_consistent_with_sampling =
  Helpers.qcheck_case ~count:20 "pce eval consistent at random points"
    QCheck.(pair small_float small_float)
    (fun (a, b) ->
      let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
      let p =
        Polychaos.Pce.add
          (Polychaos.Pce.scale a (Polychaos.Pce.variable basis 0))
          (Polychaos.Pce.scale b (Polychaos.Pce.variable basis 1))
      in
      let xi = [| 0.3; -1.1 |] in
      Float.abs (Polychaos.Pce.eval p xi -. ((a *. 0.3) +. (b *. -1.1))) < 1e-9)

let prop_sobol_total_bounded =
  Helpers.qcheck_case ~count:40 "sobol indices in [0,1] and total >= main"
    QCheck.(array_of_size (Gen.return 6) small_float)
    (fun coefs ->
      let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
      let x = Polychaos.Pce.create basis coefs in
      List.for_all
        (fun d ->
          let m = Polychaos.Sobol.main_effect x d and t = Polychaos.Sobol.total_effect x d in
          m >= -1e-12 && t <= 1.0 +. 1e-12 && t >= m -. 1e-12)
        [ 0; 1 ])

(* --- grid layer --------------------------------------------------------- *)

let prop_netlist_value_roundtrip =
  Helpers.qcheck_case ~count:60 "netlist float formatting parses back"
    QCheck.(float_range 1e-15 1e12)
    (fun v ->
      let s = Printf.sprintf "%.9g" v in
      let parsed = Powergrid.Netlist.parse_value s in
      Float.abs (parsed -. v) <= 1e-8 *. Float.abs v)

let prop_waveform_pwl_within_bounds =
  Helpers.qcheck_case ~count:40 "pwl interpolation stays within knot range"
    QCheck.(array_of_size Gen.(int_range 2 10) (float_range 0.0 2.0))
    (fun vals ->
      let points = Array.mapi (fun i v -> (float_of_int i, v)) vals in
      let w = Powergrid.Waveform.Pwl points in
      let lo = Linalg.Vec.min vals and hi = Linalg.Vec.max vals in
      List.for_all
        (fun t ->
          let v = Powergrid.Waveform.eval w t in
          v >= lo -. 1e-12 && v <= hi +. 1e-12)
        [ -1.0; 0.0; 0.5; 1.7; 3.3; 100.0 ])

let prop_grid_dc_bounded_by_vdd =
  Helpers.qcheck_case ~count:10 "dc voltages within (0, VDD]" QCheck.(int_range 5 11) (fun side ->
      let spec =
        { Helpers.small_grid_spec with Powergrid.Grid_spec.rows = side; cols = side }
      in
      let circuit = Powergrid.Grid_gen.generate spec in
      let a = Powergrid.Mna.assemble circuit in
      let v = Powergrid.Dc.solve_at a 0.3e-9 in
      Array.for_all
        (fun vi -> vi > 0.0 && vi <= spec.Powergrid.Grid_spec.vdd +. 1e-9)
        v)

let suite =
  [
    prop_add_commutes;
    prop_transpose_involution;
    prop_spmv_linear;
    prop_permute_preserves_solution;
    prop_lower_plus_strict_upper;
    prop_cholesky_solves;
    prop_lu_solves_permuted_spd;
    prop_all_orderings_agree;
    prop_normal_cdf_monotone;
    prop_histogram_mass;
    prop_quantile_bounds;
    prop_online_mean_bounds;
    prop_pce_linearity_of_mean;
    prop_pce_variance_scaling;
    prop_eval_consistent_with_sampling;
    prop_sobol_total_bounded;
    prop_netlist_value_roundtrip;
    prop_waveform_pwl_within_bounds;
    prop_grid_dc_bounded_by_vdd;
  ]
