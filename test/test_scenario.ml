(* Scenario engine acceptance tests.

   The contract under test:
     - jobs sharing an operator signature share exactly one
       factorization per needed factor (asserted through the summary and
       the engine.factorizations metrics counter);
     - a warm run against the artifact store performs zero
       factorizations and reproduces the cold JSONL bitwise;
     - the JSONL stream is byte-identical for any jobs_parallel;
     - engine-owned solves match the library solvers they share factors
       with. *)

module Job = Scenario.Job
module Engine = Scenario.Engine

let nodes = 160

let base_job name =
  {
    Job.name;
    source = Job.Generated { nodes };
    analysis = Job.Dc;
    order = 2;
    h = 125e-12;
    steps = 4;
    solver = Opera.Galerkin.Direct;
    policy = Opera.Galerkin.Warn;
    sigma_scale = 1.0;
    drain_scale = 1.0;
    leak_scale = 1.0;
    probe = None;
  }

let fresh_dir () =
  let marker = Filename.temp_file "opera_engine_test" "" in
  Sys.remove marker;
  marker ^ ".d"

let records_of results =
  Array.to_list (Array.map (fun r -> Util.Json.render r.Engine.record) results)

let run ?cache_dir ?(jobs_parallel = 1) ?(resume = false) ?shard ?metrics ?emit jobs =
  let metrics = match metrics with Some m -> m | None -> Util.Metrics.create () in
  let config =
    {
      Engine.cache_dir;
      jobs_parallel;
      domains = 1;
      metrics;
      warm_start = true;
      precond = Linalg.Precond.Cholesky;
      resume;
      shard;
    }
  in
  Engine.run ~config ?emit jobs

(* --- planning ------------------------------------------------------- *)

let test_plan_groups () =
  let jobs =
    [|
      base_job "a";
      { (base_job "b") with Job.drain_scale = 2.0 } (* excitation: same operator *);
      { (base_job "c") with Job.source = Job.Generated { nodes = nodes * 2 } };
      { (base_job "d") with Job.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 } };
      { (base_job "e") with Job.analysis = Job.Transient; steps = 9 } (* steps: same operator *);
    |]
  in
  let groups = Engine.plan jobs in
  Alcotest.(check (list (list int)))
    "3 operators; first-occurrence order, members in batch order"
    [ [ 0; 1; 4 ]; [ 2 ]; [ 3 ] ]
    (Array.to_list (Array.map Array.to_list groups))

let test_signature_excludes_excitation () =
  let a = base_job "a" in
  Alcotest.(check string)
    "drain_scale shares the operator"
    (Job.signature a)
    (Job.signature { a with Job.drain_scale = 3.0 });
  Alcotest.(check string)
    "h and steps share the operator (factors are keyed per h)"
    (Job.signature a)
    (Job.signature { a with Job.h = 250e-12; steps = 16 });
  Alcotest.(check bool)
    "sigma_scale changes the operator" true
    (Job.signature a <> Job.signature { a with Job.sigma_scale = 2.0 });
  Alcotest.(check bool)
    "order changes the operator" true
    (Job.signature a <> Job.signature { a with Job.order = 3 })

(* --- netlist sources are keyed by contents --------------------------- *)

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_signature_tracks_netlist_contents () =
  let path = Filename.temp_file "opera_netlist" ".sp" in
  write_file path "* v1\nR1 a 0 1.0\nV1 a 0 1.2 RS=0.1\n.end\n";
  let job = { (base_job "nl") with Job.source = Job.Netlist path } in
  let sig1 = Job.signature job in
  Alcotest.(check string) "signature is stable while the file is" sig1 (Job.signature job);
  write_file path "* v2\nR1 a 0 2.0\nV1 a 0 1.2 RS=0.1\n.end\n";
  Alcotest.(check bool)
    "editing the netlist in place changes the signature" true
    (sig1 <> Job.signature job);
  Sys.remove path;
  (* An unreadable path must not crash planning; parsing fails later. *)
  ignore (Job.signature job)

let test_netlist_edit_invalidates_cache () =
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 60 in
  let circuit = Powergrid.Grid_gen.generate spec in
  let doubled =
    Powergrid.Circuit.make ~num_nodes:circuit.Powergrid.Circuit.num_nodes
      ~resistors:
        (Array.to_list circuit.Powergrid.Circuit.resistors
        |> List.map (fun (r : Powergrid.Circuit.resistor) ->
               { r with Powergrid.Circuit.ohms = r.Powergrid.Circuit.ohms *. 2.0 }))
      ~capacitors:(Array.to_list circuit.Powergrid.Circuit.capacitors)
      ~isources:(Array.to_list circuit.Powergrid.Circuit.isources)
      ~vsources:(Array.to_list circuit.Powergrid.Circuit.vsources)
      ~inductors:(Array.to_list circuit.Powergrid.Circuit.inductors)
      ()
  in
  let path = Filename.temp_file "opera_netlist" ".sp" in
  let jobs =
    [| { (base_job "nl") with Job.source = Job.Netlist path; analysis = Job.Transient } |]
  in
  let cache_dir = fresh_dir () in
  (* Cold run on v1 warms the cache for v1's operator... *)
  write_file path (Powergrid.Netlist.to_string circuit);
  let _, cold1 = run ~cache_dir jobs in
  Alcotest.(check bool) "v1 cold run factored" true (cold1.Engine.factorizations > 0);
  (* ...then the netlist is edited IN PLACE: same path, same dimension,
     different conductances.  The warm run must rebuild, not silently
     reuse v1's factors. *)
  write_file path (Powergrid.Netlist.to_string doubled);
  let edited_results, edited_summary = run ~cache_dir jobs in
  Alcotest.(check bool)
    "edited netlist forces refactorization" true
    (edited_summary.Engine.factorizations > 0);
  let fresh_results, _ = run jobs in
  Alcotest.(check (list string))
    "cached run on the edited netlist matches an uncached run bitwise"
    (records_of fresh_results)
    (records_of edited_results);
  Sys.remove path

(* --- the factor-once guarantee -------------------------------------- *)

let test_shared_grid_one_factorization () =
  let jobs =
    [|
      base_job "dc-a";
      { (base_job "dc-b") with Job.drain_scale = 1.5 };
      { (base_job "dc-c") with Job.drain_scale = 0.5 };
    |]
  in
  let metrics = Util.Metrics.create () in
  let results, summary = run ~metrics jobs in
  Alcotest.(check int) "3 jobs" 3 summary.Engine.jobs;
  Alcotest.(check int) "1 group" 1 summary.Engine.groups;
  Alcotest.(check int) "exactly one factorization" 1 summary.Engine.factorizations;
  Alcotest.(check int)
    "engine.factorizations counter agrees" 1
    (Util.Metrics.counter metrics "engine.factorizations");
  Alcotest.(check int)
    "engine.jobs counter" 3
    (Util.Metrics.counter metrics "engine.jobs");
  Array.iter
    (fun r ->
      Alcotest.(check bool) "dc jobs carry no response" true (r.Engine.response = None))
    results

(* --- cold/warm bitwise reproduction --------------------------------- *)

let test_warm_run_zero_factorizations_bitwise () =
  let jobs =
    [|
      { (base_job "tr") with Job.analysis = Job.Transient };
      { (base_job "tr-drain") with Job.analysis = Job.Transient; drain_scale = 1.3 };
      base_job "dc";
      { (base_job "sp") with Job.analysis = Job.Special { regions = 4; lambda = 0.5 } };
      { (base_job "yld") with Job.analysis = Job.Yield { budget_pct = 5.0 } };
    |]
  in
  let cache_dir = fresh_dir () in
  let _, cold_summary = run ~cache_dir jobs in
  let cold = run ~cache_dir jobs in
  Alcotest.(check bool)
    "cold run factored" true
    (cold_summary.Engine.factorizations > 0);
  Alcotest.(check bool) "cold run missed the store" true (cold_summary.Engine.cache_misses > 0);
  let warm_results, warm_summary = cold in
  Alcotest.(check int) "warm run: zero factorizations" 0 warm_summary.Engine.factorizations;
  Alcotest.(check int) "warm run: zero misses" 0 warm_summary.Engine.cache_misses;
  Alcotest.(check bool) "warm run: hits" true (warm_summary.Engine.cache_hits > 0);
  (* rerun truly cold (no cache) and compare record-for-record *)
  let nocache_results, _ = run jobs in
  Alcotest.(check (list string))
    "warm records match uncached run bitwise"
    (records_of nocache_results)
    (records_of warm_results)

let test_corrupt_artifact_recovers_bitwise () =
  let jobs = [| { (base_job "tr") with Job.analysis = Job.Transient } |] in
  let cache_dir = fresh_dir () in
  let cold_results, _ = run ~cache_dir jobs in
  (* damage every cached artifact in place *)
  Array.iter
    (fun f ->
      let path = Filename.concat cache_dir f in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic (len / 2) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc)
    (Sys.readdir cache_dir);
  let damaged_results, damaged_summary = run ~cache_dir jobs in
  Alcotest.(check bool)
    "damage detected as corrupt" true
    (damaged_summary.Engine.cache_corrupt > 0);
  Alcotest.(check bool) "damage forced refactorization" true (damaged_summary.Engine.factorizations > 0);
  Alcotest.(check (list string))
    "rebuilt run matches the cold run bitwise"
    (records_of cold_results)
    (records_of damaged_results);
  (* and the store healed: next run is warm again *)
  let _, healed = run ~cache_dir jobs in
  Alcotest.(check int) "healed store: zero factorizations" 0 healed.Engine.factorizations

(* --- jobs_parallel determinism --------------------------------------- *)

let test_jobs_parallel_deterministic () =
  let jobs =
    Array.init 6 (fun i ->
        match i mod 3 with
        | 0 -> { (base_job (Printf.sprintf "tr%d" i)) with Job.analysis = Job.Transient;
                 drain_scale = 1.0 +. (0.1 *. float_of_int i) }
        | 1 -> { (base_job (Printf.sprintf "dc%d" i)) with Job.drain_scale = float_of_int i }
        | _ -> { (base_job (Printf.sprintf "sp%d" i)) with
                 Job.analysis = Job.Special { regions = 4; lambda = 0.5 };
                 leak_scale = 1.0 +. (0.2 *. float_of_int i) })
  in
  let sequential, _ = run ~jobs_parallel:1 jobs in
  let parallel4, _ = run ~jobs_parallel:4 jobs in
  Alcotest.(check (list string))
    "jobs_parallel=4 stream is byte-identical to sequential"
    (records_of sequential) (records_of parallel4);
  Array.iteri
    (fun i r ->
      Alcotest.(check string) "results indexed like inputs" jobs.(i).Job.name
        r.Engine.job.Job.name)
    parallel4

(* --- engine solves match the library solvers ------------------------- *)

let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes

let test_transient_matches_galerkin () =
  let job = { (base_job "tr") with Job.analysis = Job.Transient } in
  let results, _ = run [| job |] in
  let resp =
    match results.(0).Engine.response with
    | Some r -> r
    | None -> Alcotest.fail "transient job must carry a response"
  in
  (* reference: the library transient solve on the same model *)
  let circuit = Powergrid.Grid_gen.generate spec in
  let model =
    Opera.Stochastic_model.build ~order:job.Job.order Opera.Varmodel.paper_default
      ~vdd:spec.Powergrid.Grid_spec.vdd circuit
  in
  let probe = Powergrid.Grid_gen.center_node spec in
  let options =
    { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] }
  in
  let reference, _ =
    Opera.Galerkin.solve_transient ~options model ~h:job.Job.h ~steps:job.Job.steps
  in
  for step = 1 to job.Job.steps do
    Helpers.check_float ~eps:1e-12
      (Printf.sprintf "probe mean, step %d" step)
      (Opera.Response.mean_at reference ~step ~node:probe)
      (Opera.Response.mean_at resp ~step ~node:probe);
    Helpers.check_float ~eps:1e-12
      (Printf.sprintf "probe std, step %d" step)
      (Opera.Response.std_at reference ~step ~node:probe)
      (Opera.Response.std_at resp ~step ~node:probe)
  done

let test_special_matches_special_case () =
  let lambda = 0.5 in
  let job =
    { (base_job "sp") with Job.analysis = Job.Special { regions = 4; lambda } }
  in
  let results, _ = run [| job |] in
  let resp =
    match results.(0).Engine.response with
    | Some r -> r
    | None -> Alcotest.fail "special job must carry a response"
  in
  let sspec =
    { (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes) with
      Powergrid.Grid_spec.regions_x = 2; regions_y = 2 }
  in
  let circuit = Powergrid.Grid_gen.generate sspec in
  let leaks =
    Array.init
      (sspec.Powergrid.Grid_spec.rows * sspec.Powergrid.Grid_spec.cols)
      (fun node -> (node, Powergrid.Grid_gen.region_of_node sspec node, 5e-6))
  in
  let sc =
    Opera.Special_case.make ~order:job.Job.order ~regions:4 ~lambda ~leaks
      ~vdd:sspec.Powergrid.Grid_spec.vdd circuit
  in
  let probe = Powergrid.Grid_gen.center_node sspec in
  let reference, _ =
    Opera.Special_case.solve sc ~h:job.Job.h ~steps:job.Job.steps ~probes:[| probe |]
  in
  for step = 1 to job.Job.steps do
    Helpers.check_float ~eps:1e-12
      (Printf.sprintf "special probe mean, step %d" step)
      (Opera.Response.mean_at reference ~step ~node:probe)
      (Opera.Response.mean_at resp ~step ~node:probe)
  done

(* --- job JSON parsing ------------------------------------------------ *)

let parse_batch s =
  match Util.Json.parse s with
  | Ok j -> Job.batch_of_json j
  | Error e -> Error ("json: " ^ e)

let test_job_json () =
  (match
     parse_batch
       {|{"defaults": {"nodes": 160, "solver": "direct"},
          "jobs": [{"name": "a", "analysis": "dc"},
                   {"analysis": "transient", "steps": 3, "drain_scale": 1.5}]}|}
   with
  | Ok jobs ->
      Alcotest.(check int) "two jobs" 2 (Array.length jobs);
      Alcotest.(check string) "named job" "a" jobs.(0).Job.name;
      Alcotest.(check string) "nameless job gets an index name" "job1" jobs.(1).Job.name;
      Alcotest.(check int) "defaults flow into jobs" 160
        (match jobs.(0).Job.source with Job.Generated { nodes } -> nodes | _ -> -1);
      Alcotest.(check int) "per-job override" 3 jobs.(1).Job.steps
  | Error e -> Alcotest.failf "batch rejected: %s" e);
  let expect_error what s =
    match parse_batch s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" what
  in
  expect_error "unknown job field" {|{"jobs": [{"analysis": "dc", "nodez": 100}]}|};
  expect_error "unknown batch field" {|{"jobs": [], "jbos": []}|};
  expect_error "empty jobs" {|{"jobs": []}|};
  expect_error "bad analysis" {|{"jobs": [{"analysis": "frequency"}]}|};
  expect_error "bad solver" {|{"jobs": [{"analysis": "dc", "solver": "lu"}]}|};
  expect_error "special needs a generated grid"
    {|{"jobs": [{"analysis": "special", "netlist": "x.sp"}]}|};
  expect_error "duplicate job names"
    {|{"jobs": [{"name": "a", "analysis": "dc"}, {"name": "a", "analysis": "dc"}]}|};
  expect_error "explicit name colliding with an index name"
    {|{"jobs": [{"name": "job1", "analysis": "dc"}, {"analysis": "dc"}]}|};
  expect_error "non-tileable region count"
    {|{"jobs": [{"analysis": "special", "regions": 5}]}|};
  match parse_batch {|{"jobs": [{"analysis": "special", "regions": 6}]}|} with
  | Ok jobs ->
      Alcotest.(check bool) "tileable region count parses with the requested value" true
        (jobs.(0).Job.analysis = Job.Special { regions = 6; lambda = 0.5 })
  | Error e -> Alcotest.failf "regions 6 rejected: %s" e

let test_region_split () =
  List.iter
    (fun (regions, rx, ry) ->
      let gx, gy = Job.region_split regions in
      Alcotest.(check (pair int int))
        (Printf.sprintf "split of %d" regions)
        (rx, ry) (gx, gy))
    [ (1, 1, 1); (2, 1, 2); (4, 2, 2); (6, 2, 3); (9, 3, 3); (12, 3, 4); (16, 4, 4) ]

(* --- batch-level usage errors ---------------------------------------- *)

let test_invalid_batch () =
  (match run [||] with
  | _ -> Alcotest.fail "empty batch accepted"
  | exception Engine.Invalid_batch _ -> ());
  (* An out-of-range probe must surface as Invalid_batch from the main
     domain — before the parallel fan-out — even when jobs_parallel > 1. *)
  let jobs =
    [| base_job "ok"; { (base_job "bad") with Job.probe = Some 1_000_000 } |]
  in
  match run ~jobs_parallel:2 jobs with
  | _ -> Alcotest.fail "out-of-range probe accepted"
  | exception Engine.Invalid_batch msg ->
      Alcotest.(check bool) "message names the offending job" true
        (String.starts_with ~prefix:"job bad: probe" msg)

(* --- resume: journaled results replay bitwise ------------------------- *)

let truncate_in_place path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic (len / 2) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let test_resume_replays_bitwise () =
  let jobs =
    [|
      { (base_job "tr") with Job.analysis = Job.Transient };
      base_job "dc";
      { (base_job "sp") with Job.analysis = Job.Special { regions = 4; lambda = 0.5 } };
    |]
  in
  let cache_dir = fresh_dir () in
  let cold_results, cold_summary = run ~cache_dir jobs in
  Alcotest.(check int) "cold run journals every job" 3 cold_summary.Engine.journaled;
  Alcotest.(check int) "cold run replays nothing" 0 cold_summary.Engine.replayed;
  (* Resume: every record replays from the journal; no job executes. *)
  let metrics = Util.Metrics.create () in
  let resumed_results, resumed_summary = run ~cache_dir ~resume:true ~metrics jobs in
  Alcotest.(check int) "resume replays every job" 3 resumed_summary.Engine.replayed;
  Alcotest.(check int) "resume journals nothing new" 0 resumed_summary.Engine.journaled;
  Alcotest.(check int) "resume factors nothing" 0 resumed_summary.Engine.factorizations;
  Alcotest.(check int) "no job executed" 0 (Util.Metrics.counter metrics "engine.jobs");
  Alcotest.(check (list string))
    "replayed records match the cold run bitwise"
    (records_of cold_results) (records_of resumed_results);
  Array.iter
    (fun r -> Alcotest.(check bool) "replayed results carry no response" true (r.Engine.response = None))
    resumed_results;
  (* Truncate one journal entry mid-record: the damaged entry must be
     dropped and its job re-run, never trusted. *)
  let registry = Scenario.Registry.create ~dir:(Some cache_dir) () in
  (match Scenario.Registry.path registry jobs.(0) with
  | Some path -> truncate_in_place path
  | None -> Alcotest.fail "registry path missing");
  let damaged_results, damaged_summary = run ~cache_dir ~resume:true jobs in
  Alcotest.(check int) "two intact entries replay" 2 damaged_summary.Engine.replayed;
  Alcotest.(check int) "the damaged job re-runs and re-journals" 1 damaged_summary.Engine.journaled;
  Alcotest.(check int) "one corrupt journal entry dropped" 1 damaged_summary.Engine.registry_corrupt;
  Alcotest.(check (list string))
    "stream after journal damage still matches the cold run bitwise"
    (records_of cold_results) (records_of damaged_results);
  (* ...and the journal healed: a further resume replays everything. *)
  let _, healed = run ~cache_dir ~resume:true jobs in
  Alcotest.(check int) "healed journal replays every job" 3 healed.Engine.replayed;
  (* Zero-length journal entry (a crash between open and first write):
     Codec.read_file raises Corrupt, and the registry must take the same
     drop-and-re-run path, not crash or replay an empty record. *)
  (match Scenario.Registry.path registry jobs.(1) with
  | Some path -> close_out (open_out_bin path)
  | None -> Alcotest.fail "registry path missing");
  let zeroed_results, zeroed_summary = run ~cache_dir ~resume:true jobs in
  Alcotest.(check int) "zero-length entry dropped" 1 zeroed_summary.Engine.registry_corrupt;
  Alcotest.(check int) "its job re-runs and re-journals" 1 zeroed_summary.Engine.journaled;
  Alcotest.(check (list string))
    "stream after zero-length damage still matches the cold run bitwise"
    (records_of cold_results) (records_of zeroed_results)

(* --- a simulated kill mid-stream, then resume ------------------------- *)

exception Kill

let test_kill_then_resume () =
  let jobs =
    Array.init 5 (fun i ->
        { (base_job (Printf.sprintf "dc%d" i)) with Job.drain_scale = 0.5 +. (0.25 *. float_of_int i) })
  in
  let cache_dir = fresh_dir () in
  let reference_results, _ = run jobs in
  let emitted = ref 0 in
  let emit _ =
    incr emitted;
    if !emitted > 2 then raise Kill
  in
  (match run ~cache_dir ~emit jobs with
  | _ -> Alcotest.fail "killed run was not killed"
  | exception Kill -> ());
  Alcotest.(check int) "two records left; the third emit was the kill" 3 !emitted;
  (* The journal survived the kill: resume replays the finished prefix,
     runs the rest, and the full stream is bitwise identical to an
     uninterrupted run — with zero factorizations, because the killed
     run's group setup already cached the factor. *)
  let resumed_results, s = run ~cache_dir ~resume:true jobs in
  Alcotest.(check bool) "the killed run journaled its completions" true (s.Engine.replayed >= 2);
  Alcotest.(check int) "replays + reruns cover the batch" 5 (s.Engine.replayed + s.Engine.journaled);
  Alcotest.(check int) "nothing refactored on resume" 0 s.Engine.factorizations;
  Alcotest.(check (list string))
    "resumed stream is bitwise identical to an uninterrupted run"
    (records_of reference_results) (records_of resumed_results)

(* --- shard partitioning ----------------------------------------------- *)

let test_shard_partition () =
  let jobs =
    Array.init 7 (fun i ->
        { (base_job (Printf.sprintf "dc%d" i)) with Job.drain_scale = 1.0 +. (0.1 *. float_of_int i) })
  in
  let names jobs = Array.to_list (Array.map (fun (r : Engine.result) -> r.Engine.job.Job.name) jobs) in
  List.iter
    (fun k ->
      let slices =
        List.init k (fun i ->
            let results, s = run ~shard:(i, k) jobs in
            Alcotest.(check int)
              (Printf.sprintf "summary jobs = slice size (shard %d/%d)" i k)
              (Array.length results) s.Engine.jobs;
            (* Each shard keeps batch order and is exactly the subset the
               index hash assigns to it. *)
            let expected =
              List.filteri (fun idx _ -> Engine.shard_of idx ~shards:k = i) (Array.to_list jobs)
              |> List.map (fun (j : Job.t) -> j.Job.name)
            in
            Alcotest.(check (list string))
              (Printf.sprintf "shard %d/%d is its hash slice, in batch order" i k)
              expected (names results);
            names results)
        |> List.concat
      in
      (* Completeness and disjointness: k shards together are a
         permutation-free partition — every job exactly once. *)
      Alcotest.(check (list string))
        (Printf.sprintf "%d shards cover every job exactly once" k)
        (List.sort compare (Array.to_list (Array.map (fun (j : Job.t) -> j.Job.name) jobs)))
        (List.sort compare slices))
    [ 1; 2; 3 ];
  List.iter
    (fun shard ->
      match run ~shard jobs with
      | _ -> Alcotest.failf "invalid shard accepted"
      | exception Engine.Invalid_batch _ -> ())
    [ (2, 2); (-1, 3); (0, 0) ]

(* --- streamed JSONL survives a mid-batch abort ------------------------ *)

let test_streaming_prefix_survives_abort () =
  let diverging =
    {
      (base_job "diverge") with
      Job.solver = Opera.Galerkin.Mean_pcg { tol = 1e-30; max_iter = 1 };
      policy = Opera.Galerkin.Fail;
    }
  in
  let ok_a = base_job "a" and ok_b = { (base_job "b") with Job.drain_scale = 1.5 } in
  let jobs = [| ok_a; ok_b; diverging; { (base_job "d") with Job.drain_scale = 0.25 } |] in
  let path = Filename.temp_file "opera_stream" ".jsonl" in
  let oc = open_out path in
  let config = { Engine.default_config with Engine.metrics = Util.Metrics.create () } in
  (match
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Engine.run_jsonl ~config oc jobs)
   with
  | _ -> Alcotest.fail "diverging fail-policy job did not abort the batch"
  | exception Opera.Galerkin.Solver_diverged _ -> ());
  let ic = open_in_bin path in
  let streamed = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (* Jobs before the failure were flushed as they completed; nothing at
     or past the failing index leaked out. *)
  let reference, _ = run [| ok_a; ok_b |] in
  Alcotest.(check string)
    "the flushed stream is exactly the pre-failure prefix"
    (String.concat "" (List.map (fun r -> r ^ "\n") (records_of reference)))
    streamed

(* --- journal GC ------------------------------------------------------- *)

let test_registry_gc () =
  let keep = base_job "keep" in
  let drop = { (base_job "drop") with Job.drain_scale = 2.0 } in
  let cache_dir = fresh_dir () in
  let _, s = run ~cache_dir [| keep; drop |] in
  Alcotest.(check int) "both jobs journaled" 2 s.Engine.journaled;
  let registry = Scenario.Registry.create ~dir:(Some cache_dir) () in
  Alcotest.(check int) "gc drops the job that left the batch" 1
    (Scenario.Registry.gc registry ~keep:[| keep |]);
  Alcotest.(check int) "gc again: nothing left to drop" 0
    (Scenario.Registry.gc registry ~keep:[| keep |]);
  let _, kept = run ~cache_dir ~resume:true [| keep |] in
  Alcotest.(check int) "kept journal entry still replays" 1 kept.Engine.replayed;
  let _, dropped = run ~cache_dir ~resume:true [| drop |] in
  Alcotest.(check int) "dropped entry is gone (job re-runs)" 0 dropped.Engine.replayed;
  (* GC only touches journal entries: the shared factor is still cached. *)
  Alcotest.(check int) "factors survived the gc" 0 dropped.Engine.factorizations

(* --- result signature ------------------------------------------------- *)

let test_result_signature_covers_record_knobs () =
  let a = base_job "a" in
  Alcotest.(check string)
    "result signature is stable" (Job.result_signature a) (Job.result_signature a);
  List.iter
    (fun (what, b) ->
      Alcotest.(check bool) (what ^ " changes the result signature") true
        (Job.result_signature a <> Job.result_signature b))
    [
      ("name", { a with Job.name = "b" });
      ("drain_scale", { a with Job.drain_scale = 2.0 });
      ("leak_scale", { a with Job.leak_scale = 2.0 });
      ("steps", { a with Job.steps = 9 });
      ("h", { a with Job.h = 250e-12 });
      ("probe", { a with Job.probe = Some 3 });
      ("policy", { a with Job.policy = Opera.Galerkin.Fail });
      ("analysis payload", { a with Job.analysis = Job.Yield { budget_pct = 5.0 } });
    ];
  (* Convergence knobs stay out of the OPERATOR signature (same factors)
     but must key the RESULT journal: a looser tolerance can change the
     digits of an iterative record. *)
  let pcg tol = { a with Job.solver = Opera.Galerkin.Mean_pcg { tol; max_iter = 500 } } in
  Alcotest.(check string)
    "pcg tolerance shares the operator"
    (Job.signature (pcg 1e-10)) (Job.signature (pcg 1e-6));
  Alcotest.(check bool) "pcg tolerance changes the result signature" true
    (Job.result_signature (pcg 1e-10) <> Job.result_signature (pcg 1e-6))

let suite =
  [
    Alcotest.test_case "plan groups by operator signature" `Quick test_plan_groups;
    Alcotest.test_case "signature excludes excitation and h" `Quick
      test_signature_excludes_excitation;
    Alcotest.test_case "3 jobs, one grid, one factorization" `Quick
      test_shared_grid_one_factorization;
    Alcotest.test_case "warm run: 0 factorizations, bitwise equal" `Slow
      test_warm_run_zero_factorizations_bitwise;
    Alcotest.test_case "corrupt artifacts rebuild bitwise" `Slow
      test_corrupt_artifact_recovers_bitwise;
    Alcotest.test_case "jobs_parallel never changes the stream" `Slow
      test_jobs_parallel_deterministic;
    Alcotest.test_case "engine transient = Galerkin.solve_transient" `Quick
      test_transient_matches_galerkin;
    Alcotest.test_case "engine special = Special_case.solve" `Quick
      test_special_matches_special_case;
    Alcotest.test_case "job JSON parsing and rejection" `Quick test_job_json;
    Alcotest.test_case "netlist signature tracks file contents" `Quick
      test_signature_tracks_netlist_contents;
    Alcotest.test_case "editing a netlist invalidates its cache entries" `Slow
      test_netlist_edit_invalidates_cache;
    Alcotest.test_case "region_split near-square tilings" `Quick test_region_split;
    Alcotest.test_case "empty batch / bad probe raise Invalid_batch" `Quick test_invalid_batch;
    Alcotest.test_case "resume replays journaled records bitwise" `Slow
      test_resume_replays_bitwise;
    Alcotest.test_case "kill mid-stream, resume completes bitwise" `Slow test_kill_then_resume;
    Alcotest.test_case "shards partition the batch exactly once" `Slow test_shard_partition;
    Alcotest.test_case "streamed JSONL keeps the pre-abort prefix" `Quick
      test_streaming_prefix_survives_abort;
    Alcotest.test_case "registry gc drops only departed journal entries" `Quick
      test_registry_gc;
    Alcotest.test_case "result signature covers record-shaping knobs" `Quick
      test_result_signature_covers_record_knobs;
  ]
