(* Matrix-free stochastic Galerkin operator (Galerkin_op): equivalence
   with the assembled Kronecker sum, Matrix_free_pcg solver agreement
   with Direct, bitwise domain determinism, and the no-kron guarantee. *)

let vdd = 1.2

let small_model ?(order = 2) () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  Opera.Stochastic_model.build ~order Opera.Varmodel.paper_default ~vdd circuit

(* --- apply == assembled ------------------------------------------------ *)

(* Random per-rank matrices against the explicit Kronecker sum
   [sum_r T_r (x) A_r]. *)
let test_apply_matches_kron_sum =
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  let tp = Polychaos.Triple_product.create basis in
  let n = 5 in
  let size = Polychaos.Basis.size basis in
  let dim = size * n in
  let arb = QCheck.(array_of_size (Gen.return dim) (float_range (-2.) 2.)) in
  Helpers.qcheck_case ~count:40 "apply = Kronecker sum (random terms)" arb (fun x ->
      let rng = Helpers.rng () in
      let terms =
        List.map
          (fun r -> (r, Helpers.random_sparse_spd rng n ~extra_edges:4))
          [ 0; 1; 2 ]
      in
      let assembled =
        List.fold_left
          (fun acc (r, a) ->
            Linalg.Sparse.add acc
              (Linalg.Sparse.kron (Polychaos.Triple_product.coupling_matrix tp r) a))
          (Linalg.Sparse.zero ~nrows:dim ~ncols:dim)
          terms
      in
      let op = Opera.Galerkin_op.of_terms ~tp ~n terms in
      let y_ref = Linalg.Sparse.mul_vec assembled x in
      let y_op = Opera.Galerkin_op.apply op x in
      Linalg.Vec.approx_equal ~tol:1e-10 y_ref y_op)

(* Model-derived operators Gt, Ct and the stepping combination. *)
let test_model_operators_match_assembled =
  let m = small_model () in
  let n = m.Opera.Stochastic_model.n in
  let size = Polychaos.Basis.size m.Opera.Stochastic_model.basis in
  let dim = size * n in
  let gt = Opera.Galerkin.assemble_g m in
  let ct = Opera.Galerkin.assemble_c m in
  let h = 0.25e-9 in
  let mt = Linalg.Sparse.axpy ~alpha:(1.0 /. h) ct gt in
  let op_g = Opera.Galerkin_op.gt m in
  let op_c = Opera.Galerkin_op.ct m in
  let op_m = Opera.Galerkin_op.gt_plus_ct ~ct_scale:(1.0 /. h) m in
  let arb = QCheck.(array_of_size (Gen.return dim) (float_range (-1.) 1.)) in
  Helpers.qcheck_case ~count:20 "Gt/Ct/(Gt+Ct/h) match assembled" arb (fun x ->
      Linalg.Vec.approx_equal ~tol:1e-10 (Linalg.Sparse.mul_vec gt x)
        (Opera.Galerkin_op.apply op_g x)
      && Linalg.Vec.approx_equal ~tol:1e-10 (Linalg.Sparse.mul_vec ct x)
           (Opera.Galerkin_op.apply op_c x)
      && Linalg.Vec.approx_equal ~tol:1e-10 (Linalg.Sparse.mul_vec mt x)
           (Opera.Galerkin_op.apply op_m x))

let test_shapes_and_nnz () =
  let m = small_model () in
  let n = m.Opera.Stochastic_model.n in
  let size = Polychaos.Basis.size m.Opera.Stochastic_model.basis in
  let op = Opera.Galerkin_op.gt m in
  Alcotest.(check int) "dim" (size * n) (Opera.Galerkin_op.dim op);
  Alcotest.(check int) "block_dim" n (Opera.Galerkin_op.block_dim op);
  Alcotest.(check int) "blocks" size (Opera.Galerkin_op.blocks op);
  let term_nnz =
    List.fold_left
      (fun acc (_, a) -> acc + Linalg.Sparse.nnz a)
      0 m.Opera.Stochastic_model.g_terms
  in
  Alcotest.(check int) "nnz = terms + coupling"
    (term_nnz + Opera.Galerkin_op.coupling_nnz op)
    (Opera.Galerkin_op.nnz op);
  let assembled = Opera.Galerkin.assemble_g m in
  Alcotest.(check bool) "matrix-free storage below assembled" true
    (Opera.Galerkin_op.nnz op < Linalg.Sparse.nnz assembled)

(* --- Matrix_free_pcg == Direct ---------------------------------------- *)

let solver_options ?(domains = 1) solver =
  { Opera.Galerkin.default_options with Opera.Galerkin.solver; domains }

let test_matrix_free_dc_matches_direct () =
  let m = small_model () in
  let a_direct = Opera.Galerkin.solve_dc ~options:(solver_options Opera.Galerkin.Direct) m in
  let a_mf =
    Opera.Galerkin.solve_dc
      ~options:
        (solver_options (Opera.Galerkin.Matrix_free_pcg { tol = 1e-12; max_iter = 1000 }))
      m
  in
  Helpers.check_vec ~eps:1e-6 "stochastic DC coefficients" a_direct a_mf

let test_matrix_free_transient_matches_direct () =
  let m = small_model () in
  let steps = 8 in
  let solve solver =
    fst (Opera.Galerkin.solve_transient ~options:(solver_options solver) m ~h:0.25e-9 ~steps)
  in
  let r1 = solve Opera.Galerkin.Direct in
  let r2 = solve (Opera.Galerkin.Matrix_free_pcg { tol = 1e-12; max_iter = 1000 }) in
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:1e-6 "means agree"
        (Opera.Response.mean_at r1 ~step ~node)
        (Opera.Response.mean_at r2 ~step ~node);
      Helpers.check_float ~eps:1e-6 "variances agree"
        (Opera.Response.variance_at r1 ~step ~node)
        (Opera.Response.variance_at r2 ~step ~node)
    done
  done

let test_matrix_free_trapezoidal () =
  let m = small_model () in
  let steps = 6 in
  let solve solver =
    let options =
      { (solver_options solver) with
        Opera.Galerkin.scheme = Powergrid.Transient.Trapezoidal }
    in
    fst (Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps)
  in
  let r1 = solve Opera.Galerkin.Direct in
  let r2 = solve (Opera.Galerkin.Matrix_free_pcg { tol = 1e-12; max_iter = 1000 }) in
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:1e-6 "trapezoidal means agree"
        (Opera.Response.mean_at r1 ~step ~node)
        (Opera.Response.mean_at r2 ~step ~node)
    done
  done

(* --- domain determinism ------------------------------------------------ *)

let test_apply_bitwise_across_domains () =
  let m = small_model ~order:3 () in
  let op1 = Opera.Galerkin_op.gt ~domains:1 m in
  let dim = Opera.Galerkin_op.dim op1 in
  let rng = Helpers.rng () in
  let x = Helpers.random_vec rng dim in
  let y1 = Opera.Galerkin_op.apply op1 x in
  List.iter
    (fun d ->
      let opd = Opera.Galerkin_op.with_domains op1 d in
      Alcotest.(check int) "resolved domains" d (Opera.Galerkin_op.domains opd);
      let yd = Opera.Galerkin_op.apply opd x in
      Array.iteri
        (fun i v ->
          if v <> y1.(i) then
            Alcotest.failf "apply differs at %d with %d domains: %.17g vs %.17g" i d v
              y1.(i))
        yd)
    [ 2; 3; 4 ]

let test_solve_bitwise_across_domains () =
  let m = small_model () in
  let steps = 6 in
  let solve domains =
    let options =
      solver_options ~domains (Opera.Galerkin.Matrix_free_pcg { tol = 1e-12; max_iter = 1000 })
    in
    fst (Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps)
  in
  let r1 = solve 1 and r3 = solve 3 in
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:0.0 "sequential = 3 domains (bitwise)"
        (Opera.Response.mean_at r1 ~step ~node)
        (Opera.Response.mean_at r3 ~step ~node)
    done
  done

(* --- AMG mean-block preconditioner ------------------------------------- *)

let test_amg_precond_matches_direct () =
  let m = small_model () in
  let a_direct = Opera.Galerkin.solve_dc ~options:(solver_options Opera.Galerkin.Direct) m in
  let a_amg =
    Opera.Galerkin.solve_dc
      ~options:
        {
          (solver_options (Opera.Galerkin.Mean_pcg { tol = 1e-12; max_iter = 2000 })) with
          Opera.Galerkin.precond = Linalg.Precond.Amg;
        }
      m
  in
  Helpers.check_vec ~eps:1e-6 "AMG-preconditioned DC coefficients" a_direct a_amg

let test_amg_precond_bitwise_across_domains () =
  (* One AMG application is a purely sequential pass, so swapping the
     chaos-block fan-out width must not move a single bit. *)
  let m = small_model () in
  let steps = 4 in
  let solve domains =
    let options =
      {
        (solver_options ~domains (Opera.Galerkin.Matrix_free_pcg { tol = 1e-12; max_iter = 1000 })) with
        Opera.Galerkin.precond = Linalg.Precond.Amg;
      }
    in
    fst (Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps)
  in
  let r1 = solve 1 and r3 = solve 3 in
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:0.0 "AMG precond: sequential = 3 domains (bitwise)"
        (Opera.Response.mean_at r1 ~step ~node)
        (Opera.Response.mean_at r3 ~step ~node)
    done
  done

(* --- never assembles the Kronecker product ----------------------------- *)

let test_matrix_free_never_calls_kron () =
  let m = small_model () in
  let before = Linalg.Sparse.kron_count () in
  let _ =
    Opera.Galerkin.solve_transient
      ~options:(solver_options (Opera.Galerkin.Matrix_free_pcg { tol = 1e-10; max_iter = 500 }))
      m ~h:0.25e-9 ~steps:4
  in
  Alcotest.(check int) "no Sparse.kron in matrix-free solve" before
    (Linalg.Sparse.kron_count ());
  (* sanity: the assembled route does call kron, so the counter works *)
  let _ =
    Opera.Galerkin.solve_transient ~options:(solver_options Opera.Galerkin.Direct) m
      ~h:0.25e-9 ~steps:1
  in
  Alcotest.(check bool) "Direct route does assemble" true
    (Linalg.Sparse.kron_count () > before)

(* --- argument validation ----------------------------------------------- *)

let test_apply_into_rejects_aliasing () =
  let m = small_model () in
  let op = Opera.Galerkin_op.gt m in
  let x = Array.make (Opera.Galerkin_op.dim op) 1.0 in
  Alcotest.check_raises "x == y rejected" (Invalid_argument "Galerkin_op.apply_into: x and y must be distinct")
    (fun () -> Opera.Galerkin_op.apply_into op x x);
  let short = Array.make 3 0.0 in
  (try
     Opera.Galerkin_op.apply_into op short (Array.make (Opera.Galerkin_op.dim op) 0.0);
     Alcotest.fail "short x accepted"
   with Invalid_argument _ -> ())

let suite =
  [
    test_apply_matches_kron_sum;
    test_model_operators_match_assembled;
    Alcotest.test_case "shapes and nnz" `Quick test_shapes_and_nnz;
    Alcotest.test_case "matrix-free DC = direct" `Quick test_matrix_free_dc_matches_direct;
    Alcotest.test_case "matrix-free transient = direct" `Quick
      test_matrix_free_transient_matches_direct;
    Alcotest.test_case "matrix-free trapezoidal = direct" `Quick test_matrix_free_trapezoidal;
    Alcotest.test_case "apply bitwise across domains" `Quick test_apply_bitwise_across_domains;
    Alcotest.test_case "solve bitwise across domains" `Quick test_solve_bitwise_across_domains;
    Alcotest.test_case "AMG precond DC = direct" `Quick test_amg_precond_matches_direct;
    Alcotest.test_case "AMG precond bitwise across domains" `Quick
      test_amg_precond_bitwise_across_domains;
    Alcotest.test_case "never calls kron" `Quick test_matrix_free_never_calls_kron;
    Alcotest.test_case "apply_into validation" `Quick test_apply_into_rejects_aliasing;
  ]
