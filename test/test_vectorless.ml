(* Vectorless worst-case IR-drop bounds. *)

let grid () =
  let circuit = Powergrid.Grid_gen.generate Helpers.small_grid_spec in
  Powergrid.Mna.assemble circuit

let test_transfer_impedance_physical () =
  let a = grid () in
  let v = Powergrid.Vectorless.prepare a in
  let node = 27 in
  let z = Powergrid.Vectorless.transfer_impedance v ~node in
  (* Positive (passive network), self-impedance is the maximum. *)
  Array.iter (fun zi -> Alcotest.(check bool) "nonnegative" true (zi >= -1e-12)) z;
  let self = z.(node) in
  Array.iter (fun zi -> Alcotest.(check bool) "self is max" true (zi <= self +. 1e-12)) z;
  (* Symmetry of the impedance matrix: Z(v, w) = Z(w, v). *)
  let other = 51 in
  let z2 = Powergrid.Vectorless.transfer_impedance v ~node:other in
  Helpers.check_close ~rtol:1e-9 "reciprocity" z.(other) z2.(node)

let test_worst_case_matches_brute_force () =
  let a = grid () in
  let v = Powergrid.Vectorless.prepare a in
  let node = 27 in
  let sources = [| (3, 0.02); (27, 0.01); (40, 0.015); (55, 0.02) |] in
  let total = 0.03 in
  let bound, alloc = Powergrid.Vectorless.worst_case_drop v ~node ~local_budgets:sources
      ~total_budget:total
  in
  (* Brute force over a fine grid of feasible allocations (4 sources):
     the greedy optimum must dominate every sampled feasible point. *)
  let z = Powergrid.Vectorless.transfer_impedance v ~node in
  let rng = Helpers.rng () in
  for _ = 1 to 2000 do
    (* random feasible allocation *)
    let draw = Array.map (fun (i, b) -> (i, b *. Prob.Rng.float rng)) sources in
    let sum = Array.fold_left (fun acc (_, x) -> acc +. x) 0.0 draw in
    let scale = if sum > total then total /. sum else 1.0 in
    let drop =
      Array.fold_left (fun acc (i, x) -> acc +. (z.(i) *. x *. scale)) 0.0 draw
    in
    Alcotest.(check bool) "greedy dominates sample" true (drop <= bound +. 1e-12)
  done;
  (* Allocation is feasible and exhausts the budget. *)
  let used = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 alloc in
  Helpers.check_float ~eps:1e-12 "budget exhausted" total used;
  List.iter
    (fun (i, x) ->
      let _, cap = Array.to_list sources |> List.find (fun (j, _) -> j = i) in
      Alcotest.(check bool) "within local budget" true (x <= cap +. 1e-12))
    alloc

let test_worst_case_vs_transient () =
  (* The vectorless bound must dominate any simulated drop whose currents
     respect the budgets. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  let v = Powergrid.Vectorless.prepare a in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let node = Powergrid.Grid_gen.center_node spec in
  (* Budgets: each source's actual waveform peak; total: sum of peaks. *)
  let budgets =
    Array.map
      (fun (s : Powergrid.Circuit.current_source) ->
        (s.Powergrid.Circuit.inode, Powergrid.Waveform.peak s.Powergrid.Circuit.wave))
      circuit.Powergrid.Circuit.isources
  in
  let total = Array.fold_left (fun acc (_, b) -> acc +. b) 0.0 budgets in
  let bound, _ = Powergrid.Vectorless.worst_case_drop v ~node ~local_budgets:budgets
      ~total_budget:total
  in
  let observed = ref 0.0 in
  let cfg = Powergrid.Transient.default_config ~h:0.125e-9 ~steps:16 in
  Powergrid.Transient.run_circuit cfg a ~on_step:(fun _ _ x ->
      observed := Float.max !observed (vdd -. x.(node)));
  Alcotest.(check bool)
    (Printf.sprintf "bound %.4f >= observed %.4f" bound !observed)
    true
    (bound >= !observed -. 1e-12)

let suite =
  [
    Alcotest.test_case "transfer impedance physics" `Quick test_transfer_impedance_physical;
    Alcotest.test_case "greedy = optimum" `Slow test_worst_case_matches_brute_force;
    Alcotest.test_case "bound dominates transient" `Quick test_worst_case_vs_transient;
  ]
