let test_create_and_fill () =
  let v = Linalg.Vec.create 5 in
  Helpers.check_float "zero init" 0.0 (Linalg.Vec.sum v);
  Linalg.Vec.fill v 2.0;
  Helpers.check_float "fill" 10.0 (Linalg.Vec.sum v)

let test_dot () =
  Helpers.check_float "dot" 32.0 (Linalg.Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Vec.dot: length mismatch (2 vs 3)") (fun () ->
      ignore (Linalg.Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_axpy () =
  let y = [| 1.0; 1.0; 1.0 |] in
  Linalg.Vec.axpy ~alpha:2.0 [| 1.0; 2.0; 3.0 |] y;
  Helpers.check_vec "axpy" [| 3.0; 5.0; 7.0 |] y

let test_scale () =
  let x = [| 1.0; -2.0 |] in
  Linalg.Vec.scale (-3.0) x;
  Helpers.check_vec "scale in place" [| -3.0; 6.0 |] x;
  Helpers.check_vec "scaled" [| 2.0; 4.0 |] (Linalg.Vec.scaled 2.0 [| 1.0; 2.0 |])

let test_arith () =
  Helpers.check_vec "add" [| 4.0; 6.0 |] (Linalg.Vec.add [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  Helpers.check_vec "sub" [| -2.0; -2.0 |] (Linalg.Vec.sub [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  Helpers.check_vec "mul" [| 3.0; 8.0 |]
    (Linalg.Vec.mul_elementwise [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  Helpers.check_vec "neg" [| -1.0; 2.0 |] (Linalg.Vec.neg [| 1.0; -2.0 |])

let test_norms () =
  Helpers.check_float "norm2" 5.0 (Linalg.Vec.norm2 [| 3.0; 4.0 |]);
  Helpers.check_float "norm_inf" 4.0 (Linalg.Vec.norm_inf [| 3.0; -4.0 |]);
  Helpers.check_float "dist2" 5.0 (Linalg.Vec.dist2 [| 3.0; 4.0 |] [| 0.0; 0.0 |])

let test_minmax () =
  Helpers.check_float "min" (-2.0) (Linalg.Vec.min [| 1.0; -2.0; 3.0 |]);
  Helpers.check_float "max" 3.0 (Linalg.Vec.max [| 1.0; -2.0; 3.0 |]);
  Alcotest.(check int) "max_abs_index" 1 (Linalg.Vec.max_abs_index [| 1.0; -5.0; 3.0 |]);
  Helpers.check_float "mean" 2.0 (Linalg.Vec.mean [| 1.0; 2.0; 3.0 |])

let test_rel_error () =
  Helpers.check_float "rel_error" 0.5
    (Linalg.Vec.rel_error [| 1.5 |] ~reference:[| 1.0 |]);
  Helpers.check_float "rel_error zero ref" 2.0
    (Linalg.Vec.rel_error [| 2.0 |] ~reference:[| 0.0 |])

let prop_dot_symmetric =
  Helpers.qcheck_case "dot is symmetric"
    QCheck.(pair (array_of_size (Gen.return 8) (float_range (-10.) 10.))
              (array_of_size (Gen.return 8) (float_range (-10.) 10.)))
    (fun (x, y) ->
      Float.abs (Linalg.Vec.dot x y -. Linalg.Vec.dot y x) < 1e-9)

let prop_triangle =
  Helpers.qcheck_case "norm2 triangle inequality"
    QCheck.(pair (array_of_size (Gen.return 6) (float_range (-10.) 10.))
              (array_of_size (Gen.return 6) (float_range (-10.) 10.)))
    (fun (x, y) ->
      Linalg.Vec.norm2 (Linalg.Vec.add x y)
      <= Linalg.Vec.norm2 x +. Linalg.Vec.norm2 y +. 1e-9)

let suite =
  [
    Alcotest.test_case "create/fill" `Quick test_create_and_fill;
    Alcotest.test_case "dot" `Quick test_dot;
    Alcotest.test_case "axpy" `Quick test_axpy;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "norms" `Quick test_norms;
    Alcotest.test_case "min/max" `Quick test_minmax;
    Alcotest.test_case "rel_error" `Quick test_rel_error;
    prop_dot_symmetric;
    prop_triangle;
  ]
