(* Smolyak sparse quadrature. *)

let gaussian_moment k =
  (* E[x^k] for standard normal: (k-1)!! for even k, 0 for odd. *)
  if k mod 2 = 1 then 0.0
  else begin
    let acc = ref 1.0 in
    let i = ref (k - 1) in
    while !i > 1 do
      acc := !acc *. float_of_int !i;
      i := !i - 2
    done;
    !acc
  end

let test_level1_is_mean () =
  let fams = Array.make 3 Polychaos.Family.hermite in
  let s = Polychaos.Smolyak.create fams ~level:1 in
  Alcotest.(check int) "single node" 1 (Polychaos.Smolyak.node_count s);
  Helpers.check_float ~eps:1e-12 "integrates constants" 4.2
    (Polychaos.Smolyak.integrate s (fun _ -> 4.2))

let test_weights_sum_to_one () =
  List.iter
    (fun (dim, level) ->
      let fams = Array.make dim Polychaos.Family.hermite in
      let s = Polychaos.Smolyak.create fams ~level in
      Helpers.check_float ~eps:1e-10
        (Printf.sprintf "dim %d level %d" dim level)
        1.0
        (Polychaos.Smolyak.integrate s (fun _ -> 1.0)))
    [ (1, 3); (2, 3); (3, 2); (4, 3); (5, 2) ]

let test_polynomial_exactness () =
  (* Level L with linear-growth Gauss rules integrates total degree
     2L - 1 exactly. Check mixed monomials in 3 dims at level 3. *)
  let dim = 3 and level = 3 in
  let fams = Array.make dim Polychaos.Family.hermite in
  let s = Polychaos.Smolyak.create fams ~level in
  let check_monomial es =
    let expected = Array.fold_left (fun acc e -> acc *. gaussian_moment e) 1.0 es in
    let value =
      Polychaos.Smolyak.integrate s (fun x ->
          let acc = ref 1.0 in
          Array.iteri (fun d e -> acc := !acc *. (x.(d) ** float_of_int e)) es;
          !acc)
    in
    Helpers.check_float
      ~eps:(1e-8 *. (1.0 +. Float.abs expected))
      (Printf.sprintf "E[x^%d y^%d z^%d]" es.(0) es.(1) es.(2))
      expected value
  in
  List.iter check_monomial
    [
      [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |]; [| 0; 3; 0 |]; [| 4; 0; 0 |];
      [| 2; 2; 0 |]; [| 2; 2; 1 |]; [| 1; 1; 1 |]; [| 5; 0; 0 |]; [| 3; 1; 1 |];
    ]

let test_sparse_vs_tensor_size () =
  (* The point of Smolyak: far fewer nodes than the tensor rule in high
     dimension at the same 1-D depth. *)
  let dim = 8 and level = 3 in
  let fams = Array.make dim Polychaos.Family.hermite in
  let s = Polychaos.Smolyak.create fams ~level in
  let sparse = Polychaos.Smolyak.node_count s in
  let tensor = Polychaos.Smolyak.tensor_node_count ~dim ~level in
  Alcotest.(check bool)
    (Printf.sprintf "sparse %d << tensor %d" sparse tensor)
    true
    (sparse * 10 < tensor);
  (* and it still integrates degree-2 polynomials exactly *)
  Helpers.check_float ~eps:1e-8 "E[sum x_d^2] = dim" (float_of_int dim)
    (Polychaos.Smolyak.integrate s (fun x ->
         Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x))

let test_legendre_smolyak () =
  let fams = Array.make 3 Polychaos.Family.legendre in
  let s = Polychaos.Smolyak.create fams ~level:3 in
  (* E[x^2] = 1/3 under uniform(-1,1); E[x^2 y^2] = 1/9. *)
  Helpers.check_float ~eps:1e-10 "E[x^2]" (1.0 /. 3.0)
    (Polychaos.Smolyak.integrate s (fun x -> x.(0) *. x.(0)));
  Helpers.check_float ~eps:1e-10 "E[x^2 y^2]" (1.0 /. 9.0)
    (Polychaos.Smolyak.integrate s (fun x -> x.(0) *. x.(0) *. x.(1) *. x.(1)))

let suite =
  [
    Alcotest.test_case "level 1 is the mean" `Quick test_level1_is_mean;
    Alcotest.test_case "weights sum to one" `Quick test_weights_sum_to_one;
    Alcotest.test_case "polynomial exactness" `Quick test_polynomial_exactness;
    Alcotest.test_case "sparse vs tensor size" `Quick test_sparse_vs_tensor_size;
    Alcotest.test_case "legendre smolyak" `Quick test_legendre_smolyak;
  ]

let test_sparse_projection () =
  (* Project a polynomial inside the span over 6 dims: sparse projection
     must recover it exactly while the tensor grid would need 3^6 = 729
     transent-sized evaluations vs far fewer here. *)
  let dim = 6 in
  let b = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim ~order:2 in
  let f xi = 1.0 +. (0.5 *. xi.(0)) +. (0.25 *. ((xi.(3) *. xi.(3)) -. 1.0)) +. (0.1 *. xi.(1) *. xi.(5)) in
  let p = Polychaos.Projection.project_sparse b ~level:3 f in
  let rng = Prob.Rng.create ~seed:5L () in
  for _ = 1 to 100 do
    let xi = Polychaos.Basis.sample_point b rng in
    Helpers.check_float ~eps:1e-8 "recovered exactly" (f xi) (Polychaos.Pce.eval p xi)
  done;
  Helpers.check_float ~eps:1e-10 "mean" 1.0 (Polychaos.Pce.mean p)

let suite = suite @ [ Alcotest.test_case "sparse projection" `Quick test_sparse_projection ]
