(* Waveforms, circuits, grid generation, netlist round-trip. *)

let test_waveform_dc () =
  Helpers.check_float "dc" 3.0 (Powergrid.Waveform.eval (Powergrid.Waveform.Dc 3.0) 42.0)

let test_waveform_pulse () =
  let p =
    Powergrid.Waveform.Pulse
      { base = 0.0; peak = 1.0; delay = 1.0; rise = 1.0; width = 2.0; fall = 1.0; period = 0.0 }
  in
  Helpers.check_float "before delay" 0.0 (Powergrid.Waveform.eval p 0.5);
  Helpers.check_float "mid rise" 0.5 (Powergrid.Waveform.eval p 1.5);
  Helpers.check_float "plateau" 1.0 (Powergrid.Waveform.eval p 3.0);
  Helpers.check_float "mid fall" 0.5 (Powergrid.Waveform.eval p 4.5);
  Helpers.check_float "after" 0.0 (Powergrid.Waveform.eval p 6.0);
  Helpers.check_float "peak" 1.0 (Powergrid.Waveform.peak p)

let test_waveform_pulse_periodic () =
  let p =
    Powergrid.Waveform.Pulse
      { base = 0.0; peak = 2.0; delay = 0.0; rise = 1.0; width = 1.0; fall = 1.0; period = 4.0 }
  in
  Helpers.check_float "cycle 0" 1.0 (Powergrid.Waveform.eval p 0.5);
  Helpers.check_float "cycle 3 same phase" 1.0 (Powergrid.Waveform.eval p 12.5)

let test_waveform_pwl () =
  let w = Powergrid.Waveform.Pwl [| (0.0, 0.0); (1.0, 2.0); (3.0, 0.0) |] in
  Helpers.check_float "interp up" 1.0 (Powergrid.Waveform.eval w 0.5);
  Helpers.check_float "knot" 2.0 (Powergrid.Waveform.eval w 1.0);
  Helpers.check_float "interp down" 1.0 (Powergrid.Waveform.eval w 2.0);
  Helpers.check_float "hold right" 0.0 (Powergrid.Waveform.eval w 10.0);
  Helpers.check_float "hold left" 0.0 (Powergrid.Waveform.eval w (-1.0))

let test_waveform_scale () =
  let w = Powergrid.Waveform.Pwl [| (0.0, 1.0); (1.0, 3.0) |] in
  Helpers.check_float "scaled" (-1.0) (Powergrid.Waveform.eval (Powergrid.Waveform.scale (-0.5) w) 0.5)

let test_random_activity () =
  let rng = Prob.Rng.create ~seed:1L () in
  let w = Powergrid.Waveform.random_activity rng ~peak:0.01 ~period:1e-9 ~duty:1.0 ~cycles:4 in
  (* duty = 1: every cycle fires; peak within bounds; zero at cycle edges. *)
  Helpers.check_float "starts at zero" 0.0 (Powergrid.Waveform.eval w 0.0);
  let p = Powergrid.Waveform.peak w in
  Alcotest.(check bool) "peak within [0.3, 1] x requested" true (p >= 0.003 && p <= 0.01);
  let quarter = Powergrid.Waveform.eval w 0.25e-9 in
  Alcotest.(check bool) "pulse present at quarter cycle" true (quarter > 0.0);
  (* Determinism given the seed. *)
  let rng2 = Prob.Rng.create ~seed:1L () in
  let w2 = Powergrid.Waveform.random_activity rng2 ~peak:0.01 ~period:1e-9 ~duty:1.0 ~cycles:4 in
  Helpers.check_float "deterministic" (Powergrid.Waveform.eval w 0.37e-9)
    (Powergrid.Waveform.eval w2 0.37e-9)

let test_circuit_validation () =
  let r ohms = { Powergrid.Circuit.rnode1 = 0; rnode2 = 1; ohms; rkind = Powergrid.Circuit.Metal } in
  let v = { Powergrid.Circuit.vnode = 0; volts = 1.0; series_ohms = 0.1 } in
  let ok =
    Powergrid.Circuit.make ~num_nodes:2 ~resistors:[ r 1.0 ] ~capacitors:[] ~isources:[]
      ~vsources:[ v ] ()
  in
  Alcotest.(check int) "node count" 2 (Powergrid.Circuit.node_count ok);
  let fails f = try f () |> ignore; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative resistance rejected" true
    (fails (fun () ->
         Powergrid.Circuit.make ~num_nodes:2 ~resistors:[ r (-1.0) ] ~capacitors:[] ~isources:[]
           ~vsources:[ v ] ()));
  Alcotest.(check bool) "no pads rejected" true
    (fails (fun () ->
         Powergrid.Circuit.make ~num_nodes:2 ~resistors:[ r 1.0 ] ~capacitors:[] ~isources:[]
           ~vsources:[] ()));
  Alcotest.(check bool) "out-of-range node rejected" true
    (fails (fun () ->
         Powergrid.Circuit.make ~num_nodes:1 ~resistors:[ r 1.0 ] ~capacitors:[] ~isources:[]
           ~vsources:[ v ] ()))

let test_grid_gen_counts () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  Alcotest.(check int) "node count matches spec"
    (Powergrid.Grid_spec.node_count spec)
    (Powergrid.Circuit.node_count circuit);
  (* bottom 8x8 + top 2x2 (8/3 -> 2): *)
  Alcotest.(check int) "two-layer node count" ((8 * 8) + (2 * 2))
    (Powergrid.Circuit.node_count circuit);
  Alcotest.(check bool) "has pads" true (Array.length circuit.Powergrid.Circuit.vsources > 0);
  Alcotest.(check bool) "has sources" true (Array.length circuit.Powergrid.Circuit.isources > 0);
  (* every bottom node carries gate + fixed cap *)
  Alcotest.(check int) "cap count" (2 * 8 * 8) (Array.length circuit.Powergrid.Circuit.capacitors)

let test_grid_gen_determinism () =
  let spec = Helpers.small_grid_spec in
  let c1 = Powergrid.Grid_gen.generate spec in
  let c2 = Powergrid.Grid_gen.generate spec in
  Alcotest.(check string) "same structure" (Powergrid.Circuit.stats c1) (Powergrid.Circuit.stats c2);
  let w1 = (c1.Powergrid.Circuit.isources.(0)).Powergrid.Circuit.wave in
  let w2 = (c2.Powergrid.Circuit.isources.(0)).Powergrid.Circuit.wave in
  Helpers.check_float "same waveforms" (Powergrid.Waveform.eval w1 0.3e-9)
    (Powergrid.Waveform.eval w2 0.3e-9)

let test_node_addressing () =
  let spec = Helpers.small_grid_spec in
  Alcotest.(check int) "origin" 0 (Powergrid.Grid_gen.node_at spec ~layer:0 ~row:0 ~col:0);
  Alcotest.(check int) "row major" 9 (Powergrid.Grid_gen.node_at spec ~layer:0 ~row:1 ~col:1);
  Alcotest.(check int) "layer offset" 64 (Powergrid.Grid_gen.node_at spec ~layer:1 ~row:0 ~col:0);
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Powergrid.Grid_gen.node_at spec ~layer:0 ~row:100 ~col:0);
       false
     with Invalid_argument _ -> true)

let test_regions () =
  let spec = { Helpers.small_grid_spec with Powergrid.Grid_spec.regions_x = 2; regions_y = 2 } in
  let r00 = Powergrid.Grid_gen.region_of_node spec (Powergrid.Grid_gen.node_at spec ~layer:0 ~row:0 ~col:0) in
  let r01 = Powergrid.Grid_gen.region_of_node spec (Powergrid.Grid_gen.node_at spec ~layer:0 ~row:0 ~col:7) in
  let r10 = Powergrid.Grid_gen.region_of_node spec (Powergrid.Grid_gen.node_at spec ~layer:0 ~row:7 ~col:0) in
  let r11 = Powergrid.Grid_gen.region_of_node spec (Powergrid.Grid_gen.node_at spec ~layer:0 ~row:7 ~col:7) in
  Alcotest.(check (list int)) "four distinct regions" [ 0; 1; 2; 3 ]
    (List.sort_uniq compare [ r00; r01; r10; r11 ])

let test_scale_to_nodes () =
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 5000 in
  let n = Powergrid.Grid_spec.node_count spec in
  Alcotest.(check bool) (Printf.sprintf "node count %d near 5000" n) true
    (n > 3500 && n < 6500)

let test_parse_value () =
  Helpers.check_float "plain" 1.5 (Powergrid.Netlist.parse_value "1.5");
  Helpers.check_float "kilo" 2000.0 (Powergrid.Netlist.parse_value "2k");
  Helpers.check_float "milli" 0.003 (Powergrid.Netlist.parse_value "3m");
  Helpers.check_float "micro" 4e-6 (Powergrid.Netlist.parse_value "4u");
  Helpers.check_float "nano" 5e-9 (Powergrid.Netlist.parse_value "5n");
  Helpers.check_float "pico" 6e-12 (Powergrid.Netlist.parse_value "6p");
  Helpers.check_float "femto" 7e-15 (Powergrid.Netlist.parse_value "7f");
  Helpers.check_float "meg" 8e6 (Powergrid.Netlist.parse_value "8meg");
  Helpers.check_float "exponent" 120.0 (Powergrid.Netlist.parse_value "1.2e2");
  Helpers.check_float "suffix unit" 9.0 (Powergrid.Netlist.parse_value "9ohm")

let sample_netlist =
  {|* test grid
R1 a b 1.0 KIND=metal
R2 b 0 2k KIND=via
C1 a 0 1p KIND=gate
C2 b 0 2p
I1 a 0 PULSE(0 1m 0 0.1n 0.1n 0.3n 1n)
I2 b 0 5m
V1 a 0 1.2 RS=0.1
.end
|}

let test_netlist_parse () =
  let parsed = Powergrid.Netlist.parse_string sample_netlist in
  let c = parsed.Powergrid.Netlist.circuit in
  Alcotest.(check int) "nodes" 2 (Powergrid.Circuit.node_count c);
  Alcotest.(check int) "resistors" 2 (Array.length c.Powergrid.Circuit.resistors);
  Alcotest.(check int) "caps" 2 (Array.length c.Powergrid.Circuit.capacitors);
  Alcotest.(check int) "isources" 2 (Array.length c.Powergrid.Circuit.isources);
  Alcotest.(check int) "vsources" 1 (Array.length c.Powergrid.Circuit.vsources);
  Helpers.check_float "kilo parsed" 2000.0 (c.Powergrid.Circuit.resistors.(1)).Powergrid.Circuit.ohms;
  Alcotest.(check bool) "via kind" true
    ((c.Powergrid.Circuit.resistors.(1)).Powergrid.Circuit.rkind = Powergrid.Circuit.Via);
  Alcotest.(check bool) "gate kind" true
    ((c.Powergrid.Circuit.capacitors.(0)).Powergrid.Circuit.ckind = Powergrid.Circuit.Gate)

let test_netlist_roundtrip () =
  let parsed = Powergrid.Netlist.parse_string sample_netlist in
  let text = Powergrid.Netlist.to_string parsed.Powergrid.Netlist.circuit in
  let reparsed = Powergrid.Netlist.parse_string text in
  let c1 = parsed.Powergrid.Netlist.circuit and c2 = reparsed.Powergrid.Netlist.circuit in
  Alcotest.(check string) "structure preserved" (Powergrid.Circuit.stats c1)
    (Powergrid.Circuit.stats c2);
  (* Element values preserved. *)
  Array.iteri
    (fun i (r1 : Powergrid.Circuit.resistor) ->
      Helpers.check_float "ohms preserved" r1.Powergrid.Circuit.ohms
        (c2.Powergrid.Circuit.resistors.(i)).Powergrid.Circuit.ohms)
    c1.Powergrid.Circuit.resistors

let test_netlist_grid_roundtrip () =
  let circuit = Powergrid.Grid_gen.generate Helpers.small_grid_spec in
  let text = Powergrid.Netlist.to_string circuit in
  let reparsed = (Powergrid.Netlist.parse_string text).Powergrid.Netlist.circuit in
  Alcotest.(check string) "generated grid round-trips" (Powergrid.Circuit.stats circuit)
    (Powergrid.Circuit.stats reparsed);
  (* Waveforms survive (PWL exact round-trip). *)
  let w1 = (circuit.Powergrid.Circuit.isources.(0)).Powergrid.Circuit.wave in
  let w2 = (reparsed.Powergrid.Circuit.isources.(0)).Powergrid.Circuit.wave in
  List.iter
    (fun t ->
      Helpers.check_close ~rtol:1e-6 "waveform value" (Powergrid.Waveform.eval w1 t)
        (Powergrid.Waveform.eval w2 t))
    [ 0.0; 0.2e-9; 0.7e-9; 1.3e-9 ]

let test_netlist_errors () =
  let bad text =
    try
      ignore (Powergrid.Netlist.parse_string text);
      false
    with Powergrid.Netlist.Parse_error _ -> true
  in
  Alcotest.(check bool) "garbage card" true (bad "X1 a b 1.0\nV1 a 0 1 RS=1\n");
  Alcotest.(check bool) "floating current source" true (bad "I1 a b 1m\nV1 a 0 1 RS=1\n");
  Alcotest.(check bool) "bad waveform" true (bad "I1 a 0 TRI(1 2)\nV1 a 0 1 RS=1\n")

let suite =
  [
    Alcotest.test_case "waveform dc" `Quick test_waveform_dc;
    Alcotest.test_case "waveform pulse" `Quick test_waveform_pulse;
    Alcotest.test_case "waveform pulse periodic" `Quick test_waveform_pulse_periodic;
    Alcotest.test_case "waveform pwl" `Quick test_waveform_pwl;
    Alcotest.test_case "waveform scale" `Quick test_waveform_scale;
    Alcotest.test_case "random activity" `Quick test_random_activity;
    Alcotest.test_case "circuit validation" `Quick test_circuit_validation;
    Alcotest.test_case "grid generation counts" `Quick test_grid_gen_counts;
    Alcotest.test_case "grid generation determinism" `Quick test_grid_gen_determinism;
    Alcotest.test_case "node addressing" `Quick test_node_addressing;
    Alcotest.test_case "chip regions" `Quick test_regions;
    Alcotest.test_case "scale_to_nodes" `Quick test_scale_to_nodes;
    Alcotest.test_case "netlist value parsing" `Quick test_parse_value;
    Alcotest.test_case "netlist parse" `Quick test_netlist_parse;
    Alcotest.test_case "netlist roundtrip" `Quick test_netlist_roundtrip;
    Alcotest.test_case "generated grid roundtrip" `Quick test_netlist_grid_roundtrip;
    Alcotest.test_case "netlist errors" `Quick test_netlist_errors;
  ]
