(* Order of convergence of the time integrators on an analytic RC decay.

   The scalar circuit g = c = 1 driven by u(t) = sin t obeys

     x' + x = sin t,   x(0) = x0
     x(t)  = (x0 + 1/2) exp(-t) + (sin t - cos t) / 2.

   Halving the step must cut the final-time error by ~2 for backward
   Euler (first order) and ~4 for the trapezoidal rule (second order).
   The sinusoidal forcing matters: it exercises the u_k + u_{k+1}
   right-hand side of the trapezoidal step, so a mis-scaled source term
   would destroy the observed order. *)

let one_by_one v =
  let b = Linalg.Sparse_builder.create ~nrows:1 ~ncols:1 () in
  Linalg.Sparse_builder.add b 0 0 v;
  Linalg.Sparse_builder.to_csc b

let x0_val = 1.0

let exact t = ((x0_val +. 0.5) *. exp (-.t)) +. ((sin t -. cos t) /. 2.0)

let final_error scheme ~steps =
  let h = 1.0 /. float_of_int steps in
  let cfg =
    {
      Powergrid.Transient.h;
      steps;
      scheme;
      ordering = Linalg.Ordering.Natural;
    }
  in
  let g = one_by_one 1.0 and c = one_by_one 1.0 in
  let last = ref x0_val in
  Powergrid.Transient.run cfg ~g ~c
    ~inject:(fun t u -> u.(0) <- sin t)
    ~x0:[| x0_val |]
    ~on_step:(fun _k _t x -> last := x.(0));
  Float.abs (!last -. exact 1.0)

let ratios scheme =
  let e16 = final_error scheme ~steps:16 in
  let e32 = final_error scheme ~steps:32 in
  let e64 = final_error scheme ~steps:64 in
  (e16 /. e32, e32 /. e64)

let check_ratio what lo hi r =
  Alcotest.(check bool) (Printf.sprintf "%s (observed %.3f)" what r) true (r >= lo && r <= hi)

let test_backward_euler_first_order () =
  let r1, r2 = ratios Powergrid.Transient.Backward_euler in
  check_ratio "BE error ratio h=1/16 -> 1/32" 1.7 2.3 r1;
  check_ratio "BE error ratio h=1/32 -> 1/64" 1.7 2.3 r2

let test_trapezoidal_second_order () =
  let r1, r2 = ratios Powergrid.Transient.Trapezoidal in
  check_ratio "trapezoidal error ratio h=1/16 -> 1/32" 3.5 4.5 r1;
  check_ratio "trapezoidal error ratio h=1/32 -> 1/64" 3.5 4.5 r2

let test_trapezoidal_beats_backward_euler () =
  let e_be = final_error Powergrid.Transient.Backward_euler ~steps:64 in
  let e_tr = final_error Powergrid.Transient.Trapezoidal ~steps:64 in
  Alcotest.(check bool)
    (Printf.sprintf "trapezoidal error %.3e well below BE %.3e" e_tr e_be)
    true
    (e_tr < e_be /. 10.0)

let suite =
  [
    Alcotest.test_case "backward Euler converges at first order" `Quick
      test_backward_euler_first_order;
    Alcotest.test_case "trapezoidal converges at second order" `Quick
      test_trapezoidal_second_order;
    Alcotest.test_case "trapezoidal dominates BE at equal step" `Quick
      test_trapezoidal_beats_backward_euler;
  ]
