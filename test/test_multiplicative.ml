(* Second-order (multiplicative W*T) conductance model. *)

let vdd = 1.2

let model ?(order = 2) () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let vm =
    { Opera.Varmodel.paper_default with
      Opera.Varmodel.mode = Opera.Varmodel.Separate; multiplicative_wt = true }
  in
  (spec, Opera.Stochastic_model.build ~order vm ~vdd circuit)

let test_g_of_sample_is_exact_product () =
  (* G(xi) must equal Ga_fixed + g_var (1 + sw xiW)(1 + st xiT) exactly. *)
  let _, m = model () in
  let sw = 0.20 /. 3.0 and st = 0.15 /. 3.0 in
  let ga = List.assoc 0 m.Opera.Stochastic_model.g_terms in
  (* recover the varying part from the degree-1 W term *)
  let gw = List.assoc (Opera.Stochastic_model.xi_rank m 0) m.Opera.Stochastic_model.g_terms in
  let g_var = Linalg.Sparse.scale (1.0 /. sw) gw in
  List.iter
    (fun (xw, xt) ->
      let sampled = Opera.Stochastic_model.g_of_sample m [| xw; xt; 0.0 |] in
      let factor = ((1.0 +. (sw *. xw)) *. (1.0 +. (st *. xt))) -. 1.0 in
      let expected = Linalg.Sparse.axpy ~alpha:factor g_var ga in
      Alcotest.(check bool)
        (Printf.sprintf "exact at (%.1f, %.1f)" xw xt)
        true
        (Linalg.Sparse.approx_equal ~tol:1e-10 expected sampled))
    [ (0.0, 0.0); (1.0, 0.0); (0.0, -2.0); (1.5, 2.5); (-3.0, 1.0) ]

let test_requires_separate_and_order2 () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let bad mode order =
    let vm =
      { Opera.Varmodel.paper_default with Opera.Varmodel.mode; multiplicative_wt = true }
    in
    try
      ignore (Opera.Stochastic_model.build ~order vm ~vdd circuit);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "combined rejected" true (bad Opera.Varmodel.Combined 2);
  Alcotest.(check bool) "order 1 rejected" true (bad Opera.Varmodel.Separate 1)

let test_galerkin_vs_mc_multiplicative () =
  let _, m = model ~order:2 () in
  let response, _ = Opera.Galerkin.solve_transient m ~h:0.25e-9 ~steps:6 in
  let mc_cfg =
    { (Opera.Monte_carlo.default_config ~h:0.25e-9 ~steps:6) with
      Opera.Monte_carlo.samples = 400 }
  in
  let mc = Opera.Monte_carlo.run m mc_cfg in
  (* compare at the max-sigma point *)
  let step = ref 1 and node = ref 0 in
  for st = 1 to 6 do
    for v = 0 to m.Opera.Stochastic_model.n - 1 do
      if
        Opera.Monte_carlo.std_at mc ~step:st ~node:v
        > Opera.Monte_carlo.std_at mc ~step:!step ~node:!node
      then begin
        step := st;
        node := v
      end
    done
  done;
  let step = !step and node = !node in
  Helpers.check_float ~eps:(2e-4 *. vdd) "mean"
    (Opera.Monte_carlo.mean_at mc ~step ~node)
    (Opera.Response.mean_at response ~step ~node);
  let sd_m = Opera.Monte_carlo.std_at mc ~step ~node in
  let sd_o = Opera.Response.std_at response ~step ~node in
  Alcotest.(check bool)
    (Printf.sprintf "sigma %.3e vs MC %.3e" sd_o sd_m)
    true
    (Float.abs (sd_o -. sd_m) /. sd_m < 0.25)

let test_quadratic_term_small_but_present () =
  (* The cross term must appear in the expansion with the product
     coefficient, and remain small relative to the linear terms at the
     paper's sigmas. *)
  let _, m = model () in
  let terms = m.Opera.Stochastic_model.g_terms in
  Alcotest.(check int) "four terms" 4 (List.length terms);
  let sw = 0.20 /. 3.0 and st = 0.15 /. 3.0 in
  let gw = List.assoc (Opera.Stochastic_model.xi_rank m 0) terms in
  let idx = [| 1; 1; 0 |] in
  let rwt = Polychaos.Basis.rank_of_index m.Opera.Stochastic_model.basis idx in
  let gwt = List.assoc rwt terms in
  ignore sw;
  let ratio = Linalg.Sparse.max_abs gwt /. Linalg.Sparse.max_abs gw in
  Helpers.check_close ~rtol:1e-9 "cross coefficient ratio = st" st ratio;
  Alcotest.(check bool) "second order is a small correction" true (ratio < 0.1)

let suite =
  [
    Alcotest.test_case "g_of_sample exact product" `Quick test_g_of_sample_is_exact_product;
    Alcotest.test_case "mode/order guards" `Quick test_requires_separate_and_order2;
    Alcotest.test_case "galerkin vs mc (multiplicative)" `Slow test_galerkin_vs_mc_multiplicative;
    Alcotest.test_case "cross term coefficient" `Quick test_quadratic_term_small_but_present;
  ]
