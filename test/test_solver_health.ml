(* Solver health: convergence policies on the Galerkin PCG routes, the
   solve reports coming out of Cg/Bicgstab, and the metrics registry the
   instrumented phases feed.

   The starved solver [Mean_pcg { tol = 1e-14; max_iter = 2 }] cannot
   converge on the augmented system — exactly the silent-approximation
   scenario the policies exist for. *)

let vdd = 1.2

let small_model ?(order = 2) () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  (spec, Opera.Stochastic_model.build ~order Opera.Varmodel.paper_default ~vdd circuit)

let starved = Opera.Galerkin.Mean_pcg { tol = 1e-14; max_iter = 2 }

let quiet f =
  (* The Warn policy writes to stderr by design; keep the test log clean
     without losing the level the suite started with. *)
  let saved = Util.Log.level () in
  Util.Log.set_level Util.Log.Error;
  Fun.protect ~finally:(fun () -> Util.Log.set_level saved) f

let options ?(solver = starved) ~policy () =
  {
    Opera.Galerkin.default_options with
    Opera.Galerkin.solver;
    policy;
    metrics = Util.Metrics.create ();
  }

(* -- policy: fail ---------------------------------------------------- *)

let test_fail_policy_raises () =
  let _, m = small_model () in
  let options = options ~policy:Opera.Galerkin.Fail () in
  let raised =
    try
      ignore (Opera.Galerkin.solve_dc ~options m);
      false
    with Opera.Galerkin.Solver_diverged (context, report) ->
      Alcotest.(check bool) "context names the dc solve" true
        (String.length context > 0
        && String.sub context 0 2 = "dc");
      Alcotest.(check bool) "report not converged" false
        report.Linalg.Solve_report.converged;
      Alcotest.(check int) "iteration budget respected" 2
        report.Linalg.Solve_report.iterations;
      true
  in
  Alcotest.(check bool) "Solver_diverged raised" true raised

let test_fail_policy_names_step () =
  let _, m = small_model () in
  (* DC converges at a realistic tolerance; step 1 then starves. *)
  let options =
    options ~solver:(Opera.Galerkin.Mean_pcg { tol = 1e-14; max_iter = 2 })
      ~policy:Opera.Galerkin.Fail ()
  in
  match Opera.Galerkin.solve_transient ~options m ~h:0.125e-9 ~steps:2 with
  | exception Opera.Galerkin.Solver_diverged (context, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "context %S names a solve" context)
        true
        (String.length context > 0)
  | _resp, _stats -> Alcotest.fail "starved transient did not raise under Fail"

(* -- policy: warn ----------------------------------------------------- *)

let test_warn_policy_marks_unhealthy () =
  quiet @@ fun () ->
  let _, m = small_model () in
  let options = options ~policy:Opera.Galerkin.Warn () in
  let _resp, stats = Opera.Galerkin.solve_transient ~options m ~h:0.125e-9 ~steps:3 in
  let agg = stats.Opera.Galerkin.health in
  Alcotest.(check int) "every solve recorded" 4 agg.Linalg.Solve_report.solves;
  Alcotest.(check bool) "unconverged solves counted" true
    (agg.Linalg.Solve_report.unconverged > 0);
  Alcotest.(check int) "no fallbacks under warn" 0 agg.Linalg.Solve_report.fallbacks;
  Alcotest.(check bool) "aggregate flags the run unhealthy" false
    (Linalg.Solve_report.agg_healthy agg);
  Alcotest.(check bool) "worst residual far above tol" true
    (agg.Linalg.Solve_report.worst_rel_residual > 1e-14);
  Alcotest.(check int) "stats mirror the aggregate" agg.Linalg.Solve_report.iterations
    stats.Opera.Galerkin.pcg_iterations

(* -- policy: fallback ------------------------------------------------- *)

let residual_norm m x =
  let gt = Opera.Galerkin.assemble_g m in
  let dim = Array.length x in
  let rhs = Array.make dim 0.0 in
  let drain_buf = Array.make m.Opera.Stochastic_model.n 0.0 in
  Opera.Galerkin.rhs_into m ~drain_buf 0.0 rhs;
  let r = Linalg.Vec.sub rhs (Linalg.Sparse.mul_vec gt x) in
  (Linalg.Vec.norm2 r, Linalg.Vec.norm2 rhs)

let test_fallback_policy_repairs () =
  quiet @@ fun () ->
  let _, m = small_model () in
  let metrics = Util.Metrics.create () in
  let options =
    {
      Opera.Galerkin.default_options with
      Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 2 };
      policy = Opera.Galerkin.Fallback;
      metrics;
    }
  in
  let x = Opera.Galerkin.solve_dc ~options m in
  let rnorm, bnorm = residual_norm m x in
  Alcotest.(check bool)
    (Printf.sprintf "fallback meets the tolerance (rel residual %.3e)" (rnorm /. bnorm))
    true
    (rnorm <= 1e-10 *. bnorm);
  Alcotest.(check int) "fallback counted" 1 (Util.Metrics.counter metrics "galerkin.fallbacks");
  Alcotest.(check bool) "unconverged solve counted" true
    (Util.Metrics.counter metrics "galerkin.pcg_unconverged" >= 1)

let test_fallback_matrix_free () =
  quiet @@ fun () ->
  let _, m = small_model () in
  let options =
    options
      ~solver:(Opera.Galerkin.Matrix_free_pcg { tol = 1e-10; max_iter = 2 })
      ~policy:Opera.Galerkin.Fallback ()
  in
  let x = Opera.Galerkin.solve_dc ~options m in
  let rnorm, bnorm = residual_norm m x in
  Alcotest.(check bool) "matrix-free fallback meets the tolerance" true
    (rnorm <= 1e-10 *. bnorm)

let test_fallback_transient_healthy () =
  quiet @@ fun () ->
  let _, m = small_model () in
  let options = options ~policy:Opera.Galerkin.Fallback () in
  let _resp, stats = Opera.Galerkin.solve_transient ~options m ~h:0.125e-9 ~steps:3 in
  let agg = stats.Opera.Galerkin.health in
  Alcotest.(check bool) "fallbacks recorded" true (agg.Linalg.Solve_report.fallbacks > 0);
  Alcotest.(check bool) "every unconverged solve repaired" true
    (Linalg.Solve_report.agg_healthy agg)

(* -- metrics registry -------------------------------------------------- *)

let test_metrics_json_phases () =
  quiet @@ fun () ->
  let _, m = small_model () in
  let metrics = Util.Metrics.create () in
  let options =
    {
      Opera.Galerkin.default_options with
      Opera.Galerkin.solver = starved;
      policy = Opera.Galerkin.Fallback;
      metrics;
    }
  in
  let _resp, _stats = Opera.Galerkin.solve_transient ~options m ~h:0.125e-9 ~steps:2 in
  let json = Util.Metrics.to_json metrics in
  match Util.Json.parse json with
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  | Ok j ->
      let keys = Util.Json.keys j in
      List.iter
        (fun key ->
          Alcotest.(check bool) (Printf.sprintf "metrics contain %S" key) true
            (List.mem key keys))
        [
          "galerkin.assemble_s"; "galerkin.factor_s"; "galerkin.step_s"; "galerkin.precond_s";
          "galerkin.fallback_s"; "galerkin.fallbacks"; "galerkin.pcg_iterations";
          "galerkin.pcg_unconverged"; "galerkin.precond_applies";
        ];
      (* Counters round-trip through the reader. *)
      let fallbacks =
        Option.bind (Util.Json.member "galerkin.fallbacks" j) (fun v ->
            Option.bind (Util.Json.member "value" v) Util.Json.to_int)
      in
      Alcotest.(check (option int))
        "fallback counter round-trips" (Some (Util.Metrics.counter metrics "galerkin.fallbacks"))
        fallbacks

let test_metrics_sorted_and_reset () =
  let metrics = Util.Metrics.create () in
  Util.Metrics.incr metrics "zzz";
  Util.Metrics.incr metrics "aaa";
  Util.Metrics.observe metrics "mmm" 0.5;
  (match Util.Json.parse (Util.Metrics.to_json metrics) with
  | Error e -> Alcotest.failf "JSON parse: %s" e
  | Ok j -> Alcotest.(check (list string)) "keys sorted" [ "aaa"; "mmm"; "zzz" ] (Util.Json.keys j));
  Util.Metrics.reset metrics;
  Alcotest.(check int) "reset clears counters" 0 (Util.Metrics.counter metrics "zzz");
  Alcotest.(check int) "reset clears histograms" 0 (Util.Metrics.observations metrics "mmm")

(* -- solve reports ------------------------------------------------------ *)

let test_cg_zero_rhs () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 12 ~extra_edges:6 in
  let b = Array.make 12 0.0 in
  let x0 = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let x, report =
    Linalg.Cg.solve_report ~matvec:(Linalg.Sparse.mul_vec a) ~b ~x0 ()
  in
  Alcotest.(check bool) "x = 0 exactly" true (Array.for_all (fun v -> v = 0.0) x);
  Alcotest.(check bool) "converged" true report.Linalg.Solve_report.converged;
  Alcotest.(check int) "no iterations" 0 report.Linalg.Solve_report.iterations;
  Helpers.check_float ~eps:0.0 "zero residual" 0.0 report.Linalg.Solve_report.residual_norm

let test_bicgstab_zero_rhs () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 10 ~extra_edges:4 in
  let x, report =
    Linalg.Bicgstab.solve_report ~matvec:(Linalg.Sparse.mul_vec a) ~b:(Array.make 10 0.0)
      ~x0:(Array.init 10 float_of_int) ()
  in
  Alcotest.(check bool) "x = 0 exactly" true (Array.for_all (fun v -> v = 0.0) x);
  Alcotest.(check bool) "converged" true report.Linalg.Solve_report.converged;
  Alcotest.(check int) "no iterations" 0 report.Linalg.Solve_report.iterations

let test_cg_history_ring () =
  let rng = Helpers.rng () in
  let n = 40 in
  let a = Helpers.random_sparse_spd rng n ~extra_edges:30 in
  let b = Helpers.random_vec rng n in
  let x0 = Array.make n 0.0 in
  let _, full =
    Linalg.Cg.solve_report ~history_cap:1000 ~matvec:(Linalg.Sparse.mul_vec a) ~b ~x0 ()
  in
  Alcotest.(check bool) "converged" true full.Linalg.Solve_report.converged;
  let hist = full.Linalg.Solve_report.residual_history in
  Alcotest.(check int) "history = initial residual + one per iteration"
    (full.Linalg.Solve_report.iterations + 1)
    (Array.length hist);
  Helpers.check_close ~rtol:1e-12 "first entry is ||b|| (x0 = 0)" (Linalg.Vec.norm2 b) hist.(0);
  Helpers.check_close ~rtol:1e-9 "last entry is the final residual"
    full.Linalg.Solve_report.residual_norm
    hist.(Array.length hist - 1);
  (* A tight cap keeps only the most recent entries, oldest first. *)
  let cap = 3 in
  let _, capped =
    Linalg.Cg.solve_report ~history_cap:cap ~matvec:(Linalg.Sparse.mul_vec a) ~b ~x0 ()
  in
  let tail = capped.Linalg.Solve_report.residual_history in
  Alcotest.(check int) "capped length" cap (Array.length tail);
  let m = Array.length hist in
  Array.iteri
    (fun i v -> Helpers.check_close ~rtol:1e-12 "ring keeps the tail" hist.(m - cap + i) v)
    tail;
  (* Default: no history allocated. *)
  let _, bare = Linalg.Cg.solve_report ~matvec:(Linalg.Sparse.mul_vec a) ~b ~x0 () in
  Alcotest.(check int) "no history by default" 0
    (Array.length bare.Linalg.Solve_report.residual_history)

let test_report_summary_and_json () =
  let r =
    Linalg.Solve_report.make ~solver:"cg" ~iterations:7 ~residual_norm:2e-11 ~rhs_norm:2.0
      ~tol:1e-10 ~converged:true ~wall_seconds:0.25 ()
  in
  Helpers.check_float ~eps:1e-24 "relative residual" 1e-11 r.Linalg.Solve_report.rel_residual;
  let s = Linalg.Solve_report.summary r in
  Alcotest.(check bool) "summary mentions convergence" true
    (String.length s > 0 && String.sub s 0 2 = "cg");
  match Util.Json.parse (Linalg.Solve_report.to_json r) with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option int)) "iterations field" (Some 7)
        (Option.bind (Util.Json.member "iterations" j) Util.Json.to_int);
      Alcotest.(check (option string)) "solver field" (Some "cg")
        (Option.bind (Util.Json.member "solver" j) Util.Json.to_string)

let suite =
  [
    Alcotest.test_case "fail policy raises Solver_diverged" `Quick test_fail_policy_raises;
    Alcotest.test_case "fail policy names the failing solve" `Quick test_fail_policy_names_step;
    Alcotest.test_case "warn policy keeps going but marks unhealthy" `Quick
      test_warn_policy_marks_unhealthy;
    Alcotest.test_case "fallback policy meets the tolerance" `Quick test_fallback_policy_repairs;
    Alcotest.test_case "fallback repairs the matrix-free route" `Quick test_fallback_matrix_free;
    Alcotest.test_case "fallback transient ends healthy" `Quick test_fallback_transient_healthy;
    Alcotest.test_case "metrics JSON carries the solve phases" `Quick test_metrics_json_phases;
    Alcotest.test_case "metrics JSON is sorted; reset clears" `Quick
      test_metrics_sorted_and_reset;
    Alcotest.test_case "cg: zero rhs returns x = 0 immediately" `Quick test_cg_zero_rhs;
    Alcotest.test_case "bicgstab: zero rhs returns x = 0 immediately" `Quick
      test_bicgstab_zero_rhs;
    Alcotest.test_case "cg: residual history ring buffer" `Quick test_cg_history_ring;
    Alcotest.test_case "solve report summary and JSON" `Quick test_report_summary_and_json;
  ]
