(* Amg as a first-class preconditioner: deterministic setup/apply, PCG
   equivalence through Precond, v-cycle convergence on generated meshes,
   and the v2 section codec (roundtrip + mapped store replay). *)

let mesh_matrix k =
  let n = k * k in
  let b = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      let here = (r * k) + c in
      Linalg.Sparse_builder.add b here here 0.02;
      if c + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + 1)) 1.0;
      if r + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + k)) 1.0
    done
  done;
  Linalg.Sparse_builder.to_csc b

let check_bitwise what x y =
  Array.iteri
    (fun i v ->
      if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float y.(i))) then
        Alcotest.failf "%s: differs at %d: %.17g vs %.17g" what i v y.(i))
    x

(* --- apply: reusable workspace, bitwise repeatable -------------------- *)

let test_apply_deterministic () =
  let a = mesh_matrix 24 in
  let n = 24 * 24 in
  let amg = Linalg.Amg.build a in
  let rng = Helpers.rng () in
  let b = Helpers.random_vec rng n in
  let apply () =
    let w = Linalg.Amg.create_ws amg in
    let x = Array.make n 0.0 in
    Linalg.Amg.apply amg w ~b ~x;
    x
  in
  let x1 = apply () and x2 = apply () in
  check_bitwise "fresh workspaces agree" x1 x2;
  (* A reused workspace must not leak state between applies. *)
  let w = Linalg.Amg.create_ws amg in
  let x3 = Array.make n 0.0 and x4 = Array.make n 0.0 in
  Linalg.Amg.apply amg w ~b ~x:x3;
  Linalg.Amg.apply amg w ~b ~x:x4;
  check_bitwise "reused workspace agrees" x1 x3;
  check_bitwise "second reuse agrees" x1 x4;
  check_bitwise "vcycle wrapper agrees" x1 (Linalg.Amg.vcycle amg b)

let test_apply_dim_mismatch () =
  let amg = Linalg.Amg.build (mesh_matrix 8) in
  let w = Linalg.Amg.create_ws amg in
  Alcotest.(check bool) "wrong b rejected" true
    (try
       Linalg.Amg.apply amg w ~b:(Array.make 7 0.0) ~x:(Array.make 64 0.0);
       false
     with Invalid_argument _ -> true);
  let other = Linalg.Amg.build (mesh_matrix 6) in
  Alcotest.(check bool) "foreign workspace rejected" true
    (try
       Linalg.Amg.apply amg
         (Linalg.Amg.create_ws other)
         ~b:(Array.make 64 0.0) ~x:(Array.make 64 0.0);
       false
     with Invalid_argument _ -> true)

(* --- Precond backend equivalence --------------------------------------- *)

let test_precond_matches_amg_apply () =
  let a = mesh_matrix 20 in
  let n = 20 * 20 in
  let p = Linalg.Precond.make Linalg.Precond.Amg a in
  Alcotest.(check bool) "backend resolved" true (Linalg.Precond.backend p = Linalg.Precond.Amg);
  let rng = Helpers.rng () in
  let b = Helpers.random_vec rng n in
  let amg = Linalg.Amg.build a in
  let expect = Array.make n 0.0 in
  Linalg.Amg.apply amg (Linalg.Amg.create_ws amg) ~b ~x:expect;
  let got = Array.copy b in
  Linalg.Precond.apply_in_place p (Linalg.Precond.create_ws p) got;
  check_bitwise "Precond(Amg) = Amg.apply" expect got

let test_precond_exact_matches_cholesky () =
  let a = mesh_matrix 12 in
  let n = 12 * 12 in
  let rng = Helpers.rng () in
  let b = Helpers.random_vec rng n in
  let p = Linalg.Precond.make Linalg.Precond.Cholesky a in
  let got = Array.copy b in
  Linalg.Precond.apply_in_place p (Linalg.Precond.create_ws p) got;
  let f = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection a in
  check_bitwise "Precond(Cholesky) = factor solve" (Linalg.Sparse_cholesky.solve f b) got

let test_precond_kind_vocabulary () =
  List.iter
    (fun k ->
      match Linalg.Precond.of_string (Linalg.Precond.to_string k) with
      | Some k' -> Alcotest.(check bool) (Linalg.Precond.to_string k ^ " roundtrips") true (k = k')
      | None -> Alcotest.failf "kind %s does not parse back" (Linalg.Precond.to_string k))
    Linalg.Precond.all;
  Alcotest.(check bool) "junk rejected" true (Linalg.Precond.of_string "ilu" = None);
  Alcotest.(check bool) "auto resolves small to cholesky" true
    (Linalg.Precond.resolve Linalg.Precond.Auto ~n:100 = Linalg.Precond.Cholesky);
  Alcotest.(check bool) "auto resolves large to amg" true
    (Linalg.Precond.resolve Linalg.Precond.Auto ~n:(Linalg.Precond.auto_threshold + 1)
    = Linalg.Precond.Amg);
  Alcotest.(check bool) "explicit kinds resolve to themselves" true
    (Linalg.Precond.resolve Linalg.Precond.Ic0 ~n:5 = Linalg.Precond.Ic0)

let test_pcg_with_amg_precond () =
  let a = mesh_matrix 32 in
  let n = 32 * 32 in
  let rng = Helpers.rng () in
  let x_true = Helpers.random_vec rng n in
  let b = Linalg.Sparse.mul_vec a x_true in
  let _, plain = Linalg.Cg.solve_sparse ~tol:1e-10 a b in
  let p = Linalg.Precond.make Linalg.Precond.Amg a in
  let x, stats =
    Linalg.Cg.solve_sparse ~precond:(Linalg.Precond.as_cg_preconditioner p) ~tol:1e-10 a b
  in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  Alcotest.(check bool) "accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-7);
  Alcotest.(check bool)
    (Printf.sprintf "amg-pcg %d iters < plain %d" stats.Linalg.Cg.iterations
       plain.Linalg.Cg.iterations)
    true
    (stats.Linalg.Cg.iterations < plain.Linalg.Cg.iterations)

(* --- scaling: flat iteration counts on generated grids ----------------- *)

let grid_g nodes =
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes in
  Powergrid.Mna.g_total (Powergrid.Grid_gen.stream_mna spec)

let pcg_iters a =
  let n = fst (Linalg.Sparse.dims a) in
  let b = Array.make n 1e-3 in
  let p = Linalg.Precond.make Linalg.Precond.Amg a in
  let _, stats =
    Linalg.Cg.solve_sparse ~precond:(Linalg.Precond.as_cg_preconditioner p) ~tol:1e-9 a b
  in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  stats.Linalg.Cg.iterations

let test_vcycle_convergence_10k () =
  let a = grid_g 10_000 in
  let n = fst (Linalg.Sparse.dims a) in
  Alcotest.(check bool) "mesh is 10^4-node class" true (n >= 9_000);
  let small = pcg_iters (grid_g 2_500) in
  let large = pcg_iters a in
  (* The multigrid promise: iterations stay roughly flat as n quadruples. *)
  Alcotest.(check bool)
    (Printf.sprintf "iters %d at 10k <= 2x iters %d at 2.5k" large small)
    true
    (large <= 2 * small)

(* --- v2 section codec --------------------------------------------------- *)

let frame_of amg =
  let meta, sections = Linalg.Amg.to_frame amg in
  Util.Codec.frame_v2 ~kind:Linalg.Amg.artifact_kind ~version:Linalg.Amg.artifact_version ~meta
    ~sections

let check_same_apply what amg amg' b =
  let n = Array.length b in
  let x = Array.make n 0.0 and x' = Array.make n 0.0 in
  Linalg.Amg.apply amg (Linalg.Amg.create_ws amg) ~b ~x;
  Linalg.Amg.apply amg' (Linalg.Amg.create_ws amg') ~b ~x:x';
  check_bitwise what x x'

let roundtrip ~map amg =
  let dir = Filename.temp_file "opera-amg" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let file = Filename.concat dir "amg.opra" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      Util.Codec.write_file file (frame_of amg);
      match
        Util.Codec.read_frame_v2 ~map ~kind:Linalg.Amg.artifact_kind
          ~version:Linalg.Amg.artifact_version file
      with
      | None -> Alcotest.fail "artifact unreadable"
      | Some (d, sections) ->
          let amg' = Linalg.Amg.of_frame_sections d sections in
          (amg', Util.Codec.sections_mapped sections))

let test_codec_roundtrip_copying () =
  let a = mesh_matrix 18 in
  let amg = Linalg.Amg.build a in
  let amg', mapped = roundtrip ~map:false amg in
  Alcotest.(check bool) "copying load" false mapped;
  Alcotest.(check int) "levels survive" (Linalg.Amg.levels amg) (Linalg.Amg.levels amg');
  Alcotest.(check int) "dim survives" (Linalg.Amg.dim amg) (Linalg.Amg.dim amg');
  let rng = Helpers.rng () in
  check_same_apply "decoded hierarchy applies bitwise" amg amg'
    (Helpers.random_vec rng (18 * 18))

let test_codec_roundtrip_mapped () =
  let a = mesh_matrix 18 in
  let amg = Linalg.Amg.build a in
  let amg', mapped = roundtrip ~map:true amg in
  if not mapped then
    (* Foreign host (big-endian or 32-bit): the fallback already ran. *)
    Alcotest.(check pass) "mapping unavailable on this host" () ()
  else begin
    let rng = Helpers.rng () in
    check_same_apply "mapped hierarchy applies bitwise" amg amg'
      (Helpers.random_vec rng (18 * 18))
  end

let test_codec_rejects_truncation () =
  let amg = Linalg.Amg.build (mesh_matrix 10) in
  let bytes = frame_of amg in
  let file = Filename.temp_file "opera-amg" ".opra" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Util.Codec.write_file file (String.sub bytes 0 (String.length bytes - 9));
      Alcotest.(check bool) "truncated frame rejected" true
        (try
           ignore
             (Util.Codec.read_frame_v2 ~kind:Linalg.Amg.artifact_kind
                ~version:Linalg.Amg.artifact_version file);
           false
         with Util.Codec.Corrupt _ -> true))

let test_store_mapped_replay () =
  let a = mesh_matrix 16 in
  let n = 16 * 16 in
  let dir = Filename.temp_file "opera-amg-store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let metrics = Util.Metrics.create () in
      let store = Scenario.Store.create ~metrics ~dir:(Some dir) () in
      let builds = ref 0 in
      let fetch () =
        Scenario.Store.find_or_build_sections store ~kind:Linalg.Amg.artifact_kind
          ~version:Linalg.Amg.artifact_version ~key:"0123456789abcdef"
          ~encode:Linalg.Amg.to_frame ~decode:Linalg.Amg.of_frame_sections
          ~build:(fun () ->
            incr builds;
            Linalg.Amg.build a)
      in
      let cold = fetch () in
      let warm = fetch () in
      Alcotest.(check int) "one build" 1 !builds;
      let count k = Util.Metrics.counter metrics k in
      Alcotest.(check int) "one hit" 1 (count "store.hits");
      Alcotest.(check int) "no decode of the whole artifact on a mappable host"
        (if count "store.map_hits" = 1 then 0 else 1)
        (count "store.full_decodes");
      let rng = Helpers.rng () in
      check_same_apply "replayed hierarchy applies bitwise" cold warm (Helpers.random_vec rng n))

let suite =
  [
    Alcotest.test_case "apply is bitwise deterministic across workspaces" `Quick
      test_apply_deterministic;
    Alcotest.test_case "apply validates dimensions and workspaces" `Quick test_apply_dim_mismatch;
    Alcotest.test_case "Precond amg backend = Amg.apply" `Quick test_precond_matches_amg_apply;
    Alcotest.test_case "Precond cholesky backend = factor solve" `Quick
      test_precond_exact_matches_cholesky;
    Alcotest.test_case "precond kind vocabulary and auto resolution" `Quick
      test_precond_kind_vocabulary;
    Alcotest.test_case "amg-preconditioned CG beats plain CG" `Quick test_pcg_with_amg_precond;
    Alcotest.test_case "iterations stay flat from 2.5k to 10k nodes" `Slow
      test_vcycle_convergence_10k;
    Alcotest.test_case "v2 codec roundtrip (copying)" `Quick test_codec_roundtrip_copying;
    Alcotest.test_case "v2 codec roundtrip (mapped)" `Quick test_codec_roundtrip_mapped;
    Alcotest.test_case "v2 codec rejects truncation" `Quick test_codec_rejects_truncation;
    Alcotest.test_case "store replay of the hierarchy is mapped and bitwise" `Quick
      test_store_mapped_replay;
  ]
