(* The OPERA core: variation model, stochastic expansion, Galerkin solve,
   Monte-Carlo agreement, special case. *)

let vdd = 1.2

let small_model ?(order = 2) ?(mode = Opera.Varmodel.Combined) () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let vm = { Opera.Varmodel.paper_default with Opera.Varmodel.mode } in
  (spec, Opera.Stochastic_model.build ~order vm ~vdd circuit)

let test_varmodel_sigma_g () =
  let vm = Opera.Varmodel.paper_default in
  (* 3-sigma: 20% W, 15% T -> 25% combined (paper Sec. 6). *)
  Helpers.check_float ~eps:1e-12 "sigma_g" (0.25 /. 3.0) (Opera.Varmodel.sigma_g vm);
  Alcotest.(check int) "combined dim" 2 (Opera.Varmodel.dim vm);
  Alcotest.(check int) "separate dim" 3
    (Opera.Varmodel.dim { vm with Opera.Varmodel.mode = Opera.Varmodel.Separate });
  Alcotest.(check int) "grouped dim" 5
    (Opera.Varmodel.dim { vm with Opera.Varmodel.mode = Opera.Varmodel.Grouped_wires 4 })

let test_model_shapes () =
  let _, m = small_model () in
  Alcotest.(check int) "basis size (N+1) = 6" 6 (Polychaos.Basis.size m.Opera.Stochastic_model.basis);
  Alcotest.(check int) "g terms: mean + xiG" 2 (List.length m.Opera.Stochastic_model.g_terms);
  Alcotest.(check int) "c terms: mean + xiL" 2 (List.length m.Opera.Stochastic_model.c_terms);
  (* ranks are the degree-1 indices *)
  Alcotest.(check int) "xiG rank" 1 (Opera.Stochastic_model.xi_rank m 0);
  Alcotest.(check int) "xiL rank" 2 (Opera.Stochastic_model.xi_rank m 1)

let test_sample_realizations () =
  let _, m = small_model () in
  (* xi = 0 gives the nominal matrices. *)
  let g0 = Opera.Stochastic_model.g_of_sample m [| 0.0; 0.0 |] in
  let ga = List.assoc 0 m.Opera.Stochastic_model.g_terms in
  Alcotest.(check bool) "G(0) = Ga" true (Linalg.Sparse.approx_equal ~tol:1e-12 g0 ga);
  (* G scales linearly in xiG. *)
  let g1 = Opera.Stochastic_model.g_of_sample m [| 1.0; 0.0 |] in
  let gm1 = Opera.Stochastic_model.g_of_sample m [| -1.0; 0.0 |] in
  let avg = Linalg.Sparse.scale 0.5 (Linalg.Sparse.add g1 gm1) in
  Alcotest.(check bool) "linear in xiG" true (Linalg.Sparse.approx_equal ~tol:1e-10 avg ga);
  (* C responds to xiL only. *)
  let c_l = Opera.Stochastic_model.c_of_sample m [| 3.0; 0.0 |] in
  let ca = List.assoc 0 m.Opera.Stochastic_model.c_terms in
  Alcotest.(check bool) "C ignores xiG" true (Linalg.Sparse.approx_equal ~tol:1e-15 c_l ca)

let test_u_of_sample () =
  let _, m = small_model () in
  let u0 = Opera.Stochastic_model.u_of_sample m [| 0.0; 0.0 |] 0.3e-9 in
  let u_nominal = Powergrid.Mna.inject m.Opera.Stochastic_model.mna 0.3e-9 in
  Helpers.check_vec ~eps:1e-12 "U(0) = nominal injection" u_nominal u0

let test_node_pattern_symmetric () =
  let _, m = small_model () in
  let p = Opera.Stochastic_model.node_pattern m in
  Alcotest.(check bool) "pattern symmetric" true (Linalg.Sparse.is_symmetric ~tol:1e-12 p);
  Alcotest.(check (pair int int)) "pattern dims"
    (m.Opera.Stochastic_model.n, m.Opera.Stochastic_model.n)
    (Linalg.Sparse.dims p)

let test_galerkin_matrices_symmetric () =
  let _, m = small_model () in
  let gt = Opera.Galerkin.assemble_g m in
  let ct = Opera.Galerkin.assemble_c m in
  Alcotest.(check bool) "Gt symmetric" true (Linalg.Sparse.is_symmetric ~tol:1e-9 gt);
  Alcotest.(check bool) "Ct symmetric" true (Linalg.Sparse.is_symmetric ~tol:1e-12 ct);
  let size = Polychaos.Basis.size m.Opera.Stochastic_model.basis in
  Alcotest.(check (pair int int)) "augmented dims"
    (size * m.Opera.Stochastic_model.n, size * m.Opera.Stochastic_model.n)
    (Linalg.Sparse.dims gt)

let test_galerkin_block_zero_is_nominal () =
  (* With zero variation the Galerkin DC solution's block 0 is the nominal
     DC solution and all other blocks vanish. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let vm =
    { Opera.Varmodel.paper_default with
      Opera.Varmodel.sigma_w = 0.0; sigma_t = 0.0; sigma_l = 0.0; current_sensitivity = 0.0 }
  in
  let m = Opera.Stochastic_model.build ~order:2 vm ~vdd circuit in
  let a = Opera.Galerkin.solve_dc m in
  let n = m.Opera.Stochastic_model.n in
  let nominal = Powergrid.Dc.solve m.Opera.Stochastic_model.mna in
  let block0 = Array.sub a 0 n in
  Alcotest.(check bool) "block 0 = nominal dc" true
    (Linalg.Vec.approx_equal ~tol:1e-8 nominal block0);
  for k = 1 to 5 do
    let block = Array.sub a (k * n) n in
    Alcotest.(check bool)
      (Printf.sprintf "block %d vanishes" k)
      true
      (Linalg.Vec.norm2 block < 1e-10)
  done

let test_direct_vs_mean_pcg () =
  let _, m = small_model () in
  let solve solver =
    let options = { Opera.Galerkin.default_options with Opera.Galerkin.solver } in
    fst (Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps:8)
  in
  let r1 = solve Opera.Galerkin.Direct in
  let r2 = solve (Opera.Galerkin.Mean_pcg { tol = 1e-12; max_iter = 500 }) in
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to 8 do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:1e-7 "means agree"
        (Opera.Response.mean_at r1 ~step ~node)
        (Opera.Response.mean_at r2 ~step ~node);
      Helpers.check_float ~eps:1e-7 "variances agree"
        (Opera.Response.variance_at r1 ~step ~node)
        (Opera.Response.variance_at r2 ~step ~node)
    done
  done

let test_galerkin_dc_vs_monte_carlo_dc () =
  (* Cross-validate the stochastic DC solve against direct sampling, on a
     grid that draws DC current (the generated activity profiles are zero
     at t = 0, which would make sigma vanish). *)
  let circuit =
    let r n1 n2 =
      { Powergrid.Circuit.rnode1 = n1; rnode2 = n2; ohms = 0.8; rkind = Powergrid.Circuit.Metal }
    in
    Powergrid.Circuit.make ~num_nodes:4
      ~resistors:[ r 0 1; r 1 2; r 2 3; r 3 0 ]
      ~capacitors:
        [ { Powergrid.Circuit.cnode1 = 2; cnode2 = Powergrid.Circuit.ground; farads = 1e-12;
            ckind = Powergrid.Circuit.Gate } ]
      ~isources:[ { Powergrid.Circuit.inode = 2; wave = Powergrid.Waveform.Dc 0.02; region = 0 } ]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = vdd; series_ohms = 0.3 } ] ()
  in
  let m = Opera.Stochastic_model.build ~order:3 Opera.Varmodel.paper_default ~vdd circuit in
  let a = Opera.Galerkin.solve_dc m in
  let n = m.Opera.Stochastic_model.n in
  let node = 2 in
  let size = Polychaos.Basis.size m.Opera.Stochastic_model.basis in
  let coefs = Array.init size (fun k -> a.((k * n) + node)) in
  let pce = Polychaos.Pce.create m.Opera.Stochastic_model.basis coefs in
  (* Monte-Carlo DC *)
  let rng = Prob.Rng.create ~seed:13L () in
  let acc = Prob.Stats.Online.create () in
  for _ = 1 to 400 do
    let xi = Prob.Rng.gaussian_vector rng 2 in
    let g = Opera.Stochastic_model.g_of_sample m xi in
    let u = Opera.Stochastic_model.u_of_sample m xi 0.0 in
    let x = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor g) u in
    Prob.Stats.Online.add acc x.(node)
  done;
  let mu_mc = Prob.Stats.Online.mean acc and sd_mc = Prob.Stats.Online.std acc in
  Helpers.check_float ~eps:(2e-4 *. vdd) "dc mean" mu_mc (Polychaos.Pce.mean pce);
  Helpers.check_float ~eps:(0.15 *. sd_mc) "dc sigma" sd_mc (Polychaos.Pce.std pce)

let test_response_storage () =
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  let r = Opera.Response.create ~basis ~n:3 ~steps:2 ~h:1e-9 ~vdd ~probes:[| 1 |] in
  let size = 6 in
  let coefs = Array.init (size * 3) (fun i -> float_of_int i /. 10.0) in
  Opera.Response.record_step r ~step:1 ~coefs;
  Helpers.check_float "mean at (1,1)" (coefs.(1)) (Opera.Response.mean_at r ~step:1 ~node:1);
  (* Variance: Eq. (23) over the stored blocks. *)
  let expected_var =
    let acc = ref 0.0 in
    for k = 1 to size - 1 do
      let a = coefs.((k * 3) + 1) in
      acc := !acc +. (a *. a *. Polychaos.Basis.norm_sq basis k)
    done;
    !acc
  in
  Helpers.check_float ~eps:1e-12 "variance Eq. (23)" expected_var
    (Opera.Response.variance_at r ~step:1 ~node:1);
  (* PCE extraction at the probe matches raw coefficients. *)
  let pce = Opera.Response.pce_at r ~node:1 ~step:1 in
  Helpers.check_float "pce coef 4" (coefs.((4 * 3) + 1)) pce.Polychaos.Pce.coefs.(4);
  Alcotest.(check bool) "non-probe raises" true
    (try
       ignore (Opera.Response.pce_at r ~node:0 ~step:1);
       false
     with Not_found -> true)

let test_special_case_decoupled_equals_coupled () =
  let spec = { Helpers.small_grid_spec with Powergrid.Grid_spec.regions_x = 2; regions_y = 1 } in
  let circuit = Powergrid.Grid_gen.generate spec in
  let leaks =
    Array.init 16 (fun i ->
        let node = i * 3 in
        (node, Powergrid.Grid_gen.region_of_node spec node, 2e-4))
  in
  let sc = Opera.Special_case.make ~order:2 ~regions:2 ~lambda:0.35 ~leaks ~vdd circuit in
  let probes = [| Powergrid.Grid_gen.center_node spec |] in
  let r1, _ = Opera.Special_case.solve sc ~h:0.25e-9 ~steps:6 ~probes in
  let r2, _ = Opera.Special_case.solve_coupled sc ~h:0.25e-9 ~steps:6 ~probes in
  let n = Powergrid.Circuit.node_count circuit in
  for step = 0 to 6 do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:1e-9 "means equal"
        (Opera.Response.mean_at r1 ~step ~node)
        (Opera.Response.mean_at r2 ~step ~node);
      Helpers.check_float ~eps:1e-9 "variances equal"
        (Opera.Response.variance_at r1 ~step ~node)
        (Opera.Response.variance_at r2 ~step ~node)
    done
  done

let test_special_case_vs_monte_carlo () =
  let spec = { Helpers.small_grid_spec with Powergrid.Grid_spec.regions_x = 2; regions_y = 1 } in
  let circuit = Powergrid.Grid_gen.generate spec in
  let leaks =
    Array.init 20 (fun i ->
        let node = i * 3 in
        (node, Powergrid.Grid_gen.region_of_node spec node, 3e-4))
  in
  (* Order 3 to capture the lognormal tail. *)
  let sc = Opera.Special_case.make ~order:3 ~regions:2 ~lambda:0.4 ~leaks ~vdd circuit in
  let probes = [| 0 |] in
  let resp, _ = Opera.Special_case.solve sc ~h:0.25e-9 ~steps:6 ~probes in
  let mc = Opera.Special_case.monte_carlo sc ~samples:1500 ~seed:3L ~h:0.25e-9 ~steps:6 ~probes in
  let node = 0 and step = 6 in
  let mu_op = Opera.Response.mean_at resp ~step ~node in
  let mu_mc = Opera.Monte_carlo.mean_at mc ~step ~node in
  let sd_op = Opera.Response.std_at resp ~step ~node in
  let sd_mc = Opera.Monte_carlo.std_at mc ~step ~node in
  Helpers.check_float ~eps:(5e-5 *. vdd) "leakage mean" mu_mc mu_op;
  Helpers.check_float ~eps:(0.12 *. sd_mc) "leakage sigma" sd_mc sd_op

let test_special_case_mean_analytic () =
  (* Single node, single region: v = VDD - Rs * I0 exp(lambda xi).
     E[v] = VDD - Rs I0 e^{lambda^2/2}. *)
  let rs = 1.0 and i0 = 0.05 and lambda = 0.3 in
  let circuit =
    Powergrid.Circuit.make ~num_nodes:1 ~resistors:[]
      ~capacitors:
        [ { Powergrid.Circuit.cnode1 = 0; cnode2 = Powergrid.Circuit.ground; farads = 1e-15;
            ckind = Powergrid.Circuit.Fixed } ]
      ~isources:[]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = vdd; series_ohms = rs } ] ()
  in
  let sc =
    Opera.Special_case.make ~order:4 ~regions:1 ~lambda ~leaks:[| (0, 0, i0) |] ~vdd circuit
  in
  let resp, _ = Opera.Special_case.solve sc ~h:1e-9 ~steps:3 ~probes:[| 0 |] in
  let expected_mean = vdd -. (rs *. i0 *. exp (lambda *. lambda /. 2.0)) in
  Helpers.check_float ~eps:1e-9 "analytic mean" expected_mean
    (Opera.Response.mean_at resp ~step:3 ~node:0);
  (* Variance of the lognormal drop: (Rs I0)^2 (e^{l^2}-1) e^{l^2}. *)
  let l2 = lambda *. lambda in
  let expected_var = rs *. rs *. i0 *. i0 *. ((exp l2 -. 1.0) *. exp l2) in
  Helpers.check_close ~rtol:0.01 "analytic variance (order-4 truncation)" expected_var
    (Opera.Response.variance_at resp ~step:3 ~node:0)

let test_grouped_wires_mode () =
  let _, m = small_model ~mode:(Opera.Varmodel.Grouped_wires 3) () in
  Alcotest.(check int) "basis dim 4" 4 (Polychaos.Basis.dim m.Opera.Stochastic_model.basis);
  (* group terms present *)
  Alcotest.(check bool) "multiple wire groups" true
    (List.length m.Opera.Stochastic_model.g_terms >= 3);
  (* Galerkin still solves *)
  let r, _ = Opera.Galerkin.solve_transient m ~h:0.25e-9 ~steps:2 in
  Alcotest.(check bool) "finite response" true
    (Float.is_finite (Opera.Response.mean_at r ~step:2 ~node:0))

let test_separate_equals_combined_moments () =
  (* Eq. (14): combining xiW, xiT into xiG preserves the first two moments
     of the response. *)
  let _, m2 = small_model ~mode:Opera.Varmodel.Combined () in
  let _, m3 = small_model ~mode:Opera.Varmodel.Separate () in
  let r2, _ = Opera.Galerkin.solve_transient m2 ~h:0.25e-9 ~steps:4 in
  let r3, _ = Opera.Galerkin.solve_transient m3 ~h:0.25e-9 ~steps:4 in
  let n = m2.Opera.Stochastic_model.n in
  for node = 0 to n - 1 do
    Helpers.check_float ~eps:1e-9 "mean invariant under Eq. (14)"
      (Opera.Response.mean_at r2 ~step:4 ~node)
      (Opera.Response.mean_at r3 ~step:4 ~node);
    Helpers.check_float
      ~eps:(1e-6 *. (1e-9 +. Opera.Response.variance_at r2 ~step:4 ~node))
      "variance invariant under Eq. (14)"
      (Opera.Response.variance_at r2 ~step:4 ~node)
      (Opera.Response.variance_at r3 ~step:4 ~node)
  done

let suite =
  [
    Alcotest.test_case "varmodel sigma_g" `Quick test_varmodel_sigma_g;
    Alcotest.test_case "model shapes" `Quick test_model_shapes;
    Alcotest.test_case "sample realizations" `Quick test_sample_realizations;
    Alcotest.test_case "u_of_sample" `Quick test_u_of_sample;
    Alcotest.test_case "node pattern" `Quick test_node_pattern_symmetric;
    Alcotest.test_case "galerkin matrices symmetric" `Quick test_galerkin_matrices_symmetric;
    Alcotest.test_case "zero variation reduces to nominal" `Quick test_galerkin_block_zero_is_nominal;
    Alcotest.test_case "direct vs mean-pcg" `Quick test_direct_vs_mean_pcg;
    Alcotest.test_case "galerkin dc vs mc dc" `Slow test_galerkin_dc_vs_monte_carlo_dc;
    Alcotest.test_case "response storage" `Quick test_response_storage;
    Alcotest.test_case "special case decoupled = coupled" `Quick test_special_case_decoupled_equals_coupled;
    Alcotest.test_case "special case vs mc" `Slow test_special_case_vs_monte_carlo;
    Alcotest.test_case "special case analytic" `Quick test_special_case_mean_analytic;
    Alcotest.test_case "grouped wires mode" `Quick test_grouped_wires_mode;
    Alcotest.test_case "separate = combined (Eq. 14)" `Quick test_separate_equals_combined_moments;
  ]

let test_galerkin_trapezoidal () =
  (* TR at coarse step must beat BE at the same step against a fine-step
     reference, and both schemes agree in the limit. *)
  let _, m = small_model () in
  let node = m.Opera.Stochastic_model.n / 2 in
  let t_end = 1.0e-9 in
  let run scheme steps =
    let options = { Opera.Galerkin.default_options with Opera.Galerkin.scheme } in
    let r, _ = Opera.Galerkin.solve_transient ~options m ~h:(t_end /. float_of_int steps) ~steps in
    Opera.Response.mean_at r ~step:steps ~node
  in
  let reference = run Powergrid.Transient.Backward_euler 256 in
  let be = run Powergrid.Transient.Backward_euler 8 in
  let tr = run Powergrid.Transient.Trapezoidal 8 in
  let err_be = Float.abs (be -. reference) and err_tr = Float.abs (tr -. reference) in
  Alcotest.(check bool)
    (Printf.sprintf "TR err %.2e <= BE err %.2e" err_tr err_be)
    true (err_tr <= err_be +. 1e-12);
  Helpers.check_float ~eps:1e-4 "schemes agree roughly" be tr

let suite = suite @ [ Alcotest.test_case "galerkin trapezoidal" `Quick test_galerkin_trapezoidal ]

let test_truncation_order_convergence () =
  (* Single node behind a varying pad: v(xi) = VDD - I R0 / (1 + kappa xi),
     a genuinely nonlinear response. The truncated expansion must converge
     to the quadrature-exact mean as the order grows. *)
  let kappa = 0.25 /. 3.0 in
  let i_load = 0.05 and r0 = 1.0 in
  let circuit =
    Powergrid.Circuit.make ~num_nodes:1 ~resistors:[]
      ~capacitors:
        [ { Powergrid.Circuit.cnode1 = 0; cnode2 = Powergrid.Circuit.ground; farads = 1e-15;
            ckind = Powergrid.Circuit.Fixed } ]
      ~isources:[ { Powergrid.Circuit.inode = 0; wave = Powergrid.Waveform.Dc i_load; region = 0 } ]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = vdd; series_ohms = r0 } ]
      ()
  in
  let vm =
    { Opera.Varmodel.paper_default with
      Opera.Varmodel.sigma_l = 0.0; current_sensitivity = 0.0 }
  in
  (* Exact mean by high-order quadrature of VDD - I R0 / (1 + kappa xi). *)
  let rule = Polychaos.Quadrature.gauss Polychaos.Family.hermite 40 in
  let exact_mean =
    Polychaos.Quadrature.integrate rule (fun xi -> vdd -. (i_load *. r0 /. (1.0 +. (kappa *. xi))))
  in
  let errors =
    List.map
      (fun order ->
        let m = Opera.Stochastic_model.build ~order vm ~vdd circuit in
        let a = Opera.Galerkin.solve_dc m in
        Float.abs (a.(0) -. exact_mean))
      [ 1; 2; 4 ]
  in
  (match errors with
  | [ e1; e2; e4 ] ->
      Alcotest.(check bool)
        (Printf.sprintf "errors decrease: %.2e > %.2e > %.2e" e1 e2 e4)
        true
        (e1 > e2 && e2 > e4);
      Alcotest.(check bool) "order 4 is tight" true (e4 < 1e-6)
  | _ -> assert false)

let suite =
  suite @ [ Alcotest.test_case "truncation convergence" `Quick test_truncation_order_convergence ]
