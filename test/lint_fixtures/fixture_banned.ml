(* opera-lint: mli — fixture file, deliberately interface-free. *)
(* Seeded R3 [banned-construct] violations for test_lint.ml. *)

let shout s = print_endline s

let sneak x = Obj.magic x

let quit () = exit 1

let swallow f = try f () with _ -> 0

let waived_print s = print_string s (* opera-lint: banned *)

(* Binding the exception is fine: must NOT be flagged. *)
let rethrow f = try f () with e -> raise e
