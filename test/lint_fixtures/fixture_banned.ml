(* Seeded R3 [banned-construct] violations for test_lint.ml. *)

let shout s = print_endline s

let sneak (x : int) : float = Obj.magic x

let quit () = exit 1

let swallow f = try f () with _ -> 0

let waived_print s = print_string s (* opera-lint: banned *)

(* Binding and re-raising the exception is fine: must NOT be flagged. *)
let rethrow f = try f () with e -> raise e

(* Cleanup-and-rethrow — run a handler, then re-raise on every path:
   must NOT be flagged. *)
let cleanup g f =
  try f ()
  with e ->
    g ();
    raise e
