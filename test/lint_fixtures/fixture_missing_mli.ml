(* Seeded R5 [missing-mli] violation for test_lint.ml: this fixture has
   no .mli sibling and no waiver comment on line 1. *)

let answer = 42
