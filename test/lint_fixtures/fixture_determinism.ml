(* Seeded R6 [nondeterminism] violations for test_lint.ml: unordered
   container iteration, ambient PRNG state, wall-clock reads. *)

let t : (string, int) Hashtbl.t = Hashtbl.create 8

(* Unordered Hashtbl traversal: flagged. *)
let bad_iter f = Hashtbl.iter f t

let bad_fold () = Hashtbl.fold (fun k _ acc -> k :: acc) t []

(* Ambient PRNG: flagged. *)
let bad_self_init () = Random.self_init ()

let bad_ambient n = Random.int n

(* Wall-clock read outside Util.Timer: flagged. *)
let bad_clock () = Unix.gettimeofday ()

(* Fold whose result is immediately sorted: order laundered away, must
   NOT be flagged. *)
let ordered () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

(* Explicit PRNG state threaded by the caller: must NOT be flagged. *)
let seeded st n = Random.State.int st n

let waived f = Hashtbl.iter f t (* opera-lint: order *)
