(* opera-lint: mli — fixture file, deliberately interface-free. *)
(* Seeded R4 [unsafe-index] violations for test_lint.ml. *)

let hot a i = Array.unsafe_get a i

let hot_set a i v = Array.unsafe_set a i v

let waived a i = Bytes.unsafe_get a i (* opera-lint: unsafe *)

(* Bounds-checked access: must NOT be flagged. *)
let checked a i = a.(i)
