(* Seeded R4 [unsafe-index] violations for test_lint.ml. *)

module A = Array

let hot a i = Array.unsafe_get a i

let hot_set a i v = Array.unsafe_set a i v

(* Laundered through a module alias: the typedtree resolves [A] back to
   [Stdlib.Array], so this is still flagged. *)
let via_alias (a : int array) i v = A.unsafe_set a i v

let waived (a : bytes) i = Bytes.unsafe_get a i (* opera-lint: unsafe *)

(* Bounds-checked access: must NOT be flagged. *)
let checked a i = a.(i)
