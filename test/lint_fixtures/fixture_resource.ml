(* Seeded R8 [resource-leak] violations for test_lint.ml: channels that
   are opened but not closed on all paths. *)

(* Never closed at all: flagged. *)
let bad_read path =
  let ic = open_in path in
  let line = input_line ic in
  String.trim line

(* Fun.protect with a closing finally: must NOT be flagged. *)
let ok_protect path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input_line ic)

(* Closes in every branch: must NOT be flagged. *)
let ok_branches path =
  let ic = open_in path in
  match input_line ic with
  | line ->
      close_in ic;
      Some line
  | exception End_of_file ->
      close_in ic;
      None

let waived path =
  let oc = open_out path (* opera-lint: resource *) in
  ignore oc
