(* Seeded R8 [resource-leak] violations for test_lint.ml: channels that
   are opened but not closed on all paths. *)

(* Never closed at all: flagged. *)
let bad_read path =
  let ic = open_in path in
  let line = input_line ic in
  String.trim line

(* Fun.protect with a closing finally: must NOT be flagged. *)
let ok_protect path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input_line ic)

(* Closes in every branch: must NOT be flagged. *)
let ok_branches path =
  let ic = open_in path in
  match input_line ic with
  | line ->
      close_in ic;
      Some line
  | exception End_of_file ->
      close_in ic;
      None

let waived path =
  let oc = open_out path (* opera-lint: resource *) in
  ignore oc

(* Unix file descriptors count too: a socket that can leak on the
   exceptional path is flagged. *)
let bad_socket () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX "/tmp/x.sock");
  fd

(* ... and Fun.protect heading into Unix.close is the sanctioned shape. *)
let ok_socket path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> (Unix.fstat fd).Unix.st_size)
