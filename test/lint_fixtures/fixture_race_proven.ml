(* R2 capture-analysis fixture: every write below is provably
   chunk-disjoint, so this file must produce ZERO findings and its
   closures must count as proven in the race stats. *)

let out = Array.make 64 0.0

let nblocks = 4

let blocks = Array.init 4 (fun _ -> Array.make 16 0.0)

(* Direct write at the parallel index. *)
let direct n = Util.Parallel.parallel_for n (fun i -> out.(i) <- float_of_int i)

(* Strided slice: row [k] owns [out.(k*n .. k*n + n - 1)]. *)
let strided n =
  Util.Parallel.for_chunks nblocks (fun ~chunk:_ ~lo ~hi ->
      for k = lo to hi - 1 do
        for j = 0 to n - 1 do
          out.((k * n) + j) <- 0.0
        done
      done)

(* Chunk-owned buffer: each domain writes only [blocks.(chunk)]. *)
let owned () =
  Util.Parallel.for_chunks nblocks (fun ~chunk ~lo:_ ~hi:_ ->
      let b = blocks.(chunk) in
      b.(0) <- 1.0)

(* Array.fill whose offset stride matches its length: rows disjoint. *)
let filled n =
  Util.Parallel.for_chunks nblocks (fun ~chunk:_ ~lo ~hi ->
      for k = lo to hi - 1 do
        Array.fill out (k * n) n 0.0
      done)
