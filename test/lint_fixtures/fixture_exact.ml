(* Seeded R1 [exact-float] violations for test_lint.ml.  Fixtures are
   typechecked against the project's libraries, so comparisons are
   classified by resolved type, not syntax. *)

let bad_eq x = x = 0.0

let bad_ne x = x <> 1.5

(* Float equality reached through an abstract alias ([Linalg.Vec.t] is a
   [float array] underneath): flagged. *)
let bad_elem (v : Linalg.Vec.t) = v.(0) = 1.0

let waived_comment x = x = 0.0 (* opera-lint: exact *)

let waived_attr x = (x = 0.0) [@opera.exact]

(* Ordering comparisons are not equality: must NOT be flagged. *)
let fine x = x > 0.0 && x < 1.0

(* Integer equality: must NOT be flagged. *)
let fine_int (x : int) = x = 0
