(* opera-lint: mli — fixture file, deliberately interface-free. *)
(* Seeded R1 [exact-float] violations for test_lint.ml.  These files are
   parsed by the lint engine but never compiled. *)

let bad_eq x = x = 0.0

let bad_ne x = x <> 1.5

let waived_comment x = x = 0.0 (* opera-lint: exact *)

let waived_attr x = (x = 0.0) [@opera.exact]

(* Ordering comparisons are not equality: must NOT be flagged. *)
let fine x = x > 0.0 && x < 1.0

(* Integer equality: must NOT be flagged. *)
let fine_int x = x = 0
