(* Seeded R7 [hot-alloc] violations for test_lint.ml: allocating
   constructs inside [@opera.hot] functions. *)

(* Fresh array per call: flagged. *)
let[@opera.hot] bad_make n =
  let scratch = Array.make n 0.0 in
  scratch.(0) <- 1.0;
  scratch

(* Tuple construction allocates: flagged. *)
let[@opera.hot] bad_pair a b = (a, b)

(* Closure literal allocates: flagged. *)
let[@opera.hot] bad_closure f = f (fun x -> x + 1)

(* Allocation is fine OUTSIDE hot functions: must NOT be flagged. *)
let cold_make n = Array.make n 0.0

(* Clean kernel: a let-bound ref accumulator and a let-bound local
   helper are both compiler-eliminated, must NOT be flagged. *)
let[@opera.hot] ok_kernel (a : float array) =
  let acc = ref 0.0 in
  let add lo hi =
    for i = lo to hi - 1 do
      acc := !acc +. a.(i)
    done
  in
  add 0 (Array.length a);
  !acc

let[@opera.hot] waived n = Array.make n 0 (* opera-lint: alloc *)
