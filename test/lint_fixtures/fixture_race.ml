(* opera-lint: mli — fixture file, deliberately interface-free. *)
(* Seeded R2 [domain-race] violations for test_lint.ml. *)

let total = ref 0

let tally = Hashtbl.create 8

let shared = Array.make 4 0.0

(* Captured ref mutated across domains: flagged. *)
let bad_ref n = Util.Parallel.parallel_for n (fun _i -> incr total)

(* Shared Hashtbl mutated across domains: flagged. *)
let bad_hashtbl n =
  Util.Parallel.for_chunks n (fun ~chunk ~lo:_ ~hi:_ -> Hashtbl.replace tally chunk 1)

(* Captured-array write; only legal in race-allowlisted files. *)
let bad_array n = Util.Parallel.parallel_for n (fun _i -> shared.(0) <- shared.(0) +. 1.0)

(* Metrics registries are not thread-safe: flagged. *)
let bad_metrics n =
  Util.Parallel.parallel_for n (fun _i -> Util.Metrics.incr Util.Metrics.global "races")

(* Closure-local state is fine: must NOT be flagged. *)
let ok_local n =
  Util.Parallel.parallel_for n (fun i ->
      let acc = ref 0 in
      acc := i;
      ignore !acc)

(* Waived capture (e.g. a deliberately benign write). *)
let waived n = Util.Parallel.parallel_for n (fun _i -> incr total (* opera-lint: race *))
