(* Seeded R2 [domain-race] violations for test_lint.ml: every parallel
   closure in this file races and must be flagged unwaived. *)

let total = ref 0

let tally = Hashtbl.create 8

let shared = Array.make 4 0.0

(* Captured ref mutated across domains: flagged. *)
let bad_ref n = Util.Parallel.parallel_for n (fun _i -> incr total)

(* Shared Hashtbl mutated across domains: flagged. *)
let bad_hashtbl n =
  Util.Parallel.for_chunks n (fun ~chunk ~lo:_ ~hi:_ -> Hashtbl.replace tally chunk 1)

(* Captured-array write at a chunk-invariant index: flagged. *)
let bad_array n = Util.Parallel.parallel_for n (fun _i -> shared.(0) <- shared.(0) +. 1.0)

(* Metrics registries are not thread-safe: flagged. *)
let bad_metrics n =
  Util.Parallel.parallel_for n (fun _i -> Util.Metrics.incr Util.Metrics.global "races")

(* Call to a captured closure: effects unanalyzable, flagged. *)
let bad_captured_call f n = Util.Parallel.parallel_for n (fun i -> f i)

(* Captured mutable value handed to a module call that may write it.
   [Linalg.Vec.t] is an abstract alias of [float array], so this also
   exercises mutability detection through type expansion. *)
let bad_vec_arg n = Util.Parallel.parallel_for n (fun _i -> Linalg.Vec.fill shared 0.0)

(* Closure-local state is fine: must NOT be flagged. *)
let ok_local n =
  Util.Parallel.parallel_for n (fun i ->
      let acc = ref 0 in
      acc := i;
      ignore !acc)
