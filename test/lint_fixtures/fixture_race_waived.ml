(* R2 per-closure waiver fixture: indirect indexing the analysis cannot
   prove disjoint, vouched for by `opera-lint: race` waivers.  Both
   findings must come back waived; both closures must count as waived
   (not proven) in the race stats. *)

let acc = Array.make 8 0.0

let idx = [| 3; 1; 4; 1; 5; 9; 2; 6 |]

(* Waiver on the closure head line. *)
let scatter n =
  (* opera-lint: race — idx is a permutation, writes are distinct *)
  Util.Parallel.parallel_for n (fun i -> acc.(idx.(i)) <- float_of_int i)

(* Waiver on the finding line itself. *)
let scatter_inline n =
  Util.Parallel.parallel_for n (fun i ->
      acc.(idx.(i)) <- 1.0 (* opera-lint: race *))
