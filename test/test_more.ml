(* Cross-cutting coverage: algebraic properties, harness plumbing, and
   odds and ends not exercised elsewhere. *)

let test_kron_mixed_product =
  (* (C (x) A) (y (x) x) = (C y) (x) (A x) — the identity behind the
     Galerkin matvec. *)
  Helpers.qcheck_case ~count:30 "kron mixed product"
    QCheck.(pair (array_of_size (Gen.return 3) (float_range (-2.) 2.))
              (array_of_size (Gen.return 4) (float_range (-2.) 2.)))
    (fun (y, x) ->
      let rng = Helpers.rng () in
      let cd = Linalg.Dense.init 3 3 (fun _ _ -> Prob.Rng.float_range rng (-1.0) 1.0) in
      let a = Helpers.random_sparse_spd rng 4 ~extra_edges:4 in
      let k = Linalg.Sparse.kron cd a in
      (* y (x) x laid out block-major: block i = y.(i) * x *)
      let yx = Array.init 12 (fun i -> y.(i / 4) *. x.(i mod 4)) in
      let left = Linalg.Sparse.mul_vec k yx in
      let cy = Linalg.Dense.matvec cd y in
      let ax = Linalg.Sparse.mul_vec a x in
      let right = Array.init 12 (fun i -> cy.(i / 4) *. ax.(i mod 4)) in
      Linalg.Vec.approx_equal ~tol:1e-9 left right)

let test_galerkin_rhs_matches_quadrature () =
  (* Block j of Ut(t) must equal E[U(xi, t) psi_j] computed by exact
     Gaussian quadrature over the sampled excitation. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd:1.2 circuit in
  let n = m.Opera.Stochastic_model.n in
  let size = Polychaos.Basis.size m.Opera.Stochastic_model.basis in
  let t = 0.3e-9 in
  let drain_buf = Array.make n 0.0 in
  let rhs = Array.make (size * n) 0.0 in
  Opera.Galerkin.rhs_into m ~drain_buf t rhs;
  let families = Polychaos.Basis.families m.Opera.Stochastic_model.basis in
  (* check a handful of nodes across all blocks *)
  let nodes = [ 0; n / 3; n - 1 ] in
  for j = 0 to size - 1 do
    List.iter
      (fun node ->
        let expected =
          Polychaos.Quadrature.tensor families 4 (fun xi ->
              let u = Opera.Stochastic_model.u_of_sample m xi t in
              u.(node) *. Polychaos.Basis.eval m.Opera.Stochastic_model.basis j xi)
        in
        Helpers.check_float
          ~eps:(1e-9 +. (1e-9 *. Float.abs expected))
          (Printf.sprintf "rhs block %d node %d" j node)
          expected
          rhs.((j * n) + node))
      nodes
  done

let test_driver_direct_solver () =
  let spec = Helpers.small_grid_spec in
  let config =
    { Opera.Driver.default_config with
      Opera.Driver.solver = Opera.Galerkin.Direct; mc_samples = 40; steps = 6 }
  in
  let outcome = Opera.Driver.run_grid ~label:"direct-e2e" config spec Opera.Varmodel.paper_default in
  Alcotest.(check string) "label" "direct-e2e" outcome.Opera.Driver.label;
  Alcotest.(check bool) "finite speedup" true
    (Float.is_finite outcome.Opera.Driver.report.Opera.Compare.speedup);
  Alcotest.(check bool) "mean error sane" true
    (outcome.Opera.Driver.report.Opera.Compare.avg_err_mean_pct < 1.0)

let test_response_density () =
  (* A purely Gaussian response: density_at must equal the normal pdf. *)
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  let r = Opera.Response.create ~basis ~n:1 ~steps:1 ~h:1e-9 ~vdd:1.2 ~probes:[| 0 |] in
  let coefs = Array.make 6 0.0 in
  coefs.(0) <- 1.0;
  (* mean *)
  coefs.(1) <- 0.01;
  (* sigma via xi0 *)
  Opera.Response.record_step r ~step:1 ~coefs;
  let moments = Opera.Response.moments_at r ~node:0 ~step:1 in
  Helpers.check_float ~eps:1e-12 "mean" 1.0 moments.Prob.Gram_charlier.mean;
  Helpers.check_float ~eps:1e-12 "variance" 1e-4 moments.Prob.Gram_charlier.variance;
  Helpers.check_float ~eps:1e-9 "skew" 0.0 moments.Prob.Gram_charlier.skewness;
  let density = Opera.Response.density_at r ~node:0 ~step:1 in
  Helpers.check_close ~rtol:1e-9 "peak density" (1.0 /. (0.01 *. sqrt (2.0 *. Float.pi)))
    (density 1.0);
  (* integrates to ~1 *)
  let acc = ref 0.0 in
  let lo = 0.95 and hi = 1.05 and steps = 2000 in
  for i = 0 to steps - 1 do
    let x = lo +. ((hi -. lo) *. (float_of_int i +. 0.5) /. float_of_int steps) in
    acc := !acc +. (density x *. (hi -. lo) /. float_of_int steps)
  done;
  Helpers.check_float ~eps:1e-6 "normalized" 1.0 !acc

let test_sparse_get_edges () =
  let a = Linalg.Sparse.of_triplets ~nrows:3 ~ncols:3 [ (0, 0, 1.0); (2, 0, 2.0); (1, 2, 3.0) ] in
  Helpers.check_float "present" 2.0 (Linalg.Sparse.get a 2 0);
  Helpers.check_float "structural zero" 0.0 (Linalg.Sparse.get a 1 0);
  Helpers.check_float "empty column" 0.0 (Linalg.Sparse.get a 0 1);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Sparse.get: out of bounds") (fun () ->
      ignore (Linalg.Sparse.get a 3 0));
  let b = Linalg.Sparse.map_values Float.abs (Linalg.Sparse.scale (-1.0) a) in
  Helpers.check_float "map_values" 3.0 (Linalg.Sparse.get b 1 2)

let test_table_render () =
  let t = Util.Table.create [ ("name", Util.Table.Left); ("value", Util.Table.Right) ] in
  Util.Table.add_row t [ "alpha"; "1" ];
  Util.Table.add_row t [ "b"; "22" ];
  let s = Util.Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "| alpha | $1    |" || String.length l > 0) lines);
  (* all data lines have equal width *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0)
    |> List.map String.length
  in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_timer () =
  let (), dt = Util.Timer.time (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  Alcotest.(check bool) "nonnegative duration" true (dt >= 0.0 && dt < 10.0)

let test_waveform_zero_duty () =
  let rng = Prob.Rng.create () in
  let w = Powergrid.Waveform.random_activity rng ~peak:1.0 ~period:1e-9 ~duty:0.0 ~cycles:5 in
  List.iter
    (fun t -> Helpers.check_float "silent waveform" 0.0 (Powergrid.Waveform.eval w t))
    [ 0.0; 0.3e-9; 2.2e-9; 4.9e-9 ]

let test_netlist_file_roundtrip () =
  let circuit = Powergrid.Grid_gen.generate Helpers.small_grid_spec in
  let path = Filename.temp_file "opera_test" ".sp" in
  Powergrid.Netlist.write_file path circuit;
  let parsed = Powergrid.Netlist.parse_file path in
  Sys.remove path;
  Alcotest.(check string) "file roundtrip" (Powergrid.Circuit.stats circuit)
    (Powergrid.Circuit.stats parsed.Powergrid.Netlist.circuit)

let test_grid_spec_errors () =
  Alcotest.(check bool) "layer out of range" true
    (try
       ignore (Powergrid.Grid_spec.layer_dims Powergrid.Grid_spec.default 9);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tiny target rejected" true
    (try
       ignore (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default 2);
       false
     with Invalid_argument _ -> true)

let test_compare_shape_mismatch () =
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  let r = Opera.Response.create ~basis ~n:2 ~steps:1 ~h:1e-9 ~vdd:1.2 ~probes:[||] in
  let fake_mc =
    {
      Opera.Monte_carlo.n = 3;
      steps = 1;
      h = 1e-9;
      samples = 1;
      mean = Array.make 6 0.0;
      variance = Array.make 6 0.0;
      probe_values = [||];
      elapsed_seconds = 0.0;
    }
  in
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore
         (Opera.Compare.compare ~response:r ~mc:fake_mc ~nominal:(Array.make 4 0.0) ~vdd:1.2
            ~opera_seconds:1.0);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    test_kron_mixed_product;
    Alcotest.test_case "galerkin rhs = quadrature" `Quick test_galerkin_rhs_matches_quadrature;
    Alcotest.test_case "driver direct solver e2e" `Slow test_driver_direct_solver;
    Alcotest.test_case "response density" `Quick test_response_density;
    Alcotest.test_case "sparse get edges" `Quick test_sparse_get_edges;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "waveform zero duty" `Quick test_waveform_zero_duty;
    Alcotest.test_case "netlist file roundtrip" `Quick test_netlist_file_roundtrip;
    Alcotest.test_case "grid spec errors" `Quick test_grid_spec_errors;
    Alcotest.test_case "compare shape mismatch" `Quick test_compare_shape_mismatch;
  ]

let test_svg_map_structure () =
  let spec = Helpers.small_grid_spec in
  let n = Powergrid.Grid_spec.node_count spec in
  let values = Array.init n (fun i -> float_of_int i) in
  let svg = Powergrid.Svg_map.render spec ~values ~title:"test map" ~unit_label:"mV" () in
  Alcotest.(check bool) "opens svg" true (String.length svg > 100 && String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) "closes svg" true
    (let l = String.length svg in
     String.sub svg (l - 7) 6 = "</svg>");
  (* one rect per bottom-layer cell + background + 40 legend segments *)
  let count_substring needle hay =
    let rec go from acc =
      match String.index_from_opt hay from '<' with
      | None -> acc
      | Some i ->
          if i + String.length needle <= String.length hay
             && String.sub hay i (String.length needle) = needle
          then go (i + 1) (acc + 1)
          else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "rect count"
    ((spec.Powergrid.Grid_spec.rows * spec.Powergrid.Grid_spec.cols) + 1 + 40)
    (count_substring "<rect" svg);
  Alcotest.(check bool) "title present" true (count_substring "<text" svg >= 3)

let test_svg_map_constant_values () =
  (* Degenerate (constant) map must not divide by zero. *)
  let spec = Helpers.small_grid_spec in
  let n = Powergrid.Grid_spec.node_count spec in
  let svg = Powergrid.Svg_map.render spec ~values:(Array.make n 1.0) () in
  Alcotest.(check bool) "renders" true (String.length svg > 100)

let test_ibm_style_netlist () =
  (* The public IBM power-grid benchmarks use long underscored node names,
     multiple sources and mixed-case cards; make sure the parser copes. *)
  let text =
    "* IBM-style fragment\n\
     R1 n1_1234_5678 n1_1234_5710 0.012\n\
     r2 n1_1234_5710 N1_2000_5710 0.009\n\
     C7 n1_1234_5678 0 1.2f KIND=fixed\n\
     i_block_3 n1_2000_5710 0 3.4m\n\
     V_pad_1 n1_1234_5678 0 1.8 RS=0.02\n\
     V_PAD_2 N1_2000_5710 0 1.8 RS=0.02\n\
     .op\n\
     .end\n"
  in
  let parsed = Powergrid.Netlist.parse_string text in
  let c = parsed.Powergrid.Netlist.circuit in
  Alcotest.(check int) "3 nodes" 3 (Powergrid.Circuit.node_count c);
  Alcotest.(check int) "2 pads" 2 (Array.length c.Powergrid.Circuit.vsources);
  (* node names are case-insensitive: N1_2000_5710 = n1_2000_5710 *)
  Alcotest.(check int) "2 resistors" 2 (Array.length c.Powergrid.Circuit.resistors);
  let v = Powergrid.Dc.solve (Powergrid.Mna.assemble c) in
  Array.iter
    (fun vi -> Alcotest.(check bool) "voltage sane" true (vi > 1.7 && vi <= 1.8))
    v

let suite =
  suite
  @ [
      Alcotest.test_case "svg map structure" `Quick test_svg_map_structure;
      Alcotest.test_case "svg constant map" `Quick test_svg_map_constant_values;
      Alcotest.test_case "ibm-style netlist" `Quick test_ibm_style_netlist;
    ]

let test_low_rank_update () =
  (* Decap/conductance edits via Sherman-Morrison-Woodbury must match a
     full refactorization. *)
  let rng = Helpers.rng () in
  let n = 40 in
  let a = Helpers.random_sparse_spd rng n ~extra_edges:60 in
  let f = Linalg.Sparse_cholesky.factor a in
  (* rank-3 diagonal update, mixed signs *)
  let edits = [ (3, 0.8); (17, 2.5); (31, -0.05) ] in
  let u = List.map (fun (node, delta) -> fst (Linalg.Low_rank.node_update ~n ~node ~delta)) edits in
  let c = List.map snd edits in
  let upd = Linalg.Low_rank.prepare f ~u:(Array.of_list u) ~c:(Array.of_list c) in
  Alcotest.(check int) "rank" 3 (Linalg.Low_rank.rank upd);
  (* reference: modified matrix refactored *)
  let a' =
    List.fold_left
      (fun acc (node, delta) ->
        Linalg.Sparse.add acc (Linalg.Sparse.of_triplets ~nrows:n ~ncols:n [ (node, node, delta) ]))
      a edits
  in
  let f' = Linalg.Sparse_cholesky.factor a' in
  for _ = 1 to 5 do
    let b = Helpers.random_vec rng n in
    let x_smw = Linalg.Low_rank.solve upd b in
    let x_ref = Linalg.Sparse_cholesky.solve f' b in
    Alcotest.(check bool) "SMW matches refactor" true
      (Linalg.Vec.approx_equal ~tol:1e-8 x_smw x_ref)
  done

let test_low_rank_general_vectors () =
  (* Non-diagonal update: a new conductance between two nodes is
     g (e_i - e_j)(e_i - e_j)^T. *)
  let rng = Helpers.rng () in
  let n = 25 in
  let a = Helpers.random_sparse_spd rng n ~extra_edges:30 in
  let f = Linalg.Sparse_cholesky.factor a in
  let u = Linalg.Vec.create n in
  u.(4) <- 1.0;
  u.(19) <- -1.0;
  let g_new = 0.7 in
  let upd = Linalg.Low_rank.prepare f ~u:[| u |] ~c:[| g_new |] in
  let b = Helpers.random_vec rng n in
  let x_smw = Linalg.Low_rank.solve upd b in
  let builder = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  Linalg.Sparse_builder.stamp_conductance builder (Some 4) (Some 19) g_new;
  let a' = Linalg.Sparse.add a (Linalg.Sparse_builder.to_csc builder) in
  let x_ref = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor a') b in
  Alcotest.(check bool) "edge insertion matches" true
    (Linalg.Vec.approx_equal ~tol:1e-8 x_smw x_ref)

let suite =
  suite
  @ [
      Alcotest.test_case "low-rank diagonal update" `Quick test_low_rank_update;
      Alcotest.test_case "low-rank edge insertion" `Quick test_low_rank_general_vectors;
    ]
