(* CLI exit-code discipline, exercised on the real executable.

   Contract (shared by every subcommand through Cli_common.dispatch):
     0  success, --help, --version
     2  unknown subcommand, unknown flag, malformed value, bad job file
   The tests shell out to the built opera binary (a test dep), with
   stdout/stderr sent to /dev/null — only the exit codes matter here. *)

let exe = "../bin/opera_cli.exe"

let exit_code args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe) args)

let check what expected args = Alcotest.(check int) what expected (exit_code args)

let test_help_exits_zero () =
  check "opera --help" 0 "--help";
  check "opera -h" 0 "-h";
  check "opera help" 0 "help";
  check "opera --version" 0 "--version";
  List.iter
    (fun sub -> check (sub ^ " --help") 0 (sub ^ " --help"))
    [ "generate"; "analyze"; "mc"; "compare"; "special"; "batch"; "walk" ];
  check "analyze -h" 0 "analyze -h"

let test_usage_errors_exit_two () =
  check "no arguments" 2 "";
  check "unknown subcommand" 2 "frobnicate";
  check "unknown flag" 2 "analyze --bogus";
  check "unknown flag (generate)" 2 "generate --bogus";
  check "malformed int" 2 "analyze --nodes many";
  check "malformed enum" 2 "analyze --solver qr";
  check "flag missing its value" 2 "analyze --nodes";
  check "unexpected positional" 2 "analyze stray";
  check "batch without a file" 2 "batch";
  check "batch with a missing file" 2 "batch /nonexistent/jobs.json";
  check "batch with extra positionals" 2 "batch a.json b.json";
  check "--resume without --cache-dir" 2 "batch --resume /nonexistent/jobs.json";
  check "--gc-results without --cache-dir" 2 "batch --gc-results /nonexistent/jobs.json";
  check "malformed --shard" 2 "batch --shard x /nonexistent/jobs.json";
  check "--shard missing the slash" 2 "batch --shard 2 /nonexistent/jobs.json";
  check "--shard index out of range" 2 "batch --shard 3/2 /nonexistent/jobs.json";
  check "--shard count of zero" 2 "batch --shard 0/0 /nonexistent/jobs.json";
  check "--shard=I/K malformed (= form)" 2 "batch --shard=3/2 /nonexistent/jobs.json";
  check "batch --cache-max-bytes without --cache-dir" 2
    "batch --cache-max-bytes 1M /nonexistent/jobs.json";
  check "batch malformed --cache-max-bytes" 2
    "batch --cache-dir /tmp --cache-max-bytes lots /nonexistent/jobs.json"

let with_temp_file contents f =
  let path = Filename.temp_file "opera_cli_test" ".json" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_batch_rejects_malformed_jobs () =
  with_temp_file "{ not json" (fun path ->
      check "malformed JSON" 2 ("batch " ^ Filename.quote path));
  with_temp_file {|{"jobs": [{"analysis": "dc", "nodez": 10}]}|} (fun path ->
      check "unknown job field" 2 ("batch " ^ Filename.quote path));
  with_temp_file {|{"jobs": []}|} (fun path ->
      check "empty batch" 2 ("batch " ^ Filename.quote path));
  with_temp_file {|{"jobs": [{"name": "a", "analysis": "dc"}, {"name": "a", "analysis": "dc"}]}|}
    (fun path -> check "duplicate job names" 2 ("batch " ^ Filename.quote path));
  with_temp_file {|{"jobs": [{"analysis": "special", "regions": 5}]}|} (fun path ->
      check "non-tileable region count" 2 ("batch " ^ Filename.quote path));
  with_temp_file {|{"jobs": [{"analysis": "dc", "nodes": 60, "probe": 1000000}]}|} (fun path ->
      check "out-of-range probe" 2 ("batch " ^ Filename.quote path))

(* serve flag validation: every malformed form must exit 2 before any
   socket is bound (the daemon never starts). *)
let test_serve_usage_errors_exit_two () =
  check "serve --help" 0 "serve --help";
  check "serve unknown flag" 2 "serve --bogus";
  check "serve unexpected positional" 2 "serve stray";
  check "serve --queue 0" 2 "serve --queue 0 --cache-dir /tmp";
  check "serve --queue=0 (= form)" 2 "serve --queue=0 --cache-dir /tmp";
  check "serve --queue=: empty value" 2 "serve --queue= --cache-dir /tmp";
  check "serve malformed --tcp" 2 "serve --tcp nope";
  check "serve --tcp port out of range" 2 "serve --tcp 70000";
  check "serve --cache-max-bytes without --cache-dir" 2 "serve --cache-max-bytes 1M";
  check "serve malformed --cache-max-bytes" 2 "serve --cache-dir /tmp --cache-max-bytes lots";
  check "serve --cache-max-bytes=-1" 2 "serve --cache-dir /tmp --cache-max-bytes=-1";
  check "serve --max-results without --cache-dir" 2 "serve --max-results 100";
  check "serve malformed --max-results" 2 "serve --cache-dir /tmp --max-results some";
  check "serve empty --listen" 2 "serve --listen= --cache-dir /tmp --queue 0";
  (* a listen path occupied by a regular file is refused (Invalid_config -> 2) *)
  with_temp_file "not a socket" (fun path ->
      check "serve --listen over a regular file" 2 ("serve --listen " ^ Filename.quote path))

let test_batch_runs_a_tiny_batch () =
  with_temp_file
    {|{"defaults": {"nodes": 120, "steps": 2, "solver": "direct"},
       "jobs": [{"name": "a", "analysis": "dc"},
                {"name": "b", "analysis": "dc", "drain_scale": 1.5}]}|}
    (fun path ->
      check "tiny batch runs clean" 0 ("batch " ^ Filename.quote path);
      check "dry-run plans without solving" 0 ("batch --dry-run " ^ Filename.quote path))

let with_temp_dir f =
  let dir = Filename.temp_file "opera_cli_cache" "" in
  Sys.remove dir;
  let rm_rf () =
    if Sys.file_exists dir then begin
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:rm_rf (fun () -> f dir)

let test_batch_resume_and_shard_exit_zero () =
  with_temp_file
    {|{"defaults": {"nodes": 120, "steps": 2, "solver": "direct"},
       "jobs": [{"name": "a", "analysis": "dc"},
                {"name": "b", "analysis": "dc", "drain_scale": 1.5}]}|}
    (fun path ->
      with_temp_dir (fun dir ->
          let d = Filename.quote dir and p = Filename.quote path in
          check "cold cached batch" 0 (Printf.sprintf "batch --cache-dir %s %s" d p);
          check "resumed batch" 0 (Printf.sprintf "batch --cache-dir %s --resume %s" d p);
          (* with 2 jobs one of the 2 shards may be empty; both must still
             succeed, and together they cover the batch *)
          check "shard 0/2" 0 (Printf.sprintf "batch --cache-dir %s --shard 0/2 %s" d p);
          check "shard 1/2" 0 (Printf.sprintf "batch --cache-dir %s --shard 1/2 %s" d p);
          check "gc keeps a live batch" 0
            (Printf.sprintf "batch --cache-dir %s --resume --gc-results %s" d p)))

let suite =
  [
    Alcotest.test_case "--help and --version exit 0" `Quick test_help_exits_zero;
    Alcotest.test_case "usage errors exit 2" `Quick test_usage_errors_exit_two;
    Alcotest.test_case "bad job files exit 2" `Quick test_batch_rejects_malformed_jobs;
    Alcotest.test_case "serve usage errors exit 2" `Quick test_serve_usage_errors_exit_two;
    Alcotest.test_case "a tiny batch exits 0" `Slow test_batch_runs_a_tiny_batch;
    Alcotest.test_case "resume and shard flags exit 0" `Slow test_batch_resume_and_shard_exit_zero;
  ]
