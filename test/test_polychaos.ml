(* Orthogonal polynomial families, quadrature, multi-indices, bases. *)

let families =
  [
    ("hermite", Polychaos.Family.hermite);
    ("legendre", Polychaos.Family.legendre);
    ("laguerre", Polychaos.Family.laguerre);
    ("jacobi(1,2)", Polychaos.Family.jacobi ~a:1.0 ~b:2.0);
    ("jacobi(0,0)", Polychaos.Family.jacobi ~a:0.0 ~b:0.0);
  ]

let test_hermite_values () =
  (* Monic probabilists' Hermite: He_2 = x^2 - 1, He_3 = x^3 - 3x. *)
  let f = Polychaos.Family.hermite in
  let x = 1.3 in
  Helpers.check_float "He_0" 1.0 (Polychaos.Family.eval f 0 x);
  Helpers.check_float "He_1" x (Polychaos.Family.eval f 1 x);
  Helpers.check_float ~eps:1e-12 "He_2" ((x *. x) -. 1.0) (Polychaos.Family.eval f 2 x);
  Helpers.check_float ~eps:1e-12 "He_3" ((x ** 3.0) -. (3.0 *. x)) (Polychaos.Family.eval f 3 x);
  Helpers.check_float ~eps:1e-12 "He_4" ((x ** 4.0) -. (6.0 *. x *. x) +. 3.0)
    (Polychaos.Family.eval f 4 x)

let test_hermite_norms () =
  let f = Polychaos.Family.hermite in
  List.iter
    (fun k ->
      Helpers.check_float
        (Printf.sprintf "norm He_%d = %d!" k k)
        (Prob.Special_functions.factorial k)
        (Polychaos.Family.norm_sq f k))
    [ 0; 1; 2; 3; 4; 5 ]

let test_eval_all_consistent () =
  List.iter
    (fun (name, f) ->
      let x = 0.73 in
      let all = Polychaos.Family.eval_all f 6 x in
      for k = 0 to 6 do
        Helpers.check_float ~eps:1e-12
          (Printf.sprintf "%s eval_all.(%d)" name k)
          (Polychaos.Family.eval f k x)
          all.(k)
      done)
    families

(* Orthogonality: E[p_i p_j] = delta_ij norm_sq via exact quadrature. *)
let test_orthogonality () =
  List.iter
    (fun (name, f) ->
      let max_order = 5 in
      let rule = Polychaos.Quadrature.gauss f (max_order + 1) in
      for i = 0 to max_order do
        for j = 0 to max_order do
          let inner =
            Polychaos.Quadrature.integrate rule (fun x ->
                Polychaos.Family.eval f i x *. Polychaos.Family.eval f j x)
          in
          let expected = if i = j then Polychaos.Family.norm_sq f i else 0.0 in
          Helpers.check_float
            ~eps:(1e-9 *. (1.0 +. expected))
            (Printf.sprintf "%s <p_%d, p_%d>" name i j)
            expected inner
        done
      done)
    families

let test_quadrature_weights_sum_to_one () =
  List.iter
    (fun (name, f) ->
      List.iter
        (fun n ->
          let rule = Polychaos.Quadrature.gauss f n in
          Helpers.check_float ~eps:1e-10
            (Printf.sprintf "%s %d-point weights" name n)
            1.0
            (Array.fold_left ( +. ) 0.0 rule.Polychaos.Quadrature.weights))
        [ 1; 2; 5; 10 ])
    families

let test_quadrature_moments () =
  (* Gauss-Hermite must reproduce standard normal moments exactly. *)
  let f = Polychaos.Family.hermite in
  let rule = Polychaos.Quadrature.gauss f 6 in
  let moment k =
    Polychaos.Quadrature.integrate rule (fun x -> x ** float_of_int k)
  in
  Helpers.check_float ~eps:1e-10 "E[x]" 0.0 (moment 1);
  Helpers.check_float ~eps:1e-10 "E[x^2]" 1.0 (moment 2);
  Helpers.check_float ~eps:1e-9 "E[x^4]" 3.0 (moment 4);
  Helpers.check_float ~eps:1e-8 "E[x^6]" 15.0 (moment 6);
  (* Legendre on uniform(-1,1): E[x^2] = 1/3. *)
  let rl = Polychaos.Quadrature.gauss Polychaos.Family.legendre 4 in
  Helpers.check_float ~eps:1e-10 "uniform E[x^2]" (1.0 /. 3.0)
    (Polychaos.Quadrature.integrate rl (fun x -> x *. x));
  (* Laguerre on Exp(1): E[x] = 1, E[x^2] = 2. *)
  let rlag = Polychaos.Quadrature.gauss Polychaos.Family.laguerre 4 in
  Helpers.check_float ~eps:1e-9 "exp E[x]" 1.0
    (Polychaos.Quadrature.integrate rlag (fun x -> x));
  Helpers.check_float ~eps:1e-9 "exp E[x^2]" 2.0
    (Polychaos.Quadrature.integrate rlag (fun x -> x *. x))

let test_tensor_quadrature () =
  let fams = [| Polychaos.Family.hermite; Polychaos.Family.hermite |] in
  (* E[x^2 y^2] = 1 for independent standard normals. *)
  Helpers.check_float ~eps:1e-9 "E[x^2 y^2]" 1.0
    (Polychaos.Quadrature.tensor fams 4 (fun p -> p.(0) *. p.(0) *. p.(1) *. p.(1)));
  Helpers.check_float ~eps:1e-9 "E[x y]" 0.0
    (Polychaos.Quadrature.tensor fams 4 (fun p -> p.(0) *. p.(1)))

let test_multi_index_count () =
  Alcotest.(check int) "C(2+2,2)" 6 (Polychaos.Multi_index.count ~dim:2 ~max_degree:2);
  Alcotest.(check int) "C(3+2,2)" 10 (Polychaos.Multi_index.count ~dim:3 ~max_degree:2);
  Alcotest.(check int) "C(2+3,3)" 10 (Polychaos.Multi_index.count ~dim:2 ~max_degree:3);
  Alcotest.(check int) "order 0" 1 (Polychaos.Multi_index.count ~dim:5 ~max_degree:0)

let test_multi_index_generate () =
  let indices = Polychaos.Multi_index.generate ~dim:2 ~max_degree:2 in
  Alcotest.(check int) "count matches" 6 (Array.length indices);
  (* The paper's Eq. (15) ordering: 1, xiG, xiL, xiG^2-1, xiG xiL, xiL^2-1. *)
  Alcotest.(check (array int)) "psi_0" [| 0; 0 |] indices.(0);
  Alcotest.(check (array int)) "psi_1" [| 1; 0 |] indices.(1);
  Alcotest.(check (array int)) "psi_2" [| 0; 1 |] indices.(2);
  Alcotest.(check (array int)) "psi_3" [| 2; 0 |] indices.(3);
  Alcotest.(check (array int)) "psi_4" [| 1; 1 |] indices.(4);
  Alcotest.(check (array int)) "psi_5" [| 0; 2 |] indices.(5);
  (* All unique, all within degree. *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun idx ->
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen idx);
      Hashtbl.replace seen idx ();
      Alcotest.(check bool) "degree bound" true (Polychaos.Multi_index.degree idx <= 2))
    indices

let test_multi_index_rank () =
  let indices = Polychaos.Multi_index.generate ~dim:3 ~max_degree:2 in
  Array.iteri
    (fun k idx -> Alcotest.(check int) "rank roundtrip" k (Polychaos.Multi_index.rank indices idx))
    indices

let test_basis_eval () =
  let b = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  Alcotest.(check int) "size" 6 (Polychaos.Basis.size b);
  let xi = [| 0.5; -1.2 |] in
  (* psi_4 = xiG * xiL *)
  Helpers.check_float ~eps:1e-12 "psi_4 = x y" (0.5 *. -1.2) (Polychaos.Basis.eval b 4 xi);
  (* psi_3 = xiG^2 - 1 *)
  Helpers.check_float ~eps:1e-12 "psi_3 = x^2-1" ((0.5 *. 0.5) -. 1.0) (Polychaos.Basis.eval b 3 xi);
  let all = Polychaos.Basis.eval_all b xi in
  for k = 0 to 5 do
    Helpers.check_float ~eps:1e-12 (Printf.sprintf "eval_all %d" k) (Polychaos.Basis.eval b k xi)
      all.(k)
  done

let test_basis_norms_match_paper () =
  (* Eq. (23): Var = a1^2 + a2^2 + 2 a3^2 + a4^2 + 2 a5^2 -> norms 1,1,1,2,1,2. *)
  let b = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  let expected = [| 1.0; 1.0; 1.0; 2.0; 1.0; 2.0 |] in
  Array.iteri
    (fun k e -> Helpers.check_float (Printf.sprintf "norm_sq %d" k) e (Polychaos.Basis.norm_sq b k))
    expected

let test_basis_orthogonality_sampled () =
  (* Monte-Carlo sanity of multivariate orthogonality. *)
  let b = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  let rng = Prob.Rng.create ~seed:42L () in
  let n = 60_000 in
  let inner = Array.make_matrix 6 6 0.0 in
  for _ = 1 to n do
    let xi = Polychaos.Basis.sample_point b rng in
    let v = Polychaos.Basis.eval_all b xi in
    for i = 0 to 5 do
      for j = 0 to 5 do
        inner.(i).(j) <- inner.(i).(j) +. (v.(i) *. v.(j) /. float_of_int n)
      done
    done
  done;
  for i = 0 to 5 do
    for j = 0 to 5 do
      let expected = if i = j then Polychaos.Basis.norm_sq b i else 0.0 in
      Helpers.check_float ~eps:0.12 (Printf.sprintf "sampled <psi_%d psi_%d>" i j) expected
        inner.(i).(j)
    done
  done

let prop_count_matches_generate =
  Helpers.qcheck_case ~count:30 "count = |generate|"
    QCheck.(pair (int_range 1 4) (int_range 0 4))
    (fun (dim, p) ->
      Polychaos.Multi_index.count ~dim ~max_degree:p
      = Array.length (Polychaos.Multi_index.generate ~dim ~max_degree:p))

let suite =
  [
    Alcotest.test_case "hermite values" `Quick test_hermite_values;
    Alcotest.test_case "hermite norms" `Quick test_hermite_norms;
    Alcotest.test_case "eval_all consistent" `Quick test_eval_all_consistent;
    Alcotest.test_case "orthogonality (all families)" `Quick test_orthogonality;
    Alcotest.test_case "quadrature weights" `Quick test_quadrature_weights_sum_to_one;
    Alcotest.test_case "quadrature moments" `Quick test_quadrature_moments;
    Alcotest.test_case "tensor quadrature" `Quick test_tensor_quadrature;
    Alcotest.test_case "multi-index count" `Quick test_multi_index_count;
    Alcotest.test_case "multi-index generate (paper order)" `Quick test_multi_index_generate;
    Alcotest.test_case "multi-index rank" `Quick test_multi_index_rank;
    Alcotest.test_case "basis eval" `Quick test_basis_eval;
    Alcotest.test_case "basis norms match Eq.(23)" `Quick test_basis_norms_match_paper;
    Alcotest.test_case "basis orthogonality sampled" `Slow test_basis_orthogonality_sampled;
    prop_count_matches_generate;
  ]
