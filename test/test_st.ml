(* The stochastic-testing collocation backend.

   The contract under test:
     - point selection is a pure function of (basis, candidates, seed) —
       repeated selection is bitwise identical, and the recovered
       transform is well conditioned enough to invert;
     - ST moments agree with the coupled Galerkin solution to chaos
       truncation accuracy, on generated grids and on parsed netlists;
     - the parallel point fan-out is bitwise deterministic in the domain
       count;
     - a per-point stepping factor survives a codec roundtrip and solves
       bitwise identically — the property the engine's artifact cache
       leans on;
     - on a decoupled (deterministic-matrix) model, ST reproduces the
       Sec. 5.1 special-case solution exactly: the solution is linear in
       the truncated excitation, hence inside the basis span;
     - the batch engine runs warm ST jobs with zero factorizations and
       byte-identical records. *)

module St = Opera.St_solver
module Job = Scenario.Job
module Engine = Scenario.Engine

let vdd = 1.2

let model ?(order = 2) () =
  let circuit = Powergrid.Grid_gen.generate Helpers.small_grid_spec in
  Opera.Stochastic_model.build ~order Opera.Varmodel.paper_default ~vdd circuit

let dense_equal_exact a b =
  let n, m = Linalg.Dense.dims a in
  Linalg.Dense.dims b = (n, m)
  &&
  try
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        if not (Util.Floats.equal_exact (Linalg.Dense.get a i j) (Linalg.Dense.get b i j)) then
          raise Exit
      done
    done;
    true
  with Exit -> false

(* --- point selection -------------------------------------------------- *)

let test_selection_deterministic () =
  let m = model () in
  let basis = m.Opera.Stochastic_model.basis in
  let size = Polychaos.Basis.size basis in
  let p1 = St.select_points basis in
  let p2 = St.select_points basis in
  Alcotest.(check int) "N+1 points" size (Array.length p1.St.pts);
  Alcotest.(check bool) "points bitwise stable" true (p1.St.pts = p2.St.pts);
  Alcotest.(check bool) "transform bitwise stable" true (dense_equal_exact p1.St.inv p2.St.inv);
  (* A topped-up pool draws extra candidates from the seeded rng; the
     same (candidates, seed) must reproduce the same selection... *)
  let candidates = (3 * size) + 7 in
  let t1 = St.select_points ~candidates ~seed:42L basis in
  let t2 = St.select_points ~candidates ~seed:42L basis in
  Alcotest.(check bool) "top-up bitwise stable" true
    (t1.St.pts = t2.St.pts && dense_equal_exact t1.St.inv t2.St.inv);
  (* ...and an under-sized bound still yields a full, invertible set. *)
  let clamped = St.select_points ~candidates:1 basis in
  Alcotest.(check int) "pool never shrinks below N+1" size (Array.length clamped.St.pts)

let test_vandermonde_consistent () =
  (* V really tabulates the basis at the selected points, and inv
     inverts it: V * inv = I to roundoff. *)
  let m = model () in
  let basis = m.Opera.Stochastic_model.basis in
  let p = St.select_points basis in
  let size = Polychaos.Basis.size basis in
  Array.iteri
    (fun i pt ->
      let psi = Polychaos.Basis.eval_all basis pt in
      for k = 0 to size - 1 do
        Helpers.check_float ~eps:0.0 "V.(i).(k) = psi_k(pt_i)" psi.(k) (Linalg.Dense.get p.St.vand i k)
      done)
    p.St.pts;
  let prod = Linalg.Dense.matmul p.St.vand p.St.inv in
  for i = 0 to size - 1 do
    for k = 0 to size - 1 do
      Helpers.check_float ~eps:1e-8 "V inv = I" (if i = k then 1.0 else 0.0)
        (Linalg.Dense.get prod i k)
    done
  done

(* --- moment agreement with Galerkin ----------------------------------- *)

let check_moments_close ~what ~steps ~n galerkin st =
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:1e-6
        (what ^ " means agree")
        (Opera.Response.mean_at galerkin ~step ~node)
        (Opera.Response.mean_at st ~step ~node);
      Helpers.check_float
        ~eps:(1e-7 +. (0.05 *. Opera.Response.std_at galerkin ~step ~node))
        (what ^ " stds agree")
        (Opera.Response.std_at galerkin ~step ~node)
        (Opera.Response.std_at st ~step ~node)
    done
  done

let st_options m =
  ignore m;
  { St.default_options with St.domains = 1 }

let test_transient_matches_galerkin () =
  List.iter
    (fun order ->
      let m = model ~order () in
      let h = 0.25e-9 and steps = 6 in
      let galerkin, _ = Opera.Galerkin.solve_transient m ~h ~steps in
      let st, stats = St.solve_transient ~options:(st_options m) m ~h ~steps in
      let size = Polychaos.Basis.size m.Opera.Stochastic_model.basis in
      Alcotest.(check int) "mean factor + one stepping factor per point" (size + 1)
        stats.St.factorizations;
      Alcotest.(check bool) "healthy refinement" true
        (Linalg.Solve_report.agg_healthy stats.St.health);
      check_moments_close
        ~what:(Printf.sprintf "order %d" order)
        ~steps ~n:m.Opera.Stochastic_model.n galerkin st)
    [ 2; 3 ]

let test_transient_matches_on_netlist () =
  let circuit = Powergrid.Grid_gen.generate Helpers.small_grid_spec in
  let path = Filename.temp_file "opera_st_netlist" ".sp" in
  let oc = open_out_bin path in
  output_string oc (Powergrid.Netlist.to_string circuit);
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let parsed = Powergrid.Netlist.parse_file path in
      let m =
        Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd
          parsed.Powergrid.Netlist.circuit
      in
      let h = 0.25e-9 and steps = 4 in
      let galerkin, _ = Opera.Galerkin.solve_transient m ~h ~steps in
      let st, _ = St.solve_transient ~options:(st_options m) m ~h ~steps in
      check_moments_close ~what:"netlist" ~steps ~n:m.Opera.Stochastic_model.n galerkin st)

let test_nonexact_precond_matches_exact () =
  (* The AMG mean-solver backend drops the N+1 per-point stepping
     factors; every point is still refined to the same residual target,
     so the recovered moments must agree with the exact route to
     refinement accuracy. *)
  let m = model () in
  let h = 0.25e-9 and steps = 4 in
  let exact, exact_stats = St.solve_transient ~options:(st_options m) m ~h ~steps in
  let amg, stats =
    St.solve_transient
      ~options:{ (st_options m) with St.precond = Linalg.Precond.Amg }
      m ~h ~steps
  in
  Alcotest.(check bool) "fewer factorizations than the per-point route" true
    (stats.St.factorizations < exact_stats.St.factorizations);
  Alcotest.(check bool) "healthy refinement" true
    (Linalg.Solve_report.agg_healthy stats.St.health);
  check_moments_close ~what:"amg mean-solver backend" ~steps ~n:m.Opera.Stochastic_model.n
    exact amg

let test_dc_matches_galerkin () =
  let m = model () in
  let n = m.Opera.Stochastic_model.n in
  let size = Polychaos.Basis.size m.Opera.Stochastic_model.basis in
  let direct = Opera.Galerkin.solve_dc m in
  let st, stats = St.solve_dc ~options:(st_options m) m in
  Alcotest.(check int) "one shared mean factorization" 1 stats.St.factorizations;
  Alcotest.(check int) "N+1 points solved" size stats.St.points;
  for node = 0 to n - 1 do
    Helpers.check_float ~eps:1e-8 "DC means agree" direct.(node) st.(node)
  done;
  (* Higher blocks carry the variance; compare per-node sigma. *)
  let sigma coefs node =
    let acc = ref 0.0 in
    for k = 1 to size - 1 do
      let a = coefs.((k * n) + node) in
      acc := !acc +. (a *. a *. Polychaos.Basis.norm_sq m.Opera.Stochastic_model.basis k)
    done;
    sqrt !acc
  in
  for node = 0 to n - 1 do
    Helpers.check_float
      ~eps:(1e-9 +. (0.05 *. sigma direct node))
      "DC sigmas agree" (sigma direct node) (sigma st node)
  done

(* --- the st route through Galerkin.solve_transient --------------------- *)

let test_galerkin_dispatch () =
  let m = model () in
  let h = 0.25e-9 and steps = 3 in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.solver = Opera.Galerkin.default_st; domains = 1 } in
  let via_galerkin, stats = Opera.Galerkin.solve_transient ~options m ~h ~steps in
  let direct_st, _ = St.solve_transient ~options:(st_options m) m ~h ~steps in
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:0.0 "dispatcher is the backend, bitwise"
        (Opera.Response.mean_at direct_st ~step ~node)
        (Opera.Response.mean_at via_galerkin ~step ~node)
    done
  done;
  (* stats map onto the backend-agnostic health record *)
  Alcotest.(check bool) "aug_dim reported" true (stats.Opera.Galerkin.aug_dim > 0);
  Alcotest.(check bool) "healthy" true (Linalg.Solve_report.agg_healthy stats.Opera.Galerkin.health);
  match
    Opera.Galerkin.solve_transient
      ~options:{ options with Opera.Galerkin.scheme = Powergrid.Transient.Trapezoidal }
      m ~h ~steps
  with
  | _ -> Alcotest.fail "st must reject non-backward-Euler schemes"
  | exception Invalid_argument _ -> ()

(* --- determinism across domains ---------------------------------------- *)

let test_domain_count_bitwise () =
  let m = model () in
  let h = 0.25e-9 and steps = 4 in
  let solve domains =
    St.solve_transient ~options:{ St.default_options with St.domains } m ~h ~steps
  in
  let r1, _ = solve 1 in
  let r4, _ = solve 4 in
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:0.0 "means bitwise equal across domains"
        (Opera.Response.mean_at r1 ~step ~node)
        (Opera.Response.mean_at r4 ~step ~node);
      Helpers.check_float ~eps:0.0 "stds bitwise equal across domains"
        (Opera.Response.std_at r1 ~step ~node)
        (Opera.Response.std_at r4 ~step ~node)
    done
  done

(* --- codec roundtrip of a per-point factor ------------------------------ *)

let test_point_factor_codec_roundtrip () =
  let m = model () in
  let basis = m.Opera.Stochastic_model.basis in
  let p = St.select_points basis in
  let n = m.Opera.Stochastic_model.n in
  let mt = St.step_matrix m p 1 ~h:0.25e-9 in
  let f = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection mt in
  let e = Util.Codec.encoder () in
  Linalg.Sparse_cholesky.encode f e;
  let f' = Linalg.Sparse_cholesky.decode (Util.Codec.decoder_of_string (Util.Codec.contents e)) in
  let rng = Helpers.rng () in
  let b = Helpers.random_vec rng n in
  let x = Array.copy b and x' = Array.copy b in
  let work = Array.make n 0.0 in
  Linalg.Sparse_cholesky.solve_in_place_ws f ~work x;
  Linalg.Sparse_cholesky.solve_in_place_ws f' ~work x';
  Alcotest.(check bool) "decoded factor solves bitwise identically" true (x = x')

(* --- decoupled special case -------------------------------------------- *)

let test_special_case_equivalence () =
  (* Deterministic matrices, stochastic (truncated-lognormal) excitation:
     the solution is linear in the truncated excitation, hence exactly in
     the basis span — ST interpolation loses nothing. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let n = Powergrid.Circuit.node_count circuit in
  let leaks = Array.init n (fun node -> (node, (node * 2) / n, 4e-6)) in
  let sc = Opera.Special_case.make ~order:2 ~regions:2 ~lambda:0.35 ~leaks ~vdd circuit in
  let probes = [| n / 2 |] in
  let decoupled, _ = Opera.Special_case.solve sc ~h:0.25e-9 ~steps:6 ~probes in
  let st, _ =
    Opera.Special_case.solve_coupled ~solver:Opera.Galerkin.default_st sc ~h:0.25e-9 ~steps:6
      ~probes
  in
  for step = 0 to 6 do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:1e-8 "special-case means"
        (Opera.Response.mean_at decoupled ~step ~node)
        (Opera.Response.mean_at st ~step ~node);
      Helpers.check_float ~eps:1e-8 "special-case stds"
        (Opera.Response.std_at decoupled ~step ~node)
        (Opera.Response.std_at st ~step ~node)
    done
  done

(* --- job parsing and signatures ----------------------------------------- *)

let parse text =
  match Util.Json.parse text with
  | Ok json -> Job.of_json json
  | Error e -> Alcotest.failf "test JSON does not parse: %s" e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_job_parsing () =
  (match parse {|{"solver": "st", "st_candidates": 12, "st_seed": 9}|} with
  | Ok job -> (
      Alcotest.(check string) "solver name" "st" (Job.solver_name job.Job.solver);
      match job.Job.solver with
      | Opera.Galerkin.St { candidates; seed; _ } ->
          Alcotest.(check int) "candidates parsed" 12 candidates;
          Alcotest.(check int64) "seed parsed" 9L seed
      | _ -> Alcotest.fail "expected the St payload")
  | Error e -> Alcotest.failf "st job must parse: %s" e);
  (match parse {|{"solver": "qr"}|} with
  | Ok _ -> Alcotest.fail "unknown solver must be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the vocabulary" true
        (contains e "st" && contains e "matrix-free"));
  match parse {|{"solver": "st", "st_candidates": -3}|} with
  | Ok _ -> Alcotest.fail "negative st_candidates must be rejected"
  | Error e -> Alcotest.(check bool) "error names the field" true (contains e "st_candidates")

let st_job name =
  {
    Job.name;
    source = Job.Generated { nodes = 160 };
    analysis = Job.Transient;
    order = 2;
    h = 125e-12;
    steps = 4;
    solver = Opera.Galerkin.default_st;
    policy = Opera.Galerkin.Warn;
    sigma_scale = 1.0;
    drain_scale = 1.0;
    leak_scale = 1.0;
    probe = None;
  }

let with_st f job =
  match job.Job.solver with
  | Opera.Galerkin.St { tol; max_refine; candidates; seed } ->
      let tol, max_refine, candidates, seed = f (tol, max_refine, candidates, seed) in
      { job with Job.solver = Opera.Galerkin.St { tol; max_refine; candidates; seed } }
  | _ -> assert false

let test_signature_tracks_point_knobs () =
  let a = st_job "a" in
  Alcotest.(check bool)
    "candidates change the operator" true
    (Job.signature a
    <> Job.signature (with_st (fun (tol, mr, _, seed) -> (tol, mr, 64, seed)) a));
  Alcotest.(check bool)
    "seed changes the operator" true
    (Job.signature a <> Job.signature (with_st (fun (tol, mr, c, _) -> (tol, mr, c, 7L)) a));
  Alcotest.(check string)
    "convergence knobs do not" (Job.signature a)
    (Job.signature (with_st (fun (_, _, c, seed) -> (1e-6, 3, c, seed)) a));
  Alcotest.(check bool)
    "st and direct are distinct operators" true
    (Job.signature a <> Job.signature { a with Job.solver = Opera.Galerkin.Direct })

(* --- engine integration -------------------------------------------------- *)

let fresh_dir () =
  let marker = Filename.temp_file "opera_st_engine" "" in
  Sys.remove marker;
  marker ^ ".d"

let records_of results =
  Array.to_list (Array.map (fun r -> Util.Json.render r.Engine.record) results)

let test_engine_warm_runs_cold_factors () =
  let jobs = [| st_job "t"; { (st_job "d") with Job.analysis = Job.Dc } |] in
  let cache_dir = fresh_dir () in
  let run () =
    let config =
      { Engine.default_config with Engine.cache_dir = Some cache_dir; metrics = Util.Metrics.create () }
    in
    Engine.run ~config jobs
  in
  let cold_results, cold = run () in
  (* order 2, dim 2 ⇒ basis size 6: one mean factor + 6 stepping factors *)
  Alcotest.(check int) "cold run: g0 + one factor per point" 7 cold.Engine.factorizations;
  let warm_results, warm = run () in
  Alcotest.(check int) "warm run: zero factorizations" 0 warm.Engine.factorizations;
  Alcotest.(check (list string))
    "warm records byte-identical" (records_of cold_results) (records_of warm_results)

let suite =
  [
    Alcotest.test_case "point selection deterministic" `Quick test_selection_deterministic;
    Alcotest.test_case "vandermonde consistent" `Quick test_vandermonde_consistent;
    Alcotest.test_case "transient st = galerkin" `Quick test_transient_matches_galerkin;
    Alcotest.test_case "netlist st = galerkin" `Quick test_transient_matches_on_netlist;
    Alcotest.test_case "dc st = galerkin" `Quick test_dc_matches_galerkin;
    Alcotest.test_case "non-exact precond = exact" `Quick test_nonexact_precond_matches_exact;
    Alcotest.test_case "galerkin dispatch" `Quick test_galerkin_dispatch;
    Alcotest.test_case "domain-count bitwise" `Quick test_domain_count_bitwise;
    Alcotest.test_case "point factor codec roundtrip" `Quick test_point_factor_codec_roundtrip;
    Alcotest.test_case "special case equivalence" `Quick test_special_case_equivalence;
    Alcotest.test_case "job parsing" `Quick test_job_parsing;
    Alcotest.test_case "signature tracks point knobs" `Quick test_signature_tracks_point_knobs;
    Alcotest.test_case "engine warm st runs" `Quick test_engine_warm_runs_cold_factors;
  ]
