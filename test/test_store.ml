(* Scenario.Store: read-through caching and the never-trust-a-damaged-
   artifact discipline.

   Corruption cases (truncation, bit flip, version bump, wrong kind,
   semantic decode mismatch) must each count as a miss+corrupt, trigger
   a rebuild, and leave the store returning a value identical to the
   cold build. *)

module Store = Scenario.Store
module C = Util.Codec

(* A unique empty directory name per call (Store.create mkdirs it). *)
let fresh_dir () =
  let marker = Filename.temp_file "opera_store_test" "" in
  Sys.remove marker;
  marker ^ ".d"

let payload = Array.init 64 (fun i -> sin (float_of_int i) *. 1e6)

let builds = ref 0

let lookup store =
  Store.find_or_build store ~kind:"test" ~version:1 ~key:"k0"
    ~encode:(fun v e -> C.write_float_array e v)
    ~decode:C.read_float_array
    ~build:(fun () ->
      incr builds;
      Array.copy payload)

let check_stats what store ~hits ~misses ~corrupt =
  let s = Store.stats store in
  Alcotest.(check int) (what ^ ": hits") hits s.Store.hits;
  Alcotest.(check int) (what ^ ": misses") misses s.Store.misses;
  Alcotest.(check int) (what ^ ": corrupt") corrupt s.Store.corrupt

let check_payload what v =
  Alcotest.(check bool)
    (what ^ ": value matches cold build bitwise")
    true
    (Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       payload v)

let test_miss_then_hit () =
  builds := 0;
  let store = Store.create ~metrics:(Util.Metrics.create ()) ~dir:(Some (fresh_dir ())) () in
  check_payload "cold" (lookup store);
  check_payload "warm" (lookup store);
  check_payload "warm again" (lookup store);
  Alcotest.(check int) "built exactly once" 1 !builds;
  check_stats "miss then hits" store ~hits:2 ~misses:1 ~corrupt:0

let test_disabled_always_builds () =
  builds := 0;
  check_payload "disabled" (lookup Store.disabled);
  check_payload "disabled again" (lookup Store.disabled);
  Alcotest.(check int) "no caching without a dir" 2 !builds

let artifact_path store =
  match Store.path store ~kind:"test" ~key:"k0" with
  | Some p -> p
  | None -> Alcotest.fail "enabled store must expose the artifact path"

(* Damage the cached artifact with [mangle], then look it up again: the
   store must detect the damage, rebuild, and return the cold value. *)
let corruption_case what mangle =
  builds := 0;
  let store = Store.create ~metrics:(Util.Metrics.create ()) ~dir:(Some (fresh_dir ())) () in
  check_payload (what ^ ": cold") (lookup store);
  let path = artifact_path store in
  let bytes =
    match C.read_file path with Some b -> b | None -> Alcotest.fail "artifact not written"
  in
  (match mangle bytes with
  | Some damaged -> C.write_file path damaged
  | None -> Sys.remove path);
  check_payload (what ^ ": after damage") (lookup store);
  Alcotest.(check int) (what ^ ": rebuilt") 2 !builds;
  (* and the rebuild must heal the store: next lookup is a clean hit *)
  check_payload (what ^ ": healed") (lookup store);
  Alcotest.(check int) (what ^ ": no third build") 2 !builds;
  Store.stats store

let test_truncated () =
  let s = corruption_case "truncated" (fun b -> Some (String.sub b 0 (String.length b / 2))) in
  Alcotest.(check int) "truncation counts as corrupt" 1 s.Store.corrupt

let test_bit_flip () =
  let s =
    corruption_case "bit flip" (fun b ->
        let bytes = Bytes.of_string b in
        let pos = Bytes.length bytes - 3 in
        Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x01));
        Some (Bytes.to_string bytes))
  in
  Alcotest.(check int) "bit flip counts as corrupt" 1 s.Store.corrupt

let test_wrong_kind () =
  let s =
    corruption_case "wrong kind" (fun _ ->
        Some (C.frame ~kind:"other" ~version:1 (fun e -> C.write_float_array e payload)))
  in
  Alcotest.(check int) "kind mismatch counts as corrupt" 1 s.Store.corrupt

let test_version_mismatch () =
  let s =
    corruption_case "older schema" (fun _ ->
        Some (C.frame ~kind:"test" ~version:0 (fun e -> C.write_float_array e payload)))
  in
  Alcotest.(check int) "schema version counts as corrupt" 1 s.Store.corrupt

let test_semantic_decode_mismatch () =
  (* a frame that validates but whose payload the decoder rejects *)
  let s =
    corruption_case "semantic mismatch" (fun _ ->
        Some (C.frame ~kind:"test" ~version:1 (fun e -> C.write_string e "not an array")))
  in
  Alcotest.(check bool) "decode rejection counts as corrupt" true (s.Store.corrupt >= 1)

let test_zero_length_artifact () =
  (* read_file raises Corrupt on a zero-length file; the store must fold
     that into the usual drop-and-rebuild path. *)
  let s = corruption_case "zero-length" (fun _ -> Some "") in
  Alcotest.(check int) "zero-length counts as corrupt" 1 s.Store.corrupt

let test_deleted_file () =
  let s = corruption_case "deleted artifact" (fun _ -> None) in
  Alcotest.(check int) "plain miss, not corrupt" 0 s.Store.corrupt;
  Alcotest.(check int) "two misses" 2 s.Store.misses

(* A decoder may blow up with something other than Codec.Corrupt — an
   Invalid_argument from a stale schema indexing out of bounds, say.
   The store must treat that exactly like corruption: rebuild, count it,
   heal.  Crashing the whole batch over one stale artifact is the bug
   this guards against. *)
let lookup_decoding_with store decode =
  Store.find_or_build store ~kind:"test" ~version:1 ~key:"k0"
    ~encode:(fun v e -> C.write_float_array e v)
    ~decode
    ~build:(fun () ->
      incr builds;
      Array.copy payload)

let test_decoder_exception_rebuilds () =
  builds := 0;
  let store = Store.create ~metrics:(Util.Metrics.create ()) ~dir:(Some (fresh_dir ())) () in
  check_payload "cold" (lookup store);
  let v = lookup_decoding_with store (fun _ -> invalid_arg "index out of bounds") in
  check_payload "after decoder exception" v;
  Alcotest.(check int) "rebuilt" 2 !builds;
  Alcotest.(check int) "decoder exception counts as corrupt" 1 (Store.stats store).Store.corrupt;
  (* the rebuild rewrote the artifact, so a sane decoder now hits *)
  check_payload "healed" (lookup store);
  Alcotest.(check int) "no third build" 2 !builds

let test_fatal_exceptions_propagate () =
  builds := 0;
  let store = Store.create ~metrics:(Util.Metrics.create ()) ~dir:(Some (fresh_dir ())) () in
  check_payload "cold" (lookup store);
  Alcotest.check_raises "Out_of_memory is never swallowed" Out_of_memory (fun () ->
      ignore (lookup_decoding_with store (fun _ -> raise Out_of_memory)));
  (* and the artifact must survive — OOM is the machine's problem, not
     evidence the file is damaged *)
  Alcotest.(check bool) "artifact not removed" true (Sys.file_exists (artifact_path store));
  Alcotest.(check int) "not counted as corrupt" 0 (Store.stats store).Store.corrupt

let suite =
  [
    Alcotest.test_case "miss builds once, hits after" `Quick test_miss_then_hit;
    Alcotest.test_case "disabled store always builds" `Quick test_disabled_always_builds;
    Alcotest.test_case "truncated artifact is rebuilt" `Quick test_truncated;
    Alcotest.test_case "bit-flipped artifact is rebuilt" `Quick test_bit_flip;
    Alcotest.test_case "wrong-kind artifact is rebuilt" `Quick test_wrong_kind;
    Alcotest.test_case "version-mismatched artifact is rebuilt" `Quick test_version_mismatch;
    Alcotest.test_case "semantic decode mismatch is rebuilt" `Quick test_semantic_decode_mismatch;
    Alcotest.test_case "zero-length artifact is rebuilt" `Quick test_zero_length_artifact;
    Alcotest.test_case "deleted artifact is a plain miss" `Quick test_deleted_file;
    Alcotest.test_case "decoder exception is rebuilt" `Quick test_decoder_exception_rebuilds;
    Alcotest.test_case "fatal exceptions propagate" `Quick test_fatal_exceptions_propagate;
  ]
