(* Model order reduction (PRIMA-style congruence projection). *)

let build_grid () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  (spec, a)

let excitation_snapshots a n =
  (* Seed the Krylov space with the pad injection plus excitation
     snapshots across one clock cycle. *)
  let snapshot t =
    let u = Array.make n 0.0 in
    Powergrid.Mna.inject_into a t u;
    u
  in
  [| Array.copy a.Powergrid.Mna.u_pad; snapshot 0.2e-9; snapshot 0.3e-9; snapshot 0.7e-9 |]

let test_basis_orthonormal () =
  let _, a = build_grid () in
  let n = a.Powergrid.Mna.n in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let red = Powergrid.Mor.reduce ~g ~c ~inputs:(excitation_snapshots a n) ~blocks:4 in
  let k = Powergrid.Mor.dim red in
  Alcotest.(check bool) (Printf.sprintf "reduced dim %d << %d" k n) true (k < n / 4);
  let vt_v =
    Linalg.Dense.matmul (Linalg.Dense.transpose red.Powergrid.Mor.v) red.Powergrid.Mor.v
  in
  Helpers.check_dense ~eps:1e-8 "V^T V = I" (Linalg.Dense.identity k) vt_v

let test_reduced_matrices_spd () =
  let _, a = build_grid () in
  let n = a.Powergrid.Mna.n in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let red = Powergrid.Mor.reduce ~g ~c ~inputs:(excitation_snapshots a n) ~blocks:3 in
  (* Congruence preserves symmetry and positive definiteness. *)
  Alcotest.(check bool) "Gr symmetric" true (Linalg.Dense.is_symmetric ~tol:1e-9 red.Powergrid.Mor.gr);
  Alcotest.(check bool) "Cr symmetric" true (Linalg.Dense.is_symmetric ~tol:1e-12 red.Powergrid.Mor.cr);
  Alcotest.(check bool) "Gr positive definite" true
    (try
       ignore (Linalg.Cholesky.factor red.Powergrid.Mor.gr);
       true
     with Linalg.Cholesky.Not_positive_definite _ -> false)

let test_dc_moment_matched () =
  (* The zeroth moment (DC solution for any seeded input) is exact. *)
  let _, a = build_grid () in
  let n = a.Powergrid.Mna.n in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let inputs = excitation_snapshots a n in
  let red = Powergrid.Mor.reduce ~g ~c ~inputs ~blocks:3 in
  let u = inputs.(1) in
  let full = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor g) u in
  let zr = Linalg.Lu.solve (Linalg.Lu.factor red.Powergrid.Mor.gr) (Powergrid.Mor.project_input red u) in
  for node = 0 to n - 1 do
    Helpers.check_float
      ~eps:(1e-6 +. (1e-5 *. Float.abs full.(node)))
      (Printf.sprintf "dc at node %d" node)
      full.(node)
      (Powergrid.Mor.lift red zr ~node)
  done

let test_reduced_transient_tracks_full () =
  let spec, a = build_grid () in
  let n = a.Powergrid.Mna.n in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let red = Powergrid.Mor.reduce ~g ~c ~inputs:(excitation_snapshots a n) ~blocks:5 in
  let h = 0.125e-9 and steps = 16 in
  let probe = Powergrid.Grid_gen.center_node spec in
  let full = Array.make (steps + 1) 0.0 in
  let cfg = Powergrid.Transient.default_config ~h ~steps in
  Powergrid.Transient.run_circuit cfg a ~on_step:(fun k _ x -> full.(k) <- x.(probe));
  let reduced = Array.make (steps + 1) 0.0 in
  Powergrid.Mor.transient red ~h ~steps
    ~inject:(fun t u -> Powergrid.Mna.inject_into a t u)
    ~n
    ~on_step:(fun k _ z -> reduced.(k) <- Powergrid.Mor.lift red z ~node:probe);
  for k = 1 to steps do
    Helpers.check_float ~eps:2e-4
      (Printf.sprintf "probe voltage at step %d" k)
      full.(k) reduced.(k)
  done

let suite =
  [
    Alcotest.test_case "basis orthonormal" `Quick test_basis_orthonormal;
    Alcotest.test_case "reduced matrices spd" `Quick test_reduced_matrices_spd;
    Alcotest.test_case "dc moment matched" `Quick test_dc_moment_matched;
    Alcotest.test_case "reduced transient tracks full" `Quick test_reduced_transient_tracks_full;
  ]
