(* RNG, special functions, normal distribution. *)

let test_rng_determinism () =
  let a = Prob.Rng.create ~seed:99L () in
  let b = Prob.Rng.create ~seed:99L () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prob.Rng.uint64 a) (Prob.Rng.uint64 b)
  done

let test_rng_seeds_differ () =
  let a = Prob.Rng.create ~seed:1L () in
  let b = Prob.Rng.create ~seed:2L () in
  Alcotest.(check bool) "different seeds differ" false (Prob.Rng.uint64 a = Prob.Rng.uint64 b)

let test_rng_float_range () =
  let rng = Prob.Rng.create () in
  for _ = 1 to 1000 do
    let x = Prob.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done;
  for _ = 1 to 1000 do
    let x = Prob.Rng.float_range rng 2.0 5.0 in
    Alcotest.(check bool) "in [2,5)" true (x >= 2.0 && x < 5.0)
  done

let test_rng_int () =
  let rng = Prob.Rng.create () in
  let counts = Array.make 7 0 in
  for _ = 1 to 7000 do
    let k = Prob.Rng.int rng 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d roughly uniform" i) true
        (c > 800 && c < 1200))
    counts

let test_rng_gaussian_moments () =
  let rng = Prob.Rng.create ~seed:3L () in
  let n = 200_000 in
  let acc = Prob.Stats.Online.create () in
  for _ = 1 to n do
    Prob.Stats.Online.add acc (Prob.Rng.gaussian rng)
  done;
  Helpers.check_float ~eps:0.01 "mean 0" 0.0 (Prob.Stats.Online.mean acc);
  Helpers.check_float ~eps:0.02 "variance 1" 1.0 (Prob.Stats.Online.variance acc);
  Helpers.check_float ~eps:0.05 "skewness 0" 0.0 (Prob.Stats.Online.skewness acc);
  Helpers.check_float ~eps:0.1 "excess kurtosis 0" 0.0 (Prob.Stats.Online.kurtosis_excess acc)

let test_rng_split_independent () =
  let parent = Prob.Rng.create ~seed:5L () in
  let child = Prob.Rng.split parent in
  let xs = Array.init 2000 (fun _ -> Prob.Rng.float parent) in
  let ys = Array.init 2000 (fun _ -> Prob.Rng.float child) in
  let corr = Prob.Stats.correlation xs ys in
  Alcotest.(check bool) "split streams uncorrelated" true (Float.abs corr < 0.06)

let test_shuffle_is_permutation () =
  let rng = Prob.Rng.create () in
  let a = Array.init 50 (fun i -> i) in
  Prob.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "elements preserved" (Array.init 50 (fun i -> i)) sorted

let test_erf_known_values () =
  (* Reference values from tables. *)
  Helpers.check_float ~eps:2e-7 "erf 0" 0.0 (Prob.Special_functions.erf 0.0);
  Helpers.check_float ~eps:2e-7 "erf 1" 0.8427007929 (Prob.Special_functions.erf 1.0);
  Helpers.check_float ~eps:2e-7 "erf -1" (-0.8427007929) (Prob.Special_functions.erf (-1.0));
  Helpers.check_float ~eps:2e-7 "erf 2" 0.9953222650 (Prob.Special_functions.erf 2.0);
  Helpers.check_float ~eps:2e-7 "erfc 1" 0.1572992070 (Prob.Special_functions.erfc 1.0)

let test_gamma_function () =
  Helpers.check_close ~rtol:1e-10 "gamma 5 = 24" 24.0 (Prob.Special_functions.gamma 5.0);
  Helpers.check_close ~rtol:1e-10 "gamma 0.5 = sqrt pi" (sqrt Float.pi)
    (Prob.Special_functions.gamma 0.5);
  Helpers.check_close ~rtol:1e-9 "log_gamma 10" (log (Prob.Special_functions.factorial 9))
    (Prob.Special_functions.log_gamma 10.0)

let test_factorial_binomial () =
  Helpers.check_float "0!" 1.0 (Prob.Special_functions.factorial 0);
  Helpers.check_float "5!" 120.0 (Prob.Special_functions.factorial 5);
  Helpers.check_float "C(6,2)" 15.0 (Prob.Special_functions.binomial 6 2);
  Helpers.check_float "C(n,k) out of range" 0.0 (Prob.Special_functions.binomial 3 5)

let test_normal_cdf_pdf () =
  Helpers.check_float ~eps:1e-7 "cdf 0" 0.5 (Prob.Normal.cdf 0.0);
  Helpers.check_float ~eps:1e-7 "cdf 1.96" 0.9750021049 (Prob.Normal.cdf 1.96);
  Helpers.check_float ~eps:1e-7 "pdf 0" 0.3989422804 (Prob.Normal.pdf 0.0);
  Helpers.check_float ~eps:1e-9 "pdf symmetric" (Prob.Normal.pdf 1.3) (Prob.Normal.pdf (-1.3))

let test_normal_ppf_roundtrip () =
  List.iter
    (fun p ->
      Helpers.check_float ~eps:1e-6
        (Printf.sprintf "cdf (ppf %g) = %g" p p)
        p
        (Prob.Normal.cdf (Prob.Normal.ppf p)))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let prop_ppf_monotone =
  Helpers.qcheck_case "ppf is monotone" QCheck.(pair (float_range 0.01 0.49) (float_range 0.51 0.99))
    (fun (p, q) -> Prob.Normal.ppf p < Prob.Normal.ppf q)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng float ranges" `Quick test_rng_float_range;
    Alcotest.test_case "rng int uniform" `Quick test_rng_int;
    Alcotest.test_case "rng gaussian moments" `Slow test_rng_gaussian_moments;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "erf known values" `Quick test_erf_known_values;
    Alcotest.test_case "gamma function" `Quick test_gamma_function;
    Alcotest.test_case "factorial/binomial" `Quick test_factorial_binomial;
    Alcotest.test_case "normal cdf/pdf" `Quick test_normal_cdf_pdf;
    Alcotest.test_case "normal ppf roundtrip" `Quick test_normal_ppf_roundtrip;
    prop_ppf_monotone;
  ]
