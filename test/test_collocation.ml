(* Non-intrusive collocation vs the intrusive Galerkin solver. *)

let vdd = 1.2

let test_collocation_matches_galerkin () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let h = 0.25e-9 and steps = 6 in
  let galerkin, _ = Opera.Galerkin.solve_transient m ~h ~steps in
  let colloc, runs = Opera.Collocation.solve_transient m ~h ~steps in
  Alcotest.(check int) "tensor points = (p+1)^dim" 9 runs;
  let n = m.Opera.Stochastic_model.n in
  for step = 0 to steps do
    for node = 0 to n - 1 do
      Helpers.check_float ~eps:1e-7 "means agree"
        (Opera.Response.mean_at galerkin ~step ~node)
        (Opera.Response.mean_at colloc ~step ~node);
      Helpers.check_float
        ~eps:(1e-7 +. (0.02 *. Opera.Response.variance_at galerkin ~step ~node))
        "variances agree"
        (Opera.Response.variance_at galerkin ~step ~node)
        (Opera.Response.variance_at colloc ~step ~node)
    done
  done

let test_collocation_probe_pce () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let probe = Powergrid.Grid_gen.center_node spec in
  let colloc, _ =
    Opera.Collocation.solve_transient ~probes:[| probe |] m ~h:0.25e-9 ~steps:4
  in
  let pce = Opera.Response.pce_at colloc ~node:probe ~step:1 in
  Alcotest.(check bool) "finite coefficients" true
    (Array.for_all Float.is_finite pce.Polychaos.Pce.coefs)

let test_more_points_do_not_change_linear_model () =
  (* The model is linear in xi, so any rule with points >= 2 integrates the
     degree-(1 + order) products exactly up to roundoff... points = order+2
     must reproduce points = order+1. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let r1, _ = Opera.Collocation.solve_transient ~points:3 m ~h:0.25e-9 ~steps:3 in
  let r2, _ = Opera.Collocation.solve_transient ~points:5 m ~h:0.25e-9 ~steps:3 in
  let n = m.Opera.Stochastic_model.n in
  for node = 0 to n - 1 do
    Helpers.check_float ~eps:1e-9 "mean stable in points"
      (Opera.Response.mean_at r1 ~step:3 ~node)
      (Opera.Response.mean_at r2 ~step:3 ~node)
  done

let suite =
  [
    Alcotest.test_case "collocation = galerkin" `Quick test_collocation_matches_galerkin;
    Alcotest.test_case "collocation probe pce" `Quick test_collocation_probe_pce;
    Alcotest.test_case "points stability" `Quick test_more_points_do_not_change_linear_model;
  ]
