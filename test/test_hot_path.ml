(* The transient hot path: level-scheduled triangular solves must be
   bitwise identical to the sequential sweeps, warm-started PCG stepping
   must agree with cold starts while spending strictly fewer iterations,
   the in-place CG variant must reproduce the allocating one
   operation-for-operation, and the persistent pool must be reused
   across dispatches and survive exceptions. *)

let exact_vec what expected actual =
  (* Structural equality on float arrays: the level-scheduled contract
     is bitwise identity, not closeness. *)
  Alcotest.(check bool) (what ^ " (bitwise equal)") true (expected = actual) (* opera-lint: exact *)

(* Restore the pool to its hardware default no matter how a test body
   exits; forced caps must not leak into unrelated suites. *)
let with_pool_cap cap f =
  Util.Parallel.set_pool_cap cap;
  Fun.protect ~finally:(fun () -> Util.Parallel.set_pool_cap None) f

(* --- level-scheduled triangular solves ------------------------------- *)

let solve_with f ~domains b =
  let work = Array.make (Linalg.Sparse_cholesky.dim f) 0.0 in
  let x = Array.copy b in
  Linalg.Sparse_cholesky.solve_in_place_ws f ~domains ~work x;
  x

let check_level_solve_matches ~name a =
  let rng = Helpers.rng () in
  let n, _ = Linalg.Sparse.dims a in
  List.iter
    (fun ordering ->
      let f = Linalg.Sparse_cholesky.factor ~ordering a in
      let b = Helpers.random_vec rng n in
      let x_seq = solve_with f ~domains:1 b in
      List.iter
        (fun domains ->
          exact_vec
            (Printf.sprintf "%s: domains=%d matches sequential" name domains)
            x_seq
            (solve_with f ~domains b))
        [ 2; 4 ];
      (* sanity: it actually solves the system *)
      let r = Linalg.Vec.sub (Linalg.Sparse.mul_vec a x_seq) b in
      Alcotest.(check bool) (name ^ ": residual small") true
        (Linalg.Vec.norm2 r /. Linalg.Vec.norm2 b < 1e-9))
    [ Linalg.Ordering.Natural; Linalg.Ordering.Min_degree; Linalg.Ordering.Nested_dissection ]

let test_level_solve_bitwise () =
  let rng = Helpers.rng () in
  (* Small and irregular: exercises the pure level path. *)
  check_level_solve_matches ~name:"random-60" (Helpers.random_sparse_spd rng 60 ~extra_edges:90);
  (* Mesh-like and big enough that fill-reducing orders leave a long
     narrow forward suffix, exercising the serial-tail hybrid. *)
  let k = 18 in
  let n = k * k in
  let b = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      let here = (r * k) + c in
      Linalg.Sparse_builder.add b here here 0.05;
      if c + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + 1)) 1.0;
      if r + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + k)) 1.0
    done
  done;
  check_level_solve_matches ~name:"mesh-324" (Linalg.Sparse_builder.to_csc b)

let test_level_solve_with_forced_workers () =
  (* Same bitwise contract, but with real worker domains claiming the
     chunks rather than the inline single-core shortcut. *)
  with_pool_cap (Some 2) (fun () ->
      let rng = Helpers.rng () in
      check_level_solve_matches ~name:"forced-workers"
        (Helpers.random_sparse_spd rng 120 ~extra_edges:240))

let test_level_solve_survives_codec_roundtrip () =
  (* decode rebuilds the level schedule from the CSC arrays; the rebuilt
     factor must solve bitwise identically at every domain count. *)
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 80 ~extra_edges:160 in
  let f = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection a in
  let enc = Util.Codec.encoder () in
  Linalg.Sparse_cholesky.encode f enc;
  let f' = Linalg.Sparse_cholesky.decode (Util.Codec.decoder_of_string (Util.Codec.contents enc)) in
  let b = Helpers.random_vec rng 80 in
  exact_vec "decoded factor, sequential" (solve_with f ~domains:1 b) (solve_with f' ~domains:1 b);
  exact_vec "decoded factor, level-scheduled" (solve_with f ~domains:1 b)
    (solve_with f' ~domains:4 b)

(* --- warm-started transient stepping --------------------------------- *)

let transient ~warm_start =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let model =
    Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default
      ~vdd:spec.Powergrid.Grid_spec.vdd circuit
  in
  let options =
    {
      Opera.Galerkin.default_options with
      Opera.Galerkin.solver = Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 2000 };
      probes = [| Powergrid.Grid_gen.center_node spec |];
      policy = Opera.Galerkin.Fail;
      warm_start;
    }
  in
  Opera.Galerkin.solve_transient ~options model ~h:125e-12 ~steps:12

let test_warm_start_fewer_iterations () =
  let r_cold, s_cold = transient ~warm_start:false in
  let r_warm, s_warm = transient ~warm_start:true in
  Alcotest.(check bool)
    (Printf.sprintf "warm %d < cold %d pcg iterations" s_warm.Opera.Galerkin.pcg_iterations
       s_cold.Opera.Galerkin.pcg_iterations)
    true
    (s_warm.Opera.Galerkin.pcg_iterations < s_cold.Opera.Galerkin.pcg_iterations);
  (* Same converged answer within solver tolerance: warm starting moves
     only the starting iterate, never the convergence test. *)
  let drift = ref 0.0 in
  Array.iteri
    (fun i m -> drift := Float.max !drift (Float.abs (m -. r_cold.Opera.Response.mean.(i))))
    r_warm.Opera.Response.mean;
  Alcotest.(check bool)
    (Printf.sprintf "mean drift %.3e within tolerance" !drift)
    true (!drift < 1e-6)

(* --- in-place CG ------------------------------------------------------ *)

let test_cg_in_place_bitwise () =
  let rng = Helpers.rng () in
  let n = 50 in
  let a = Helpers.random_sparse_spd rng n ~extra_edges:80 in
  let b = Helpers.random_vec rng n in
  let matvec = Linalg.Sparse.mul_vec a in
  let precond = Linalg.Cg.jacobi a in
  let x0 = Helpers.random_vec rng n in
  let x_ref, rep_ref = Linalg.Cg.solve_report ~precond ~tol:1e-12 ~matvec ~b ~x0 () in
  let ws = Linalg.Cg.workspace_create n in
  let x = Array.copy x0 in
  let rep = Linalg.Cg.solve_report_in_place ~precond ~tol:1e-12 ~ws ~matvec ~b ~x () in
  exact_vec "in-place CG solution" x_ref x;
  Alcotest.(check int) "same iteration count" rep_ref.Linalg.Solve_report.iterations
    rep.Linalg.Solve_report.iterations;
  Alcotest.(check bool) "converged" true rep.Linalg.Solve_report.converged;
  (* Workspace reuse: a second solve through the same scratch is
     unaffected by the first one's leftovers. *)
  let x2 = Array.copy x0 in
  let _ = Linalg.Cg.solve_report_in_place ~precond ~tol:1e-12 ~ws ~matvec ~b ~x:x2 () in
  exact_vec "workspace reuse" x_ref x2

(* --- persistent pool --------------------------------------------------- *)

let test_pool_reuse_and_determinism () =
  with_pool_cap (Some 2) (fun () ->
      let n = 1000 in
      let out = Array.make n 0.0 in
      let body ~chunk:_ ~lo ~hi =
        for i = lo to hi - 1 do
          out.(i) <- out.(i) +. float_of_int i
        done
      in
      (* First dispatch creates the pool... *)
      Util.Parallel.for_chunks ~domains:3 n body;
      Alcotest.(check int) "pool holds 2 workers" 2 (Util.Parallel.pool_workers ());
      let d0 = Util.Parallel.pool_dispatches () in
      (* ...and later dispatches reuse it: the counter grows by exactly
         one per call, with no per-call domain churn to observe. *)
      for _ = 1 to 10 do
        Util.Parallel.for_chunks ~domains:3 n body
      done;
      Alcotest.(check int) "10 more dispatches through the same pool" (d0 + 10)
        (Util.Parallel.pool_dispatches ());
      (* Every index was touched exactly once per dispatch, regardless of
         which domain claimed its chunk. *)
      Array.iteri
        (fun i v ->
          if v <> float_of_int (11 * i) (* opera-lint: exact *) then
            Alcotest.failf "index %d ran %g times, expected 11" i (v /. Float.max 1.0 (float_of_int i)))
        out)

let test_pool_exception_safety () =
  with_pool_cap (Some 2) (fun () ->
      let raised =
        try
          Util.Parallel.for_chunks ~domains:4 8 (fun ~chunk ~lo:_ ~hi:_ ->
              failwith (Printf.sprintf "chunk %d failed" chunk));
          None
        with Failure msg -> Some msg
      in
      (* All chunks raise; the barrier re-raises the lowest-numbered
         chunk's exception deterministically. *)
      Alcotest.(check (option string)) "lowest chunk's exception wins" (Some "chunk 0 failed")
        raised;
      (* The pool survives: the next dispatch runs normally. *)
      let hits = Array.make 4 0 in
      Util.Parallel.for_chunks ~domains:4 4 (fun ~chunk:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d after failure" i) 1 h)
        hits)

let suite =
  [
    Alcotest.test_case "level solve bitwise equals sequential" `Quick test_level_solve_bitwise;
    Alcotest.test_case "level solve with forced worker domains" `Quick
      test_level_solve_with_forced_workers;
    Alcotest.test_case "level solve survives codec roundtrip" `Quick
      test_level_solve_survives_codec_roundtrip;
    Alcotest.test_case "warm start saves pcg iterations" `Quick test_warm_start_fewer_iterations;
    Alcotest.test_case "in-place cg bitwise equals allocating cg" `Quick test_cg_in_place_bitwise;
    Alcotest.test_case "pool reuse is deterministic" `Quick test_pool_reuse_and_determinism;
    Alcotest.test_case "pool survives chunk exceptions" `Quick test_pool_exception_safety;
  ]
