(* Util.Args: the shared subcommand parser.

   One error discipline for every subcommand: unknown flags and
   malformed values are [Failed] (the CLI maps them to exit 2),
   [--help]/[-h] is [Help], leftover tokens come back as positionals. *)

module A = Util.Args

let make_refs () =
  let n = ref 10 and x = ref 1.0 and s = ref None and v = ref false in
  let args =
    [
      A.int [ "--n" ] ~doc:"count" n;
      A.float [ "--x" ] ~doc:"scale" x;
      A.string_opt [ "--out"; "-o" ] ~docv:"FILE" ~doc:"output" s;
      A.flag [ "--verbose" ] ~doc:"chatty" v;
    ]
  in
  (args, n, x, s, v)

let check_outcome = Alcotest.(check bool)

let test_parse_values () =
  let args, n, x, s, v = make_refs () in
  (match A.parse args [ "--n"; "5"; "--x=2.5"; "-o"; "f.json"; "--verbose"; "pos1"; "pos2" ] with
  | A.Parsed ps -> Alcotest.(check (list string)) "positionals" [ "pos1"; "pos2" ] ps
  | _ -> Alcotest.fail "expected Parsed");
  Alcotest.(check int) "--n" 5 !n;
  Alcotest.(check (float 0.0)) "--x=" 2.5 !x;
  Alcotest.(check (option string)) "-o alias" (Some "f.json") !s;
  check_outcome "--verbose" true !v

let test_defaults_survive () =
  let args, n, x, s, v = make_refs () in
  (match A.parse args [] with A.Parsed [] -> () | _ -> Alcotest.fail "expected Parsed []");
  Alcotest.(check int) "default n" 10 !n;
  Alcotest.(check (float 0.0)) "default x" 1.0 !x;
  Alcotest.(check (option string)) "default out" None !s;
  check_outcome "default verbose" false !v

let test_help () =
  let args, _, _, _, _ = make_refs () in
  (match A.parse args [ "--n"; "5"; "--help" ] with
  | A.Help -> ()
  | _ -> Alcotest.fail "--help must yield Help");
  match A.parse args [ "-h" ] with A.Help -> () | _ -> Alcotest.fail "-h must yield Help"

let expect_failed what outcome =
  match outcome with
  | A.Failed _ -> ()
  | A.Parsed _ -> Alcotest.failf "%s: parsed instead of failing" what
  | A.Help -> Alcotest.failf "%s: became Help" what

let test_errors () =
  let args, _, _, _, _ = make_refs () in
  expect_failed "unknown flag" (A.parse args [ "--bogus" ]);
  expect_failed "malformed int" (A.parse args [ "--n"; "five" ]);
  expect_failed "malformed float" (A.parse args [ "--x"; "wide" ]);
  expect_failed "missing value" (A.parse args [ "--n" ]);
  expect_failed "value on a flag" (A.parse args [ "--verbose=yes" ])

(* --flag=value forms, the vocabulary `opera serve --listen=/path.sock`
   leans on: values may themselves contain '=', only long options split,
   and every malformed form stays a Failed (exit 2 at the CLI). *)
let test_eq_forms () =
  let args, n, x, s, _ = make_refs () in
  (match A.parse args [ "--out=/tmp/opera.sock"; "--n=7" ] with
  | A.Parsed [] ->
      Alcotest.(check (option string)) "--out=PATH" (Some "/tmp/opera.sock") !s;
      Alcotest.(check int) "--n=7" 7 !n
  | _ -> Alcotest.fail "expected Parsed");
  (match A.parse args [ "--out=a=b" ] with
  | A.Parsed [] ->
      Alcotest.(check (option string)) "value containing '='" (Some "a=b") !s
  | _ -> Alcotest.fail "expected Parsed");
  (match A.parse args [ "--x=2.5e-3" ] with
  | A.Parsed [] -> Alcotest.(check (float 0.0)) "--x=2.5e-3" 2.5e-3 !x
  | _ -> Alcotest.fail "expected Parsed");
  expect_failed "empty int value" (A.parse args [ "--n=" ]);
  expect_failed "malformed int value" (A.parse args [ "--n=five" ]);
  expect_failed "empty float value" (A.parse args [ "--x=" ]);
  expect_failed "= on an unknown flag" (A.parse args [ "--bogus=1" ]);
  expect_failed "= on a boolean flag" (A.parse args [ "--verbose=" ]);
  (* short options never split: "-o=f" is the unknown name "-o=f" *)
  expect_failed "short option with =" (A.parse args [ "-o=f.json" ])

let test_enum_and_double_dash () =
  let e = ref 0 in
  let args = [ A.enum [ "--mode" ] ~doc:"mode" [ ("one", 1); ("two", 2) ] e ] in
  (match A.parse args [ "--mode"; "TWO" ] with
  | A.Parsed [] -> Alcotest.(check int) "case-insensitive enum" 2 !e
  | _ -> Alcotest.fail "enum parse failed");
  expect_failed "bad enum" (A.parse args [ "--mode"; "three" ]);
  match A.parse args [ "--"; "--mode" ] with
  | A.Parsed ps -> Alcotest.(check (list string)) "-- ends options" [ "--mode" ] ps
  | _ -> Alcotest.fail "-- handling"

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_usage_text () =
  let args, _, _, _, _ = make_refs () in
  let u = A.usage ~prog:"opera test" ~positional:"JOBS.json" ~summary:"A test." args in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "usage mentions %s" needle) true (contains u needle))
    [ "opera test"; "JOBS.json"; "--n"; "--out"; "--help" ]

let suite =
  [
    Alcotest.test_case "values, =, aliases, positionals" `Quick test_parse_values;
    Alcotest.test_case "defaults survive empty argv" `Quick test_defaults_survive;
    Alcotest.test_case "--help/-h" `Quick test_help;
    Alcotest.test_case "unknown/malformed -> Failed" `Quick test_errors;
    Alcotest.test_case "--flag=value forms" `Quick test_eq_forms;
    Alcotest.test_case "enum and --" `Quick test_enum_and_double_dash;
    Alcotest.test_case "usage text" `Quick test_usage_text;
  ]
