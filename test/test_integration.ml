(* End-to-end reproduction checks on a small grid: the Table-1 claims in
   miniature. *)

let outcome =
  lazy
    (let spec = Powergrid.Grid_spec.default in
     let vm = Opera.Varmodel.paper_default in
     let config =
       { Opera.Driver.default_config with Opera.Driver.mc_samples = 200; steps = 16 }
     in
     Opera.Driver.run_grid ~label:"integration" config spec vm)

let test_mean_errors_small () =
  let o = Lazy.force outcome in
  let r = o.Opera.Driver.report in
  (* Paper Table 1: avg error in mu between 0.0137% and 0.2%. *)
  Alcotest.(check bool)
    (Printf.sprintf "avg mu error %.4f%% < 0.5%%" r.Opera.Compare.avg_err_mean_pct)
    true
    (r.Opera.Compare.avg_err_mean_pct < 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "max mu error %.4f%% < 2%%" r.Opera.Compare.max_err_mean_pct)
    true
    (r.Opera.Compare.max_err_mean_pct < 2.0)

let test_sigma_errors_moderate () =
  let o = Lazy.force outcome in
  let r = o.Opera.Driver.report in
  (* Paper: avg sigma error 1.5-6.7%; with 200 MC samples the sampling noise
     itself is ~5-10%, so accept a loose band. *)
  Alcotest.(check bool)
    (Printf.sprintf "avg sigma error %.2f%% < 15%%" r.Opera.Compare.avg_err_std_pct)
    true
    (r.Opera.Compare.avg_err_std_pct < 15.0)

let test_three_sigma_band () =
  let o = Lazy.force outcome in
  let r = o.Opera.Driver.report in
  (* Paper: +-3sigma about +-30..46% of the nominal drop. *)
  Alcotest.(check bool)
    (Printf.sprintf "+-3sigma %.1f%% within [15%%, 60%%]"
       r.Opera.Compare.three_sigma_pct_of_nominal_drop)
    true
    (r.Opera.Compare.three_sigma_pct_of_nominal_drop > 15.0
    && r.Opera.Compare.three_sigma_pct_of_nominal_drop < 60.0)

let test_mu_approx_mu0 () =
  let o = Lazy.force outcome in
  let r = o.Opera.Driver.report in
  (* Paper: mu - mu0 negligible as % of VDD. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean shift %.4f%% VDD < 0.05%%" r.Opera.Compare.mean_shift_pct_vdd)
    true
    (r.Opera.Compare.mean_shift_pct_vdd < 0.05)

let test_opera_faster_than_mc () =
  let o = Lazy.force outcome in
  let r = o.Opera.Driver.report in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.1fx > 1 at 200 samples" r.Opera.Compare.speedup)
    true
    (r.Opera.Compare.speedup > 1.0)

let test_probe_histogram_matches_mc () =
  (* Figures 1-2: the OPERA-sampled voltage distribution at the probe node
     tracks the MC histogram. *)
  let o = Lazy.force outcome in
  let response = o.Opera.Driver.response in
  let mc = o.Opera.Driver.mc in
  let node = response.Opera.Response.probes.(0) in
  (* Pick the step with the largest mean drop at the probe. *)
  let step =
    let best = ref 1 and best_drop = ref 0.0 in
    for s = 1 to response.Opera.Response.steps do
      let d = 1.2 -. Opera.Response.mean_at response ~step:s ~node in
      if d > !best_drop then begin
        best_drop := d;
        best := s
      end
    done;
    !best
  in
  let mc_samples = mc.Opera.Monte_carlo.probe_values.(0).(step) in
  let rng = Prob.Rng.create ~seed:123L () in
  let opera_samples =
    Array.init 4000 (fun _ -> Opera.Response.sample_voltage response ~node ~step rng)
  in
  let lo = Float.min (Linalg.Vec.min mc_samples) (Linalg.Vec.min opera_samples) in
  let hi =
    Float.max (Linalg.Vec.max mc_samples) (Linalg.Vec.max opera_samples) +. 1e-9
  in
  let build xs =
    let h = Prob.Histogram.create ~lo ~hi ~bins:12 in
    Prob.Histogram.add_all h xs;
    h
  in
  let h_mc = build mc_samples and h_op = build opera_samples in
  let gap = Prob.Histogram.max_percentage_gap h_mc h_op in
  Alcotest.(check bool) (Printf.sprintf "histogram gap %.1f%% < 10%%" gap) true (gap < 10.0);
  (* KS test should not reject at a strict level. *)
  let p = Prob.Ks.p_value mc_samples opera_samples in
  Alcotest.(check bool) (Printf.sprintf "KS p-value %.4f > 1e-4" p) true (p > 1e-4)

let test_nominal_matches_deterministic_transient () =
  let o = Lazy.force outcome in
  let model = o.Opera.Driver.model in
  let nominal = o.Opera.Driver.nominal in
  (* Spot-check against an independent deterministic run. *)
  let a = model.Opera.Stochastic_model.mna in
  let cfg = Powergrid.Transient.default_config ~h:0.125e-9 ~steps:16 in
  let n = model.Opera.Stochastic_model.n in
  let last = Array.make n 0.0 in
  Powergrid.Transient.run_circuit cfg a ~on_step:(fun _ _ x -> Array.blit x 0 last 0 n);
  let from_driver = Array.sub nominal (16 * n) n in
  Alcotest.(check bool) "nominal trajectory consistent" true
    (Linalg.Vec.approx_equal ~tol:1e-9 last from_driver)

let suite =
  [
    Alcotest.test_case "mean errors small" `Slow test_mean_errors_small;
    Alcotest.test_case "sigma errors moderate" `Slow test_sigma_errors_moderate;
    Alcotest.test_case "3-sigma band (paper ~35%)" `Slow test_three_sigma_band;
    Alcotest.test_case "mu = mu0 (paper claim)" `Slow test_mu_approx_mu0;
    Alcotest.test_case "opera faster than mc" `Slow test_opera_faster_than_mc;
    Alcotest.test_case "probe histogram (figs 1-2)" `Slow test_probe_histogram_matches_mc;
    Alcotest.test_case "nominal consistency" `Slow test_nominal_matches_deterministic_transient;
  ]
