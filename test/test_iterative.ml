(* CG / PCG / BiCGSTAB and the preconditioners. *)

let make_system ?(n = 50) ?(extra = 80) () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng n ~extra_edges:extra in
  let x_true = Helpers.random_vec rng n in
  let b = Linalg.Sparse.mul_vec a x_true in
  (a, x_true, b)

let test_cg_plain () =
  let a, x_true, b = make_system () in
  let x, stats = Linalg.Cg.solve_sparse ~tol:1e-12 a b in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  Alcotest.(check bool) "accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-8)

let test_cg_jacobi () =
  let a, x_true, b = make_system () in
  let x, stats = Linalg.Cg.solve_sparse ~precond:(Linalg.Cg.jacobi a) ~tol:1e-12 a b in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  Alcotest.(check bool) "accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-8)

let test_cg_ic0 () =
  let a, x_true, b = make_system () in
  let _, plain = Linalg.Cg.solve_sparse ~tol:1e-12 a b in
  let x, stats = Linalg.Cg.solve_sparse ~precond:(Linalg.Cg.ic0 a) ~tol:1e-12 a b in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  Alcotest.(check bool) "accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-8);
  Alcotest.(check bool)
    (Printf.sprintf "ic0 iterations %d <= plain %d" stats.Linalg.Cg.iterations
       plain.Linalg.Cg.iterations)
    true
    (stats.Linalg.Cg.iterations <= plain.Linalg.Cg.iterations)

let test_cg_iteration_budget () =
  let a, _, b = make_system () in
  let _, stats = Linalg.Cg.solve_sparse ~max_iter:2 ~tol:1e-14 a b in
  Alcotest.(check bool) "budget respected" true (stats.Linalg.Cg.iterations <= 2);
  Alcotest.(check bool) "not converged in 2" false stats.Linalg.Cg.converged

let test_cg_zero_rhs () =
  let a, _, _ = make_system ~n:10 ~extra:5 () in
  let x, stats = Linalg.Cg.solve_sparse a (Array.make 10 0.0) in
  Alcotest.(check bool) "trivially converged" true stats.Linalg.Cg.converged;
  Helpers.check_float "zero solution" 0.0 (Linalg.Vec.norm2 x)

let test_bicgstab_spd () =
  let a, x_true, b = make_system () in
  let x, stats = Linalg.Bicgstab.solve_sparse ~tol:1e-12 a b in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  Alcotest.(check bool) "accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-7)

let test_bicgstab_nonsymmetric () =
  let rng = Helpers.rng () in
  let n = 40 in
  let base = Helpers.random_sparse_spd rng n ~extra_edges:60 in
  let noise =
    Linalg.Sparse.of_triplets ~nrows:n ~ncols:n
      (List.init 30 (fun _ ->
           (Prob.Rng.int rng n, Prob.Rng.int rng n, Prob.Rng.float_range rng (-0.2) 0.2)))
  in
  let a = Linalg.Sparse.add base noise in
  let x_true = Helpers.random_vec rng n in
  let b = Linalg.Sparse.mul_vec a x_true in
  let x, stats =
    Linalg.Bicgstab.solve_sparse ~precond:(Linalg.Cg.jacobi a) ~tol:1e-12 a b
  in
  Alcotest.(check bool) "converged" true stats.Linalg.Cg.converged;
  Alcotest.(check bool) "accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-6)

let test_jacobi_rejects_zero_diag () =
  let a = Linalg.Sparse.of_triplets ~nrows:2 ~ncols:2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Alcotest.(check bool) "zero diagonal rejected" true
    (try
       let (_ : Linalg.Cg.preconditioner) = Linalg.Cg.jacobi a in
       false
     with Invalid_argument _ -> true)

let prop_cg_converges =
  Helpers.qcheck_case ~count:20 "cg converges on random spd systems"
    QCheck.(int_range 5 40)
    (fun n ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng n ~extra_edges:(2 * n) in
      let x_true = Helpers.random_vec rng n in
      let b = Linalg.Sparse.mul_vec a x_true in
      let x, stats = Linalg.Cg.solve_sparse ~tol:1e-12 a b in
      stats.Linalg.Cg.converged && Linalg.Vec.rel_error x ~reference:x_true < 1e-7)

let suite =
  [
    Alcotest.test_case "cg plain" `Quick test_cg_plain;
    Alcotest.test_case "cg jacobi" `Quick test_cg_jacobi;
    Alcotest.test_case "cg ic0" `Quick test_cg_ic0;
    Alcotest.test_case "cg iteration budget" `Quick test_cg_iteration_budget;
    Alcotest.test_case "cg zero rhs" `Quick test_cg_zero_rhs;
    Alcotest.test_case "bicgstab on spd" `Quick test_bicgstab_spd;
    Alcotest.test_case "bicgstab non-symmetric" `Quick test_bicgstab_nonsymmetric;
    Alcotest.test_case "jacobi rejects zero diag" `Quick test_jacobi_rejects_zero_diag;
    prop_cg_converges;
  ]
