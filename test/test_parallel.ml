(* OPERA_DOMAINS parsing and the chunking arithmetic behind the
   fork/join helpers. *)

let domains = Alcotest.(result int string)

let ok what s expected =
  match Util.Parallel.parse_domains s with
  | Ok d -> Alcotest.(check int) what expected d
  | Error e -> Alcotest.failf "%s: unexpectedly rejected %S (%s)" what s e

let rejected what s =
  match Util.Parallel.parse_domains s with
  | Ok d -> Alcotest.failf "%s: %S unexpectedly accepted as %d" what s d
  | Error e -> Alcotest.(check bool) (what ^ ": error message nonempty") true (String.length e > 0)

let test_parse_valid () =
  ok "plain" "4" 4;
  ok "one" "1" 1;
  ok "whitespace is trimmed" " 8 " 8;
  ok "large" "128" 128

let test_parse_invalid () =
  rejected "zero" "0";
  rejected "negative" "-3";
  rejected "non-numeric" "abc";
  rejected "empty" "";
  rejected "trailing junk" "4x";
  rejected "float" "2.5"

let test_result_type_in_use () =
  (* parse_domains is the pure face of the env-var validation; keep its
     error channel stable for callers that report it. *)
  Alcotest.check domains "ok value" (Ok 4) (Util.Parallel.parse_domains "4");
  match Util.Parallel.parse_domains "0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "0 domains must be rejected"

let test_resolve_prefers_explicit () =
  Alcotest.(check int) "explicit positive wins" 3 (Util.Parallel.resolve 3);
  Alcotest.(check bool) "0 defers to the environment (>= 1)" true (Util.Parallel.resolve 0 >= 1)

let test_chunk_bounds_cover () =
  let n = 17 and chunks = 5 in
  let seen = Array.make n 0 in
  for c = 0 to chunks - 1 do
    let lo, hi = Util.Parallel.chunk_bounds ~n ~chunks c in
    Alcotest.(check bool) "ordered" true (lo <= hi);
    for i = lo to hi - 1 do
      seen.(i) <- seen.(i) + 1
    done
  done;
  Array.iteri
    (fun i count -> Alcotest.(check int) (Printf.sprintf "index %d covered once" i) 1 count)
    seen

let suite =
  [
    Alcotest.test_case "parse_domains accepts positive integers" `Quick test_parse_valid;
    Alcotest.test_case "parse_domains rejects invalid values" `Quick test_parse_invalid;
    Alcotest.test_case "parse_domains result shape" `Quick test_result_type_in_use;
    Alcotest.test_case "resolve prefers an explicit count" `Quick test_resolve_prefers_explicit;
    Alcotest.test_case "chunk_bounds partition the range" `Quick test_chunk_bounds_cover;
  ]
