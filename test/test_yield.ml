(* Yield estimation and CSV export. *)

let vdd = 1.2

let gaussian_response ~mu ~sigma =
  (* Single node, one step: drop = vdd - mu + sigma * xi0. *)
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:2 ~order:2 in
  let r = Opera.Response.create ~basis ~n:1 ~steps:1 ~h:1e-9 ~vdd ~probes:[| 0 |] in
  let coefs = Array.make 6 0.0 in
  coefs.(0) <- mu;
  coefs.(1) <- sigma;
  Opera.Response.record_step r ~step:0 ~coefs;
  Opera.Response.record_step r ~step:1 ~coefs;
  r

let test_gaussian_failure_probability () =
  let r = gaussian_response ~mu:1.15 ~sigma:0.01 in
  (* drop ~ N(0.05, 0.01^2); P(drop > 0.05) = 0.5 *)
  Helpers.check_float ~eps:1e-6 "at the mean" 0.5
    (Opera.Yield.failure_probability_gaussian r ~node:0 ~step:1 ~budget:0.05);
  (* one sigma above: 1 - Phi(1) *)
  Helpers.check_float ~eps:1e-7 "one sigma" (1.0 -. Prob.Normal.cdf 1.0)
    (Opera.Yield.failure_probability_gaussian r ~node:0 ~step:1 ~budget:0.06);
  (* generous budget -> ~0 *)
  Alcotest.(check bool) "generous budget" true
    (Opera.Yield.failure_probability_gaussian r ~node:0 ~step:1 ~budget:0.2 < 1e-10)

let test_sampled_matches_gaussian () =
  let r = gaussian_response ~mu:1.15 ~sigma:0.01 in
  let rng = Prob.Rng.create ~seed:5L () in
  let sampled =
    Opera.Yield.failure_probability_sampled r ~node:0 ~step:1 ~budget:0.06 ~samples:40_000 rng
  in
  Helpers.check_float ~eps:0.01 "sampled tail" (1.0 -. Prob.Normal.cdf 1.0) sampled

let test_worst_case_drop () =
  let r = gaussian_response ~mu:1.15 ~sigma:0.01 in
  Helpers.check_float ~eps:1e-6 "median" 0.05
    (Opera.Yield.worst_case_drop r ~node:0 ~step:1 ~quantile:0.5);
  let q999 = Opera.Yield.worst_case_drop r ~node:0 ~step:1 ~quantile:0.999 in
  Alcotest.(check bool) "99.9% above 3 sigma" true (q999 > 0.05 +. (3.0 *. 0.01))

let test_union_bound () =
  let r = gaussian_response ~mu:1.15 ~sigma:0.01 in
  let p, node = Opera.Yield.grid_failure_probability_gaussian r ~step:1 ~budget:0.05 in
  Alcotest.(check int) "dominating node" 0 node;
  Helpers.check_float ~eps:1e-6 "single-node union" 0.5 p

let test_probe_yield () =
  let r = gaussian_response ~mu:1.15 ~sigma:0.01 in
  let rng = Prob.Rng.create ~seed:9L () in
  (* Budget at mean + 2 sigma: yield ~ Phi(2). *)
  let y = Opera.Yield.sampled_probe_yield r ~budget:0.07 ~samples:40_000 rng in
  Helpers.check_float ~eps:0.01 "yield" (Prob.Normal.cdf 2.0) y

let test_yield_on_real_grid () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let m = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let probe = Powergrid.Grid_gen.center_node spec in
  let options = { Opera.Galerkin.default_options with Opera.Galerkin.probes = [| probe |] } in
  let response, _ = Opera.Galerkin.solve_transient ~options m ~h:0.25e-9 ~steps:6 in
  let rng = Prob.Rng.create ~seed:10L () in
  (* A generous budget must give ~100% yield; an impossible one ~0%. *)
  let y_ok = Opera.Yield.sampled_probe_yield response ~budget:(0.5 *. vdd) ~samples:2000 rng in
  Helpers.check_float ~eps:1e-9 "generous budget" 1.0 y_ok;
  let y_bad = Opera.Yield.sampled_probe_yield response ~budget:(-1.0) ~samples:2000 rng in
  Helpers.check_float ~eps:1e-9 "impossible budget" 0.0 y_bad;
  (* Gaussian and sampled estimates agree at a probe for a mild budget. *)
  let step = 1 in
  let mu_drop = vdd -. Opera.Response.mean_at response ~step ~node:probe in
  let sigma = Opera.Response.std_at response ~step ~node:probe in
  if sigma > 1e-9 then begin
    let budget = mu_drop +. sigma in
    let pg = Opera.Yield.failure_probability_gaussian response ~node:probe ~step ~budget in
    let ps =
      Opera.Yield.failure_probability_sampled response ~node:probe ~step ~budget ~samples:20_000
        rng
    in
    Helpers.check_float ~eps:0.03 "gaussian vs sampled on grid" pg ps
  end

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Util.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Util.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Util.Csv.escape "a\"b")

let test_response_csv_export () =
  let r = gaussian_response ~mu:1.1 ~sigma:0.02 in
  let path = Filename.temp_file "opera_yield" ".csv" in
  Opera.Response.export_csv r path;
  let ic = open_in path in
  let header = input_line ic in
  let first = input_line ic in
  let count = ref 2 in
  (try
     while true do
       ignore (input_line ic);
       incr count
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "step,time_s,node,mean_v,sigma_v,skewness" header;
  Alcotest.(check int) "rows: header + 2 steps" 3 !count;
  Alcotest.(check bool) "first row well-formed" true
    (String.length first > 0 && String.split_on_char ',' first |> List.length = 6)

let suite =
  [
    Alcotest.test_case "gaussian failure probability" `Quick test_gaussian_failure_probability;
    Alcotest.test_case "sampled matches gaussian" `Slow test_sampled_matches_gaussian;
    Alcotest.test_case "worst case drop" `Quick test_worst_case_drop;
    Alcotest.test_case "union bound" `Quick test_union_bound;
    Alcotest.test_case "probe yield" `Slow test_probe_yield;
    Alcotest.test_case "yield on real grid" `Slow test_yield_on_real_grid;
    Alcotest.test_case "csv escape" `Quick test_csv_escape;
    Alcotest.test_case "response csv export" `Quick test_response_csv_export;
  ]
