(* Util.Json writer: escaping and parse/render round-trips.

   The batch engine's JSONL determinism rides on this writer, so the
   property tests feed it adversarial strings (every control character,
   arbitrary bytes) and arbitrary documents, and require that parsing
   the rendered text reproduces the value exactly. *)

module J = Util.Json

let test_escape_control_chars () =
  (* every byte below 0x20 must come back through parse *)
  for c = 0 to 0x1F do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    let rendered = J.render (J.Str s) in
    (match J.parse rendered with
    | Ok (J.Str s') -> Alcotest.(check string) (Printf.sprintf "ctrl 0x%02x" c) s s'
    | Ok _ -> Alcotest.failf "ctrl 0x%02x: parsed to a non-string" c
    | Error e -> Alcotest.failf "ctrl 0x%02x: %s (rendered %S)" c e rendered);
    (* and the rendered form itself must contain no raw control bytes *)
    String.iter
      (fun ch ->
        if Char.code ch < 0x20 then
          Alcotest.failf "ctrl 0x%02x: raw control byte in %S" c rendered)
      rendered
  done

let test_escape_specials () =
  Alcotest.(check string) "quote" "\"a\\\"b\"" (J.render (J.Str "a\"b"));
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (J.render (J.Str "a\\b"));
  Alcotest.(check string) "newline" "\"a\\nb\"" (J.render (J.Str "a\nb"));
  Alcotest.(check string) "tab" "\"a\\tb\"" (J.render (J.Str "a\tb"))

let test_number_rendering () =
  Alcotest.(check string) "integral" "42" (J.number_to_string 42.0);
  Alcotest.(check string) "negative integral" "-7" (J.number_to_string (-7.0));
  Alcotest.(check string) "nan is null" "null" (J.number_to_string Float.nan);
  Alcotest.(check string) "inf is null" "null" (J.number_to_string Float.infinity);
  (* 17 significant digits: exact double round-trip *)
  let v = 0.1 +. 0.2 in
  match J.parse (J.number_to_string v) with
  | Ok (J.Num v') -> Alcotest.(check bool) "exact round-trip" true (v = v' (* opera-lint: exact *))
  | _ -> Alcotest.fail "number did not parse back"

(* Structural equality where numbers compare by bit pattern.  Rendered
   non-finite numbers become null by design, so the generator below only
   produces finite numbers. *)
let rec equal a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Num x, J.Num y -> Int64.bits_of_float x = Int64.bits_of_float y
  | J.Str x, J.Str y -> x = y
  | J.List xs, J.List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | J.Obj xs, J.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k, x) (k', y) -> k = k' && equal x y) xs ys
  | _ -> false

let gen_json =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        let scalar =
          oneof
            [
              return J.Null;
              map (fun b -> J.Bool b) bool;
              map (fun f -> J.Num f) (float_bound_inclusive 1e15);
              map (fun f -> J.Num (-1.0 *. f)) (float_bound_inclusive 1e9);
              map (fun s -> J.Str s) (string_size ~gen:(int_range 0 255 >|= Char.chr) (0 -- 12));
            ]
        in
        if size = 0 then scalar
        else
          oneof
            [
              scalar;
              map (fun xs -> J.List xs) (list_size (0 -- 4) (self (size / 2)));
              map
                (fun kvs -> J.Obj kvs)
                (list_size (0 -- 4)
                   (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) (self (size / 2))));
            ]))

let arbitrary_json = QCheck.make ~print:J.render gen_json

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (render v) = v" ~count:500 arbitrary_json (fun v ->
      match J.parse (J.render v) with
      | Ok v' -> equal v v'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s on %s" e (J.render v))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"arbitrary byte strings survive render/parse" ~count:500
    QCheck.(string_gen QCheck.Gen.(int_range 0 255 >|= Char.chr))
    (fun s ->
      match J.parse (J.render (J.Str s)) with
      | Ok (J.Str s') -> s = s'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "control characters are escaped" `Quick test_escape_control_chars;
    Alcotest.test_case "quote/backslash/common escapes" `Quick test_escape_specials;
    Alcotest.test_case "number rendering" `Quick test_number_rendering;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
  ]
