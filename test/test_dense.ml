let mat rows = Linalg.Dense.of_arrays rows

let test_basic () =
  let m = mat [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (pair int int)) "dims" (2, 2) (Linalg.Dense.dims m);
  Helpers.check_float "get" 3.0 (Linalg.Dense.get m 1 0);
  let m2 = Linalg.Dense.copy m in
  Linalg.Dense.set m2 0 0 9.0;
  Helpers.check_float "copy is deep" 1.0 (Linalg.Dense.get m 0 0);
  Linalg.Dense.add_entry m2 0 0 1.0;
  Helpers.check_float "add_entry" 10.0 (Linalg.Dense.get m2 0 0)

let test_identity_transpose () =
  let i3 = Linalg.Dense.identity 3 in
  Helpers.check_dense "identity transpose" i3 (Linalg.Dense.transpose i3);
  let m = mat [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let mt = Linalg.Dense.transpose m in
  Alcotest.(check (pair int int)) "transpose dims" (3, 2) (Linalg.Dense.dims mt);
  Helpers.check_float "transpose entry" 6.0 (Linalg.Dense.get mt 2 1)

let test_matmul () =
  let a = mat [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = mat [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  Helpers.check_dense "matmul"
    (mat [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |])
    (Linalg.Dense.matmul a b);
  Helpers.check_dense "identity is neutral" a (Linalg.Dense.matmul a (Linalg.Dense.identity 2))

let test_matvec () =
  let a = mat [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Helpers.check_vec "matvec" [| 5.0; 11.0 |] (Linalg.Dense.matvec a [| 1.0; 2.0 |]);
  Helpers.check_vec "matvec_t" [| 7.0; 10.0 |] (Linalg.Dense.matvec_t a [| 1.0; 2.0 |])

let test_rows_cols () =
  let a = mat [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Helpers.check_vec "row" [| 3.0; 4.0 |] (Linalg.Dense.row a 1);
  Helpers.check_vec "col" [| 2.0; 4.0 |] (Linalg.Dense.col a 1)

let test_norms_symmetry () =
  let a = mat [| [| 3.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  Helpers.check_float "frobenius" 5.0 (Linalg.Dense.frobenius_norm a);
  Helpers.check_float "max_abs" 4.0 (Linalg.Dense.max_abs a);
  Alcotest.(check bool) "symmetric" true (Linalg.Dense.is_symmetric a);
  Alcotest.(check bool) "not symmetric" false
    (Linalg.Dense.is_symmetric (mat [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]))

let test_scale_add_sub () =
  let a = mat [| [| 1.0; 2.0 |] |] and b = mat [| [| 3.0; 5.0 |] |] in
  Helpers.check_dense "add" (mat [| [| 4.0; 7.0 |] |]) (Linalg.Dense.add a b);
  Helpers.check_dense "sub" (mat [| [| -2.0; -3.0 |] |]) (Linalg.Dense.sub a b);
  Helpers.check_dense "scale" (mat [| [| 2.0; 4.0 |] |]) (Linalg.Dense.scale 2.0 a)

let prop_matmul_assoc =
  let arb =
    QCheck.(triple (array_of_size (Gen.return 9) (float_range (-2.) 2.))
              (array_of_size (Gen.return 9) (float_range (-2.) 2.))
              (array_of_size (Gen.return 9) (float_range (-2.) 2.)))
  in
  Helpers.qcheck_case ~count:50 "matmul associativity" arb (fun (xa, xb, xc) ->
      let of_flat x = Linalg.Dense.init 3 3 (fun i j -> x.((i * 3) + j)) in
      let a = of_flat xa and b = of_flat xb and c = of_flat xc in
      let left = Linalg.Dense.matmul (Linalg.Dense.matmul a b) c in
      let right = Linalg.Dense.matmul a (Linalg.Dense.matmul b c) in
      Linalg.Dense.approx_equal ~tol:1e-7 left right)

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "identity/transpose" `Quick test_identity_transpose;
    Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "matvec" `Quick test_matvec;
    Alcotest.test_case "rows/cols" `Quick test_rows_cols;
    Alcotest.test_case "norms/symmetry" `Quick test_norms_symmetry;
    Alcotest.test_case "scale/add/sub" `Quick test_scale_add_sub;
    prop_matmul_assoc;
  ]
