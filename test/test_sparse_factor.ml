(* Sparse Cholesky, sparse LU, and the fill-reducing orderings. *)

let orderings = [ ("natural", Linalg.Ordering.Natural); ("rcm", Linalg.Ordering.Rcm);
                  ("mmd", Linalg.Ordering.Min_degree) ]

let test_perm_validity () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 30 ~extra_edges:40 in
  List.iter
    (fun (name, kind) ->
      let p = Linalg.Ordering.compute kind a in
      Alcotest.(check bool) (name ^ " is a permutation") true (Linalg.Perm.is_valid p))
    orderings

let test_perm_ops () =
  let p = [| 2; 0; 1 |] in
  Alcotest.(check bool) "valid" true (Linalg.Perm.is_valid p);
  let q = Linalg.Perm.inverse p in
  Alcotest.(check bool) "inverse valid" true (Linalg.Perm.is_valid q);
  let x = [| 10.0; 20.0; 30.0 |] in
  let y = Linalg.Perm.apply_vec p x in
  Helpers.check_vec "apply" [| 30.0; 10.0; 20.0 |] y;
  Helpers.check_vec "apply then inverse" x (Linalg.Perm.apply_inv_vec p y);
  Alcotest.(check bool) "invalid detected" false (Linalg.Perm.is_valid [| 0; 0; 2 |])

let test_rcm_reduces_bandwidth () =
  (* A path graph labeled adversarially: natural bandwidth is large. *)
  let n = 64 in
  let b = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  (* path 0 - 32 - 1 - 33 - 2 - ... interleaved labels *)
  let label i = if i mod 2 = 0 then i / 2 else (n / 2) + (i / 2) in
  for i = 0 to n - 2 do
    Linalg.Sparse_builder.stamp_conductance b (Some (label i)) (Some (label (i + 1))) 1.0
  done;
  let a = Linalg.Sparse_builder.to_csc b in
  let bandwidth p =
    let pinv = Linalg.Perm.inverse p in
    List.fold_left
      (fun acc (i, j, _) -> Int.max acc (abs (pinv.(i) - pinv.(j))))
      0 (Linalg.Sparse.to_triplets a)
  in
  let bw_nat = bandwidth (Linalg.Perm.identity n) in
  let bw_rcm = bandwidth (Linalg.Ordering.compute Linalg.Ordering.Rcm a) in
  Alcotest.(check bool)
    (Printf.sprintf "rcm bandwidth %d << natural %d" bw_rcm bw_nat)
    true (bw_rcm <= 2 && bw_nat > 10)

let test_min_degree_reduces_fill () =
  (* 2D mesh: min-degree should beat natural ordering on factor size. *)
  let k = 14 in
  let n = k * k in
  let b = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      let here = (r * k) + c in
      Linalg.Sparse_builder.add b here here 0.1;
      if c + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + 1)) 1.0;
      if r + 1 < k then Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + k)) 1.0
    done
  done;
  let a = Linalg.Sparse_builder.to_csc b in
  let nnz kind =
    Linalg.Sparse_cholesky.nnz_l (Linalg.Sparse_cholesky.factor ~ordering:kind a)
  in
  let nat = nnz Linalg.Ordering.Natural and mmd = nnz Linalg.Ordering.Min_degree in
  Alcotest.(check bool)
    (Printf.sprintf "min-degree fill %d < natural fill %d" mmd nat)
    true
    (mmd < nat)

let check_chol_solution ?(ordering = Linalg.Ordering.Min_degree) a =
  let rng = Helpers.rng () in
  let n, _ = Linalg.Sparse.dims a in
  let x_true = Helpers.random_vec rng n in
  let b = Linalg.Sparse.mul_vec a x_true in
  let f = Linalg.Sparse_cholesky.factor ~ordering a in
  let x = Linalg.Sparse_cholesky.solve f b in
  Alcotest.(check bool) "cholesky solution accurate" true
    (Linalg.Vec.rel_error x ~reference:x_true < 1e-9)

let test_sparse_cholesky_all_orderings () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 60 ~extra_edges:120 in
  List.iter (fun (_, kind) -> check_chol_solution ~ordering:kind a) orderings

let test_sparse_cholesky_matches_dense () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 25 ~extra_edges:40 in
  let b = Helpers.random_vec rng 25 in
  let x_sparse = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor a) b in
  let x_dense = Linalg.Cholesky.solve (Linalg.Cholesky.factor (Linalg.Sparse.to_dense a)) b in
  Alcotest.(check bool) "matches dense cholesky" true
    (Linalg.Vec.approx_equal ~tol:1e-8 x_sparse x_dense)

let test_sparse_cholesky_rejects_indefinite () =
  let a =
    Linalg.Sparse.of_triplets ~nrows:2 ~ncols:2
      [ (0, 0, 1.0); (0, 1, 2.0); (1, 0, 2.0); (1, 1, 1.0) ]
  in
  Alcotest.(check bool) "indefinite raises" true
    (try
       ignore (Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Natural a);
       false
     with Linalg.Sparse_cholesky.Not_positive_definite _ -> true)

let test_sparse_cholesky_precomputed_perm () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 40 ~extra_edges:60 in
  let perm = Linalg.Ordering.compute Linalg.Ordering.Min_degree a in
  let b = Helpers.random_vec rng 40 in
  let x1 = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor ~perm a) b in
  let x2 = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor a) b in
  Alcotest.(check bool) "same solution via ?perm" true (Linalg.Vec.approx_equal ~tol:1e-9 x1 x2)

let test_solve_in_place () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 30 ~extra_edges:30 in
  let f = Linalg.Sparse_cholesky.factor a in
  let b = Helpers.random_vec rng 30 in
  let x = Linalg.Sparse_cholesky.solve f b in
  let b2 = Array.copy b in
  Linalg.Sparse_cholesky.solve_in_place f b2;
  Helpers.check_vec ~eps:0.0 "in-place matches" x b2

let test_sparse_lu_random () =
  let rng = Helpers.rng () in
  for _ = 1 to 5 do
    let n = 30 in
    (* General non-symmetric matrix: SPD base plus asymmetric noise. *)
    let base = Helpers.random_sparse_spd rng n ~extra_edges:40 in
    let noise =
      Linalg.Sparse.of_triplets ~nrows:n ~ncols:n
        (List.init 20 (fun _ ->
             (Prob.Rng.int rng n, Prob.Rng.int rng n, Prob.Rng.float_range rng (-0.3) 0.3)))
    in
    let a = Linalg.Sparse.add base noise in
    let x_true = Helpers.random_vec rng n in
    let b = Linalg.Sparse.mul_vec a x_true in
    let f = Linalg.Sparse_lu.factor a in
    let x = Linalg.Sparse_lu.solve f b in
    Alcotest.(check bool) "sparse lu accurate" true
      (Linalg.Vec.rel_error x ~reference:x_true < 1e-8)
  done

let test_sparse_lu_matches_dense () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 20 ~extra_edges:25 in
  let b = Helpers.random_vec rng 20 in
  let x_sparse = Linalg.Sparse_lu.solve (Linalg.Sparse_lu.factor a) b in
  let x_dense = Linalg.Lu.solve (Linalg.Lu.factor (Linalg.Sparse.to_dense a)) b in
  Alcotest.(check bool) "matches dense lu" true
    (Linalg.Vec.approx_equal ~tol:1e-8 x_sparse x_dense)

let test_sparse_lu_needs_pivoting () =
  (* Zero diagonal forces row exchanges. *)
  let a =
    Linalg.Sparse.of_triplets ~nrows:3 ~ncols:3
      [ (0, 1, 1.0); (1, 0, 2.0); (1, 2, 1.0); (2, 1, 1.0); (2, 2, 3.0); (0, 0, 0.0) ]
  in
  let b = [| 1.0; 2.0; 3.0 |] in
  let x = Linalg.Sparse_lu.solve (Linalg.Sparse_lu.factor ~ordering:Linalg.Ordering.Natural a) b in
  let r = Linalg.Vec.sub (Linalg.Sparse.mul_vec a x) b in
  Alcotest.(check bool) "pivoted solve works" true (Linalg.Vec.norm2 r < 1e-10)

let test_sparse_lu_singular () =
  let a = Linalg.Sparse.of_triplets ~nrows:2 ~ncols:2 [ (0, 0, 1.0); (1, 0, 1.0) ] in
  Alcotest.(check bool) "singular raises" true
    (try
       ignore (Linalg.Sparse_lu.factor a);
       false
     with Linalg.Sparse_lu.Singular _ -> true)

let prop_chol_mesh =
  Helpers.qcheck_case ~count:20 "cholesky solves mesh systems" QCheck.(int_range 3 9)
    (fun k ->
      let n = k * k in
      let b = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
      for r = 0 to k - 1 do
        for c = 0 to k - 1 do
          let here = (r * k) + c in
          Linalg.Sparse_builder.add b here here 0.05;
          if c + 1 < k then
            Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + 1)) 1.0;
          if r + 1 < k then
            Linalg.Sparse_builder.stamp_conductance b (Some here) (Some (here + k)) 1.0
        done
      done;
      let a = Linalg.Sparse_builder.to_csc b in
      let rng = Helpers.rng () in
      let x_true = Helpers.random_vec rng n in
      let rhs = Linalg.Sparse.mul_vec a x_true in
      let x = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor a) rhs in
      Linalg.Vec.rel_error x ~reference:x_true < 1e-8)

let suite =
  [
    Alcotest.test_case "orderings are permutations" `Quick test_perm_validity;
    Alcotest.test_case "perm operations" `Quick test_perm_ops;
    Alcotest.test_case "rcm reduces bandwidth" `Quick test_rcm_reduces_bandwidth;
    Alcotest.test_case "min-degree reduces fill" `Quick test_min_degree_reduces_fill;
    Alcotest.test_case "cholesky under all orderings" `Quick test_sparse_cholesky_all_orderings;
    Alcotest.test_case "cholesky matches dense" `Quick test_sparse_cholesky_matches_dense;
    Alcotest.test_case "cholesky rejects indefinite" `Quick test_sparse_cholesky_rejects_indefinite;
    Alcotest.test_case "cholesky precomputed perm" `Quick test_sparse_cholesky_precomputed_perm;
    Alcotest.test_case "solve in place" `Quick test_solve_in_place;
    Alcotest.test_case "sparse lu random" `Quick test_sparse_lu_random;
    Alcotest.test_case "sparse lu matches dense" `Quick test_sparse_lu_matches_dense;
    Alcotest.test_case "sparse lu pivoting" `Quick test_sparse_lu_needs_pivoting;
    Alcotest.test_case "sparse lu singular" `Quick test_sparse_lu_singular;
    prop_chol_mesh;
  ]

let test_orderings_on_disconnected_graph () =
  (* Two components: every ordering must handle the disconnect. *)
  let b = Linalg.Sparse_builder.create ~nrows:10 ~ncols:10 () in
  for i = 0 to 9 do
    Linalg.Sparse_builder.add b i i 2.0
  done;
  for i = 0 to 3 do
    Linalg.Sparse_builder.stamp_conductance b (Some i) (Some (i + 1)) 1.0
  done;
  for i = 6 to 8 do
    Linalg.Sparse_builder.stamp_conductance b (Some i) (Some (i + 1)) 1.0
  done;
  let a = Linalg.Sparse_builder.to_csc b in
  List.iter
    (fun kind ->
      let p = Linalg.Ordering.compute kind a in
      Alcotest.(check bool) "valid permutation" true (Linalg.Perm.is_valid p);
      let rng = Helpers.rng () in
      let x_true = Helpers.random_vec rng 10 in
      let rhs = Linalg.Sparse.mul_vec a x_true in
      let x = Linalg.Sparse_cholesky.solve (Linalg.Sparse_cholesky.factor ~perm:p a) rhs in
      Alcotest.(check bool) "solves" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-9))
    [ Linalg.Ordering.Rcm; Linalg.Ordering.Min_degree; Linalg.Ordering.Nested_dissection ]

let test_lu_on_indefinite_full_mna () =
  (* The full MNA of an inductor circuit is symmetric indefinite; the LU
     path must solve it where Cholesky necessarily fails. *)
  let text = "V1 a 0 1.0 RS=0.5\nL1 a b 2n\nR1 b 0 1\nI1 b 0 0.1\n.end\n" in
  let c = (Powergrid.Netlist.parse_string text).Powergrid.Netlist.circuit in
  let sys = Powergrid.Mna.Full.assemble c in
  Alcotest.(check bool) "cholesky rejects" true
    (try
       ignore (Linalg.Sparse_cholesky.factor sys.Powergrid.Mna.Full.a);
       false
     with Linalg.Sparse_cholesky.Not_positive_definite _ -> true);
  let x = Linalg.Sparse_lu.solve (Linalg.Sparse_lu.factor sys.Powergrid.Mna.Full.a)
      (sys.Powergrid.Mna.Full.rhs 0.0)
  in
  let r =
    Linalg.Vec.sub (Linalg.Sparse.mul_vec sys.Powergrid.Mna.Full.a x) (sys.Powergrid.Mna.Full.rhs 0.0)
  in
  Alcotest.(check bool) "lu residual small" true (Linalg.Vec.norm2 r < 1e-10)

let suite =
  suite
  @ [
      Alcotest.test_case "orderings on disconnected graphs" `Quick test_orderings_on_disconnected_graph;
      Alcotest.test_case "lu on indefinite full mna" `Quick test_lu_on_indefinite_full_mna;
    ]
