(* Shared checks and generators for the test suite. *)

let check_float ?(eps = 1e-9) what expected actual =
  Alcotest.(check (float eps)) what expected actual

let check_close ?(rtol = 1e-9) what expected actual =
  let scale = Float.max (Float.abs expected) 1.0 in
  Alcotest.(check (float (rtol *. scale))) what expected actual

let check_vec ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (what ^ " (vectors equal)")
    true
    (Linalg.Vec.approx_equal ~tol:eps expected actual)

let check_dense ?(eps = 1e-9) what expected actual =
  if not (Linalg.Dense.approx_equal ~tol:eps expected actual) then
    Alcotest.failf "%s: matrices differ;@ expected %a@ got %a" what Linalg.Dense.pp expected
      Linalg.Dense.pp actual

let rng () = Prob.Rng.create ~seed:12345L ()

(* A random SPD matrix: A = B B^T + n I. *)
let random_spd rng n =
  let b =
    Linalg.Dense.init n n (fun _ _ -> Prob.Rng.float_range rng (-1.0) 1.0)
  in
  let bbt = Linalg.Dense.matmul b (Linalg.Dense.transpose b) in
  Linalg.Dense.init n n (fun i j ->
      Linalg.Dense.get bbt i j +. if i = j then float_of_int n else 0.0)

(* A random sparse SPD matrix built like a conductance stamp: diagonally
   dominant with random off-diagonal couplings. *)
let random_sparse_spd rng n ~extra_edges =
  let b = Linalg.Sparse_builder.create ~nrows:n ~ncols:n () in
  for i = 0 to n - 1 do
    Linalg.Sparse_builder.add b i i 1.0
  done;
  (* chain to keep it irreducible *)
  for i = 0 to n - 2 do
    let g = Prob.Rng.float_range rng 0.5 2.0 in
    Linalg.Sparse_builder.stamp_conductance b (Some i) (Some (i + 1)) g
  done;
  for _ = 1 to extra_edges do
    let i = Prob.Rng.int rng n and j = Prob.Rng.int rng n in
    if i <> j then begin
      let g = Prob.Rng.float_range rng 0.1 1.0 in
      Linalg.Sparse_builder.stamp_conductance b (Some i) (Some j) g
    end
  done;
  Linalg.Sparse_builder.to_csc b

let random_vec rng n = Array.init n (fun _ -> Prob.Rng.float_range rng (-1.0) 1.0)

(* A tiny deterministic power grid usable across tests. *)
let small_grid_spec =
  {
    Powergrid.Grid_spec.default with
    Powergrid.Grid_spec.rows = 8;
    cols = 8;
    layers = 2;
    block_count = 2;
    block_size = 2;
    block_peak = 0.01;
    sim_cycles = 2;
  }

let qcheck_case ?(count = 100) name arbitrary property =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary property)
