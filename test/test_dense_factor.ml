(* Dense LU, Cholesky, and eigensolvers. *)

let test_lu_solve () =
  let a = Linalg.Dense.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let f = Linalg.Lu.factor a in
  let x = Linalg.Lu.solve f [| 5.0; 10.0 |] in
  Helpers.check_vec ~eps:1e-12 "lu solve" [| 1.0; 3.0 |] x

let test_lu_random () =
  let rng = Helpers.rng () in
  for _ = 1 to 10 do
    let n = 8 in
    let a = Linalg.Dense.init n n (fun _ _ -> Prob.Rng.float_range rng (-1.0) 1.0) in
    let x_true = Helpers.random_vec rng n in
    let b = Linalg.Dense.matvec a x_true in
    let x = Linalg.Lu.solve (Linalg.Lu.factor a) b in
    Alcotest.(check bool) "residual small" true
      (Linalg.Vec.rel_error x ~reference:x_true < 1e-10)
  done

let test_lu_det () =
  let a = Linalg.Dense.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  Helpers.check_float "det diagonal" 6.0 (Linalg.Lu.det (Linalg.Lu.factor a));
  let swapped = Linalg.Dense.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  Helpers.check_float "det permutation" (-1.0) (Linalg.Lu.det (Linalg.Lu.factor swapped))

let test_lu_singular () =
  let a = Linalg.Dense.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "singular raises" true
    (try
       ignore (Linalg.Lu.factor a);
       false
     with Linalg.Lu.Singular _ -> true)

let test_lu_inverse () =
  let a = Linalg.Dense.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Linalg.Lu.inverse (Linalg.Lu.factor a) in
  Helpers.check_dense ~eps:1e-12 "a * a^-1 = I" (Linalg.Dense.identity 2)
    (Linalg.Dense.matmul a inv)

let test_cholesky () =
  let rng = Helpers.rng () in
  let a = Helpers.random_spd rng 10 in
  let f = Linalg.Cholesky.factor a in
  let l = Linalg.Cholesky.lower f in
  Helpers.check_dense ~eps:1e-8 "L L^T = A" a
    (Linalg.Dense.matmul l (Linalg.Dense.transpose l));
  let x_true = Helpers.random_vec rng 10 in
  let b = Linalg.Dense.matvec a x_true in
  let x = Linalg.Cholesky.solve f b in
  Alcotest.(check bool) "solve accurate" true (Linalg.Vec.rel_error x ~reference:x_true < 1e-9)

let test_cholesky_rejects_indefinite () =
  let a = Linalg.Dense.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.(check bool) "indefinite raises" true
    (try
       ignore (Linalg.Cholesky.factor a);
       false
     with Linalg.Cholesky.Not_positive_definite _ -> true)

let test_cholesky_logdet () =
  let a = Linalg.Dense.of_arrays [| [| 4.0; 0.0 |]; [| 0.0; 9.0 |] |] in
  Helpers.check_float ~eps:1e-12 "logdet" (log 36.0) (Linalg.Cholesky.logdet (Linalg.Cholesky.factor a))

let check_eigen_pairs what a values vectors =
  let n, _ = Linalg.Dense.dims a in
  for j = 0 to n - 1 do
    let v = Linalg.Dense.col vectors j in
    let av = Linalg.Dense.matvec a v in
    let lv = Linalg.Vec.scaled values.(j) v in
    Alcotest.(check bool)
      (Printf.sprintf "%s: A v = lambda v (pair %d)" what j)
      true
      (Linalg.Vec.dist2 av lv < 1e-7 *. (1.0 +. Float.abs values.(j)))
  done

let test_jacobi_eigen () =
  let a = Linalg.Dense.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let values, vectors = Linalg.Eig.symmetric a in
  Helpers.check_float ~eps:1e-10 "lambda_0" 1.0 values.(0);
  Helpers.check_float ~eps:1e-10 "lambda_1" 3.0 values.(1);
  check_eigen_pairs "jacobi" a values vectors

let test_jacobi_random () =
  let rng = Helpers.rng () in
  let a = Helpers.random_spd rng 8 in
  let values, vectors = Linalg.Eig.symmetric a in
  check_eigen_pairs "jacobi random" a values vectors;
  (* Trace = sum of eigenvalues. *)
  let trace = ref 0.0 in
  for i = 0 to 7 do
    trace := !trace +. Linalg.Dense.get a i i
  done;
  Helpers.check_close ~rtol:1e-9 "trace" !trace (Array.fold_left ( +. ) 0.0 values)

let test_tridiagonal () =
  (* 1D Laplacian eigenvalues: 2 - 2 cos(k pi / (n+1)). *)
  let n = 12 in
  let diag = Array.make n 2.0 in
  let off = Array.make (n - 1) (-1.0) in
  let values, vectors = Linalg.Eig.tridiagonal ~diag ~off in
  for k = 1 to n do
    let expected = 2.0 -. (2.0 *. cos (float_of_int k *. Float.pi /. float_of_int (n + 1))) in
    Helpers.check_float ~eps:1e-9 (Printf.sprintf "laplacian lambda_%d" k) expected values.(k - 1)
  done;
  let a =
    Linalg.Dense.init n n (fun i j ->
        if i = j then 2.0 else if abs (i - j) = 1 then -1.0 else 0.0)
  in
  check_eigen_pairs "tridiagonal" a values vectors

let suite =
  [
    Alcotest.test_case "lu solve 2x2" `Quick test_lu_solve;
    Alcotest.test_case "lu random systems" `Quick test_lu_random;
    Alcotest.test_case "lu determinant" `Quick test_lu_det;
    Alcotest.test_case "lu singular detection" `Quick test_lu_singular;
    Alcotest.test_case "lu inverse" `Quick test_lu_inverse;
    Alcotest.test_case "cholesky factor+solve" `Quick test_cholesky;
    Alcotest.test_case "cholesky rejects indefinite" `Quick test_cholesky_rejects_indefinite;
    Alcotest.test_case "cholesky logdet" `Quick test_cholesky_logdet;
    Alcotest.test_case "jacobi eigen 2x2" `Quick test_jacobi_eigen;
    Alcotest.test_case "jacobi eigen random spd" `Quick test_jacobi_random;
    Alcotest.test_case "tridiagonal QL (laplacian)" `Quick test_tridiagonal;
  ]
