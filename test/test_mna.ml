(* MNA assembly, DC analysis, transient integration. *)

(* A hand-solvable voltage divider: pad (1 V, Rs = 1) - node0 - R=1 - node1,
   node1 draws 0.1 A. DC: v0 = 1 - 0.1 * 1 = 0.9, v1 = 0.9 - 0.1 = 0.8. *)
let divider_circuit ?(i_draw = 0.1) () =
  Powergrid.Circuit.make ~num_nodes:2
    ~resistors:
      [ { Powergrid.Circuit.rnode1 = 0; rnode2 = 1; ohms = 1.0; rkind = Powergrid.Circuit.Metal } ]
    ~capacitors:
      [ { Powergrid.Circuit.cnode1 = 1; cnode2 = Powergrid.Circuit.ground; farads = 1e-12;
          ckind = Powergrid.Circuit.Gate } ]
    ~isources:[ { Powergrid.Circuit.inode = 1; wave = Powergrid.Waveform.Dc i_draw; region = 0 } ]
    ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = 1.0; series_ohms = 1.0 } ] ()

let test_dc_divider () =
  let a = Powergrid.Mna.assemble (divider_circuit ()) in
  let v = Powergrid.Dc.solve a in
  Helpers.check_float ~eps:1e-12 "v0" 0.9 v.(0);
  Helpers.check_float ~eps:1e-12 "v1" 0.8 v.(1)

let test_full_mna_matches_norton () =
  let c = divider_circuit () in
  let norton = Powergrid.Dc.solve (Powergrid.Mna.assemble c) in
  let full = Powergrid.Dc.solve_full (Powergrid.Mna.Full.assemble c) in
  Helpers.check_vec ~eps:1e-10 "full MNA equals Norton" norton full

let test_full_mna_ideal_source () =
  (* Ideal pad (Rs = 0) is only solvable through the full MNA. *)
  let c =
    Powergrid.Circuit.make ~num_nodes:2
      ~resistors:
        [ { Powergrid.Circuit.rnode1 = 0; rnode2 = 1; ohms = 2.0; rkind = Powergrid.Circuit.Metal } ]
      ~capacitors:[]
      ~isources:[ { Powergrid.Circuit.inode = 1; wave = Powergrid.Waveform.Dc 0.25; region = 0 } ]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = 1.0; series_ohms = 0.0 } ] ()
  in
  Alcotest.(check bool) "norton assembly rejects ideal pad" true
    (try
       ignore (Powergrid.Mna.assemble c);
       false
     with Invalid_argument _ -> true);
  let v = Powergrid.Dc.solve_full (Powergrid.Mna.Full.assemble c) in
  Helpers.check_float ~eps:1e-12 "v0 pinned" 1.0 v.(0);
  Helpers.check_float ~eps:1e-12 "v1 = 1 - 0.25 * 2" 0.5 v.(1)

let test_mna_split_parts () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  (* wire + pad = total; gate + fixed = total; all SPD-symmetric *)
  Alcotest.(check bool) "g_wire symmetric" true (Linalg.Sparse.is_symmetric ~tol:1e-12 a.Powergrid.Mna.g_wire);
  Alcotest.(check bool) "c split symmetric" true
    (Linalg.Sparse.is_symmetric ~tol:1e-15 (Powergrid.Mna.c_total a));
  (* gate fraction of the cap diagonal should match the spec *)
  let sum m = Array.fold_left ( +. ) 0.0 (Linalg.Sparse.diag m) in
  let gate = sum a.Powergrid.Mna.c_gate and total = sum (Powergrid.Mna.c_total a) in
  Helpers.check_close ~rtol:1e-9 "gate cap fraction"
    spec.Powergrid.Grid_spec.gate_cap_fraction (gate /. total)

let test_inject_sign () =
  let a = Powergrid.Mna.assemble (divider_circuit ()) in
  let u = Powergrid.Mna.inject a 0.0 in
  (* pad Norton at node 0: +1 V / 1 ohm; drain at node 1: -0.1 A *)
  Helpers.check_float ~eps:1e-12 "pad injection" 1.0 u.(0);
  Helpers.check_float ~eps:1e-12 "drain injection" (-0.1) u.(1)

let test_grid_dc_drop_bounded () =
  (* The generated grid must obey the paper's loading rule: peak drop
     below ~10% of VDD. *)
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  let v = Powergrid.Dc.solve a in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  Array.iter
    (fun vi ->
      Alcotest.(check bool) "voltage between 0.9 VDD and VDD" true
        (vi > 0.9 *. vdd && vi <= vdd +. 1e-9))
    v

(* RC discharge: node with C to ground, R to an ideal-ish pad at V0.
   Analytic: v(t) = V0 + (v(0) - V0) exp(-t / RC). *)
let test_transient_rc_decay () =
  let r = 10.0 and cap = 1e-12 and v0 = 1.0 in
  let circuit =
    Powergrid.Circuit.make ~num_nodes:1 ~resistors:[]
      ~capacitors:
        [ { Powergrid.Circuit.cnode1 = 0; cnode2 = Powergrid.Circuit.ground; farads = cap;
            ckind = Powergrid.Circuit.Fixed } ]
      ~isources:[]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = v0; series_ohms = r } ] ()
  in
  let a = Powergrid.Mna.assemble circuit in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let tau = r *. cap in
  let h = tau /. 200.0 in
  let steps = 400 in
  let x0 = [| 0.0 |] in
  (* start discharged *)
  let final = ref 0.0 in
  let results = Array.make (steps + 1) 0.0 in
  let cfg = Powergrid.Transient.default_config ~h ~steps in
  Powergrid.Transient.run cfg ~g ~c
    ~inject:(fun t u -> Powergrid.Mna.inject_into a t u)
    ~x0
    ~on_step:(fun k _t x ->
      results.(k) <- x.(0);
      final := x.(0));
  let t_end = float_of_int steps *. h in
  let expected = v0 *. (1.0 -. exp (-.t_end /. tau)) in
  Helpers.check_float ~eps:0.01 "BE matches analytic charge curve" expected !final;
  (* Midpoint check too. *)
  let mid = steps / 2 in
  let t_mid = float_of_int mid *. h in
  Helpers.check_float ~eps:0.01 "midpoint" (v0 *. (1.0 -. exp (-.t_mid /. tau))) results.(mid)

let test_trapezoidal_more_accurate () =
  let r = 10.0 and cap = 1e-12 and v0 = 1.0 in
  let circuit =
    Powergrid.Circuit.make ~num_nodes:1 ~resistors:[]
      ~capacitors:
        [ { Powergrid.Circuit.cnode1 = 0; cnode2 = Powergrid.Circuit.ground; farads = cap;
            ckind = Powergrid.Circuit.Fixed } ]
      ~isources:[]
      ~vsources:[ { Powergrid.Circuit.vnode = 0; volts = v0; series_ohms = r } ] ()
  in
  let a = Powergrid.Mna.assemble circuit in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let tau = r *. cap in
  let h = tau /. 10.0 in
  (* coarse step to expose scheme error *)
  let steps = 20 in
  let run scheme =
    let final = ref 0.0 in
    let cfg = { (Powergrid.Transient.default_config ~h ~steps) with Powergrid.Transient.scheme } in
    Powergrid.Transient.run cfg ~g ~c
      ~inject:(fun t u -> Powergrid.Mna.inject_into a t u)
      ~x0:[| 0.0 |]
      ~on_step:(fun _ _ x -> final := x.(0));
    !final
  in
  let expected = v0 *. (1.0 -. exp (-.(float_of_int steps *. h) /. tau)) in
  let be = run Powergrid.Transient.Backward_euler in
  let tr = run Powergrid.Transient.Trapezoidal in
  Alcotest.(check bool)
    (Printf.sprintf "TR error %.2e <= BE error %.2e" (Float.abs (tr -. expected))
       (Float.abs (be -. expected)))
    true
    (Float.abs (tr -. expected) <= Float.abs (be -. expected))

let test_transient_settles_to_dc () =
  (* With DC sources the transient must converge to the DC solution. *)
  let a = Powergrid.Mna.assemble (divider_circuit ()) in
  let dc = Powergrid.Dc.solve a in
  let g = Powergrid.Mna.g_total a and c = Powergrid.Mna.c_total a in
  let last = Array.make 2 0.0 in
  let cfg = Powergrid.Transient.default_config ~h:1e-11 ~steps:300 in
  Powergrid.Transient.run cfg ~g ~c
    ~inject:(fun t u -> Powergrid.Mna.inject_into a t u)
    ~x0:[| 0.0; 0.0 |]
    ~on_step:(fun _ _ x -> Array.blit x 0 last 0 2);
  Helpers.check_vec ~eps:1e-6 "settles to DC" dc last

let test_metrics () =
  let v = [| 1.2; 1.1; 1.15 |] in
  let drop, node = Powergrid.Metrics.max_drop ~vdd:1.2 v in
  Helpers.check_float ~eps:1e-12 "max drop" 0.1 drop;
  Alcotest.(check int) "worst node" 1 node;
  Helpers.check_float "drop percent" 25.0 (Powergrid.Metrics.drop_percent ~vdd:1.2 0.3);
  let worst = Powergrid.Metrics.worst_nodes ~vdd:1.2 v 2 in
  Alcotest.(check (list int)) "worst two" [ 1; 2 ] (List.map fst worst);
  Helpers.check_vec ~eps:1e-12 "drops" [| 0.0; 0.1; 0.05 |]
    (Powergrid.Metrics.drops ~vdd:1.2 v)

let test_transient_grid_runs () =
  let spec = Helpers.small_grid_spec in
  let circuit = Powergrid.Grid_gen.generate spec in
  let a = Powergrid.Mna.assemble circuit in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let cfg = Powergrid.Transient.default_config ~h:0.125e-9 ~steps:16 in
  let min_v = ref infinity in
  Powergrid.Transient.run_circuit cfg a ~on_step:(fun _ _ x ->
      Array.iter (fun v -> if v < !min_v then min_v := v) x);
  Alcotest.(check bool)
    (Printf.sprintf "worst transient voltage %.3f within (0.85, 1.0] VDD" (!min_v /. vdd))
    true
    (!min_v > 0.85 *. vdd && !min_v <= vdd +. 1e-9)

let suite =
  [
    Alcotest.test_case "dc divider" `Quick test_dc_divider;
    Alcotest.test_case "full MNA = Norton" `Quick test_full_mna_matches_norton;
    Alcotest.test_case "full MNA ideal source" `Quick test_full_mna_ideal_source;
    Alcotest.test_case "mna split parts" `Quick test_mna_split_parts;
    Alcotest.test_case "injection signs" `Quick test_inject_sign;
    Alcotest.test_case "grid dc drop bounded" `Quick test_grid_dc_drop_bounded;
    Alcotest.test_case "rc charge analytic" `Quick test_transient_rc_decay;
    Alcotest.test_case "trapezoidal accuracy" `Quick test_trapezoidal_more_accurate;
    Alcotest.test_case "transient settles to dc" `Quick test_transient_settles_to_dc;
    Alcotest.test_case "ir-drop metrics" `Quick test_metrics;
    Alcotest.test_case "grid transient bounded" `Quick test_transient_grid_runs;
  ]

let test_run_full_matches_nodal_for_rc () =
  (* For an RC grid with resistive pads, the full-MNA transient must agree
     with the Norton nodal transient on node voltages. *)
  let circuit = Powergrid.Grid_gen.generate Helpers.small_grid_spec in
  let a = Powergrid.Mna.assemble circuit in
  let sys = Powergrid.Mna.Full.assemble circuit in
  let n = a.Powergrid.Mna.n in
  let cfg = Powergrid.Transient.default_config ~h:0.125e-9 ~steps:8 in
  let nodal = Array.make ((8 + 1) * n) 0.0 in
  Powergrid.Transient.run_circuit cfg a ~on_step:(fun k _ x -> Array.blit x 0 nodal (k * n) n);
  let full = Array.make ((8 + 1) * n) 0.0 in
  Powergrid.Transient.run_full cfg sys ~on_step:(fun k _ x -> Array.blit x 0 full (k * n) n);
  for k = 1 to 8 do
    let x1 = Array.sub nodal (k * n) n and x2 = Array.sub full (k * n) n in
    Alcotest.(check bool)
      (Printf.sprintf "step %d agrees" k)
      true
      (Linalg.Vec.approx_equal ~tol:1e-8 x1 x2)
  done

(* --- streaming assembly ------------------------------------------------- *)

let test_stream_mna_matches_assemble () =
  (* The streaming path must produce the same system as the circuit
     path.  Matrices agree up to duplicate-summation rounding (to_csc
     sorts duplicate runs unstably, of_stamps sums in emission order);
     the pad injection, waveforms and regions are bitwise identical. *)
  let spec = Helpers.small_grid_spec in
  let reference = Powergrid.Mna.assemble (Powergrid.Grid_gen.generate spec) in
  let streamed = Powergrid.Grid_gen.stream_mna spec in
  Alcotest.(check int) "n" reference.Powergrid.Mna.n streamed.Powergrid.Mna.n;
  let close what a b =
    Alcotest.(check bool) what true (Linalg.Sparse.approx_equal ~tol:1e-13 a b)
  in
  close "g_wire" reference.Powergrid.Mna.g_wire streamed.Powergrid.Mna.g_wire;
  close "g_pad" reference.Powergrid.Mna.g_pad streamed.Powergrid.Mna.g_pad;
  close "c_gate" reference.Powergrid.Mna.c_gate streamed.Powergrid.Mna.c_gate;
  close "c_fixed" reference.Powergrid.Mna.c_fixed streamed.Powergrid.Mna.c_fixed;
  Helpers.check_vec ~eps:0.0 "u_pad bitwise" reference.Powergrid.Mna.u_pad
    streamed.Powergrid.Mna.u_pad;
  let ri = reference.Powergrid.Mna.isources and si = streamed.Powergrid.Mna.isources in
  Alcotest.(check int) "isource count" (Array.length ri) (Array.length si) ;
  Array.iteri
    (fun k (r : Powergrid.Circuit.current_source) ->
      let s = si.(k) in
      Alcotest.(check int) "inode" r.Powergrid.Circuit.inode s.Powergrid.Circuit.inode;
      Alcotest.(check int) "region" r.Powergrid.Circuit.region s.Powergrid.Circuit.region;
      List.iter
        (fun t ->
          Helpers.check_float ~eps:0.0 "waveform bitwise"
            (Powergrid.Waveform.eval r.Powergrid.Circuit.wave t)
            (Powergrid.Waveform.eval s.Powergrid.Circuit.wave t))
        [ 0.0; 0.3e-9; 1.1e-9; 4.7e-9 ])
    ri

let test_stream_mna_rejects_ideal_pads () =
  let spec = { Helpers.small_grid_spec with Powergrid.Grid_spec.pad_res = 0.0 } in
  try
    ignore (Powergrid.Grid_gen.stream_mna spec);
    Alcotest.fail "pad_res = 0 accepted"
  with Invalid_argument _ -> ()

let test_layer_shrink_exact () =
  let spec =
    { Helpers.small_grid_spec with Powergrid.Grid_spec.rows = 729; cols = 729; coarsening = 3 }
  in
  (* Exact powers, no float rounding... *)
  Alcotest.(check int) "3^0" 1 (Powergrid.Grid_spec.layer_shrink spec 0);
  Alcotest.(check int) "3^4" 81 (Powergrid.Grid_spec.layer_shrink spec 4);
  Alcotest.(check int) "3^6" 729 (Powergrid.Grid_spec.layer_shrink spec 6);
  (* ...and saturation at the bottom-mesh side instead of overflow. *)
  Alcotest.(check int) "saturates" 729 (Powergrid.Grid_spec.layer_shrink spec 64)

let suite =
  suite
  @ [
      Alcotest.test_case "run_full = nodal on RC" `Quick test_run_full_matches_nodal_for_rc;
      Alcotest.test_case "stream_mna = assemble" `Quick test_stream_mna_matches_assemble;
      Alcotest.test_case "stream_mna ideal pads" `Quick test_stream_mna_rejects_ideal_pads;
      Alcotest.test_case "layer_shrink exact" `Quick test_layer_shrink_exact;
    ]
