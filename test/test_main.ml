let () =
  Alcotest.run "opera"
    [
      ("vec", Test_vec.suite);
      ("dense", Test_dense.suite);
      ("dense-factor", Test_dense_factor.suite);
      ("sparse", Test_sparse.suite);
      ("sparse-factor", Test_sparse_factor.suite);
      ("iterative", Test_iterative.suite);
      ("solver-health", Test_solver_health.suite);
      ("transient-order", Test_transient_order.suite);
      ("parallel", Test_parallel.suite);
      ("prob", Test_prob.suite);
      ("stats", Test_stats.suite);
      ("polychaos", Test_polychaos.suite);
      ("triple-product", Test_triple_product.suite);
      ("powergrid", Test_powergrid.suite);
      ("mna", Test_mna.suite);
      ("opera-core", Test_opera.suite);
      ("galerkin-op", Test_galerkin_op.suite);
      ("extensions", Test_extensions.suite);
      ("mor", Test_mor.suite);
      ("misc", Test_more.suite);
      ("hierarchical", Test_hierarchical.suite);
      ("yield", Test_yield.suite);
      ("collocation", Test_collocation.suite);
      ("anisotropic", Test_anisotropic.suite);
      ("properties", Test_properties.suite);
      ("multiplicative", Test_multiplicative.suite);
      ("smolyak", Test_smolyak.suite);
      ("vectorless", Test_vectorless.suite);
      ("integration", Test_integration.suite);
      ("lint", Test_lint.suite);
    ]
