(* Tests for opera-lint v2 (tools/lint): typedtree-driven rule
   catalogue over seeded fixture families, per-closure race accounting,
   waiver handling, the incremental cache, report schemas (JSON v2 and
   SARIF 2.1.0, round-tripped through Util.Json), and the repo's own
   tree staying lint-clean. *)

module L = Lint_engine
module Report = L.Report

(* Tests run from _build/default/test.  The project scan needs the real
   source root (dune files are not copied into _build); from there,
   find_build_root resolves the cmi directories under _build/default.
   Guarded so a sandboxed runner without the source tree skips rather
   than fails. *)
let root =
  let is_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib/util/dune")
  in
  let rec search dir depth =
    if depth > 6 then None
    else if is_root dir then Some dir
    else search (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  match search Filename.current_dir_name 0 with Some d -> d | None -> "."

let fixtures = "test/lint_fixtures"

let have_fixtures =
  Sys.file_exists (Filename.concat root "dune-project")
  && Sys.file_exists (Filename.concat root fixtures)
  && Sys.is_directory (Filename.concat root fixtures)

let when_fixtures f = if have_fixtures then f ()

let run_fixtures ?(config = L.default_config) ?cache_dir paths =
  L.run ~config ?cache_dir ~root paths

let fixture_run = lazy (run_fixtures [ fixtures ])

let counts findings id =
  match List.assoc_opt id (L.summarize findings).Report.per_rule with
  | Some uw -> uw
  | None -> Alcotest.failf "rule %s missing from summary" id

let check_rule findings id expected =
  Alcotest.(check (pair int int)) (id ^ " (unwaived, waived)") expected (counts findings id)

(* --- Findings per rule over the fixture families --------------------- *)

let test_fixture_findings () =
  when_fixtures @@ fun () ->
  let r = Lazy.force fixture_run in
  Alcotest.(check int) "fixture files scanned" 9 r.L.files_scanned;
  check_rule r.L.findings "exact-float" (3, 1);
  check_rule r.L.findings "domain-race" (6, 2);
  check_rule r.L.findings "banned-construct" (4, 1);
  check_rule r.L.findings "unsafe-index" (3, 1);
  check_rule r.L.findings "determinism" (5, 1);
  check_rule r.L.findings "hot-alloc" (3, 1);
  check_rule r.L.findings "resource-safety" (2, 1);
  (* Orphan fixtures are exempt from the missing-mli rule, and all
     fixtures must parse and typecheck. *)
  check_rule r.L.findings "missing-mli" (0, 0);
  check_rule r.L.findings "parse-error" (0, 0);
  check_rule r.L.findings "type-error" (0, 0);
  let s = L.summarize r.L.findings in
  Alcotest.(check int) "total" 34 s.Report.total;
  Alcotest.(check int) "unwaived" 26 s.Report.unwaived;
  Alcotest.(check int) "waived" 8 s.Report.waived;
  Alcotest.(check int) "exit code on seeded violations" 1 (L.exit_code r.L.findings)

let test_finding_positions () =
  when_fixtures @@ fun () ->
  let r = Lazy.force fixture_run in
  List.iter
    (fun (f : L.finding) ->
      Alcotest.(check bool) "file under the fixtures dir" true
        (String.starts_with ~prefix:fixtures f.L.file);
      Alcotest.(check bool) "line >= 1" true (f.L.line >= 1);
      Alcotest.(check bool) "col >= 0" true (f.L.col >= 0))
    r.L.findings;
  let rec sorted = function
    | a :: (b :: _ as rest) -> L.finding_order a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly sorted, duplicate-free" true (sorted r.L.findings)

(* --- Per-closure race accounting ------------------------------------- *)

let test_race_stats () =
  when_fixtures @@ fun () ->
  let r = Lazy.force fixture_run in
  Alcotest.(check int) "closures analyzed" 13 r.L.race.Report.closures;
  Alcotest.(check int) "closures proven disjoint" 5 r.L.race.Report.proven;
  Alcotest.(check int) "closures waived" 2 r.L.race.Report.waived_closures

let test_proven_fixture_is_clean () =
  when_fixtures @@ fun () ->
  (* Every write in fixture_race_proven.ml is provably chunk-disjoint:
     direct parallel-index writes, strided slices, chunk-owned buffers,
     stride-matched Array.fill.  Zero findings, all closures proven. *)
  let r = run_fixtures [ fixtures ^ "/fixture_race_proven.ml" ] in
  Alcotest.(check int) "no findings" 0 (List.length r.L.findings);
  Alcotest.(check int) "closures" 4 r.L.race.Report.closures;
  Alcotest.(check int) "all proven" 4 r.L.race.Report.proven;
  Alcotest.(check int) "none waived" 0 r.L.race.Report.waived_closures

let test_waived_fixture_counts_closures () =
  when_fixtures @@ fun () ->
  let r = run_fixtures [ fixtures ^ "/fixture_race_waived.ml" ] in
  Alcotest.(check bool) "every finding waived" true
    (List.for_all (fun (f : L.finding) -> f.L.waived) r.L.findings);
  Alcotest.(check int) "exit 0 when all waived" 0 (L.exit_code r.L.findings);
  Alcotest.(check int) "closures" 2 r.L.race.Report.closures;
  Alcotest.(check int) "none proven" 0 r.L.race.Report.proven;
  Alcotest.(check int) "both waived" 2 r.L.race.Report.waived_closures

(* --- Config allowlists ------------------------------------------------ *)

let test_unsafe_allowlist () =
  when_fixtures @@ fun () ->
  let config = { L.default_config with L.unsafe_allowlist = [ "fixture_unsafe.ml" ] } in
  let r = run_fixtures ~config [ fixtures ^ "/fixture_unsafe.ml" ] in
  check_rule r.L.findings "unsafe-index" (0, 0)

let test_clock_allowlist () =
  when_fixtures @@ fun () ->
  let config =
    { L.default_config with L.clock_allowlist = [ "fixture_determinism.ml" ] }
  in
  let r = run_fixtures ~config [ fixtures ^ "/fixture_determinism.ml" ] in
  (* Only the wall-clock finding is excused; Hashtbl order and ambient
     Random stay flagged. *)
  check_rule r.L.findings "determinism" (4, 1)

(* --- Single-source behaviours (no cache, hand-built plans) ----------- *)

let adhoc_plan ?(mli = false) ?(exe = false) rel_path =
  {
    L.Project.rel_path;
    unit_name = String.capitalize_ascii (Filename.remove_extension (Filename.basename rel_path));
    alias_opens = [];
    load_dirs = [];
    is_exe = exe;
    mli_exists = mli;
  }

let lint_src ?(config = L.default_config) ?mli ?exe name src =
  let findings, closures, _, _ = L.lint_source config ~plan:(adhoc_plan ?mli ?exe name) src in
  (findings, closures)

let test_clean_source () =
  let findings, closures = lint_src ~mli:true "clean.ml" "let f x = x + 1\n" in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check int) "no parallel closures" 0 (List.length closures);
  Alcotest.(check int) "exit 0" 0 (L.exit_code findings)

let test_missing_mli () =
  let findings, _ = lint_src "bare.ml" "let f x = x + 1\n" in
  (match findings with
  | [ f ] ->
      Alcotest.(check bool) "missing-mli rule" true (f.L.rule = L.Missing_mli);
      Alcotest.(check bool) "unwaived" false f.L.waived
  | fs -> Alcotest.failf "expected exactly the missing-mli finding, got %d" (List.length fs));
  (* ... which the 'mli' waiver key excuses ... *)
  let findings, _ = lint_src "bare.ml" "(* opera-lint: mli *)\nlet f x = x + 1\n" in
  Alcotest.(check bool) "waivable" true (List.for_all (fun f -> f.L.waived) findings);
  (* ... and executables are exempt. *)
  let findings, _ = lint_src ~exe:true "main.ml" "let f x = x + 1\n" in
  Alcotest.(check int) "exe exempt" 0 (List.length findings)

let test_exe_exemptions () =
  (* Prints and exit are the whole point of a CLI main. *)
  let findings, _ = lint_src ~exe:true "main.ml" "let () = print_endline \"ok\"\n" in
  Alcotest.(check int) "exe may print" 0 (List.length findings);
  let findings, _ = lint_src ~mli:true "m.ml" "let f () = print_endline \"no\"\n" in
  check_rule findings "banned-construct" (1, 0)

let test_waived_only_exits_zero () =
  let findings, _ = lint_src ~mli:true "w.ml" "let g x = x = 0.0 (* opera-lint: exact *)\n" in
  (match findings with
  | [ f ] -> Alcotest.(check bool) "waived" true f.L.waived
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  Alcotest.(check int) "exit 0 when all waived" 0 (L.exit_code findings)

let test_waiver_on_previous_line () =
  let findings, _ =
    lint_src ~mli:true "w.ml" "(* opera-lint: exact *)\nlet g x = x = 0.0\n"
  in
  Alcotest.(check bool) "waived via preceding line" true (List.hd findings).L.waived

let test_parse_error () =
  let findings, _ = lint_src ~mli:true "broken.ml" "let = (\n" in
  (match findings with
  | [ f ] -> Alcotest.(check bool) "parse-error rule" true (f.L.rule = L.Parse_failure)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  Alcotest.(check int) "exit 1 (unwaivable)" 1 (L.exit_code findings)

let test_type_error () =
  let findings, _ = lint_src ~mli:true "ill.ml" "let x : int = \"s\"\n" in
  (match findings with
  | [ f ] -> Alcotest.(check bool) "type-error rule" true (f.L.rule = L.Type_failure)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  (* Parse and type failures have no waiver key: a comment cannot
     excuse a file the analysis could not even read. *)
  let findings, _ =
    lint_src ~mli:true "ill.ml" "let x : int = \"s\" (* opera-lint: type *)\n"
  in
  Alcotest.(check bool) "unwaivable" true
    (List.exists (fun (f : L.finding) -> not f.L.waived) findings)

(* --- Waiver comment parsing ------------------------------------------ *)

let test_line_waives () =
  let check what expected line key =
    Alcotest.(check bool) what expected (L.line_waives line key)
  in
  check "simple" true "x = 0.0 (* opera-lint: exact *)" "exact";
  check "multi-key, first" true "(* opera-lint: exact, unsafe *)" "exact";
  check "multi-key, second" true "(* opera-lint: exact, unsafe *)" "unsafe";
  check "justification text ignored" true
    "(* opera-lint: race — j owns slice [j*n, (j+1)*n) *)" "race";
  check "wrong key" false "(* opera-lint: exact *)" "race";
  check "no marker" false "let x = 0.0" "exact";
  check "prefix does not match" false "(* opera-lint: exacting *)" "exact"

(* --- Incremental cache ------------------------------------------------ *)

let fresh_dir () =
  let marker = Filename.temp_file "opera_lint_test" "" in
  Sys.remove marker;
  let dir = marker ^ ".d" in
  Sys.mkdir dir 0o755;
  dir

let write_src dir name text =
  let oc = open_out_bin (Filename.concat dir name) in
  output_string oc text;
  close_out oc

let finding_keys r =
  List.map
    (fun (f : L.finding) -> (f.L.file, f.L.line, L.rule_id f.L.rule, f.L.waived))
    r.L.findings

let test_incremental_cache () =
  (* A scratch project of two orphan sources with its own cache dir:
     second run is all hits; editing one file re-analyzes exactly that
     file; changing the config re-analyzes everything. *)
  let dir = fresh_dir () in
  let cache_dir = Filename.concat dir "_cache" in
  write_src dir "alpha.ml" "let a x = x + 1\n";
  write_src dir "beta.ml" "let b x = x = 0.0\n";
  let go ?(config = L.default_config) () =
    L.run ~config ~cache_dir ~root:dir [ "." ]
  in
  let cold = go () in
  Alcotest.(check int) "cold: misses" 2 cold.L.cache.Report.misses;
  Alcotest.(check int) "cold: hits" 0 cold.L.cache.Report.hits;
  check_rule cold.L.findings "exact-float" (1, 0);
  let warm = go () in
  Alcotest.(check int) "warm: hits" 2 warm.L.cache.Report.hits;
  Alcotest.(check int) "warm: misses" 0 warm.L.cache.Report.misses;
  Alcotest.(check bool) "cached findings replay identically" true
    (finding_keys cold = finding_keys warm);
  (* Edit one source: exactly one re-analysis. *)
  write_src dir "beta.ml" "let b x = x = 1.0\n";
  let edited = go () in
  Alcotest.(check int) "after edit: hits" 1 edited.L.cache.Report.hits;
  Alcotest.(check int) "after edit: misses" 1 edited.L.cache.Report.misses;
  check_rule edited.L.findings "exact-float" (1, 0);
  (* Flip the rule config: the config digest changes, full re-analysis. *)
  let config = { L.default_config with L.check_mli = false } in
  let flipped = go ~config () in
  Alcotest.(check int) "after config flip: hits" 0 flipped.L.cache.Report.hits;
  Alcotest.(check int) "after config flip: misses" 2 flipped.L.cache.Report.misses;
  (* ... and the flipped config warms its own entries. *)
  let rewarmed = go ~config () in
  Alcotest.(check int) "rewarmed: hits" 2 rewarmed.L.cache.Report.hits

let test_cache_survives_damage () =
  (* A zero-length or truncated cache entry must be dropped and the file
     re-analyzed — the Codec.read_file Corrupt contract end-to-end. *)
  let dir = fresh_dir () in
  let cache_dir = Filename.concat dir "_cache" in
  write_src dir "gamma.ml" "let c x = x = 0.5\n";
  let go () = L.run ~cache_dir ~root:dir [ "." ] in
  ignore (go ());
  (match Sys.readdir cache_dir with
  | [||] -> Alcotest.fail "cache entry not written"
  | entries ->
      Array.iter
        (fun e -> close_out (open_out_bin (Filename.concat cache_dir e)))
        entries);
  let healed = go () in
  Alcotest.(check int) "damaged entry is a miss, not a crash" 1
    healed.L.cache.Report.misses;
  check_rule healed.L.findings "exact-float" (1, 0)

(* --- JSON report v2, via Util.Json ----------------------------------- *)

let get_exn msg = function Some v -> v | None -> Alcotest.fail msg

let parse_json what text =
  match Util.Json.parse text with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s does not parse: %s" what e

let test_json_report () =
  when_fixtures @@ fun () ->
  let r = Lazy.force fixture_run in
  let report () =
    L.json_report ~files_scanned:r.L.files_scanned ~race:r.L.race ~cache:r.L.cache
      ~timings:r.L.timings r.L.findings
  in
  let text = report () in
  Alcotest.(check string) "deterministic for fixed inputs" text (report ());
  let json = parse_json "json report" text in
  let member k = get_exn ("missing key " ^ k) (Util.Json.member k json) in
  Alcotest.(check (option string)) "tool" (Some "opera-lint")
    (Util.Json.to_string (member "tool"));
  Alcotest.(check (option int)) "version" (Some 2) (Util.Json.to_int (member "version"));
  Alcotest.(check (option int)) "files_scanned" (Some r.L.files_scanned)
    (Util.Json.to_int (member "files_scanned"));
  let s = L.summarize r.L.findings in
  let summary = member "summary" in
  let sfield k = Util.Json.to_int (get_exn ("summary." ^ k) (Util.Json.member k summary)) in
  Alcotest.(check (option int)) "summary.total" (Some s.Report.total) (sfield "total");
  Alcotest.(check (option int)) "summary.unwaived" (Some s.Report.unwaived) (sfield "unwaived");
  Alcotest.(check (option int)) "summary.waived" (Some s.Report.waived) (sfield "waived");
  (* Every rule of the catalogue appears in the per-rule block with the
     summarizer's counts. *)
  let rules = member "rules" in
  List.iter
    (fun rule ->
      let id = L.rule_id rule in
      let entry = get_exn ("rules." ^ id) (Util.Json.member id rules) in
      let field k = Util.Json.to_int (get_exn k (Util.Json.member k entry)) in
      let eu, ew = counts r.L.findings id in
      Alcotest.(check (option int)) (id ^ ".unwaived") (Some eu) (field "unwaived");
      Alcotest.(check (option int)) (id ^ ".waived") (Some ew) (field "waived"))
    L.all_rules;
  (* Race and cache counter blocks. *)
  let race = member "race" in
  let rfield k = Util.Json.to_int (get_exn ("race." ^ k) (Util.Json.member k race)) in
  Alcotest.(check (option int)) "race.closures" (Some r.L.race.Report.closures)
    (rfield "closures");
  Alcotest.(check (option int)) "race.proven" (Some r.L.race.Report.proven)
    (rfield "proven");
  Alcotest.(check (option int)) "race.waived_closures"
    (Some r.L.race.Report.waived_closures)
    (rfield "waived_closures");
  let cache = member "cache" in
  Alcotest.(check (option int)) "cache.hits" (Some r.L.cache.Report.hits)
    (Util.Json.to_int (get_exn "hits" (Util.Json.member "hits" cache)));
  Alcotest.(check (option int)) "cache.misses" (Some r.L.cache.Report.misses)
    (Util.Json.to_int (get_exn "misses" (Util.Json.member "misses" cache)));
  (* Timings are wall-clock and only validated as non-negative numbers. *)
  let timings = member "timings_s" in
  List.iter
    (fun k ->
      let v =
        get_exn ("timings_s." ^ k)
          (Util.Json.to_float (get_exn k (Util.Json.member k timings)))
      in
      Alcotest.(check bool) ("timings_s." ^ k ^ " >= 0") true (v >= 0.))
    [ "total"; "typecheck"; "rules"; "cache" ];
  (* Allowlists are recorded so the report shows what was exempt. *)
  let allowlists = member "allowlists" in
  let allow k =
    List.filter_map Util.Json.to_string
      (get_exn ("allowlists." ^ k)
         (Util.Json.to_list (get_exn ("allowlists." ^ k) (Util.Json.member k allowlists))))
  in
  List.iter
    (fun f -> Alcotest.(check bool) ("unsafe allowlist notes " ^ f) true (List.mem f (allow "unsafe")))
    L.default_config.L.unsafe_allowlist;
  List.iter
    (fun f -> Alcotest.(check bool) ("clock allowlist notes " ^ f) true (List.mem f (allow "clock")))
    L.default_config.L.clock_allowlist;
  let items = get_exn "findings list" (Util.Json.to_list (member "findings")) in
  Alcotest.(check int) "findings length" (List.length r.L.findings) (List.length items);
  List.iter
    (fun item ->
      List.iter
        (fun k -> ignore (get_exn ("finding." ^ k) (Util.Json.member k item)))
        [ "rule"; "file"; "line"; "col"; "waived"; "message" ])
    items

(* --- SARIF 2.1.0 ------------------------------------------------------ *)

let test_sarif_report () =
  when_fixtures @@ fun () ->
  let r = Lazy.force fixture_run in
  let json = parse_json "sarif report" (L.sarif_report r.L.findings) in
  Alcotest.(check (option string)) "sarif version" (Some "2.1.0")
    (Util.Json.to_string (get_exn "version" (Util.Json.member "version" json)));
  let runs = get_exn "runs" (Util.Json.to_list (get_exn "runs" (Util.Json.member "runs" json))) in
  let run = match runs with [ r ] -> r | _ -> Alcotest.fail "expected exactly one run" in
  let driver =
    get_exn "driver"
      (Util.Json.member "driver" (get_exn "tool" (Util.Json.member "tool" run)))
  in
  Alcotest.(check (option string)) "driver name" (Some "opera-lint")
    (Util.Json.to_string (get_exn "name" (Util.Json.member "name" driver)));
  let rules =
    get_exn "driver rules" (Util.Json.to_list (get_exn "rules" (Util.Json.member "rules" driver)))
  in
  Alcotest.(check int) "one rule descriptor per catalogue rule"
    (List.length L.all_rules) (List.length rules);
  let results =
    get_exn "results" (Util.Json.to_list (get_exn "results" (Util.Json.member "results" run)))
  in
  Alcotest.(check int) "one result per finding" (List.length r.L.findings)
    (List.length results);
  List.iter2
    (fun (f : L.finding) result ->
      Alcotest.(check (option string)) "ruleId" (Some (L.rule_id f.L.rule))
        (Util.Json.to_string (get_exn "ruleId" (Util.Json.member "ruleId" result)));
      Alcotest.(check (option string)) "level"
        (Some (if f.L.waived then "note" else "error"))
        (Util.Json.to_string (get_exn "level" (Util.Json.member "level" result)));
      (* Waived findings carry an in-source suppression; unwaived must not. *)
      let suppressed =
        match Util.Json.member "suppressions" result with
        | Some (Util.Json.List (_ :: _)) -> true
        | _ -> false
      in
      Alcotest.(check bool) "suppression iff waived" f.L.waived suppressed;
      let loc =
        get_exn "locations"
          (Util.Json.to_list (get_exn "locations" (Util.Json.member "locations" result)))
      in
      Alcotest.(check int) "one location" 1 (List.length loc))
    r.L.findings results

(* --- Source collection ------------------------------------------------ *)

let test_collect_skips_fixtures () =
  when_fixtures @@ fun () ->
  let files = L.collect ~root [ "test" ] in
  Alcotest.(check bool) "finds test sources" true
    (List.exists (fun f -> Filename.basename f = "test_lint.ml") files);
  Alcotest.(check bool) "skips lint_fixtures" true
    (List.for_all
       (fun f -> not (String.starts_with ~prefix:(fixtures ^ "/") f))
       files)

(* --- The repo's own tree must be lint-clean --------------------------- *)

let test_repo_tree_clean () =
  let has d = Sys.file_exists (Filename.concat root d) && Sys.is_directory (Filename.concat root d) in
  if has "lib" && has "tools" then begin
    let r = L.run ~root [ "lib"; "tools" ] in
    let describe =
      String.concat "; "
        (List.filter_map
           (fun (f : L.finding) ->
             if f.L.waived then None
             else Some (Printf.sprintf "%s:%d %s" f.L.file f.L.line (L.rule_id f.L.rule)))
           r.L.findings)
    in
    Alcotest.(check string) "lib/ and tools/ have no unwaived findings" "" describe;
    Alcotest.(check int) "exit 0" 0 (L.exit_code r.L.findings);
    (* The kernel files carry analyzed parallel closures, and every one
       is either proven disjoint or waived — never silently dropped. *)
    let race = r.L.race in
    Alcotest.(check bool) "parallel closures analyzed" true (race.Report.closures > 0);
    let unaccounted =
      race.Report.closures - race.Report.proven - race.Report.waived_closures
    in
    Alcotest.(check int) "every closure proven or waived" 0 unaccounted;
    Alcotest.(check bool) "sanctioned waivers recorded" true
      ((L.summarize r.L.findings).Report.waived >= 1)
  end

let suite =
  [
    Alcotest.test_case "fixture findings per rule" `Quick test_fixture_findings;
    Alcotest.test_case "finding positions and ordering" `Quick test_finding_positions;
    Alcotest.test_case "per-closure race stats" `Quick test_race_stats;
    Alcotest.test_case "proven-disjoint fixture is clean" `Quick test_proven_fixture_is_clean;
    Alcotest.test_case "waived closures counted" `Quick test_waived_fixture_counts_closures;
    Alcotest.test_case "unsafe allowlist" `Quick test_unsafe_allowlist;
    Alcotest.test_case "clock allowlist" `Quick test_clock_allowlist;
    Alcotest.test_case "clean source" `Quick test_clean_source;
    Alcotest.test_case "missing-mli rule and exemptions" `Quick test_missing_mli;
    Alcotest.test_case "executables may print" `Quick test_exe_exemptions;
    Alcotest.test_case "waived-only exits zero" `Quick test_waived_only_exits_zero;
    Alcotest.test_case "waiver on previous line" `Quick test_waiver_on_previous_line;
    Alcotest.test_case "parse error is a finding" `Quick test_parse_error;
    Alcotest.test_case "type error is a finding" `Quick test_type_error;
    Alcotest.test_case "waiver comment parsing" `Quick test_line_waives;
    Alcotest.test_case "incremental cache" `Quick test_incremental_cache;
    Alcotest.test_case "damaged cache entries re-analyze" `Quick test_cache_survives_damage;
    Alcotest.test_case "json report v2 schema" `Quick test_json_report;
    Alcotest.test_case "sarif 2.1.0 schema" `Quick test_sarif_report;
    Alcotest.test_case "collect skips fixtures" `Quick test_collect_skips_fixtures;
    Alcotest.test_case "repo lib/ and tools/ are lint-clean" `Quick test_repo_tree_clean;
  ]
