(* Tests for the opera-lint engine (tools/lint/lint_engine.ml): rule
   catalogue over seeded fixture files, waiver accounting, allowlists,
   JSON-report schema (round-tripped through Util.Json), and exit
   codes. *)

module L = Lint_engine

let fixtures = "lint_fixtures"

let counts findings id =
  match List.assoc_opt id (L.summarize findings).L.per_rule with
  | Some uw -> uw
  | None -> Alcotest.failf "rule %s missing from summary" id

let check_rule findings id expected =
  Alcotest.(check (pair int int)) (id ^ " (unwaived, waived)") expected (counts findings id)

let run_fixtures ?(cfg = L.default_config) () = L.run cfg [ fixtures ]

(* --- Findings per rule over the fixture suite ----------------------- *)

let test_fixture_findings () =
  let files, findings = run_fixtures () in
  Alcotest.(check int) "fixture files scanned" 5 files;
  check_rule findings "exact-float" (2, 2);
  check_rule findings "domain-race" (4, 1);
  check_rule findings "banned-construct" (4, 1);
  check_rule findings "unsafe-index" (2, 1);
  check_rule findings "missing-mli" (1, 4);
  check_rule findings "parse-error" (0, 0);
  let s = L.summarize findings in
  Alcotest.(check int) "total" 22 s.L.total;
  Alcotest.(check int) "unwaived" 13 s.L.unwaived;
  Alcotest.(check int) "waived" 9 s.L.waived;
  Alcotest.(check int) "exit code on seeded violations" 1 (L.exit_code findings)

let test_finding_positions () =
  let _, findings = run_fixtures () in
  (* Every finding names a fixture file with a sane position. *)
  List.iter
    (fun (f : L.finding) ->
      Alcotest.(check bool) "file under fixtures dir" true
        (String.length f.L.file > String.length fixtures
        && String.sub f.L.file 0 (String.length fixtures) = fixtures);
      Alcotest.(check bool) "line >= 1" true (f.L.line >= 1);
      Alcotest.(check bool) "col >= 0" true (f.L.col >= 0))
    findings;
  (* Findings are sorted and free of duplicates. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> L.finding_order a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly sorted" true (sorted findings)

(* --- Allowlists ----------------------------------------------------- *)

let test_race_allowlist () =
  let cfg = { L.default_config with L.race_allowlist = [ "fixture_race.ml" ] } in
  let _, findings = run_fixtures ~cfg () in
  (* The captured-array write is tolerated (disjoint-slice kernels), but
     captured refs / Hashtbl / Metrics stay flagged. *)
  check_rule findings "domain-race" (3, 1)

let test_unsafe_allowlist () =
  let cfg = { L.default_config with L.unsafe_allowlist = [ "fixture_unsafe.ml" ] } in
  let _, findings = run_fixtures ~cfg () in
  check_rule findings "unsafe-index" (0, 0)

let test_no_mli_mode () =
  let cfg = { L.default_config with L.check_mli = false } in
  let _, findings = run_fixtures ~cfg () in
  check_rule findings "missing-mli" (0, 0)

(* --- Single-source behaviours --------------------------------------- *)

let test_clean_source () =
  let findings = L.lint_source L.default_config ~filename:"clean.ml" "let f x = x + 1\n" in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check int) "exit 0" 0 (L.exit_code findings)

let test_waived_only_exits_zero () =
  let src = "let g x = x = 0.0 (* opera-lint: exact *)\n" in
  let findings = L.lint_source L.default_config ~filename:"w.ml" src in
  Alcotest.(check int) "one finding" 1 (List.length findings);
  Alcotest.(check bool) "waived" true (List.hd findings).L.waived;
  Alcotest.(check int) "exit 0 when all waived" 0 (L.exit_code findings)

let test_waiver_on_previous_line () =
  let src = "(* opera-lint: exact *)\nlet g x = x = 0.0\n" in
  let findings = L.lint_source L.default_config ~filename:"w.ml" src in
  Alcotest.(check bool) "waived via preceding line" true (List.hd findings).L.waived

let test_parse_error () =
  let findings = L.lint_source L.default_config ~filename:"broken.ml" "let = (\n" in
  Alcotest.(check int) "one finding" 1 (List.length findings);
  Alcotest.(check bool) "parse-error rule" true ((List.hd findings).L.rule = L.Parse_failure);
  Alcotest.(check int) "exit 1 (unwaivable)" 1 (L.exit_code findings)

(* --- JSON report schema, via Util.Json ------------------------------- *)

let get_exn msg = function Some v -> v | None -> Alcotest.fail msg

let test_json_report () =
  let files, findings = run_fixtures () in
  let text = L.json_report ~files_scanned:files findings in
  (* Deterministic: regeneration is byte-identical. *)
  Alcotest.(check string) "deterministic" text (L.json_report ~files_scanned:files findings);
  let json =
    match Util.Json.parse text with
    | Ok v -> v
    | Error e -> Alcotest.failf "report does not parse: %s" e
  in
  let member k = get_exn ("missing key " ^ k) (Util.Json.member k json) in
  Alcotest.(check (option string)) "tool" (Some "opera-lint") (Util.Json.to_string (member "tool"));
  Alcotest.(check (option int)) "version" (Some 1) (Util.Json.to_int (member "version"));
  Alcotest.(check (option int)) "files_scanned" (Some files) (Util.Json.to_int (member "files_scanned"));
  let summary = member "summary" in
  let s = L.summarize findings in
  let sfield k = Util.Json.to_int (get_exn ("summary." ^ k) (Util.Json.member k summary)) in
  Alcotest.(check (option int)) "summary.total" (Some s.L.total) (sfield "total");
  Alcotest.(check (option int)) "summary.unwaived" (Some s.L.unwaived) (sfield "unwaived");
  Alcotest.(check (option int)) "summary.waived" (Some s.L.waived) (sfield "waived");
  let rules = member "rules" in
  List.iter
    (fun id ->
      let r = get_exn ("rules." ^ id) (Util.Json.member id rules) in
      let u = Util.Json.to_int (get_exn "unwaived" (Util.Json.member "unwaived" r)) in
      let w = Util.Json.to_int (get_exn "waived" (Util.Json.member "waived" r)) in
      let eu, ew = counts findings id in
      Alcotest.(check (option int)) (id ^ ".unwaived") (Some eu) u;
      Alcotest.(check (option int)) (id ^ ".waived") (Some ew) w)
    [ "exact-float"; "domain-race"; "banned-construct"; "unsafe-index"; "missing-mli"; "parse-error" ];
  (* The active R2/R4 allowlists are recorded so the report shows which
     files are exempt, not just which findings survived. *)
  let allowlists = member "allowlists" in
  let allow k =
    List.filter_map Util.Json.to_string
      (get_exn ("allowlists." ^ k) (Util.Json.to_list (get_exn ("allowlists." ^ k) (Util.Json.member k allowlists))))
  in
  List.iter
    (fun f ->
      Alcotest.(check bool) ("race allowlist notes " ^ f) true (List.mem f (allow "race")))
    L.default_config.L.race_allowlist;
  List.iter
    (fun f ->
      Alcotest.(check bool) ("unsafe allowlist notes " ^ f) true (List.mem f (allow "unsafe")))
    L.default_config.L.unsafe_allowlist;
  let items = get_exn "findings list" (Util.Json.to_list (member "findings")) in
  Alcotest.(check int) "findings length" (List.length findings) (List.length items);
  (* Each serialized finding carries the full schema. *)
  List.iter
    (fun item ->
      List.iter
        (fun k -> ignore (get_exn ("finding." ^ k) (Util.Json.member k item)))
        [ "rule"; "file"; "line"; "col"; "waived"; "message" ])
    items

(* --- The repo's own library tree must be lint-clean ------------------ *)

let test_repo_lib_clean () =
  (* Tests run from _build/default/test; the built library sources sit
     one level up.  Guarded so a sandboxed runner skips rather than
     fails. *)
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let _, findings = L.run L.default_config [ "../lib" ] in
    let s = L.summarize findings in
    let describe =
      String.concat "; "
        (List.filter_map
           (fun (f : L.finding) ->
             if f.L.waived then None
             else Some (Printf.sprintf "%s:%d %s" f.L.file f.L.line (L.rule_id f.L.rule)))
           findings)
    in
    Alcotest.(check string) "lib/ has no unwaived findings" "" describe;
    Alcotest.(check int) "exit 0" 0 (L.exit_code findings);
    Alcotest.(check bool) "the sanctioned exact compare is waived" true (s.L.waived >= 1)
  end

let suite =
  [
    Alcotest.test_case "fixture findings per rule" `Quick test_fixture_findings;
    Alcotest.test_case "finding positions and ordering" `Quick test_finding_positions;
    Alcotest.test_case "race allowlist" `Quick test_race_allowlist;
    Alcotest.test_case "unsafe allowlist" `Quick test_unsafe_allowlist;
    Alcotest.test_case "mli check can be disabled" `Quick test_no_mli_mode;
    Alcotest.test_case "clean source" `Quick test_clean_source;
    Alcotest.test_case "waived-only exits zero" `Quick test_waived_only_exits_zero;
    Alcotest.test_case "waiver on previous line" `Quick test_waiver_on_previous_line;
    Alcotest.test_case "parse error is a finding" `Quick test_parse_error;
    Alcotest.test_case "json report schema" `Quick test_json_report;
    Alcotest.test_case "repo lib/ is lint-clean" `Quick test_repo_lib_clean;
  ]
