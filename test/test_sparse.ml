let of_triplets = Linalg.Sparse.of_triplets

let test_of_triplets_dedup () =
  let a = of_triplets ~nrows:2 ~ncols:2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, -1.0); (1, 1, 1.0) ] in
  Alcotest.(check int) "duplicates merged, zeros dropped" 1 (Linalg.Sparse.nnz a);
  Helpers.check_float "summed" 3.0 (Linalg.Sparse.get a 0 0);
  Helpers.check_float "cancelled" 0.0 (Linalg.Sparse.get a 1 1)

let test_dense_roundtrip () =
  let d = Linalg.Dense.of_arrays [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 3.0; 0.0 |] |] in
  let s = Linalg.Sparse.of_dense d in
  Alcotest.(check int) "nnz" 3 (Linalg.Sparse.nnz s);
  Helpers.check_dense "roundtrip" d (Linalg.Sparse.to_dense s)

let test_mul_vec () =
  let s = of_triplets ~nrows:2 ~ncols:3 [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0) ] in
  Helpers.check_vec "mul_vec" [| 7.0; 6.0 |] (Linalg.Sparse.mul_vec s [| 1.0; 2.0; 3.0 |]);
  Helpers.check_vec "mul_vec_t" [| 1.0; 6.0; 2.0 |] (Linalg.Sparse.mul_vec_t s [| 1.0; 2.0 |])

let test_transpose () =
  let rng = Helpers.rng () in
  let s = Helpers.random_sparse_spd rng 20 ~extra_edges:30 in
  let st = Linalg.Sparse.transpose s in
  Helpers.check_dense "transpose matches dense"
    (Linalg.Dense.transpose (Linalg.Sparse.to_dense s))
    (Linalg.Sparse.to_dense st)

let test_add_axpy () =
  let a = of_triplets ~nrows:2 ~ncols:2 [ (0, 0, 1.0); (1, 0, 2.0) ] in
  let b = of_triplets ~nrows:2 ~ncols:2 [ (0, 0, 3.0); (0, 1, 4.0) ] in
  let sum = Linalg.Sparse.add a b in
  Helpers.check_dense "add"
    (Linalg.Dense.of_arrays [| [| 4.0; 4.0 |]; [| 2.0; 0.0 |] |])
    (Linalg.Sparse.to_dense sum);
  let d = Linalg.Sparse.axpy ~alpha:(-1.0) a a in
  Alcotest.(check int) "self-cancel leaves nothing" 0 (Linalg.Sparse.nnz d)

let test_scale_diag () =
  let a = of_triplets ~nrows:3 ~ncols:3 [ (0, 0, 2.0); (1, 1, 3.0); (2, 0, 1.0) ] in
  Helpers.check_vec "diag" [| 2.0; 3.0; 0.0 |] (Linalg.Sparse.diag a);
  let s = Linalg.Sparse.scale 2.0 a in
  Helpers.check_float "scale" 4.0 (Linalg.Sparse.get s 0 0);
  let z = Linalg.Sparse.scale 0.0 a in
  Alcotest.(check int) "scale by zero empties" 0 (Linalg.Sparse.nnz z);
  let d = Linalg.Sparse.of_diag [| 1.0; 2.0 |] in
  Helpers.check_float "of_diag" 2.0 (Linalg.Sparse.get d 1 1)

let test_kron () =
  let c = Linalg.Dense.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 3.0 |] |] in
  let a = of_triplets ~nrows:2 ~ncols:2 [ (0, 0, 1.0); (1, 1, 5.0) ] in
  let k = Linalg.Sparse.kron c a in
  Alcotest.(check (pair int int)) "kron dims" (4, 4) (Linalg.Sparse.dims k);
  (* Expected: [[A, 2A], [0, 3A]] blocks. *)
  Helpers.check_float "block (0,0)" 1.0 (Linalg.Sparse.get k 0 0);
  Helpers.check_float "block (0,1)" 2.0 (Linalg.Sparse.get k 0 2);
  Helpers.check_float "block (0,1) second" 10.0 (Linalg.Sparse.get k 1 3);
  Helpers.check_float "block (1,0) empty" 0.0 (Linalg.Sparse.get k 2 0);
  Helpers.check_float "block (1,1)" 15.0 (Linalg.Sparse.get k 3 3)

let test_kron_dense_reference () =
  let rng = Helpers.rng () in
  let c = Linalg.Dense.init 3 3 (fun _ _ -> Prob.Rng.float_range rng (-1.0) 1.0) in
  let a = Helpers.random_sparse_spd rng 4 ~extra_edges:4 in
  let k = Linalg.Sparse.kron c a in
  let ad = Linalg.Sparse.to_dense a in
  let expected =
    Linalg.Dense.init 12 12 (fun i j ->
        Linalg.Dense.get c (i / 4) (j / 4) *. Linalg.Dense.get ad (i mod 4) (j mod 4))
  in
  Helpers.check_dense ~eps:1e-12 "kron vs dense reference" expected (Linalg.Sparse.to_dense k)

let test_permute_sym () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 10 ~extra_edges:10 in
  let p = Array.init 10 (fun i -> i) in
  Prob.Rng.shuffle rng p;
  let ap = Linalg.Sparse.permute_sym a p in
  let expected =
    Linalg.Dense.init 10 10 (fun i j -> Linalg.Sparse.get a p.(i) p.(j))
  in
  Helpers.check_dense ~eps:0.0 "permute_sym" expected (Linalg.Sparse.to_dense ap)

let test_lower_upper () =
  let a =
    of_triplets ~nrows:2 ~ncols:2 [ (0, 0, 1.0); (0, 1, 2.0); (1, 0, 3.0); (1, 1, 4.0) ]
  in
  Helpers.check_dense "lower"
    (Linalg.Dense.of_arrays [| [| 1.0; 0.0 |]; [| 3.0; 4.0 |] |])
    (Linalg.Sparse.to_dense (Linalg.Sparse.lower a));
  Helpers.check_dense "upper"
    (Linalg.Dense.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 4.0 |] |])
    (Linalg.Sparse.to_dense (Linalg.Sparse.upper a))

let test_symmetry_check () =
  let rng = Helpers.rng () in
  let a = Helpers.random_sparse_spd rng 15 ~extra_edges:20 in
  Alcotest.(check bool) "conductance stamp is symmetric" true (Linalg.Sparse.is_symmetric a);
  let b = of_triplets ~nrows:2 ~ncols:2 [ (0, 1, 1.0) ] in
  Alcotest.(check bool) "asymmetric detected" false (Linalg.Sparse.is_symmetric b)

let test_builder_stamp () =
  let b = Linalg.Sparse_builder.create ~nrows:3 ~ncols:3 () in
  Linalg.Sparse_builder.stamp_conductance b (Some 0) (Some 1) 2.0;
  Linalg.Sparse_builder.stamp_conductance b (Some 1) None 3.0;
  let a = Linalg.Sparse_builder.to_csc b in
  Helpers.check_dense "stamped"
    (Linalg.Dense.of_arrays
       [| [| 2.0; -2.0; 0.0 |]; [| -2.0; 5.0; 0.0 |]; [| 0.0; 0.0; 0.0 |] |])
    (Linalg.Sparse.to_dense a)

let test_builder_growth () =
  let b = Linalg.Sparse_builder.create ~capacity:2 ~nrows:100 ~ncols:100 () in
  for i = 0 to 99 do
    Linalg.Sparse_builder.add b i i 1.0;
    Linalg.Sparse_builder.add b i i 1.0
  done;
  Alcotest.(check int) "triplets kept" 200 (Linalg.Sparse_builder.nnz_triplets b);
  let a = Linalg.Sparse_builder.to_csc b in
  Alcotest.(check int) "compressed" 100 (Linalg.Sparse.nnz a);
  Helpers.check_float "summed" 2.0 (Linalg.Sparse.get a 50 50)

let test_mul_vec_matches_dense =
  let arb = QCheck.(array_of_size (Gen.return 5) (float_range (-3.) 3.)) in
  Helpers.qcheck_case ~count:50 "spmv matches dense" arb (fun x ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng 5 ~extra_edges:5 in
      let y_sparse = Linalg.Sparse.mul_vec a x in
      let y_dense = Linalg.Dense.matvec (Linalg.Sparse.to_dense a) x in
      Linalg.Vec.approx_equal ~tol:1e-9 y_sparse y_dense)

let test_mul_vec_acc () =
  let a =
    of_triplets ~nrows:3 ~ncols:3 [ (0, 0, 2.0); (1, 0, -1.0); (1, 1, 3.0); (2, 2, 0.5) ]
  in
  let x = [| 1.0; 2.0; 4.0 |] in
  let y = [| 10.0; 20.0; 30.0 |] in
  Linalg.Sparse.mul_vec_acc ~alpha:2.0 a x y;
  (* y += 2 * A x with A x = [2; 5; 2] *)
  Helpers.check_vec ~eps:1e-12 "y += alpha Ax" [| 14.0; 30.0; 34.0 |] y;
  (* default alpha = 1 accumulates on top *)
  Linalg.Sparse.mul_vec_acc a x y;
  Helpers.check_vec ~eps:1e-12 "second accumulate" [| 16.0; 35.0; 36.0 |] y;
  (try
     Linalg.Sparse.mul_vec_acc a [| 1.0 |] y;
     Alcotest.fail "short x accepted"
   with Invalid_argument _ -> ());
  (try
     Linalg.Sparse.mul_vec_acc a x [| 1.0 |];
     Alcotest.fail "short y accepted"
   with Invalid_argument _ -> ())

let test_mul_vec_acc_off () =
  let a = of_triplets ~nrows:2 ~ncols:2 [ (0, 0, 1.0); (0, 1, 2.0); (1, 1, -1.0) ] in
  (* x, y are flat block vectors: block 1 of x feeds block 0 of y *)
  let x = [| 9.0; 9.0; 1.0; 3.0 |] in
  let y = [| 1.0; 1.0; 7.0; 7.0 |] in
  Linalg.Sparse.mul_vec_acc_off ~alpha:1.0 a x ~xoff:2 y ~yoff:0;
  (* A [1; 3] = [7; -3] *)
  Helpers.check_vec ~eps:1e-12 "offset blocks" [| 8.0; -2.0; 7.0; 7.0 |] y;
  (try
     Linalg.Sparse.mul_vec_acc_off a x ~xoff:3 y ~yoff:0;
     Alcotest.fail "x overrun accepted"
   with Invalid_argument _ -> ());
  (try
     Linalg.Sparse.mul_vec_acc_off a x ~xoff:0 y ~yoff:3;
     Alcotest.fail "y overrun accepted"
   with Invalid_argument _ -> ())

let test_mul_vec_acc_matches_mul_vec =
  let arb = QCheck.(array_of_size (Gen.return 6) (float_range (-3.) 3.)) in
  Helpers.qcheck_case ~count:50 "mul_vec_acc matches mul_vec" arb (fun x ->
      let rng = Helpers.rng () in
      let a = Helpers.random_sparse_spd rng 6 ~extra_edges:6 in
      let alpha = 1.75 in
      let y = Array.init 6 (fun i -> float_of_int i) in
      let expected =
        let ax = Linalg.Sparse.mul_vec a x in
        Array.init 6 (fun i -> y.(i) +. (alpha *. ax.(i)))
      in
      Linalg.Sparse.mul_vec_acc ~alpha a x y;
      Linalg.Vec.approx_equal ~tol:1e-12 expected y)

(* --- streaming CSC construction (of_stamps) ---------------------------- *)

let test_of_stamps_matches_triplets () =
  let rng = Helpers.rng () in
  let n = 9 in
  let trips =
    List.init 150 (fun _ ->
        (Prob.Rng.int rng n, Prob.Rng.int rng n, Prob.Rng.float_range rng (-2.0) 2.0))
  in
  let reference = of_triplets ~nrows:n ~ncols:n trips in
  let streamed =
    Linalg.Sparse.of_stamps ~nrows:n ~ncols:n (fun stamp ->
        List.iter (fun (i, j, v) -> stamp i j v) trips)
  in
  (* to_csc sorts duplicate runs with an unstable sort while of_stamps
     sums in emission order — equal up to summation rounding, not
     bitwise. *)
  Alcotest.(check bool) "streamed = triplet build" true
    (Linalg.Sparse.approx_equal ~tol:1e-13 reference streamed)

let test_of_stamps_dedup () =
  let a =
    Linalg.Sparse.of_stamps ~nrows:2 ~ncols:2 (fun stamp ->
        stamp 0 0 1.0;
        stamp 0 0 2.0;
        stamp 1 1 (-1.0);
        stamp 1 1 1.0)
  in
  Alcotest.(check int) "duplicates merged, exact zeros dropped" 1 (Linalg.Sparse.nnz a);
  Helpers.check_float "summed" 3.0 (Linalg.Sparse.get a 0 0);
  Helpers.check_float "cancelled" 0.0 (Linalg.Sparse.get a 1 1)

let test_of_stamps_validation () =
  (try
     ignore (Linalg.Sparse.of_stamps ~nrows:2 ~ncols:2 (fun stamp -> stamp 2 0 1.0));
     Alcotest.fail "row out of range accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Linalg.Sparse.of_stamps ~nrows:2 ~ncols:2 (fun stamp -> stamp 0 (-1) 1.0));
     Alcotest.fail "negative column accepted"
   with Invalid_argument _ -> ());
  (* The emit closure runs twice (count, then fill); one that emits a
     different sequence on the second pass must be rejected, not silently
     build a corrupt matrix. *)
  let calls = ref 0 in
  (try
     ignore
       (Linalg.Sparse.of_stamps ~nrows:2 ~ncols:2 (fun stamp ->
            incr calls;
            stamp 0 0 1.0;
            if !calls > 1 then stamp 1 1 1.0));
     Alcotest.fail "unstable emit accepted"
   with Invalid_argument msg ->
     Alcotest.(check bool) "names the replay contract" true
       (String.length msg > 0
       && String.ends_with ~suffix:"emit changed between the counting and fill passes" msg))

let test_of_stamps_metrics () =
  let metrics = Util.Metrics.create () in
  let a =
    Linalg.Sparse.of_stamps ~metrics ~nrows:3 ~ncols:3 (fun stamp ->
        stamp 0 0 1.0;
        stamp 1 1 1.0;
        stamp 1 1 2.0;
        stamp 2 0 4.0)
  in
  Alcotest.(check int) "nnz after merge" 3 (Linalg.Sparse.nnz a);
  Alcotest.(check int) "raw stamps counted" 4 (Util.Metrics.counter metrics "sparse.stream_stamps");
  Alcotest.(check int) "merged nnz counted" 3 (Util.Metrics.counter metrics "sparse.stream_nnz");
  (* 4 raw stamps at 16 bytes + two (ncols+1) int counters *)
  Helpers.check_float "peak bytes observed"
    (float_of_int ((16 * 4) + (8 * 2 * 4)))
    (Util.Metrics.total metrics "sparse.stream_peak_bytes")

let suite =
  [
    Alcotest.test_case "of_triplets dedup" `Quick test_of_triplets_dedup;
    Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
    Alcotest.test_case "mul_vec" `Quick test_mul_vec;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "add/axpy" `Quick test_add_axpy;
    Alcotest.test_case "scale/diag" `Quick test_scale_diag;
    Alcotest.test_case "kron blocks" `Quick test_kron;
    Alcotest.test_case "kron vs dense" `Quick test_kron_dense_reference;
    Alcotest.test_case "permute_sym" `Quick test_permute_sym;
    Alcotest.test_case "lower/upper" `Quick test_lower_upper;
    Alcotest.test_case "symmetry check" `Quick test_symmetry_check;
    Alcotest.test_case "builder stamping" `Quick test_builder_stamp;
    Alcotest.test_case "builder growth" `Quick test_builder_growth;
    test_mul_vec_matches_dense;
    Alcotest.test_case "mul_vec_acc" `Quick test_mul_vec_acc;
    Alcotest.test_case "mul_vec_acc_off" `Quick test_mul_vec_acc_off;
    test_mul_vec_acc_matches_mul_vec;
    Alcotest.test_case "of_stamps = of_triplets" `Quick test_of_stamps_matches_triplets;
    Alcotest.test_case "of_stamps dedup" `Quick test_of_stamps_dedup;
    Alcotest.test_case "of_stamps validation" `Quick test_of_stamps_validation;
    Alcotest.test_case "of_stamps metrics" `Quick test_of_stamps_metrics;
  ]
