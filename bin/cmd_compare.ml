(* opera compare — OPERA vs Monte Carlo on one grid (a Table-1 row). *)

let run argv =
  let nodes = ref 2000
  and order = ref 2
  and steps = ref 24
  and step_ps = ref 125.0
  and samples = ref 300
  and seed = ref 7
  and solver = ref (Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 })
  and st_candidates = ref 0
  and st_seed = ref 1
  and domains = ref 0
  and policy = ref Opera.Galerkin.Warn
  and warm_start = ref true
  and metrics_out = ref None
  and log_level = ref Util.Log.Warn in
  let args =
    [
      Cli_common.nodes_arg nodes;
      Cli_common.order_arg order;
      Cli_common.steps_arg steps;
      Cli_common.step_ps_arg step_ps;
      Cli_common.samples_arg samples;
      Cli_common.seed_arg seed;
      Cli_common.solver_arg solver;
      Cli_common.st_candidates_arg st_candidates;
      Cli_common.st_seed_arg st_seed;
      Cli_common.domains_arg domains;
      Cli_common.policy_arg policy;
      Cli_common.warm_start_arg warm_start;
      Cli_common.metrics_out_arg metrics_out;
      Cli_common.log_level_arg log_level;
    ]
  in
  Cli_common.dispatch ~prog:"opera compare"
    ~summary:"OPERA vs Monte Carlo on one grid (a Table-1 row)." ~args ~argv
  @@ fun _ ->
  Cli_common.with_health ~log_level:!log_level ~metrics_out:!metrics_out @@ fun () ->
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default !nodes in
  let config =
    {
      Opera.Driver.order = !order;
      h = !step_ps *. 1e-12;
      steps = !steps;
      mc_samples = !samples;
      seed = Int64.of_int !seed;
      solver = Cli_common.apply_st_knobs !solver ~candidates:!st_candidates ~seed:!st_seed;
      ordering = Linalg.Ordering.Nested_dissection;
      probes = [||];
      domains = !domains;
      policy = !policy;
      warm_start = !warm_start;
    }
  in
  let outcome = Opera.Driver.run_grid config spec Opera.Varmodel.paper_default in
  let table = Util.Table.create Opera.Compare.header in
  Util.Table.add_row table
    (Opera.Compare.row_strings outcome.Opera.Driver.label outcome.Opera.Driver.report);
  print_string (Util.Table.render table);
  Cli_common.print_health outcome.Opera.Driver.galerkin_stats
