(* opera serve — the long-running analysis service.

   Listens on a Unix-domain socket (and optionally loopback TCP),
   speaks line-delimited JSON (see Service.Protocol), and runs batch
   submissions through the scenario engine with result-registry replay:
   with --cache-dir, a batch that was already served streams back
   bitwise with zero factorizations and zero solves.  --cache-max-bytes
   and --max-results bound the disk footprint for indefinite uptime;
   SIGTERM/SIGINT (or an {"op":"shutdown"} request) drain the queue and
   exit cleanly. *)

let run argv =
  let listen = ref "opera.sock"
  and tcp = ref None
  and cache_dir = ref None
  and cache_max_bytes = ref None
  and max_results = ref None
  and gc_every = ref 32
  and queue = ref 64
  and jobs_parallel = ref 0
  and domains = ref 0
  and warm_start = ref true
  and metrics_out = ref None
  and log_level = ref Util.Log.Warn in
  let args =
    [
      Util.Args.string [ "--listen" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to serve on (default opera.sock); removed again on \
              shutdown."
        listen;
      Util.Args.string_opt [ "--tcp" ] ~docv:"PORT"
        ~doc:"Also listen on 127.0.0.1:PORT (loopback only)." tcp;
      Cli_common.cache_dir_arg cache_dir;
      Util.Args.string_opt [ "--cache-max-bytes" ] ~docv:"SIZE"
        ~doc:"Keep the cache dir's artifacts under SIZE bytes (K/M/G suffixes allowed) by \
              evicting least-recently-used files after each request.  Needs --cache-dir."
        cache_max_bytes;
      Util.Args.string_opt [ "--max-results" ] ~docv:"N"
        ~doc:"Bound the results journal to the N most recently used entries, enforced every \
              --gc-every requests.  Needs --cache-dir."
        max_results;
      Util.Args.int [ "--gc-every" ]
        ~doc:"Run the periodic registry GC every N completed requests (default 32; 0 \
              disables)."
        gc_every;
      Util.Args.int [ "--queue" ]
        ~doc:"Admission queue capacity; a submission arriving with the queue full is \
              rejected with a queue-full error (default 64)."
        queue;
      Util.Args.int [ "--jobs-parallel" ]
        ~doc:"Jobs in flight at once per batch (0 = the OPERA_DOMAINS environment variable, \
              default sequential); inner solver parallelism drops to 1 when > 1."
        jobs_parallel;
      Cli_common.domains_arg domains;
      Cli_common.metrics_out_arg metrics_out;
      Cli_common.warm_start_arg warm_start;
      Cli_common.log_level_arg log_level;
    ]
  in
  Cli_common.dispatch ~prog:"opera serve"
    ~summary:
      "Serve analysis batches over a Unix-domain socket (JSONL protocol): submissions run \
       through the scenario engine with result-registry replay, so repeated batches stream \
       back bitwise without factoring or solving anything."
    ~args ~argv
  @@ fun _positionals ->
  let usage_error msg =
    Printf.eprintf "opera serve: %s\nTry 'opera serve --help'.\n" msg;
    2
  in
  let tcp_port =
    match !tcp with
    | None -> Ok None
    | Some s -> (
        match int_of_string_opt s with
        | Some p when p >= 1 && p <= 65535 -> Ok (Some p)
        | Some p -> Error (Printf.sprintf "--tcp %d: port out of range [1, 65535]" p)
        | None -> Error (Printf.sprintf "--tcp %s: expected a port number" s))
  in
  let max_bytes =
    match !cache_max_bytes with
    | None -> Ok None
    | Some s -> Result.map Option.some (Cli_common.parse_bytes s)
  in
  let max_entries =
    match !max_results with
    | None -> Ok None
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok (Some n)
        | Some _ | None -> Error (Printf.sprintf "--max-results %s: expected a count >= 0" s))
  in
  match (tcp_port, max_bytes, max_entries) with
  | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> usage_error msg
  | Ok _, Ok (Some _), _ when !cache_dir = None ->
      usage_error "--cache-max-bytes needs --cache-dir (the artifacts live there)"
  | Ok _, Ok _, Ok (Some _) when !cache_dir = None ->
      usage_error "--max-results needs --cache-dir (the journal lives there)"
  | Ok tcp, Ok cache_max_bytes, Ok max_results -> (
      let config =
        {
          Service.Server.listen = !listen;
          tcp;
          cache_dir = !cache_dir;
          cache_max_bytes;
          max_results;
          gc_every = !gc_every;
          queue_capacity = !queue;
          jobs_parallel = !jobs_parallel;
          domains = !domains;
          warm_start = !warm_start;
          metrics = Util.Metrics.global;
          handle_signals = true;
        }
      in
      try
        Cli_common.with_health ~log_level:!log_level ~metrics_out:!metrics_out @@ fun () ->
        Util.Log.infof "serve: listening on %s%s" !listen
          (match tcp with Some p -> Printf.sprintf " and 127.0.0.1:%d" p | None -> "");
        Service.Server.run config
      with Service.Server.Invalid_config msg -> usage_error msg)
