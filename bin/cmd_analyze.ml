(* opera analyze — stochastic (OPERA) analysis of one grid.

   The single-run path is a one-job batch: the job goes through
   Scenario.Engine (so --cache-dir warms and reuses the same artifact
   store as [opera batch]) and the rich report — worst-node table, Sobol
   variance decomposition, yield bound, CSV / SVG exports — is printed
   from the returned stochastic response. *)

let run argv =
  let netlist = ref None
  and nodes = ref 2000
  and order = ref 2
  and steps = ref 24
  and step_ps = ref 125.0
  and solver = ref (Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 })
  and st_candidates = ref 0
  and st_seed = ref 1
  and domains = ref 0
  and policy = ref Opera.Galerkin.Warn
  and precond = ref Linalg.Precond.Cholesky
  and warm_start = ref true
  and metrics_out = ref None
  and log_level = ref Util.Log.Warn
  and cache_dir = ref None
  and csv = ref None
  and svg = ref None
  and budget = ref None in
  let args =
    [
      Cli_common.netlist_arg netlist;
      Cli_common.nodes_arg nodes;
      Cli_common.order_arg order;
      Cli_common.steps_arg steps;
      Cli_common.step_ps_arg step_ps;
      Cli_common.solver_arg solver;
      Cli_common.st_candidates_arg st_candidates;
      Cli_common.st_seed_arg st_seed;
      Cli_common.domains_arg domains;
      Cli_common.policy_arg policy;
      Cli_common.precond_arg precond;
      Cli_common.warm_start_arg warm_start;
      Cli_common.cache_dir_arg cache_dir;
      Cli_common.metrics_out_arg metrics_out;
      Cli_common.log_level_arg log_level;
      Util.Args.string_opt [ "--csv" ] ~docv:"FILE" ~doc:"Export probe trajectories as CSV." csv;
      Util.Args.string_opt [ "--svg" ] ~docv:"FILE" ~doc:"Export drop/sigma heat maps as SVG." svg;
      Util.Args.value [ "--budget" ] ~docv:"PCT"
        ~doc:"Drop budget as a percentage of VDD for yield reporting."
        (fun s ->
          match float_of_string_opt (String.trim s) with
          | Some v ->
              budget := Some v;
              Ok ()
          | None -> Error (Printf.sprintf "expected a number, got %S" s));
    ]
  in
  Cli_common.dispatch ~prog:"opera analyze" ~summary:"Stochastic (OPERA) analysis of a grid." ~args
    ~argv
  @@ fun _ ->
  Cli_common.with_health ~log_level:!log_level ~metrics_out:!metrics_out @@ fun () ->
  let circuit, vdd, spec = Cli_common.load_circuit !netlist !nodes in
  Printf.printf "circuit: %s\n" (Powergrid.Circuit.stats circuit);
  Printf.printf "variations: %s\n%!" (Opera.Varmodel.describe Opera.Varmodel.paper_default);
  let job =
    {
      Scenario.Job.name = "analyze";
      source =
        (match !netlist with
        | Some path -> Scenario.Job.Netlist path
        | None -> Scenario.Job.Generated { nodes = !nodes });
      analysis = Scenario.Job.Transient;
      order = !order;
      h = !step_ps *. 1e-12;
      steps = !steps;
      solver = Cli_common.apply_st_knobs !solver ~candidates:!st_candidates ~seed:!st_seed;
      policy = !policy;
      sigma_scale = 1.0;
      drain_scale = 1.0;
      leak_scale = 1.0;
      probe = None;
    }
  in
  let config =
    {
      Scenario.Engine.default_config with
      cache_dir = !cache_dir;
      domains = !domains;
      warm_start = !warm_start;
      precond = !precond;
    }
  in
  let results, summary = Scenario.Engine.run ~config [| job |] in
  let response =
    match results.(0).Scenario.Engine.response with
    | Some r -> r
    | None -> assert false (* Transient jobs always carry a response *)
  in
  let steps = !steps and step_ps = !step_ps in
  Printf.printf "\nsolved: %s\n" (Scenario.Engine.summary_line summary);
  let probe =
    match spec with
    | Some s -> Powergrid.Grid_gen.center_node s
    | None -> Powergrid.Circuit.node_count circuit / 2
  in
  (* Worst nodes by mu + 3 sigma drop over time. *)
  let n = response.Opera.Response.n in
  let guarded = Array.make n 0.0 in
  let nominal = Array.make n 0.0 in
  for step = 1 to steps do
    for node = 0 to n - 1 do
      let mu = Opera.Response.mean_at response ~step ~node in
      let sd = Opera.Response.std_at response ~step ~node in
      nominal.(node) <- Float.max nominal.(node) (vdd -. mu);
      guarded.(node) <- Float.max guarded.(node) (vdd -. mu +. (3.0 *. sd))
    done
  done;
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare guarded.(b) guarded.(a)) idx;
  let table =
    Util.Table.create
      [
        ("node", Util.Table.Right); ("mu drop (mV)", Util.Table.Right);
        ("+3sigma (mV)", Util.Table.Right); ("mu+3sigma (%VDD)", Util.Table.Right);
      ]
  in
  for r = 0 to Int.min 9 (n - 1) do
    let v = idx.(r) in
    Util.Table.add_row table
      [
        string_of_int v;
        Printf.sprintf "%.2f" (1e3 *. nominal.(v));
        Printf.sprintf "%.2f" (1e3 *. (guarded.(v) -. nominal.(v)));
        Printf.sprintf "%.2f" (100.0 *. guarded.(v) /. vdd);
      ]
  done;
  print_newline ();
  print_string (Util.Table.render table);
  (* Which process parameter drives the probe's variability?  The
     explicit expansion answers directly (Sobol decomposition). *)
  let best_step = ref 1 in
  for step = 2 to steps do
    if
      Opera.Response.variance_at response ~step ~node:probe
      > Opera.Response.variance_at response ~step:!best_step ~node:probe
    then best_step := step
  done;
  let pce = Opera.Response.pce_at response ~node:probe ~step:!best_step in
  if Polychaos.Pce.variance pce > 0.0 then begin
    let vm = Opera.Varmodel.paper_default in
    let names =
      match vm.Opera.Varmodel.mode with
      | Opera.Varmodel.Combined -> [| "xiG"; "xiL" |]
      | Opera.Varmodel.Separate -> [| "xiW"; "xiT"; "xiL" |]
      | Opera.Varmodel.Grouped_wires k ->
          Array.init (k + 1) (fun d -> if d = k then "xiL" else Printf.sprintf "xiG_%d" d)
    in
    Printf.printf "\nvariance decomposition at probe node %d (t = %g ps):\n%s" probe
      (float_of_int !best_step *. step_ps)
      (Polychaos.Sobol.report ~names pce)
  end;
  (* Yield against a drop budget (Gaussian union bound per step). *)
  (match !budget with
  | None -> ()
  | Some pct ->
      let budget = pct /. 100.0 *. vdd in
      let worst_p = ref 0.0 and worst_step = ref 1 and worst_node = ref 0 in
      for step = 1 to steps do
        let p, node = Opera.Yield.grid_failure_probability_gaussian response ~step ~budget in
        if p > !worst_p then begin
          worst_p := p;
          worst_step := step;
          worst_node := node
        end
      done;
      Printf.printf
        "\nyield vs %.1f%%-VDD drop budget: worst-step failure probability %.2e\n\
         (union bound; step %d, dominated by node %d)\n"
        pct !worst_p !worst_step !worst_node);
  (match !csv with
  | None -> ()
  | Some path ->
      Opera.Response.export_csv response path;
      Printf.printf "\nwrote probe trajectories to %s\n" path);
  match (!svg, spec) with
  | Some _, None -> prerr_endline "note: --svg needs a generated grid (geometry unknown for netlists)"
  | Some path, Some spec ->
      (* worst-over-time drop and sigma maps of the bottom layer *)
      let drops = Array.make n 0.0 and sigmas = Array.make n 0.0 in
      for step = 1 to steps do
        for node = 0 to n - 1 do
          drops.(node) <-
            Float.max drops.(node) (vdd -. Opera.Response.mean_at response ~step ~node);
          sigmas.(node) <- Float.max sigmas.(node) (Opera.Response.std_at response ~step ~node)
        done
      done;
      Powergrid.Svg_map.save path spec
        ~values:(Array.map (fun d -> 1e3 *. d) drops)
        ~title:"worst mean IR drop" ~unit_label:"mV" ();
      let sigma_path = Filename.remove_extension path ^ "_sigma" ^ Filename.extension path in
      Powergrid.Svg_map.save sigma_path spec
        ~values:(Array.map (fun s -> 1e3 *. s) sigmas)
        ~title:"worst sigma of the voltage" ~unit_label:"mV" ();
      Printf.printf "wrote %s and %s\n" path sigma_path
  | None, _ -> ()
