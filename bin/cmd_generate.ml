(* opera generate — write a synthetic power-grid netlist. *)

let run argv =
  let nodes = ref 2000 in
  let out = ref "grid.sp" in
  let args =
    [
      Cli_common.nodes_arg nodes;
      Util.Args.string [ "--out"; "-o" ] ~docv:"FILE" ~doc:"Output netlist file." out;
    ]
  in
  Cli_common.dispatch ~prog:"opera generate" ~summary:"Generate a synthetic power-grid netlist."
    ~args ~argv
  @@ fun _ ->
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default !nodes in
  let circuit = Powergrid.Grid_gen.generate spec in
  Powergrid.Netlist.write_file !out ~title:(Powergrid.Grid_spec.describe spec) circuit;
  Printf.printf "wrote %s: %s\n" !out (Powergrid.Circuit.stats circuit);
  0
