(* opera batch — run a JSON batch of jobs through the scenario engine.

   Jobs sharing an operator signature share one factorization; with
   --cache-dir the setup artifacts (orderings, Cholesky factors,
   triple-product tensors) persist across runs.  The JSONL stream goes
   to stdout (or --stream-out FILE) and is byte-identical across cold
   runs, warm runs and any --jobs-parallel; the human summary goes to
   stderr. *)

let run argv =
  let cache_dir = ref None
  and jobs_parallel = ref 0
  and domains = ref 0
  and stream_out = ref None
  and dry_run = ref false
  and metrics_out = ref None
  and warm_start = ref true
  and precond = ref Linalg.Precond.Cholesky
  and resume = ref false
  and shard_spec = ref None
  and gc_results = ref false
  and cache_max_bytes = ref None
  and log_level = ref Util.Log.Warn in
  let args =
    [
      Cli_common.cache_dir_arg cache_dir;
      Util.Args.int [ "--jobs-parallel" ]
        ~doc:"Jobs in flight at once (0 = the OPERA_DOMAINS environment variable, default \
              sequential); inner solver parallelism drops to 1 when > 1."
        jobs_parallel;
      Cli_common.domains_arg domains;
      Util.Args.string_opt [ "--stream-out" ] ~docv:"FILE"
        ~doc:"Write the JSONL result stream to FILE instead of stdout." stream_out;
      Util.Args.flag [ "--dry-run" ]
        ~doc:"Only parse and plan: print the job groups sharing a factorization, solve nothing."
        dry_run;
      Util.Args.flag [ "--resume" ]
        ~doc:"Skip jobs whose results are journaled in --cache-dir and replay their records \
              bitwise; everything else runs (and journals) as usual."
        resume;
      Util.Args.string_opt [ "--shard" ] ~docv:"I/K"
        ~doc:"Run only shard I of K (0 <= I < K): jobs are partitioned deterministically by \
              their position in JOBS.json, so K processes sharing one --cache-dir cover the \
              batch exactly once."
        shard_spec;
      Util.Args.flag [ "--gc-results" ]
        ~doc:"After the run, drop journaled results in --cache-dir that belong to no job of \
              this batch (factors and tensors are kept)."
        gc_results;
      Util.Args.string_opt [ "--cache-max-bytes" ] ~docv:"SIZE"
        ~doc:"After the run, evict least-recently-used artifacts from --cache-dir until its \
              total size is under SIZE bytes (K/M/G suffixes allowed)."
        cache_max_bytes;
      Cli_common.metrics_out_arg metrics_out;
      Cli_common.warm_start_arg warm_start;
      Cli_common.precond_arg precond;
      Cli_common.log_level_arg log_level;
    ]
  in
  Cli_common.dispatch ~prog:"opera batch"
    ~summary:
      "Run a batch of analysis jobs from a JSON file; jobs sharing a grid and solver route share \
       one factorization, and --cache-dir persists the setup artifacts across runs."
    ~positional:"JOBS.json" ~args ~argv
  @@ fun positionals ->
  match positionals with
  | [] ->
      Printf.eprintf "opera batch: missing JOBS.json argument\nTry 'opera batch --help'.\n";
      2
  | _ :: _ :: _ ->
      Printf.eprintf "opera batch: expected exactly one JOBS.json argument\nTry 'opera batch --help'.\n";
      2
  | [ path ] -> (
      let usage_error msg =
        Printf.eprintf "opera batch: %s\nTry 'opera batch --help'.\n" msg;
        2
      in
      let shard =
        match !shard_spec with
        | None -> Ok None
        | Some s -> Result.map Option.some (Cli_common.parse_shard s)
      in
      let max_bytes =
        match !cache_max_bytes with
        | None -> Ok None
        | Some s -> Result.map Option.some (Cli_common.parse_bytes s)
      in
      match (shard, max_bytes) with
      | Error msg, _ | _, Error msg -> usage_error msg
      | Ok _, _ when !resume && !cache_dir = None ->
          usage_error "--resume needs --cache-dir (the journal lives there)"
      | Ok _, _ when !gc_results && !cache_dir = None ->
          usage_error "--gc-results needs --cache-dir (the journal lives there)"
      | Ok _, Ok (Some _) when !cache_dir = None ->
          usage_error "--cache-max-bytes needs --cache-dir (the artifacts live there)"
      | Ok shard, Ok max_bytes -> (
          let shard_filter jobs =
            match shard with
            | None -> jobs
            | Some (i, k) ->
                Array.to_list jobs
                |> List.filteri (fun idx _ -> Scenario.Engine.shard_of idx ~shards:k = i)
                |> Array.of_list
          in
          match Scenario.Job.batch_of_file path with
          | Error msg ->
              Printf.eprintf "opera batch: %s: %s\n" path msg;
              2
          | Ok jobs when !dry_run ->
              let total = Array.length jobs in
              let jobs = shard_filter jobs in
              let groups = Scenario.Engine.plan jobs in
              (match shard with
              | Some (i, k) ->
                  Printf.printf "shard %d/%d: %d of %d jobs in %d groups:\n" i k
                    (Array.length jobs) total (Array.length groups)
              | None -> Printf.printf "%d jobs in %d groups:\n" total (Array.length groups));
              Array.iteri
                (fun g members ->
                  let names =
                    members |> Array.to_list
                    |> List.map (fun i -> jobs.(i).Scenario.Job.name)
                    |> String.concat ", "
                  in
                  Printf.printf "  group %d: %d job%s sharing one operator: %s\n" g
                    (Array.length members)
                    (if Array.length members = 1 then "" else "s")
                    names)
                groups;
              0
          | Ok jobs -> (
              let solve () =
                Cli_common.with_health ~log_level:!log_level ~metrics_out:!metrics_out
                @@ fun () ->
                let config =
                  {
                    Scenario.Engine.cache_dir = !cache_dir;
                    jobs_parallel = !jobs_parallel;
                    domains = !domains;
                    metrics = Util.Metrics.global;
                    warm_start = !warm_start;
                    precond = !precond;
                    resume = !resume;
                    shard;
                  }
                in
                let summary =
                  match !stream_out with
                  | None -> Scenario.Engine.run_jsonl ~config stdout jobs
                  | Some file ->
                      let oc = open_out file in
                      Fun.protect
                        ~finally:(fun () -> close_out oc)
                        (fun () -> Scenario.Engine.run_jsonl ~config oc jobs)
                in
                prerr_endline (Scenario.Engine.summary_line summary);
                if !gc_results then begin
                  (* Keep every job of the batch FILE, not just this
                     shard's slice — cooperating shard processes must not
                     collect each other's journal entries. *)
                  let registry = Scenario.Registry.create ~dir:!cache_dir () in
                  let removed = Scenario.Registry.gc registry ~keep:jobs in
                  if removed > 0 then
                    Printf.eprintf "gc: dropped %d stale journal entr%s\n" removed
                      (if removed = 1 then "y" else "ies")
                end;
                match (max_bytes, !cache_dir) with
                | Some cap, Some dir ->
                    let removed = Scenario.Store.evict_dir ~dir ~max_bytes:cap () in
                    if removed > 0 then
                      Printf.eprintf "evict: dropped %d artifact(s) over the %d-byte budget\n"
                        removed cap
                | _ -> ()
              in
              try solve ()
              with Scenario.Engine.Invalid_batch msg ->
                (* The engine refuses before any job runs (e.g. a probe out
                   of range for its grid) — same discipline as a bad flag. *)
                Printf.eprintf "opera batch: %s: %s\nTry 'opera batch --help'.\n" path msg;
                2)))
