(* opera mc — Monte-Carlo baseline analysis. *)

let run argv =
  let netlist = ref None
  and nodes = ref 2000
  and steps = ref 24
  and step_ps = ref 125.0
  and samples = ref 300
  and seed = ref 7 in
  let args =
    [
      Cli_common.netlist_arg netlist;
      Cli_common.nodes_arg nodes;
      Cli_common.steps_arg steps;
      Cli_common.step_ps_arg step_ps;
      Cli_common.samples_arg samples;
      Cli_common.seed_arg seed;
    ]
  in
  Cli_common.dispatch ~prog:"opera mc" ~summary:"Monte-Carlo baseline analysis." ~args ~argv
  @@ fun _ ->
  let circuit, vdd, _ = Cli_common.load_circuit !netlist !nodes in
  Printf.printf "circuit: %s\n%!" (Powergrid.Circuit.stats circuit);
  let model = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let h = !step_ps *. 1e-12 in
  let steps = !steps and samples = !samples in
  let cfg =
    { (Opera.Monte_carlo.default_config ~h ~steps) with
      Opera.Monte_carlo.samples; seed = Int64.of_int !seed }
  in
  let result = Opera.Monte_carlo.run model cfg in
  Printf.printf "%d samples in %.2f s (%.1f ms/sample)\n" samples
    result.Opera.Monte_carlo.elapsed_seconds
    (1e3 *. result.Opera.Monte_carlo.elapsed_seconds /. float_of_int samples);
  (* Worst node at the final step. *)
  let n = result.Opera.Monte_carlo.n in
  let worst = ref 0 in
  for node = 1 to n - 1 do
    if
      Opera.Monte_carlo.mean_at result ~step:steps ~node
      < Opera.Monte_carlo.mean_at result ~step:steps ~node:!worst
    then worst := node
  done;
  Printf.printf "worst node %d at final step: mean %.6f V, sigma %.3e V\n" !worst
    (Opera.Monte_carlo.mean_at result ~step:steps ~node:!worst)
    (Opera.Monte_carlo.std_at result ~step:steps ~node:!worst);
  0
