(* opera walk — localized single-node DC estimate by random walks. *)

let run argv =
  let netlist = ref None and nodes = ref 2000 and walks = ref 5000 and seed = ref 7 in
  let args =
    [
      Cli_common.netlist_arg netlist;
      Cli_common.nodes_arg nodes;
      Util.Args.int [ "--walks" ] ~doc:"Number of random walks." walks;
      Cli_common.seed_arg seed;
    ]
  in
  Cli_common.dispatch ~prog:"opera walk"
    ~summary:"Localized single-node DC estimate by random walks." ~args ~argv
  @@ fun _ ->
  let circuit, _, spec = Cli_common.load_circuit !netlist !nodes in
  let a = Powergrid.Mna.assemble circuit in
  let time = 0.3e-9 in
  let node =
    match spec with
    | Some s -> Powergrid.Grid_gen.center_node s
    | None -> Powergrid.Circuit.node_count circuit / 2
  in
  let walks = !walks in
  let w = Powergrid.Random_walk.prepare a ~time in
  let rng = Prob.Rng.create ~seed:(Int64.of_int !seed) () in
  let (est, se), t = Util.Timer.time (fun () -> Powergrid.Random_walk.estimate w rng ~node ~walks) in
  Printf.printf "node %d at t = %.3g ns: %.6f V +- %.2e (%d walks, %.3f s)\n" node (time *. 1e9)
    est se walks t;
  let exact = Powergrid.Dc.solve_at a time in
  Printf.printf "direct solve reference: %.6f V (error %.2e)\n" exact.(node)
    (Float.abs (est -. exact.(node)));
  0
