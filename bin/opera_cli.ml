(* opera — command-line front end for the OPERA stochastic power-grid
   analyzer.

     opera generate  --nodes 5000 --out grid.sp
     opera analyze   --netlist grid.sp            (or --nodes 5000)
     opera mc        --nodes 5000 --samples 500
     opera compare   --nodes 5000 --samples 300   (a Table-1 row)
     opera special   --nodes 2000 --regions 4     (Sec. 5.1 special case)
*)

open Cmdliner

(* ---- shared arguments ------------------------------------------------ *)

let nodes_arg =
  let doc = "Target node count of a generated synthetic grid." in
  Arg.(value & opt int 2000 & info [ "nodes" ] ~docv:"N" ~doc)

let netlist_arg =
  let doc = "Analyze this SPICE-subset netlist instead of a generated grid." in
  Arg.(value & opt (some file) None & info [ "netlist" ] ~docv:"FILE" ~doc)

let order_arg =
  let doc = "Polynomial-chaos expansion order (the paper uses 2-3)." in
  Arg.(value & opt int 2 & info [ "order" ] ~docv:"P" ~doc)

let steps_arg =
  let doc = "Number of transient steps." in
  Arg.(value & opt int 24 & info [ "steps" ] ~doc)

let step_ps_arg =
  let doc = "Time step in picoseconds." in
  Arg.(value & opt float 125.0 & info [ "step-ps" ] ~doc)

let samples_arg =
  let doc = "Monte-Carlo sample count." in
  Arg.(value & opt int 300 & info [ "samples" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~doc)

let solver_arg =
  let doc =
    "Augmented-system solver: $(b,direct), $(b,pcg) (assembled, mean-block-preconditioned CG) \
     or $(b,matrix-free) (same CG but the augmented operator is applied from the per-rank \
     matrices and the triple-product coupling, never assembled)."
  in
  Arg.(value
       & opt (enum [ ("direct", `Direct); ("pcg", `Pcg); ("matrix-free", `Matrix_free) ]) `Pcg
       & info [ "solver" ] ~doc)

let domains_arg =
  let doc =
    "Domain count for the block-parallel solver paths (0 = use the OPERA_DOMAINS environment \
     variable, default sequential)."
  in
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N" ~doc)

let policy_arg =
  let doc =
    "What an iterative solve does when it exhausts its iteration budget without reaching the \
     tolerance: $(b,fail) (abort with exit code 3), $(b,warn) (log and keep the approximate \
     iterate) or $(b,fallback) (re-solve with the assembled direct factor)."
  in
  Arg.(value
       & opt
           (enum
              [
                ("fail", Opera.Galerkin.Fail); ("warn", Opera.Galerkin.Warn);
                ("fallback", Opera.Galerkin.Fallback);
              ])
           Opera.Galerkin.Warn
       & info [ "solver-policy" ] ~docv:"POLICY" ~doc)

let metrics_out_arg =
  let doc = "Write the run's metrics registry (counters + phase timers) to FILE as JSON." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc = "Diagnostic verbosity on stderr: $(b,error), $(b,warn), $(b,info) or $(b,debug)." in
  Arg.(value
       & opt
           (enum
              [
                ("error", Util.Log.Error); ("warn", Util.Log.Warn); ("info", Util.Log.Info);
                ("debug", Util.Log.Debug);
              ])
           Util.Log.Warn
       & info [ "log-level" ] ~docv:"LEVEL" ~doc)

(* Shared health harness: set verbosity, run the command body, persist the
   metrics registry (also when the run aborts), and map Solver_diverged to
   a dedicated exit code so scripts can distinguish "diverged under
   --solver-policy fail" (3) from argument errors (124/125). *)
let with_health ~log_level ~metrics_out f =
  Util.Log.set_level log_level;
  let write_metrics () =
    match metrics_out with
    | None -> ()
    | Some path ->
        Util.Metrics.write_file Util.Metrics.global path;
        Printf.printf "wrote metrics to %s\n" path
  in
  match f () with
  | () -> write_metrics ()
  | exception Opera.Galerkin.Solver_diverged (context, report) ->
      Printf.eprintf "opera: solver diverged at %s\n  %s\n" context
        (Linalg.Solve_report.summary report);
      write_metrics ();
      exit 3

let print_health (stats : Opera.Galerkin.stats) =
  let agg = stats.Opera.Galerkin.health in
  if agg.Linalg.Solve_report.solves > 0 then
    Printf.printf "solver health: %s%s\n"
      (Linalg.Solve_report.agg_summary agg)
      (if Linalg.Solve_report.agg_healthy agg then "" else "  ** UNHEALTHY **")

let vdd_default = 1.2

let load_circuit netlist nodes =
  match netlist with
  | Some path ->
      let parsed = Powergrid.Netlist.parse_file path in
      (parsed.Powergrid.Netlist.circuit, vdd_default, None)
  | None ->
      let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes in
      (Powergrid.Grid_gen.generate spec, spec.Powergrid.Grid_spec.vdd, Some spec)

let solver_of = function
  | `Direct -> Opera.Galerkin.Direct
  | `Pcg -> Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 }
  | `Matrix_free -> Opera.Galerkin.Matrix_free_pcg { tol = 1e-10; max_iter = 500 }

(* ---- generate -------------------------------------------------------- *)

let generate nodes out =
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes in
  let circuit = Powergrid.Grid_gen.generate spec in
  Powergrid.Netlist.write_file out ~title:(Powergrid.Grid_spec.describe spec) circuit;
  Printf.printf "wrote %s: %s\n" out (Powergrid.Circuit.stats circuit)

let generate_cmd =
  let out =
    Arg.(value & opt string "grid.sp" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output netlist.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic power-grid netlist")
    Term.(const generate $ nodes_arg $ out)

(* ---- analyze --------------------------------------------------------- *)

let analyze netlist nodes order steps step_ps solver domains policy metrics_out log_level csv svg
    budget_pct =
  with_health ~log_level ~metrics_out @@ fun () ->
  let circuit, vdd, spec = load_circuit netlist nodes in
  Printf.printf "circuit: %s\n" (Powergrid.Circuit.stats circuit);
  let vm = Opera.Varmodel.paper_default in
  Printf.printf "variations: %s\n%!" (Opera.Varmodel.describe vm);
  let model = Opera.Stochastic_model.build ~order vm ~vdd circuit in
  let probe =
    match spec with
    | Some s -> Powergrid.Grid_gen.center_node s
    | None -> Powergrid.Circuit.node_count circuit / 2
  in
  let options =
    { Opera.Galerkin.default_options with
      Opera.Galerkin.solver = solver_of solver; probes = [| probe |]; domains; policy }
  in
  let h = step_ps *. 1e-12 in
  let (response, stats), seconds =
    Util.Timer.time (fun () -> Opera.Galerkin.solve_transient ~options model ~h ~steps)
  in
  Printf.printf "\nsolved: augmented dim %d, nnz %d, %.2f s total" stats.Opera.Galerkin.aug_dim
    stats.Opera.Galerkin.nnz_aug seconds;
  if stats.Opera.Galerkin.pcg_iterations > 0 then
    Printf.printf " (%d CG iterations)" stats.Opera.Galerkin.pcg_iterations;
  print_newline ();
  print_health stats;
  (* Worst nodes by mu + 3 sigma drop over time. *)
  let n = model.Opera.Stochastic_model.n in
  let guarded = Array.make n 0.0 in
  let nominal = Array.make n 0.0 in
  for step = 1 to steps do
    for node = 0 to n - 1 do
      let mu = Opera.Response.mean_at response ~step ~node in
      let sd = Opera.Response.std_at response ~step ~node in
      nominal.(node) <- Float.max nominal.(node) (vdd -. mu);
      guarded.(node) <- Float.max guarded.(node) (vdd -. mu +. (3.0 *. sd))
    done
  done;
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare guarded.(b) guarded.(a)) idx;
  let table =
    Util.Table.create
      [
        ("node", Util.Table.Right); ("mu drop (mV)", Util.Table.Right);
        ("+3sigma (mV)", Util.Table.Right); ("mu+3sigma (%VDD)", Util.Table.Right);
      ]
  in
  for r = 0 to Int.min 9 (n - 1) do
    let v = idx.(r) in
    Util.Table.add_row table
      [
        string_of_int v;
        Printf.sprintf "%.2f" (1e3 *. nominal.(v));
        Printf.sprintf "%.2f" (1e3 *. (guarded.(v) -. nominal.(v)));
        Printf.sprintf "%.2f" (100.0 *. guarded.(v) /. vdd);
      ]
  done;
  print_newline ();
  print_string (Util.Table.render table);
  (* Which process parameter drives the probe's variability? The explicit
     expansion answers directly (Sobol decomposition). *)
  let best_step = ref 1 in
  for step = 2 to steps do
    if
      Opera.Response.variance_at response ~step ~node:probe
      > Opera.Response.variance_at response ~step:!best_step ~node:probe
    then best_step := step
  done;
  let pce = Opera.Response.pce_at response ~node:probe ~step:!best_step in
  if Polychaos.Pce.variance pce > 0.0 then begin
    let names =
      match vm.Opera.Varmodel.mode with
      | Opera.Varmodel.Combined -> [| "xiG"; "xiL" |]
      | Opera.Varmodel.Separate -> [| "xiW"; "xiT"; "xiL" |]
      | Opera.Varmodel.Grouped_wires k ->
          Array.init (k + 1) (fun d -> if d = k then "xiL" else Printf.sprintf "xiG_%d" d)
    in
    Printf.printf "\nvariance decomposition at probe node %d (t = %g ps):\n%s" probe
      (float_of_int !best_step *. step_ps)
      (Polychaos.Sobol.report ~names pce)
  end;
  (* Yield against a drop budget (Gaussian union bound per step). *)
  (match budget_pct with
  | None -> ()
  | Some pct ->
      let budget = pct /. 100.0 *. vdd in
      let worst_p = ref 0.0 and worst_step = ref 1 and worst_node = ref 0 in
      for step = 1 to steps do
        let p, node = Opera.Yield.grid_failure_probability_gaussian response ~step ~budget in
        if p > !worst_p then begin
          worst_p := p;
          worst_step := step;
          worst_node := node
        end
      done;
      Printf.printf
        "\nyield vs %.1f%%-VDD drop budget: worst-step failure probability %.2e\n\
         (union bound; step %d, dominated by node %d)\n"
        pct !worst_p !worst_step !worst_node);
  (match csv with
  | None -> ()
  | Some path ->
      Opera.Response.export_csv response path;
      Printf.printf "\nwrote probe trajectories to %s\n" path);
  match (svg, spec) with
  | Some _, None -> prerr_endline "note: --svg needs a generated grid (geometry unknown for netlists)"
  | Some path, Some spec ->
      (* worst-over-time drop and sigma maps of the bottom layer *)
      let drops = Array.make n 0.0 and sigmas = Array.make n 0.0 in
      for step = 1 to steps do
        for node = 0 to n - 1 do
          drops.(node) <-
            Float.max drops.(node) (vdd -. Opera.Response.mean_at response ~step ~node);
          sigmas.(node) <-
            Float.max sigmas.(node) (Opera.Response.std_at response ~step ~node)
        done
      done;
      Powergrid.Svg_map.save path spec
        ~values:(Array.map (fun d -> 1e3 *. d) drops)
        ~title:"worst mean IR drop" ~unit_label:"mV" ();
      let sigma_path = Filename.remove_extension path ^ "_sigma" ^ Filename.extension path in
      Powergrid.Svg_map.save sigma_path spec
        ~values:(Array.map (fun s -> 1e3 *. s) sigmas)
        ~title:"worst sigma of the voltage" ~unit_label:"mV" ();
      Printf.printf "wrote %s and %s\n" path sigma_path
  | None, _ -> ()

let analyze_cmd =
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Export probe trajectories as CSV.")
  in
  let svg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Export drop/sigma heat maps as SVG.")
  in
  let budget =
    Arg.(value & opt (some float) None
         & info [ "budget" ] ~docv:"PCT" ~doc:"Drop budget as %% of VDD for yield reporting.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Stochastic (OPERA) analysis of a grid")
    Term.(
      const analyze $ netlist_arg $ nodes_arg $ order_arg $ steps_arg $ step_ps_arg $ solver_arg
      $ domains_arg $ policy_arg $ metrics_out_arg $ log_level_arg $ csv $ svg $ budget)

(* ---- mc -------------------------------------------------------------- *)

let mc netlist nodes steps step_ps samples seed =
  let circuit, vdd, _ = load_circuit netlist nodes in
  Printf.printf "circuit: %s\n%!" (Powergrid.Circuit.stats circuit);
  let model = Opera.Stochastic_model.build ~order:2 Opera.Varmodel.paper_default ~vdd circuit in
  let h = step_ps *. 1e-12 in
  let cfg =
    { (Opera.Monte_carlo.default_config ~h ~steps) with
      Opera.Monte_carlo.samples; seed = Int64.of_int seed }
  in
  let result = Opera.Monte_carlo.run model cfg in
  Printf.printf "%d samples in %.2f s (%.1f ms/sample)\n" samples
    result.Opera.Monte_carlo.elapsed_seconds
    (1e3 *. result.Opera.Monte_carlo.elapsed_seconds /. float_of_int samples);
  (* Worst node at the final step. *)
  let n = result.Opera.Monte_carlo.n in
  let worst = ref 0 in
  for node = 1 to n - 1 do
    if
      Opera.Monte_carlo.mean_at result ~step:steps ~node
      < Opera.Monte_carlo.mean_at result ~step:steps ~node:!worst
    then worst := node
  done;
  Printf.printf "worst node %d at final step: mean %.6f V, sigma %.3e V\n" !worst
    (Opera.Monte_carlo.mean_at result ~step:steps ~node:!worst)
    (Opera.Monte_carlo.std_at result ~step:steps ~node:!worst)

let mc_cmd =
  Cmd.v
    (Cmd.info "mc" ~doc:"Monte-Carlo baseline analysis")
    Term.(const mc $ netlist_arg $ nodes_arg $ steps_arg $ step_ps_arg $ samples_arg $ seed_arg)

(* ---- compare --------------------------------------------------------- *)

let compare_run nodes order steps step_ps samples seed solver domains policy metrics_out log_level
    =
  with_health ~log_level ~metrics_out @@ fun () ->
  let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes in
  let config =
    {
      Opera.Driver.order;
      h = step_ps *. 1e-12;
      steps;
      mc_samples = samples;
      seed = Int64.of_int seed;
      solver = solver_of solver;
      ordering = Linalg.Ordering.Nested_dissection;
      probes = [||];
      domains;
      policy;
    }
  in
  let outcome = Opera.Driver.run_grid config spec Opera.Varmodel.paper_default in
  let table = Util.Table.create Opera.Compare.header in
  Util.Table.add_row table
    (Opera.Compare.row_strings outcome.Opera.Driver.label outcome.Opera.Driver.report);
  print_string (Util.Table.render table);
  print_health outcome.Opera.Driver.galerkin_stats

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"OPERA vs Monte Carlo on one grid (a Table-1 row)")
    Term.(
      const compare_run $ nodes_arg $ order_arg $ steps_arg $ step_ps_arg $ samples_arg $ seed_arg
      $ solver_arg $ domains_arg $ policy_arg $ metrics_out_arg $ log_level_arg)

(* ---- special --------------------------------------------------------- *)

let special nodes order steps step_ps regions lambda samples domains metrics_out log_level =
  with_health ~log_level ~metrics_out @@ fun () ->
  let side = int_of_float (Float.round (sqrt (float_of_int regions))) in
  let rx = Int.max 1 side in
  let ry = Int.max 1 (regions / rx) in
  let spec =
    { (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes) with
      Powergrid.Grid_spec.regions_x = rx; regions_y = ry }
  in
  let regions = rx * ry in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let circuit = Powergrid.Grid_gen.generate spec in
  let leaks =
    Array.init
      (spec.Powergrid.Grid_spec.rows * spec.Powergrid.Grid_spec.cols)
      (fun node -> (node, Powergrid.Grid_gen.region_of_node spec node, 5e-6))
  in
  let sc = Opera.Special_case.make ~order ~regions ~lambda ~leaks ~vdd circuit in
  let h = step_ps *. 1e-12 in
  let probe = Powergrid.Grid_gen.center_node spec in
  let resp, secs = Opera.Special_case.solve ~domains sc ~h ~steps ~probes:[| probe |] in
  let size = Polychaos.Basis.size sc.Opera.Special_case.basis in
  Printf.printf "decoupled OPERA: %d regions, order %d (N+1 = %d), %.2f s\n" regions order size secs;
  let mc = Opera.Special_case.monte_carlo sc ~samples ~seed:7L ~h ~steps ~probes:[| probe |] in
  Printf.printf "MC %d samples: %.2f s (speedup %.0fx)\n" samples
    mc.Opera.Monte_carlo.elapsed_seconds
    (mc.Opera.Monte_carlo.elapsed_seconds /. secs);
  let pce = Opera.Response.pce_at resp ~node:probe ~step:steps in
  Printf.printf "probe node %d: mean %.6f V (MC %.6f), sigma %.3e (MC %.3e), skew %+.3f\n" probe
    (Polychaos.Pce.mean pce)
    (Opera.Monte_carlo.mean_at mc ~step:steps ~node:probe)
    (Polychaos.Pce.std pce)
    (Opera.Monte_carlo.std_at mc ~step:steps ~node:probe)
    (Polychaos.Pce.skewness pce)

let special_cmd =
  let regions =
    Arg.(value & opt int 4 & info [ "regions" ] ~doc:"Number of chip regions for Vth variation.")
  in
  let lambda =
    Arg.(value & opt float 0.5 & info [ "lambda" ] ~doc:"Lognormal leakage shape parameter.")
  in
  Cmd.v
    (Cmd.info "special" ~doc:"Sec. 5.1 special case: leakage-only variation")
    Term.(
      const special $ nodes_arg $ order_arg $ steps_arg $ step_ps_arg $ regions $ lambda
      $ samples_arg $ domains_arg $ metrics_out_arg $ log_level_arg)

(* ---- walk ------------------------------------------------------------ *)

let walk netlist nodes walks seed =
  let circuit, _, spec = load_circuit netlist nodes in
  let a = Powergrid.Mna.assemble circuit in
  let time = 0.3e-9 in
  let node =
    match spec with
    | Some s -> Powergrid.Grid_gen.center_node s
    | None -> Powergrid.Circuit.node_count circuit / 2
  in
  let w = Powergrid.Random_walk.prepare a ~time in
  let rng = Prob.Rng.create ~seed:(Int64.of_int seed) () in
  let (est, se), t = Util.Timer.time (fun () -> Powergrid.Random_walk.estimate w rng ~node ~walks) in
  Printf.printf "node %d at t = %.3g ns: %.6f V +- %.2e (%d walks, %.3f s)\n" node (time *. 1e9)
    est se walks t;
  let exact = Powergrid.Dc.solve_at a time in
  Printf.printf "direct solve reference: %.6f V (error %.2e)\n" exact.(node)
    (Float.abs (est -. exact.(node)))

let walk_cmd =
  let walks = Arg.(value & opt int 5000 & info [ "walks" ] ~doc:"Number of random walks.") in
  Cmd.v
    (Cmd.info "walk" ~doc:"Localized single-node DC estimate by random walks")
    Term.(const walk $ netlist_arg $ nodes_arg $ walks $ seed_arg)

(* ---- main ------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "opera" ~version:"1.0.0"
      ~doc:"Stochastic power-grid analysis under process variations (DATE 2005 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info [ generate_cmd; analyze_cmd; mc_cmd; compare_cmd; special_cmd; walk_cmd ]))
