(* opera — command-line front end for the OPERA stochastic power-grid
   analyzer.

     opera generate  --nodes 5000 --out grid.sp
     opera analyze   --netlist grid.sp            (or --nodes 5000)
     opera mc        --nodes 5000 --samples 500
     opera compare   --nodes 5000 --samples 300   (a Table-1 row)
     opera special   --nodes 2000 --regions 4     (Sec. 5.1 special case)
     opera batch     jobs.json --cache-dir .opera-cache
     opera serve     --listen opera.sock --cache-dir .opera-cache
     opera walk      --nodes 5000 --walks 20000

   Each subcommand owns its parser (bin/cmd_*.ml) but all of them share
   Cli_common.dispatch, so the error discipline is uniform: --help
   prints usage on stdout and exits 0; an unknown subcommand, unknown
   flag or malformed value prints on stderr and exits 2; a solve that
   diverges under --solver-policy fail exits 3. *)

let version = "1.0.0"

let commands =
  [
    ("generate", "Generate a synthetic power-grid netlist", Cmd_generate.run);
    ("analyze", "Stochastic (OPERA) analysis of a grid", Cmd_analyze.run);
    ("mc", "Monte-Carlo baseline analysis", Cmd_mc.run);
    ("compare", "OPERA vs Monte Carlo on one grid (a Table-1 row)", Cmd_compare.run);
    ("special", "Sec. 5.1 special case: leakage-only variation", Cmd_special.run);
    ("batch", "Run a JSON batch of jobs with shared factors and caching", Cmd_batch.run);
    ("serve", "Long-running analysis service over a Unix-domain socket", Cmd_serve.run);
    ("walk", "Localized single-node DC estimate by random walks", Cmd_walk.run);
  ]

let usage () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "usage: opera COMMAND [OPTION]...\n\n\
     Stochastic power-grid analysis under process variations (DATE 2005 reproduction).\n\n\
     commands:\n";
  List.iter
    (fun (name, doc, _) -> Buffer.add_string buf (Printf.sprintf "  %-10s %s\n" name doc))
    commands;
  Buffer.add_string buf "\nRun 'opera COMMAND --help' for command options.\n";
  Buffer.contents buf

let main () =
  match Array.to_list Sys.argv with
  | _ :: name :: rest -> (
      match List.find_opt (fun (n, _, _) -> n = name) commands with
      | Some (_, _, run) -> run rest
      | None -> (
          match name with
          | "--help" | "-h" | "help" ->
              print_string (usage ());
              0
          | "--version" ->
              print_endline version;
              0
          | _ ->
              Printf.eprintf "opera: unknown command %S\n%s" name (usage ());
              2))
  | _ ->
      prerr_string (usage ());
      2

let () = exit (main ())
