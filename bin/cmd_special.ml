(* opera special — Sec. 5.1 special case: leakage-only variation. *)

let run argv =
  let nodes = ref 2000
  and order = ref 2
  and steps = ref 24
  and step_ps = ref 125.0
  and regions = ref 4
  and lambda = ref 0.5
  and samples = ref 300
  and domains = ref 0
  and metrics_out = ref None
  and log_level = ref Util.Log.Warn in
  let args =
    [
      Cli_common.nodes_arg nodes;
      Cli_common.order_arg order;
      Cli_common.steps_arg steps;
      Cli_common.step_ps_arg step_ps;
      Util.Args.int [ "--regions" ] ~doc:"Number of chip regions for Vth variation." regions;
      Util.Args.float [ "--lambda" ] ~doc:"Lognormal leakage shape parameter." lambda;
      Cli_common.samples_arg samples;
      Cli_common.domains_arg domains;
      Cli_common.metrics_out_arg metrics_out;
      Cli_common.log_level_arg log_level;
    ]
  in
  Cli_common.dispatch ~prog:"opera special"
    ~summary:"Sec. 5.1 special case: leakage-only variation." ~args ~argv
  @@ fun _ ->
  Cli_common.with_health ~log_level:!log_level ~metrics_out:!metrics_out @@ fun () ->
  let side = int_of_float (Float.round (sqrt (float_of_int !regions))) in
  let rx = Int.max 1 side in
  let ry = Int.max 1 (!regions / rx) in
  let spec =
    { (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default !nodes) with
      Powergrid.Grid_spec.regions_x = rx; regions_y = ry }
  in
  let regions = rx * ry in
  let vdd = spec.Powergrid.Grid_spec.vdd in
  let circuit = Powergrid.Grid_gen.generate spec in
  let leaks =
    Array.init
      (spec.Powergrid.Grid_spec.rows * spec.Powergrid.Grid_spec.cols)
      (fun node -> (node, Powergrid.Grid_gen.region_of_node spec node, 5e-6))
  in
  let order = !order and steps = !steps and samples = !samples in
  let sc = Opera.Special_case.make ~order ~regions ~lambda:!lambda ~leaks ~vdd circuit in
  let h = !step_ps *. 1e-12 in
  let probe = Powergrid.Grid_gen.center_node spec in
  let resp, secs = Opera.Special_case.solve ~domains:!domains sc ~h ~steps ~probes:[| probe |] in
  let size = Polychaos.Basis.size sc.Opera.Special_case.basis in
  Printf.printf "decoupled OPERA: %d regions, order %d (N+1 = %d), %.2f s\n" regions order size secs;
  let mc = Opera.Special_case.monte_carlo sc ~samples ~seed:7L ~h ~steps ~probes:[| probe |] in
  Printf.printf "MC %d samples: %.2f s (speedup %.0fx)\n" samples
    mc.Opera.Monte_carlo.elapsed_seconds
    (mc.Opera.Monte_carlo.elapsed_seconds /. secs);
  let pce = Opera.Response.pce_at resp ~node:probe ~step:steps in
  Printf.printf "probe node %d: mean %.6f V (MC %.6f), sigma %.3e (MC %.3e), skew %+.3f\n" probe
    (Polychaos.Pce.mean pce)
    (Opera.Monte_carlo.mean_at mc ~step:steps ~node:probe)
    (Polychaos.Pce.std pce)
    (Opera.Monte_carlo.std_at mc ~step:steps ~node:probe)
    (Polychaos.Pce.skewness pce)
