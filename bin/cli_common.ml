(* Shared plumbing of the opera subcommands: the flag vocabularies every
   parser reuses, the health/metrics harness, and the one error
   discipline — [--help] prints usage on stdout and exits 0, an unknown
   flag or malformed value prints the message (and a usage pointer) on
   stderr and exits 2, a solve diverging under [--solver-policy fail]
   exits 3. *)

let vdd_default = 1.2

(* ---- flag vocabularies ----------------------------------------------- *)

let solver_enum =
  [
    ("direct", Opera.Galerkin.Direct);
    ("pcg", Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 });
    ("matrix-free", Opera.Galerkin.Matrix_free_pcg { tol = 1e-10; max_iter = 500 });
    ("st", Opera.Galerkin.default_st);
  ]

let policy_enum =
  [ ("fail", Opera.Galerkin.Fail); ("warn", Opera.Galerkin.Warn); ("fallback", Opera.Galerkin.Fallback) ]

let log_level_enum =
  [ ("error", Util.Log.Error); ("warn", Util.Log.Warn); ("info", Util.Log.Info); ("debug", Util.Log.Debug) ]

let nodes_arg r = Util.Args.int [ "--nodes" ] ~doc:"Target node count of a generated synthetic grid." r

let netlist_arg r =
  Util.Args.string_opt [ "--netlist" ] ~docv:"FILE"
    ~doc:"Analyze this SPICE-subset netlist instead of a generated grid." r

let order_arg r = Util.Args.int [ "--order" ] ~doc:"Polynomial-chaos expansion order (the paper uses 2-3)." r

let steps_arg r = Util.Args.int [ "--steps" ] ~doc:"Number of transient steps." r

let step_ps_arg r = Util.Args.float [ "--step-ps" ] ~doc:"Time step in picoseconds." r

let samples_arg r = Util.Args.int [ "--samples" ] ~doc:"Monte-Carlo sample count." r

let seed_arg r = Util.Args.int [ "--seed" ] ~doc:"Random seed." r

let solver_arg r =
  Util.Args.enum [ "--solver" ]
    ~doc:"Augmented-system solver: direct, pcg (assembled, mean-block-preconditioned CG), \
          matrix-free (same CG, operator applied from the per-rank matrices, never assembled) \
          or st (stochastic-testing collocation: N+1 decoupled point solves on per-point \
          factors, coefficients recovered by a dense transform)."
    solver_enum r

(* The st knobs ride along as plain flags; they only matter when
   --solver st is selected, and rewrite the St payload in place so the
   solver value stays a single source of truth. *)
let st_candidates_arg r =
  Util.Args.int [ "--st-candidates" ]
    ~doc:"Candidate-pool bound for stochastic-testing point selection (0 = the full tensor \
          grid; larger values top the pool up with seeded random draws).  Only used by \
          --solver st." r

let st_seed_arg r =
  Util.Args.int [ "--st-seed" ]
    ~doc:"Seed of the stochastic-testing point-selection top-up draws.  Only used by --solver \
          st with --st-candidates beyond the tensor grid." r

let apply_st_knobs solver ~candidates ~seed =
  match solver with
  | Opera.Galerkin.St k ->
      Opera.Galerkin.St { k with candidates; seed = Int64.of_int seed }
  | s -> s

let precond_enum = List.map (fun k -> (Linalg.Precond.to_string k, k)) Linalg.Precond.all

let precond_arg r =
  Util.Args.enum [ "--precond" ]
    ~doc:"Mean-block preconditioner of the iterative solver paths (pcg, matrix-free, st): \
          cholesky (exact sparse factor, default), ic0 (incomplete Cholesky), amg (aggregation \
          multigrid V-cycles; flat iteration counts on large meshes) or auto (amg above 20k \
          nodes).  Direct solves ignore it."
    precond_enum r

let domains_arg r =
  Util.Args.int [ "--domains" ]
    ~doc:"Domain count for the block-parallel solver paths (0 = the OPERA_DOMAINS environment \
          variable, default sequential)." r

let policy_arg r =
  Util.Args.enum [ "--solver-policy" ]
    ~doc:"What an iterative solve does on an exhausted iteration budget: fail (exit 3), warn \
          (keep the approximate iterate) or fallback (re-solve directly)."
    policy_enum r

let metrics_out_arg r =
  Util.Args.string_opt [ "--metrics-out" ] ~docv:"FILE"
    ~doc:"Write the run's metrics registry (counters + phase timers) to FILE as JSON." r

let log_level_arg r =
  Util.Args.enum [ "--log-level" ] ~doc:"Diagnostic verbosity on stderr: error, warn, info or debug."
    log_level_enum r

let warm_start_enum = [ ("on", true); ("off", false) ]

let warm_start_arg r =
  Util.Args.enum [ "--warm-start" ]
    ~doc:"Seed each transient step's iterative solve from the previous step (linearly \
          extrapolated): on (default) or off (zero guess every step).  Only iteration counts \
          change; converged results agree within solver tolerance."
    warm_start_enum r

let cache_dir_arg r =
  Util.Args.string_opt [ "--cache-dir" ] ~docv:"DIR"
    ~doc:"Artifact store for orderings, factors and tensors; warm runs skip setup entirely.  \
          Also holds the results journal of batch --resume/--shard." r

(* "I/K" shard specs, the vocabulary of batch --shard.  Validation lives
   here (not in the engine) so a typo surfaces as a normal exit-2 usage
   error with the flag's own spelling in the message. *)
let parse_shard s =
  let malformed () =
    Error (Printf.sprintf "--shard %s: expected I/K with integers 0 <= I < K (e.g. 0/4)" s)
  in
  match String.index_opt s '/' with
  | None -> malformed ()
  | Some slash -> (
      let i = String.sub s 0 slash in
      let k = String.sub s (slash + 1) (String.length s - slash - 1) in
      match (int_of_string_opt i, int_of_string_opt k) with
      | Some i, Some k when k >= 1 && i >= 0 && i < k -> Ok (i, k)
      | Some _, Some k when k < 1 ->
          Error (Printf.sprintf "--shard %s: shard count must be >= 1" s)
      | Some i, Some k -> Error (Printf.sprintf "--shard %s: index %d out of range [0, %d)" s i k)
      | _ -> malformed ())

(* "SIZE[K|M|G]" byte budgets, the vocabulary of --cache-max-bytes.
   Plain integers are bytes; a suffix scales by binary powers. *)
let parse_bytes s =
  let malformed () =
    Error
      (Printf.sprintf
         "--cache-max-bytes %s: expected a byte count with an optional K/M/G suffix (e.g. \
          512M)"
         s)
  in
  if s = "" then malformed ()
  else
    let scale, digits =
      match s.[String.length s - 1] with
      | ('k' | 'K') -> (1024, String.sub s 0 (String.length s - 1))
      | ('m' | 'M') -> (1024 * 1024, String.sub s 0 (String.length s - 1))
      | ('g' | 'G') -> (1024 * 1024 * 1024, String.sub s 0 (String.length s - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some n when n >= 0 -> Ok (n * scale)
    | Some _ -> Error (Printf.sprintf "--cache-max-bytes %s: must be >= 0" s)
    | None -> malformed ()

(* ---- run harness ------------------------------------------------------ *)

(* Set verbosity, run the body, persist the metrics registry (also when
   the run aborts), map Solver_diverged to exit code 3. *)
let with_health ~log_level ~metrics_out f =
  Util.Log.set_level log_level;
  let write_metrics () =
    match metrics_out with
    | None -> ()
    | Some path ->
        Util.Metrics.write_file Util.Metrics.global path;
        (* stderr so [batch]'s JSONL stream on stdout stays pure *)
        Printf.eprintf "wrote metrics to %s\n" path
  in
  match f () with
  | () ->
      write_metrics ();
      0
  | exception Opera.Galerkin.Solver_diverged (context, report) ->
      Printf.eprintf "opera: solver diverged at %s\n  %s\n" context
        (Linalg.Solve_report.summary report);
      write_metrics ();
      3

let print_health (stats : Opera.Galerkin.stats) =
  let agg = stats.Opera.Galerkin.health in
  if agg.Linalg.Solve_report.solves > 0 then
    Printf.printf "solver health: %s%s\n"
      (Linalg.Solve_report.agg_summary agg)
      (if Linalg.Solve_report.agg_healthy agg then "" else "  ** UNHEALTHY **")

let load_circuit netlist nodes =
  match netlist with
  | Some path ->
      let parsed = Powergrid.Netlist.parse_file path in
      (parsed.Powergrid.Netlist.circuit, vdd_default, None)
  | None ->
      let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes in
      (Powergrid.Grid_gen.generate spec, spec.Powergrid.Grid_spec.vdd, Some spec)

(* ---- the shared usage / unknown-flag error path ----------------------- *)

(* Parse [argv] against [args]; on success check positionals and run the
   body.  Every subcommand flows through here, so help and error
   behavior cannot drift between parsers. *)
let dispatch ~prog ~summary ?positional ~args ~argv body =
  match Util.Args.parse args argv with
  | Util.Args.Help ->
      print_string (Util.Args.usage ~prog ?positional ~summary args);
      0
  | Util.Args.Failed msg ->
      Printf.eprintf "%s: %s\nTry '%s --help'.\n" prog msg prog;
      2
  | Util.Args.Parsed positionals -> (
      match (positional, positionals) with
      | None, [] -> body []
      | None, extra :: _ ->
          Printf.eprintf "%s: unexpected argument %S\nTry '%s --help'.\n" prog extra prog;
          2
      | Some _, ps -> body ps)
