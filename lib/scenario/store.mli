(** Content-addressed on-disk artifact cache.

    One artifact per file, [<kind>-<key>.opra], where [key] is the hex
    digest of the canonical {!Util.Codec} bytes of everything the
    artifact depends on (grid, variation model, solver route, schema
    version — see DESIGN.md §9).  Payloads are {!Util.Codec} frames with
    versioned headers and checksums; a file that fails any validation —
    missing, truncated, bit-flipped, wrong kind, older schema version,
    malformed payload — is logged, deleted and rebuilt, never trusted.
    Floats cross the codec bit-exactly, so a warm run reproduces the
    cold run bitwise. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;  (** subset of [misses] caused by damaged files *)
  mutable writes : int;
}

type t

val create : ?metrics:Util.Metrics.t -> dir:string option -> unit -> t
(** [dir = None] disables the store (every lookup builds); [Some d]
    creates [d] (and parents) if needed.  [metrics] receives the
    [store.hits] / [store.misses] / [store.corrupt] / [store.writes]
    counters.  A store must only be used from one domain at a time —
    the batch engine does all artifact IO on the main domain before
    fanning jobs out. *)

val disabled : t
(** A store with no directory: {!find_or_build} always builds. *)

val enabled : t -> bool

val stats : t -> stats

val key_of_bytes : string -> string
(** Hex digest of canonical artifact-identity bytes (filename-safe). *)

val file_name : kind:string -> key:string -> string
(** Basename of an artifact file, [<kind>-<key>.opra] — the naming
    contract shared by the store and the results {!Registry}. *)

val path : t -> kind:string -> key:string -> string option
(** On-disk location of an artifact ([None] when the store is disabled).
    Exposed so corruption tests can damage a cached file in place. *)

val find_or_build :
  t ->
  kind:string ->
  version:int ->
  key:string ->
  encode:('a -> Util.Codec.encoder -> unit) ->
  decode:(Util.Codec.decoder -> 'a) ->
  build:(unit -> 'a) ->
  'a
(** Read-through lookup.  On hit, [decode] runs on the validated frame
    payload (and may itself raise {!Util.Codec.Corrupt} on semantic
    mismatch, e.g. a tensor stored for a different basis — that counts
    as corruption and triggers a rebuild).  Any other exception [decode]
    raises — a stale encoder leaving a checksum-valid but semantically
    malformed payload, say [Invalid_argument] out of an array build —
    is treated the same way: logged, dropped, rebuilt.  Only
    [Out_of_memory] and [Stack_overflow] stay fatal.  On miss,
    [build ()] runs and its encoding is written back atomically (temp
    file + rename, world-readable).  The hit path streams the frame
    ({!Util.Codec.read_frame}): the artifact is resident once, with the
    checksum folded during the read — gigabyte factors never occupy
    double their size. *)

val find_or_build_sections :
  t ->
  kind:string ->
  version:int ->
  key:string ->
  encode:('a -> (Util.Codec.encoder -> unit) * Util.Codec.section_data list) ->
  decode:(Util.Codec.decoder -> Util.Codec.sections -> 'a) ->
  build:(unit -> 'a) ->
  'a
(** {!find_or_build} over v2 section frames ({!Util.Codec.frame_v2}).
    [encode] splits a value into scalar meta plus raw numeric sections;
    on hit, [decode] receives the meta decoder and zero-copy
    [Unix.map_file]-backed section views when the host allows mapping
    (a warm million-node preconditioner replays without decoding its
    gigabytes), or copying views otherwise.  Hits count
    [store.map_hits] vs [store.full_decodes] in the metrics registry on
    top of the usual [store.hits].  Error discipline is exactly
    {!find_or_build}'s. *)

val gc_dir : dir:string -> kind:string -> keep:(string -> bool) -> int
(** Remove every [<kind>-<key>.opra] under [dir] whose [key] fails the
    [keep] predicate; returns the number removed.  Other kinds and
    foreign files are untouched.  Missing or unreadable directories
    count as empty. *)

val gc : t -> kind:string -> keep:(string -> bool) -> int
(** {!gc_dir} against the store's directory; [0] when disabled. *)

val touch : string -> unit
(** Refresh a file's mtime (best effort, errors swallowed).  The store
    touches every artifact it reuses and the results {!Registry} touches
    every journal entry it replays, so mtime order is LRU order for
    {!evict}. *)

val evict_dir : dir:string -> max_bytes:int -> ?protect:(string -> bool) -> unit -> int
(** Byte-capped LRU eviction: while the total size of [*.opra] files
    under [dir] exceeds [max_bytes], remove the least-recently-used
    (oldest-mtime; ties broken by name for determinism) file whose
    basename fails the [protect] predicate ([protect] defaults to
    nothing).  Returns the number of files removed.  Missing or
    unreadable directories count as empty.  Foreign (non-[.opra]) files
    are never counted or removed. *)

val evict : t -> max_bytes:int -> ?protect:(string -> bool) -> unit -> int
(** {!evict_dir} against the store's directory; [0] when disabled.
    Removals are counted in the [store.evicted] metric. *)
