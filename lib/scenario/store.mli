(** Content-addressed on-disk artifact cache.

    One artifact per file, [<kind>-<key>.opra], where [key] is the hex
    digest of the canonical {!Util.Codec} bytes of everything the
    artifact depends on (grid, variation model, solver route, schema
    version — see DESIGN.md §9).  Payloads are {!Util.Codec} frames with
    versioned headers and checksums; a file that fails any validation —
    missing, truncated, bit-flipped, wrong kind, older schema version,
    malformed payload — is logged, deleted and rebuilt, never trusted.
    Floats cross the codec bit-exactly, so a warm run reproduces the
    cold run bitwise. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;  (** subset of [misses] caused by damaged files *)
  mutable writes : int;
}

type t

val create : ?metrics:Util.Metrics.t -> dir:string option -> unit -> t
(** [dir = None] disables the store (every lookup builds); [Some d]
    creates [d] (and parents) if needed.  [metrics] receives the
    [store.hits] / [store.misses] / [store.corrupt] / [store.writes]
    counters.  A store must only be used from one domain at a time —
    the batch engine does all artifact IO on the main domain before
    fanning jobs out. *)

val disabled : t
(** A store with no directory: {!find_or_build} always builds. *)

val enabled : t -> bool

val stats : t -> stats

val key_of_bytes : string -> string
(** Hex digest of canonical artifact-identity bytes (filename-safe). *)

val path : t -> kind:string -> key:string -> string option
(** On-disk location of an artifact ([None] when the store is disabled).
    Exposed so corruption tests can damage a cached file in place. *)

val find_or_build :
  t ->
  kind:string ->
  version:int ->
  key:string ->
  encode:('a -> Util.Codec.encoder -> unit) ->
  decode:(Util.Codec.decoder -> 'a) ->
  build:(unit -> 'a) ->
  'a
(** Read-through lookup.  On hit, [decode] runs on the validated frame
    payload (and may itself raise {!Util.Codec.Corrupt} on semantic
    mismatch, e.g. a tensor stored for a different basis — that counts
    as corruption and triggers a rebuild).  On miss, [build ()] runs and
    its encoding is written back atomically (temp file + rename). *)
