type stats = { mutable hits : int; mutable misses : int; mutable corrupt : int; mutable writes : int }

type t = {
  dir : string option;
  metrics : Util.Metrics.t;
  stats : stats;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let create ?(metrics = Util.Metrics.global) ~dir () =
  (match dir with Some d -> mkdir_p d | None -> ());
  { dir; metrics; stats = { hits = 0; misses = 0; corrupt = 0; writes = 0 } }

let disabled = { dir = None; metrics = Util.Metrics.global; stats = { hits = 0; misses = 0; corrupt = 0; writes = 0 } }

let enabled t = t.dir <> None

let stats t = t.stats

let key_of_bytes bytes = Digest.to_hex (Digest.string bytes)

(* One artifact = one file, named by kind and content key.  The key hex
   comes from a Digest of canonical bytes, so it is filename-safe. *)
let path t ~kind ~key =
  match t.dir with
  | None -> None
  | Some dir -> Some (Filename.concat dir (Printf.sprintf "%s-%s.opra" kind key))

let remove_corrupt path =
  try Sys.remove path with Sys_error _ -> ()

let find_or_build t ~kind ~version ~key ~encode ~decode ~build =
  match path t ~kind ~key with
  | None -> build ()
  | Some file ->
      let rebuild () =
        t.stats.misses <- t.stats.misses + 1;
        Util.Metrics.incr t.metrics "store.misses";
        let value = build () in
        let bytes = Util.Codec.frame ~kind ~version (encode value) in
        Util.Codec.write_file file bytes;
        t.stats.writes <- t.stats.writes + 1;
        Util.Metrics.incr t.metrics "store.writes";
        value
      in
      (match Util.Codec.read_file file with
      | None -> rebuild ()
      | Some bytes -> (
          match
            let d = Util.Codec.unframe ~kind ~version bytes in
            let value = decode d in
            Util.Codec.expect_end d;
            value
          with
          | value ->
              t.stats.hits <- t.stats.hits + 1;
              Util.Metrics.incr t.metrics "store.hits";
              value
          | exception Util.Codec.Corrupt why ->
              (* Never trust a damaged artifact: log, drop, rebuild. *)
              t.stats.corrupt <- t.stats.corrupt + 1;
              Util.Metrics.incr t.metrics "store.corrupt";
              Util.Log.warnf "store: rebuilding corrupt artifact %s (%s)" file why;
              remove_corrupt file;
              rebuild ()))
