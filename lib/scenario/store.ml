type stats = { mutable hits : int; mutable misses : int; mutable corrupt : int; mutable writes : int }

type t = {
  dir : string option;
  metrics : Util.Metrics.t;
  stats : stats;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let create ?(metrics = Util.Metrics.global) ~dir () =
  (match dir with Some d -> mkdir_p d | None -> ());
  { dir; metrics; stats = { hits = 0; misses = 0; corrupt = 0; writes = 0 } }

let disabled = { dir = None; metrics = Util.Metrics.global; stats = { hits = 0; misses = 0; corrupt = 0; writes = 0 } }

let enabled t = t.dir <> None

let stats t = t.stats

let key_of_bytes bytes = Digest.to_hex (Digest.string bytes)

(* One artifact = one file, named by kind and content key.  The key hex
   comes from a Digest of canonical bytes, so it is filename-safe. *)
let file_name ~kind ~key = Printf.sprintf "%s-%s.opra" kind key

let path t ~kind ~key =
  match t.dir with
  | None -> None
  | Some dir -> Some (Filename.concat dir (file_name ~kind ~key))

let remove_corrupt path =
  try Sys.remove path with Sys_error _ -> ()

let touch file =
  (* Refresh the artifact's mtime so byte-capped eviction sees reused
     entries as hot (the LRU clock is the filesystem).  Best effort: a
     read-only cache dir must not fail the lookup that reused it. *)
  try Unix.utimes file 0.0 0.0 with Unix.Unix_error _ -> ()

(* The shared skeleton of both lookup shapes: count the miss and encode
   on rebuild, never trust a damaged artifact (log, drop, rebuild), and
   classify every decode outcome.  [read] returns the raw load result;
   [finish] turns it into the value (both may raise [Corrupt]). *)
let lookup t ~file ~write ~read ~finish ~on_hit ~build =
  let rebuild () =
    t.stats.misses <- t.stats.misses + 1;
    Util.Metrics.incr t.metrics "store.misses";
    let value = build () in
    Util.Codec.write_file file (write value);
    t.stats.writes <- t.stats.writes + 1;
    Util.Metrics.incr t.metrics "store.writes";
    value
  in
  let corrupt why =
    t.stats.corrupt <- t.stats.corrupt + 1;
    Util.Metrics.incr t.metrics "store.corrupt";
    Util.Log.warnf "store: rebuilding corrupt artifact %s (%s)" file why;
    remove_corrupt file;
    rebuild ()
  in
  match read () with
  | exception Util.Codec.Corrupt why -> corrupt why
  | None -> rebuild ()
  | Some loaded -> (
      match finish loaded with
      | value ->
          t.stats.hits <- t.stats.hits + 1;
          Util.Metrics.incr t.metrics "store.hits";
          on_hit loaded;
          touch file;
          value
      | exception Util.Codec.Corrupt why -> corrupt why
      | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
      | exception e ->
          (* A checksum-valid frame whose payload still blows up the
             decoder (stale encoder, schema drift the version tag
             missed) is cache damage, not a bug worth crashing the
             batch over — same drop-and-rebuild path as Corrupt. *)
          corrupt (Printexc.to_string e))

let find_or_build t ~kind ~version ~key ~encode ~decode ~build =
  match path t ~kind ~key with
  | None -> build ()
  | Some file ->
      lookup t ~file
        ~write:(fun value -> Util.Codec.frame ~kind ~version (encode value))
        ~read:(fun () -> Util.Codec.read_frame ~kind ~version file)
        ~finish:(fun d ->
          let value = decode d in
          Util.Codec.expect_end d;
          value)
        ~on_hit:(fun _ -> ())
        ~build

let find_or_build_sections t ~kind ~version ~key ~encode ~decode ~build =
  match path t ~kind ~key with
  | None -> build ()
  | Some file ->
      lookup t ~file
        ~write:(fun value ->
          let meta, sections = encode value in
          Util.Codec.frame_v2 ~kind ~version ~meta ~sections)
        ~read:(fun () -> Util.Codec.read_frame_v2 ~kind ~version file)
        ~finish:(fun (d, sections) ->
          let value = decode d sections in
          Util.Codec.expect_end d;
          value)
        ~on_hit:(fun (_, sections) ->
          (* Warm replays should be mapped views, not decoded copies;
             the split tells a perf regression from a cache win. *)
          if Util.Codec.sections_mapped sections then
            Util.Metrics.incr t.metrics "store.map_hits"
          else Util.Metrics.incr t.metrics "store.full_decodes")
        ~build

(* ---- garbage collection ----------------------------------------------

   Artifacts are content-addressed, so nothing ever dangles — GC is a
   policy decision (drop entries of [kind] whose key the caller no
   longer wants), used by the results registry to evict journal records
   of jobs that left the batch. *)

let gc_dir ~dir ~kind ~keep =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
      let prefix = kind ^ "-" and suffix = ".opra" in
      Array.fold_left
        (fun removed f ->
          if String.starts_with ~prefix f && Filename.check_suffix f suffix then begin
            let key =
              String.sub f (String.length prefix)
                (String.length f - String.length prefix - String.length suffix)
            in
            if keep key then removed
            else begin
              (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
              removed + 1
            end
          end
          else removed)
        0 files

let gc t ~kind ~keep =
  match t.dir with None -> 0 | Some dir -> gc_dir ~dir ~kind ~keep

(* ---- byte-capped LRU eviction ----------------------------------------

   GC above drops entries the caller explicitly disowned; eviction is a
   *budget* policy for a long-running service: keep total artifact bytes
   under a cap by removing the least-recently-used files first.
   Recency is the filesystem mtime — refreshed by [touch] on every
   store hit and registry replay — so hot artifacts survive and cold
   ones age out.  [protect] shields artifacts that are open in an
   in-flight request from the axe. *)

let scan_opra dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> [||]
  | files ->
      let entries =
        Array.to_list files
        |> List.filter_map (fun f ->
               if Filename.check_suffix f ".opra" then
                 match Unix.stat (Filename.concat dir f) with
                 | exception Unix.Unix_error (_, _, _) -> None
                 | st when st.Unix.st_kind = Unix.S_REG ->
                     Some (f, st.Unix.st_mtime, st.Unix.st_size)
                 | _ -> None
               else None)
      in
      Array.of_list entries

let evict_dir ~dir ~max_bytes ?(protect = fun (_ : string) -> false) () =
  let entries = scan_opra dir in
  let total = Array.fold_left (fun acc (_, _, size) -> acc + size) 0 entries in
  if total <= max_bytes then 0
  else begin
    (* Oldest first; mtime ties break on the file name so the eviction
       order — and therefore the surviving set — is deterministic. *)
    let by_age = Array.copy entries in
    Array.sort
      (fun (fa, ta, _) (fb, tb, _) ->
        let c = Float.compare ta tb in
        if c <> 0 then c else String.compare fa fb)
      by_age;
    let live = ref total and removed = ref 0 in
    Array.iter
      (fun (f, _, size) ->
        if !live > max_bytes && not (protect f) then begin
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          live := !live - size;
          Stdlib.incr removed
        end)
      by_age;
    !removed
  end

let evict t ~max_bytes ?(protect = fun (_ : string) -> false) () =
  match t.dir with
  | None -> 0
  | Some dir ->
      let removed = evict_dir ~dir ~max_bytes ~protect () in
      if removed > 0 then Util.Metrics.incr ~by:removed t.metrics "store.evicted";
      removed
