(** Declarative batch-job specifications.

    A job names one stochastic analysis: a grid (generated spec or
    netlist path), a variation model scaling, excitation deltas and an
    analysis kind.  Jobs are parsed from JSON ({!batch_of_json}) and
    grouped by {!signature} — the canonical hash of everything that
    shapes the deterministic operator — so the engine factors each
    operator exactly once per batch. *)

type analysis =
  | Dc  (** stochastic DC solve of the augmented system *)
  | Transient  (** backward-Euler transient of the augmented system *)
  | Special of { regions : int; lambda : float }
      (** Sec. 5.1 decoupled special case: deterministic grid, lognormal
          leakage per chip region *)
  | Yield of { budget_pct : float }
      (** transient plus a worst-step yield bound against a drop budget
          given as a percentage of VDD *)

type source =
  | Generated of { nodes : int }  (** synthetic grid scaled to ~[nodes] *)
  | Netlist of string  (** SPICE-subset netlist path *)

type t = {
  name : string;
  source : source;
  analysis : analysis;
  order : int;  (** chaos expansion order *)
  h : float;  (** timestep, seconds *)
  steps : int;
  solver : Opera.Galerkin.solver;
  policy : Opera.Galerkin.policy;
  sigma_scale : float;
      (** multiplies every sigma of the paper-default variation model —
          part of the operator signature *)
  drain_scale : float;
      (** scales the drain-current excitation only; never invalidates a
          factorization *)
  leak_scale : float;  (** scales the special case's nominal leak currents *)
  probe : int option;  (** probed node; default = grid center *)
}

val analysis_name : analysis -> string

val solver_of_string :
  ?st_candidates:int -> ?st_seed:int64 -> string -> (Opera.Galerkin.solver, string) result
(** ["direct"], ["pcg"], ["matrix-free"], ["st"] — the CLI vocabulary.
    Any other string is an [Error] naming the vocabulary, which the
    batch parser surfaces under the exit-2 usage discipline.  The
    [st_*] knobs land in the [St] payload (candidate-pool bound and
    point-selection seed; defaults 0 = tensor grid, seed 1) and are
    ignored by the other solvers. *)

val solver_name : Opera.Galerkin.solver -> string

val policy_of_string : string -> (Opera.Galerkin.policy, string) result
(** ["fail"], ["warn"], ["fallback"]. *)

val policy_name : Opera.Galerkin.policy -> string

val region_split : int -> int * int
(** [(rx, ry)] near-square tiling of a special-case region count:
    [rx = round(sqrt regions)], [ry = regions / rx].  The engine builds
    its grid with exactly this split; {!of_json} only accepts region
    counts where [rx * ry = regions], so parsed jobs always run with the
    region count they asked for. *)

val of_json : ?defaults:Util.Json.t -> ?name:string -> Util.Json.t -> (t, string) result
(** Parse one job object.  Missing fields fall back to [defaults] (an
    object) and then to built-in defaults; unknown fields are an error,
    as is a special-case region count {!region_split} cannot honor, an
    unknown ["solver"]/["policy"] string, or a negative
    ["st_candidates"].  ["st_candidates"]/["st_seed"] configure the
    stochastic-testing point selection of [solver = "st"]. *)

val batch_of_json : Util.Json.t -> (t array, string) result
(** Parse [{"jobs": [...], "defaults": {...}?}].  Jobs keep their array
    order; a nameless job [i] is named ["job<i>"]; duplicate names are
    an error (records are keyed by name downstream). *)

val batch_of_file : string -> (t array, string) result

val operator_bytes : t -> string
(** Canonical {!Util.Codec} bytes of the job's operator-shaping fields
    (analysis family, source, variation scaling, order, solver route).
    For a netlist source this includes a digest of the file's {e
    contents}, so editing a netlist in place invalidates every cached
    artifact derived from it.  The [St] candidate/seed knobs are
    included (they determine the testing points, hence every cached
    per-point factor); excitation deltas, timestep, step count, probe,
    policy and convergence tolerances are excluded — see DESIGN.md §9
    for the invalidation rules. *)

val signature : t -> string
(** Hex digest of {!operator_bytes}; equal signatures share factors. *)

val result_bytes : t -> string
(** Canonical bytes of everything that shapes the job's {e record}:
    {!operator_bytes} plus the fields it deliberately excludes — name,
    analysis payload (lambda, budget), excitation scales, timestep,
    step count, probe, convergence policy and tolerances.  Jobs with
    equal [result_bytes] produce bitwise-equal JSONL records, which is
    the replay contract of the results {!Registry}. *)

val result_signature : t -> string
(** Hex digest of {!result_bytes}; the journal key of [--resume]. *)
