(* Crash-safe on-disk results registry.

   One completed job = one journal file in the cache dir,
   [result-<Job.result_signature>.opra]: a checksummed Util.Codec frame
   holding the job's JSONL record as an encoded Util.Json AST.  Records
   are journaled the moment a job completes (atomic temp-file + rename
   per entry), so a batch killed at job N-1 keeps N-1 entries intact —
   there is no index file to corrupt, the directory IS the journal.

   Replay is bitwise: Util.Json.render is a pure function of the AST and
   the codec carries floats as IEEE-754 bit patterns, so a replayed
   record renders byte-identically to the run that journaled it.

   Unlike the artifact Store, the registry is written from inside the
   engine's fan-out (worker domains journal their own completions); a
   single mutex serializes writes and the stats. *)

type stats = { mutable replayed : int; mutable journaled : int; mutable corrupt : int }

type t = {
  dir : string option;
  lock : Mutex.t;
  stats : stats;
}

let kind = "result"

let version = 1

let create ~dir () =
  (match dir with
  | Some d -> if not (Sys.file_exists d) then ( try Sys.mkdir d 0o755 with Sys_error _ -> ())
  | None -> ());
  { dir; lock = Mutex.create (); stats = { replayed = 0; journaled = 0; corrupt = 0 } }

let disabled = { dir = None; lock = Mutex.create (); stats = { replayed = 0; journaled = 0; corrupt = 0 } }

let enabled t = t.dir <> None

let stats t = t.stats

let path t job =
  match t.dir with
  | None -> None
  | Some dir ->
      Some (Filename.concat dir (Store.file_name ~kind ~key:(Job.result_signature job)))

(* ---- Json AST <-> codec payload ------------------------------------- *)

let tag_null = 0
and tag_bool = 1
and tag_num = 2
and tag_str = 3
and tag_list = 4
and tag_obj = 5

let rec write_json e (j : Util.Json.t) =
  match j with
  | Util.Json.Null -> Util.Codec.write_int e tag_null
  | Util.Json.Bool b ->
      Util.Codec.write_int e tag_bool;
      Util.Codec.write_bool e b
  | Util.Json.Num v ->
      Util.Codec.write_int e tag_num;
      Util.Codec.write_float e v
  | Util.Json.Str s ->
      Util.Codec.write_int e tag_str;
      Util.Codec.write_string e s
  | Util.Json.List items ->
      Util.Codec.write_int e tag_list;
      Util.Codec.write_int e (List.length items);
      List.iter (write_json e) items
  | Util.Json.Obj fields ->
      Util.Codec.write_int e tag_obj;
      Util.Codec.write_int e (List.length fields);
      List.iter
        (fun (k, v) ->
          Util.Codec.write_string e k;
          write_json e v)
        fields

let rec read_json d : Util.Json.t =
  let tag = Util.Codec.read_int d in
  if tag = tag_null then Util.Json.Null
  else if tag = tag_bool then Util.Json.Bool (Util.Codec.read_bool d)
  else if tag = tag_num then Util.Json.Num (Util.Codec.read_float d)
  else if tag = tag_str then Util.Json.Str (Util.Codec.read_string d)
  else if tag = tag_list then begin
    let n = Util.Codec.read_int d in
    if n < 0 || n > Util.Codec.remaining d then
      raise (Util.Codec.Corrupt (Printf.sprintf "json list length %d out of range" n));
    Util.Json.List (List.init n (fun _ -> read_json d))
  end
  else if tag = tag_obj then begin
    let n = Util.Codec.read_int d in
    if n < 0 || n > Util.Codec.remaining d then
      raise (Util.Codec.Corrupt (Printf.sprintf "json object length %d out of range" n));
    Util.Json.Obj
      (List.init n (fun _ ->
           let k = Util.Codec.read_string d in
           (k, read_json d)))
  end
  else raise (Util.Codec.Corrupt (Printf.sprintf "unknown json tag %d" tag))

(* ---- journal operations ---------------------------------------------- *)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t job json =
  match path t job with
  | None -> ()
  | Some file ->
      let bytes = Util.Codec.frame ~kind ~version (fun e -> write_json e json) in
      with_lock t (fun () ->
          Util.Codec.write_file file bytes;
          t.stats.journaled <- t.stats.journaled + 1)

let lookup t job =
  match path t job with
  | None -> None
  | Some file -> (
      (* Same contract as the Store: a damaged journal entry —
         truncated mid-record, bit-flipped, stale schema — is never
         trusted.  Drop it and let the engine re-run the job; the
         fresh completion re-journals a good entry. *)
      let drop why =
        t.stats.corrupt <- t.stats.corrupt + 1;
        Util.Log.warnf "registry: dropping corrupt journal entry %s (%s)" file why;
        (try Sys.remove file with Sys_error _ -> ());
        None
      in
      match Util.Codec.read_file file with
      | exception Util.Codec.Corrupt why -> drop why
      | None -> None
      | Some bytes -> (
          match
            let d = Util.Codec.unframe ~kind ~version bytes in
            let json = read_json d in
            Util.Codec.expect_end d;
            json
          with
          | json ->
              t.stats.replayed <- t.stats.replayed + 1;
              Store.touch file;
              Some json
          | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
          | exception e ->
              let why =
                match e with Util.Codec.Corrupt why -> why | e -> Printexc.to_string e
              in
              drop why))

let gc t ~keep =
  match t.dir with
  | None -> 0
  | Some dir ->
      let keys = Hashtbl.create (Array.length keep) in
      Array.iter (fun job -> Hashtbl.replace keys (Job.result_signature job) ()) keep;
      Store.gc_dir ~dir ~kind ~keep:(Hashtbl.mem keys)

let sweep t ~max_entries =
  match t.dir with
  | None -> 0
  | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> 0
      | files ->
          let prefix = kind ^ "-" and suffix = ".opra" in
          let entries =
            Array.to_list files
            |> List.filter_map (fun f ->
                   if String.starts_with ~prefix f && Filename.check_suffix f suffix then
                     match Unix.stat (Filename.concat dir f) with
                     | exception Unix.Unix_error (_, _, _) -> None
                     | st -> Some (f, st.Unix.st_mtime)
                   else None)
          in
          let excess = List.length entries - max_entries in
          if excess <= 0 then 0
          else begin
            (* Oldest first, name-tie-broken, same clock as Store.evict:
               replay touches mtimes, so recently reused results stay. *)
            let by_age =
              List.sort
                (fun (fa, ta) (fb, tb) ->
                  let c = Float.compare ta tb in
                  if c <> 0 then c else String.compare fa fb)
                entries
            in
            List.iteri
              (fun i (f, _) ->
                if i < excess then
                  try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
              by_age;
            excess
          end)
