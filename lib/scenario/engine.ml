exception Invalid_batch of string

type config = {
  cache_dir : string option;
  jobs_parallel : int;
  domains : int;
  metrics : Util.Metrics.t;
  warm_start : bool;
  precond : Linalg.Precond.kind;
  resume : bool;
  shard : (int * int) option;
}

let default_config =
  {
    cache_dir = None;
    jobs_parallel = 1;
    domains = 0;
    metrics = Util.Metrics.global;
    warm_start = true;
    precond = Linalg.Precond.Cholesky;
    resume = false;
    shard = None;
  }

type result = { job : Job.t; record : Util.Json.t; response : Opera.Response.t option }

type summary = {
  jobs : int;
  groups : int;
  factorizations : int;
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;
  replayed : int;
  journaled : int;
  registry_corrupt : int;
  elapsed_seconds : float;
}

(* Shard membership is a pure function of the job's position in the
   batch file, so k processes parsing the same file agree on the
   partition without coordinating — and every index lands in exactly
   one shard. *)
let shard_of i ~shards =
  if shards < 1 then invalid_arg "Engine.shard_of: shard count must be >= 1";
  let h = Util.Codec.fnv1a (Printf.sprintf "job-index:%d" i) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let vdd_default = 1.2

(* ---- planning ------------------------------------------------------- *)

let plan jobs =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i job ->
      let s = Job.signature job in
      match Hashtbl.find_opt tbl s with
      | Some l -> l := i :: !l
      | None ->
          let l = ref [ i ] in
          Hashtbl.add tbl s l;
          order := l :: !order)
    jobs;
  List.rev !order |> List.map (fun l -> Array.of_list (List.rev !l)) |> Array.of_list

(* ---- artifact keys --------------------------------------------------- *)

let tagged_key job tag =
  Store.key_of_bytes (Job.operator_bytes job ^ "\x00" ^ tag)

let h_key job tag h =
  let e = Util.Codec.encoder () in
  Util.Codec.write_string e tag;
  Util.Codec.write_float e h;
  Store.key_of_bytes (Job.operator_bytes job ^ "\x00" ^ Util.Codec.contents e)

(* One artifact per (h, testing point): the st route factors a distinct
   stepping matrix per point, and the point set is pinned by the
   operator bytes (candidates + seed live there), so index [i] always
   names the same matrix on a warm run. *)
let st_point_key job h i =
  let e = Util.Codec.encoder () in
  Util.Codec.write_string e "st-mt";
  Util.Codec.write_float e h;
  Util.Codec.write_int e i;
  Store.key_of_bytes (Job.operator_bytes job ^ "\x00" ^ Util.Codec.contents e)

let chol_version = 1

let cached_factor store ~count ~key ~dim build =
  Store.find_or_build store ~kind:"chol" ~version:chol_version ~key
    ~encode:Linalg.Sparse_cholesky.encode
    ~decode:(fun d ->
      let f = Linalg.Sparse_cholesky.decode d in
      if Linalg.Sparse_cholesky.dim f <> dim then
        raise
          (Util.Codec.Corrupt
             (Printf.sprintf "cholesky artifact has dimension %d, operator needs %d"
                (Linalg.Sparse_cholesky.dim f) dim));
      f)
    ~build:(fun () ->
      count ();
      build ())

let tp_provider store basis =
  let e = Util.Codec.encoder () in
  Util.Codec.write_string e "triple";
  Array.iter
    (fun f -> Util.Codec.write_string e f.Polychaos.Family.name)
    (Polychaos.Basis.families basis);
  Util.Codec.write_int e (Polychaos.Basis.dim basis);
  Util.Codec.write_int e (Polychaos.Basis.order basis);
  Store.find_or_build store ~kind:"triple" ~version:1
    ~key:(Store.key_of_bytes (Util.Codec.contents e))
    ~encode:Polychaos.Triple_product.encode
    ~decode:(Polychaos.Triple_product.decode basis)
    ~build:(fun () -> Polychaos.Triple_product.create basis)

(* ---- group contexts --------------------------------------------------

   All artifact IO and every factorization happens here, on the main
   domain, before any job fans out: the store is single-domain, and a
   shared factor must be complete before two jobs apply it
   concurrently (read-only, through workspace-explicit solves). *)

type galerkin_ctx = {
  model : Opera.Stochastic_model.t;
  gspec : Powergrid.Grid_spec.t option;
  gvdd : float;
  fdc : Linalg.Sparse_cholesky.t option;  (** Direct route: factor of Gt *)
  fmt : (float * Linalg.Sparse_cholesky.t) list;  (** Direct route: Gt + Ct/h per h *)
  ct : Linalg.Sparse.t option;  (** assembled Ct for stepping right-hand sides *)
}

type special_ctx = {
  sc : Opera.Special_case.t;
  sspec : Powergrid.Grid_spec.t;
  sfdc : Linalg.Sparse_cholesky.t;  (** factor of G *)
  sfbe : (float * Linalg.Sparse_cholesky.t) list;  (** factor of G + C/h per h *)
}

type st_ctx = {
  stmodel : Opera.Stochastic_model.t;
  stspec : Powergrid.Grid_spec.t option;
  stvdd : float;
  stpoints : Opera.St_solver.points;
  stf0 : Linalg.Sparse_cholesky.t option;
      (** factor of the mean G(0); [None] under a non-exact [--precond]
          (the solver builds its own mean-block backend) *)
  stfstep : (float * Linalg.Sparse_cholesky.t array) list;
      (** per h: one factor of [G(xi_i) + C(xi_i)/h] per testing point;
          empty under a non-exact [--precond] *)
}

type ctx = Galerkin_ctx of galerkin_ctx | Special_ctx of special_ctx | St_ctx of st_ctx

let scaled_varmodel s =
  let vm = Opera.Varmodel.paper_default in
  {
    vm with
    Opera.Varmodel.sigma_w = vm.Opera.Varmodel.sigma_w *. s;
    sigma_t = vm.Opera.Varmodel.sigma_t *. s;
    sigma_l = vm.Opera.Varmodel.sigma_l *. s;
  }

let stepping_hs members =
  Array.to_list members
  |> List.filter_map (fun (j : Job.t) ->
         match j.analysis with Job.Dc -> None | _ -> Some j.h)
  |> List.sort_uniq compare

let build_galerkin_ctx store count ~precond (rep : Job.t) members =
  let circuit, gvdd, gspec =
    match rep.Job.source with
    | Job.Generated { nodes } ->
        let spec = Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes in
        (Powergrid.Grid_gen.generate spec, spec.Powergrid.Grid_spec.vdd, Some spec)
    | Job.Netlist path ->
        let parsed = Powergrid.Netlist.parse_file path in
        (parsed.Powergrid.Netlist.circuit, vdd_default, None)
  in
  let vm = scaled_varmodel rep.sigma_scale in
  let model =
    Opera.Stochastic_model.build ~order:rep.order ~tp:(tp_provider store) vm ~vdd:gvdd circuit
  in
  match rep.solver with
  | Opera.Galerkin.Mean_pcg _ | Opera.Galerkin.Matrix_free_pcg _ ->
      (* Iterative jobs run through the full Galerkin machinery; they
         share the expanded model (and the cached triple-product tensor)
         but factor their small nominal blocks per job. *)
      Galerkin_ctx { model; gspec; gvdd; fdc = None; fmt = []; ct = None }
  | Opera.Galerkin.Direct ->
      let size = Polychaos.Basis.size model.Opera.Stochastic_model.basis in
      let dim = size * model.Opera.Stochastic_model.n in
      let perm =
        Store.find_or_build store ~kind:"perm" ~version:1 ~key:(tagged_key rep "block-ordering")
          ~encode:(fun p e -> Util.Codec.write_int_array e p)
          ~decode:(fun d ->
            let p = Util.Codec.read_int_array d in
            if Array.length p <> dim || not (Linalg.Perm.is_valid p) then
              raise (Util.Codec.Corrupt "perm artifact does not match the operator");
            p)
          ~build:(fun () -> Opera.Galerkin.block_ordering model)
      in
      let gt = lazy (Opera.Galerkin.assemble_g model) in
      let fdc =
        cached_factor store ~count ~key:(tagged_key rep "gt") ~dim (fun () ->
            Linalg.Sparse_cholesky.factor ~perm (Lazy.force gt))
      in
      let hs = stepping_hs members in
      let ct = if hs = [] then None else Some (Opera.Galerkin.assemble_c model) in
      let fmt =
        List.map
          (fun h ->
            let f =
              cached_factor store ~count ~key:(h_key rep "mt" h) ~dim (fun () ->
                  Linalg.Sparse_cholesky.factor ~perm
                    (Linalg.Sparse.axpy ~alpha:(1.0 /. h) (Option.get ct) (Lazy.force gt)))
            in
            (h, f))
          hs
      in
      Galerkin_ctx { model; gspec; gvdd; fdc = Some fdc; fmt; ct }
  | Opera.Galerkin.St { candidates; seed; _ } ->
      (* Decoupled point solves on grid-sized (n, not size*n) matrices.
         Selection is deterministic given (basis, candidates, seed) and
         cheap next to a factorization, so only the factors and the node
         ordering go through the store. *)
      let n = model.Opera.Stochastic_model.n in
      let points =
        Opera.St_solver.select_points ~candidates ~seed model.Opera.Stochastic_model.basis
      in
      let size = Polychaos.Basis.size model.Opera.Stochastic_model.basis in
      let perm =
        Store.find_or_build store ~kind:"perm" ~version:1
          ~key:(tagged_key rep "st-node-ordering")
          ~encode:(fun p e -> Util.Codec.write_int_array e p)
          ~decode:(fun d ->
            let p = Util.Codec.read_int_array d in
            if Array.length p <> n || not (Linalg.Perm.is_valid p) then
              raise (Util.Codec.Corrupt "st node ordering does not match the grid");
            p)
          ~build:(fun () ->
            Linalg.Ordering.compute Linalg.Ordering.Nested_dissection
              (Opera.Stochastic_model.node_pattern model))
      in
      (* Under a non-exact preconditioner the engine caches no factors at
         all: passing [f0]/[fstep] would pin the solver's exact path, and
         at the node counts where ic0/amg matter the N+1 per-point
         stepping factors are exactly the memory this knob avoids. *)
      let exact = precond = Linalg.Precond.Cholesky in
      let stf0 =
        if not exact then None
        else
          Some
            (cached_factor store ~count ~key:(tagged_key rep "st-g0") ~dim:n (fun () ->
                 Linalg.Sparse_cholesky.factor ~perm (Opera.St_solver.mean_g model)))
      in
      let stfstep =
        if not exact then []
        else
          List.map
            (fun h ->
              let fs =
                Array.init size (fun i ->
                    cached_factor store ~count ~key:(st_point_key rep h i) ~dim:n (fun () ->
                        Linalg.Sparse_cholesky.factor ~perm
                          (Opera.St_solver.step_matrix model points i ~h)))
              in
              (h, fs))
            (stepping_hs members)
      in
      St_ctx { stmodel = model; stspec = gspec; stvdd = gvdd; stpoints = points; stf0; stfstep }

let build_special_ctx store count (rep : Job.t) members =
  let regions, lambda =
    match rep.Job.analysis with
    | Job.Special { regions; lambda } -> (regions, lambda)
    | _ -> invalid_arg "Engine.build_special_ctx: not a special-case job"
  in
  let nodes =
    match rep.source with
    | Job.Generated { nodes } -> nodes
    | Job.Netlist _ ->
        (* Job.of_json rejects this combination; keep the invariant local. *)
        invalid_arg "Engine.build_special_ctx: special-case jobs need a generated grid"
  in
  let rx, ry = Job.region_split regions in
  if rx * ry <> regions then
    (* Job.of_json rejects these; a hand-built job must not silently run
       with a different region count than its signature was hashed on. *)
    invalid_arg
      (Printf.sprintf "Engine.build_special_ctx: regions %d is not a near-square rx*ry tiling"
         regions);
  let sspec =
    {
      (Powergrid.Grid_spec.scale_to_nodes Powergrid.Grid_spec.default nodes) with
      Powergrid.Grid_spec.regions_x = rx;
      regions_y = ry;
    }
  in
  let circuit = Powergrid.Grid_gen.generate sspec in
  let leaks =
    Array.init
      (sspec.Powergrid.Grid_spec.rows * sspec.Powergrid.Grid_spec.cols)
      (fun node -> (node, Powergrid.Grid_gen.region_of_node sspec node, 5e-6))
  in
  let sc =
    Opera.Special_case.make ~order:rep.order ~regions ~lambda ~leaks
      ~vdd:sspec.Powergrid.Grid_spec.vdd circuit
  in
  let g = Powergrid.Mna.g_total sc.Opera.Special_case.mna in
  let n = sc.Opera.Special_case.mna.Powergrid.Mna.n in
  let sfdc =
    cached_factor store ~count ~key:(tagged_key rep "g") ~dim:n (fun () ->
        Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection g)
  in
  let hs = stepping_hs members in
  let c = lazy (Powergrid.Mna.c_total sc.Opera.Special_case.mna) in
  let sfbe =
    List.map
      (fun h ->
        let f =
          cached_factor store ~count ~key:(h_key rep "be" h) ~dim:n (fun () ->
              Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection
                (Linalg.Sparse.axpy ~alpha:(1.0 /. h) (Lazy.force c) g))
        in
        (h, f))
      hs
  in
  Special_ctx { sc; sspec; sfdc; sfbe }

let build_ctx store count ~precond (rep : Job.t) members =
  match rep.analysis with
  | Job.Special _ -> build_special_ctx store count rep members
  | Job.Dc | Job.Transient | Job.Yield _ -> build_galerkin_ctx store count ~precond rep members

(* ---- per-job execution ----------------------------------------------- *)

let resolve_probe (job : Job.t) spec n =
  match job.probe with
  | Some p -> p (* range-checked against n in [run], before jobs fan out *)
  | None -> (
      match spec with Some s -> Powergrid.Grid_gen.center_node s | None -> n / 2)

let scaled_model (model : Opera.Stochastic_model.t) (job : Job.t) =
  if Util.Floats.equal_exact job.drain_scale 1.0 then model
  else
    {
      model with
      Opera.Stochastic_model.u_drain_coefs =
        List.map
          (fun (rank, c) -> (rank, c *. job.drain_scale))
          model.Opera.Stochastic_model.u_drain_coefs;
    }

let num v = Util.Json.Num v

let base_fields (job : Job.t) ~probe extra =
  Util.Json.Obj
    ([
       ("job", Util.Json.Str job.name);
       ("analysis", Util.Json.Str (Job.analysis_name job.analysis));
       ("solver", Util.Json.Str (Job.solver_name job.solver));
       ("probe", num (float_of_int probe));
     ]
    @ extra)

(* DC moments straight from the augmented coefficient vector: block 0 is
   the mean, the variance is the norm-weighted sum of squares of the
   higher blocks. *)
let dc_record (job : Job.t) ~vdd ~(model : Opera.Stochastic_model.t) ~probe coefs =
  let n = model.Opera.Stochastic_model.n in
  let basis = model.Opera.Stochastic_model.basis in
  let size = Polychaos.Basis.size basis in
  let variance_at node =
    let acc = ref 0.0 in
    for k = 1 to size - 1 do
      let a = coefs.((k * n) + node) in
      acc := !acc +. (a *. a *. Polychaos.Basis.norm_sq basis k)
    done;
    !acc
  in
  let worst = ref 0.0 and worst_node = ref 0 in
  for node = 0 to n - 1 do
    let drop = vdd -. coefs.(node) in
    if drop > !worst then begin
      worst := drop;
      worst_node := node
    end
  done;
  base_fields job ~probe
    [
      ("n", num (float_of_int n));
      ("probe_mean", num coefs.(probe));
      ("probe_std", num (sqrt (variance_at probe)));
      ("worst_drop_mean", num !worst);
      ("worst_drop_node", num (float_of_int !worst_node));
    ]

let guarded_worst response ~vdd ~steps ~n =
  let worst = ref 0.0 and worst_node = ref 0 and worst_step = ref 1 in
  for step = 1 to steps do
    for node = 0 to n - 1 do
      let g =
        vdd
        -. Opera.Response.mean_at response ~step ~node
        +. (3.0 *. Opera.Response.std_at response ~step ~node)
      in
      if g > !worst then begin
        worst := g;
        worst_node := node;
        worst_step := step
      end
    done
  done;
  (!worst, !worst_node, !worst_step)

let transient_fields response ~vdd ~probe ~steps ~n =
  let worst, worst_node, worst_step = guarded_worst response ~vdd ~steps ~n in
  [
    ("n", num (float_of_int n));
    ("steps", num (float_of_int steps));
    ("final_mean", num (Opera.Response.mean_at response ~step:steps ~node:probe));
    ("final_std", num (Opera.Response.std_at response ~step:steps ~node:probe));
    ("worst_guarded_drop", num worst);
    ("worst_guarded_node", num (float_of_int worst_node));
    ("worst_guarded_step", num (float_of_int worst_step));
  ]

let yield_fields response ~vdd ~steps ~budget_pct =
  let budget = budget_pct /. 100.0 *. vdd in
  let worst_p = ref 0.0 and worst_step = ref 1 and worst_node = ref 0 in
  for step = 1 to steps do
    let p, node = Opera.Yield.grid_failure_probability_gaussian response ~step ~budget in
    if p > !worst_p then begin
      worst_p := p;
      worst_step := step;
      worst_node := node
    end
  done;
  [
    ("budget_pct", num budget_pct);
    ("worst_fail_p", num !worst_p);
    ("worst_fail_step", num (float_of_int !worst_step));
    ("worst_fail_node", num (float_of_int !worst_node));
  ]

(* Backward-Euler stepping against the group's shared factors — the
   allocation pattern of Galerkin.solve_transient's Direct route with
   the factorizations replaced by workspace-explicit applications of the
   shared, read-only factors. *)
let direct_transient (ctx : galerkin_ctx) (job : Job.t) ~probe ~inner reg =
  let model = scaled_model ctx.model job in
  let n = model.Opera.Stochastic_model.n in
  let basis = model.Opera.Stochastic_model.basis in
  let size = Polychaos.Basis.size basis in
  let dim = size * n in
  let fdc = Option.get ctx.fdc in
  let f = List.assoc job.h ctx.fmt in
  let ct = Option.get ctx.ct in
  let response =
    Opera.Response.create ~basis ~n ~steps:job.steps ~h:job.h ~vdd:ctx.gvdd
      ~probes:[| probe |]
  in
  let drain_buf = Array.make n 0.0 in
  let u = Array.make dim 0.0 in
  let rhs = Array.make dim 0.0 in
  let ct_a = Array.make dim 0.0 in
  let work = Array.make dim 0.0 in
  let a = Array.make dim 0.0 in
  Opera.Galerkin.rhs_into model ~drain_buf 0.0 a;
  Linalg.Sparse_cholesky.solve_in_place_ws fdc ~domains:inner ~work a;
  Opera.Response.record_step response ~step:0 ~coefs:a;
  for k = 1 to job.steps do
    let t = float_of_int k *. job.h in
    Opera.Galerkin.rhs_into model ~drain_buf t u;
    Linalg.Sparse.mul_vec_into ct a ct_a;
    for i = 0 to dim - 1 do
      rhs.(i) <- u.(i) +. (ct_a.(i) /. job.h)
    done;
    Util.Metrics.span reg "engine.step_s" (fun () ->
        Array.blit rhs 0 a 0 dim;
        (* Level-scheduled sweeps when the job owns spare domains;
           bitwise identical to the sequential path. *)
        Linalg.Sparse_cholesky.solve_in_place_ws f ~domains:inner ~work a);
    Opera.Response.record_step response ~step:k ~coefs:a
  done;
  response

let direct_dc (ctx : galerkin_ctx) (job : Job.t) ~inner reg =
  let model = scaled_model ctx.model job in
  let n = model.Opera.Stochastic_model.n in
  let size = Polychaos.Basis.size model.Opera.Stochastic_model.basis in
  let dim = size * n in
  let fdc = Option.get ctx.fdc in
  let drain_buf = Array.make n 0.0 in
  let coefs = Array.make dim 0.0 in
  let work = Array.make dim 0.0 in
  Opera.Galerkin.rhs_into model ~drain_buf 0.0 coefs;
  Util.Metrics.span reg "engine.step_s" (fun () ->
      Linalg.Sparse_cholesky.solve_in_place_ws fdc ~domains:inner ~work coefs);
  coefs

let galerkin_options (job : Job.t) reg ~probe ~inner ~warm_start ~precond =
  {
    Opera.Galerkin.default_options with
    Opera.Galerkin.solver = job.solver;
    probes = [| probe |];
    domains = inner;
    policy = job.policy;
    metrics = reg;
    warm_start;
    precond;
  }

let run_galerkin_job (ctx : galerkin_ctx) (job : Job.t) reg ~inner ~warm_start ~precond =
  let n = ctx.model.Opera.Stochastic_model.n in
  let probe = resolve_probe job ctx.gspec n in
  let vdd = ctx.gvdd in
  match (job.analysis, ctx.fdc) with
  | Job.Dc, Some _ ->
      let coefs = direct_dc ctx job ~inner reg in
      (dc_record job ~vdd ~model:ctx.model ~probe coefs, None)
  | Job.Dc, None ->
      let model = scaled_model ctx.model job in
      let options = galerkin_options job reg ~probe ~inner ~warm_start ~precond in
      let coefs = Opera.Galerkin.solve_dc ~options model in
      (dc_record job ~vdd ~model ~probe coefs, None)
  | (Job.Transient | Job.Yield _), _ ->
      let response =
        match ctx.fdc with
        | Some _ -> direct_transient ctx job ~probe ~inner reg
        | None ->
            let model = scaled_model ctx.model job in
            let options = galerkin_options job reg ~probe ~inner ~warm_start ~precond in
            let response, _stats =
              Opera.Galerkin.solve_transient ~options model ~h:job.h ~steps:job.steps
            in
            response
      in
      let fields = transient_fields response ~vdd ~probe ~steps:job.steps ~n in
      let fields =
        match job.analysis with
        | Job.Yield { budget_pct } ->
            fields @ yield_fields response ~vdd ~steps:job.steps ~budget_pct
        | _ -> fields
      in
      (base_fields job ~probe fields, Some response)
  | Job.Special _, _ -> invalid_arg "Engine.run_galerkin_job: special job in a Galerkin group"

let run_special_job (ctx : special_ctx) (job : Job.t) reg ~inner =
  let lambda =
    match job.analysis with
    | Job.Special { lambda; _ } -> lambda
    | _ -> invalid_arg "Engine.run_special_job: not a special-case job"
  in
  let n = ctx.sc.Opera.Special_case.mna.Powergrid.Mna.n in
  let probe = resolve_probe job (Some ctx.sspec) n in
  let sc =
    {
      ctx.sc with
      Opera.Special_case.lambda;
      leaks =
        (if Util.Floats.equal_exact job.leak_scale 1.0 then ctx.sc.Opera.Special_case.leaks
         else
           Array.map
             (fun (node, region, i0) -> (node, region, i0 *. job.leak_scale))
             ctx.sc.Opera.Special_case.leaks);
    }
  in
  let fbe = List.assoc job.h ctx.sfbe in
  let response, _elapsed =
    Opera.Special_case.solve ~domains:inner ~metrics:reg ~factors:(ctx.sfdc, fbe) sc ~h:job.h
      ~steps:job.steps ~probes:[| probe |]
  in
  let vdd = ctx.sspec.Powergrid.Grid_spec.vdd in
  let pce = Opera.Response.pce_at response ~node:probe ~step:job.steps in
  let fields =
    transient_fields response ~vdd ~probe ~steps:job.steps ~n
    @ [
        ("regions", num (float_of_int ctx.sc.Opera.Special_case.regions));
        ("lambda", num lambda);
        ("basis_size", num (float_of_int (Polychaos.Basis.size ctx.sc.Opera.Special_case.basis)));
        ("final_skew", num (Polychaos.Pce.skewness pce));
      ]
  in
  (base_fields job ~probe fields, Some response)

(* The engine precomputes everything (candidates, seed) shapes — the
   point set and every factor — so only the convergence knobs of the
   job's [St] payload still matter here. *)
let st_options_of (job : Job.t) reg ~probe ~inner ~precond =
  let tol, max_refine, candidates, seed =
    match job.solver with
    | Opera.Galerkin.St { tol; max_refine; candidates; seed } -> (tol, max_refine, candidates, seed)
    | _ -> invalid_arg "Engine.run_st_job: not an st job"
  in
  {
    Opera.St_solver.candidates;
    seed;
    refine_tol = tol;
    refine_max = max_refine;
    ordering = Linalg.Ordering.Nested_dissection;
    precond;
    probes = [| probe |];
    domains = inner;
    metrics = reg;
  }

let run_st_job (ctx : st_ctx) (job : Job.t) reg ~inner ~precond =
  let model = scaled_model ctx.stmodel job in
  let n = model.Opera.Stochastic_model.n in
  let probe = resolve_probe job ctx.stspec n in
  let vdd = ctx.stvdd in
  let options = st_options_of job reg ~probe ~inner ~precond in
  match job.analysis with
  | Job.Dc ->
      let coefs, _stats = Opera.St_solver.solve_dc ~options ~points:ctx.stpoints ?f0:ctx.stf0 model in
      (dc_record job ~vdd ~model ~probe coefs, None)
  | Job.Transient | Job.Yield _ ->
      let fstep = List.assoc_opt job.h ctx.stfstep in
      let response, _stats =
        Opera.St_solver.solve_transient ~options ~points:ctx.stpoints ?f0:ctx.stf0 ?fstep model
          ~h:job.h ~steps:job.steps
      in
      let fields = transient_fields response ~vdd ~probe ~steps:job.steps ~n in
      let fields =
        match job.analysis with
        | Job.Yield { budget_pct } ->
            fields @ yield_fields response ~vdd ~steps:job.steps ~budget_pct
        | _ -> fields
      in
      (base_fields job ~probe fields, Some response)
  | Job.Special _ -> invalid_arg "Engine.run_st_job: special job in an st group"

let run_job ctx job reg ~inner ~warm_start ~precond =
  Util.Metrics.incr reg "engine.jobs";
  Util.Metrics.span reg "engine.job_s" (fun () ->
      match ctx with
      | Galerkin_ctx g -> run_galerkin_job g job reg ~inner ~warm_start ~precond
      | Special_ctx s -> run_special_job s job reg ~inner
      | St_ctx s -> run_st_job s job reg ~inner ~precond)

(* ---- batch execution ------------------------------------------------- *)

let shard_filter config jobs =
  match config.shard with
  | None -> jobs
  | Some (i, k) ->
      if k < 1 || i < 0 || i >= k then
        raise
          (Invalid_batch
             (Printf.sprintf "shard %d/%d is not a valid partition (need 0 <= i < k)" i k));
      let sel = ref [] in
      Array.iteri (fun idx job -> if shard_of idx ~shards:k = i then sel := job :: !sel) jobs;
      Array.of_list (List.rev !sel)

let run ?(config = default_config) ?emit jobs =
  let t0 = Util.Timer.start () in
  let metrics = config.metrics in
  if Array.length jobs = 0 then raise (Invalid_batch "empty batch");
  (* Shard membership is decided on batch-file positions, BEFORE resume
     or planning, so k cooperating processes partition the same job set
     no matter which of them already journaled what. *)
  let jobs = shard_filter config jobs in
  let njobs = Array.length jobs in
  let store = Store.create ~metrics ~dir:config.cache_dir () in
  let registry = Registry.create ~dir:config.cache_dir () in
  (* Resume replays journaled records without building anything: a
     replayed job needs no context, no factors, not even its group. *)
  let out : result option array = Array.make njobs None in
  let done_ = Array.make njobs false in
  if config.resume then
    Array.iteri
      (fun i job ->
        match Registry.lookup registry job with
        | Some record ->
            out.(i) <- Some { job; record; response = None };
            done_.(i) <- true
        | None -> ())
      jobs;
  let pending =
    Array.of_list
      (List.filter (fun i -> not done_.(i)) (List.init njobs (fun i -> i)))
  in
  let npending = Array.length pending in
  let groups = plan (Array.map (fun i -> jobs.(i)) pending) in
  let factorizations = ref 0 in
  let count () =
    incr factorizations;
    Util.Metrics.incr metrics "engine.factorizations"
  in
  let ctx_of = Array.make njobs None in
  Array.iter
    (fun members ->
      let rep = jobs.(pending.(members.(0))) in
      let ctx =
        Util.Metrics.span metrics "engine.group_setup_s" (fun () ->
            build_ctx store count ~precond:config.precond rep
              (Array.map (fun i -> jobs.(pending.(i))) members))
      in
      Array.iter (fun i -> ctx_of.(pending.(i)) <- Some ctx) members)
    groups;
  (* Probe bounds need the built contexts (a netlist's node count is only
     known after parsing), but must be checked BEFORE the parallel fan-out
     so a bad spec surfaces as a normal usage error, not a backtrace out
     of a worker domain.  Replayed jobs were validated by the run that
     journaled them (an out-of-range probe never completes, hence never
     journals). *)
  Array.iter
    (fun i ->
      let job = jobs.(i) in
      match job.Job.probe with
      | None -> ()
      | Some p ->
          let n =
            match Option.get ctx_of.(i) with
            | Galerkin_ctx g -> g.model.Opera.Stochastic_model.n
            | Special_ctx s -> s.sc.Opera.Special_case.mna.Powergrid.Mna.n
            | St_ctx s -> s.stmodel.Opera.Stochastic_model.n
          in
          if p < 0 || p >= n then
            raise
              (Invalid_batch
                 (Printf.sprintf "job %s: probe %d out of range [0, %d)" job.Job.name p n)))
    pending;
  let jp = Int.max 1 (Int.min (Util.Parallel.resolve config.jobs_parallel) npending) in
  (* Jobs in flight own their domain: inner solver parallelism is forced
     sequential whenever the batch itself fans out, so the domain count
     stays bounded by [jobs_parallel]. *)
  let inner = if jp > 1 then 1 else config.domains in
  let regs = Array.init npending (fun _ -> Util.Metrics.create ()) in
  (* Streaming fan-out.  Workers claim pending jobs off an atomic
     counter; every completion journals its record, then publishes the
     result under [lock] and signals [cond].  Only the main domain
     emits: records leave in input order, each flushed as soon as it and
     every earlier-indexed job are done, so a killed run's JSONL is
     always an exact prefix of the uninterrupted stream.  A failing job
     parks its exception (lowest input index wins, matching the
     deterministic re-raise discipline of Util.Parallel.for_chunks) and
     later jobs still run; a failing emit callback stops further claims
     and re-raises after the in-flight jobs drain. *)
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let claim = Atomic.make 0 in
  let stop = Atomic.make false in
  let remaining = ref npending in
  let job_failure = ref None in
  let emit_failure = ref None in
  let work_one c =
    let i = pending.(c) in
    (match
       run_job (Option.get ctx_of.(i)) jobs.(i) regs.(c) ~inner ~warm_start:config.warm_start
         ~precond:config.precond
     with
    | record, response ->
        (* Journal-ahead: the record is on disk (atomically) before it
           can reach the stream, so --resume never misses an emitted
           record.  Registry serializes its own writes. *)
        Registry.record registry jobs.(i) record;
        Mutex.lock lock;
        out.(i) <- Some { job = jobs.(i); record; response };
        done_.(i) <- true
    | exception e ->
        Mutex.lock lock;
        (match !job_failure with
        | Some (j, _) when j <= i -> ()
        | _ -> job_failure := Some (i, e)));
    decr remaining;
    Condition.broadcast cond;
    Mutex.unlock lock
  in
  let rec worker_loop () =
    if not (Atomic.get stop) then begin
      let c = Atomic.fetch_and_add claim 1 in
      if c < npending then begin
        work_one c;
        worker_loop ()
      end
    end
  in
  let next_emit = ref 0 in
  let drain_ready () =
    match emit with
    | None -> ()
    | Some emit when !emit_failure = None ->
        let ready = ref [] in
        Mutex.lock lock;
        while !next_emit < njobs && done_.(!next_emit) do
          ready := Option.get out.(!next_emit) :: !ready;
          incr next_emit
        done;
        Mutex.unlock lock;
        (* The callback runs unlocked: it may flush to a pipe, block on a
           slow consumer, or raise — none of which may stall workers. *)
        List.iter
          (fun r ->
            if !emit_failure = None then
              match emit r with
              | () -> ()
              | exception e ->
                  emit_failure := Some e;
                  Atomic.set stop true)
          (List.rev !ready)
    | Some _ -> ()
  in
  let workers = Array.init (jp - 1) (fun _ -> Domain.spawn worker_loop) in
  let rec main_loop () =
    drain_ready ();
    if not (Atomic.get stop) then begin
      let c = Atomic.fetch_and_add claim 1 in
      if c < npending then begin
        work_one c;
        main_loop ()
      end
    end
  in
  main_loop ();
  (* Emit stragglers as their prefixes complete; on an emit failure the
     sink is dead, so just drain the in-flight jobs via the joins. *)
  Mutex.lock lock;
  while !remaining > 0 && !emit_failure = None do
    Condition.wait cond lock;
    Mutex.unlock lock;
    drain_ready ();
    Mutex.lock lock
  done;
  Mutex.unlock lock;
  Array.iter Domain.join workers;
  drain_ready ();
  Array.iter (fun reg -> Util.Metrics.merge_into reg ~into:metrics) regs;
  let rstats = Registry.stats registry in
  Util.Metrics.incr metrics ~by:rstats.Registry.replayed "registry.replays";
  Util.Metrics.incr metrics ~by:rstats.Registry.journaled "registry.writes";
  Util.Metrics.incr metrics ~by:rstats.Registry.corrupt "registry.corrupt";
  (match !job_failure with Some (_, e) -> raise e | None -> ());
  (match !emit_failure with Some e -> raise e | None -> ());
  let results = Array.map Option.get out in
  let st = Store.stats store in
  ( results,
    {
      jobs = njobs;
      groups = Array.length groups;
      factorizations = !factorizations;
      cache_hits = st.Store.hits;
      cache_misses = st.Store.misses;
      cache_corrupt = st.Store.corrupt;
      replayed = rstats.Registry.replayed;
      journaled = rstats.Registry.journaled;
      registry_corrupt = rstats.Registry.corrupt;
      elapsed_seconds = Util.Timer.elapsed_s t0;
    } )

let run_jsonl ?config out jobs =
  (* Stream: each record leaves the process the moment its prefix is
     complete, so a crash at job N loses nothing of jobs 0..N-1. *)
  let emit r =
    output_string out (Util.Json.render r.record);
    output_char out '\n';
    flush out
  in
  let _, summary = run ?config ~emit jobs in
  summary

let summary_line s =
  Printf.sprintf
    "batch: %d job(s) in %d group(s), %d factorization(s), cache %d hit(s) / %d miss(es)%s%s, %.2f s"
    s.jobs s.groups s.factorizations s.cache_hits s.cache_misses
    (if s.cache_corrupt > 0 then Printf.sprintf " (%d corrupt)" s.cache_corrupt else "")
    (if s.replayed > 0 then Printf.sprintf ", %d replayed" s.replayed else "")
    s.elapsed_seconds
