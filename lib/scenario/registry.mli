(** Crash-safe on-disk results registry — the journal behind
    [opera batch --resume].

    One completed job is one file in the cache directory,
    [result-<key>.opra] with [key = Job.result_signature] (operator
    digest plus every record-shaping knob the operator bytes exclude).
    Entries are {!Util.Codec} frames holding the job's rendered-record
    AST; each is written atomically (temp file + rename) the moment the
    job completes, so a killed batch keeps every finished job's record
    intact — the directory is the journal, there is no index file to
    corrupt.

    Replay is bitwise: {!Util.Json.render} is a pure function of the
    AST and floats cross the codec as IEEE-754 bit patterns, so a
    replayed record is byte-identical to the one the journaling run
    streamed.  A damaged entry (truncated mid-record, bit-flipped,
    stale schema) fails frame validation or decoding, is logged,
    removed and NOT trusted — the job simply re-runs.

    Unlike {!Store} (single-domain), {!record} may be called from the
    engine's worker domains; an internal mutex serializes journal
    writes and the stats. *)

type stats = {
  mutable replayed : int;  (** lookups that returned a journaled record *)
  mutable journaled : int;  (** records written this run *)
  mutable corrupt : int;  (** damaged entries dropped on lookup *)
}

type t

val create : dir:string option -> unit -> t
(** [dir = None] disables the registry ({!lookup} misses, {!record} is a
    no-op); [Some d] creates [d] if needed. *)

val disabled : t

val enabled : t -> bool

val stats : t -> stats

val path : t -> Job.t -> string option
(** On-disk journal entry of a job ([None] when disabled).  Exposed so
    crash tests can truncate an entry in place. *)

val record : t -> Job.t -> Util.Json.t -> unit
(** Journal a completed job's record atomically.  Thread-safe. *)

val lookup : t -> Job.t -> Util.Json.t option
(** The journaled record of [job], or [None] when absent or damaged
    (damaged entries are logged and removed, never replayed). *)

val gc : t -> keep:Job.t array -> int
(** Drop journal entries whose key matches no job in [keep]; returns the
    number removed.  Artifact files of other kinds are untouched. *)

val sweep : t -> max_entries:int -> int
(** Bound the journal by *count*: drop the oldest-mtime entries (ties
    broken by name) until at most [max_entries] remain; returns the
    number removed.  Replays refresh mtimes ({!Store.touch}), so the
    surviving entries are the most recently reused — the periodic-GC
    half of the service's disk budget, next to byte-capped
    {!Store.evict}. *)
