(** The batch scenario engine: plan, share, execute, stream.

    A batch of {!Job.t}s is grouped by {!Job.signature} — jobs sharing a
    deterministic operator share one group.  Each group's setup (grid
    generation, chaos expansion, symbolic ordering, numeric Cholesky
    factors, triple-product tensor) runs once on the main domain,
    read-through against the artifact {!Store}; jobs then execute across
    {!Util.Parallel} domains, applying the shared factors read-only
    through workspace-explicit solves, each with its own metrics
    registry (merged into the engine registry after the join).

    Factor sharing covers the [Direct] solver route, the special-case
    path and the stochastic-testing route ([st] — the node ordering, the
    mean-matrix factor and one stepping factor {e per testing point} all
    go through the store, so a warm [st] batch performs zero
    factorizations); iterative jobs ([pcg], [matrix-free]) share the
    expanded model and cached tensor but factor their small nominal
    blocks per job.  Batch transients use backward Euler.

    Determinism: job records contain only analysis results (no timings,
    no cache status), floats are rendered exactly ({!Util.Json.render}),
    and every solve is bitwise independent of [jobs_parallel] — so the
    JSONL stream of a batch is byte-identical across cold runs, warm
    runs and any domain count. *)

exception Invalid_batch of string
(** A batch that cannot run: empty, or a probe out of range for its
    job's grid.  Raised by {!run} on the main domain before any job
    executes, so the CLI can map it to the usage-error discipline
    (message on stderr, exit 2) instead of crashing out of a worker. *)

type config = {
  cache_dir : string option;  (** [None] disables the artifact store *)
  jobs_parallel : int;
      (** jobs in flight ({!Util.Parallel.resolve} convention: 0 =
          [OPERA_DOMAINS], default sequential) *)
  domains : int;
      (** inner solver parallelism per job; forced to 1 whenever
          [jobs_parallel > 1] so the domain count stays bounded *)
  metrics : Util.Metrics.t;
      (** receives [engine.factorizations], [engine.jobs],
          [engine.group_setup_s], [engine.step_s], the [store.*]
          counters, and every per-job registry (merged post-join) *)
  warm_start : bool;
      (** seed each transient step's Krylov solve from the previous
          step (with linear extrapolation) for iterative jobs; see
          {!Opera.Galerkin.options}.  Does not affect records of
          converged runs beyond iteration counts. *)
}

val default_config : config
(** No cache, sequential jobs, inner domains from the environment,
    global metrics, warm starting on. *)

type result = {
  job : Job.t;
  record : Util.Json.t;  (** the job's deterministic JSONL record *)
  response : Opera.Response.t option;
      (** full stochastic response for transient-family analyses ([None]
          for DC) — the hook the single-run CLI path uses to print rich
          reports from a one-job batch *)
}

type summary = {
  jobs : int;
  groups : int;
  factorizations : int;  (** numeric factorizations performed by the engine *)
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;
  elapsed_seconds : float;
}

val plan : Job.t array -> int array array
(** Group job indices by operator signature, in order of first
    occurrence; each inner array keeps batch order.  Exposed for tests
    and dry-run reporting. *)

val run : ?config:config -> Job.t array -> result array * summary
(** Execute a batch; results are indexed like the input jobs.  Raises
    {!Invalid_batch} on an empty batch or an out-of-range probe (checked
    after group setup, before any job runs), and propagates
    {!Opera.Galerkin.Solver_diverged} from jobs running under the [fail]
    policy. *)

val run_jsonl : ?config:config -> out_channel -> Job.t array -> summary
(** {!run}, then write one record per line in batch order. *)

val summary_line : summary -> string
(** One-line human summary (for stderr — never part of the JSONL). *)
