(** The batch scenario engine: plan, share, execute, stream, journal.

    A batch of {!Job.t}s is grouped by {!Job.signature} — jobs sharing a
    deterministic operator share one group.  Each group's setup (grid
    generation, chaos expansion, symbolic ordering, numeric Cholesky
    factors, triple-product tensor) runs once on the main domain,
    read-through against the artifact {!Store}; jobs then execute across
    worker domains, applying the shared factors read-only through
    workspace-explicit solves, each with its own metrics registry
    (merged into the engine registry after the join).

    Factor sharing covers the [Direct] solver route, the special-case
    path and the stochastic-testing route ([st] — the node ordering, the
    mean-matrix factor and one stepping factor {e per testing point} all
    go through the store, so a warm [st] batch performs zero
    factorizations); iterative jobs ([pcg], [matrix-free]) share the
    expanded model and cached tensor but factor their small nominal
    blocks per job.  Batch transients use backward Euler.

    Crash safety: when a cache dir is configured, every completed job is
    journaled into the results {!Registry} (atomic per-entry writes)
    {e before} its record can reach the stream, and {!run_jsonl} flushes
    each record as soon as it and all earlier-indexed jobs are done — so
    a batch killed at job N keeps both the journal entries and an exact
    JSONL prefix for jobs [0..N-1].  [resume] replays journaled records
    bitwise instead of re-running; [shard = Some (i, k)] deterministically
    partitions the batch by input index ({!shard_of}) so k independent
    processes sharing the cache dir cooperate with zero duplicated work.

    Determinism: job records contain only analysis results (no timings,
    no cache status), floats are rendered exactly ({!Util.Json.render}),
    and every solve is bitwise independent of [jobs_parallel] — so the
    JSONL stream of a batch is byte-identical across cold runs, warm
    runs, resumed runs and any domain count. *)

exception Invalid_batch of string
(** A batch that cannot run: empty, an invalid shard spec, or a probe
    out of range for its job's grid.  Raised by {!run} on the main
    domain before any job executes, so the CLI can map it to the
    usage-error discipline (message on stderr, exit 2) instead of
    crashing out of a worker. *)

type config = {
  cache_dir : string option;  (** [None] disables the artifact store and the results registry *)
  jobs_parallel : int;
      (** jobs in flight ({!Util.Parallel.resolve} convention: 0 =
          [OPERA_DOMAINS], default sequential) *)
  domains : int;
      (** inner solver parallelism per job; forced to 1 whenever
          [jobs_parallel > 1] so the domain count stays bounded *)
  metrics : Util.Metrics.t;
      (** receives [engine.factorizations], [engine.jobs],
          [engine.group_setup_s], [engine.step_s], the [store.*] and
          [registry.*] counters, and every per-job registry (merged
          post-join) *)
  warm_start : bool;
      (** seed each transient step's Krylov solve from the previous
          step (with linear extrapolation) for iterative jobs; see
          {!Opera.Galerkin.options}.  Does not affect records of
          converged runs beyond iteration counts. *)
  precond : Linalg.Precond.kind;
      (** mean-block preconditioner backend for iterative jobs (pcg,
          matrix-free and st): exact [Cholesky] (default — historical
          behavior bitwise), [Ic0], [Amg], or [Auto] (switches to AMG
          above {!Linalg.Precond.auto_threshold} nodes).  Under a
          non-exact backend the engine also stops caching st per-point
          stepping factors — bounded memory at 10^5+ nodes.  Direct and
          special-case jobs ignore it. *)
  resume : bool;
      (** replay journaled results from the cache dir instead of
          re-running their jobs; no-op without a [cache_dir] *)
  shard : (int * int) option;
      (** [Some (i, k)]: run only the jobs whose batch-file index hashes
          to shard [i] of [k] ({!shard_of}); results and summary then
          cover just this shard *)
}

val default_config : config
(** No cache, sequential jobs, inner domains from the environment,
    global metrics, warm starting on, no resume, no sharding. *)

type result = {
  job : Job.t;
  record : Util.Json.t;  (** the job's deterministic JSONL record *)
  response : Opera.Response.t option;
      (** full stochastic response for transient-family analyses ([None]
          for DC and for replayed jobs) — the hook the single-run CLI
          path uses to print rich reports from a one-job batch *)
}

type summary = {
  jobs : int;  (** jobs in this run (after shard filtering) *)
  groups : int;  (** operator groups among the jobs actually executed *)
  factorizations : int;  (** numeric factorizations performed by the engine *)
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;
  replayed : int;  (** jobs satisfied from the results registry *)
  journaled : int;  (** records written to the results registry *)
  registry_corrupt : int;  (** damaged journal entries dropped (jobs re-ran) *)
  elapsed_seconds : float;
}

val shard_of : int -> shards:int -> int
(** The shard owning batch-file index [i]: an FNV-1a hash of the index
    reduced mod [shards].  Pure and position-only, so cooperating
    processes agree on the partition without coordinating, and every
    index lands in exactly one shard. *)

val plan : Job.t array -> int array array
(** Group job indices by operator signature, in order of first
    occurrence; each inner array keeps batch order.  Exposed for tests
    and dry-run reporting. *)

val run : ?config:config -> ?emit:(result -> unit) -> Job.t array -> result array * summary
(** Execute a batch; results are indexed like the (shard-filtered)
    input jobs.  [emit] is called on the main domain, in input order,
    for each result as soon as it and every earlier-indexed result is
    available — including replayed results, which stream first.  An
    exception from [emit] stops further job claims, drains the jobs in
    flight, and is re-raised.  Raises {!Invalid_batch} on an empty
    batch, an invalid shard spec or an out-of-range probe (checked
    after group setup, before any job runs), and propagates
    {!Opera.Galerkin.Solver_diverged} from jobs running under the
    [fail] policy (after all other jobs finish; the earliest-indexed
    failure wins, and no record past it is emitted). *)

val run_jsonl : ?config:config -> out_channel -> Job.t array -> summary
(** {!run} with [emit] writing and flushing one record per line in
    batch order: the stream on disk is always an exact prefix of the
    full batch output, whatever jobs 0..N-1 completed when the process
    died. *)

val summary_line : summary -> string
(** One-line human summary (for stderr — never part of the JSONL). *)
