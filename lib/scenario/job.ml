type analysis =
  | Dc
  | Transient
  | Special of { regions : int; lambda : float }
  | Yield of { budget_pct : float }

type source = Generated of { nodes : int } | Netlist of string

type t = {
  name : string;
  source : source;
  analysis : analysis;
  order : int;
  h : float;
  steps : int;
  solver : Opera.Galerkin.solver;
  policy : Opera.Galerkin.policy;
  sigma_scale : float;
  drain_scale : float;
  leak_scale : float;
  probe : int option;
}

let analysis_name = function
  | Dc -> "dc"
  | Transient -> "transient"
  | Special _ -> "special"
  | Yield _ -> "yield"

let solver_of_string ?(st_candidates = 0) ?(st_seed = 1L) = function
  | "direct" -> Ok Opera.Galerkin.Direct
  | "pcg" -> Ok (Opera.Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 })
  | "matrix-free" -> Ok (Opera.Galerkin.Matrix_free_pcg { tol = 1e-10; max_iter = 500 })
  | "st" -> (
      match Opera.Galerkin.default_st with
      | Opera.Galerkin.St k ->
          Ok (Opera.Galerkin.St { k with candidates = st_candidates; seed = st_seed })
      | _ -> assert false)
  | s -> Error (Printf.sprintf "unknown solver %S (direct, pcg, matrix-free, st)" s)

let solver_name = function
  | Opera.Galerkin.Direct -> "direct"
  | Opera.Galerkin.Mean_pcg _ -> "pcg"
  | Opera.Galerkin.Matrix_free_pcg _ -> "matrix-free"
  | Opera.Galerkin.St _ -> "st"

let policy_of_string = function
  | "fail" -> Ok Opera.Galerkin.Fail
  | "warn" -> Ok Opera.Galerkin.Warn
  | "fallback" -> Ok Opera.Galerkin.Fallback
  | s -> Error (Printf.sprintf "unknown solver policy %S (fail, warn, fallback)" s)

let policy_name = function
  | Opera.Galerkin.Fail -> "fail"
  | Opera.Galerkin.Warn -> "warn"
  | Opera.Galerkin.Fallback -> "fallback"

(* ---- JSON spec parsing ----------------------------------------------

   A job is one JSON object; a batch is {"jobs": [...]} with an optional
   {"defaults": {...}} object whose fields apply wherever a job omits
   them.  Unknown keys are an error — a typo in a field name must not
   silently fall back to a default. *)

let known_keys =
  [
    "name"; "analysis"; "nodes"; "netlist"; "order"; "steps"; "step_ps"; "solver"; "policy";
    "sigma_scale"; "drain_scale"; "leak_scale"; "regions"; "lambda"; "budget_pct"; "probe";
    "st_candidates"; "st_seed";
  ]

let ( let* ) = Result.bind

let field defaults job key =
  match Util.Json.member key job with
  | Some v -> Some v
  | None -> Util.Json.member key defaults

let typed ~what ~conv ~default defaults job key =
  match field defaults job key with
  | None -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S must be %s" key what))

let float_field = typed ~what:"a number" ~conv:Util.Json.to_float

let int_field = typed ~what:"an integer" ~conv:Util.Json.to_int

let string_field = typed ~what:"a string" ~conv:Util.Json.to_string

let check_keys obj =
  List.fold_left
    (fun acc key ->
      let* () = acc in
      if List.mem key known_keys then Ok ()
      else Error (Printf.sprintf "unknown job field %S" key))
    (Ok ()) (Util.Json.keys obj)

let positive name v = if v > 0.0 then Ok v else Error (Printf.sprintf "field %S must be > 0" name)

let positive_int name v = if v > 0 then Ok v else Error (Printf.sprintf "field %S must be > 0" name)

(* Near-square tiling of a special-case region count: rx = round(sqrt
   regions), ry = regions / rx.  The engine builds the grid with exactly
   this split, so counts where rx * ry <> regions (5, 7, 8, ...) cannot
   be honored; [of_json] rejects them instead of silently running with a
   different region count (which would also desynchronize the operator
   signature from the grid actually built). *)
let region_split regions =
  let side = int_of_float (Float.round (sqrt (float_of_int regions))) in
  let rx = Int.max 1 side in
  (rx, Int.max 1 (regions / rx))

let tileable regions =
  let rx, ry = region_split regions in
  rx * ry = regions

let check_regions regions =
  if tileable regions then Ok regions
  else begin
    let below = ref (regions - 1) in
    while not (tileable !below) do decr below done;
    let above = ref (regions + 1) in
    while not (tileable !above) do incr above done;
    Error
      (Printf.sprintf
         "field \"regions\" must tile a near-square rx*ry grid; %d does not (nearest are %d and %d)"
         regions !below !above)
  end

let of_json ?(defaults = Util.Json.Obj []) ?(name = "job") json =
  match json with
  | Util.Json.Obj _ ->
      let* () = check_keys json in
      let* name = string_field ~default:name defaults json "name" in
      let* kind = string_field ~default:"transient" defaults json "analysis" in
      let* nodes = int_field ~default:240 defaults json "nodes" in
      let* nodes = positive_int "nodes" nodes in
      let* netlist = string_field ~default:"" defaults json "netlist" in
      let source = if netlist = "" then Generated { nodes } else Netlist netlist in
      let* order = int_field ~default:2 defaults json "order" in
      let* order = positive_int "order" order in
      let* steps = int_field ~default:8 defaults json "steps" in
      let* steps = positive_int "steps" steps in
      let* step_ps = float_field ~default:125.0 defaults json "step_ps" in
      let* step_ps = positive "step_ps" step_ps in
      let* solver = string_field ~default:"direct" defaults json "solver" in
      let* st_candidates = int_field ~default:0 defaults json "st_candidates" in
      let* st_candidates =
        if st_candidates >= 0 then Ok st_candidates
        else Error "field \"st_candidates\" must be >= 0"
      in
      let* st_seed = int_field ~default:1 defaults json "st_seed" in
      let* solver = solver_of_string ~st_candidates ~st_seed:(Int64.of_int st_seed) solver in
      let* policy = string_field ~default:"warn" defaults json "policy" in
      let* policy = policy_of_string policy in
      let* sigma_scale = float_field ~default:1.0 defaults json "sigma_scale" in
      let* drain_scale = float_field ~default:1.0 defaults json "drain_scale" in
      let* leak_scale = float_field ~default:1.0 defaults json "leak_scale" in
      let* regions = int_field ~default:4 defaults json "regions" in
      let* regions = positive_int "regions" regions in
      let* lambda = float_field ~default:0.5 defaults json "lambda" in
      let* budget_pct = float_field ~default:10.0 defaults json "budget_pct" in
      let* probe = int_field ~default:(-1) defaults json "probe" in
      let probe = if probe >= 0 then Some probe else None in
      let* analysis =
        match kind with
        | "dc" -> Ok Dc
        | "transient" -> Ok Transient
        | "special" ->
            if netlist <> "" then
              Error "special-case jobs need a generated grid (region geometry unknown for netlists)"
            else
              let* regions = check_regions regions in
              Ok (Special { regions; lambda })
        | "yield" -> Ok (Yield { budget_pct })
        | s -> Error (Printf.sprintf "unknown analysis %S (dc, transient, special, yield)" s)
      in
      Ok
        {
          name;
          source;
          analysis;
          order;
          h = step_ps *. 1e-12;
          steps;
          solver;
          policy;
          sigma_scale;
          drain_scale;
          leak_scale;
          probe;
        }
  | _ -> Error "job spec must be a JSON object"

let batch_of_json json =
  let defaults =
    match Util.Json.member "defaults" json with
    | Some (Util.Json.Obj _ as d) -> Ok d
    | Some _ -> Error "\"defaults\" must be an object"
    | None -> Ok (Util.Json.Obj [])
  in
  let* defaults in
  let* () =
    match json with
    | Util.Json.Obj fields ->
        List.fold_left
          (fun acc (key, _) ->
            let* () = acc in
            if key = "jobs" || key = "defaults" then Ok ()
            else Error (Printf.sprintf "unknown batch field %S" key))
          (Ok ()) fields
    | _ -> Error "batch spec must be a JSON object with a \"jobs\" array"
  in
  match Util.Json.member "jobs" json with
  | Some (Util.Json.List jobs) ->
      let* parsed =
        List.fold_left
          (fun acc (i, j) ->
            let* rev = acc in
            match of_json ~defaults ~name:(Printf.sprintf "job%d" i) j with
            | Ok job -> Ok (job :: rev)
            | Error e -> Error (Printf.sprintf "job %d: %s" i e))
          (Ok [])
          (List.mapi (fun i j -> (i, j)) jobs)
      in
      if parsed = [] then Error "batch spec has no jobs"
      else
        (* Names key the JSONL records downstream consumers join on —
           a collision makes two records indistinguishable. *)
        let jobs = Array.of_list (List.rev parsed) in
        let seen = Hashtbl.create (Array.length jobs) in
        let* () =
          Array.fold_left
            (fun acc job ->
              let* () = acc in
              if Hashtbl.mem seen job.name then
                Error (Printf.sprintf "duplicate job name %S (job names must be unique)" job.name)
              else begin
                Hashtbl.add seen job.name ();
                Ok ()
              end)
            (Ok ()) jobs
        in
        Ok jobs
  | Some _ -> Error "\"jobs\" must be an array"
  | None -> Error "batch spec must carry a \"jobs\" array"

let batch_of_file path =
  match Util.Json.parse_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok json -> batch_of_json json

(* ---- operator signature ---------------------------------------------

   Jobs sharing a signature share their deterministic operator: same
   grid, same variation structure, same expansion order, same solver
   route.  The canonical bytes deliberately EXCLUDE the excitation-only
   knobs (drain_scale, leak_scale, lambda), the timestep (stepping
   factors are keyed per-h downstream), the step count, the probe and
   the convergence policy — none of them change the matrices, so jobs
   differing only there still share one factorization. *)

(* A netlist-sourced operator is shaped by the file's CONTENTS, not its
   name: editing a netlist in place must change the signature, or a warm
   --cache-dir run would silently reuse orderings and factors of the old
   circuit — breaking the store's contract that a stale cache can only
   cost time, never correctness.  An unreadable file digests to a fixed
   marker; the engine then fails with a proper parse error when it
   actually opens the file. *)
let netlist_digest path =
  match Digest.file path with
  | d -> Digest.to_hex d
  | exception Sys_error _ -> "<unreadable>"

let operator_bytes job =
  let e = Util.Codec.encoder () in
  (match job.analysis with
  | Dc | Transient | Yield _ ->
      Util.Codec.write_string e "galerkin";
      Util.Codec.write_float e job.sigma_scale
  | Special { regions; lambda = _ } ->
      Util.Codec.write_string e "special";
      Util.Codec.write_int e regions);
  (match job.source with
  | Generated { nodes } ->
      Util.Codec.write_string e "generated";
      Util.Codec.write_int e nodes
  | Netlist path ->
      Util.Codec.write_string e "netlist";
      Util.Codec.write_string e path;
      Util.Codec.write_string e (netlist_digest path));
  Util.Codec.write_int e job.order;
  Util.Codec.write_string e (solver_name job.solver);
  (* The st testing points (hence every per-point factor) are a
     deterministic function of (basis, candidates, seed): the knobs
     must invalidate cached point factors, while tol/max_refine are
     convergence-only and stay out — like pcg's tol/max_iter. *)
  (match job.solver with
  | Opera.Galerkin.St { candidates; seed; _ } ->
      Util.Codec.write_int e candidates;
      Util.Codec.write_i64 e seed
  | _ -> ());
  Util.Codec.contents e

let signature job = Digest.to_hex (Digest.string (operator_bytes job))

(* ---- result signature ------------------------------------------------

   The registry journals completed RECORDS, so its key must pin down
   everything that can change a record: the operator bytes plus exactly
   the knobs [operator_bytes] excludes because they don't reshape the
   matrices — excitation scales, timestep, step count, probe, analysis
   payload (lambda, budget), policy and convergence tolerances.  Two
   jobs with equal [result_bytes] produce bitwise-equal records, so a
   journaled record can be replayed without re-running the solve. *)

let result_bytes job =
  let e = Util.Codec.encoder () in
  Util.Codec.write_string e (operator_bytes job);
  Util.Codec.write_string e job.name;
  Util.Codec.write_string e (analysis_name job.analysis);
  (match job.analysis with
  | Dc | Transient -> ()
  | Special { regions = _; lambda } ->
      (* regions already live in the operator bytes *)
      Util.Codec.write_float e lambda
  | Yield { budget_pct } -> Util.Codec.write_float e budget_pct);
  Util.Codec.write_float e job.h;
  Util.Codec.write_int e job.steps;
  (* Convergence knobs can change how far an iterative solve runs, hence
     the digits of the record; [operator_bytes] deliberately leaves them
     out (they never invalidate a factorization). *)
  (match job.solver with
  | Opera.Galerkin.Direct -> ()
  | Opera.Galerkin.Mean_pcg { tol; max_iter } | Opera.Galerkin.Matrix_free_pcg { tol; max_iter }
    ->
      Util.Codec.write_float e tol;
      Util.Codec.write_int e max_iter
  | Opera.Galerkin.St { tol; max_refine; candidates = _; seed = _ } ->
      Util.Codec.write_float e tol;
      Util.Codec.write_int e max_refine);
  Util.Codec.write_string e (policy_name job.policy);
  Util.Codec.write_float e job.drain_scale;
  Util.Codec.write_float e job.leak_scale;
  (match job.probe with
  | None -> Util.Codec.write_bool e false
  | Some p ->
      Util.Codec.write_bool e true;
      Util.Codec.write_int e p);
  Util.Codec.contents e

let result_signature job = Digest.to_hex (Digest.string (result_bytes job))
