(** Dense vectors of floats.

    A vector is a plain [float array]; this module collects the numerical
    kernels used throughout the library so callers never open-code loops. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val fill : t -> float -> unit

val dot : t -> t -> float
(** [dot x y] is the inner product. Raises [Invalid_argument] on length
    mismatch. *)

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] computes [y <- alpha * x + y] in place. *)

val scale : float -> t -> unit
(** [scale alpha x] computes [x <- alpha * x] in place. *)

val scaled : float -> t -> t
(** [scaled alpha x] is a fresh vector [alpha * x]. *)

val add : t -> t -> t

val sub : t -> t -> t

val mul_elementwise : t -> t -> t

val neg : t -> t

val sum : t -> float

val mean : t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val dist2 : t -> t -> float
(** [dist2 x y] is [norm2 (x - y)] without allocating the difference. *)

val max_abs_index : t -> int
(** Index of the entry of largest magnitude. Raises on the empty vector. *)

val min : t -> float

val max : t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol] (default 1e-9). *)

val rel_error : t -> reference:t -> float
(** [rel_error x ~reference] is [norm2 (x - reference) / norm2 reference];
    if the reference is the zero vector it is [norm2 x]. *)
