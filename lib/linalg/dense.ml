type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Dense.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Dense.of_arrays: ragged rows")
      rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let to_arrays m = Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let dims m = (m.rows, m.cols)

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg (Printf.sprintf "Dense: index (%d, %d) out of bounds %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- v

let add_entry m i j v =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. v

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let check_same_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Dense.%s: dimension mismatch" name)

let zip name f a b =
  check_same_dims name a b;
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = zip "add" ( +. ) a b

let sub a b = zip "sub" ( -. ) a b

let scale alpha a = { a with data = Array.map (fun v -> alpha *. v) a.data }

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Dense.matmul: inner dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if Util.Floats.nonzero aik then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <- c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let matvec a x =
  if a.cols <> Array.length x then invalid_arg "Dense.matvec: dimension mismatch";
  let y = Vec.create a.rows in
  for i = 0 to a.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.((i * a.cols) + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let matvec_t a x =
  if a.rows <> Array.length x then invalid_arg "Dense.matvec_t: dimension mismatch";
  let y = Vec.create a.cols in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if Util.Floats.nonzero xi then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.((i * a.cols) + j) *. xi)
      done
  done;
  y

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Dense.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Dense.col: out of bounds";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let frobenius_norm m = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m.data)

let max_abs m = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 m.data

let is_symmetric ?(tol = 1e-12) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (m.data.((i * m.cols) + j) -. m.data.((j * m.cols) + i)) > tol then ok := false
    done
  done;
  !ok

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && Vec.approx_equal ~tol a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%12.5g%s" m.data.((i * m.cols) + j) (if j = m.cols - 1 then "" else " ")
    done;
    Format.fprintf ppf "]@,"
  done;
  Format.fprintf ppf "@]"
