type kind = Natural | Rcm | Min_degree | Nested_dissection

let adjacency a =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Ordering.adjacency: matrix is not square";
  let at = Sparse.transpose a in
  let sym = Sparse.add a at in
  let { Sparse.colptr; rowind; _ } = sym in
  Array.init n (fun j ->
      let lo = colptr.(j) and hi = colptr.(j + 1) in
      let neighbors = ref [] in
      for k = hi - 1 downto lo do
        if rowind.(k) <> j then neighbors := rowind.(k) :: !neighbors
      done;
      Array.of_list !neighbors)

(* --- Reverse Cuthill–McKee ------------------------------------------- *)

let bfs_levels adj start visited =
  (* Returns the BFS levels from [start] over unvisited nodes —
     DEEPEST level first — without marking [visited].  The
     deepest-first order lets the pseudo-peripheral search read the
     last frontier as [List.hd] instead of an O(levels) [List.nth]
     (which made the whole refinement loop quadratic in the graph
     diameter — painful on long thin grids). *)
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen start ();
  let rec go frontier levels =
    let next =
      List.concat_map
        (fun v ->
          Array.to_list adj.(v)
          |> List.filter (fun u ->
                 if visited.(u) || Hashtbl.mem seen u then false
                 else begin
                   Hashtbl.replace seen u ();
                   true
                 end))
        frontier
    in
    if next = [] then frontier :: levels else go next (frontier :: levels)
  in
  go [ start ] []

let pseudo_peripheral adj visited start =
  (* George–Liu heuristic: walk to a node of maximal eccentricity. *)
  let degree v = Array.length adj.(v) in
  let rec refine v ecc =
    let levels = bfs_levels adj v visited in
    let ecc' = List.length levels in
    if ecc' <= ecc then v
    else
      (* [bfs_levels] lists levels deepest first. *)
      let last = List.hd levels in
      let best =
        List.fold_left (fun acc u -> if degree u < degree acc then u else acc) (List.hd last) last
      in
      refine best ecc'
  in
  refine start 0

let rcm a =
  let adj = adjacency a in
  let n = Array.length adj in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let degree v = Array.length adj.(v) in
  for seed = 0 to n - 1 do
    if not visited.(seed) then begin
      let start = pseudo_peripheral adj visited seed in
      (* Cuthill–McKee BFS, neighbors by increasing degree. *)
      let queue = Queue.create () in
      Queue.add start queue;
      visited.(start) <- true;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order.(!pos) <- v;
        incr pos;
        let fresh = Array.to_list adj.(v) |> List.filter (fun u -> not visited.(u)) in
        let fresh = List.sort (fun u w -> compare (degree u) (degree w)) fresh in
        List.iter
          (fun u ->
            visited.(u) <- true;
            Queue.add u queue)
          fresh
      done
    end
  done;
  (* Reverse for RCM. *)
  Array.init n (fun k -> order.(n - 1 - k))

(* --- Minimum degree with a quotient graph ----------------------------- *)

module Heap = struct
  (* Binary min-heap of packed (key, vertex) entries with lazy deletion. *)
  type t = { mutable data : int array; mutable len : int; stride : int }

  let create n = { data = Array.make (Int.max 16 n) 0; len = 0; stride = n + 1 }

  let push h key v =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) 0 in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    let packed = (key * h.stride) + v in
    let i = ref h.len in
    h.len <- h.len + 1;
    h.data.(!i) <- packed;
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let parent = (!i - 1) / 2 in
      if h.data.(parent) > h.data.(!i) then begin
        let t = h.data.(parent) in
        h.data.(parent) <- h.data.(!i);
        h.data.(!i) <- t;
        i := parent
      end
      else continue_ := false
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && h.data.(l) < h.data.(!smallest) then smallest := l;
          if r < h.len && h.data.(r) < h.data.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            let t = h.data.(!smallest) in
            h.data.(!smallest) <- h.data.(!i);
            h.data.(!i) <- t;
            i := !smallest
          end
          else continue_ := false
        done
      end;
      Some (top / h.stride, top mod h.stride)
    end
end

let min_degree a =
  let adj = adjacency a in
  let n = Array.length adj in
  let var_adj = Array.map Array.copy adj in
  let elem_adj = Array.make n [||] in
  let elem_vars = Array.make n [||] in
  let var_alive = Array.make n true in
  let elem_alive = Array.make n false in
  let degree = Array.init n (fun v -> Array.length adj.(v)) in
  let mark = Array.make n false in
  let heap = Heap.create n in
  for v = 0 to n - 1 do
    Heap.push heap degree.(v) v
  done;
  let order = Array.make n 0 in
  let pos = ref 0 in
  let boundary = ref [] in
  while !pos < n do
    match Heap.pop heap with
    | None ->
        (* Stale heap exhausted; push any remaining vertex (should not
           happen, but keeps termination obvious). *)
        for v = 0 to n - 1 do
          if var_alive.(v) then Heap.push heap degree.(v) v
        done
    | Some (d, v) ->
        if var_alive.(v) && degree.(v) = d then begin
          (* Gather the boundary Lv of the new element v. *)
          boundary := [];
          mark.(v) <- true;
          let consider u =
            if var_alive.(u) && not mark.(u) then begin
              mark.(u) <- true;
              boundary := u :: !boundary
            end
          in
          Array.iter consider var_adj.(v);
          Array.iter
            (fun e -> if elem_alive.(e) then Array.iter consider elem_vars.(e))
            elem_adj.(v);
          let lv = Array.of_list !boundary in
          (* Retire v; absorb its elements. *)
          order.(!pos) <- v;
          incr pos;
          var_alive.(v) <- false;
          Array.iter (fun e -> elem_alive.(e) <- false) elem_adj.(v);
          elem_alive.(v) <- true;
          elem_vars.(v) <- lv;
          (* Update each boundary variable. *)
          Array.iter
            (fun u ->
              let vs =
                Array.to_list var_adj.(u)
                |> List.filter (fun w -> var_alive.(w) && not mark.(w))
              in
              var_adj.(u) <- Array.of_list vs;
              let es =
                Array.to_list elem_adj.(u) |> List.filter (fun e -> elem_alive.(e))
              in
              elem_adj.(u) <- Array.of_list (v :: es);
              (* Approximate external degree: variable neighbors plus the
                 sizes of adjacent element boundaries (overlaps overcount,
                 as in AMD's approximate degree). *)
              let deg = ref (Array.length var_adj.(u)) in
              Array.iter
                (fun e ->
                  Array.iter
                    (fun w -> if var_alive.(w) && w <> u then incr deg)
                    elem_vars.(e))
                elem_adj.(u);
              degree.(u) <- !deg;
              Heap.push heap !deg u)
            lv;
          (* Clear marks. *)
          mark.(v) <- false;
          Array.iter (fun u -> mark.(u) <- false) lv
        end
  done;
  order

(* --- Nested dissection (George–Liu automatic ND) --------------------- *)

let nested_dissection a =
  let adj = adjacency a in
  let n = Array.length adj in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let emit v =
    order.(!pos) <- v;
    incr pos
  in
  (* membership stamps for the current subgraph and BFS levels *)
  let stamp = Array.make n (-1) in
  let level = Array.make n (-1) in
  let current = ref 0 in
  let queue = Array.make n 0 in
  (* BFS within the stamped subgraph from [start]; fills [level], returns
     (reached count, max level, last visited). *)
  let bfs start =
    let s = !current in
    let head = ref 0 and tail = ref 0 in
    queue.(!tail) <- start;
    incr tail;
    level.(start) <- 0;
    let last = ref start in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      last := v;
      Array.iter
        (fun u ->
          if stamp.(u) = s && level.(u) < 0 then begin
            level.(u) <- level.(v) + 1;
            queue.(!tail) <- u;
            incr tail
          end)
        adj.(v)
    done;
    (!tail, level.(!last), !last)
  in
  let clear_levels nodes = Array.iter (fun v -> level.(v) <- -1) nodes in
  let leaf_threshold = 24 in
  let rec dissect nodes =
    let m = Array.length nodes in
    if m = 0 then ()
    else if m <= leaf_threshold then Array.iter emit nodes
    else begin
      incr current;
      let s = !current in
      Array.iter (fun v -> stamp.(v) <- s) nodes;
      (* Handle one connected component; recurse on the remainder. *)
      let reached, _, far = bfs nodes.(0) in
      if reached < m then begin
        let comp = Array.of_seq (Seq.filter (fun v -> level.(v) >= 0) (Array.to_seq nodes)) in
        let rest = Array.of_seq (Seq.filter (fun v -> level.(v) < 0) (Array.to_seq nodes)) in
        clear_levels nodes;
        dissect comp;
        dissect rest
      end
      else begin
        (* Pseudo-peripheral refinement: restart BFS from the far node. *)
        clear_levels nodes;
        (* restore stamp (clear_levels does not touch stamps) *)
        let _, ecc, _ = bfs far in
        if ecc < 2 then begin
          clear_levels nodes;
          Array.iter emit nodes
        end
        else begin
          (* Choose the thinnest level near the middle as the separator. *)
          let width = Array.make (ecc + 1) 0 in
          Array.iter (fun v -> width.(level.(v)) <- width.(level.(v)) + 1) nodes;
          let lo = Int.max 1 (3 * ecc / 8) and hi = Int.min (ecc - 1) (5 * ecc / 8) in
          let mid = ref (ecc / 2) in
          for l = lo to hi do
            if width.(l) < width.(!mid) then mid := l
          done;
          let mid = !mid in
          let left = ref [] and right = ref [] and sep = ref [] in
          Array.iter
            (fun v ->
              if level.(v) < mid then left := v :: !left
              else if level.(v) > mid then right := v :: !right
              else sep := v :: !sep)
            nodes;
          clear_levels nodes;
          let left = Array.of_list !left and right = Array.of_list !right in
          let sep = Array.of_list !sep in
          dissect left;
          dissect right;
          Array.iter emit sep
        end
      end
    end
  in
  dissect (Array.init n (fun i -> i));
  order

let compute kind a =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Ordering.compute: matrix is not square";
  match kind with
  | Natural -> Perm.identity n
  | Rcm -> rcm a
  | Min_degree -> min_degree a
  | Nested_dissection -> nested_dissection a
