(** Symmetric eigenvalue problems.

    Two solvers: cyclic Jacobi for general dense symmetric matrices (used by
    PCA), and implicit-shift QL for symmetric tridiagonal matrices (used by
    Golub–Welsch Gaussian quadrature). *)

val symmetric : ?max_sweeps:int -> Dense.t -> float array * Dense.t
(** [symmetric a] returns [(eigenvalues, v)] for the symmetric matrix [a];
    eigenvalues are sorted ascending and column [j] of [v] is the
    eigenvector for eigenvalue [j].  Raises [Invalid_argument] if [a] is not
    square or not symmetric to a loose tolerance. *)

val tridiagonal : diag:float array -> off:float array -> float array * Dense.t
(** [tridiagonal ~diag ~off] solves the symmetric tridiagonal eigenproblem
    with diagonal [diag] (length n) and off-diagonal [off] (length n-1,
    [off.(i)] couples rows i and i+1).  Returns eigenvalues ascending and
    the orthogonal eigenvector matrix (columns are eigenvectors).
    Raises [Failure] if the QL iteration fails to converge. *)
