(** Health report of one linear solve, and per-run aggregation.

    {!Cg.solve_report} / {!Bicgstab.solve_report} thread one of these out
    of every iterative solve so callers can {e check} convergence instead
    of silently accepting whatever [max_iter] produced — the spectral
    Galerkin transient is only as trustworthy as its worst inner solve.
    [Opera.Galerkin] aggregates reports over a transient run and applies
    a configurable convergence policy (fail / warn / fallback). *)

type t = {
  solver : string;  (** "cg", "bicgstab", "direct", ... *)
  iterations : int;
  residual_norm : float;  (** final absolute residual 2-norm *)
  rhs_norm : float;  (** [||b||], the convergence reference *)
  rel_residual : float;  (** [residual_norm / rhs_norm]; 0 when [||b|| = 0] *)
  tol : float;  (** requested relative tolerance *)
  converged : bool;
  breakdown : bool;  (** iteration stopped on numerical breakdown *)
  wall_seconds : float;
  residual_history : float array;
      (** most recent residual norms, oldest first — a bounded ring
          buffer, empty unless requested with [~history_cap] *)
}

val make :
  solver:string ->
  iterations:int ->
  residual_norm:float ->
  rhs_norm:float ->
  tol:float ->
  converged:bool ->
  ?breakdown:bool ->
  wall_seconds:float ->
  ?residual_history:float array ->
  unit ->
  t
(** [rel_residual] is derived. *)

val summary : t -> string
(** One-line human-readable summary. *)

val to_json : t -> string

(** {2 Per-run aggregation} *)

type aggregate = {
  mutable solves : int;  (** iterative solves observed *)
  mutable iterations : int;  (** total inner iterations *)
  mutable unconverged : int;  (** solves that missed the tolerance *)
  mutable fallbacks : int;  (** unconverged solves repaired by a direct re-solve *)
  mutable worst_rel_residual : float;
  mutable wall_seconds : float;
}

val agg_create : unit -> aggregate

val agg_add : aggregate -> t -> unit

val agg_count_fallback : aggregate -> unit

val agg_healthy : aggregate -> bool
(** True when every unconverged solve was repaired by a fallback (or no
    solve missed the tolerance at all) — i.e. the run's final residuals
    all meet the requested tolerance. *)

val agg_summary : aggregate -> string

val agg_to_json : aggregate -> string
