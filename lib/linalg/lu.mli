(** Dense LU factorization with partial pivoting (Doolittle). *)

exception Singular of int
(** Raised when a zero (or numerically negligible) pivot is met; the payload
    is the offending column. *)

type t
(** A factorization [P A = L U]. *)

val factor : Dense.t -> t
(** [factor a] factorizes the square matrix [a].
    Raises {!Singular} if [a] is singular to working precision and
    [Invalid_argument] if [a] is not square. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] solves [A x = b]. *)

val solve_many : t -> Dense.t -> Dense.t
(** [solve_many f b] solves [A X = B] column by column. *)

val det : t -> float

val inverse : t -> Dense.t
