exception Not_positive_definite of int

type t = {
  n : int;
  p : Perm.t;
  lp : int array; (* column pointers of L *)
  li : int array; (* row indices, diagonal entry first per column *)
  lx : float array;
  work : float array; (* scratch for solve_in_place *)
}

(* Elimination tree of an upper-triangular CSC matrix (cs_etree). *)
let etree ~n ~colptr ~rowind =
  let parent = Array.make n (-1) in
  let ancestor = Array.make n (-1) in
  for k = 0 to n - 1 do
    for p = colptr.(k) to colptr.(k + 1) - 1 do
      let i = ref rowind.(p) in
      while !i <> -1 && !i < k do
        let next = ancestor.(!i) in
        ancestor.(!i) <- k;
        if next = -1 then parent.(!i) <- k;
        i := next
      done
    done
  done;
  parent

(* Pattern of row k of L via elimination-tree reach (cs_ereach).
   Returns [top]; the pattern is [stack.(top) .. stack.(n-1)] in
   topological order. [w] holds the visit stamps. *)
let ereach ~colptr ~rowind ~parent ~k ~w ~stack ~path =
  let n = Array.length parent in
  let top = ref n in
  w.(k) <- k;
  for p = colptr.(k) to colptr.(k + 1) - 1 do
    let i0 = rowind.(p) in
    if i0 < k then begin
      let len = ref 0 in
      let i = ref i0 in
      while w.(!i) <> k do
        path.(!len) <- !i;
        incr len;
        w.(!i) <- k;
        i := parent.(!i)
      done;
      while !len > 0 do
        decr len;
        decr top;
        stack.(!top) <- path.(!len)
      done
    end
  done;
  !top

let factor ?(ordering = Ordering.Min_degree) ?perm a =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Sparse_cholesky.factor: matrix is not square";
  let p =
    match perm with
    | Some p ->
        if Array.length p <> n then invalid_arg "Sparse_cholesky.factor: permutation length";
        p
    | None -> Ordering.compute ordering a
  in
  let ap = Sparse.permute_sym a p in
  let upper = Sparse.upper ap in
  let { Sparse.colptr; rowind; values; _ } = upper in
  let parent = etree ~n ~colptr ~rowind in
  let w = Array.make n (-1) in
  let stack = Array.make n 0 in
  let path = Array.make n 0 in
  (* Symbolic pass: column counts of L. *)
  let counts = Array.make n 1 (* diagonal *) in
  for k = 0 to n - 1 do
    let top = ereach ~colptr ~rowind ~parent ~k ~w ~stack ~path in
    for t = top to n - 1 do
      counts.(stack.(t)) <- counts.(stack.(t)) + 1
    done
  done;
  let lp = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    lp.(j + 1) <- lp.(j) + counts.(j)
  done;
  let total = lp.(n) in
  let li = Array.make total 0 and lx = Array.make total 0.0 in
  let fill = Array.make n 0 in
  (* fill.(j) = next free slot in column j *)
  for j = 0 to n - 1 do
    fill.(j) <- lp.(j)
  done;
  Array.fill w 0 n (-1);
  let x = Array.make n 0.0 in
  (* Numeric up-looking pass. *)
  for k = 0 to n - 1 do
    let top = ereach ~colptr ~rowind ~parent ~k ~w ~stack ~path in
    (* Scatter the upper column k of A into x. *)
    let d = ref 0.0 in
    for p = colptr.(k) to colptr.(k + 1) - 1 do
      let i = rowind.(p) in
      if i = k then d := values.(p) else x.(i) <- values.(p)
    done;
    for t = top to n - 1 do
      let i = stack.(t) in
      let lki = x.(i) /. lx.(lp.(i)) in
      x.(i) <- 0.0;
      for p = lp.(i) + 1 to fill.(i) - 1 do
        x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. lki)
      done;
      d := !d -. (lki *. lki);
      let pos = fill.(i) in
      fill.(i) <- pos + 1;
      li.(pos) <- k;
      lx.(pos) <- lki
    done;
    if !d <= 0.0 then raise (Not_positive_definite k);
    let pos = fill.(k) in
    fill.(k) <- pos + 1;
    li.(pos) <- k;
    lx.(pos) <- sqrt !d
  done;
  { n; p; lp; li; lx; work = Array.make n 0.0 }

let lower_solve f y =
  (* L y' = y, in place; diagonal entry is first in each column. *)
  let { lp; li; lx; n; _ } = f in
  for j = 0 to n - 1 do
    let yj = y.(j) /. lx.(lp.(j)) in
    y.(j) <- yj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      y.(li.(p)) <- y.(li.(p)) -. (lx.(p) *. yj)
    done
  done

let upper_solve f y =
  (* L^T y' = y, in place. *)
  let { lp; li; lx; n; _ } = f in
  for j = n - 1 downto 0 do
    let acc = ref y.(j) in
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      acc := !acc -. (lx.(p) *. y.(li.(p)))
    done;
    y.(j) <- !acc /. lx.(lp.(j))
  done

let solve_in_place_ws f ~work b =
  if Array.length b <> f.n then invalid_arg "Sparse_cholesky.solve: dimension mismatch";
  if Array.length work <> f.n then
    invalid_arg "Sparse_cholesky.solve_in_place_ws: workspace dimension mismatch";
  let y = work in
  (* y = P b *)
  for k = 0 to f.n - 1 do
    y.(k) <- b.(f.p.(k))
  done;
  lower_solve f y;
  upper_solve f y;
  for k = 0 to f.n - 1 do
    b.(f.p.(k)) <- y.(k)
  done

let solve_in_place f b = solve_in_place_ws f ~work:f.work b

let solve f b =
  let x = Array.copy b in
  solve_in_place f x;
  x

(* ---- artifact serialization ----------------------------------------
   A factor is five arrays; the bytes are exact (floats cross the codec
   as bit patterns), so a decoded factor solves bitwise identically to
   the one that was encoded.  [decode] re-validates every structural
   invariant — the artifact store's checksum catches corruption, this
   catches a well-formed frame holding a malformed factor. *)

let encode (f : t) (e : Util.Codec.encoder) =
  Util.Codec.write_int e f.n;
  Util.Codec.write_int_array e f.p;
  Util.Codec.write_int_array e f.lp;
  Util.Codec.write_int_array e f.li;
  Util.Codec.write_float_array e f.lx

let decode (d : Util.Codec.decoder) =
  let fail fmt = Printf.ksprintf (fun s -> raise (Util.Codec.Corrupt s)) fmt in
  let n = Util.Codec.read_int d in
  if n < 0 then fail "cholesky: negative dimension %d" n;
  let p = Util.Codec.read_int_array d in
  let lp = Util.Codec.read_int_array d in
  let li = Util.Codec.read_int_array d in
  let lx = Util.Codec.read_float_array d in
  if Array.length p <> n then fail "cholesky: permutation length %d <> %d" (Array.length p) n;
  if not (Perm.is_valid p) then fail "cholesky: invalid permutation";
  if Array.length lp <> n + 1 then fail "cholesky: colptr length %d <> %d" (Array.length lp) (n + 1);
  if n > 0 && lp.(0) <> 0 then fail "cholesky: colptr does not start at 0";
  for j = 0 to n - 1 do
    if lp.(j + 1) < lp.(j) + 1 then fail "cholesky: non-monotone colptr at column %d" j
  done;
  let total = if n = 0 then 0 else lp.(n) in
  if Array.length li <> total then fail "cholesky: rowind length %d <> %d" (Array.length li) total;
  if Array.length lx <> total then fail "cholesky: values length %d <> %d" (Array.length lx) total;
  for j = 0 to n - 1 do
    (* diagonal entry first in each column, rows in range *)
    if li.(lp.(j)) <> j then fail "cholesky: column %d does not start at its diagonal" j;
    for q = lp.(j) to lp.(j + 1) - 1 do
      if li.(q) < 0 || li.(q) >= n then fail "cholesky: row index %d out of range" li.(q)
    done
  done;
  { n; p; lp; li; lx; work = Array.make n 0.0 }

let nnz_l f = f.lp.(f.n)

let dim f = f.n

let permutation f = Array.copy f.p
