exception Not_positive_definite of int

(* Level-schedule data, derived from the factor at construction time
   (and rebuilt by [decode] — it never crosses the codec).

   The forward sweep [L y = b] is re-expressed row-wise: row [i] of the
   strict lower triangle is gathered ([acc -= L_ij * y_j] for ascending
   [j]), then divided by the diagonal.  Because the CSR arrays are built
   by scanning CSC columns in ascending order, the per-row gather
   subtracts contributions in exactly the order the sequential CSC
   scatter applies them, so the row-wise sweep is bitwise identical to
   {!lower_solve}.  Rows are grouped into dependency levels
   ([level i = 1 + max over row entries j of level j]); rows within a
   level read only earlier levels and write disjoint slots, so each
   level parallelizes with no change in arithmetic.

   The backward sweep [L^T x = y] is already a gather over CSC columns
   ({!upper_solve}); column [j] depends only on rows [i > j], giving the
   mirrored level structure.  Backward kernels also fuse the
   un-permutation ([b.(p.(j)) <- x_j]) and the forward kernels fuse the
   permutation ([acc] starts from [b.(p.(i))]), saving two full passes
   over [n] per solve versus the sequential path.

   Layout: both sweeps' entry arrays are stored in *sweep order* — slot
   [t] of the forward arrays holds row [f_rows.(t)], slot [t] of the
   backward arrays holds column [b_cols.(t)].  The sequential sweeps
   stream [lx] linearly, and a level-ordered sweep through row-ordered
   storage would jump around a factor far bigger than cache; permuting
   the values once at construction makes every solve a linear scan of
   its entry arrays, which is what lets the level path match (and, with
   the fused permutations, beat) the sequential path even on one
   domain.

   Serial tail.  Fill-reducing orders eliminate separators last, so the
   end of the forward dependency DAG degenerates into a long run of
   width-1 levels over near-dense rows — on large grids that run can
   hold >80% of the factor's nonzeros, and a per-row gather there is a
   serial floating-point dependency chain with no level parallelism to
   hide its latency.  [build_levels] therefore cuts the index range at
   [f_cut] — the smallest row index seen in the trailing run of narrow
   (width <= 2) levels — and splits the forward sweep into three
   phases:

     1. level-scheduled row gathers over the head rows ([< f_cut]),
        whose dependencies all lie inside the head;
     2. one wide, chunkable "prefix" level: each tail row gathers its
        entries with column [< f_cut] (all available after phase 1)
        into a partial accumulator, in ascending column order;
     3. a sequential CSC scatter over columns [f_cut..n) straight off
        [lp]/[li]/[lx] (whose tail is one linear stream) — exactly
        {!lower_solve} restricted to the tail block, whose independent
        column updates give the instruction-level parallelism the
        chain-bound gather lacks.

   A tail row [i] receives its contributions as (columns [< f_cut],
   ascending) then (columns [f_cut..i), ascending — scatter applies
   column [j] when [j] completes, and the tail completes in ascending
   order): globally ascending, i.e. the exact order of the sequential
   sweep, so the hybrid stays bitwise identical.  A narrow run shorter
   than [tail_threshold] sets [f_cut = n] (no tail, pure level
   schedule); a factor that is one long chain puts [f_cut] near 0 and
   phase 3 degenerates to the plain sequential sweep. *)
type levels = {
  f_ptr : int array; (* forward level pointers into [f_rows] (head rows only) *)
  f_rows : int array; (* head rows grouped by forward level, ascending in level *)
  fp : int array; (* entry pointers by forward slot, length |head|+1 *)
  fc : int array; (* column indices, ascending within each row *)
  fx : float array; (* strict-lower values of row [f_rows.(t)] *)
  fd : float array; (* diagonal of L, by forward slot *)
  f_cut : int; (* first tail index; [n] when there is no tail *)
  tp : int array; (* prefix-entry pointers by tail slot, length n-f_cut+1 *)
  tc : int array; (* prefix column indices (< f_cut), ascending per row *)
  tx : float array; (* matching values *)
  b_ptr : int array; (* backward level pointers into [b_cols] *)
  b_cols : int array; (* columns grouped by backward level, ascending in level *)
  bp : int array; (* entry pointers by backward slot, length n+1 *)
  bi : int array; (* row indices, ascending within each column *)
  bx : float array; (* strict-lower values of column [b_cols.(t)] *)
  bd : float array; (* diagonal of L, by backward slot *)
}

type t = {
  n : int;
  p : Perm.t;
  lp : int array; (* column pointers of L *)
  li : int array; (* row indices, diagonal entry first per column *)
  lx : float array;
  work : float array; (* scratch for solve_in_place *)
  levels : levels;
}

(* Group indices [0, n) by [lev.(i)] with a counting sort: ascending
   index order within each level (required for determinism of the
   chunk decomposition, and cache-friendly). *)
let group_by_level ~n lev nlev =
  let ptr = Array.make (nlev + 1) 0 in
  for i = 0 to n - 1 do
    ptr.(lev.(i) + 1) <- ptr.(lev.(i) + 1) + 1
  done;
  for l = 0 to nlev - 1 do
    ptr.(l + 1) <- ptr.(l + 1) + ptr.(l)
  done;
  let rows = Array.make n 0 in
  let fill = Array.sub ptr 0 (Int.max nlev 1) in
  for i = 0 to n - 1 do
    let l = lev.(i) in
    rows.(fill.(l)) <- i;
    fill.(l) <- fill.(l) + 1
  done;
  (ptr, rows)

let build_levels ~n ~lp ~li ~lx =
  (* CSR of the strict lower triangle: scanning CSC columns in ascending
     order appends each row's entries in ascending column order. *)
  let rp = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    for q = lp.(j) + 1 to lp.(j + 1) - 1 do
      rp.(li.(q) + 1) <- rp.(li.(q) + 1) + 1
    done
  done;
  for i = 0 to n - 1 do
    rp.(i + 1) <- rp.(i + 1) + rp.(i)
  done;
  let nnz = rp.(n) in
  let rc = Array.make nnz 0 and rx = Array.make nnz 0.0 in
  let fill = Array.sub rp 0 (Int.max n 1) in
  for j = 0 to n - 1 do
    for q = lp.(j) + 1 to lp.(j + 1) - 1 do
      let i = li.(q) in
      let pos = fill.(i) in
      fill.(i) <- pos + 1;
      rc.(pos) <- j;
      rx.(pos) <- lx.(q)
    done
  done;
  (* Forward levels: row i waits for every column j it references. *)
  let lev_f = Array.make (Int.max n 1) 0 in
  let nlev_f = ref 0 in
  for i = 0 to n - 1 do
    let m = ref 0 in
    for q = rp.(i) to rp.(i + 1) - 1 do
      let l = lev_f.(rc.(q)) + 1 in
      if l > !m then m := l
    done;
    lev_f.(i) <- !m;
    if !m + 1 > !nlev_f then nlev_f := !m + 1
  done;
  (* Backward levels: column j waits for every row i > j it references;
     computed descending so dependencies are already leveled. *)
  let lev_b = Array.make (Int.max n 1) 0 in
  let nlev_b = ref 0 in
  for j = n - 1 downto 0 do
    let m = ref 0 in
    for q = lp.(j) + 1 to lp.(j + 1) - 1 do
      let l = lev_b.(li.(q)) + 1 in
      if l > !m then m := l
    done;
    lev_b.(j) <- !m;
    if !m + 1 > !nlev_b then nlev_b := !m + 1
  done;
  let f_ptr_all, f_rows_all = group_by_level ~n lev_f (if n = 0 then 0 else !nlev_f) in
  let b_ptr, b_cols = group_by_level ~n lev_b (if n = 0 then 0 else !nlev_b) in
  (* Serial-tail cut: walk levels from the last one while they stay
     narrow, and take the smallest row index seen — every row from there
     on is handled by the phase-2 prefix gather + phase-3 scatter.  Rows
     in [f_cut..n) that sat in earlier wide levels simply move into the
     tail (the scatter is strictly more sequential, never less correct);
     head rows can never depend on them because forward dependencies
     point at smaller indices only. *)
  let tail_threshold = 32 in
  let f_cut =
    let nlev = Array.length f_ptr_all - 1 in
    let cut = ref n in
    let l = ref (nlev - 1) in
    let narrow = ref true in
    while !narrow && !l >= 0 do
      let lo = f_ptr_all.(!l) and hi = f_ptr_all.(!l + 1) in
      if hi - lo <= 2 then begin
        for t = lo to hi - 1 do
          if f_rows_all.(t) < !cut then cut := f_rows_all.(t)
        done;
        decr l
      end
      else narrow := false
    done;
    if n - !cut >= tail_threshold then !cut else n
  in
  (* Head structure: drop tail rows from the level grouping (compressing
     levels emptied by the cut) and permute their entries into sweep
     order (see the layout note above) so the level sweeps stream
     [fx]/[bx] linearly.  [Array.blit] preserves the within-row /
     within-column entry order, so arithmetic order — and hence bitwise
     identity with the sequential sweeps — is unchanged. *)
  let head = ref 0 in
  for i = 0 to n - 1 do
    if i < f_cut then incr head
  done;
  let hn = !head in
  let f_rows = Array.make (Int.max hn 1) 0 in
  let rev_ptrs = ref [] in
  let pos = ref 0 in
  for l = 0 to Array.length f_ptr_all - 2 do
    let start = !pos in
    for t = f_ptr_all.(l) to f_ptr_all.(l + 1) - 1 do
      let r = f_rows_all.(t) in
      if r < f_cut then begin
        f_rows.(!pos) <- r;
        incr pos
      end
    done;
    if !pos > start then rev_ptrs := !pos :: !rev_ptrs
  done;
  let f_ptr = Array.of_list (0 :: List.rev !rev_ptrs) in
  let fp = Array.make (hn + 1) 0 in
  for t = 0 to hn - 1 do
    let i = f_rows.(t) in
    fp.(t + 1) <- fp.(t) + (rp.(i + 1) - rp.(i))
  done;
  let fnnz = fp.(hn) in
  let fc = Array.make (Int.max fnnz 1) 0 and fx = Array.make (Int.max fnnz 1) 0.0 in
  let fd = Array.make (Int.max hn 1) 0.0 in
  for t = 0 to hn - 1 do
    let i = f_rows.(t) in
    let len = rp.(i + 1) - rp.(i) in
    Array.blit rc rp.(i) fc fp.(t) len;
    Array.blit rx rp.(i) fx fp.(t) len;
    fd.(t) <- lx.(lp.(i))
  done;
  (* Tail prefix entries: columns < f_cut of each tail row.  Columns are
     ascending within a CSR row, so the prefix is a leading segment. *)
  let tn = n - f_cut in
  let tp = Array.make (tn + 1) 0 in
  for k = 0 to tn - 1 do
    let i = f_cut + k in
    let q = ref rp.(i) in
    while !q < rp.(i + 1) && rc.(!q) < f_cut do
      incr q
    done;
    tp.(k + 1) <- tp.(k) + (!q - rp.(i))
  done;
  let tnnz = tp.(tn) in
  let tc = Array.make (Int.max tnnz 1) 0 and tx = Array.make (Int.max tnnz 1) 0.0 in
  for k = 0 to tn - 1 do
    let i = f_cut + k in
    let len = tp.(k + 1) - tp.(k) in
    Array.blit rc rp.(i) tc tp.(k) len;
    Array.blit rx rp.(i) tx tp.(k) len
  done;
  let bp = Array.make (n + 1) 0 in
  for t = 0 to n - 1 do
    let j = b_cols.(t) in
    bp.(t + 1) <- bp.(t) + (lp.(j + 1) - lp.(j) - 1)
  done;
  let bi = Array.make (Int.max nnz 1) 0 and bx = Array.make (Int.max nnz 1) 0.0 in
  let bd = Array.make (Int.max n 1) 0.0 in
  for t = 0 to n - 1 do
    let j = b_cols.(t) in
    let len = lp.(j + 1) - lp.(j) - 1 in
    Array.blit li (lp.(j) + 1) bi bp.(t) len;
    Array.blit lx (lp.(j) + 1) bx bp.(t) len;
    bd.(t) <- lx.(lp.(j))
  done;
  { f_ptr; f_rows; fp; fc; fx; fd; f_cut; tp; tc; tx; b_ptr; b_cols; bp; bi; bx; bd }

(* Elimination tree of an upper-triangular CSC matrix (cs_etree). *)
let etree ~n ~colptr ~rowind =
  let parent = Array.make n (-1) in
  let ancestor = Array.make n (-1) in
  for k = 0 to n - 1 do
    for p = colptr.(k) to colptr.(k + 1) - 1 do
      let i = ref rowind.(p) in
      while !i <> -1 && !i < k do
        let next = ancestor.(!i) in
        ancestor.(!i) <- k;
        if next = -1 then parent.(!i) <- k;
        i := next
      done
    done
  done;
  parent

(* Pattern of row k of L via elimination-tree reach (cs_ereach).
   Returns [top]; the pattern is [stack.(top) .. stack.(n-1)] in
   topological order. [w] holds the visit stamps. *)
let ereach ~colptr ~rowind ~parent ~k ~w ~stack ~path =
  let n = Array.length parent in
  let top = ref n in
  w.(k) <- k;
  for p = colptr.(k) to colptr.(k + 1) - 1 do
    let i0 = rowind.(p) in
    if i0 < k then begin
      let len = ref 0 in
      let i = ref i0 in
      while w.(!i) <> k do
        path.(!len) <- !i;
        incr len;
        w.(!i) <- k;
        i := parent.(!i)
      done;
      while !len > 0 do
        decr len;
        decr top;
        stack.(!top) <- path.(!len)
      done
    end
  done;
  !top

let factor ?(ordering = Ordering.Min_degree) ?perm a =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Sparse_cholesky.factor: matrix is not square";
  let p =
    match perm with
    | Some p ->
        if Array.length p <> n then invalid_arg "Sparse_cholesky.factor: permutation length";
        p
    | None -> Ordering.compute ordering a
  in
  let ap = Sparse.permute_sym a p in
  let upper = Sparse.upper ap in
  let { Sparse.colptr; rowind; values; _ } = upper in
  let parent = etree ~n ~colptr ~rowind in
  let w = Array.make n (-1) in
  let stack = Array.make n 0 in
  let path = Array.make n 0 in
  (* Symbolic pass: column counts of L. *)
  let counts = Array.make n 1 (* diagonal *) in
  for k = 0 to n - 1 do
    let top = ereach ~colptr ~rowind ~parent ~k ~w ~stack ~path in
    for t = top to n - 1 do
      counts.(stack.(t)) <- counts.(stack.(t)) + 1
    done
  done;
  let lp = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    lp.(j + 1) <- lp.(j) + counts.(j)
  done;
  let total = lp.(n) in
  let li = Array.make total 0 and lx = Array.make total 0.0 in
  let fill = Array.make n 0 in
  (* fill.(j) = next free slot in column j *)
  for j = 0 to n - 1 do
    fill.(j) <- lp.(j)
  done;
  Array.fill w 0 n (-1);
  let x = Array.make n 0.0 in
  (* Numeric up-looking pass. *)
  for k = 0 to n - 1 do
    let top = ereach ~colptr ~rowind ~parent ~k ~w ~stack ~path in
    (* Scatter the upper column k of A into x. *)
    let d = ref 0.0 in
    for p = colptr.(k) to colptr.(k + 1) - 1 do
      let i = rowind.(p) in
      if i = k then d := values.(p) else x.(i) <- values.(p)
    done;
    for t = top to n - 1 do
      let i = stack.(t) in
      let lki = x.(i) /. lx.(lp.(i)) in
      x.(i) <- 0.0;
      for p = lp.(i) + 1 to fill.(i) - 1 do
        x.(li.(p)) <- x.(li.(p)) -. (lx.(p) *. lki)
      done;
      d := !d -. (lki *. lki);
      let pos = fill.(i) in
      fill.(i) <- pos + 1;
      li.(pos) <- k;
      lx.(pos) <- lki
    done;
    if !d <= 0.0 then raise (Not_positive_definite k);
    let pos = fill.(k) in
    fill.(k) <- pos + 1;
    li.(pos) <- k;
    lx.(pos) <- sqrt !d
  done;
  { n; p; lp; li; lx; work = Array.make n 0.0; levels = build_levels ~n ~lp ~li ~lx }

let lower_solve f y =
  (* L y' = y, in place; diagonal entry is first in each column. *)
  let { lp; li; lx; n; _ } = f in
  for j = 0 to n - 1 do
    let yj = y.(j) /. lx.(lp.(j)) in
    y.(j) <- yj;
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      y.(li.(p)) <- y.(li.(p)) -. (lx.(p) *. yj)
    done
  done

let upper_solve f y =
  (* L^T y' = y, in place. *)
  let { lp; li; lx; n; _ } = f in
  for j = n - 1 downto 0 do
    let acc = ref y.(j) in
    for p = lp.(j) + 1 to lp.(j + 1) - 1 do
      acc := !acc -. (lx.(p) *. y.(li.(p)))
    done;
    y.(j) <- !acc /. lx.(lp.(j))
  done

(* ---- level-scheduled sweeps ----------------------------------------
   Disjoint-slice kernels: each call owns rows/columns
   [rows.(lo .. hi-1)] of one dependency level and writes only
   [work.(i)] (forward) or [work.(j)] and [b.(p.(j))] (backward) for
   indices in its slice — [p] is a permutation, so the [b] writes are
   disjoint too.  The gather order within a row/column matches the
   sequential sweeps exactly (see the [levels] comment), so parallel
   and sequential solves are bitwise identical. *)

(* Each per-row (per-column) gather is a serial floating-point
   dependency chain — [acc] feeds every subtract — so a single row runs
   latency-bound.  Rows within a level are independent, which lets the
   kernels interleave *two* rows' chains and double the instruction-level
   parallelism without touching either row's summation order: pairing
   changes which chains run concurrently, never the order of adds within
   a chain, so results stay bitwise identical for any chunking. *)

let[@opera.hot] fwd_rows f ~work b lo hi =
  let { f_rows; fp; fc; fx; fd; _ } = f.levels in
  let p = f.p in
  let one t =
    let i = f_rows.(t) in
    let acc = ref b.(p.(i)) in
    for q = fp.(t) to fp.(t + 1) - 1 do
      acc := !acc -. (fx.(q) *. work.(fc.(q)))
    done;
    work.(i) <- !acc /. fd.(t)
  in
  let t = ref lo in
  while !t + 1 < hi do
    let t0 = !t and t1 = !t + 1 in
    let i0 = f_rows.(t0) and i1 = f_rows.(t1) in
    let s0 = fp.(t0) and e0 = fp.(t0 + 1) in
    let s1 = fp.(t1) and e1 = fp.(t1 + 1) in
    let acc0 = ref b.(p.(i0)) and acc1 = ref b.(p.(i1)) in
    let c = Int.min (e0 - s0) (e1 - s1) in
    for k = 0 to c - 1 do
      acc0 := !acc0 -. (fx.(s0 + k) *. work.(fc.(s0 + k)));
      acc1 := !acc1 -. (fx.(s1 + k) *. work.(fc.(s1 + k)))
    done;
    for q = s0 + c to e0 - 1 do
      acc0 := !acc0 -. (fx.(q) *. work.(fc.(q)))
    done;
    for q = s1 + c to e1 - 1 do
      acc1 := !acc1 -. (fx.(q) *. work.(fc.(q)))
    done;
    work.(i0) <- !acc0 /. fd.(t0);
    work.(i1) <- !acc1 /. fd.(t1);
    t := !t + 2
  done;
  if !t < hi then one !t

(* Phase 2 of the forward sweep: partial accumulators for tail rows —
   the rhs start minus every contribution from head columns.  Tail slots
   are independent of each other (they read only head results), so this
   is one wide level; the same two-chain interleave applies. *)
let[@opera.hot] fwd_tail_prefix f ~work b lo hi =
  let { f_cut; tp; tc; tx; _ } = f.levels in
  let p = f.p in
  let one k =
    let acc = ref b.(p.(f_cut + k)) in
    for q = tp.(k) to tp.(k + 1) - 1 do
      acc := !acc -. (tx.(q) *. work.(tc.(q)))
    done;
    work.(f_cut + k) <- !acc
  in
  let k = ref lo in
  while !k + 1 < hi do
    let k0 = !k and k1 = !k + 1 in
    let s0 = tp.(k0) and e0 = tp.(k0 + 1) in
    let s1 = tp.(k1) and e1 = tp.(k1 + 1) in
    let acc0 = ref b.(p.(f_cut + k0)) and acc1 = ref b.(p.(f_cut + k1)) in
    let c = Int.min (e0 - s0) (e1 - s1) in
    for q = 0 to c - 1 do
      acc0 := !acc0 -. (tx.(s0 + q) *. work.(tc.(s0 + q)));
      acc1 := !acc1 -. (tx.(s1 + q) *. work.(tc.(s1 + q)))
    done;
    for q = s0 + c to e0 - 1 do
      acc0 := !acc0 -. (tx.(q) *. work.(tc.(q)))
    done;
    for q = s1 + c to e1 - 1 do
      acc1 := !acc1 -. (tx.(q) *. work.(tc.(q)))
    done;
    work.(f_cut + k0) <- !acc0;
    work.(f_cut + k1) <- !acc1;
    k := !k + 2
  done;
  if !k < hi then one !k

(* Phase 3: sequential CSC scatter over the tail block, operating on the
   partial accumulators phase 2 left in [work] — {!lower_solve}
   restricted to columns [f_cut..n) (every sub-diagonal entry of a tail
   column lands in a tail row). *)
let[@opera.hot] fwd_tail_scatter f ~work =
  let { lp; li; lx; n; _ } = f in
  let f_cut = f.levels.f_cut in
  for j = f_cut to n - 1 do
    let v = work.(j) /. lx.(lp.(j)) in
    work.(j) <- v;
    for q = lp.(j) + 1 to lp.(j + 1) - 1 do
      work.(li.(q)) <- work.(li.(q)) -. (lx.(q) *. v)
    done
  done

let[@opera.hot] bwd_cols f ~work b lo hi =
  let { b_cols; bp; bi; bx; bd; _ } = f.levels in
  let p = f.p in
  let one t =
    let j = b_cols.(t) in
    let acc = ref work.(j) in
    for q = bp.(t) to bp.(t + 1) - 1 do
      acc := !acc -. (bx.(q) *. work.(bi.(q)))
    done;
    let v = !acc /. bd.(t) in
    work.(j) <- v;
    b.(p.(j)) <- v
  in
  let t = ref lo in
  while !t + 1 < hi do
    let t0 = !t and t1 = !t + 1 in
    let j0 = b_cols.(t0) and j1 = b_cols.(t1) in
    let s0 = bp.(t0) and e0 = bp.(t0 + 1) in
    let s1 = bp.(t1) and e1 = bp.(t1 + 1) in
    let acc0 = ref work.(j0) and acc1 = ref work.(j1) in
    let c = Int.min (e0 - s0) (e1 - s1) in
    for k = 0 to c - 1 do
      acc0 := !acc0 -. (bx.(s0 + k) *. work.(bi.(s0 + k)));
      acc1 := !acc1 -. (bx.(s1 + k) *. work.(bi.(s1 + k)))
    done;
    for q = s0 + c to e0 - 1 do
      acc0 := !acc0 -. (bx.(q) *. work.(bi.(q)))
    done;
    for q = s1 + c to e1 - 1 do
      acc1 := !acc1 -. (bx.(q) *. work.(bi.(q)))
    done;
    let v0 = !acc0 /. bd.(t0) and v1 = !acc1 /. bd.(t1) in
    work.(j0) <- v0;
    work.(j1) <- v1;
    b.(p.(j0)) <- v0;
    b.(p.(j1)) <- v1;
    t := !t + 2
  done;
  if !t < hi then one !t

(* Levels narrower than this run on the calling domain: the two mutex
   acquisitions per chunk of a pool dispatch cost more than the handful
   of rows they would spread.  Purely a performance gate — either path
   computes bitwise-identical results. *)
let level_dispatch_cutoff = 64

let solve_level_scheduled f ~domains ~work b =
  let lv = f.levels in
  let sweep nlev_ptr kernel =
    let nlev = Array.length nlev_ptr - 1 in
    for l = 0 to nlev - 1 do
      let lo = nlev_ptr.(l) and hi = nlev_ptr.(l + 1) in
      if hi - lo < level_dispatch_cutoff then kernel lo hi
      else
        (* opera-lint: race — rows within one level are dependence-free *)
        Util.Parallel.for_chunks ~domains (hi - lo) (fun ~chunk:_ ~lo:clo ~hi:chi ->
            kernel (lo + clo) (lo + chi))
    done
  in
  sweep lv.f_ptr (fwd_rows f ~work b);
  let tn = f.n - lv.f_cut in
  if tn > 0 then begin
    (if tn < level_dispatch_cutoff then fwd_tail_prefix f ~work b 0 tn
     else
       (* opera-lint: race — tail rows write disjoint work/b entries *)
       Util.Parallel.for_chunks ~domains tn (fun ~chunk:_ ~lo ~hi ->
           fwd_tail_prefix f ~work b lo hi));
    fwd_tail_scatter f ~work
  end;
  sweep lv.b_ptr (bwd_cols f ~work b)

let[@opera.hot] solve_in_place_ws f ?(domains = 1) ~work b =
  if Array.length b <> f.n then invalid_arg "Sparse_cholesky.solve: dimension mismatch";
  if Array.length work <> f.n then
    invalid_arg "Sparse_cholesky.solve_in_place_ws: workspace dimension mismatch";
  if Util.Parallel.resolve domains > 1 then
    solve_level_scheduled f ~domains:(Util.Parallel.resolve domains) ~work b
  else begin
    let y = work in
    (* y = P b *)
    for k = 0 to f.n - 1 do
      y.(k) <- b.(f.p.(k))
    done;
    lower_solve f y;
    upper_solve f y;
    for k = 0 to f.n - 1 do
      b.(f.p.(k)) <- y.(k)
    done
  end

let solve_in_place f b = solve_in_place_ws f ~work:f.work b

let solve f b =
  let x = Array.copy b in
  solve_in_place f x;
  x

(* ---- artifact serialization ----------------------------------------
   A factor is five arrays; the bytes are exact (floats cross the codec
   as bit patterns), so a decoded factor solves bitwise identically to
   the one that was encoded.  [decode] re-validates every structural
   invariant — the artifact store's checksum catches corruption, this
   catches a well-formed frame holding a malformed factor. *)

let encode (f : t) (e : Util.Codec.encoder) =
  Util.Codec.write_int e f.n;
  Util.Codec.write_int_array e f.p;
  Util.Codec.write_int_array e f.lp;
  Util.Codec.write_int_array e f.li;
  Util.Codec.write_float_array e f.lx

let decode (d : Util.Codec.decoder) =
  let fail fmt = Printf.ksprintf (fun s -> raise (Util.Codec.Corrupt s)) fmt in
  let n = Util.Codec.read_int d in
  if n < 0 then fail "cholesky: negative dimension %d" n;
  let p = Util.Codec.read_int_array d in
  let lp = Util.Codec.read_int_array d in
  let li = Util.Codec.read_int_array d in
  let lx = Util.Codec.read_float_array d in
  if Array.length p <> n then fail "cholesky: permutation length %d <> %d" (Array.length p) n;
  if not (Perm.is_valid p) then fail "cholesky: invalid permutation";
  if Array.length lp <> n + 1 then fail "cholesky: colptr length %d <> %d" (Array.length lp) (n + 1);
  if n > 0 && lp.(0) <> 0 then fail "cholesky: colptr does not start at 0";
  for j = 0 to n - 1 do
    if lp.(j + 1) < lp.(j) + 1 then fail "cholesky: non-monotone colptr at column %d" j
  done;
  let total = if n = 0 then 0 else lp.(n) in
  if Array.length li <> total then fail "cholesky: rowind length %d <> %d" (Array.length li) total;
  if Array.length lx <> total then fail "cholesky: values length %d <> %d" (Array.length lx) total;
  for j = 0 to n - 1 do
    (* diagonal entry first in each column, rows in range *)
    if li.(lp.(j)) <> j then fail "cholesky: column %d does not start at its diagonal" j;
    for q = lp.(j) to lp.(j + 1) - 1 do
      if li.(q) < 0 || li.(q) >= n then fail "cholesky: row index %d out of range" li.(q);
      (* Off-diagonal entries live strictly below the diagonal — the
         level-schedule construction depends on this. *)
      if q > lp.(j) && li.(q) <= j then
        fail "cholesky: column %d has a non-strict lower entry at row %d" j li.(q)
    done
  done;
  (* The level schedule is derived data: rebuilt here, never serialized,
     so the artifact format (chol_version = 1) is unchanged. *)
  { n; p; lp; li; lx; work = Array.make n 0.0; levels = build_levels ~n ~lp ~li ~lx }

let nnz_l f = f.lp.(f.n)

let dim f = f.n

let permutation f = Array.copy f.p

