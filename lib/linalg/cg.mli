(** Conjugate gradient for sparse SPD systems, with optional
    preconditioning.

    The paper (Sec. 5.2) points to iterative block solvers as the
    scalability lever for the augmented Galerkin system; the mean-block
    preconditioner used there is built on top of this module. *)

type preconditioner = Vec.t -> Vec.t
(** [apply r] returns [M^-1 r] for the preconditioner [M]. *)

type stats = { iterations : int; residual_norm : float; converged : bool }

val identity_preconditioner : preconditioner

val jacobi : Sparse.t -> preconditioner
(** Diagonal (Jacobi) preconditioner. Raises if a diagonal entry is zero. *)

val ic0 : Sparse.t -> preconditioner
(** Incomplete Cholesky with zero fill on the lower-triangular pattern.
    Raises [Failure] when a pivot breaks down (matrix too indefinite for
    IC(0)). *)

type ic0_factor
(** The IC(0) factor behind {!ic0}, exposed so hot callers can keep it
    and apply it in place. *)

val ic0_factorize : Sparse.t -> ic0_factor
(** Factorization half of {!ic0}; same breakdown behavior. *)

val ic0_dim : ic0_factor -> int

val ic0_nnz : ic0_factor -> int
(** Stored entries of the incomplete factor. *)

val ic0_solve_in_place : ic0_factor -> Vec.t -> unit
(** Overwrite [y] with [(L L^T)^-1 y].  Allocation-free. *)

val solve :
  ?precond:preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  matvec:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  x0:Vec.t ->
  unit ->
  Vec.t * stats
(** [solve ~matvec ~b ~x0 ()] runs (preconditioned) CG until the residual
    2-norm falls below [tol * ||b||] (default [tol = 1e-10]) or [max_iter]
    iterations (default [10 * n]).  A zero right-hand side returns the
    exact solution [x = 0] immediately ([converged = true], 0 iterations)
    regardless of [x0].

    CALLERS MUST CHECK [stats.converged] (or use {!solve_report} and a
    convergence policy): hitting [max_iter] silently otherwise turns the
    returned vector into an unlabeled approximation. *)

val solve_report :
  ?precond:preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  ?history_cap:int ->
  matvec:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  x0:Vec.t ->
  unit ->
  Vec.t * Solve_report.t
(** Same iteration as {!solve} but returns a full {!Solve_report.t}
    (relative residual, wall time, convergence flag, and — when
    [history_cap > 0] — the most recent [history_cap] residual norms in a
    bounded ring buffer, oldest first, starting with the initial
    residual). *)

type workspace
(** Reusable residual/direction scratch for {!solve_report_in_place}. *)

val workspace_create : int -> workspace
(** [workspace_create n] allocates scratch for systems of dimension [n]. *)

val workspace_dim : workspace -> int

val solve_report_in_place :
  ?precond:preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  ?history_cap:int ->
  ws:workspace ->
  matvec:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  x:Vec.t ->
  unit ->
  Solve_report.t
(** Allocation-free variant of {!solve_report}: [x] holds the initial
    guess on entry and is overwritten with the solution; residual and
    search-direction scratch live in [ws].  A transient loop calling
    this once per step allocates nothing — the per-step [Array.copy] of
    the guess that {!solve_report} performs is exactly the garbage this
    variant exists to remove.  [matvec] and [precond] may return shared
    internal buffers (each result is consumed before the next call).
    The iteration is operation-for-operation identical to
    {!solve_report}, so solutions and reports are bitwise equal given
    equal inputs.  Raises [Invalid_argument] on dimension mismatch
    between [b], [x] and [ws]. *)

val stats_of_report : Solve_report.t -> stats
(** Project a report onto the legacy {!stats} triple. *)

val solve_sparse :
  ?precond:preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  Sparse.t ->
  Vec.t ->
  Vec.t * stats
(** Convenience wrapper: CG on a sparse matrix with zero initial guess. *)
