(** Conjugate gradient for sparse SPD systems, with optional
    preconditioning.

    The paper (Sec. 5.2) points to iterative block solvers as the
    scalability lever for the augmented Galerkin system; the mean-block
    preconditioner used there is built on top of this module. *)

type preconditioner = Vec.t -> Vec.t
(** [apply r] returns [M^-1 r] for the preconditioner [M]. *)

type stats = { iterations : int; residual_norm : float; converged : bool }

val identity_preconditioner : preconditioner

val jacobi : Sparse.t -> preconditioner
(** Diagonal (Jacobi) preconditioner. Raises if a diagonal entry is zero. *)

val ic0 : Sparse.t -> preconditioner
(** Incomplete Cholesky with zero fill on the lower-triangular pattern.
    Raises [Failure] when a pivot breaks down (matrix too indefinite for
    IC(0)). *)

val solve :
  ?precond:preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  matvec:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  x0:Vec.t ->
  unit ->
  Vec.t * stats
(** [solve ~matvec ~b ~x0 ()] runs (preconditioned) CG until the residual
    2-norm falls below [tol * ||b||] (default [tol = 1e-10]) or [max_iter]
    iterations (default [10 * n]). *)

val solve_sparse :
  ?precond:preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  Sparse.t ->
  Vec.t ->
  Vec.t * stats
(** Convenience wrapper: CG on a sparse matrix with zero initial guess. *)
