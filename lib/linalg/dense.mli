(** Dense matrices in row-major storage.

    Used for small systems: polynomial-chaos coupling matrices, Jacobi
    rotations for eigensolves, reference implementations for testing the
    sparse kernels. *)

type t = private { rows : int; cols : int; data : float array }
(** [data.(i * cols + j)] is entry (i, j). *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must all have the same length. *)

val to_arrays : t -> float array array

val dims : t -> int * int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_entry : t -> int -> int -> float -> unit
(** [add_entry a i j v] adds [v] to entry (i, j). *)

val copy : t -> t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val matmul : t -> t -> t

val matvec : t -> Vec.t -> Vec.t

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t a x] is [transpose a * x] without forming the transpose. *)

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val frobenius_norm : t -> float

val max_abs : t -> float

val is_symmetric : ?tol:float -> t -> bool

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
