(** Dense Cholesky factorization of symmetric positive-definite matrices. *)

exception Not_positive_definite of int
(** Raised with the offending pivot column when the matrix is not SPD. *)

type t
(** A factorization [A = L L^T]. *)

val factor : Dense.t -> t
(** [factor a] factorizes the symmetric positive-definite matrix [a]
    (only the lower triangle is read). Raises {!Not_positive_definite}
    or [Invalid_argument] if [a] is not square. *)

val solve : t -> Vec.t -> Vec.t

val lower : t -> Dense.t
(** The factor [L]. *)

val logdet : t -> float
(** Log-determinant of [A]. *)
