exception Not_positive_definite of int

type t = { l : Dense.t }

let factor a =
  let n, m = Dense.dims a in
  if n <> m then invalid_arg "Cholesky.factor: matrix is not square";
  let l = Dense.create n n in
  for j = 0 to n - 1 do
    let diag = ref (Dense.get a j j) in
    for k = 0 to j - 1 do
      let ljk = Dense.get l j k in
      diag := !diag -. (ljk *. ljk)
    done;
    if !diag <= 0.0 then raise (Not_positive_definite j);
    let ljj = sqrt !diag in
    Dense.set l j j ljj;
    for i = j + 1 to n - 1 do
      let acc = ref (Dense.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Dense.get l i k *. Dense.get l j k)
      done;
      Dense.set l i j (!acc /. ljj)
    done
  done;
  { l }

let solve f b =
  let n, _ = Dense.dims f.l in
  if Array.length b <> n then invalid_arg "Cholesky.solve: dimension mismatch";
  let x = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Dense.get f.l i j *. x.(j))
    done;
    x.(i) <- !acc /. Dense.get f.l i i
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Dense.get f.l j i *. x.(j))
    done;
    x.(i) <- !acc /. Dense.get f.l i i
  done;
  x

let lower f = Dense.copy f.l

let logdet f =
  let n, _ = Dense.dims f.l in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. log (Dense.get f.l i i)
  done;
  2.0 *. !acc
