type t = int array

let identity n = Array.init n (fun i -> i)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then ok := false else seen.(v) <- true)
    p;
  !ok

let inverse p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for k = 0 to n - 1 do
    q.(p.(k)) <- k
  done;
  q

let compose p q =
  if Array.length p <> Array.length q then invalid_arg "Perm.compose: length mismatch";
  Array.map (fun pk -> q.(pk)) p

let apply_vec p x =
  if Array.length p <> Array.length x then invalid_arg "Perm.apply_vec: length mismatch";
  Array.map (fun pk -> x.(pk)) p

let apply_inv_vec p y =
  if Array.length p <> Array.length y then invalid_arg "Perm.apply_inv_vec: length mismatch";
  let x = Array.make (Array.length y) 0.0 in
  Array.iteri (fun k pk -> x.(pk) <- y.(k)) p;
  x
