(** Growable triplet accumulator for stamping sparse matrices.

    MNA assembly adds many small contributions at repeated coordinates;
    the builder stores raw triplets in amortized O(1) and compresses them
    (duplicates summed) into CSC in O(nnz log nnz). *)

type t

val create : ?capacity:int -> nrows:int -> ncols:int -> unit -> t

val add : t -> int -> int -> float -> unit
(** [add b i j v] records a contribution [v] at (i, j). Zero contributions
    are recorded too (they vanish at compression). *)

val add_sym : t -> int -> int -> float -> unit
(** [add_sym b i j v] records [v] at (i, j) and, when [i <> j], at (j, i). *)

val stamp_conductance : t -> int option -> int option -> float -> unit
(** [stamp_conductance b n1 n2 g] stamps a two-terminal conductance [g]
    between nodes [n1] and [n2]; [None] denotes the ground node, whose row
    and column are not represented. *)

val nnz_triplets : t -> int

val to_csc : t -> Sparse.t
(** Compress to CSC, summing duplicates and dropping exact zeros. The
    builder can keep accumulating afterwards. *)
