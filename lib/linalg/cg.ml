type preconditioner = Vec.t -> Vec.t

type stats = { iterations : int; residual_norm : float; converged : bool }

let identity_preconditioner r = Array.copy r

let jacobi a =
  let d = Sparse.diag a in
  Array.iteri
    (fun i v -> if Util.Floats.is_zero v then invalid_arg (Printf.sprintf "Cg.jacobi: zero diagonal at %d" i))
    d;
  let inv = Array.map (fun v -> 1.0 /. v) d in
  fun r -> Vec.mul_elementwise inv r

(* IC(0): incomplete Cholesky restricted to the lower-triangular pattern of A. *)
type ic0_factor = {
  ic_n : int;
  ic_colptr : int array;
  ic_rowind : int array;
  ic_lx : float array;
}

let ic0_factorize a =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Cg.ic0: matrix is not square";
  let l = Sparse.lower a in
  let { Sparse.colptr; rowind; values; _ } = l in
  let lx = Array.copy values in
  (* Left-looking IC(0): for each column j, subtract contributions of all
     previous columns k with l(j,k) != 0, restricted to the pattern. *)
  (* Build row-wise access to the lower pattern for the update loop. *)
  let lt = Sparse.transpose l in
  (* lt columns = rows of l *)
  let find_in_col j i =
    (* position of entry (i, j) in l's column j, or -1 *)
    let lo = ref colptr.(j) and hi = ref (colptr.(j + 1) - 1) in
    let res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if rowind.(mid) = i then begin
        res := mid;
        lo := !hi + 1
      end
      else if rowind.(mid) < i then lo := mid + 1
      else hi := mid - 1
    done;
    !res
  in
  for j = 0 to n - 1 do
    (* Subtract sum_k<j l(j,k) * l(i,k) for entries (i,j) in the pattern. *)
    let { Sparse.colptr = tp; rowind = ti; _ } = lt in
    for q = tp.(j) to tp.(j + 1) - 1 do
      let k = ti.(q) in
      (* l(j,k) structural; k ranges over the row pattern of row j *)
      if k < j then begin
        let pjk = find_in_col k j in
        let ljk = if pjk >= 0 then lx.(pjk) else 0.0 in
        if Util.Floats.nonzero ljk then
          (* for each i >= j with (i,k) and (i,j) in pattern *)
          for p = colptr.(k) to colptr.(k + 1) - 1 do
            let i = rowind.(p) in
            if i >= j then begin
              let pij = find_in_col j i in
              if pij >= 0 then lx.(pij) <- lx.(pij) -. (ljk *. lx.(p))
            end
          done
      end
    done;
    let pjj = find_in_col j j in
    if pjj < 0 || lx.(pjj) <= 0.0 then failwith "Cg.ic0: pivot breakdown";
    let d = sqrt lx.(pjj) in
    lx.(pjj) <- d;
    for p = colptr.(j) to colptr.(j + 1) - 1 do
      if rowind.(p) > j then lx.(p) <- lx.(p) /. d
    done
  done;
  { ic_n = n; ic_colptr = colptr; ic_rowind = rowind; ic_lx = lx }

let ic0_dim f = f.ic_n

let ic0_nnz f = Array.length f.ic_lx

(* In-place L L^T solve on the incomplete factor: the allocation-free
   apply behind both the closure form below and the mean-block
   preconditioner's ic0 backend. *)
let[@opera.hot] ic0_solve_in_place f (y : Vec.t) =
  let n = f.ic_n in
  if Array.length y <> n then invalid_arg "Cg.ic0_solve_in_place: dimension mismatch";
  let colptr = f.ic_colptr and rowind = f.ic_rowind and lx = f.ic_lx in
  (* Forward solve L y = r; columns sorted so diagonal is first. *)
  for j = 0 to n - 1 do
    let pjj = colptr.(j) in
    let yj = y.(j) /. lx.(pjj) in
    y.(j) <- yj;
    for p = pjj + 1 to colptr.(j + 1) - 1 do
      y.(rowind.(p)) <- y.(rowind.(p)) -. (lx.(p) *. yj)
    done
  done;
  (* Back solve L^T z = y. *)
  for j = n - 1 downto 0 do
    let pjj = colptr.(j) in
    let acc = ref y.(j) in
    for p = pjj + 1 to colptr.(j + 1) - 1 do
      acc := !acc -. (lx.(p) *. y.(rowind.(p)))
    done;
    y.(j) <- !acc /. lx.(pjj)
  done

let ic0 a =
  let f = ic0_factorize a in
  fun r ->
    let y = Array.copy r in
    ic0_solve_in_place f y;
    y

(* Bounded ring buffer of residual norms: keeps the [cap] most recent
   observations and lists them oldest-first. *)
type history = { cap : int; data : float array; mutable next : int; mutable count : int }

let history_create cap = { cap; data = Array.make (Int.max cap 1) 0.0; next = 0; count = 0 }

let history_push h v =
  if h.cap > 0 then begin
    h.data.(h.next) <- v;
    h.next <- (h.next + 1) mod h.cap;
    h.count <- Int.min (h.count + 1) h.cap
  end

let history_to_array h =
  if h.cap = 0 || h.count = 0 then [||]
  else
    let start = if h.count < h.cap then 0 else h.next in
    Array.init h.count (fun i -> h.data.((start + i) mod h.cap))

type workspace = { ws_r : Vec.t; ws_p : Vec.t }

let workspace_create n = { ws_r = Vec.create n; ws_p = Vec.create n }

let workspace_dim ws = Array.length ws.ws_r

(* Allocation-free PCG: the caller owns the solution buffer [x] (initial
   guess on entry, solution on exit) and the residual/direction scratch
   [ws], so a transient loop running 50+ solves per run allocates
   nothing per step.  [matvec] and [precond] may return shared internal
   buffers, valid until their next call — both are consumed immediately.
   The iteration is operation-for-operation the one in {!solve_report},
   so the two produce bitwise-identical solutions and reports. *)
let[@opera.hot] solve_report_in_place ?(precond = identity_preconditioner) ?max_iter ?(tol = 1e-10)
    ?(history_cap = 0) ~ws ~matvec ~b ~x () =
  let t0 = Util.Timer.start () in
  let n = Array.length b in
  if Array.length x <> n then invalid_arg "Cg.solve_report_in_place: x/b dimension mismatch";
  if workspace_dim ws <> n then
    invalid_arg "Cg.solve_report_in_place: workspace dimension mismatch";
  let bnorm = Vec.norm2 b in
  if Util.Floats.is_zero bnorm then begin
    (* The exact solution of an SPD system with a zero right-hand side is
       zero: return it outright instead of iterating against a zero
       target (which could never be met from a nonzero initial guess). *)
    Vec.fill x 0.0;
    Solve_report.make ~solver:"cg" ~iterations:0 ~residual_norm:0.0 ~rhs_norm:0.0 ~tol
      ~converged:true ~wall_seconds:(Util.Timer.elapsed_s t0) ()
  end
  else begin
    let max_iter = match max_iter with Some m -> m | None -> Int.max 100 (10 * n) in
    let r = ws.ws_r and p = ws.ws_p in
    let ax = matvec x in
    for i = 0 to n - 1 do
      r.(i) <- b.(i) -. ax.(i)
    done;
    let target = tol *. bnorm in
    let z = precond r in
    Array.blit z 0 p 0 n;
    let rz = ref (Vec.dot r z) in
    let iter = ref 0 in
    let rnorm = ref (Vec.norm2 r) in
    let hist = history_create history_cap in
    history_push hist !rnorm;
    while !rnorm > target && !iter < max_iter do
      incr iter;
      let ap = matvec p in
      let alpha = !rz /. Vec.dot p ap in
      Vec.axpy ~alpha p x;
      Vec.axpy ~alpha:(-.alpha) ap r;
      rnorm := Vec.norm2 r;
      history_push hist !rnorm;
      if !rnorm > target then begin
        let z = precond r in
        let rz' = Vec.dot r z in
        let beta = rz' /. !rz in
        rz := rz';
        for i = 0 to n - 1 do
          p.(i) <- z.(i) +. (beta *. p.(i))
        done
      end
    done;
    Solve_report.make ~solver:"cg" ~iterations:!iter ~residual_norm:!rnorm ~rhs_norm:bnorm
      ~tol ~converged:(!rnorm <= target) ~wall_seconds:(Util.Timer.elapsed_s t0)
      ~residual_history:(history_to_array hist) ()
  end

let solve_report ?precond ?max_iter ?tol ?history_cap ~matvec ~b ~x0 () =
  let x = Array.copy x0 in
  let ws = workspace_create (Array.length b) in
  let report =
    solve_report_in_place ?precond ?max_iter ?tol ?history_cap ~ws ~matvec ~b ~x ()
  in
  (x, report)

let stats_of_report (r : Solve_report.t) =
  {
    iterations = r.Solve_report.iterations;
    residual_norm = r.Solve_report.residual_norm;
    converged = r.Solve_report.converged;
  }

let solve ?precond ?max_iter ?tol ~matvec ~b ~x0 () =
  let x, report = solve_report ?precond ?max_iter ?tol ~matvec ~b ~x0 () in
  (x, stats_of_report report)

let solve_sparse ?precond ?max_iter ?tol a b =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Cg.solve_sparse: matrix is not square";
  solve ?precond ?max_iter ?tol ~matvec:(Sparse.mul_vec a) ~b ~x0:(Vec.create n) ()
