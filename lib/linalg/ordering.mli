(** Fill-reducing orderings for sparse symmetric factorization.

    The permutation convention follows {!Perm}: the result lists the
    original indices in elimination order, so [Sparse.permute_sym a p]
    produces the reordered matrix to factorize. *)

type kind =
  | Natural  (** identity ordering *)
  | Rcm  (** reverse Cuthill–McKee (bandwidth reduction) *)
  | Min_degree  (** quotient-graph minimum degree (fill reduction) *)
  | Nested_dissection
      (** recursive BFS-separator dissection (George–Liu automatic ND):
          near-optimal fill on mesh-like graphs at O(n log n) cost — the
          default for power-grid matrices *)

val compute : kind -> Sparse.t -> Perm.t
(** [compute kind a] orders the square matrix [a] using the symmetrized
    pattern of [a + a^T] with the diagonal ignored. *)

val adjacency : Sparse.t -> int array array
(** Undirected adjacency lists of the symmetrized pattern (no diagonal,
    no duplicates, sorted). Exposed for tests and for graph-based grid
    diagnostics. *)
