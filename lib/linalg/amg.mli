(** Aggregation-based algebraic multigrid.

    Unsmoothed greedy aggregation with piecewise-constant prolongation,
    Galerkin coarse operators, weighted-Jacobi smoothing and a direct
    coarsest solve.  Used as a CG preconditioner: the "multi-grid"
    complexity reducer the paper points to (its reference [4]). *)

type t

val build : ?max_levels:int -> ?coarsest:int -> Sparse.t -> t
(** [build a] constructs the hierarchy for the SPD matrix [a].
    [max_levels] caps the depth (default 10); [coarsest] is the size below
    which the level is solved directly (default 64). *)

val levels : t -> int

val level_dims : t -> int list
(** Unknown counts per level, finest first. *)

val vcycle : t -> Vec.t -> Vec.t
(** One V(1,1)-cycle applied to a residual — usable directly as a
    {!Cg.preconditioner}. *)

val solve :
  ?tol:float -> ?max_iter:int -> t -> Sparse.t -> Vec.t -> Vec.t * Cg.stats
(** Stand-alone AMG-preconditioned CG solve of [a x = b]. *)
