(** Aggregation-based algebraic multigrid, packaged as a preconditioner.

    Unsmoothed greedy aggregation with piecewise-constant prolongation,
    Galerkin coarse operators, weighted-Jacobi V(1,1)-cycles and a dense
    direct coarsest solve — the "multi-grid" complexity reducer the
    paper points to (its reference [4]).

    The hierarchy is built once ({!build}) and applied as a fixed number
    of V-cycles ({!apply}) through a caller-owned workspace, so the
    apply path allocates nothing and a million-node mean block can be
    preconditioned thousands of times per solve.  One application is a
    purely sequential pass: given the same hierarchy and right-hand
    side it is bitwise-identical at any domain count, which is what
    lets the mean-block preconditioner fan chaos blocks across domains
    without perturbing the repo's determinism guarantees.

    Setup state round-trips through the v2 artifact codec
    ({!to_frame} / {!of_frame_sections}): level storage is
    Bigarray-backed, so a mapped load keeps zero-copy views over the
    artifact file. *)

type t

val build : ?cycles:int -> ?max_levels:int -> ?coarsest:int -> Sparse.t -> t
(** [build a] constructs the hierarchy for the SPD matrix [a].
    [cycles] is the fixed V-cycle count per {!apply} (default 1);
    [max_levels] caps the depth (default 10); [coarsest] is the size
    below which the level is solved directly (default 64).  Aggregation
    is sequential and deterministic — a function of [a] alone. *)

val dim : t -> int
(** Fine-level dimension [n]. *)

val cycles : t -> int
(** Fixed V-cycle count one {!apply} runs. *)

val stored_nnz : t -> int
(** Stored entries across the hierarchy (level CSCs plus the dense
    coarsest factor) — the memory figure analogous to a factor's
    [nnz_l]. *)

val levels : t -> int

val level_dims : t -> int list
(** Unknown counts per level, finest first. *)

(** {1 Allocation-free application} *)

type ws
(** Per-level scratch for {!apply}.  One workspace per concurrent
    applier: block-parallel callers give each chunk its own. *)

val create_ws : t -> ws

val apply : t -> ws -> b:Vec.t -> x:Vec.t -> unit
(** [apply t ws ~b ~x] overwrites [x] with [cycles t] V(1,1)-cycles for
    the rhs [b], starting from zero.  Allocation-free and sequential —
    usable inside hot solver loops and deterministic at any domain
    count. *)

(** {1 Solver-compatible wrappers} *)

val vcycle : t -> Vec.t -> Vec.t
(** One application to a residual, fresh output vector — usable directly
    as a {!Cg.preconditioner}.  Builds a workspace per call; hot users
    keep a {!ws} and call {!apply}. *)

val solve :
  ?tol:float -> ?max_iter:int -> t -> Sparse.t -> Vec.t -> Vec.t * Cg.stats
(** Stand-alone AMG-preconditioned CG solve of [a x = b]. *)

(** {1 Artifact codec} *)

val artifact_kind : string

val artifact_version : int

val to_frame : t -> (Util.Codec.encoder -> unit) * Util.Codec.section_data list
(** Split the setup state for a v2 frame ({!Util.Codec.frame_v2}, and
    the shape {!Scenario}'s [Store.find_or_build_sections] consumes):
    shape metadata in the meta writer, the per-level CSC operators,
    inverse diagonals and aggregate maps as 8-aligned numeric sections,
    plus the coarsest operator (whose dense factor is rebuilt on
    load). *)

val of_frame_sections : Util.Codec.decoder -> Util.Codec.sections -> t
(** Rebuild a hierarchy from a decoded v2 frame.  Validates every level
    (colptr monotonicity, index ranges, dimension chaining) and raises
    {!Util.Codec.Corrupt} on damage; when the sections are mapped the
    level storage stays zero-copy over the artifact file. *)
