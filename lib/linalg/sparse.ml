type t = {
  nrows : int;
  ncols : int;
  colptr : int array;
  rowind : int array;
  values : float array;
}

let validate a =
  let { nrows; ncols; colptr; rowind; values } = a in
  if nrows < 0 || ncols < 0 then invalid_arg "Sparse: negative dimension";
  if Array.length colptr <> ncols + 1 then invalid_arg "Sparse: colptr length";
  if colptr.(0) <> 0 then invalid_arg "Sparse: colptr must start at 0";
  if Array.length rowind <> colptr.(ncols) || Array.length values <> colptr.(ncols) then
    invalid_arg "Sparse: rowind/values length must equal colptr.(ncols)";
  for j = 0 to ncols - 1 do
    if colptr.(j) > colptr.(j + 1) then invalid_arg "Sparse: colptr not monotone";
    for k = colptr.(j) to colptr.(j + 1) - 1 do
      let i = rowind.(k) in
      if i < 0 || i >= nrows then invalid_arg "Sparse: row index out of range";
      if k > colptr.(j) && rowind.(k - 1) >= i then
        invalid_arg "Sparse: row indices must be strictly increasing per column"
    done
  done;
  a

let create ~nrows ~ncols ~colptr ~rowind ~values =
  validate { nrows; ncols; colptr; rowind; values }

let zero ~nrows ~ncols =
  { nrows; ncols; colptr = Array.make (ncols + 1) 0; rowind = [||]; values = [||] }

(* Sort triplets column-major, then merge duplicates. *)
let of_triplets ~nrows ~ncols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= nrows || j < 0 || j >= ncols then
        invalid_arg (Printf.sprintf "Sparse.of_triplets: (%d,%d) out of %dx%d" i j nrows ncols))
    triplets;
  let arr = Array.of_list triplets in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) ->
      match compare j1 j2 with 0 -> compare i1 i2 | c -> c)
    arr;
  let counts = Array.make (ncols + 1) 0 in
  let ri = ref [] and vs = ref [] and total = ref 0 in
  let k = ref 0 in
  let m = Array.length arr in
  while !k < m do
    let i, j, _ = arr.(!k) in
    let acc = ref 0.0 in
    while
      !k < m
      &&
      let i', j', _ = arr.(!k) in
      i' = i && j' = j
    do
      let _, _, v = arr.(!k) in
      acc := !acc +. v;
      incr k
    done;
    if Util.Floats.nonzero !acc then begin
      ri := i :: !ri;
      vs := !acc :: !vs;
      counts.(j + 1) <- counts.(j + 1) + 1;
      incr total
    end
  done;
  let rowind = Array.make !total 0 and values = Array.make !total 0.0 in
  List.iteri (fun idx i -> rowind.(!total - 1 - idx) <- i) !ri;
  List.iteri (fun idx v -> values.(!total - 1 - idx) <- v) !vs;
  let colptr = Array.make (ncols + 1) 0 in
  for j = 1 to ncols do
    colptr.(j) <- colptr.(j - 1) + counts.(j)
  done;
  validate { nrows; ncols; colptr; rowind; values }

(* In-place sort + duplicate merge of one column segment
   [lo, hi): insertion sort by row index (stable, so duplicate
   contributions sum in emission order — deterministic run to run),
   then compact equal rows to the segment head, dropping exact-zero
   sums.  Returns the merged entry count. *)
let[@opera.hot] sort_merge_column (rowind : int array) (values : float array) lo hi =
  for k = lo + 1 to hi - 1 do
    let i = rowind.(k) and v = values.(k) in
    let p = ref k in
    while !p > lo && rowind.(!p - 1) > i do
      rowind.(!p) <- rowind.(!p - 1);
      values.(!p) <- values.(!p - 1);
      decr p
    done;
    rowind.(!p) <- i;
    values.(!p) <- v
  done;
  let out = ref lo and k = ref lo in
  while !k < hi do
    let i = rowind.(!k) in
    let acc = ref values.(!k) in
    incr k;
    while !k < hi && rowind.(!k) = i do
      acc := !acc +. values.(!k);
      incr k
    done;
    if Util.Floats.nonzero !acc then begin
      rowind.(!out) <- i;
      values.(!out) <- !acc;
      incr out
    end
  done;
  !out - lo

(* Streaming CSC assembly: the stamping path of the MNA builders.
   [emit stamp] must call [stamp i j v] once per contribution and must
   produce the same stamp sequence on both invocations — it runs twice,
   a counting pass that sizes every column exactly and a fill pass that
   lands each contribution in its column segment.  No triplet list is
   ever materialized: peak memory is the raw stamp arrays (16 bytes per
   stamp) plus two (ncols+1) counters, and the result shrinks to the
   merged CSC.  Duplicates sum in emission order (stable per-column
   sort), so the result is deterministic; exact-zero sums are dropped,
   matching {!of_triplets}.  Stamp/entry counts and the raw peak land
   in [metrics] ([sparse.stream_stamps], [sparse.stream_nnz],
   [sparse.stream_peak_bytes]). *)
let of_stamps ?(metrics = Util.Metrics.global) ~nrows ~ncols emit =
  if nrows < 0 || ncols < 0 then invalid_arg "Sparse.of_stamps: negative dimension";
  let count = Array.make (ncols + 1) 0 in
  let stamps = ref 0 in
  emit (fun i j v ->
      if i < 0 || i >= nrows || j < 0 || j >= ncols then
        invalid_arg (Printf.sprintf "Sparse.of_stamps: (%d,%d) out of %dx%d" i j nrows ncols);
      ignore v;
      count.(j + 1) <- count.(j + 1) + 1;
      incr stamps);
  for j = 1 to ncols do
    count.(j) <- count.(j) + count.(j - 1)
  done;
  let raw = count in
  (* raw.(j) .. raw.(j+1) is column j's segment *)
  let nraw = raw.(ncols) in
  let rowind = Array.make nraw 0 in
  let values = Array.make nraw 0.0 in
  let cursor = Array.make ncols 0 in
  Array.blit raw 0 cursor 0 ncols;
  emit (fun i j v ->
      if i < 0 || i >= nrows || j < 0 || j >= ncols || cursor.(j) >= raw.(j + 1) then
        invalid_arg "Sparse.of_stamps: emit changed between the counting and fill passes";
      rowind.(cursor.(j)) <- i;
      values.(cursor.(j)) <- v;
      cursor.(j) <- cursor.(j) + 1);
  for j = 0 to ncols - 1 do
    if cursor.(j) <> raw.(j + 1) then
      invalid_arg "Sparse.of_stamps: emit changed between the counting and fill passes"
  done;
  (* Merge every column in place, then compact left: each column's
     merged entries move to their final offset (always <= the source
     offset, so the in-place shift is safe). *)
  let colptr = Array.make (ncols + 1) 0 in
  for j = 0 to ncols - 1 do
    let lo = raw.(j) and hi = raw.(j + 1) in
    let kept = sort_merge_column rowind values lo hi in
    let dst = colptr.(j) in
    if dst <> lo then begin
      Array.blit rowind lo rowind dst kept;
      Array.blit values lo values dst kept
    end;
    colptr.(j + 1) <- dst + kept
  done;
  let total = colptr.(ncols) in
  let rowind = if total = nraw then rowind else Array.sub rowind 0 total in
  let values = if total = nraw then values else Array.sub values 0 total in
  Util.Metrics.incr ~by:!stamps metrics "sparse.stream_stamps";
  Util.Metrics.incr ~by:total metrics "sparse.stream_nnz";
  Util.Metrics.observe metrics "sparse.stream_peak_bytes"
    (float_of_int ((16 * nraw) + (8 * 2 * (ncols + 1))));
  validate { nrows; ncols; colptr; rowind; values }

let to_triplets a =
  let out = ref [] in
  for j = a.ncols - 1 downto 0 do
    for k = a.colptr.(j + 1) - 1 downto a.colptr.(j) do
      out := (a.rowind.(k), j, a.values.(k)) :: !out
    done
  done;
  !out

let identity n =
  {
    nrows = n;
    ncols = n;
    colptr = Array.init (n + 1) (fun j -> j);
    rowind = Array.init n (fun i -> i);
    values = Array.make n 1.0;
  }

let of_dense d =
  let nrows, ncols = Dense.dims d in
  let triplets = ref [] in
  for j = ncols - 1 downto 0 do
    for i = nrows - 1 downto 0 do
      let v = Dense.get d i j in
      if Util.Floats.nonzero v then triplets := (i, j, v) :: !triplets
    done
  done;
  of_triplets ~nrows ~ncols !triplets

let to_dense a =
  let d = Dense.create a.nrows a.ncols in
  for j = 0 to a.ncols - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      Dense.set d a.rowind.(k) j a.values.(k)
    done
  done;
  d

let dims a = (a.nrows, a.ncols)

let nnz a = a.colptr.(a.ncols)

let get a i j =
  if i < 0 || i >= a.nrows || j < 0 || j >= a.ncols then invalid_arg "Sparse.get: out of bounds";
  let lo = ref a.colptr.(j) and hi = ref (a.colptr.(j + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = a.rowind.(mid) in
    if r = i then begin
      result := a.values.(mid);
      lo := !hi + 1
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mul_vec_into a x y =
  if Array.length x <> a.ncols || Array.length y <> a.nrows then
    invalid_arg "Sparse.mul_vec_into: dimension mismatch";
  Array.fill y 0 a.nrows 0.0;
  for j = 0 to a.ncols - 1 do
    let xj = x.(j) in
    if Util.Floats.nonzero xj then
      for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
        y.(a.rowind.(k)) <- y.(a.rowind.(k)) +. (a.values.(k) *. xj)
      done
  done

let mul_vec a x =
  let y = Vec.create a.nrows in
  mul_vec_into a x y;
  y

let[@opera.hot] mul_vec_acc_off ?(alpha = 1.0) a x ~xoff y ~yoff =
  if xoff < 0 || yoff < 0 || xoff + a.ncols > Array.length x || yoff + a.nrows > Array.length y
  then invalid_arg "Sparse.mul_vec_acc_off: slice out of bounds";
  let { colptr; rowind; values; ncols; _ } = a in
  for j = 0 to ncols - 1 do
    let xj = alpha *. x.(xoff + j) in
    if Util.Floats.nonzero xj then
      for k = colptr.(j) to colptr.(j + 1) - 1 do
        y.(yoff + rowind.(k)) <- y.(yoff + rowind.(k)) +. (values.(k) *. xj)
      done
  done

let[@opera.hot] mul_vec_acc ?alpha a x y =
  if Array.length x <> a.ncols || Array.length y <> a.nrows then
    invalid_arg "Sparse.mul_vec_acc: dimension mismatch";
  mul_vec_acc_off ?alpha a x ~xoff:0 y ~yoff:0

let mul_vec_t a x =
  if Array.length x <> a.nrows then invalid_arg "Sparse.mul_vec_t: dimension mismatch";
  let y = Vec.create a.ncols in
  for j = 0 to a.ncols - 1 do
    let acc = ref 0.0 in
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      acc := !acc +. (a.values.(k) *. x.(a.rowind.(k)))
    done;
    y.(j) <- !acc
  done;
  y

let transpose a =
  (* Counting sort of entries by row. *)
  let counts = Array.make (a.nrows + 1) 0 in
  Array.iter (fun i -> counts.(i + 1) <- counts.(i + 1) + 1) a.rowind;
  for i = 1 to a.nrows do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let colptr = Array.copy counts in
  let next = Array.copy counts in
  let m = nnz a in
  let rowind = Array.make m 0 and values = Array.make m 0.0 in
  for j = 0 to a.ncols - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowind.(k) in
      let pos = next.(i) in
      next.(i) <- pos + 1;
      rowind.(pos) <- j;
      values.(pos) <- a.values.(k)
    done
  done;
  { nrows = a.ncols; ncols = a.nrows; colptr; rowind; values }

(* Merge two sorted columns: the workhorse for add/axpy. *)
let axpy ~alpha a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then invalid_arg "Sparse.axpy: dimension mismatch";
  let colptr = Array.make (a.ncols + 1) 0 in
  let cap = nnz a + nnz b in
  let rowind = Array.make cap 0 and values = Array.make cap 0.0 in
  let pos = ref 0 in
  for j = 0 to a.ncols - 1 do
    let ka = ref a.colptr.(j) and kb = ref b.colptr.(j) in
    let ea = a.colptr.(j + 1) and eb = b.colptr.(j + 1) in
    while !ka < ea || !kb < eb do
      let push i v =
        if Util.Floats.nonzero v then begin
          rowind.(!pos) <- i;
          values.(!pos) <- v;
          incr pos
        end
      in
      if !ka < ea && (!kb >= eb || a.rowind.(!ka) < b.rowind.(!kb)) then begin
        push a.rowind.(!ka) (alpha *. a.values.(!ka));
        incr ka
      end
      else if !kb < eb && (!ka >= ea || b.rowind.(!kb) < a.rowind.(!ka)) then begin
        push b.rowind.(!kb) b.values.(!kb);
        incr kb
      end
      else begin
        push a.rowind.(!ka) ((alpha *. a.values.(!ka)) +. b.values.(!kb));
        incr ka;
        incr kb
      end
    done;
    colptr.(j + 1) <- !pos
  done;
  {
    nrows = a.nrows;
    ncols = a.ncols;
    colptr;
    rowind = Array.sub rowind 0 !pos;
    values = Array.sub values 0 !pos;
  }

let add a b = axpy ~alpha:1.0 a b

let scale alpha a =
  if Util.Floats.is_zero alpha then zero ~nrows:a.nrows ~ncols:a.ncols
  else { a with values = Array.map (fun v -> alpha *. v) a.values }

let map_values f a = { a with values = Array.map f a.values }

let diag a =
  if a.nrows <> a.ncols then invalid_arg "Sparse.diag: matrix is not square";
  Array.init a.nrows (fun i -> get a i i)

let of_diag d =
  let n = Array.length d in
  of_triplets ~nrows:n ~ncols:n (List.init n (fun i -> (i, i, d.(i))))

(* Process-wide count of kron invocations.  The matrix-free Galerkin
   path promises never to build the augmented Kronecker operator; tests
   pin that promise by sampling this counter around a solve. *)
let kron_calls = Atomic.make 0

let kron_count () = Atomic.get kron_calls

let kron c a =
  Atomic.incr kron_calls;
  let crows, ccols = Dense.dims c in
  let nrows = crows * a.nrows and ncols = ccols * a.ncols in
  (* Count entries per output column first, then fill. *)
  let nz_per_col_c = Array.make ccols 0 in
  for jc = 0 to ccols - 1 do
    let cnt = ref 0 in
    for ic = 0 to crows - 1 do
      if Util.Floats.nonzero (Dense.get c ic jc) then incr cnt
    done;
    nz_per_col_c.(jc) <- !cnt
  done;
  let colptr = Array.make (ncols + 1) 0 in
  for jc = 0 to ccols - 1 do
    for ja = 0 to a.ncols - 1 do
      let j = (jc * a.ncols) + ja in
      colptr.(j + 1) <- nz_per_col_c.(jc) * (a.colptr.(ja + 1) - a.colptr.(ja))
    done
  done;
  for j = 1 to ncols do
    colptr.(j) <- colptr.(j) + colptr.(j - 1)
  done;
  let total = colptr.(ncols) in
  let rowind = Array.make total 0 and values = Array.make total 0.0 in
  for jc = 0 to ccols - 1 do
    for ja = 0 to a.ncols - 1 do
      let j = (jc * a.ncols) + ja in
      let pos = ref colptr.(j) in
      for ic = 0 to crows - 1 do
        let cij = Dense.get c ic jc in
        if Util.Floats.nonzero cij then
          for k = a.colptr.(ja) to a.colptr.(ja + 1) - 1 do
            rowind.(!pos) <- (ic * a.nrows) + a.rowind.(k);
            values.(!pos) <- cij *. a.values.(k);
            incr pos
          done
      done
    done
  done;
  validate { nrows; ncols; colptr; rowind; values }

let permute_sym a p =
  if a.nrows <> a.ncols then invalid_arg "Sparse.permute_sym: matrix is not square";
  if Array.length p <> a.nrows then invalid_arg "Sparse.permute_sym: permutation length";
  let n = a.nrows in
  let pinv = Perm.inverse p in
  (* Counting pass over new columns, then fill and per-column sort. *)
  let counts = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    let nj = pinv.(j) in
    counts.(nj + 1) <- counts.(nj + 1) + (a.colptr.(j + 1) - a.colptr.(j))
  done;
  for j = 1 to n do
    counts.(j) <- counts.(j) + counts.(j - 1)
  done;
  let m = nnz a in
  let colptr = Array.copy counts in
  let next = Array.copy counts in
  let rowind = Array.make m 0 and values = Array.make m 0.0 in
  for j = 0 to n - 1 do
    let nj = pinv.(j) in
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let pos = next.(nj) in
      next.(nj) <- pos + 1;
      rowind.(pos) <- pinv.(a.rowind.(k));
      values.(pos) <- a.values.(k)
    done
  done;
  (* Sort each column by row index (insertion-friendly segments). *)
  for j = 0 to n - 1 do
    let lo = colptr.(j) and hi = colptr.(j + 1) in
    let seg = Array.init (hi - lo) (fun t -> (rowind.(lo + t), values.(lo + t))) in
    Array.sort (fun (r1, _) (r2, _) -> compare r1 r2) seg;
    Array.iteri
      (fun t (r, v) ->
        rowind.(lo + t) <- r;
        values.(lo + t) <- v)
      seg
  done;
  { nrows = n; ncols = n; colptr; rowind; values }

let filter pred a =
  (* Array-based structural filter preserving per-column order. *)
  let m = nnz a in
  let rowind = Array.make m 0 and values = Array.make m 0.0 in
  let colptr = Array.make (a.ncols + 1) 0 in
  let pos = ref 0 in
  for j = 0 to a.ncols - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let i = a.rowind.(k) in
      if pred i j then begin
        rowind.(!pos) <- i;
        values.(!pos) <- a.values.(k);
        incr pos
      end
    done;
    colptr.(j + 1) <- !pos
  done;
  {
    nrows = a.nrows;
    ncols = a.ncols;
    colptr;
    rowind = Array.sub rowind 0 !pos;
    values = Array.sub values 0 !pos;
  }

let lower a = filter (fun i j -> i >= j) a

let upper a = filter (fun i j -> i <= j) a

let is_symmetric ?(tol = 1e-12) a =
  a.nrows = a.ncols
  &&
  let at = transpose a in
  let d = axpy ~alpha:(-1.0) at a in
  Array.for_all (fun v -> Float.abs v <= tol) d.values

let max_abs a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a.values

let approx_equal ?(tol = 1e-9) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  &&
  let d = axpy ~alpha:(-1.0) a b in
  Array.for_all (fun v -> Float.abs v <= tol) d.values
