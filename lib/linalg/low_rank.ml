type t = {
  base : Sparse_cholesky.t;
  u : Vec.t array;
  ainv_u : Vec.t array;  (** A^-1 u_j, cached *)
  capacitance_lu : Lu.t;  (** LU of diag(1/c) + U^T A^-1 U (c may be negative) *)
}

let prepare f ~u ~c =
  let k = Array.length u in
  if Array.length c <> k then invalid_arg "Low_rank.prepare: u/c length mismatch";
  if k = 0 then invalid_arg "Low_rank.prepare: empty update";
  let n = Sparse_cholesky.dim f in
  Array.iter
    (fun uj -> if Array.length uj <> n then invalid_arg "Low_rank.prepare: vector length")
    u;
  Array.iter (fun cj -> if Util.Floats.is_zero cj then invalid_arg "Low_rank.prepare: zero coefficient") c;
  let ainv_u = Array.map (fun uj -> Sparse_cholesky.solve f uj) u in
  (* Small capacitance matrix: diag(1/c) + U^T A^-1 U. *)
  let cap =
    Dense.init k k (fun i j ->
        let base = Vec.dot u.(i) ainv_u.(j) in
        if i = j then base +. (1.0 /. c.(i)) else base)
  in
  let capacitance_lu =
    try Lu.factor cap with Lu.Singular _ -> failwith "Low_rank.prepare: singular update"
  in
  { base = f; u; ainv_u; capacitance_lu }

let rank t = Array.length t.u

let solve t b =
  let y = Sparse_cholesky.solve t.base b in
  let k = Array.length t.u in
  let rhs = Array.init k (fun j -> Vec.dot t.u.(j) y) in
  let z = Lu.solve t.capacitance_lu rhs in
  let x = Array.copy y in
  for j = 0 to k - 1 do
    Vec.axpy ~alpha:(-.z.(j)) t.ainv_u.(j) x
  done;
  x

let node_update ~n ~node ~delta =
  if node < 0 || node >= n then invalid_arg "Low_rank.node_update: node out of range";
  let u = Vec.create n in
  u.(node) <- 1.0;
  (u, delta)
