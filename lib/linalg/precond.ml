(* Mean-block preconditioner backends.

   The Galerkin solvers and the ST collocation backend both reduce to
   repeated solves with the n x n nominal (mean) matrix; this module is
   the knob that picks how those solves happen.  [Cholesky] is the
   exact factor (today's default, unchanged bitwise); [Ic0] trades
   setup cost for an approximate apply; [Amg] keeps both setup and
   apply near-linear in n, which is what survives at 10^5-10^6 nodes;
   [Auto] resolves to [Cholesky] below {!auto_threshold} unknowns and
   [Amg] at or above it.

   Every backend applies in place through a caller-owned workspace, so
   the chunked mean-block loop stays allocation-free, and every apply
   is deterministic at any domain count: the exact factor's
   level-scheduled sweeps are bitwise-stable by construction, and the
   IC(0) and AMG applies are purely sequential. *)

type kind = Cholesky | Ic0 | Amg | Auto

let to_string = function
  | Cholesky -> "cholesky"
  | Ic0 -> "ic0"
  | Amg -> "amg"
  | Auto -> "auto"

let of_string = function
  | "cholesky" -> Some Cholesky
  | "ic0" -> Some Ic0
  | "amg" -> Some Amg
  | "auto" -> Some Auto
  | _ -> None

let all = [ Cholesky; Ic0; Amg; Auto ]

let usage = "cholesky|ic0|amg|auto"

(* Below this many unknowns the exact factor's superlinear setup is
   still cheap and its apply unbeatable; above it the factor's fill
   (memory as much as time) is what breaks first. *)
let auto_threshold = 20_000

let resolve kind ~n =
  match kind with Auto -> if n >= auto_threshold then Amg else Cholesky | k -> k

type t =
  | Exact of Sparse_cholesky.t
  | Incomplete of Cg.ic0_factor
  | Multigrid of Amg.t

let of_factor f = Exact f

let make ?(cycles = 1) ?perm ?(ordering = Ordering.Nested_dissection) kind a =
  let n, _ = Sparse.dims a in
  match resolve kind ~n with
  | Cholesky ->
      Exact
        (match perm with
        | Some p -> Sparse_cholesky.factor ~perm:p a
        | None -> Sparse_cholesky.factor ~ordering a)
  | Ic0 -> Incomplete (Cg.ic0_factorize a)
  | Amg -> Multigrid (Amg.build ~cycles a)
  | Auto -> assert false (* resolve never returns Auto *)

let backend = function
  | Exact _ -> Cholesky
  | Incomplete _ -> Ic0
  | Multigrid _ -> Amg

let dim = function
  | Exact f -> Sparse_cholesky.dim f
  | Incomplete f -> Cg.ic0_dim f
  | Multigrid t -> Amg.dim t

let stored_nnz = function
  | Exact f -> Sparse_cholesky.nnz_l f
  | Incomplete f -> Cg.ic0_nnz f
  | Multigrid t -> Amg.stored_nnz t

type ws =
  | Exact_ws of Vec.t
  | Incomplete_ws
  | Multigrid_ws of { mb : Vec.t; mw : Amg.ws }

let create_ws = function
  | Exact f -> Exact_ws (Array.make (Sparse_cholesky.dim f) 0.0)
  | Incomplete _ -> Incomplete_ws
  | Multigrid t -> Multigrid_ws { mb = Array.make (Amg.dim t) 0.0; mw = Amg.create_ws t }

(* [domains] only reaches the exact factor, whose level-scheduled
   triangular sweeps are bitwise-identical to the sequential ones; the
   approximate backends are sequential applies. *)
let apply_in_place t ws ?(domains = 1) (x : Vec.t) =
  match (t, ws) with
  | Exact f, Exact_ws work -> Sparse_cholesky.solve_in_place_ws f ~domains ~work x
  | Incomplete f, Incomplete_ws -> Cg.ic0_solve_in_place f x
  | Multigrid t, Multigrid_ws { mb; mw } ->
      Array.blit x 0 mb 0 (Array.length x);
      Amg.apply t mw ~b:mb ~x
  | _ -> invalid_arg "Precond.apply_in_place: workspace does not match backend"

let as_cg_preconditioner t =
  let ws = create_ws t in
  fun r ->
    let y = Array.copy r in
    apply_in_place t ws y;
    y
