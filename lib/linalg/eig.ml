(* Cyclic Jacobi: repeatedly zero the largest off-diagonal entries with Givens
   rotations.  Quadratically convergent; ample for the small matrices (PCA
   covariances, coupling blocks) this library needs it for. *)

let sort_eigen values vectors =
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare values.(i) values.(j)) order;
  let sorted_values = Array.map (fun i -> values.(i)) order in
  let sorted_vectors = Dense.init n n (fun i j -> Dense.get vectors i order.(j)) in
  (sorted_values, sorted_vectors)

let symmetric ?(max_sweeps = 100) a =
  let n, m = Dense.dims a in
  if n <> m then invalid_arg "Eig.symmetric: matrix is not square";
  if not (Dense.is_symmetric ~tol:(1e-8 *. (1.0 +. Dense.max_abs a)) a) then
    invalid_arg "Eig.symmetric: matrix is not symmetric";
  let w = Dense.copy a in
  let v = Dense.identity n in
  let off_norm () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = Dense.get w i j in
        acc := !acc +. (x *. x)
      done
    done;
    sqrt !acc
  in
  let scale = 1.0 +. Dense.max_abs a in
  let sweep = ref 0 in
  while off_norm () > 1e-14 *. scale *. float_of_int n && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Dense.get w p q in
        if Float.abs apq > 1e-300 then begin
          let app = Dense.get w p p and aqq = Dense.get w q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Apply the rotation on both sides of w and accumulate into v. *)
          for k = 0 to n - 1 do
            let wkp = Dense.get w k p and wkq = Dense.get w k q in
            Dense.set w k p ((c *. wkp) -. (s *. wkq));
            Dense.set w k q ((s *. wkp) +. (c *. wkq))
          done;
          for k = 0 to n - 1 do
            let wpk = Dense.get w p k and wqk = Dense.get w q k in
            Dense.set w p k ((c *. wpk) -. (s *. wqk));
            Dense.set w q k ((s *. wpk) +. (c *. wqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Dense.get v k p and vkq = Dense.get v k q in
            Dense.set v k p ((c *. vkp) -. (s *. vkq));
            Dense.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let values = Array.init n (fun i -> Dense.get w i i) in
  sort_eigen values v

(* Implicit-shift QL with Wilkinson shift, following the classical tql2
   routine (EISPACK / Numerical Recipes tqli). *)
let tridiagonal ~diag ~off =
  let n = Array.length diag in
  if Array.length off <> Int.max 0 (n - 1) then
    invalid_arg "Eig.tridiagonal: off-diagonal must have length n-1";
  let d = Array.copy diag in
  let e = Array.make n 0.0 in
  Array.blit off 0 e 0 (n - 1);
  (* e.(n-1) stays 0: e is shifted so e.(i) couples i and i+1. *)
  let z = Dense.identity n in
  let pythag a b =
    let absa = Float.abs a and absb = Float.abs b in
    if absa > absb then absa *. sqrt (1.0 +. ((absb /. absa) ** 2.0))
    else if Util.Floats.is_zero absb then 0.0
    else absb *. sqrt (1.0 +. ((absa /. absb) ** 2.0))
  in
  for l = 0 to n - 1 do
    let iter = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      (* Find a small off-diagonal element to split the problem. *)
      let m = ref l in
      (try
         while !m < n - 1 do
           let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
           if Float.abs e.(!m) <= 1e-16 *. dd then raise Exit;
           incr m
         done
       with Exit -> ());
      if !m = l then continue_ := false
      else begin
        incr iter;
        if !iter > 50 then failwith "Eig.tridiagonal: too many QL iterations";
        let g = (d.(l + 1) -. d.(l)) /. (2.0 *. e.(l)) in
        let r = pythag g 1.0 in
        let g =
          d.(!m) -. d.(l) +. (e.(l) /. (g +. (if g >= 0.0 then Float.abs r else -.Float.abs r)))
        in
        let s = ref 1.0 and c = ref 1.0 and p = ref 0.0 in
        let g = ref g in
        (try
           for i = !m - 1 downto l do
             let f = !s *. e.(i) and b = !c *. e.(i) in
             let r = pythag f !g in
             e.(i + 1) <- r;
             if Util.Floats.is_zero r then begin
               d.(i + 1) <- d.(i + 1) -. !p;
               e.(!m) <- 0.0;
               raise Exit
             end;
             s := f /. r;
             c := !g /. r;
             let gg = d.(i + 1) -. !p in
             let rr = ((d.(i) -. gg) *. !s) +. (2.0 *. !c *. b) in
             p := !s *. rr;
             d.(i + 1) <- gg +. !p;
             g := (!c *. rr) -. b;
             for k = 0 to n - 1 do
               let fk = Dense.get z k (i + 1) in
               let zki = Dense.get z k i in
               Dense.set z k (i + 1) ((!s *. zki) +. (!c *. fk));
               Dense.set z k i ((!c *. zki) -. (!s *. fk))
             done
           done;
           d.(l) <- d.(l) -. !p;
           e.(l) <- !g;
           e.(!m) <- 0.0
         with Exit -> ())
      end
    done
  done;
  sort_eigen d z
