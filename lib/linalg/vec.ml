type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let fill x v = Array.fill x 0 (Array.length x) v

let check_same_length name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: length mismatch (%d vs %d)" name (Array.length x) (Array.length y))

let dot x y =
  check_same_length "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let axpy ~alpha x y =
  check_same_length "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- alpha *. x.(i)
  done

let scaled alpha x = Array.map (fun v -> alpha *. v) x

let map2 name f x y =
  check_same_length name x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y = map2 "add" ( +. ) x y

let sub x y = map2 "sub" ( -. ) x y

let mul_elementwise x y = map2 "mul_elementwise" ( *. ) x y

let neg x = Array.map (fun v -> -.v) x

let sum x = Array.fold_left ( +. ) 0.0 x

let mean x =
  if Array.length x = 0 then invalid_arg "Vec.mean: empty vector";
  sum x /. float_of_int (Array.length x)

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let dist2 x y =
  check_same_length "dist2" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let max_abs_index x =
  if Array.length x = 0 then invalid_arg "Vec.max_abs_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if Float.abs x.(i) > Float.abs x.(!best) then best := i
  done;
  !best

let min x =
  if Array.length x = 0 then invalid_arg "Vec.min: empty vector";
  Array.fold_left Float.min x.(0) x

let max x =
  if Array.length x = 0 then invalid_arg "Vec.max: empty vector";
  Array.fold_left Float.max x.(0) x

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let rel_error x ~reference =
  let denom = norm2 reference in
  let num = dist2 x reference in
  if Util.Floats.is_zero denom then norm2 x else num /. denom
