(** BiCGSTAB for general (non-symmetric) sparse systems. *)

val solve :
  ?precond:Cg.preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  matvec:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  x0:Vec.t ->
  unit ->
  Vec.t * Cg.stats
(** Same contract as {!Cg.solve} but without the SPD requirement.
    Convergence is declared when the residual 2-norm drops below
    [tol * ||b||]. *)

val solve_report :
  ?precond:Cg.preconditioner ->
  ?max_iter:int ->
  ?tol:float ->
  matvec:(Vec.t -> Vec.t) ->
  b:Vec.t ->
  x0:Vec.t ->
  unit ->
  Vec.t * Solve_report.t
(** Same iteration as {!solve} but returns a full {!Solve_report.t}
    (relative residual, wall time, convergence and breakdown flags).  A
    zero right-hand side returns [x = 0] immediately. *)

val solve_sparse :
  ?precond:Cg.preconditioner -> ?max_iter:int -> ?tol:float -> Sparse.t -> Vec.t -> Vec.t * Cg.stats
