exception Singular of int

type t = {
  lu : Dense.t; (* L below the diagonal (unit diag implicit), U on and above *)
  piv : int array; (* row permutation: piv.(k) = original row placed at k *)
  sign : float; (* parity of the permutation, for the determinant *)
}

let factor a =
  let n, m = Dense.dims a in
  if n <> m then invalid_arg "Lu.factor: matrix is not square";
  let lu = Dense.copy a in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  let get i j = Dense.get lu i j in
  let set i j v = Dense.set lu i j v in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude entry in column k. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get i k) > Float.abs (get !pivot_row k) then pivot_row := i
    done;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let t = get k j in
        set k j (get !pivot_row j);
        set !pivot_row j t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!pivot_row);
      piv.(!pivot_row) <- t;
      sign := -. !sign
    end;
    let pivot = get k k in
    if Float.abs pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let lik = get i k /. pivot in
      set i k lik;
      if Util.Floats.nonzero lik then
        for j = k + 1 to n - 1 do
          set i j (get i j -. (lik *. get k j))
        done
    done
  done;
  { lu; piv; sign = !sign }

let size f = fst (Dense.dims f.lu)

let solve f b =
  let n = size f in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.init n (fun k -> b.(f.piv.(k))) in
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Dense.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Dense.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Dense.get f.lu i i
  done;
  x

let solve_many f b =
  let n = size f in
  let bn, bm = Dense.dims b in
  if bn <> n then invalid_arg "Lu.solve_many: dimension mismatch";
  let x = Dense.create n bm in
  for j = 0 to bm - 1 do
    let col = solve f (Dense.col b j) in
    Array.iteri (fun i v -> Dense.set x i j v) col
  done;
  x

let det f =
  let n = size f in
  let d = ref f.sign in
  for k = 0 to n - 1 do
    d := !d *. Dense.get f.lu k k
  done;
  !d

let inverse f = solve_many f (Dense.identity (size f))
