(** Sherman–Morrison–Woodbury solves for low-rank-updated systems.

    What-if edits (decap insertion, via repair, pad resizing) change a
    handful of matrix entries; re-factorizing the whole grid for each
    candidate is wasteful.  With [A' = A + U diag(c) U^T] and a factor of
    [A] already in hand,

    [A'^-1 b = A^-1 b - A^-1 U (diag(c)^-1 + U^T A^-1 U)^-1 U^T A^-1 b]

    costs [k] extra triangular solves once plus one small dense solve per
    right-hand side. *)

type t

val prepare : Sparse_cholesky.t -> u:Vec.t array -> c:Vec.t -> t
(** [prepare f ~u ~c] caches the capacitance matrix of the update
    [sum_j c.(j) u_j u_j^T] against the factorized base matrix.
    Raises [Invalid_argument] on shape mismatch or a zero coefficient,
    and [Failure] if the updated system is singular. *)

val rank : t -> int

val solve : t -> Vec.t -> Vec.t
(** Solve the *updated* system [A' x = b]. *)

val node_update : n:int -> node:int -> delta:float -> Vec.t * float
(** Convenience: a diagonal update [delta] at one node, as a (u, c) pair
    ([u] is the unit vector at [node]). *)
