(** Sparse matrices in compressed sparse column (CSC) format.

    CSC is the native format of the sparse factorizations; the stochastic
    Galerkin assembly builds its augmented operators here via {!kron}. *)

type t = private {
  nrows : int;
  ncols : int;
  colptr : int array; (* length ncols + 1 *)
  rowind : int array; (* row indices, sorted strictly increasing per column *)
  values : float array;
}

val create : nrows:int -> ncols:int -> colptr:int array -> rowind:int array -> values:float array -> t
(** Low-level constructor; validates the CSC invariants (monotone colptr,
    sorted in-range row indices). *)

val of_triplets : nrows:int -> ncols:int -> (int * int * float) list -> t
(** Builds from (row, col, value) triplets; duplicate entries are summed,
    exact zeros are kept out. *)

val of_stamps :
  ?metrics:Util.Metrics.t ->
  nrows:int ->
  ncols:int ->
  ((int -> int -> float -> unit) -> unit) ->
  t
(** [of_stamps ~nrows ~ncols emit] builds CSC directly from a stamping
    pass: [emit stamp] calls [stamp i j v] once per contribution.
    [emit] MUST be replayable — it runs twice (a counting pass sizing
    every column exactly, then the fill); a sequence that changes
    between passes raises [Invalid_argument].  No triplet list is
    materialized: peak memory is 16 bytes per raw stamp plus two
    column counters, counted into [metrics] ([sparse.stream_stamps],
    [sparse.stream_nnz], [sparse.stream_peak_bytes]).  Duplicates sum
    in emission order (deterministic); exact-zero sums are dropped. *)

val to_triplets : t -> (int * int * float) list
(** Column-major list of structural entries. *)

val zero : nrows:int -> ncols:int -> t

val identity : int -> t

val of_dense : Dense.t -> t
(** Drops exact zeros. *)

val to_dense : t -> Dense.t

val dims : t -> int * int

val nnz : t -> int

val get : t -> int -> int -> float
(** [get a i j] is entry (i,j), 0 for structural zeros. O(log nnz-per-col). *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [A x]. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into a x y] sets [y <- A x] without allocating. *)

val mul_vec_acc : ?alpha:float -> t -> Vec.t -> Vec.t -> unit
(** [mul_vec_acc ~alpha a x y] accumulates [y <- y + alpha * A x] without
    allocating ([alpha] defaults to 1).  The allocation-free building
    block of transient right-hand sides and of the matrix-free Galerkin
    kernel. *)

val mul_vec_acc_off : ?alpha:float -> t -> Vec.t -> xoff:int -> Vec.t -> yoff:int -> unit
(** [mul_vec_acc_off ~alpha a x ~xoff y ~yoff] accumulates
    [y.(yoff..) <- y.(yoff..) + alpha * A x.(xoff..)] on slices of larger
    vectors — the per-block kernel of the matrix-free augmented operator
    (block vectors stay flat; no sub-array copies). *)

val mul_vec_t : t -> Vec.t -> Vec.t
(** [mul_vec_t a x] is [A^T x]. *)

val transpose : t -> t

val add : t -> t -> t

val axpy : alpha:float -> t -> t -> t
(** [axpy ~alpha a b] is [alpha * A + B]. *)

val scale : float -> t -> t

val map_values : (float -> float) -> t -> t
(** Apply a function to every stored value, keeping the pattern (useful for
    building structural-union patterns via absolute values). *)

val diag : t -> Vec.t
(** Diagonal as a vector (square matrices). *)

val of_diag : Vec.t -> t

val kron_count : unit -> int
(** Process-wide number of {!kron} calls so far.  The matrix-free
    Galerkin solver promises to never assemble the augmented Kronecker
    operator; tests sample this counter around a solve to enforce it. *)

val kron : Dense.t -> t -> t
(** [kron c a] is the Kronecker product [C (X) A]: block (i,j) equals
    [c.(i,j) * A].  Structural zeros of [c] produce no entries.  This is the
    assembly primitive for the stochastic Galerkin system
    [Gt = sum_i T_i (X) G_i]. *)

val permute_sym : t -> Perm.t -> t
(** [permute_sym a p] is [A'] with [A'.(i,j) = A.(p.(i), p.(j))] — the
    symmetric permutation [P A P^T] for square [a]. *)

val lower : t -> t
(** Lower-triangular part including the diagonal. *)

val upper : t -> t

val is_symmetric : ?tol:float -> t -> bool

val max_abs : t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison (on the union pattern). *)
