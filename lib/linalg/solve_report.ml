type t = {
  solver : string;
  iterations : int;
  residual_norm : float;
  rhs_norm : float;
  rel_residual : float;
  tol : float;
  converged : bool;
  breakdown : bool;
  wall_seconds : float;
  residual_history : float array;
}

let rel_of ~residual_norm ~rhs_norm = if rhs_norm > 0.0 then residual_norm /. rhs_norm else 0.0

let make ~solver ~iterations ~residual_norm ~rhs_norm ~tol ~converged ?(breakdown = false)
    ~wall_seconds ?(residual_history = [||]) () =
  {
    solver;
    iterations;
    residual_norm;
    rhs_norm;
    rel_residual = rel_of ~residual_norm ~rhs_norm;
    tol;
    converged;
    breakdown;
    wall_seconds;
    residual_history;
  }

let summary r =
  Printf.sprintf "%s: %s after %d iterations, rel residual %.3e (tol %.1e)%s" r.solver
    (if r.converged then "converged" else "NOT converged")
    r.iterations r.rel_residual r.tol
    (if r.breakdown then " [breakdown]" else "")

let to_json r =
  let history =
    r.residual_history |> Array.to_list
    |> List.map (fun v -> Printf.sprintf "%.9g" v)
    |> String.concat ", "
  in
  Printf.sprintf
    "{\"solver\": %S, \"iterations\": %d, \"residual_norm\": %.9g, \"rhs_norm\": %.9g, \
     \"rel_residual\": %.9g, \"tol\": %.9g, \"converged\": %b, \"breakdown\": %b, \
     \"wall_seconds\": %.9g, \"residual_history\": [%s]}"
    r.solver r.iterations r.residual_norm r.rhs_norm r.rel_residual r.tol r.converged r.breakdown
    r.wall_seconds history

(* ---- aggregation over a run ---------------------------------------- *)

type aggregate = {
  mutable solves : int;
  mutable iterations : int;
  mutable unconverged : int;
  mutable fallbacks : int;
  mutable worst_rel_residual : float;
  mutable wall_seconds : float;
}

let agg_create () =
  {
    solves = 0;
    iterations = 0;
    unconverged = 0;
    fallbacks = 0;
    worst_rel_residual = 0.0;
    wall_seconds = 0.0;
  }

let agg_add a (r : t) =
  a.solves <- a.solves + 1;
  a.iterations <- a.iterations + r.iterations;
  if not r.converged then a.unconverged <- a.unconverged + 1;
  if r.rel_residual > a.worst_rel_residual then a.worst_rel_residual <- r.rel_residual;
  a.wall_seconds <- a.wall_seconds +. r.wall_seconds

let agg_count_fallback a = a.fallbacks <- a.fallbacks + 1

let agg_healthy a = a.unconverged <= a.fallbacks

let agg_summary a =
  Printf.sprintf
    "%d iterative solves, %d iterations, %d unconverged, %d fallbacks, worst rel residual %.3e, \
     %.3f s"
    a.solves a.iterations a.unconverged a.fallbacks a.worst_rel_residual a.wall_seconds

let agg_to_json a =
  Printf.sprintf
    "{\"solves\": %d, \"iterations\": %d, \"unconverged\": %d, \"fallbacks\": %d, \
     \"worst_rel_residual\": %.9g, \"wall_seconds\": %.9g, \"healthy\": %b}"
    a.solves a.iterations a.unconverged a.fallbacks a.worst_rel_residual a.wall_seconds
    (agg_healthy a)
