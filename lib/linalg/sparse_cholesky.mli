(** Sparse Cholesky factorization [P A P^T = L L^T] for SPD matrices.

    Up-looking numeric factorization driven by the elimination tree
    (CSparse-style), with a fill-reducing ordering applied first.  This is
    the solver behind both the deterministic transient analysis and the
    augmented stochastic Galerkin system. *)

exception Not_positive_definite of int
(** Raised with the offending (permuted) pivot index. *)

type t

val factor : ?ordering:Ordering.kind -> ?perm:Perm.t -> Sparse.t -> t
(** [factor a] factorizes the sparse SPD matrix [a] (full symmetric storage).
    Default ordering is {!Ordering.Min_degree} (pass {!Ordering.Nested_dissection} for mesh-like grids); passing [perm] skips the
    ordering computation and uses the given elimination order — the key to
    amortizing one symbolic analysis over many factorizations with the same
    pattern (Monte-Carlo sampling, repeated transients).
    Raises {!Not_positive_definite} if a pivot is non-positive and
    [Invalid_argument] if [a] is not square. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] solves [A x = b]. *)

val solve_in_place : t -> Vec.t -> unit
(** [solve_in_place f b] overwrites [b] with the solution, reusing an
    internal workspace — the allocation-free path for transient stepping.
    NOT safe for concurrent use of one factor from several domains (the
    workspace is shared); use {!solve_in_place_ws} there. *)

val solve_in_place_ws : t -> ?domains:int -> work:Vec.t -> Vec.t -> unit
(** [solve_in_place_ws f ~work b] is {!solve_in_place} with a
    caller-provided workspace of length {!dim}.  One factor may serve many
    domains concurrently as long as every domain passes its own [work]
    buffer — the factor itself is only read.

    [domains] (default [1] = sequential) selects the level-scheduled
    triangular sweeps when it resolves to more than one domain: rows of
    [L] (and columns of [L^T]) are grouped into dependency levels at
    factorization time and each level is swept with disjoint-slice
    kernels over {!Util.Parallel.for_chunks}, fusing the permutation
    passes into the sweeps.  Results are bitwise identical to the
    sequential path for every domain count; [0] defers to
    [OPERA_DOMAINS] as everywhere else.  Nested inside an already
    parallel region the sweeps degrade to inline execution (see
    {!Util.Parallel.for_chunks}), so passing the ambient domain count
    from block-parallel callers is always safe. *)

val encode : t -> Util.Codec.encoder -> unit
(** Serialize the factor (permutation + CSC arrays of [L]) for the
    artifact store.  Floats are written as IEEE-754 bit patterns, so a
    decoded factor solves bitwise identically. *)

val decode : Util.Codec.decoder -> t
(** Inverse of {!encode}.  Re-validates every structural invariant
    (permutation validity, monotone column pointers, in-range and
    diagonal-first row indices) and raises {!Util.Codec.Corrupt} on any
    violation — artifacts from disk are never trusted. *)

val nnz_l : t -> int
(** Number of stored entries of the factor [L]. *)

val dim : t -> int

val permutation : t -> Perm.t
(** The fill-reducing permutation used (elimination order of old indices). *)

