type level = {
  a : Sparse.t;
  inv_diag : float array;
  aggregate_of : int array;  (** fine node -> coarse aggregate (next level) *)
  coarse_n : int;
}

type t = { levels : level list; coarsest : Cholesky.t; coarsest_dim : int }

(* Greedy aggregation: each unaggregated node grabs its unaggregated
   neighbors (strongest first); leftovers join the strongest neighboring
   aggregate. *)
let aggregate a =
  let n, _ = Sparse.dims a in
  let { Sparse.colptr; rowind; values; _ } = a in
  let agg = Array.make n (-1) in
  let next = ref 0 in
  for j = 0 to n - 1 do
    if agg.(j) < 0 then begin
      (* seed a new aggregate only if j has an unaggregated neighbor or is
         isolated *)
      let members = ref [ j ] in
      for k = colptr.(j) to colptr.(j + 1) - 1 do
        let i = rowind.(k) in
        if i <> j && agg.(i) < 0 then members := i :: !members
      done;
      if List.length !members > 1 || colptr.(j + 1) - colptr.(j) <= 1 then begin
        List.iter (fun v -> agg.(v) <- !next) !members;
        incr next
      end
    end
  done;
  (* Attach leftovers to the strongest adjacent aggregate. *)
  for j = 0 to n - 1 do
    if agg.(j) < 0 then begin
      let best = ref (-1) and best_w = ref 0.0 in
      for k = colptr.(j) to colptr.(j + 1) - 1 do
        let i = rowind.(k) in
        if i <> j && agg.(i) >= 0 then begin
          let w = Float.abs values.(k) in
          if w > !best_w then begin
            best_w := w;
            best := agg.(i)
          end
        end
      done;
      if !best >= 0 then agg.(j) <- !best
      else begin
        agg.(j) <- !next;
        incr next
      end
    end
  done;
  (agg, !next)

(* Galerkin coarse operator for piecewise-constant aggregation:
   A_c(p, q) = sum over entries (i, j) with agg i = p, agg j = q. *)
let coarse_operator a agg coarse_n =
  let { Sparse.colptr; rowind; values; ncols; _ } = a in
  let b = Sparse_builder.create ~nrows:coarse_n ~ncols:coarse_n () in
  for j = 0 to ncols - 1 do
    for k = colptr.(j) to colptr.(j + 1) - 1 do
      Sparse_builder.add b agg.(rowind.(k)) agg.(j) values.(k)
    done
  done;
  Sparse_builder.to_csc b

let build ?(max_levels = 10) ?(coarsest = 64) a0 =
  let n0, m0 = Sparse.dims a0 in
  if n0 <> m0 then invalid_arg "Amg.build: matrix is not square";
  let rec go a depth levels =
    let n, _ = Sparse.dims a in
    if n <= coarsest || depth >= max_levels then (List.rev levels, a)
    else begin
      let agg, coarse_n = aggregate a in
      if coarse_n >= n then (List.rev levels, a) (* aggregation stalled *)
      else begin
        let diag = Sparse.diag a in
        let inv_diag =
          Array.map (fun d -> if Util.Floats.is_zero d then 0.0 else 1.0 /. d) diag
        in
        let ac = coarse_operator a agg coarse_n in
        go ac (depth + 1) ({ a; inv_diag; aggregate_of = agg; coarse_n } :: levels)
      end
    end
  in
  let levels, bottom = go a0 0 [] in
  let coarsest_dim, _ = Sparse.dims bottom in
  let coarsest = Cholesky.factor (Sparse.to_dense bottom) in
  { levels; coarsest; coarsest_dim }

let levels t = List.length t.levels + 1

let level_dims t =
  List.map (fun l -> fst (Sparse.dims l.a)) t.levels @ [ t.coarsest_dim ]

let jacobi_sweep level x b =
  (* x <- x + omega D^-1 (b - A x) *)
  let omega = 2.0 /. 3.0 in
  let n = Array.length x in
  let ax = Sparse.mul_vec level.a x in
  for i = 0 to n - 1 do
    x.(i) <- x.(i) +. (omega *. level.inv_diag.(i) *. (b.(i) -. ax.(i)))
  done

let restrict level r =
  let rc = Array.make level.coarse_n 0.0 in
  Array.iteri (fun i v -> rc.(level.aggregate_of.(i)) <- rc.(level.aggregate_of.(i)) +. v) r;
  rc

let prolong level xc =
  Array.init (Array.length level.aggregate_of) (fun i -> xc.(level.aggregate_of.(i)))

let vcycle t b0 =
  let rec down levels b =
    match levels with
    | [] -> Cholesky.solve t.coarsest b
    | level :: rest ->
        let x = Array.make (Array.length b) 0.0 in
        jacobi_sweep level x b;
        let r = Vec.sub b (Sparse.mul_vec level.a x) in
        let xc = down rest (restrict level r) in
        let correction = prolong level xc in
        Vec.axpy ~alpha:1.0 correction x;
        jacobi_sweep level x b;
        x
  in
  down t.levels b0

let solve ?(tol = 1e-10) ?max_iter t a b =
  Cg.solve ~precond:(vcycle t) ?max_iter ~tol ~matvec:(Sparse.mul_vec a) ~b
    ~x0:(Array.make (Array.length b) 0.0) ()
