(* Aggregation AMG, structured as a first-class preconditioner.

   The hierarchy is built once (greedy aggregation, piecewise-constant
   prolongation, Galerkin coarse operators — all sequential and
   deterministic) and then applied as a fixed number of V(1,1)-cycles
   with weighted-Jacobi smoothing and a dense direct solve at the
   coarsest level.  The apply path is allocation-free: every level's
   solution / rhs / residual scratch lives in a caller-owned {!ws}, so
   block-parallel users (the mean-block preconditioner, the ST
   per-point sweeps) give each chunk its own workspace and the
   per-block arithmetic is bitwise-identical at any domain count — one
   application is a purely sequential pass over the hierarchy.

   Level storage is Bigarray-backed ({!Util.Codec.fsection} /
   {!Util.Codec.isection}) so a hierarchy decoded from a v2 artifact
   can keep zero-copy [Unix.map_file] views of the file: a warm
   million-node setup replays without decoding its gigabytes. *)

type fvec = Util.Codec.fsection
type ivec = Util.Codec.isection

type plevel = {
  pn : int;  (* unknowns on this level *)
  pcoarse : int;  (* aggregates = unknowns one level down *)
  pcol : ivec;  (* CSC colptr, [pn + 1] *)
  prow : ivec;  (* CSC rowind *)
  pval : fvec;  (* CSC values *)
  pdiag : fvec;  (* 1 / diag, zeros masked to 0 *)
  pagg : ivec;  (* fine node -> aggregate *)
}

type t = {
  pls : plevel array;  (* finest first *)
  coarse_dim : int;
  coarse_l : float array;  (* dense lower factor, row-major coarse_dim^2 *)
  coarse_csc : Sparse.t;  (* coarsest operator, kept for (re-)encoding *)
  ncycles : int;
  nfine : int;
}

type ws = {
  wx : float array array;  (* per-level solution; slot 0 unused (caller's x) *)
  wb : float array array;  (* per-level rhs; slot 0 unused (caller's b) *)
  wr : float array array;  (* per-level residual *)
  wc : float array;  (* coarse rhs / solution *)
}

let omega = 2.0 /. 3.0

(* ---- deterministic greedy aggregation -------------------------------- *)

(* Each unaggregated node grabs its unaggregated neighbors (in column
   order); leftovers join the strongest neighboring aggregate.  Purely
   sequential — the aggregate map is a function of the matrix alone. *)
let aggregate a =
  let n, _ = Sparse.dims a in
  let { Sparse.colptr; rowind; values; _ } = a in
  let agg = Array.make n (-1) in
  let next = ref 0 in
  for j = 0 to n - 1 do
    if agg.(j) < 0 then begin
      let members = ref [ j ] in
      for k = colptr.(j) to colptr.(j + 1) - 1 do
        let i = rowind.(k) in
        if i <> j && agg.(i) < 0 then members := i :: !members
      done;
      if List.length !members > 1 || colptr.(j + 1) - colptr.(j) <= 1 then begin
        List.iter (fun v -> agg.(v) <- !next) !members;
        incr next
      end
    end
  done;
  for j = 0 to n - 1 do
    if agg.(j) < 0 then begin
      let best = ref (-1) and best_w = ref 0.0 in
      for k = colptr.(j) to colptr.(j + 1) - 1 do
        let i = rowind.(k) in
        if i <> j && agg.(i) >= 0 then begin
          let w = Float.abs values.(k) in
          if w > !best_w then begin
            best_w := w;
            best := agg.(i)
          end
        end
      done;
      if !best >= 0 then agg.(j) <- !best
      else begin
        agg.(j) <- !next;
        incr next
      end
    end
  done;
  (agg, !next)

(* Galerkin coarse operator for piecewise-constant aggregation:
   A_c(p, q) = sum over entries (i, j) with agg i = p, agg j = q. *)
let coarse_operator a agg coarse_n =
  let { Sparse.colptr; rowind; values; ncols; _ } = a in
  let b = Sparse_builder.create ~nrows:coarse_n ~ncols:coarse_n () in
  for j = 0 to ncols - 1 do
    for k = colptr.(j) to colptr.(j + 1) - 1 do
      Sparse_builder.add b agg.(rowind.(k)) agg.(j) values.(k)
    done
  done;
  Sparse_builder.to_csc b

(* ---- build ------------------------------------------------------------ *)

let ivec_of_array a =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i v) a;
  b

let fvec_of_array a =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i v) a;
  b

let plevel_of_sparse a agg coarse_n =
  let n, _ = Sparse.dims a in
  let diag = Sparse.diag a in
  let inv_diag =
    Array.map (fun d -> if Util.Floats.is_zero d then 0.0 else 1.0 /. d) diag
  in
  {
    pn = n;
    pcoarse = coarse_n;
    pcol = ivec_of_array a.Sparse.colptr;
    prow = ivec_of_array a.Sparse.rowind;
    pval = fvec_of_array a.Sparse.values;
    pdiag = fvec_of_array inv_diag;
    pagg = ivec_of_array agg;
  }

(* Flat row-major lower Cholesky factor of the coarsest operator — the
   direct bottom solve, extracted once so applying it allocates
   nothing. *)
let coarse_factor csc =
  let cn, _ = Sparse.dims csc in
  let f = Cholesky.factor (Sparse.to_dense csc) in
  let l = Cholesky.lower f in
  Array.init (cn * cn) (fun idx -> Dense.get l (idx / cn) (idx mod cn))

let build ?(cycles = 1) ?(max_levels = 10) ?(coarsest = 64) a0 =
  let n0, m0 = Sparse.dims a0 in
  if n0 <> m0 then invalid_arg "Amg.build: matrix is not square";
  if cycles < 1 then invalid_arg "Amg.build: cycle count must be positive";
  let rec go a depth levels =
    let n, _ = Sparse.dims a in
    if n <= coarsest || depth >= max_levels then (List.rev levels, a)
    else begin
      let agg, coarse_n = aggregate a in
      if coarse_n >= n then (List.rev levels, a) (* aggregation stalled *)
      else go (coarse_operator a agg coarse_n) (depth + 1)
          (plevel_of_sparse a agg coarse_n :: levels)
    end
  in
  let levels, bottom = go a0 0 [] in
  let coarse_dim, _ = Sparse.dims bottom in
  {
    pls = Array.of_list levels;
    coarse_dim;
    coarse_l = coarse_factor bottom;
    coarse_csc = bottom;
    ncycles = cycles;
    nfine = n0;
  }

let dim t = t.nfine

let cycles t = t.ncycles

let stored_nnz t =
  Array.fold_left (fun acc pl -> acc + Bigarray.Array1.dim pl.prow) 0 t.pls
  + (t.coarse_dim * t.coarse_dim)

let levels t = Array.length t.pls + 1

let level_dims t =
  Array.to_list (Array.map (fun pl -> pl.pn) t.pls) @ [ t.coarse_dim ]

let create_ws t =
  let nl = Array.length t.pls in
  let dim_of l = if l < nl then t.pls.(l).pn else t.coarse_dim in
  {
    wx = Array.init nl (fun l -> Array.make (if l = 0 then 0 else dim_of l) 0.0);
    wb = Array.init nl (fun l -> Array.make (if l = 0 then 0 else dim_of l) 0.0);
    wr = Array.init nl (fun l -> Array.make (dim_of l) 0.0);
    wc = Array.make t.coarse_dim 0.0;
  }

let ws_dim w =
  if Array.length w.wr = 0 then Array.length w.wc else Array.length w.wr.(0)

(* ---- allocation-free V-cycle kernels ---------------------------------- *)

(* r <- b - A x over the level's CSC (A symmetric, columns = rows). *)
let[@opera.hot] residual_into pl ~b ~x ~r =
  let n = pl.pn in
  Array.blit b 0 r 0 n;
  for j = 0 to n - 1 do
    let xj = x.(j) in
    if Util.Floats.nonzero xj then begin
      let k0 = Bigarray.Array1.unsafe_get pl.pcol j in
      let k1 = Bigarray.Array1.unsafe_get pl.pcol (j + 1) in
      for k = k0 to k1 - 1 do
        let i = Bigarray.Array1.unsafe_get pl.prow k in
        r.(i) <- r.(i) -. (Bigarray.Array1.unsafe_get pl.pval k *. xj)
      done
    end
  done

(* x <- omega D^-1 b: the pre-smooth from a zero iterate. *)
let[@opera.hot] smooth_from_zero pl ~b ~x =
  for i = 0 to pl.pn - 1 do
    x.(i) <- omega *. Bigarray.Array1.unsafe_get pl.pdiag i *. b.(i)
  done

(* x <- x + omega D^-1 r: the correction form of a Jacobi sweep. *)
let[@opera.hot] smooth_correct pl ~r ~x =
  for i = 0 to pl.pn - 1 do
    x.(i) <- x.(i) +. (omega *. Bigarray.Array1.unsafe_get pl.pdiag i *. r.(i))
  done

(* rc <- P^T r (sum residuals over each aggregate). *)
let[@opera.hot] restrict_into pl ~r ~rc =
  Array.fill rc 0 pl.pcoarse 0.0;
  for i = 0 to pl.pn - 1 do
    let a = Bigarray.Array1.unsafe_get pl.pagg i in
    rc.(a) <- rc.(a) +. r.(i)
  done

(* x <- x + P xc (inject the coarse correction). *)
let[@opera.hot] prolong_add pl ~xc ~x =
  for i = 0 to pl.pn - 1 do
    x.(i) <- x.(i) +. xc.(Bigarray.Array1.unsafe_get pl.pagg i)
  done

(* In-place dense solve L L^T y = y with the flat row-major factor. *)
let[@opera.hot] coarse_solve_in_place l cn y =
  for i = 0 to cn - 1 do
    let s = ref y.(i) in
    let base = i * cn in
    for j = 0 to i - 1 do
      s := !s -. (l.(base + j) *. y.(j))
    done;
    y.(i) <- !s /. l.(base + i)
  done;
  for i = cn - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to cn - 1 do
      s := !s -. (l.((j * cn) + i) *. y.(j))
    done;
    y.(i) <- !s /. l.((i * cn) + i)
  done

(* One V(1,1)-cycle updating [x] (level-0 iterate) against [b].
   [zero_x] marks a known-zero incoming iterate, which saves the first
   residual pass.  Everything below level 0 starts from zero by
   construction.  Strictly sequential: bitwise-deterministic no matter
   how many domains the caller fans out across. *)
let[@opera.hot] cycle t w ~b ~x ~zero_x =
  let nl = Array.length t.pls in
  if nl = 0 then begin
    Array.blit b 0 x 0 t.coarse_dim;
    coarse_solve_in_place t.coarse_l t.coarse_dim x
  end
  else begin
    (* Down-sweep: pre-smooth, form the residual, restrict it. *)
    for l = 0 to nl - 1 do
      let pl = t.pls.(l) in
      let bl = if l = 0 then b else w.wb.(l) in
      let xl = if l = 0 then x else w.wx.(l) in
      if l = 0 && not zero_x then begin
        residual_into pl ~b:bl ~x:xl ~r:w.wr.(l);
        smooth_correct pl ~r:w.wr.(l) ~x:xl
      end
      else smooth_from_zero pl ~b:bl ~x:xl;
      residual_into pl ~b:bl ~x:xl ~r:w.wr.(l);
      let rc = if l = nl - 1 then w.wc else w.wb.(l + 1) in
      restrict_into pl ~r:w.wr.(l) ~rc
    done;
    coarse_solve_in_place t.coarse_l t.coarse_dim w.wc;
    (* Up-sweep: prolong the correction, post-smooth. *)
    for l = nl - 1 downto 0 do
      let pl = t.pls.(l) in
      let bl = if l = 0 then b else w.wb.(l) in
      let xl = if l = 0 then x else w.wx.(l) in
      let xc = if l = nl - 1 then w.wc else w.wx.(l + 1) in
      prolong_add pl ~xc ~x:xl;
      residual_into pl ~b:bl ~x:xl ~r:w.wr.(l);
      smooth_correct pl ~r:w.wr.(l) ~x:xl
    done
  end

let apply t w ~b ~x =
  if Array.length b <> t.nfine || Array.length x <> t.nfine then
    invalid_arg "Amg.apply: vector dimension mismatch";
  if ws_dim w <> t.nfine then invalid_arg "Amg.apply: workspace dimension mismatch";
  cycle t w ~b ~x ~zero_x:true;
  for _c = 2 to t.ncycles do
    cycle t w ~b ~x ~zero_x:false
  done

(* ---- solver-compatible wrappers --------------------------------------- *)

let vcycle t b =
  (* Historical single-shot form: one application, fresh output.  Each
     call builds its own workspace — fine for the standalone-solver
     wrappers, but hot users go through {!apply} with a kept {!ws}. *)
  let x = Array.make t.nfine 0.0 in
  apply t (create_ws t) ~b ~x;
  x

let solve ?(tol = 1e-10) ?max_iter t a b =
  let w = create_ws t in
  let x0 = Array.make (Array.length b) 0.0 in
  let z = Array.make t.nfine 0.0 in
  let precond r =
    apply t w ~b:r ~x:z;
    z
  in
  Cg.solve ~precond ?max_iter ~tol ~matvec:(Sparse.mul_vec a) ~b ~x0 ()

(* ---- codec ------------------------------------------------------------ *)

(* v2 frame: meta carries the shape (dims, cycle count, per-level nnz),
   the bulk arrays live in 8-aligned sections — five per level (colptr,
   rowind, values, inv-diag, aggregate map) plus the coarsest CSC, from
   which the dense bottom factor is rebuilt on load.  A mapped load
   keeps the section views zero-copy. *)

let artifact_kind = "amg"

let artifact_version = 1

let to_frame t =
  let nl = Array.length t.pls in
  let cn = t.coarse_dim in
  let meta e =
    Util.Codec.write_int e t.nfine;
    Util.Codec.write_int e t.ncycles;
    Util.Codec.write_int e nl;
    Util.Codec.write_int e cn;
    Array.iter
      (fun pl ->
        Util.Codec.write_int e pl.pn;
        Util.Codec.write_int e pl.pcoarse;
        Util.Codec.write_int e (Bigarray.Array1.dim pl.prow))
      t.pls;
    Util.Codec.write_int e (Sparse.nnz t.coarse_csc)
  in
  let sections =
    List.concat_map
      (fun pl ->
        [
          Util.Codec.I_big pl.pcol;
          Util.Codec.I_big pl.prow;
          Util.Codec.F_big pl.pval;
          Util.Codec.F_big pl.pdiag;
          Util.Codec.I_big pl.pagg;
        ])
      (Array.to_list t.pls)
    @ [
        Util.Codec.I_arr t.coarse_csc.Sparse.colptr;
        Util.Codec.I_arr t.coarse_csc.Sparse.rowind;
        Util.Codec.F_arr t.coarse_csc.Sparse.values;
      ]
  in
  (meta, sections)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Util.Codec.Corrupt s)) fmt

(* Validate one level's CSC views: monotone colptr closing at nnz, row
   indices in range, aggregate map in range.  Linear in nnz — trivial
   next to the checksum pass that already touched every byte. *)
let check_level ~nfix pl =
  if pl.pn <> nfix then corrupt "amg level dimension %d does not chain (%d)" pl.pn nfix;
  if pl.pcoarse <= 0 || pl.pcoarse >= pl.pn then
    corrupt "amg level coarse dimension %d out of range (n = %d)" pl.pcoarse pl.pn;
  let nnz = Bigarray.Array1.dim pl.prow in
  if Bigarray.Array1.dim pl.pcol <> pl.pn + 1 then corrupt "amg level colptr length mismatch";
  if Bigarray.Array1.dim pl.pval <> nnz then corrupt "amg level values length mismatch";
  if Bigarray.Array1.dim pl.pdiag <> pl.pn then corrupt "amg level diag length mismatch";
  if Bigarray.Array1.dim pl.pagg <> pl.pn then corrupt "amg level aggregate length mismatch";
  if Bigarray.Array1.get pl.pcol 0 <> 0 then corrupt "amg level colptr must start at 0";
  for j = 0 to pl.pn - 1 do
    if Bigarray.Array1.get pl.pcol j > Bigarray.Array1.get pl.pcol (j + 1) then
      corrupt "amg level colptr not monotone at %d" j
  done;
  if Bigarray.Array1.get pl.pcol pl.pn <> nnz then corrupt "amg level colptr does not close";
  for k = 0 to nnz - 1 do
    let i = Bigarray.Array1.get pl.prow k in
    if i < 0 || i >= pl.pn then corrupt "amg level row index %d out of range" i
  done;
  for i = 0 to pl.pn - 1 do
    let a = Bigarray.Array1.get pl.pagg i in
    if a < 0 || a >= pl.pcoarse then corrupt "amg aggregate %d out of range" a
  done

let of_frame_sections d s =
  let nfine = Util.Codec.read_int d in
  let ncycles = Util.Codec.read_int d in
  let nl = Util.Codec.read_int d in
  let cn = Util.Codec.read_int d in
  if nfine <= 0 || ncycles < 1 || nl < 0 || cn <= 0 then corrupt "amg frame shape out of range";
  if Util.Codec.section_count s <> (nl * 5) + 3 then
    corrupt "amg frame carries %d sections, want %d" (Util.Codec.section_count s) ((nl * 5) + 3);
  let shapes =
    Array.init nl (fun _ ->
        let n = Util.Codec.read_int d in
        let c = Util.Codec.read_int d in
        let nnz = Util.Codec.read_int d in
        (n, c, nnz))
  in
  let coarse_nnz = Util.Codec.read_int d in
  Util.Codec.expect_end d;
  let pls =
    Array.init nl (fun l ->
        let n, c, nnz = shapes.(l) in
        let base = l * 5 in
        let pl =
          {
            pn = n;
            pcoarse = c;
            pcol = Util.Codec.section_int s base;
            prow = Util.Codec.section_int s (base + 1);
            pval = Util.Codec.section_float s (base + 2);
            pdiag = Util.Codec.section_float s (base + 3);
            pagg = Util.Codec.section_int s (base + 4);
          }
        in
        if Bigarray.Array1.dim pl.prow <> nnz then corrupt "amg level nnz mismatch";
        let nfix = if l = 0 then nfine else (fun (_, c, _) -> c) shapes.(l - 1) in
        check_level ~nfix pl;
        pl)
  in
  let expect_cn = if nl = 0 then nfine else (fun (_, c, _) -> c) shapes.(nl - 1) in
  if cn <> expect_cn then corrupt "amg coarse dimension %d does not chain (%d)" cn expect_cn;
  let base = nl * 5 in
  let arr_of_ivec v = Array.init (Bigarray.Array1.dim v) (Bigarray.Array1.get v) in
  let arr_of_fvec v = Array.init (Bigarray.Array1.dim v) (Bigarray.Array1.get v) in
  let colptr = arr_of_ivec (Util.Codec.section_int s base) in
  let rowind = arr_of_ivec (Util.Codec.section_int s (base + 1)) in
  let values = arr_of_fvec (Util.Codec.section_float s (base + 2)) in
  if Array.length rowind <> coarse_nnz || Array.length values <> coarse_nnz then
    corrupt "amg coarse nnz mismatch";
  let coarse_csc =
    match Sparse.create ~nrows:cn ~ncols:cn ~colptr ~rowind ~values with
    | csc -> csc
    | exception Invalid_argument why -> corrupt "amg coarse operator malformed: %s" why
  in
  let coarse_l =
    match coarse_factor coarse_csc with
    | l -> l
    | exception Cholesky.Not_positive_definite _ ->
        corrupt "amg coarse operator is not positive definite"
  in
  { pls; coarse_dim = cn; coarse_l; coarse_csc; ncycles; nfine }
