(** Sparse LU factorization with partial pivoting (left-looking
    Gilbert–Peierls).

    Used for systems that are not symmetric positive definite: full MNA
    matrices containing ideal voltage-source branches, and as a fallback
    when {!Sparse_cholesky} rejects a matrix. *)

exception Singular of int
(** Raised with the offending column when no usable pivot exists. *)

type t

val factor : ?ordering:Ordering.kind -> Sparse.t -> t
(** [factor a] factorizes the square matrix [a] as [A(:, q) = P^T L U]
    with [q] a fill-reducing column ordering (default {!Ordering.Min_degree}
    on the symmetrized pattern) and [P] from row pivoting. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] solves [A x = b]. *)

val solve_in_place : t -> Vec.t -> unit

val nnz : t -> int
(** Entries stored in [L] plus [U]. *)

val dim : t -> int
