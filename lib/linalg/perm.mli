(** Permutations of [0 .. n-1].

    Convention: a permutation [p] maps *new* index [k] to *old* index
    [p.(k)], i.e. applying [p] to a vector [x] yields [y] with
    [y.(k) = x.(p.(k))].  This is the ordering convention used by the
    sparse factorizations: [p] lists the original indices in elimination
    order. *)

type t = int array

val identity : int -> t

val is_valid : t -> bool
(** True iff the array is a permutation of [0 .. n-1]. *)

val inverse : t -> t
(** [inverse p] is [q] with [q.(p.(k)) = k]. *)

val compose : t -> t -> t
(** [compose p q] applies [q] first then [p]: [(compose p q).(k) = q.(p.(k))].
    Thus applying [compose p q] to a vector equals applying [q] then [p]. *)

val apply_vec : t -> Vec.t -> Vec.t
(** [apply_vec p x] is [y] with [y.(k) = x.(p.(k))]. *)

val apply_inv_vec : t -> Vec.t -> Vec.t
(** [apply_inv_vec p y] undoes [apply_vec]: [(apply_inv_vec p y).(p.(k)) = y.(k)]. *)
