exception Singular of int

(* Growable parallel (int, float) arrays for the factor columns. *)
module Grow = struct
  type t = { mutable idx : int array; mutable vals : float array; mutable len : int }

  let create () = { idx = Array.make 256 0; vals = Array.make 256 0.0; len = 0 }

  let push g i v =
    if g.len = Array.length g.idx then begin
      let cap = 2 * g.len in
      let idx = Array.make cap 0 and vals = Array.make cap 0.0 in
      Array.blit g.idx 0 idx 0 g.len;
      Array.blit g.vals 0 vals 0 g.len;
      g.idx <- idx;
      g.vals <- vals
    end;
    g.idx.(g.len) <- i;
    g.vals.(g.len) <- v;
    g.len <- g.len + 1
end

type t = {
  n : int;
  q : Perm.t; (* column ordering *)
  pinv : int array; (* original row -> pivot position *)
  lp : int array;
  li : int array; (* row indices as pivot positions; unit diagonal first *)
  lx : float array;
  up : int array;
  ui : int array; (* row indices as pivot positions; diagonal last *)
  ux : float array;
  work : float array;
}

(* DFS reach of the column [col] of [a] in the graph of the partial factor L
   (rows mapped through pinv).  Returns [top]; pattern is
   [stack.(top)..stack.(n-1)] in topological order, as original row ids. *)
let reach ~a ~col ~lp ~li ~lfill ~pinv ~marked ~stamp ~stack ~pstack =
  let { Sparse.colptr; rowind; _ } = a in
  let n = Array.length pinv in
  let top = ref n in
  for p0 = colptr.(col) to colptr.(col + 1) - 1 do
    let root = rowind.(p0) in
    if marked.(root) <> stamp then begin
      (* Iterative DFS with an explicit position stack. *)
      let head = ref 0 in
      stack.(0) <- root;
      let jstart j =
        let jn = pinv.(j) in
        if jn < 0 then max_int (* no outgoing edges *) else lp.(jn) + 1
      in
      pstack.(0) <- jstart root;
      marked.(root) <- stamp;
      while !head >= 0 do
        let j = stack.(!head) in
        let jn = pinv.(j) in
        let limit = if jn < 0 then -1 else lfill.(jn) in
        let p = ref pstack.(!head) in
        let descended = ref false in
        while (not !descended) && !p < limit do
          let child = li.(!p) in
          incr p;
          if marked.(child) <> stamp then begin
            marked.(child) <- stamp;
            pstack.(!head) <- !p;
            incr head;
            stack.(!head) <- child;
            pstack.(!head) <- jstart child;
            descended := true
          end
        done;
        if not !descended then begin
          (* postorder: move to output region *)
          decr head;
          decr top;
          (* stack top region and DFS region share the array; write to a
             second array to avoid clobbering: use pstack trick not needed
             because top > head always (output fills from the right). *)
          stack.(!top) <- j
        end
      done
    end
  done;
  !top

let factor ?(ordering = Ordering.Min_degree) a =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Sparse_lu.factor: matrix is not square";
  let q = Ordering.compute ordering a in
  let pinv = Array.make n (-1) in
  let lg = Grow.create () and ug = Grow.create () in
  let lp = Array.make (n + 1) 0 and up = Array.make (n + 1) 0 in
  (* Column starts are finalized as we go; lfill.(j) is the end of column j
     in lg (valid once column j is done). *)
  let lfill = Array.make n 0 in
  let x = Array.make n 0.0 in
  let marked = Array.make n (-1) in
  let stack = Array.make n 0 and pstack = Array.make n 0 in
  let { Sparse.colptr; rowind; values; _ } = a in
  for k = 0 to n - 1 do
    lp.(k) <- lg.Grow.len;
    up.(k) <- ug.Grow.len;
    let col = q.(k) in
    let top =
      reach ~a ~col ~lp ~li:lg.Grow.idx ~lfill ~pinv ~marked ~stamp:k ~stack ~pstack
    in
    (* Numeric sparse triangular solve L x = A(:, col). *)
    for p = top to n - 1 do
      x.(stack.(p)) <- 0.0
    done;
    for p = colptr.(col) to colptr.(col + 1) - 1 do
      x.(rowind.(p)) <- values.(p)
    done;
    for p = top to n - 1 do
      let j = stack.(p) in
      let jn = pinv.(j) in
      if jn >= 0 then begin
        let xj = x.(j) /. lg.Grow.vals.(lp.(jn)) in
        x.(j) <- xj;
        for t = lp.(jn) + 1 to lfill.(jn) - 1 do
          x.(lg.Grow.idx.(t)) <- x.(lg.Grow.idx.(t)) -. (lg.Grow.vals.(t) *. xj)
        done
      end
    done;
    (* Partial pivoting over not-yet-pivotal rows. *)
    let ipiv = ref (-1) and best = ref (-1.0) in
    for p = top to n - 1 do
      let i = stack.(p) in
      if pinv.(i) < 0 then begin
        let t = Float.abs x.(i) in
        if t > !best then begin
          best := t;
          ipiv := i
        end
      end
      else Grow.push ug pinv.(i) x.(i)
    done;
    if !ipiv = -1 || !best <= 0.0 then raise (Singular k);
    let pivot = x.(!ipiv) in
    Grow.push ug k pivot;
    (* diagonal of U last in its column *)
    pinv.(!ipiv) <- k;
    Grow.push lg !ipiv 1.0;
    (* unit diagonal of L first (stored as original row, fixed later) *)
    for p = top to n - 1 do
      let i = stack.(p) in
      if pinv.(i) < 0 then Grow.push lg i (x.(i) /. pivot)
    done;
    lfill.(k) <- lg.Grow.len
  done;
  lp.(n) <- lg.Grow.len;
  up.(n) <- ug.Grow.len;
  (* Every column assigned exactly one pivot, so pinv is a permutation here. *)
  (* Map L's row indices from original rows to pivot positions. *)
  let li = Array.sub lg.Grow.idx 0 lg.Grow.len in
  let lx = Array.sub lg.Grow.vals 0 lg.Grow.len in
  for p = 0 to Array.length li - 1 do
    li.(p) <- pinv.(li.(p))
  done;
  {
    n;
    q;
    pinv;
    lp;
    li;
    lx;
    up;
    ui = Array.sub ug.Grow.idx 0 ug.Grow.len;
    ux = Array.sub ug.Grow.vals 0 ug.Grow.len;
    work = Array.make n 0.0;
  }

let solve_in_place f b =
  if Array.length b <> f.n then invalid_arg "Sparse_lu.solve: dimension mismatch";
  let x = f.work in
  (* x = P b *)
  for i = 0 to f.n - 1 do
    x.(f.pinv.(i)) <- b.(i)
  done;
  (* L solve (unit-ish diagonal stored first in each column). *)
  for j = 0 to f.n - 1 do
    let xj = x.(j) /. f.lx.(f.lp.(j)) in
    x.(j) <- xj;
    for p = f.lp.(j) + 1 to f.lp.(j + 1) - 1 do
      x.(f.li.(p)) <- x.(f.li.(p)) -. (f.lx.(p) *. xj)
    done
  done;
  (* U solve (diagonal last in each column). *)
  for j = f.n - 1 downto 0 do
    let xj = x.(j) /. f.ux.(f.up.(j + 1) - 1) in
    x.(j) <- xj;
    for p = f.up.(j) to f.up.(j + 1) - 2 do
      x.(f.ui.(p)) <- x.(f.ui.(p)) -. (f.ux.(p) *. xj)
    done
  done;
  (* b = Q x *)
  for k = 0 to f.n - 1 do
    b.(f.q.(k)) <- x.(k)
  done

let solve f b =
  let x = Array.copy b in
  solve_in_place f x;
  x

let nnz f = f.lp.(f.n) + f.up.(f.n)

let dim f = f.n
