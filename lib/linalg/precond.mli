(** Mean-block preconditioner backends: the [--precond] knob.

    The stochastic solvers spend their inner loops solving with the
    n x n nominal (mean) matrix.  This module selects how: the exact
    sparse Cholesky factor (default — bitwise-identical to the
    historical behavior), IC(0), or the aggregation AMG hierarchy whose
    setup and apply stay near-linear in [n] — the backend that scales
    to 10^5-10^6 nodes.  All backends apply in place through
    caller-owned workspaces (allocation-free inner loops) and are
    deterministic at any domain count. *)

type kind = Cholesky | Ic0 | Amg | Auto

val to_string : kind -> string

val of_string : string -> kind option

val all : kind list

val usage : string
(** ["cholesky|ic0|amg|auto"] — for CLI help text. *)

val auto_threshold : int
(** Unknown count at which [Auto] switches from [Cholesky] to [Amg]. *)

val resolve : kind -> n:int -> kind
(** Resolve [Auto] on the problem size; other kinds pass through. *)

type t

val make : ?cycles:int -> ?perm:Perm.t -> ?ordering:Ordering.kind -> kind -> Sparse.t -> t
(** Set up the backend [resolve]d for the matrix's dimension.  [perm]
    (else [ordering]) shapes the exact factor; [cycles] is the AMG
    V-cycle count per apply (default 1).  Both are ignored by backends
    they don't concern. *)

val of_factor : Sparse_cholesky.t -> t
(** Wrap an existing exact factor (callers that already built one). *)

val backend : t -> kind
(** The resolved backend ([Auto] never appears). *)

val dim : t -> int

val stored_nnz : t -> int
(** Stored entries of the backend's setup state — factor nonzeros,
    incomplete-factor entries, or the AMG hierarchy's storage. *)

type ws

val create_ws : t -> ws
(** One workspace per concurrent applier. *)

val apply_in_place : t -> ws -> ?domains:int -> Vec.t -> unit
(** Overwrite [x] with the preconditioned solve [M^-1 x].  Allocation
    free; [domains] parallelizes only the exact factor's triangular
    sweeps (bitwise-stable), the approximate backends run
    sequentially. *)

val as_cg_preconditioner : t -> Cg.preconditioner
(** Allocating closure form for {!Cg.solve}-style callers; the returned
    closure owns one workspace, so it is single-applier. *)
