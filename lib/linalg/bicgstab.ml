let rec solve_report ?(precond = Cg.identity_preconditioner) ?max_iter ?(tol = 1e-10) ~matvec ~b
    ~x0 () =
  let t0 = Util.Timer.start () in
  let n = Array.length b in
  let bnorm = Vec.norm2 b in
  if Util.Floats.is_zero bnorm then
    (* Zero right-hand side: the solution of a nonsingular system is
       exactly zero — don't iterate against a zero target. *)
    ( Array.make n 0.0,
      Solve_report.make ~solver:"bicgstab" ~iterations:0 ~residual_norm:0.0 ~rhs_norm:0.0 ~tol
        ~converged:true ~wall_seconds:(Util.Timer.elapsed_s t0) () )
  else solve_nonzero ~precond ?max_iter ~tol ~matvec ~b ~x0 ~bnorm ~t0 ()

and solve_nonzero ~precond ?max_iter ~tol ~matvec ~b ~x0 ~bnorm ~t0 () =
  let n = Array.length b in
  let max_iter = match max_iter with Some m -> m | None -> Int.max 100 (10 * n) in
  let x = Array.copy x0 in
  let r = Vec.sub b (matvec x) in
  let r_hat = Array.copy r in
  let target = tol *. bnorm in
  let rho = ref 1.0 and alpha = ref 1.0 and omega = ref 1.0 in
  let v = Vec.create n and p = Vec.create n in
  let iter = ref 0 in
  let rnorm = ref (Vec.norm2 r) in
  let broke_down = ref false in
  while !rnorm > target && !iter < max_iter && not !broke_down do
    incr iter;
    let rho' = Vec.dot r_hat r in
    if Float.abs rho' < 1e-300 then broke_down := true
    else begin
      let beta = rho' /. !rho *. (!alpha /. !omega) in
      rho := rho';
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
      done;
      let p_hat = precond p in
      let v' = matvec p_hat in
      Array.blit v' 0 v 0 n;
      alpha := !rho /. Vec.dot r_hat v;
      let s = Array.init n (fun i -> r.(i) -. (!alpha *. v.(i))) in
      if Vec.norm2 s <= target then begin
        Vec.axpy ~alpha:!alpha p_hat x;
        Array.blit s 0 r 0 n;
        rnorm := Vec.norm2 r
      end
      else begin
        let s_hat = precond s in
        let t = matvec s_hat in
        let tt = Vec.dot t t in
        if Util.Floats.is_zero tt then broke_down := true
        else begin
          omega := Vec.dot t s /. tt;
          for i = 0 to n - 1 do
            x.(i) <- x.(i) +. (!alpha *. p_hat.(i)) +. (!omega *. s_hat.(i));
            r.(i) <- s.(i) -. (!omega *. t.(i))
          done;
          rnorm := Vec.norm2 r;
          if Float.abs !omega < 1e-300 then broke_down := true
        end
      end
    end
  done;
  ( x,
    Solve_report.make ~solver:"bicgstab" ~iterations:!iter ~residual_norm:!rnorm ~rhs_norm:bnorm
      ~tol ~converged:(!rnorm <= target) ~breakdown:!broke_down
      ~wall_seconds:(Util.Timer.elapsed_s t0) () )

let solve ?precond ?max_iter ?tol ~matvec ~b ~x0 () =
  let x, report = solve_report ?precond ?max_iter ?tol ~matvec ~b ~x0 () in
  (x, Cg.stats_of_report report)

let solve_sparse ?precond ?max_iter ?tol a b =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Bicgstab.solve_sparse: matrix is not square";
  solve ?precond ?max_iter ?tol ~matvec:(Sparse.mul_vec a) ~b ~x0:(Vec.create n) ()
