let solve ?(precond = Cg.identity_preconditioner) ?max_iter ?(tol = 1e-10) ~matvec ~b ~x0 () =
  let n = Array.length b in
  let max_iter = match max_iter with Some m -> m | None -> Int.max 100 (10 * n) in
  let x = Array.copy x0 in
  let r = Vec.sub b (matvec x) in
  let r_hat = Array.copy r in
  let target = tol *. Float.max (Vec.norm2 b) 1e-300 in
  let rho = ref 1.0 and alpha = ref 1.0 and omega = ref 1.0 in
  let v = Vec.create n and p = Vec.create n in
  let iter = ref 0 in
  let rnorm = ref (Vec.norm2 r) in
  let broke_down = ref false in
  while !rnorm > target && !iter < max_iter && not !broke_down do
    incr iter;
    let rho' = Vec.dot r_hat r in
    if Float.abs rho' < 1e-300 then broke_down := true
    else begin
      let beta = rho' /. !rho *. (!alpha /. !omega) in
      rho := rho';
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
      done;
      let p_hat = precond p in
      let v' = matvec p_hat in
      Array.blit v' 0 v 0 n;
      alpha := !rho /. Vec.dot r_hat v;
      let s = Array.init n (fun i -> r.(i) -. (!alpha *. v.(i))) in
      if Vec.norm2 s <= target then begin
        Vec.axpy ~alpha:!alpha p_hat x;
        Array.blit s 0 r 0 n;
        rnorm := Vec.norm2 r
      end
      else begin
        let s_hat = precond s in
        let t = matvec s_hat in
        let tt = Vec.dot t t in
        if tt = 0.0 then broke_down := true
        else begin
          omega := Vec.dot t s /. tt;
          for i = 0 to n - 1 do
            x.(i) <- x.(i) +. (!alpha *. p_hat.(i)) +. (!omega *. s_hat.(i));
            r.(i) <- s.(i) -. (!omega *. t.(i))
          done;
          rnorm := Vec.norm2 r;
          if Float.abs !omega < 1e-300 then broke_down := true
        end
      end
    end
  done;
  (x, { Cg.iterations = !iter; residual_norm = !rnorm; converged = !rnorm <= target })

let solve_sparse ?precond ?max_iter ?tol a b =
  let n, m = Sparse.dims a in
  if n <> m then invalid_arg "Bicgstab.solve_sparse: matrix is not square";
  solve ?precond ?max_iter ?tol ~matvec:(Sparse.mul_vec a) ~b ~x0:(Vec.create n) ()
