type t = {
  nrows : int;
  ncols : int;
  mutable rows : int array;
  mutable cols : int array;
  mutable vals : float array;
  mutable len : int;
}

let create ?(capacity = 64) ~nrows ~ncols () =
  let capacity = Int.max capacity 1 in
  {
    nrows;
    ncols;
    rows = Array.make capacity 0;
    cols = Array.make capacity 0;
    vals = Array.make capacity 0.0;
    len = 0;
  }

let grow b =
  let cap = Array.length b.rows in
  let cap' = 2 * cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  b.rows <- extend b.rows 0;
  b.cols <- extend b.cols 0;
  b.vals <- extend b.vals 0.0

let add b i j v =
  if i < 0 || i >= b.nrows || j < 0 || j >= b.ncols then
    invalid_arg (Printf.sprintf "Sparse_builder.add: (%d,%d) out of %dx%d" i j b.nrows b.ncols);
  if b.len = Array.length b.rows then grow b;
  b.rows.(b.len) <- i;
  b.cols.(b.len) <- j;
  b.vals.(b.len) <- v;
  b.len <- b.len + 1

let add_sym b i j v =
  add b i j v;
  if i <> j then add b j i v

let stamp_conductance b n1 n2 g =
  match (n1, n2) with
  | None, None -> ()
  | Some i, None | None, Some i -> add b i i g
  | Some i, Some j ->
      add b i i g;
      add b j j g;
      add b i j (-.g);
      add b j i (-.g)

let nnz_triplets b = b.len

let to_csc b =
  let n = b.len in
  (* Counting sort by column, then sort each column segment by row and merge
     duplicates. *)
  let counts = Array.make (b.ncols + 1) 0 in
  for k = 0 to n - 1 do
    counts.(b.cols.(k) + 1) <- counts.(b.cols.(k) + 1) + 1
  done;
  for j = 1 to b.ncols do
    counts.(j) <- counts.(j) + counts.(j - 1)
  done;
  let next = Array.copy counts in
  let rows_sorted = Array.make n 0 and vals_sorted = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let j = b.cols.(k) in
    let pos = next.(j) in
    next.(j) <- pos + 1;
    rows_sorted.(pos) <- b.rows.(k);
    vals_sorted.(pos) <- b.vals.(k)
  done;
  let colptr = Array.make (b.ncols + 1) 0 in
  let rowind = Array.make n 0 and values = Array.make n 0.0 in
  let pos = ref 0 in
  for j = 0 to b.ncols - 1 do
    let lo = counts.(j) and hi = counts.(j + 1) in
    let seg = Array.init (hi - lo) (fun t -> (rows_sorted.(lo + t), vals_sorted.(lo + t))) in
    Array.sort (fun (r1, _) (r2, _) -> compare r1 r2) seg;
    let m = Array.length seg in
    let k = ref 0 in
    while !k < m do
      let r, _ = seg.(!k) in
      let acc = ref 0.0 in
      while !k < m && fst seg.(!k) = r do
        acc := !acc +. snd seg.(!k);
        incr k
      done;
      if Util.Floats.nonzero !acc then begin
        rowind.(!pos) <- r;
        values.(!pos) <- !acc;
        incr pos
      end
    done;
    colptr.(j + 1) <- !pos
  done;
  Sparse.create ~nrows:b.nrows ~ncols:b.ncols ~colptr
    ~rowind:(Array.sub rowind 0 !pos)
    ~values:(Array.sub values 0 !pos)
