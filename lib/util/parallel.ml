(* Chunked spawn/join parallel-for over OCaml 5 domains — the pattern
   proven in Monte_carlo.run, factored out so the matrix-free Galerkin
   operator, the mean-block preconditioner and the decoupled
   special-case solves can all share it. *)

let parse_domains s =
  match int_of_string_opt (String.trim s) with
  | Some d when d >= 1 -> Ok d
  | Some d -> Error (Printf.sprintf "domain count must be >= 1, got %d" d)
  | None -> Error "not an integer"

let env_domains =
  lazy
    (match Sys.getenv_opt "OPERA_DOMAINS" with
    | None -> 1
    | Some s -> (
        match parse_domains s with
        | Ok d -> d
        | Error why ->
            (* The lazy forces once per process, so this warns once. *)
            Log.warnf "ignoring invalid OPERA_DOMAINS=%S (%s); running sequentially" s why;
            1))

let default_domains () = Lazy.force env_domains

let resolve d = if d >= 1 then d else default_domains ()

let chunk_bounds ~n ~chunks c =
  if chunks < 1 then invalid_arg "Parallel.chunk_bounds: need at least one chunk";
  if c < 0 || c >= chunks then invalid_arg "Parallel.chunk_bounds: chunk out of range";
  let base = n / chunks and extra = n mod chunks in
  let lo = (c * base) + Int.min c extra in
  let hi = lo + base + if c < extra then 1 else 0 in
  (lo, hi)

let for_chunks ?(domains = 0) n body =
  if n < 0 then invalid_arg "Parallel.for_chunks: negative range";
  if n > 0 then begin
    let chunks = Int.min (resolve domains) n in
    if chunks <= 1 then body ~chunk:0 ~lo:0 ~hi:n
    else begin
      let run c =
        let lo, hi = chunk_bounds ~n ~chunks c in
        body ~chunk:c ~lo ~hi
      in
      (* Chunk 0 runs on the calling domain; join re-raises worker
         exceptions (first one wins). *)
      let handles = Array.init (chunks - 1) (fun c -> Domain.spawn (fun () -> run (c + 1))) in
      let main_exn = try run 0; None with e -> Some e in
      let worker_exn =
        Array.fold_left
          (fun acc h -> match (try Domain.join h; None with e -> Some e) with
            | Some _ as e when acc = None -> e
            | _ -> acc)
          None handles
      in
      match (main_exn, worker_exn) with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end
  end

let parallel_for ?domains n body =
  for_chunks ?domains n (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        body i
      done)
