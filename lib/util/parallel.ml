(* Chunked parallel-for over OCaml 5 domains, backed by a persistent
   worker pool.

   PR 1 grew this module out of the spawn/join pattern proven in
   Monte_carlo.run; profiling the transient hot path showed that paying
   [Domain.spawn]/[Domain.join] on *every* matvec and preconditioner
   apply dwarfs the work itself at small block sizes.  The pool below
   keeps the same observable API and the exact same chunking math
   ([chunk_bounds], [chunks = min (resolve domains) n], inline when
   [chunks <= 1]) so the bitwise-determinism argument is unchanged: a
   chunk performs identical arithmetic no matter which domain runs it.

   Pool design:
   - Lazily created on the first parallel dispatch; sized to
     [recommended_domain_count () - 1] workers (overridable for tests
     and benches via [set_pool_cap]).  Zero workers is legal — the
     submitting domain drains every chunk itself, which is also the
     fast path on single-core machines.
   - Work-claiming, not work-assignment: chunks are claimed from a
     shared counter under the pool lock by workers *and* the submitter,
     so the submitter is never parked while runnable chunks remain and
     chunk 0 almost always runs on the calling domain (it holds the
     lock when the job is published).
   - Exceptions from a body are recorded per chunk; after the barrier
     the submitter re-raises the exception of the lowest-numbered
     failing chunk.  A raising body never poisons the pool: the job
     slot is cleared and counters reset before re-raising.
   - Nested dispatch (a body itself calling [for_chunks]) falls back to
     inline sequential execution of the inner chunks — deterministic by
     construction, and free of lock-ordering hazards.
   - [at_exit] parks and joins the workers so the process exits
     cleanly. *)

let parse_domains s =
  match int_of_string_opt (String.trim s) with
  | Some d when d >= 1 -> Ok d
  | Some d -> Error (Printf.sprintf "domain count must be >= 1, got %d" d)
  | None -> Error "not an integer"

let env_domains =
  lazy
    (match Sys.getenv_opt "OPERA_DOMAINS" with
    | None -> 1
    | Some s -> (
        match parse_domains s with
        | Ok d -> d
        | Error why ->
            (* The lazy forces once per process, so this warns once. *)
            Log.warnf "ignoring invalid OPERA_DOMAINS=%S (%s); running sequentially" s why;
            1))

let default_domains () = Lazy.force env_domains

let resolve d = if d >= 1 then d else default_domains ()

let chunk_bounds ~n ~chunks c =
  if chunks < 1 then invalid_arg "Parallel.chunk_bounds: need at least one chunk";
  if c < 0 || c >= chunks then invalid_arg "Parallel.chunk_bounds: chunk out of range";
  let base = n / chunks and extra = n mod chunks in
  let lo = (c * base) + Int.min c extra in
  let hi = lo + base + if c < extra then 1 else 0 in
  (lo, hi)

(* ------------------------------------------------------------------ *)
(* Persistent worker pool.                                            *)
(* ------------------------------------------------------------------ *)

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (* workers park here between jobs *)
  done_ : Condition.t;  (* submitter parks here until the barrier *)
  mutable workers : unit Domain.t array;
  mutable shutting_down : bool;
  mutable job : (int -> unit) option;  (* run chunk [c] of the current job *)
  mutable chunks : int;  (* chunk count of the current job *)
  mutable next : int;  (* next unclaimed chunk *)
  mutable remaining : int;  (* chunks not yet finished *)
  mutable failures : (int * exn) list;
  mutable dispatches : int;  (* jobs executed through the pool (telemetry) *)
}

let the_pool : pool option ref = ref None
let pool_cap_override : int option ref = ref None
let at_exit_registered = ref false

let hardware_cap () = Int.max 0 (Domain.recommended_domain_count () - 1)

let cap () =
  match !pool_cap_override with Some c -> Int.max 0 c | None -> hardware_cap ()

(* Claim and run chunks of the current job until none remain.  The pool
   lock is held on entry and on exit; it is released around each body
   invocation. *)
let drain pool =
  let job = match pool.job with Some j -> j | None -> assert false in
  while pool.next < pool.chunks do
    let c = pool.next in
    pool.next <- pool.next + 1;
    Mutex.unlock pool.lock;
    (* capture-and-rethrow, not a swallow: the exception is re-raised
       on the submitting domain after the join *)
    let failed = (try job c; None with e -> Some e) (* opera-lint: banned *) in
    Mutex.lock pool.lock;
    (match failed with
    | Some e -> pool.failures <- (c, e) :: pool.failures
    | None -> ());
    pool.remaining <- pool.remaining - 1;
    if pool.remaining = 0 then Condition.broadcast pool.done_
  done

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while
    (not pool.shutting_down) && (pool.job = None || pool.next >= pool.chunks)
  do
    Condition.wait pool.work pool.lock
  done;
  if pool.shutting_down then Mutex.unlock pool.lock
  else begin
    drain pool;
    Mutex.unlock pool.lock;
    worker_loop pool
  end

let shutdown_pool () =
  match !the_pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.lock;
      p.shutting_down <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.lock;
      Array.iter Domain.join p.workers;
      the_pool := None

let get_pool () =
  match !the_pool with
  | Some p -> p
  | None ->
      let p =
        {
          lock = Mutex.create ();
          work = Condition.create ();
          done_ = Condition.create ();
          workers = [||];
          shutting_down = false;
          job = None;
          chunks = 0;
          next = 0;
          remaining = 0;
          failures = [];
          dispatches = 0;
        }
      in
      if not !at_exit_registered then begin
        at_exit shutdown_pool;
        at_exit_registered := true
      end;
      the_pool := Some p;
      p.workers <- Array.init (cap ()) (fun _ -> Domain.spawn (fun () -> worker_loop p));
      p

let set_pool_cap c =
  shutdown_pool ();
  pool_cap_override := c

let pool_workers () =
  match !the_pool with Some p -> Array.length p.workers | None -> cap ()

let pool_dispatches () = match !the_pool with Some p -> p.dispatches | None -> 0

(* Run [job] over [chunks] chunks inline on the calling domain,
   preserving the pool's exception discipline: every chunk runs, and
   the lowest-numbered failing chunk's exception is re-raised. *)
let run_inline chunks job =
  let first_failure = ref None in
  for c = 0 to chunks - 1 do
    (* capture-and-rethrow, not a swallow: opera-lint: banned *)
    try job c with e -> if !first_failure = None then first_failure := Some e
  done;
  match !first_failure with Some e -> raise e | None -> ()

let submit chunks job =
  let pool = get_pool () in
  Mutex.lock pool.lock;
  if pool.job <> None then begin
    (* Nested dispatch from within a body: run the inner job inline. *)
    Mutex.unlock pool.lock;
    run_inline chunks job
  end
  else begin
    pool.job <- Some job;
    pool.chunks <- chunks;
    pool.next <- 0;
    pool.remaining <- chunks;
    pool.failures <- [];
    pool.dispatches <- pool.dispatches + 1;
    Condition.broadcast pool.work;
    (* The submitter claims chunks too — starting with chunk 0, since it
       still holds the lock — so zero-worker pools degrade to a plain
       sequential loop and nonzero-worker pools never idle the caller. *)
    drain pool;
    while pool.remaining > 0 do
      Condition.wait pool.done_ pool.lock
    done;
    pool.job <- None;
    pool.chunks <- 0;
    let failures = pool.failures in
    pool.failures <- [];
    Mutex.unlock pool.lock;
    match List.sort (fun (a, _) (b, _) -> Int.compare a b) failures with
    | (_, e) :: _ -> raise e
    | [] -> ()
  end

let for_chunks ?(domains = 0) n body =
  if n < 0 then invalid_arg "Parallel.for_chunks: negative range";
  if n > 0 then begin
    let chunks = Int.min (resolve domains) n in
    if chunks <= 1 then body ~chunk:0 ~lo:0 ~hi:n
    else begin
      let run c =
        let lo, hi = chunk_bounds ~n ~chunks c in
        body ~chunk:c ~lo ~hi
      in
      if cap () = 0 && !the_pool = None then
        (* Single-core machine and no pool forced into existence: skip
           the pool entirely (no lock traffic, nothing to park). *)
        run_inline chunks run
      else submit chunks run
    end
  end

let parallel_for ?domains n body =
  (* opera-lint: race — adapter; caller's body is analyzed at its site *)
  for_chunks ?domains n (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        body i
      done)
