type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let tag = function Error -> "error" | Warn -> "warn" | Info -> "info" | Debug -> "debug"

let current = ref Warn

let set_level l = current := l

let level () = !current

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | other -> Error (Printf.sprintf "unknown log level %S (error|warn|info|debug)" other)

let level_to_string = tag

let enabled l = severity l <= severity !current

let logf l fmt =
  let k msg = if enabled l then Printf.eprintf "[opera %s] %s\n%!" (tag l) msg in
  Printf.ksprintf k fmt

let errorf fmt = logf Error fmt

let warnf fmt = logf Warn fmt

let infof fmt = logf Info fmt

let debugf fmt = logf Debug fmt
