(** Elapsed-time helpers used by the benchmark harness and the batch
    engine.  Backed by the monotonic clock, not the wall clock, so
    elapsed readings are immune to NTP steps. *)

type t
(** A started stopwatch. *)

val start : unit -> t
(** [start ()] starts a stopwatch. *)

val elapsed_s : t -> float
(** [elapsed_s t] is the monotonic elapsed time in seconds since
    [start]; never negative. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)
