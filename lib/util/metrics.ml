(* Named counters and timing histograms with monotonic-clock spans.

   One registry is a string-keyed table of metrics.  Counters are plain
   integers; histograms keep count/sum/min/max plus a small set of
   exponential buckets (decades from 1 us to 100 s — sized for wall-time
   observations in seconds, harmless for other units).  The JSON
   serialization is deterministic (keys sorted) so diffs and tests are
   stable.

   Registries are NOT thread-safe: all instrumented code updates metrics
   from the calling domain only (the parallel kernels in this repo fork
   and join inside the instrumented spans, never across them). *)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  buckets : int array; (* buckets.(i) counts observations <= bounds.(i); last = overflow *)
}

let bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; 100.0 |]

type metric = Counter of int ref | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let global = create ()

let reset t = Hashtbl.reset t.table

let counter_ref t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter r) -> r
  | Some (Histogram _) ->
      invalid_arg (Printf.sprintf "Metrics: %S is a histogram, not a counter" name)
  | None ->
      let r = ref 0 in
      Hashtbl.add t.table name (Counter r);
      r

let histogram_ref t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg (Printf.sprintf "Metrics: %S is a counter, not a histogram" name)
  | None ->
      let h =
        {
          count = 0;
          sum = 0.0;
          minv = infinity;
          maxv = neg_infinity;
          buckets = Array.make (Array.length bounds + 1) 0;
        }
      in
      Hashtbl.add t.table name (Histogram h);
      h

let incr ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by

let counter t name = match Hashtbl.find_opt t.table name with Some (Counter r) -> !r | _ -> 0

let observe t name v =
  let h = histogram_ref t name in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v;
  let nb = Array.length bounds in
  let i = ref 0 in
  while !i < nb && v > bounds.(!i) do
    Stdlib.incr i
  done;
  h.buckets.(!i) <- h.buckets.(!i) + 1

let observations t name =
  match Hashtbl.find_opt t.table name with Some (Histogram h) -> h.count | _ -> 0

let total t name =
  match Hashtbl.find_opt t.table name with Some (Histogram h) -> h.sum | _ -> 0.0

(* Fold a registry into another under a name prefix: counters add,
   histograms merge component-wise.  Used by the batch engine to roll
   per-job registries (owned by the worker domain while the job runs)
   into the engine registry after the join — so the merge itself always
   happens on one domain. *)
let merge_into ?(prefix = "") src ~into =
  (* Merge in sorted key order: per-key merging is commutative, but a
     deterministic order keeps float summation (histogram sums) and the
     destination table's insertion order reproducible across runs. *)
  let entries =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun name m acc -> (name, m) :: acc) src.table [])
  in
  List.iter
    (fun (name, m) ->
      let name = prefix ^ name in
      match m with
      | Counter r -> incr ~by:!r into name
      | Histogram h ->
          let dst = histogram_ref into name in
          dst.count <- dst.count + h.count;
          dst.sum <- dst.sum +. h.sum;
          if h.minv < dst.minv then dst.minv <- h.minv;
          if h.maxv > dst.maxv then dst.maxv <- h.maxv;
          Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) h.buckets)
    entries

(* ---- monotonic-clock spans ---------------------------------------- *)

type span = int64 (* Monotonic_clock.now () in nanoseconds *)

let start_span () : span = Monotonic_clock.now ()

let elapsed_of (s : span) = Int64.to_float (Int64.sub (Monotonic_clock.now ()) s) *. 1e-9

let stop_span t name s =
  let dt = elapsed_of s in
  observe t name dt;
  dt

let span t name f =
  let s = start_span () in
  Fun.protect ~finally:(fun () -> ignore (stop_span t name s)) f

(* ---- JSON serialization -------------------------------------------- *)

let json_float v =
  (* JSON has no infinities; empty histograms carry min/max = +-inf. *)
  if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let metric_to_json = function
  | Counter r -> Printf.sprintf "{\"type\": \"counter\", \"value\": %d}" !r
  | Histogram h ->
      let mean = if h.count > 0 then h.sum /. float_of_int h.count else 0.0 in
      let bucket_fields =
        Array.to_list
          (Array.mapi
             (fun i c ->
               let label =
                 if i < Array.length bounds then Printf.sprintf "\"le_%g\"" bounds.(i)
                 else "\"le_inf\""
               in
               Printf.sprintf "%s: %d" label c)
             h.buckets)
      in
      Printf.sprintf
        "{\"type\": \"histogram\", \"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \
         \"mean\": %s, \"buckets\": {%s}}"
        h.count (json_float h.sum) (json_float h.minv) (json_float h.maxv) (json_float mean)
        (String.concat ", " bucket_fields)

let to_json t =
  let entries =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [])
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "  %S: %s" name (metric_to_json m)))
    entries;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let metrics_to_json = to_json

let write_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json t))
