type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create columns =
  let headers = Array.of_list (List.map fst columns) in
  let aligns = Array.of_list (List.map snd columns) in
  { headers; aligns; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  let row = Array.make n "" in
  List.iteri (fun i cell -> if i < n then row.(i) <- cell) cells;
  t.rows <- row :: t.rows

let pad align width s =
  let k = width - String.length s in
  if k <= 0 then s
  else
    match align with
    | Left -> s ^ String.make k ' '
    | Right -> String.make k ' ' ^ s

let render t =
  let n = Array.length t.headers in
  let rows = List.rev t.rows in
  let widths = Array.map String.length t.headers in
  let widen row =
    Array.iteri
      (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
      row
  in
  List.iter widen rows;
  let buf = Buffer.create 1024 in
  let emit_row row =
    Buffer.add_string buf "| ";
    for i = 0 to n - 1 do
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) row.(i));
      Buffer.add_string buf (if i = n - 1 then " |" else " | ")
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  Buffer.add_string buf "|";
  for i = 0 to n - 1 do
    Buffer.add_string buf (String.make (widths.(i) + 2) '-');
    Buffer.add_string buf "|"
  done;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf
