(* Intent-revealing float comparisons.

   opera-lint (tools/lint) bans raw [=] / [<>] on floats in lib/: an
   exact compare is almost always either a sparsity/guard check that is
   *deliberately* exact (skipping structurally-zero work, guarding a
   divide) or a bug (comparing computed values that differ in the last
   ulp).  This module is the single waived home for the exact compares,
   so every call site names its intent and the deliberate ones are
   auditable in one place. *)

(* The one sanctioned exact comparison.  NaN is never equal to anything,
   including itself — callers guarding divides with [is_zero] therefore
   still divide by NaN; that is the IEEE-faithful behaviour we want
   (NaN propagates instead of being silently zeroed). *)
let equal_exact a b = (a : float) = (b : float) (* opera-lint: exact *)

let is_zero x = equal_exact x 0.0

let nonzero x = not (equal_exact x 0.0)

(* Tolerance compare for *computed* quantities: absolute-or-relative,
   symmetric in [a] and [b].  [atol] dominates near zero, [rtol] away
   from it. *)
let approx_equal ?(rtol = 1e-12) ?(atol = 0.0) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))
