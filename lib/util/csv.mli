(** Minimal CSV writer for exporting traces to plotting tools. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val write_rows : out_channel -> string list list -> unit
(** Write rows (first row is conventionally the header). *)

val save : string -> header:string list -> rows:string list list -> unit
(** Write a file with a header row. *)

val float_cell : float -> string
(** Shortest round-trip representation. *)
