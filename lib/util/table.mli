(** Plain-text table rendering for benchmark and CLI output. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : (string * align) list -> t
(** [create columns] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a data row. Rows shorter than the header are
    padded with empty cells; longer rows are truncated.  *)

val render : t -> string
(** [render t] lays the table out with column separators and a header
    rule.  [Util.Table] is pure — it never writes to stdout itself;
    callers (the CLI, the bench driver) print the rendered string. *)
