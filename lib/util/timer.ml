(* Monotonic stopwatch: [Monotonic_clock.now] counts nanoseconds on
   CLOCK_MONOTONIC (the same source Metrics histograms use), so elapsed
   times cannot jump or go negative when NTP steps the wall clock
   mid-run — batch summaries and bench records stay trustworthy. *)

type t = int64

let start () = Monotonic_clock.now ()

let elapsed_s t0 = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) *. 1e-9

let time f =
  let t0 = start () in
  let result = f () in
  (result, elapsed_s t0)
