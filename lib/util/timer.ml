type t = float

let start () = Unix.gettimeofday ()

let elapsed_s t0 = Unix.gettimeofday () -. t0

let time f =
  let t0 = start () in
  let result = f () in
  (result, elapsed_s t0)
