(** Solver observability: named counters and timing histograms.

    Every linear/transient solve phase in the library (factorization,
    per-step solve, matvec, preconditioner application) reports into a
    registry of this type, and the CLI's [--metrics-out FILE] serializes
    the registry as JSON.  Spans use the system monotonic clock
    ([CLOCK_MONOTONIC] via bechamel's stub), so timings are immune to
    wall-clock adjustments.

    Registries are not thread-safe; instrumented code only updates them
    from the calling domain (the parallel kernels fork and join {e
    inside} instrumented spans, never across them).

    JSON schema ({!to_json}): one top-level object, keys sorted; each
    value is either
    [{"type": "counter", "value": <int>}] or
    [{"type": "histogram", "count": n, "sum": s, "min": m, "max": M,
      "mean": mu, "buckets": {"le_1e-06": c0, ..., "le_inf": ck}}]
    where bucket ["le_B"] counts observations in the decade up to [B]
    (seconds, for span-fed histograms). *)

type t
(** A metrics registry. *)

val create : unit -> t

val global : t
(** The process-wide default registry: all library instrumentation lands
    here unless a caller passes its own registry (e.g. through
    [Galerkin.options.metrics]). *)

val reset : t -> unit
(** Drop every metric (counters and histograms). *)

val incr : ?by:int -> t -> string -> unit
(** Increment a counter, creating it at 0 first if needed.  Raises
    [Invalid_argument] if the name is already a histogram. *)

val counter : t -> string -> int
(** Current counter value; 0 when absent. *)

val observe : t -> string -> float -> unit
(** Record one observation into a histogram, creating it if needed.
    Raises [Invalid_argument] if the name is already a counter. *)

val observations : t -> string -> int
(** Number of observations recorded; 0 when absent. *)

val total : t -> string -> float
(** Sum of all observations; 0 when absent. *)

val merge_into : ?prefix:string -> t -> into:t -> unit
(** [merge_into ~prefix src ~into] folds every metric of [src] into
    [into] under [prefix ^ name]: counters add, histograms merge
    component-wise (count/sum/min/max/buckets).  Both registries must be
    owned by the calling domain — the batch engine merges per-job
    registries only after joining their workers. *)

type span
(** A started monotonic-clock stopwatch. *)

val start_span : unit -> span

val stop_span : t -> string -> span -> float
(** [stop_span t name s] records the elapsed seconds since [s] into the
    histogram [name] and returns them. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()] with the monotonic clock and records the
    elapsed seconds into histogram [name] — also on exception. *)

val to_json : t -> string
(** Deterministic (sorted-key) JSON rendering; see the schema above. *)

val metrics_to_json : t -> string
(** Alias of {!to_json}. *)

val write_file : t -> string -> unit
(** Serialize {!to_json} to a file (truncates). *)
