(** Minimal JSON reader.

    Just enough to validate and introspect the JSON this repository
    emits ({!Metrics.to_json}, [BENCH_galerkin.json], [--metrics-out]
    files): objects, arrays, strings (common escapes incl. [\uXXXX]),
    numbers, booleans, null.  Not a streaming parser; intended for small
    configuration/metrics files. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error. *)

val parse_file : string -> (t, string) result

val render : t -> string
(** Compact, deterministic serialization.  Strings escape every control
    character below 0x20 ([\n], [\t], ... or [\u00XX]) plus the quote
    and backslash characters,
    so [parse (to_string v)] reproduces [v] for arbitrary byte strings.
    Numbers print integrally when integral, with 17 significant digits
    otherwise (exact double round-trip); non-finite numbers render as
    [null]. *)

val escape : string -> string
(** The writer's string escaping, without the surrounding quotes. *)

val number_to_string : float -> string
(** The writer's number rendering (exposed for line-oriented emitters
    that format records by hand). *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val to_float : t -> float option

val to_int : t -> int option
(** [Some] only for numbers with integral value. *)

val to_string : t -> string option

val to_list : t -> t list option

val keys : t -> string list
(** Object keys in order; [[]] for non-objects. *)
