let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let write_rows oc rows =
  List.iter
    (fun row ->
      output_string oc (String.concat "," (List.map escape row));
      output_char oc '\n')
    rows

let save path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      write_rows oc (header :: rows);
      close_out oc)

let float_cell v = Printf.sprintf "%.12g" v
