(** Binary artifact serializer with versioned headers and checksums.

    The substrate of the on-disk artifact store ({!Opera} scenario
    engine): fixed-width little-endian primitives, bit-exact floats
    (IEEE-754 bit patterns, so cached factors reproduce cold runs
    bitwise), and a self-describing frame

    [magic | format | kind | version | length | FNV-1a checksum | payload]

    so corrupt, truncated or schema-mismatched files are detected on
    read — {!Corrupt} — and never trusted. *)

exception Corrupt of string
(** Raised by every read path on malformed bytes: truncation, bad magic,
    kind/version mismatch, checksum failure, out-of-range values.
    Callers treat it as "rebuild the artifact". *)

(** {1 Encoding} *)

type encoder

val encoder : ?initial_size:int -> unit -> encoder

val contents : encoder -> string

val write_int : encoder -> int -> unit

val write_i64 : encoder -> int64 -> unit

val write_bool : encoder -> bool -> unit

val write_float : encoder -> float -> unit
(** Exact: the IEEE-754 bit pattern crosses the codec unchanged
    (including NaNs, infinities and signed zeros). *)

val write_string : encoder -> string -> unit
(** Length-prefixed; arbitrary bytes. *)

val write_int_array : encoder -> int array -> unit

val write_float_array : encoder -> float array -> unit

(** {1 Decoding} *)

type decoder

val decoder_of_string : ?pos:int -> ?limit:int -> string -> decoder

val remaining : decoder -> int

val read_int : decoder -> int

val read_i64 : decoder -> int64

val read_bool : decoder -> bool

val read_float : decoder -> float

val read_string : decoder -> string

val read_int_array : decoder -> int array

val read_float_array : decoder -> float array

val expect_end : decoder -> unit
(** Raise {!Corrupt} unless the payload was consumed exactly. *)

(** {1 Framing} *)

val frame : kind:string -> version:int -> (encoder -> unit) -> string
(** [frame ~kind ~version write] serializes a payload produced by [write]
    into a self-describing frame carrying the artifact [kind] tag, the
    caller's schema [version] and an FNV-1a checksum of the payload. *)

val unframe : kind:string -> version:int -> string -> decoder
(** Validate a frame (magic, codec format, kind, version, length,
    checksum) and return a decoder positioned on the payload.  Raises
    {!Corrupt} on any mismatch. *)

val fnv1a : ?pos:int -> ?len:int -> string -> int64
(** FNV-1a 64-bit hash of a substring (integrity, not cryptography). *)

val fnv1a_init : int64
(** Initial state of the running FNV-1a form. *)

val fnv1a_fold : int64 -> Bytes.t -> int -> int -> int64
(** [fnv1a_fold h b pos len] advances the running hash over a chunk —
    the incremental form used by {!read_frame} to checksum a payload
    while it is read, without a second pass. *)

(** {1 Files} *)

val write_file : string -> string -> unit
(** Write bytes through a same-directory temp file and [rename], so the
    final path never holds a partially written frame.  The file lands
    with mode [0o644] masked by the process umask (not the 0600 of the
    temp file), so readers sharing the cache directory — the sharded
    multi-process batch scenario — can open it. *)

val read_file : string -> string option
(** Whole-file read; [None] when the file is missing or unreadable
    (open failed).  A file that opens but is zero-length or truncates
    mid-read raises {!Corrupt} — that is cache damage, not a miss, and
    callers must take their drop-and-rebuild path. *)

val read_frame : kind:string -> version:int -> string -> decoder option
(** Single-pass framed read: validates the v1 header straight off the
    channel, then reads the payload into its one final buffer in chunks,
    folding the FNV-1a checksum over each chunk as it lands.  Unlike
    {!read_file} + {!unframe}, the artifact is never resident twice and
    the checksum never re-walks the payload.  [None] when the file is
    missing or unreadable; {!Corrupt} on any damage (including a v2
    format byte — dispatch by artifact kind, not by sniffing). *)

(** {1 v2 frames: mmap-decodable section payloads}

    A v2 frame splits its payload into a small [meta] encoder section
    (scalars, dimensions) and a table of 8-aligned raw numeric runs.
    On a 64-bit little-endian host the runs coincide byte-for-byte with
    the memory layout of [int] / [float64] Bigarrays, so {!read_frame_v2}
    can return zero-copy [Unix.map_file]-backed views over the artifact
    — a warm million-node factor loads without decoding gigabytes.  The
    checksum is verified over the mapped region before any view is
    handed out; foreign hosts and refused mappings take a copying
    fallback that decodes the same bytes portably. *)

type fsection = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type isection = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** What the writer hands to {!frame_v2}, one per section. *)
type section_data =
  | F_arr of float array
  | I_arr of int array
  | F_big of fsection
  | I_big of isection

type sections
(** Decoded (or mapped) section views of one v2 payload. *)

val sections_mapped : sections -> bool
(** [true] when the views are [Unix.map_file]-backed (zero-copy). *)

val section_count : sections -> int

val section_float : sections -> int -> fsection
(** Section by table position; {!Corrupt} on a tag or range mismatch. *)

val section_int : sections -> int -> isection

val frame_v2 :
  kind:string ->
  version:int ->
  meta:(encoder -> unit) ->
  sections:section_data list ->
  string
(** Serialize a v2 frame.  Elements are written little-endian (i64 for
    ints, IEEE-754 bits for floats) regardless of host order, so the
    frame reads back anywhere; mapping is what needs a matching host. *)

val read_frame_v2 :
  ?map:bool -> kind:string -> version:int -> string -> (decoder * sections) option
(** Load a v2 frame: the meta decoder plus section views.  With
    [map = true] (default) a matching 64-bit little-endian host gets
    mapped views, checksummed over the mapped region; otherwise — or
    when mapping fails — a streaming read + copying decode.  [None] when
    the file is missing; {!Corrupt} on damage. *)
