(** Binary artifact serializer with versioned headers and checksums.

    The substrate of the on-disk artifact store ({!Opera} scenario
    engine): fixed-width little-endian primitives, bit-exact floats
    (IEEE-754 bit patterns, so cached factors reproduce cold runs
    bitwise), and a self-describing frame

    [magic | format | kind | version | length | FNV-1a checksum | payload]

    so corrupt, truncated or schema-mismatched files are detected on
    read — {!Corrupt} — and never trusted. *)

exception Corrupt of string
(** Raised by every read path on malformed bytes: truncation, bad magic,
    kind/version mismatch, checksum failure, out-of-range values.
    Callers treat it as "rebuild the artifact". *)

(** {1 Encoding} *)

type encoder

val encoder : ?initial_size:int -> unit -> encoder

val contents : encoder -> string

val write_int : encoder -> int -> unit

val write_i64 : encoder -> int64 -> unit

val write_bool : encoder -> bool -> unit

val write_float : encoder -> float -> unit
(** Exact: the IEEE-754 bit pattern crosses the codec unchanged
    (including NaNs, infinities and signed zeros). *)

val write_string : encoder -> string -> unit
(** Length-prefixed; arbitrary bytes. *)

val write_int_array : encoder -> int array -> unit

val write_float_array : encoder -> float array -> unit

(** {1 Decoding} *)

type decoder

val decoder_of_string : ?pos:int -> ?limit:int -> string -> decoder

val remaining : decoder -> int

val read_int : decoder -> int

val read_i64 : decoder -> int64

val read_bool : decoder -> bool

val read_float : decoder -> float

val read_string : decoder -> string

val read_int_array : decoder -> int array

val read_float_array : decoder -> float array

val expect_end : decoder -> unit
(** Raise {!Corrupt} unless the payload was consumed exactly. *)

(** {1 Framing} *)

val frame : kind:string -> version:int -> (encoder -> unit) -> string
(** [frame ~kind ~version write] serializes a payload produced by [write]
    into a self-describing frame carrying the artifact [kind] tag, the
    caller's schema [version] and an FNV-1a checksum of the payload. *)

val unframe : kind:string -> version:int -> string -> decoder
(** Validate a frame (magic, codec format, kind, version, length,
    checksum) and return a decoder positioned on the payload.  Raises
    {!Corrupt} on any mismatch. *)

val fnv1a : ?pos:int -> ?len:int -> string -> int64
(** FNV-1a 64-bit hash of a substring (integrity, not cryptography). *)

(** {1 Files} *)

val write_file : string -> string -> unit
(** Write bytes through a same-directory temp file and [rename], so the
    final path never holds a partially written frame.  The file lands
    with mode [0o644] masked by the process umask (not the 0600 of the
    temp file), so readers sharing the cache directory — the sharded
    multi-process batch scenario — can open it. *)

val read_file : string -> string option
(** Whole-file read; [None] when the file is missing or unreadable
    (open failed).  A file that opens but is zero-length or truncates
    mid-read raises {!Corrupt} — that is cache damage, not a miss, and
    callers must take their drop-and-rebuild path. *)
