(** Chunked parallelism over OCaml 5 domains, backed by a persistent
    worker pool.

    A tiny helper shared by every block-structured hot path (matrix-free
    Galerkin matvec, mean-block preconditioner, decoupled special-case
    solves, assembled triangular level sweeps, batch-job fan-out): split
    an index range [0, n) into at most [domains] contiguous chunks and
    run each chunk exactly once across a small set of long-lived worker
    domains plus the calling domain.

    The pool is created lazily on the first parallel dispatch, holds
    [Domain.recommended_domain_count () - 1] parked workers (see
    {!set_pool_cap}), and is joined via [at_exit].  Chunks are *claimed*
    from a shared counter rather than statically assigned, so the
    calling domain always participates and a zero-worker pool degrades
    to a plain sequential loop.  Dispatching a job costs two mutex
    acquisitions per chunk instead of a [Domain.spawn]/[Domain.join]
    pair per worker per call — the difference is what made per-step
    preconditioner applies affordable (see DESIGN.md, "Transient hot
    path").

    Domain count resolution (everywhere a [?domains] argument appears in
    the library): an explicit positive argument wins; [0] (the default)
    falls back to the [OPERA_DOMAINS] environment variable; when that is
    unset or invalid the code runs sequentially.  Sequential execution is
    the deterministic baseline — parallel results are bitwise identical
    for the kernels in this library because chunking never changes the
    per-index work or its internal summation order, and a chunk performs
    the same arithmetic no matter which domain claims it. *)

val parse_domains : string -> (int, string) result
(** Validate a domain-count string as [OPERA_DOMAINS] interprets it:
    [Ok d] for a trimmed positive integer, [Error why] otherwise. *)

val default_domains : unit -> int
(** Domain count from the [OPERA_DOMAINS] environment variable; [1] when
    unset.  An invalid value (empty, non-numeric, zero or negative) also
    yields [1] but additionally warns once on stderr through {!Log},
    naming the rejected value.  The value is read once and cached for
    the lifetime of the process. *)

val resolve : int -> int
(** [resolve d] is [d] if [d >= 1], otherwise {!default_domains} [()] —
    the uniform interpretation of [?domains] arguments ([0] = "use the
    environment"). *)

val chunk_bounds : n:int -> chunks:int -> int -> int * int
(** [chunk_bounds ~n ~chunks c] is the half-open range [(lo, hi)] of
    chunk [c] when [0, n) is split into [chunks] near-equal contiguous
    pieces (the first [n mod chunks] chunks get one extra element). *)

val for_chunks : ?domains:int -> int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** [for_chunks ~domains n body] splits [0, n) into [min domains n]
    contiguous chunks and runs [body ~chunk ~lo ~hi] exactly once for
    each ([chunk] indexes the chunk, so per-chunk scratch arrays can be
    preallocated and indexed race-free).  Runs inline — touching no pool
    state — when the resolved domain count is 1 or [n <= 1].

    Chunks may run on any domain (worker or caller); bodies must not
    assume chunk 0 runs on the calling domain in particular, and must
    not touch calling-domain-only state such as a {!Metrics} registry.
    Nested calls from within a body run their inner chunks inline on
    the current domain.

    If one or more bodies raise, every chunk still runs to completion
    and the exception of the lowest-numbered failing chunk is re-raised
    after the barrier; the pool remains usable afterwards. *)

val parallel_for : ?domains:int -> int -> (int -> unit) -> unit
(** [parallel_for ~domains n body] runs [body i] for every [i] in
    [0, n)], chunked across domains as in {!for_chunks}.  [body] must
    only write state owned by index [i] (disjoint output slices). *)

(** {2 Pool introspection and control}

    Primarily for tests and benchmarks; production code never needs
    these. *)

val set_pool_cap : int option -> unit
(** [set_pool_cap (Some w)] tears down the current pool (if any) and
    caps future pools at [w] worker domains; [set_pool_cap None]
    restores the hardware default
    [Domain.recommended_domain_count () - 1].  Benches and tests use
    this to exercise real worker domains on small machines ([Some 0]
    forces fully inline execution). *)

val pool_workers : unit -> int
(** Number of worker domains in the live pool, or the cap a future pool
    would be created with when none exists yet.  The calling domain
    always participates in addition to these workers. *)

val pool_dispatches : unit -> int
(** Number of jobs executed through the live pool since it was created
    ([0] when no pool exists).  A strictly increasing count across
    repeated [for_chunks] calls is how tests observe pool *reuse* as
    opposed to per-call domain churn. *)
