(** Chunked fork/join parallelism over OCaml 5 domains.

    A tiny helper shared by every block-structured hot path (matrix-free
    Galerkin matvec, mean-block preconditioner, decoupled special-case
    solves, Monte-Carlo sampling): split an index range [0, n) into at
    most [domains] contiguous chunks, run one chunk per domain with the
    classic spawn/join pattern, and re-raise the first worker exception.

    Domain count resolution (everywhere a [?domains] argument appears in
    the library): an explicit positive argument wins; [0] (the default)
    falls back to the [OPERA_DOMAINS] environment variable; when that is
    unset or invalid the code runs sequentially.  Sequential execution is
    the deterministic baseline — parallel results are bitwise identical
    for the kernels in this library because chunking never changes the
    per-index work or its internal summation order. *)

val parse_domains : string -> (int, string) result
(** Validate a domain-count string as [OPERA_DOMAINS] interprets it:
    [Ok d] for a trimmed positive integer, [Error why] otherwise. *)

val default_domains : unit -> int
(** Domain count from the [OPERA_DOMAINS] environment variable; [1] when
    unset.  An invalid value (empty, non-numeric, zero or negative) also
    yields [1] but additionally warns once on stderr through {!Log},
    naming the rejected value.  The value is read once and cached for
    the lifetime of the process. *)

val resolve : int -> int
(** [resolve d] is [d] if [d >= 1], otherwise {!default_domains} [()] —
    the uniform interpretation of [?domains] arguments ([0] = "use the
    environment"). *)

val chunk_bounds : n:int -> chunks:int -> int -> int * int
(** [chunk_bounds ~n ~chunks c] is the half-open range [(lo, hi)] of
    chunk [c] when [0, n) is split into [chunks] near-equal contiguous
    pieces (the first [n mod chunks] chunks get one extra element). *)

val for_chunks : ?domains:int -> int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** [for_chunks ~domains n body] splits [0, n) into [min domains n]
    contiguous chunks and runs [body ~chunk ~lo ~hi] for each, one chunk
    per domain ([chunk] indexes the chunk, so per-chunk scratch arrays
    can be preallocated and indexed race-free).  Runs inline — spawning
    nothing — when the resolved domain count is 1 or [n <= 1].  Worker
    exceptions propagate to the caller via [Domain.join]. *)

val parallel_for : ?domains:int -> int -> (int -> unit) -> unit
(** [parallel_for ~domains n body] runs [body i] for every [i] in
    [0, n)], chunked across domains as in {!for_chunks}.  [body] must
    only write state owned by index [i] (disjoint output slices). *)
