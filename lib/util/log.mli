(** Leveled stderr logging shared by the library and the CLI.

    Solver-health warnings (non-converged PCG steps, invalid environment
    configuration) go through this module so the CLI's [--log-level] flag
    controls them uniformly.  The default level is [Warn]: errors and
    warnings print, informational and debug messages are suppressed. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit

val level : unit -> level

val level_of_string : string -> (level, string) result
(** Case-insensitive parse of ["error" | "warn" | "info" | "debug"]. *)

val level_to_string : level -> string

val enabled : level -> bool
(** [enabled l] is true when a message at level [l] would print. *)

val errorf : ('a, unit, string, unit) format4 -> 'a

val warnf : ('a, unit, string, unit) format4 -> 'a

val infof : ('a, unit, string, unit) format4 -> 'a

val debugf : ('a, unit, string, unit) format4 -> 'a
(** Printf-style; a ["[opera <level>] "] prefix and a newline are added.
    Formatting of the arguments happens even when the level is disabled
    (messages are cheap; keep heavyweight work out of the arguments). *)
