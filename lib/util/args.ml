(* Declarative command-line flag parsing for the per-subcommand parsers
   of the CLI.

   The library is deliberately pure: parsing returns an outcome and the
   usage text is returned as a string — printing and [exit] belong to
   the executable, never here.  Every subcommand shares one error path
   (unknown flag, missing or malformed value -> [Failed], which the CLI
   maps to exit code 2 with a message on stderr) and one help path
   ([--help]/[-h] -> [Help]). *)

type handler =
  | Flag of (unit -> unit)
  | Value of string * (string -> (unit, string) result)

type arg = { names : string list; handler : handler; doc : string }

type outcome = Parsed of string list | Help | Failed of string

let make names handler doc = { names; handler; doc }

let flag names ~doc r = make names (Flag (fun () -> r := true)) doc

let unit names ~doc f = make names (Flag f) doc

let value names ~docv ~doc set = make names (Value (docv, set)) doc

let int names ~doc r =
  value names ~docv:"N" ~doc (fun s ->
      match int_of_string_opt (String.trim s) with
      | Some v ->
          r := v;
          Ok ()
      | None -> Error (Printf.sprintf "expected an integer, got %S" s))

let float names ~doc r =
  value names ~docv:"X" ~doc (fun s ->
      match float_of_string_opt (String.trim s) with
      | Some v ->
          r := v;
          Ok ()
      | None -> Error (Printf.sprintf "expected a number, got %S" s))

let string names ~docv ~doc r =
  value names ~docv ~doc (fun s ->
      r := s;
      Ok ())

let string_opt names ~docv ~doc r =
  value names ~docv ~doc (fun s ->
      r := Some s;
      Ok ())

let enum names ~doc choices r =
  let docv = String.concat "|" (List.map fst choices) in
  value names ~docv ~doc (fun s ->
      match List.assoc_opt (String.lowercase_ascii (String.trim s)) choices with
      | Some v ->
          r := v;
          Ok ()
      | None -> Error (Printf.sprintf "expected one of %s, got %S" docv s))

let is_option s = String.length s > 1 && s.[0] = '-' && s <> "--"

(* Split "--flag=value" into ("--flag", Some "value"). *)
let split_eq s =
  match String.index_opt s '=' with
  | Some i when String.length s > 2 && s.[0] = '-' && s.[1] = '-' ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  | _ -> (s, None)

let find_arg args name = List.find_opt (fun a -> List.mem name a.names) args

let parse (args : arg list) (argv : string list) : outcome =
  let rec go acc = function
    | [] -> Parsed (List.rev acc)
    | "--" :: rest -> Parsed (List.rev_append acc rest)
    | ("--help" | "-h") :: _ -> Help
    | tok :: rest when is_option tok -> (
        let name, inline = split_eq tok in
        match find_arg args name with
        | None -> Failed (Printf.sprintf "unknown option %s" name)
        | Some { handler = Flag f; _ } -> (
            match inline with
            | Some _ -> Failed (Printf.sprintf "option %s takes no value" name)
            | None ->
                f ();
                go acc rest)
        | Some { handler = Value (docv, set); _ } -> (
            let consume v rest =
              match set v with
              | Ok () -> go acc rest
              | Error why -> Failed (Printf.sprintf "option %s: %s" name why)
            in
            match inline with
            | Some v -> consume v rest
            | None -> (
                match rest with
                | v :: rest' -> consume v rest'
                | [] -> Failed (Printf.sprintf "option %s requires a %s value" name docv))))
    | tok :: rest -> go (tok :: acc) rest
  in
  go [] argv

let usage ~prog ?positional ~summary (args : arg list) =
  let buf = Buffer.create 512 in
  let pos = match positional with Some p -> " " ^ p | None -> "" in
  Buffer.add_string buf (Printf.sprintf "usage: %s [OPTION]...%s\n\n%s\n" prog pos summary);
  if args <> [] then begin
    Buffer.add_string buf "\noptions:\n";
    List.iter
      (fun a ->
        let names = String.concat ", " a.names in
        let left =
          match a.handler with
          | Flag _ -> names
          | Value (docv, _) -> Printf.sprintf "%s %s" names docv
        in
        Buffer.add_string buf (Printf.sprintf "  %-28s %s\n" left a.doc))
      args
  end;
  Buffer.add_string buf "  --help, -h                   show this help\n";
  Buffer.contents buf
