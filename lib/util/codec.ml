(* Binary artifact serializer for the on-disk store.

   Design goals, in order: (1) never trust bytes read back from disk —
   every frame carries a magic, a format version, an artifact kind, an
   artifact version and an FNV-1a checksum of the payload, and every
   primitive read is bounds-checked; (2) bit-exact floats — values cross
   the codec as their IEEE-754 bit patterns, so a factor loaded from a
   warm cache reproduces a cold run bitwise; (3) zero dependencies.

   Wire format of a frame:

     magic   "OPRA"            4 bytes
     format  u8 = 1            codec layout version (this file)
     kind    string            artifact kind tag, e.g. "cholesky"
     version i64le             artifact schema version (caller-owned)
     length  i64le             payload byte count
     check   i64le             FNV-1a 64 of the payload bytes
     payload bytes

   Primitives are fixed-width little-endian (i64 for ints, IEEE bits for
   floats, length-prefixed strings) — simple, portable across OCaml
   versions, and trivially checkable. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ---- encoder -------------------------------------------------------- *)

type encoder = Buffer.t

let encoder ?(initial_size = 1024) () = Buffer.create initial_size

let contents (e : encoder) = Buffer.contents e

let write_i64 (e : encoder) (v : int64) = Buffer.add_int64_le e v

let write_int (e : encoder) (v : int) = write_i64 e (Int64.of_int v)

let write_bool (e : encoder) b = Buffer.add_char e (if b then '\001' else '\000')

let write_float (e : encoder) (v : float) = write_i64 e (Int64.bits_of_float v)

let write_string (e : encoder) (s : string) =
  write_int e (String.length s);
  Buffer.add_string e s

let write_int_array (e : encoder) (a : int array) =
  write_int e (Array.length a);
  Array.iter (fun v -> write_int e v) a

let write_float_array (e : encoder) (a : float array) =
  write_int e (Array.length a);
  Array.iter (fun v -> write_float e v) a

(* ---- decoder -------------------------------------------------------- *)

type decoder = { s : string; mutable pos : int; limit : int }

let decoder_of_string ?(pos = 0) ?limit s =
  let limit = match limit with Some l -> l | None -> String.length s in
  if pos < 0 || limit > String.length s || pos > limit then
    invalid_arg "Codec.decoder_of_string: bad bounds";
  { s; pos; limit }

let remaining d = d.limit - d.pos

let need d n =
  if n < 0 || remaining d < n then
    corrupt "truncated artifact: need %d bytes at offset %d, have %d" n d.pos (remaining d)

let read_i64 d =
  need d 8;
  let v = String.get_int64_le d.s d.pos in
  d.pos <- d.pos + 8;
  v

let max_int64 = Int64.of_int max_int

let min_int64 = Int64.of_int min_int

let read_int d =
  let v = read_i64 d in
  if Int64.compare v min_int64 < 0 || Int64.compare v max_int64 > 0 then
    corrupt "integer out of native range at offset %d" (d.pos - 8);
  Int64.to_int v

let read_bool d =
  need d 1;
  let c = d.s.[d.pos] in
  d.pos <- d.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> corrupt "bad boolean byte %d at offset %d" (Char.code c) (d.pos - 1)

let read_float d = Int64.float_of_bits (read_i64 d)

let read_length d what =
  let n = read_int d in
  if n < 0 then corrupt "negative %s length %d at offset %d" what n (d.pos - 8);
  n

let read_string d =
  let n = read_length d "string" in
  need d n;
  let s = String.sub d.s d.pos n in
  d.pos <- d.pos + n;
  s

let read_int_array d =
  let n = read_length d "array" in
  (* Each element needs 8 bytes; reject absurd lengths before allocating. *)
  need d (n * 8);
  Array.init n (fun _ -> read_int d)

let read_float_array d =
  let n = read_length d "array" in
  need d (n * 8);
  Array.init n (fun _ -> read_float d)

let expect_end d =
  if remaining d <> 0 then corrupt "trailing garbage: %d bytes left after payload" (remaining d)

(* ---- checksum ------------------------------------------------------- *)

(* FNV-1a 64-bit.  Not cryptographic — it guards against torn writes,
   truncation and bit rot, not adversaries.  [fnv1a_init]/[fnv1a_fold]
   expose the running form so file readers can checksum each chunk as it
   comes off the descriptor instead of re-walking the whole payload in a
   second pass. *)
let fnv1a_init = 0xCBF29CE484222325L

let fnv1a_byte h c = Int64.mul (Int64.logxor h (Int64.of_int c)) 0x100000001B3L

let fnv1a_fold h (b : Bytes.t) pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Codec.fnv1a_fold: chunk out of bounds";
  let h = ref h in
  for i = pos to pos + len - 1 do
    (* opera-lint: unsafe — bounds checked for the whole chunk above *)
    h := fnv1a_byte !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h

let fnv1a ?(pos = 0) ?len (s : string) =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let h = ref fnv1a_init in
  for i = pos to pos + len - 1 do
    h := fnv1a_byte !h (Char.code s.[i])
  done;
  !h

(* ---- framing -------------------------------------------------------- *)

let magic = "OPRA"

let format_version = 1

let frame ~kind ~version (write : encoder -> unit) =
  let payload = encoder ~initial_size:4096 () in
  write payload;
  let payload = Buffer.contents payload in
  let e = encoder ~initial_size:(String.length payload + 64) () in
  Buffer.add_string e magic;
  Buffer.add_char e (Char.chr format_version);
  write_string e kind;
  write_int e version;
  write_int e (String.length payload);
  write_i64 e (fnv1a payload);
  Buffer.add_string e payload;
  Buffer.contents e

let unframe ~kind ~version (s : string) =
  let d = decoder_of_string s in
  need d (String.length magic + 1);
  let m = String.sub s 0 (String.length magic) in
  if m <> magic then corrupt "bad magic %S (want %S)" m magic;
  d.pos <- String.length magic;
  let fmt = Char.code s.[d.pos] in
  d.pos <- d.pos + 1;
  if fmt <> format_version then corrupt "unsupported codec format %d (want %d)" fmt format_version;
  let k = read_string d in
  if k <> kind then corrupt "artifact kind %S does not match %S" k kind;
  let v = read_int d in
  if v <> version then corrupt "artifact version %d does not match %d" v version;
  let len = read_length d "payload" in
  let check = read_i64 d in
  if remaining d <> len then
    corrupt "payload length %d does not match frame (%d bytes present)" len (remaining d);
  let actual = fnv1a ~pos:d.pos ~len s in
  if not (Int64.equal check actual) then
    corrupt "checksum mismatch (stored %Lx, computed %Lx)" check actual;
  decoder_of_string ~pos:d.pos ~limit:(d.pos + len) s

(* ---- files ---------------------------------------------------------- *)

(* Read once at module init (single-domain by construction): umask can
   only be queried by setting it, which would race once domains fan
   out. *)
let process_umask =
  let m = Unix.umask 0o022 in
  ignore (Unix.umask m);
  m

let write_file path (data : string) =
  (* Atomic-ish: write a sibling temp file, then rename over the target,
     so a crash mid-write never leaves a half-frame under the final name
     (the checksum would catch it anyway; this avoids even transient
     corruption being visible). *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "codec" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc data;
         (* flush errors must propagate, not be swallowed by the
            finally's noerr close; closing twice is harmless *)
         close_out oc)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* temp_file creates mode 0600; artifacts are shared-cache currency
     (other users/hosts mount the dir read-only), so widen to the usual
     0644 modulo the process umask before publishing the name. *)
  (try Unix.chmod tmp (0o644 land lnot process_umask) with Unix.Unix_error _ -> ());
  Sys.rename tmp path

let read_file path =
  (* [None] means only "no file to read" (open failed).  A file that
     opens but is empty or shrinks mid-read is damage, and reports as
     [Corrupt] so callers take their drop-and-rebuild path instead of
     mistaking it for a clean miss. *)
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len = 0 then corrupt "artifact file %s is empty" path;
          match really_input_string ic len with
          | s -> Some s
          | exception End_of_file ->
              corrupt "artifact file %s truncated below its %d bytes" path len)

(* ---- streaming frame reads ------------------------------------------

   [read_file] + [unframe] holds the whole file (header + payload) while
   the checksum re-walks it and the decoder reads out of it — a large
   artifact is effectively resident twice during the most
   memory-sensitive moment of a warm start.  [read_frame] reads the
   header fields straight off the channel, then reads the payload into
   its one final buffer in chunks, folding the FNV-1a checksum over each
   chunk as it lands.  One pass, one allocation, header bytes never
   retained. *)

let read_chunk_size = 65536

let input_exactly ic path buf pos len =
  match really_input ic buf pos len with
  | () -> ()
  | exception End_of_file -> corrupt "artifact file %s truncated mid-read" path

(* Header fields shared by both formats: magic, format byte, kind,
   version, payload length, payload checksum.  Returns the format byte;
   the caller dispatches on it. *)
let read_header ic path ~kind ~version =
  let fixed = Bytes.create 5 in
  input_exactly ic path fixed 0 5;
  let m = Bytes.sub_string fixed 0 4 in
  if m <> magic then corrupt "bad magic %S (want %S)" m magic;
  let fmt = Char.code (Bytes.get fixed 4) in
  let word = Bytes.create 8 in
  let read_i64_ch () =
    input_exactly ic path word 0 8;
    Bytes.get_int64_le word 0
  in
  let read_int_ch () =
    let v = read_i64_ch () in
    if Int64.compare v min_int64 < 0 || Int64.compare v max_int64 > 0 then
      corrupt "integer out of native range in %s header" path;
    Int64.to_int v
  in
  let klen = read_int_ch () in
  if klen < 0 || klen > 4096 then corrupt "implausible kind length %d in %s" klen path;
  let kbuf = Bytes.create klen in
  input_exactly ic path kbuf 0 klen;
  let k = Bytes.unsafe_to_string kbuf in
  if k <> kind then corrupt "artifact kind %S does not match %S" k kind;
  let v = read_int_ch () in
  if v <> version then corrupt "artifact version %d does not match %d" v version;
  let len = read_int_ch () in
  if len < 0 then corrupt "negative payload length %d in %s" len path;
  let check = read_i64_ch () in
  (fmt, len, check)

(* Byte count of the frame header for a given kind tag: magic (4) +
   format (1) + kind (8 + klen) + version (8) + length (8) + check (8). *)
let header_bytes ~kind = 37 + String.length kind

let read_payload_checked ic path len check =
  let payload = Bytes.create len in
  let h = ref fnv1a_init in
  let pos = ref 0 in
  while !pos < len do
    let n = Int.min read_chunk_size (len - !pos) in
    input_exactly ic path payload !pos n;
    h := fnv1a_fold !h payload !pos n;
    pos := !pos + n
  done;
  if not (Int64.equal check !h) then
    corrupt "checksum mismatch in %s (stored %Lx, computed %Lx)" path check !h;
  Bytes.unsafe_to_string payload

let read_frame ~kind ~version path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let total = in_channel_length ic in
          if total = 0 then corrupt "artifact file %s is empty" path;
          let fmt, len, check = read_header ic path ~kind ~version in
          if fmt <> format_version then
            corrupt "unsupported codec format %d (want %d)" fmt format_version;
          if total - header_bytes ~kind <> len then
            corrupt "payload length %d does not match frame (%d bytes present)" len
              (total - header_bytes ~kind);
          Some (decoder_of_string (read_payload_checked ic path len check)))

(* ---- v2 frames: section-table payloads, mmap-decodable ---------------

   A v2 frame carries the same header as v1 (format byte 2) but lays its
   payload out so the bulk numeric data never needs an in-memory decode:

     prelude   u8 word_bits | u8 endian (1 = LE) | 6 pad bytes
     nsect     i64le
     table     nsect x { tag i64 (1 = int, 2 = float) | off i64 | count i64 }
     meta      i64le length + encoder bytes (scalars, small arrays)
     sections  raw i64le / IEEE-754le element runs, each padded so its
               FILE offset (header + payload offset) is 8-aligned

   On a 64-bit little-endian host the on-disk element bytes coincide
   with the in-memory layout of an [int]/[float64] Bigarray, so a reader
   can hand out [Unix.map_file]-backed views over the file instead of
   decoding gigabytes; the checksum is verified over the mapped region
   first.  Other hosts (or small files, where setup cost beats page
   mapping) take the copying fallback, which decodes the same bytes
   portably. *)

let format_version_v2 = 2

type fsection = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type isection = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type section_data =
  | F_arr of float array
  | I_arr of int array
  | F_big of fsection
  | I_big of isection

type section = Ints of isection | Floats of fsection

type sections = { mapped : bool; entries : section array }

let sections_mapped s = s.mapped

let section_count s = Array.length s.entries

let section_float s i =
  if i < 0 || i >= Array.length s.entries then
    corrupt "float section %d out of range (have %d)" i (Array.length s.entries);
  match s.entries.(i) with
  | Floats f -> f
  | Ints _ -> corrupt "section %d holds ints, not floats" i

let section_int s i =
  if i < 0 || i >= Array.length s.entries then
    corrupt "int section %d out of range (have %d)" i (Array.length s.entries);
  match s.entries.(i) with
  | Ints a -> a
  | Floats _ -> corrupt "section %d holds floats, not ints" i

let section_len = function
  | F_arr a -> Array.length a
  | I_arr a -> Array.length a
  | F_big b -> Bigarray.Array1.dim b
  | I_big b -> Bigarray.Array1.dim b

let section_tag = function F_arr _ | F_big _ -> 2L | I_arr _ | I_big _ -> 1L

let frame_v2 ~kind ~version ~(meta : encoder -> unit) ~(sections : section_data list) =
  let meta_buf = encoder ~initial_size:1024 () in
  meta meta_buf;
  let meta_str = Buffer.contents meta_buf in
  let sections = Array.of_list sections in
  let nsect = Array.length sections in
  let payload_off = header_bytes ~kind in
  (* Lay offsets out first: table, meta, then the 8-file-aligned runs. *)
  let table_off = 16 in
  let meta_off = table_off + (24 * nsect) in
  let cursor = ref (meta_off + 8 + String.length meta_str) in
  let offs = Array.make nsect 0 in
  Array.iteri
    (fun i s ->
      let pad = (8 - ((payload_off + !cursor) mod 8)) mod 8 in
      offs.(i) <- !cursor + pad;
      cursor := offs.(i) + (8 * section_len s))
    sections;
  let payload_len = !cursor in
  let e = encoder ~initial_size:(payload_len + 64) () in
  Buffer.add_char e (Char.chr Sys.int_size);
  Buffer.add_char e (if Sys.big_endian then '\000' else '\001');
  Buffer.add_string e "\000\000\000\000\000\000";
  write_int e nsect;
  Array.iteri
    (fun i s ->
      write_i64 e (section_tag s);
      write_int e offs.(i);
      write_int e (section_len s))
    sections;
  write_string e meta_str;
  Array.iteri
    (fun i s ->
      for _ = Buffer.length e to offs.(i) - 1 do
        Buffer.add_char e '\000'
      done;
      match s with
      | F_arr a -> Array.iter (fun v -> write_float e v) a
      | I_arr a -> Array.iter (fun v -> write_int e v) a
      | F_big b ->
          for j = 0 to Bigarray.Array1.dim b - 1 do
            write_float e (Bigarray.Array1.unsafe_get b j)
          done
      | I_big b ->
          for j = 0 to Bigarray.Array1.dim b - 1 do
            write_int e (Bigarray.Array1.unsafe_get b j)
          done)
    sections;
  let payload = Buffer.contents e in
  let f = encoder ~initial_size:(String.length payload + 64) () in
  Buffer.add_string f magic;
  Buffer.add_char f (Char.chr format_version_v2);
  write_string f kind;
  write_int f version;
  write_int f (String.length payload);
  write_i64 f (fnv1a payload);
  Buffer.add_string f payload;
  Buffer.contents f

(* Parse the prelude + section table out of a decoder positioned at the
   start of a v2 payload.  Returns (word_bits, little_endian, table)
   where table entries are (tag, payload offset, element count). *)
let read_v2_table d payload_len =
  need d 16;
  let word_bits = Char.code d.s.[d.pos] in
  let little = d.s.[d.pos + 1] = '\001' in
  d.pos <- d.pos + 8;
  let nsect = read_length d "section table" in
  if nsect > 4096 then corrupt "implausible section count %d" nsect;
  let table =
    Array.init nsect (fun _ ->
        let tag = read_i64 d in
        let off = read_length d "section offset" in
        let count = read_length d "section" in
        if tag <> 1L && tag <> 2L then corrupt "unknown section tag %Ld" tag;
        if off + (8 * count) > payload_len then
          corrupt "section overruns payload (%d + %d elems > %d)" off count payload_len;
        (tag, off, count))
  in
  (word_bits, little, table)

(* Copying decode of the section runs — the portable fallback. *)
let copy_sections (payload : string) table =
  Array.map
    (fun (tag, off, count) ->
      if tag = 2L then begin
        let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout count in
        for j = 0 to count - 1 do
          Bigarray.Array1.unsafe_set b j
            (Int64.float_of_bits (String.get_int64_le payload (off + (8 * j))))
        done;
        Floats b
      end
      else begin
        let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout count in
        for j = 0 to count - 1 do
          let v = String.get_int64_le payload (off + (8 * j)) in
          if Int64.compare v min_int64 < 0 || Int64.compare v max_int64 > 0 then
            corrupt "int section element out of native range at offset %d" (off + (8 * j));
          Bigarray.Array1.unsafe_set b j (Int64.to_int v)
        done;
        Ints b
      end)
    table

(* The mapped layout only coincides with the wire bytes on a 64-bit
   little-endian host reading a frame written by one. *)
let can_map ~word_bits ~little =
  little && (not Sys.big_endian) && word_bits = Sys.int_size && Sys.int_size = 63

let fnv1a_map (m : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t)
    pos len =
  let h = ref fnv1a_init in
  for i = pos to pos + len - 1 do
    h := fnv1a_byte !h (Char.code (Bigarray.Array1.unsafe_get m i))
  done;
  !h

let string_of_map m pos len =
  String.init len (fun i -> Bigarray.Array1.unsafe_get m (pos + i))

(* Mapped load: one whole-file char view for validation and the small
   parts, then one typed view per section.  The fd is closed as soon as
   the views exist — mappings survive the descriptor. *)
let map_frame_v2 ~kind ~version path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let total = (Unix.fstat fd).Unix.st_size in
      let whole =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| total |])
      in
      let hdr_len = header_bytes ~kind in
      if total < hdr_len then corrupt "artifact file %s truncated below its header" path;
      (* Validate the header out of the mapping. *)
      let header = string_of_map whole 0 hdr_len in
      let d = decoder_of_string header in
      d.pos <- 4;
      if String.sub header 0 4 <> magic then corrupt "bad magic in %s" path;
      let fmt = Char.code header.[4] in
      d.pos <- 5;
      if fmt <> format_version_v2 then corrupt "format %d is not v2" fmt;
      let k = read_string d in
      if k <> kind then corrupt "artifact kind %S does not match %S" k kind;
      let v = read_int d in
      if v <> version then corrupt "artifact version %d does not match %d" v version;
      let len = read_length d "payload" in
      let check = read_i64 d in
      if total - hdr_len <> len then
        corrupt "payload length %d does not match frame (%d bytes present)" len
          (total - hdr_len);
      (* Checksum over the mapped region before trusting any of it. *)
      let actual = fnv1a_map whole hdr_len len in
      if not (Int64.equal check actual) then
        corrupt "checksum mismatch in %s (stored %Lx, computed %Lx)" path check actual;
      (* Prelude + table, read through a copied prefix (it is tiny). *)
      let prefix_len = Int.min len 65536 in
      let prefix = string_of_map whole hdr_len prefix_len in
      let pd = decoder_of_string prefix in
      let word_bits, little, table = read_v2_table pd len in
      if not (can_map ~word_bits ~little) then None
      else begin
        let meta_len = read_length pd "meta" in
        let meta_off = pd.pos in
        let meta =
          if meta_off + meta_len <= prefix_len then String.sub prefix meta_off meta_len
          else string_of_map whole (hdr_len + meta_off) meta_len
        in
        let entries =
          Array.map
            (fun (tag, off, count) ->
              let pos = hdr_len + off in
              if pos mod 8 <> 0 then corrupt "section misaligned at file offset %d" pos;
              if tag = 2L then
                Floats
                  (Bigarray.array1_of_genarray
                     (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.float64
                        Bigarray.c_layout false [| count |]))
              else
                Ints
                  (Bigarray.array1_of_genarray
                     (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int
                        Bigarray.c_layout false [| count |])))
            table
        in
        Some (decoder_of_string meta, { mapped = true; entries })
      end)

let read_frame_v2 ?(map = true) ~kind ~version path =
  if not (Sys.file_exists path) then None
  else begin
    let mapped =
      if map then
        match map_frame_v2 ~kind ~version path with
        | r -> r
        | exception Unix.Unix_error _ -> None
      else None
    in
    match mapped with
    | Some (meta, s) -> Some (meta, s)
    | None -> (
        (* Copying fallback: stream-read + checksum, then decode runs. *)
        match open_in_bin path with
        | exception Sys_error _ -> None
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let total = in_channel_length ic in
                if total = 0 then corrupt "artifact file %s is empty" path;
                let fmt, len, check = read_header ic path ~kind ~version in
                if fmt <> format_version_v2 then
                  corrupt "unsupported codec format %d (want %d)" fmt format_version_v2;
                if total - header_bytes ~kind <> len then
                  corrupt "payload length %d does not match frame" len;
                let payload = read_payload_checked ic path len check in
                let pd = decoder_of_string payload in
                let _, _, table = read_v2_table pd len in
                let meta_len = read_length pd "meta" in
                let meta = String.sub payload pd.pos meta_len in
                let entries = copy_sections payload table in
                Some (decoder_of_string meta, { mapped = false; entries })))
  end
