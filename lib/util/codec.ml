(* Binary artifact serializer for the on-disk store.

   Design goals, in order: (1) never trust bytes read back from disk —
   every frame carries a magic, a format version, an artifact kind, an
   artifact version and an FNV-1a checksum of the payload, and every
   primitive read is bounds-checked; (2) bit-exact floats — values cross
   the codec as their IEEE-754 bit patterns, so a factor loaded from a
   warm cache reproduces a cold run bitwise; (3) zero dependencies.

   Wire format of a frame:

     magic   "OPRA"            4 bytes
     format  u8 = 1            codec layout version (this file)
     kind    string            artifact kind tag, e.g. "cholesky"
     version i64le             artifact schema version (caller-owned)
     length  i64le             payload byte count
     check   i64le             FNV-1a 64 of the payload bytes
     payload bytes

   Primitives are fixed-width little-endian (i64 for ints, IEEE bits for
   floats, length-prefixed strings) — simple, portable across OCaml
   versions, and trivially checkable. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ---- encoder -------------------------------------------------------- *)

type encoder = Buffer.t

let encoder ?(initial_size = 1024) () = Buffer.create initial_size

let contents (e : encoder) = Buffer.contents e

let write_i64 (e : encoder) (v : int64) = Buffer.add_int64_le e v

let write_int (e : encoder) (v : int) = write_i64 e (Int64.of_int v)

let write_bool (e : encoder) b = Buffer.add_char e (if b then '\001' else '\000')

let write_float (e : encoder) (v : float) = write_i64 e (Int64.bits_of_float v)

let write_string (e : encoder) (s : string) =
  write_int e (String.length s);
  Buffer.add_string e s

let write_int_array (e : encoder) (a : int array) =
  write_int e (Array.length a);
  Array.iter (fun v -> write_int e v) a

let write_float_array (e : encoder) (a : float array) =
  write_int e (Array.length a);
  Array.iter (fun v -> write_float e v) a

(* ---- decoder -------------------------------------------------------- *)

type decoder = { s : string; mutable pos : int; limit : int }

let decoder_of_string ?(pos = 0) ?limit s =
  let limit = match limit with Some l -> l | None -> String.length s in
  if pos < 0 || limit > String.length s || pos > limit then
    invalid_arg "Codec.decoder_of_string: bad bounds";
  { s; pos; limit }

let remaining d = d.limit - d.pos

let need d n =
  if n < 0 || remaining d < n then
    corrupt "truncated artifact: need %d bytes at offset %d, have %d" n d.pos (remaining d)

let read_i64 d =
  need d 8;
  let v = String.get_int64_le d.s d.pos in
  d.pos <- d.pos + 8;
  v

let max_int64 = Int64.of_int max_int

let min_int64 = Int64.of_int min_int

let read_int d =
  let v = read_i64 d in
  if Int64.compare v min_int64 < 0 || Int64.compare v max_int64 > 0 then
    corrupt "integer out of native range at offset %d" (d.pos - 8);
  Int64.to_int v

let read_bool d =
  need d 1;
  let c = d.s.[d.pos] in
  d.pos <- d.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> corrupt "bad boolean byte %d at offset %d" (Char.code c) (d.pos - 1)

let read_float d = Int64.float_of_bits (read_i64 d)

let read_length d what =
  let n = read_int d in
  if n < 0 then corrupt "negative %s length %d at offset %d" what n (d.pos - 8);
  n

let read_string d =
  let n = read_length d "string" in
  need d n;
  let s = String.sub d.s d.pos n in
  d.pos <- d.pos + n;
  s

let read_int_array d =
  let n = read_length d "array" in
  (* Each element needs 8 bytes; reject absurd lengths before allocating. *)
  need d (n * 8);
  Array.init n (fun _ -> read_int d)

let read_float_array d =
  let n = read_length d "array" in
  need d (n * 8);
  Array.init n (fun _ -> read_float d)

let expect_end d =
  if remaining d <> 0 then corrupt "trailing garbage: %d bytes left after payload" (remaining d)

(* ---- checksum ------------------------------------------------------- *)

(* FNV-1a 64-bit over a substring.  Not cryptographic — it guards against
   torn writes, truncation and bit rot, not adversaries. *)
let fnv1a ?(pos = 0) ?len (s : string) =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let h = ref 0xCBF29CE484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h 0x100000001B3L
  done;
  !h

(* ---- framing -------------------------------------------------------- *)

let magic = "OPRA"

let format_version = 1

let frame ~kind ~version (write : encoder -> unit) =
  let payload = encoder ~initial_size:4096 () in
  write payload;
  let payload = Buffer.contents payload in
  let e = encoder ~initial_size:(String.length payload + 64) () in
  Buffer.add_string e magic;
  Buffer.add_char e (Char.chr format_version);
  write_string e kind;
  write_int e version;
  write_int e (String.length payload);
  write_i64 e (fnv1a payload);
  Buffer.add_string e payload;
  Buffer.contents e

let unframe ~kind ~version (s : string) =
  let d = decoder_of_string s in
  need d (String.length magic + 1);
  let m = String.sub s 0 (String.length magic) in
  if m <> magic then corrupt "bad magic %S (want %S)" m magic;
  d.pos <- String.length magic;
  let fmt = Char.code s.[d.pos] in
  d.pos <- d.pos + 1;
  if fmt <> format_version then corrupt "unsupported codec format %d (want %d)" fmt format_version;
  let k = read_string d in
  if k <> kind then corrupt "artifact kind %S does not match %S" k kind;
  let v = read_int d in
  if v <> version then corrupt "artifact version %d does not match %d" v version;
  let len = read_length d "payload" in
  let check = read_i64 d in
  if remaining d <> len then
    corrupt "payload length %d does not match frame (%d bytes present)" len (remaining d);
  let actual = fnv1a ~pos:d.pos ~len s in
  if not (Int64.equal check actual) then
    corrupt "checksum mismatch (stored %Lx, computed %Lx)" check actual;
  decoder_of_string ~pos:d.pos ~limit:(d.pos + len) s

(* ---- files ---------------------------------------------------------- *)

(* Read once at module init (single-domain by construction): umask can
   only be queried by setting it, which would race once domains fan
   out. *)
let process_umask =
  let m = Unix.umask 0o022 in
  ignore (Unix.umask m);
  m

let write_file path (data : string) =
  (* Atomic-ish: write a sibling temp file, then rename over the target,
     so a crash mid-write never leaves a half-frame under the final name
     (the checksum would catch it anyway; this avoids even transient
     corruption being visible). *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "codec" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc data;
         (* flush errors must propagate, not be swallowed by the
            finally's noerr close; closing twice is harmless *)
         close_out oc)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* temp_file creates mode 0600; artifacts are shared-cache currency
     (other users/hosts mount the dir read-only), so widen to the usual
     0644 modulo the process umask before publishing the name. *)
  (try Unix.chmod tmp (0o644 land lnot process_umask) with Unix.Unix_error _ -> ());
  Sys.rename tmp path

let read_file path =
  (* [None] means only "no file to read" (open failed).  A file that
     opens but is empty or shrinks mid-read is damage, and reports as
     [Corrupt] so callers take their drop-and-rebuild path instead of
     mistaking it for a clean miss. *)
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len = 0 then corrupt "artifact file %s is empty" path;
          match really_input_string ic len with
          | s -> Some s
          | exception End_of_file ->
              corrupt "artifact file %s truncated below its %d bytes" path len)
