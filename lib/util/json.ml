(* Minimal JSON parser — just enough to validate and introspect the
   metrics / bench files this repo emits (objects, arrays, strings with
   the common escapes, numbers, booleans, null).  No external deps. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let parse_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = lit then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance st; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance st; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance st; loop ()
        | Some '/' -> Buffer.add_char buf '/'; advance st; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance st; loop ()
        | Some '"' -> Buffer.add_char buf '"'; advance st; loop ()
        | Some 'u' ->
            (* \uXXXX: decode to UTF-8 (no surrogate-pair handling; the
               files we parse are ASCII). *)
            advance st;
            if st.pos + 4 > String.length st.s then error st "truncated \\u escape";
            let hex = String.sub st.s st.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> error st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> error st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string_raw st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string_raw st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | _ -> error st "expected ',' or '}'"
    in
    members []
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
      | _ -> error st "expected ',' or ']'"
    in
    elements []
  end

let parse s =
  let st = { s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing data at offset %d" st.pos)
    else Ok v
  with Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

(* ---- writer --------------------------------------------------------- *)

(* Every control character below 0x20 is escaped (named escapes where JSON
   has them, \u00XX otherwise), so [parse (to_string (Str s)) = Ok (Str s)]
   for arbitrary byte strings — the reader/writer round-trip the store and
   the batch engine rely on.  Bytes >= 0x80 pass through verbatim. *)
let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_into buf s;
  Buffer.contents buf

(* Deterministic number rendering: integral values print without a
   fractional part, everything else with 17 significant digits (enough
   for float_of_string to reproduce the exact double).  JSON has no
   non-finite numbers; they render as null. *)
let number_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number_to_string v)
  | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write_into buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf key;
          Buffer.add_string buf "\":";
          write_into buf v)
        fields;
      Buffer.add_char buf '}'

let render t =
  let buf = Buffer.create 256 in
  write_into buf t;
  Buffer.contents buf

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

let keys = function Obj fields -> List.map fst fields | _ -> []
