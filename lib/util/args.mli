(** Declarative command-line flag parsing for subcommand CLIs.

    Pure: {!parse} returns an {!outcome} and {!usage} returns a string;
    printing and process exit stay in the executable.  This gives every
    subcommand the same error discipline — unknown flags and malformed
    values produce [Failed], which the CLI maps to exit code 2 with a
    message on stderr, and [--help]/[-h] produce [Help]. *)

type handler =
  | Flag of (unit -> unit)  (** takes no value *)
  | Value of string * (string -> (unit, string) result)
      (** docv and setter; [Error why] rejects the value *)

type arg = { names : string list; handler : handler; doc : string }

type outcome =
  | Parsed of string list  (** leftover positional arguments, in order *)
  | Help  (** [--help] or [-h] was present *)
  | Failed of string  (** parse error message (no prefix, no newline) *)

(** {1 Arg builders} *)

val flag : string list -> doc:string -> bool ref -> arg
(** Presence sets the ref to [true]. *)

val unit : string list -> doc:string -> (unit -> unit) -> arg

val value : string list -> docv:string -> doc:string -> (string -> (unit, string) result) -> arg

val int : string list -> doc:string -> int ref -> arg

val float : string list -> doc:string -> float ref -> arg

val string : string list -> docv:string -> doc:string -> string ref -> arg

val string_opt : string list -> docv:string -> doc:string -> string option ref -> arg

val enum : string list -> doc:string -> (string * 'a) list -> 'a ref -> arg
(** Case-insensitive choice among the given names. *)

(** {1 Parsing} *)

val parse : arg list -> string list -> outcome
(** Processes [--name value], [--name=value] and grouped positionals;
    [--] ends option processing.  Setters run in argument order; on
    [Failed] earlier setters have already fired (the CLI exits anyway). *)

val usage : prog:string -> ?positional:string -> summary:string -> arg list -> string
(** Rendered help text, one line per option plus the implicit [--help]. *)
