(** Intent-revealing float comparisons.

    opera-lint (R1, [exact-float]) bans raw [=] / [<>] / [==] on floats
    inside [lib/]: Galerkin/PCE kernels accumulate rounding, so an exact
    compare on a {e computed} value is a silent-failure bug, while exact
    compares on {e structural} values (stored zeros, sentinel signs) are
    deliberate and should say so.  These helpers name the intent; the
    single waived raw compare lives in the implementation. *)

val equal_exact : float -> float -> bool
(** Bitwise-semantics IEEE equality ([a = b]).  Use only for structural
    values that were stored, never computed (e.g. a sign parsed as
    [1.0] / [-1.0]).  [nan] is equal to nothing, including itself. *)

val is_zero : float -> bool
(** [equal_exact x 0.0] — guard checks before division and
    structural-sparsity tests.  [is_zero (-0.0) = true];
    [is_zero nan = false], so NaN propagates through guarded divides
    instead of being silently zeroed. *)

val nonzero : float -> bool
(** [not (is_zero x)] — skip-zero-work sparsity checks in kernels. *)

val approx_equal : ?rtol:float -> ?atol:float -> float -> float -> bool
(** Tolerance comparison for computed quantities:
    [|a - b| <= atol + rtol * max |a| |b|].  Defaults [rtol = 1e-12],
    [atol = 0.0]. *)
