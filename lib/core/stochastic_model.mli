(** The stochastic MNA system [ (G(xi) + s C(xi)) x(s, xi) = U(s, xi) ]
    expanded over a chaos basis — the paper's Eq. (12)–(14).

    Matrices and excitations are stored as short lists of
    [(basis rank, value)] terms; rank 0 is the nominal part, rank of a
    degree-1 index is the coefficient on that raw random variable. *)

type t = {
  basis : Polychaos.Basis.t;
  tp : Polychaos.Triple_product.t;
  n : int;  (** node unknowns of the underlying grid *)
  g_terms : (int * Linalg.Sparse.t) list;
  c_terms : (int * Linalg.Sparse.t) list;
  u_static_terms : (int * Linalg.Vec.t) list;
      (** time-invariant excitation (pad injections) per basis rank *)
  u_drain_coefs : (int * float) list;
      (** the block drain current profile [i(t)] enters the excitation of
          rank k scaled by this coefficient *)
  mna : Powergrid.Mna.t;
  vdd : float;
}

val build :
  ?order:int ->
  ?tp:(Polychaos.Basis.t -> Polychaos.Triple_product.t) ->
  Varmodel.t ->
  vdd:float ->
  Powergrid.Circuit.t ->
  t
(** Expand a circuit under a variation model into chaos form.
    [order] (default 2) is the truncation order of the response basis.
    [tp] supplies the triple-product tensor for the constructed basis
    (default {!Polychaos.Triple_product.create}) — the hook the artifact
    store uses to serve a cached tensor instead of recomputing it.
    In [Grouped_wires k] mode, wire resistors are assigned to [k] vertical
    stripes by their first node's index. *)

val g_of_sample : t -> float array -> Linalg.Sparse.t
(** [g_of_sample m xi]: the conductance realization [G(xi)] — used by the
    Monte-Carlo baseline so both methods solve the same stochastic system. *)

val c_of_sample : t -> float array -> Linalg.Sparse.t

val u_of_sample : t -> float array -> float -> Linalg.Vec.t
(** Excitation realization [U(xi, t)]. *)

val xi_rank : t -> int -> int
(** Basis rank of the degree-1 index in dimension [d]. *)

val node_pattern : t -> Linalg.Sparse.t
(** Structural union (absolute-value sum) of every conductance and
    capacitance term — the node connectivity graph shared by all
    realizations.  Fill-reducing orderings are computed once on this
    pattern and reused across Monte-Carlo samples and Galerkin blocks. *)

val drain_profile_into : t -> float -> Linalg.Vec.t -> unit
(** The nominal drain-current injection [i(t)] (negative at drain nodes),
    written over the given vector. *)
