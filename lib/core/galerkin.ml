type solver =
  | Direct
  | Mean_pcg of { tol : float; max_iter : int }
  | Matrix_free_pcg of { tol : float; max_iter : int }
  | St of { tol : float; max_refine : int; candidates : int; seed : int64 }

let default_st = St { tol = 1e-10; max_refine = 100; candidates = 0; seed = 1L }

type policy = Fail | Warn | Fallback

exception Solver_diverged of string * Linalg.Solve_report.t

let () =
  Printexc.register_printer (function
    | Solver_diverged (context, report) ->
        Some
          (Printf.sprintf "Galerkin.Solver_diverged(%s: %s)" context
             (Linalg.Solve_report.summary report))
    | _ -> None)

type options = {
  solver : solver;
  ordering : Linalg.Ordering.kind;
  precond : Linalg.Precond.kind;
      (* Mean-block backend for the iterative solvers: exact Cholesky
         (default, historical behavior bitwise), ic0, amg, or auto
         (switches on n).  Ignored by Direct. *)
  probes : int array;
  scheme : Powergrid.Transient.scheme;
  domains : int;
  policy : policy;
  metrics : Util.Metrics.t;
  warm_start : bool;
      (* Seed each transient step's Krylov solve from the previous
         step's coefficients, linearly extrapolated once two steps
         exist ([2 a_k - a_{k-1}]).  Off = zero initial guess every
         step.  Affects only iteration counts, not the converged
         solution (same tolerance either way). *)
}

let default_options =
  {
    solver = Direct;
    ordering = Linalg.Ordering.Nested_dissection;
    precond = Linalg.Precond.Cholesky;
    probes = [||];
    scheme = Powergrid.Transient.Backward_euler;
    domains = 0;
    policy = Warn;
    metrics = Util.Metrics.global;
    warm_start = true;
  }

type stats = {
  aug_dim : int;
  nnz_aug : int;
  nnz_factor : int;
  assemble_seconds : float;
  factor_seconds : float;
  step_seconds : float;
  pcg_iterations : int;
  health : Linalg.Solve_report.aggregate;
}

let assemble (m : Stochastic_model.t) terms =
  let size = Polychaos.Basis.size m.basis in
  let zero = Linalg.Sparse.zero ~nrows:(size * m.n) ~ncols:(size * m.n) in
  List.fold_left
    (fun acc (rank, mat) ->
      let coupling = Polychaos.Triple_product.coupling_matrix m.tp rank in
      Linalg.Sparse.add acc (Linalg.Sparse.kron coupling mat))
    zero terms

let assemble_g m = assemble m m.Stochastic_model.g_terms

let assemble_c m = assemble m m.Stochastic_model.c_terms

let rhs_into (m : Stochastic_model.t) ~drain_buf t out =
  let size = Polychaos.Basis.size m.basis in
  if Array.length out <> size * m.n then invalid_arg "Galerkin.rhs_into: bad output size";
  Linalg.Vec.fill out 0.0;
  Stochastic_model.drain_profile_into m t drain_buf;
  List.iter
    (fun (j, vec) ->
      let gamma = Polychaos.Basis.norm_sq m.basis j in
      let base = j * m.n in
      for i = 0 to m.n - 1 do
        out.(base + i) <- out.(base + i) +. (gamma *. vec.(i))
      done)
    m.u_static_terms;
  List.iter
    (fun (j, coef) ->
      let gamma = Polychaos.Basis.norm_sq m.basis j in
      let base = j * m.n in
      let s = gamma *. coef in
      for i = 0 to m.n - 1 do
        out.(base + i) <- out.(base + i) +. (s *. drain_buf.(i))
      done)
    m.u_drain_coefs;
  ignore t

(* Mean-block preconditioner: block j solved with the nominal mean
   solver (exact factor, ic0 or AMG per [Precond.kind]) and divided by
   the basis norm.  All scratch (the output vector, per-chunk block and
   backend workspaces, the inverse norms) is allocated once in the
   closure and reused across applications — the returned vector is
   therefore only valid until the next call, which is exactly the
   contract CG needs.  Blocks are independent, so the loop chunks
   across domains; each chunk owns its scratch, and the shared backend
   is applied through its workspace-explicit in-place solve (always
   bitwise-deterministic: exact sweeps are level-scheduled stable, the
   approximate backends sequential).  Each application is counted and
   timed into [metrics] (from the calling domain only). *)
let mean_block_preconditioner ?(domains = 0) ?(metrics = Util.Metrics.global)
    (m : Stochastic_model.t) mean_solver =
  let size = Polychaos.Basis.size m.basis in
  let n = m.n in
  let d = Util.Parallel.resolve domains in
  let chunks = Int.max 1 (Int.min d size) in
  (* Parallelism goes across blocks first; when only one chunk exists
     (a single-block basis) the spare domains instead level-schedule
     the triangular sweeps inside the nominal-factor solve. *)
  let inner_domains = if chunks > 1 then 1 else d in
  let z = Array.make (size * n) 0.0 in
  let block = Array.init chunks (fun _ -> Array.make n 0.0) in
  let work = Array.init chunks (fun _ -> Linalg.Precond.create_ws mean_solver) in
  let inv_gamma = Array.init size (fun j -> 1.0 /. Polychaos.Basis.norm_sq m.basis j) in
  fun (r : Linalg.Vec.t) ->
    Util.Metrics.incr metrics "galerkin.precond_applies";
    Util.Metrics.span metrics "galerkin.precond_s" (fun () ->
        Util.Parallel.for_chunks ~domains:d size (fun ~chunk ~lo ~hi ->
            let blk = block.(chunk) and wk = work.(chunk) in
            for j = lo to hi - 1 do
              let base = j * n in
              Array.blit r base blk 0 n;
              Linalg.Precond.apply_in_place mean_solver wk ~domains:inner_domains blk;
              let s = inv_gamma.(j) in
              for i = 0 to n - 1 do
                z.(base + i) <- blk.(i) *. s
              done
            done);
        z)

let nominal_matrix (m : Stochastic_model.t) terms =
  match List.assoc_opt 0 terms with
  | Some mat -> mat
  | None -> Linalg.Sparse.zero ~nrows:m.n ~ncols:m.n

(* Order grid nodes once on their shared connectivity pattern, then keep all
   N+1 chaos coefficients of a node adjacent.  This turns the augmented
   factorization into a block version of the mesh factorization: the fill is
   ~ (N+1)^2 times the scalar mesh fill instead of whatever a flat ordering
   of the (N+1) n graph produces, and the (cheap) ordering runs on n nodes
   rather than (N+1) n. *)
let block_ordering ?(kind = Linalg.Ordering.Nested_dissection) (m : Stochastic_model.t) =
  let node_perm = Linalg.Ordering.compute kind (Stochastic_model.node_pattern m) in
  let size = Polychaos.Basis.size m.basis in
  Array.init (size * m.n) (fun idx ->
      let v = idx / size and k = idx mod size in
      (k * m.n) + node_perm.(v))

(* Convergence policy on a finished PCG solve: aggregate the report, then
   accept / raise / warn / repair according to [policy].  [fallback] must
   return a solution meeting the tolerance (in practice: a direct solve
   with the assembled augmented factor, built lazily so healthy runs
   never pay for it). *)
let apply_policy ~policy ~metrics ~agg ~context ~fallback x (report : Linalg.Solve_report.t) =
  Linalg.Solve_report.agg_add agg report;
  Util.Metrics.incr ~by:report.Linalg.Solve_report.iterations metrics "galerkin.pcg_iterations";
  (* Per-solve iteration distribution: this is where the warm-start
     win (fewer iterations per transient step) becomes observable. *)
  Util.Metrics.observe metrics "galerkin.pcg_iters_per_solve"
    (float_of_int report.Linalg.Solve_report.iterations);
  if report.Linalg.Solve_report.converged then x
  else begin
    Util.Metrics.incr metrics "galerkin.pcg_unconverged";
    match policy with
    | Fail -> raise (Solver_diverged (context (), report))
    | Warn ->
        Util.Log.warnf "galerkin %s: %s" (context ()) (Linalg.Solve_report.summary report);
        x
    | Fallback ->
        Linalg.Solve_report.agg_count_fallback agg;
        Util.Metrics.incr metrics "galerkin.fallbacks";
        Util.Log.infof "galerkin %s: %s; falling back to the assembled direct solver"
          (context ())
          (Linalg.Solve_report.summary report);
        Util.Metrics.span metrics "galerkin.fallback_s" fallback
  end

(* Map the shared option record onto the ST backend's knobs; the St
   variant carries what the coupled solvers put in their payloads. *)
let st_options (o : options) ~tol ~max_refine ~candidates ~seed =
  {
    St_solver.candidates;
    seed;
    refine_tol = tol;
    refine_max = max_refine;
    ordering = o.ordering;
    precond = o.precond;
    probes = o.probes;
    domains = o.domains;
    metrics = o.metrics;
  }

let st_stats (m : Stochastic_model.t) (st : St_solver.stats) =
  {
    aug_dim = Polychaos.Basis.size m.basis * m.n;
    nnz_aug = st.St_solver.nnz_point;
    nnz_factor = st.St_solver.nnz_factor;
    assemble_seconds = st.St_solver.select_seconds;
    factor_seconds = st.St_solver.factor_seconds;
    step_seconds = st.St_solver.step_seconds;
    pcg_iterations = st.St_solver.refine_sweeps;
    health = st.St_solver.health;
  }

let solve_dc ?(options = default_options) (m : Stochastic_model.t) =
  let size = Polychaos.Basis.size m.basis in
  let dim = size * m.n in
  let drain_buf = Array.make m.n 0.0 in
  let rhs = Array.make dim 0.0 in
  rhs_into m ~drain_buf 0.0 rhs;
  let metrics = options.metrics in
  let agg = Linalg.Solve_report.agg_create () in
  let direct_gt_solve gt () =
    let perm = block_ordering ~kind:options.ordering m in
    let f = Linalg.Sparse_cholesky.factor ~perm gt in
    Linalg.Sparse_cholesky.solve f rhs
  in
  match options.solver with
  | Direct ->
      let gt = assemble_g m in
      Util.Metrics.span metrics "galerkin.factor_s" (fun () -> direct_gt_solve gt ())
  | Mean_pcg { tol; max_iter } ->
      let gt = assemble_g m in
      let ga = nominal_matrix m m.g_terms in
      let ms0 =
        Util.Metrics.span metrics "galerkin.factor_s" (fun () ->
            Linalg.Precond.make ~ordering:options.ordering options.precond ga)
      in
      let precond = mean_block_preconditioner ~domains:options.domains ~metrics m ms0 in
      let x, report =
        Linalg.Cg.solve_report ~precond ~max_iter ~tol ~matvec:(Linalg.Sparse.mul_vec gt)
          ~b:rhs ~x0:(Array.make dim 0.0) ()
      in
      apply_policy ~policy:options.policy ~metrics ~agg
        ~context:(fun () -> "dc solve (mean-pcg)")
        ~fallback:(direct_gt_solve gt) x report
  | Matrix_free_pcg { tol; max_iter } ->
      (* Never assembles the augmented operator: the matvec is the
         block-structured Galerkin_op apply, the preconditioner the
         factorized n x n nominal block. *)
      let op = Galerkin_op.gt ~domains:options.domains m in
      let ga = nominal_matrix m m.g_terms in
      let ms0 =
        Util.Metrics.span metrics "galerkin.factor_s" (fun () ->
            Linalg.Precond.make ~ordering:options.ordering options.precond ga)
      in
      let precond = mean_block_preconditioner ~domains:options.domains ~metrics m ms0 in
      let mv = Array.make dim 0.0 in
      let matvec x =
        Galerkin_op.apply_into op x mv;
        mv
      in
      let x, report =
        Linalg.Cg.solve_report ~precond ~max_iter ~tol ~matvec ~b:rhs
          ~x0:(Array.make dim 0.0) ()
      in
      apply_policy ~policy:options.policy ~metrics ~agg
        ~context:(fun () -> "dc solve (matrix-free-pcg)")
        ~fallback:(fun () -> direct_gt_solve (assemble_g m) ())
        x report
  | St { tol; max_refine; candidates; seed } ->
      (* Decoupled testing-point route; every point is refined to [tol]
         (or repaired by its own factorization), so the convergence
         policy never has an approximate iterate to rule on. *)
      let st_opts = st_options options ~tol ~max_refine ~candidates ~seed in
      let coefs, _stats = St_solver.solve_dc ~options:st_opts m in
      coefs

(* Warm-started stepping state shared by the iterative transient
   branches.  [guess] is the in/out buffer handed to the allocation-free
   CG: zero when warm starting is off, the previous accepted solution on
   the first step, and the linear extrapolation [2 a_k - a_{k-1}] once
   two accepted solutions exist.  [accept] rotates the accepted solution
   into [a]/[a_prev].  The extrapolated seed only changes where the
   Krylov iteration *starts* — the tolerance test is unchanged, so
   converged answers agree with cold starts within solver tolerance. *)
let warm_stepper ~warm_start ~dim a =
  let ws = Linalg.Cg.workspace_create dim in
  let guess = Array.make dim 0.0 in
  let a_prev = Array.make dim 0.0 in
  let have_prev = ref false in
  let prepare () =
    if not warm_start then Linalg.Vec.fill guess 0.0
    else if !have_prev then
      for i = 0 to dim - 1 do
        guess.(i) <- (2.0 *. a.(i)) -. a_prev.(i)
      done
    else Array.blit a 0 guess 0 dim
  in
  let accept x =
    Array.blit a 0 a_prev 0 dim;
    have_prev := true;
    Array.blit x 0 a 0 dim
  in
  (ws, guess, prepare, accept)

let solve_transient_coupled ~options (m : Stochastic_model.t) ~h ~steps =
  let size = Polychaos.Basis.size m.basis in
  let dim = size * m.n in
  (* Backward Euler factors Gt + Ct/h; trapezoidal factors Gt + 2Ct/h
     (the doubled form of Ct/h + Gt/2, keeping the SPD scaling). *)
  let ct_scale =
    match options.scheme with
    | Powergrid.Transient.Backward_euler -> 1.0 /. h
    | Powergrid.Transient.Trapezoidal -> 2.0 /. h
  in
  let response =
    Response.create ~basis:m.basis ~n:m.n ~steps ~h ~vdd:m.vdd ~probes:options.probes
  in
  let metrics = options.metrics in
  let agg = Linalg.Solve_report.agg_create () in
  let policy = options.policy in
  let drain_buf = Array.make m.n 0.0 in
  let u = Array.make dim 0.0 in
  let rhs = Array.make dim 0.0 in
  let ct_a = Array.make dim 0.0 in
  let assemble_seconds = ref 0.0 in
  let factor_seconds = ref 0.0 in
  let nnz_factor = ref 0 in
  (* Step counter shared with the policy context thunks so diagnostics
     name the failing transient step. *)
  let current_step = ref 0 in
  let step_context what () =
    if !current_step = 0 then Printf.sprintf "dc solve (%s)" what
    else Printf.sprintf "transient step %d (%s)" !current_step what
  in
  let t_assemble = Util.Metrics.start_span () in
  (* Per-solver setup: initial stochastic DC state [a], the implicit step
     [step_of] (solving [Mt a = rhs] in place of [a]), the Ct and Gt
     matvecs used to build right-hand sides, and the operator's stored
     nonzeros (assembled matrix vs matrix-free block data). *)
  let a, step_of, mul_ct_into, mul_gt_into, nnz_aug =
    match options.solver with
    | Direct ->
        let gt = assemble_g m in
        let ct = assemble_c m in
        let mt = Linalg.Sparse.axpy ~alpha:ct_scale ct gt in
        assemble_seconds := Util.Metrics.stop_span metrics "galerkin.assemble_s" t_assemble;
        let t0 = Util.Metrics.start_span () in
        let perm = block_ordering ~kind:options.ordering m in
        let fdc = Linalg.Sparse_cholesky.factor ~perm gt in
        let f = Linalg.Sparse_cholesky.factor ~perm mt in
        factor_seconds := Util.Metrics.stop_span metrics "galerkin.factor_s" t0;
        nnz_factor := Linalg.Sparse_cholesky.nnz_l f;
        rhs_into m ~drain_buf 0.0 rhs;
        let a = Linalg.Sparse_cholesky.solve fdc rhs in
        (* Assembled-direct stepping goes through the level-scheduled
           triangular sweeps when domains allow (bitwise identical to
           the sequential sweeps either way). *)
        let step_work = Array.make dim 0.0 in
        let step_of () =
          Array.blit rhs 0 a 0 dim;
          Linalg.Sparse_cholesky.solve_in_place_ws f ~domains:options.domains ~work:step_work a
        in
        (a, step_of, Linalg.Sparse.mul_vec_into ct, Linalg.Sparse.mul_vec_into gt,
         Linalg.Sparse.nnz mt)
    | Mean_pcg { tol; max_iter } ->
        let gt = assemble_g m in
        let ct = assemble_c m in
        let mt = Linalg.Sparse.axpy ~alpha:ct_scale ct gt in
        assemble_seconds := Util.Metrics.stop_span metrics "galerkin.assemble_s" t_assemble;
        let t0 = Util.Metrics.start_span () in
        let node_perm =
          Linalg.Ordering.compute options.ordering (Stochastic_model.node_pattern m)
        in
        let ga = nominal_matrix m m.g_terms in
        let nominal = Linalg.Sparse.axpy ~alpha:ct_scale (nominal_matrix m m.c_terms) ga in
        let ms0 = Linalg.Precond.make ~perm:node_perm options.precond nominal in
        let msdc0 = Linalg.Precond.make ~perm:node_perm options.precond ga in
        factor_seconds := Util.Metrics.stop_span metrics "galerkin.factor_s" t0;
        (* Direct fallbacks on the assembled augmented matrices, built
           lazily: a healthy run never factors them. *)
        let direct_step =
          lazy (Linalg.Sparse_cholesky.factor ~perm:(block_ordering ~kind:options.ordering m) mt)
        in
        let direct_dc =
          lazy (Linalg.Sparse_cholesky.factor ~perm:(block_ordering ~kind:options.ordering m) gt)
        in
        let precond = mean_block_preconditioner ~domains:options.domains ~metrics m ms0 in
        let precond_dc = mean_block_preconditioner ~domains:options.domains ~metrics m msdc0 in
        rhs_into m ~drain_buf 0.0 rhs;
        let a0, report0 =
          Linalg.Cg.solve_report ~precond:precond_dc ~max_iter ~tol
            ~matvec:(Linalg.Sparse.mul_vec gt) ~b:rhs ~x0:(Array.make dim 0.0) ()
        in
        let a =
          apply_policy ~policy ~metrics ~agg ~context:(step_context "mean-pcg")
            ~fallback:(fun () -> Linalg.Sparse_cholesky.solve (Lazy.force direct_dc) rhs)
            a0 report0
        in
        let a = Array.copy a in
        let ws, guess, prepare_guess, accept =
          warm_stepper ~warm_start:options.warm_start ~dim a
        in
        let mv = Array.make dim 0.0 in
        let matvec_mt x =
          Linalg.Sparse.mul_vec_into mt x mv;
          mv
        in
        let step_of () =
          prepare_guess ();
          let report =
            Linalg.Cg.solve_report_in_place ~precond ~max_iter ~tol ~ws ~matvec:matvec_mt
              ~b:rhs ~x:guess ()
          in
          let x =
            apply_policy ~policy ~metrics ~agg ~context:(step_context "mean-pcg")
              ~fallback:(fun () -> Linalg.Sparse_cholesky.solve (Lazy.force direct_step) rhs)
              guess report
          in
          accept x
        in
        (a, step_of, Linalg.Sparse.mul_vec_into ct, Linalg.Sparse.mul_vec_into gt,
         Linalg.Sparse.nnz mt)
    | Matrix_free_pcg { tol; max_iter } ->
        (* The augmented operators are never assembled: Gt, Ct and the
           stepping operator Gt + ct_scale Ct all live as per-rank n x n
           matrices plus the sparse triple-product coupling. *)
        let domains = options.domains in
        let op_gt = Galerkin_op.gt ~domains m in
        let op_ct = Galerkin_op.ct ~domains m in
        let op_mt = Galerkin_op.gt_plus_ct ~domains ~ct_scale m in
        assemble_seconds := Util.Metrics.stop_span metrics "galerkin.assemble_s" t_assemble;
        let t0 = Util.Metrics.start_span () in
        let node_perm =
          Linalg.Ordering.compute options.ordering (Stochastic_model.node_pattern m)
        in
        let ga = nominal_matrix m m.g_terms in
        let nominal = Linalg.Sparse.axpy ~alpha:ct_scale (nominal_matrix m m.c_terms) ga in
        let ms0 = Linalg.Precond.make ~perm:node_perm options.precond nominal in
        let msdc0 = Linalg.Precond.make ~perm:node_perm options.precond ga in
        factor_seconds := Util.Metrics.stop_span metrics "galerkin.factor_s" t0;
        (* The matrix-free route owns no assembled operator, so its
           fallback assembles one on first use — trading the memory wall
           back for a guaranteed residual when the policy demands it. *)
        let direct_step =
          lazy
            (let gta = assemble_g m in
             let cta = assemble_c m in
             let mta = Linalg.Sparse.axpy ~alpha:ct_scale cta gta in
             Linalg.Sparse_cholesky.factor ~perm:(block_ordering ~kind:options.ordering m) mta)
        in
        let direct_dc =
          lazy
            (Linalg.Sparse_cholesky.factor
               ~perm:(block_ordering ~kind:options.ordering m)
               (assemble_g m))
        in
        let precond = mean_block_preconditioner ~domains ~metrics m ms0 in
        let precond_dc = mean_block_preconditioner ~domains ~metrics m msdc0 in
        rhs_into m ~drain_buf 0.0 rhs;
        let mv = Array.make dim 0.0 in
        let matvec_gt x =
          Galerkin_op.apply_into op_gt x mv;
          mv
        in
        let matvec_mt x =
          Galerkin_op.apply_into op_mt x mv;
          mv
        in
        let a0, report0 =
          Linalg.Cg.solve_report ~precond:precond_dc ~max_iter ~tol ~matvec:matvec_gt ~b:rhs
            ~x0:(Array.make dim 0.0) ()
        in
        let a =
          apply_policy ~policy ~metrics ~agg ~context:(step_context "matrix-free-pcg")
            ~fallback:(fun () -> Linalg.Sparse_cholesky.solve (Lazy.force direct_dc) rhs)
            a0 report0
        in
        let a = Array.copy a in
        let ws, guess, prepare_guess, accept =
          warm_stepper ~warm_start:options.warm_start ~dim a
        in
        let step_of () =
          prepare_guess ();
          let report =
            Linalg.Cg.solve_report_in_place ~precond ~max_iter ~tol ~ws ~matvec:matvec_mt
              ~b:rhs ~x:guess ()
          in
          let x =
            apply_policy ~policy ~metrics ~agg ~context:(step_context "matrix-free-pcg")
              ~fallback:(fun () -> Linalg.Sparse_cholesky.solve (Lazy.force direct_step) rhs)
              guess report
          in
          accept x
        in
        (a, step_of, Galerkin_op.apply_into op_ct, Galerkin_op.apply_into op_gt,
         Galerkin_op.nnz op_mt)
    | St _ ->
        (* solve_transient dispatches St before reaching the coupled body. *)
        assert false
  in
  Response.record_step response ~step:0 ~coefs:a;
  let step_of () = Util.Metrics.span metrics "galerkin.step_s" step_of in
  let t_steps = Util.Timer.start () in
  (match options.scheme with
  | Powergrid.Transient.Backward_euler ->
      for k = 1 to steps do
        current_step := k;
        let t = float_of_int k *. h in
        rhs_into m ~drain_buf t u;
        mul_ct_into a ct_a;
        for i = 0 to dim - 1 do
          rhs.(i) <- u.(i) +. (ct_a.(i) /. h)
        done;
        step_of ();
        Response.record_step response ~step:k ~coefs:a
      done
  | Powergrid.Transient.Trapezoidal ->
      (* (Gt + 2Ct/h) a_{k+1} = (2Ct/h - Gt) a_k + Ut_k + Ut_{k+1} *)
      let u_prev = Array.make dim 0.0 in
      let gt_a = Array.make dim 0.0 in
      rhs_into m ~drain_buf 0.0 u_prev;
      for k = 1 to steps do
        current_step := k;
        let t = float_of_int k *. h in
        rhs_into m ~drain_buf t u;
        mul_ct_into a ct_a;
        mul_gt_into a gt_a;
        for i = 0 to dim - 1 do
          rhs.(i) <- ((2.0 /. h) *. ct_a.(i)) -. gt_a.(i) +. u.(i) +. u_prev.(i)
        done;
        step_of ();
        Array.blit u 0 u_prev 0 dim;
        Response.record_step response ~step:k ~coefs:a
      done);
  let step_seconds = Util.Timer.elapsed_s t_steps in
  if not (Linalg.Solve_report.agg_healthy agg) then
    Util.Log.warnf "galerkin transient finished UNHEALTHY: %s"
      (Linalg.Solve_report.agg_summary agg);
  ( response,
    {
      aug_dim = dim;
      nnz_aug;
      nnz_factor = !nnz_factor;
      assemble_seconds = !assemble_seconds;
      factor_seconds = !factor_seconds;
      step_seconds;
      pcg_iterations = agg.Linalg.Solve_report.iterations;
      health = agg;
    } )

let solve_transient ?(options = default_options) (m : Stochastic_model.t) ~h ~steps =
  if h <= 0.0 then invalid_arg "Galerkin.solve_transient: step must be positive";
  match options.solver with
  | St { tol; max_refine; candidates; seed } ->
      (* Decoupled testing-point stepping; per-point factors carry
         across all steps and the point states warm-start structurally.
         Fixed-step backward Euler only — the per-point factors are
         [G(xi) + C(xi)/h] by construction. *)
      if options.scheme <> Powergrid.Transient.Backward_euler then
        invalid_arg "Galerkin.solve_transient: the st solver supports backward Euler only";
      let st_opts = st_options options ~tol ~max_refine ~candidates ~seed in
      let response, st = St_solver.solve_transient ~options:st_opts m ~h ~steps in
      (response, st_stats m st)
  | Direct | Mean_pcg _ | Matrix_free_pcg _ -> solve_transient_coupled ~options m ~h ~steps
