(** Process-variation model for a power grid (the paper's Sec. 3 and 5).

    Physical variations are normalized zero-mean unit-variance Gaussians:
    [xiW] (metal width), [xiT] (metal thickness), [xiL] (channel length).
    A linear (first-order) model maps them onto the electrical quantities:

    - wire conductance   [G(xi) = Ga (1 + sigma_w xiW + sigma_t xiT)]
    - gate capacitance   [Cg(xi) = Cg (1 + sigma_l xiL)]
    - drain currents     [i(xi,t) = i(t) (1 + current_sensitivity xiL)]

    Because [sigma_w xiW + sigma_t xiT] is again Gaussian, width and
    thickness combine into a single [xiG] with
    [sigma_g = sqrt (sigma_w^2 + sigma_t^2)] — the paper's Eq. (14)
    reduction from 3 to 2 random variables. *)

type mode =
  | Combined  (** 2 RVs [(xiG, xiL)] — the paper's main configuration *)
  | Separate  (** 3 RVs [(xiW, xiT, xiL)] — no Eq. (14) reduction *)
  | Grouped_wires of int
      (** [k] independent wire-conductance RVs (geometric stripes) plus
          [xiL]; the r-sweep ablation for Sec. 5.2's sparsity claim *)

type family =
  | Gaussian  (** Hermite chaos — the paper's main setting *)
  | Uniform
      (** bounded (uniform) parameter variations with Legendre chaos, the
          Askey-scheme pairing the paper points to for non-Gaussian inputs.
          Requires {!Separate} or {!Grouped_wires} mode: the Eq. (14)
          two-variable reduction relies on Gaussian closure. *)

type t = {
  sigma_w : float;  (** 1-sigma relative width variation *)
  sigma_t : float;  (** 1-sigma relative thickness variation *)
  sigma_l : float;  (** 1-sigma relative channel-length variation *)
  current_sensitivity : float;
      (** relative drain-current change per unit [xiL] (linear model) *)
  pad_varies : bool;
      (** when true the supply-connection conductance follows [xiG] too,
          which makes the RHS carry [Ug xiG] terms exactly as in Eq. (13) *)
  mode : mode;
  family : family;
  multiplicative_wt : bool;
      (** model the conductance as the exact product
          [g0 (1 + sw xiW)(1 + st xiT)] instead of its linearization — a
          degree-2 matrix term exercising the paper's remark that "there
          are no limitations on the specific model".  Requires {!Separate}
          mode and expansion order >= 2. *)
}

val paper_default : t
(** The experimental setting of Table 1: 3-sigma of 20% in W, 15% in T
    (hence 25% in [xiG]) and 20% in [Leff]; combined mode; pads varying. *)

val sigma_g : t -> float
(** [sqrt (sigma_w^2 + sigma_t^2)]. *)

val dim : t -> int
(** Number of independent random variables. *)

val describe : t -> string
