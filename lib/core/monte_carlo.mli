(** Monte-Carlo baseline.

    Solves the *same* linearized stochastic system as the Galerkin path —
    each sample draws [xi], realizes [G(xi)], [C(xi)], [U(xi, t)], performs
    a full deterministic transient (fresh factorization per sample, exactly
    what OPERA is priced against in Table 1), and accumulates running
    moments per node and timestep. *)

type sampler =
  | Pseudo  (** xoshiro pseudo-random sampling — the paper's baseline *)
  | Quasi_halton
      (** Halton low-discrepancy points (quasi-Monte Carlo), transformed
          through each dimension's measure; converges ~1/N on the smooth
          voltage response — the classical MC upgrade, kept as an ablation *)

type config = {
  samples : int;
  seed : int64;
  h : float;
  steps : int;
  ordering : Linalg.Ordering.kind;
  probes : int array;
  sampler : sampler;
}

val default_config : h:float -> steps:int -> config
(** 1000 samples (the paper's count), seed 7, nested-dissection ordering,
    pseudo-random sampling. *)

type result = {
  n : int;
  steps : int;
  h : float;
  samples : int;
  mean : float array;  (** [(steps+1) * n] *)
  variance : float array;  (** population variance, same layout *)
  probe_values : float array array array;
      (** [probe_values.(p).(step).(sample)] — raw voltages for histograms *)
  elapsed_seconds : float;
}

val run : ?progress:(int -> unit) -> ?domains:int -> Stochastic_model.t -> config -> result
(** [domains] > 1 splits the samples across OCaml domains (parallel
    sampling); each worker owns an independent seeded stream (or Halton
    segment) and local Welford accumulators, pairwise-merged at the end.
    The sample stream therefore depends on [domains]; [progress] is only
    reported in the single-domain path. *)

val mean_at : result -> step:int -> node:int -> float

val variance_at : result -> step:int -> node:int -> float

val std_at : result -> step:int -> node:int -> float
