let solve_transient ?points ?(probes = [||]) (m : Stochastic_model.t) ~h ~steps =
  if h <= 0.0 then invalid_arg "Collocation.solve_transient: step must be positive";
  let basis = m.Stochastic_model.basis in
  let dim = Polychaos.Basis.dim basis in
  let size = Polychaos.Basis.size basis in
  let n = m.Stochastic_model.n in
  let npts = match points with Some p -> p | None -> Polychaos.Basis.order basis + 1 in
  if npts < 1 then invalid_arg "Collocation.solve_transient: need at least one point";
  let families = Polychaos.Basis.families basis in
  let rules = Array.map (fun fam -> Polychaos.Quadrature.gauss fam npts) families in
  (* Accumulated coefficients for every step: coefs.(step).((k * n) + node) *)
  let coefs = Array.init (steps + 1) (fun _ -> Array.make (size * n) 0.0) in
  let runs = ref 0 in
  (* Shared node ordering across all quadrature points. *)
  let perm =
    Linalg.Ordering.compute Linalg.Ordering.Nested_dissection (Stochastic_model.node_pattern m)
  in
  let xi = Array.make dim 0.0 in
  let drain = Array.make n 0.0 in
  let u = Array.make n 0.0 in
  let x = Array.make n 0.0 in
  let cx = Array.make n 0.0 in
  let rec sweep d weight =
    if d = dim then begin
      incr runs;
      let psi = Polychaos.Basis.eval_all basis xi in
      let g = Stochastic_model.g_of_sample m xi in
      let c = Stochastic_model.c_of_sample m xi in
      (* Excitation pieces at this xi. *)
      let static = Array.make n 0.0 in
      List.iter
        (fun (rank, vec) -> Linalg.Vec.axpy ~alpha:psi.(rank) vec static)
        m.Stochastic_model.u_static_terms;
      let drain_coef =
        List.fold_left
          (fun acc (rank, cf) -> acc +. (cf *. psi.(rank)))
          0.0 m.Stochastic_model.u_drain_coefs
      in
      let inject t =
        Array.blit static 0 u 0 n;
        Linalg.Vec.fill drain 0.0;
        Powergrid.Mna.drain_into m.Stochastic_model.mna t drain;
        Linalg.Vec.axpy ~alpha:drain_coef drain u
      in
      let accumulate step =
        let dst = coefs.(step) in
        for k = 0 to size - 1 do
          let wk = weight *. psi.(k) /. Polychaos.Basis.norm_sq basis k in
          if Util.Floats.nonzero wk then begin
            let base = k * n in
            for i = 0 to n - 1 do
              dst.(base + i) <- dst.(base + i) +. (wk *. x.(i))
            done
          end
        done
      in
      let fdc = Linalg.Sparse_cholesky.factor ~perm g in
      inject 0.0;
      Array.blit u 0 x 0 n;
      Linalg.Sparse_cholesky.solve_in_place fdc x;
      accumulate 0;
      let fbe = Linalg.Sparse_cholesky.factor ~perm (Linalg.Sparse.axpy ~alpha:(1.0 /. h) c g) in
      for step = 1 to steps do
        inject (float_of_int step *. h);
        Linalg.Sparse.mul_vec_into c x cx;
        for i = 0 to n - 1 do
          x.(i) <- u.(i) +. (cx.(i) /. h)
        done;
        Linalg.Sparse_cholesky.solve_in_place fbe x;
        accumulate step
      done
    end
    else begin
      let rule = rules.(d) in
      for q = 0 to npts - 1 do
        xi.(d) <- rule.Polychaos.Quadrature.nodes.(q);
        sweep (d + 1) (weight *. rule.Polychaos.Quadrature.weights.(q))
      done
    end
  in
  sweep 0 1.0;
  let response =
    Response.create ~basis ~n ~steps ~h ~vdd:m.Stochastic_model.vdd ~probes
  in
  Array.iteri (fun step c -> Response.record_step response ~step ~coefs:c) coefs;
  (response, !runs)
