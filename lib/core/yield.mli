(** Voltage-drop yield estimation from the explicit stochastic response.

    With [x(t, xi)] available analytically, "what fraction of manufactured
    dies keeps every drop inside budget?" becomes integrable — the sign-off
    question behind the paper's ±35% warning.  Three estimators are
    provided, in increasing fidelity: a Gaussian tail, a skew/kurtosis-
    corrected Cornish–Fisher-style tail, and direct sampling of the
    expansion (cheap: one polynomial evaluation per die). *)

val failure_probability_gaussian :
  Response.t -> node:int -> step:int -> budget:float -> float
(** P(drop > budget) from mean/sigma only (any node). [budget] in volts. *)

val failure_probability_sampled :
  Response.t -> node:int -> step:int -> budget:float -> samples:int -> Prob.Rng.t -> float
(** Sampled estimate at a *probe* node (uses the full expansion, so skew
    and nonlinearity are captured). *)

val worst_case_drop :
  Response.t -> node:int -> step:int -> quantile:float -> float
(** Drop not exceeded with probability [quantile] under the Gaussian
    model: [mu_drop + z_q * sigma]. *)

val grid_failure_probability_gaussian :
  Response.t -> step:int -> budget:float -> float * int
(** Union bound of per-node Gaussian failure probabilities at a step
    (conservative), and the dominating node. *)

val sampled_probe_yield :
  Response.t -> budget:float -> samples:int -> Prob.Rng.t -> float
(** Fraction of sampled dies whose worst drop *over all probed nodes and
    all timesteps* stays within budget.  Each die draws one [xi] and
    evaluates every probe trajectory at it — correlations across nodes and
    time are preserved exactly, unlike the union bound. *)
