type t = {
  basis : Polychaos.Basis.t;
  n : int;
  steps : int;
  h : float;
  vdd : float;
  mean : float array;
  variance : float array;
  probes : int array;
  probe_coefs : float array array;
}

let create ~basis ~n ~steps ~h ~vdd ~probes =
  Array.iter
    (fun p -> if p < 0 || p >= n then invalid_arg "Response.create: probe out of range")
    probes;
  let size = Polychaos.Basis.size basis in
  {
    basis;
    n;
    steps;
    h;
    vdd;
    mean = Array.make ((steps + 1) * n) 0.0;
    variance = Array.make ((steps + 1) * n) 0.0;
    probes;
    probe_coefs = Array.map (fun _ -> Array.make ((steps + 1) * size) 0.0) probes;
  }

let record_step r ~step ~coefs =
  let size = Polychaos.Basis.size r.basis in
  if Array.length coefs <> size * r.n then invalid_arg "Response.record_step: bad vector size";
  if step < 0 || step > r.steps then invalid_arg "Response.record_step: step out of range";
  let base = step * r.n in
  for node = 0 to r.n - 1 do
    r.mean.(base + node) <- coefs.(node);
    let acc = ref 0.0 in
    for k = 1 to size - 1 do
      let a = coefs.((k * r.n) + node) in
      acc := !acc +. (a *. a *. Polychaos.Basis.norm_sq r.basis k)
    done;
    r.variance.(base + node) <- !acc
  done;
  Array.iteri
    (fun p node ->
      let dst = r.probe_coefs.(p) in
      for k = 0 to size - 1 do
        dst.((step * size) + k) <- coefs.((k * r.n) + node)
      done)
    r.probes

let check_step r step =
  if step < 0 || step > r.steps then invalid_arg "Response: step out of range"

let mean_at r ~step ~node =
  check_step r step;
  r.mean.((step * r.n) + node)

let variance_at r ~step ~node =
  check_step r step;
  r.variance.((step * r.n) + node)

let std_at r ~step ~node = sqrt (variance_at r ~step ~node)

let probe_index r node =
  let rec go i =
    if i >= Array.length r.probes then raise Not_found
    else if r.probes.(i) = node then i
    else go (i + 1)
  in
  go 0

let pce_at r ~node ~step =
  check_step r step;
  let p = probe_index r node in
  let size = Polychaos.Basis.size r.basis in
  Polychaos.Pce.create r.basis (Array.sub r.probe_coefs.(p) (step * size) size)

let sample_voltage r ~node ~step rng = Polychaos.Pce.sample (pce_at r ~node ~step) rng

let moments_at r ~node ~step =
  let pce = pce_at r ~node ~step in
  {
    Prob.Gram_charlier.mean = Polychaos.Pce.mean pce;
    variance = Polychaos.Pce.variance pce;
    skewness = Polychaos.Pce.skewness pce;
    kurtosis_excess = Polychaos.Pce.kurtosis_excess pce;
  }

let density_at r ~node ~step =
  let moments = moments_at r ~node ~step in
  Prob.Gram_charlier.gram_charlier_pdf moments

let export_csv r path =
  let rows = ref [] in
  Array.iter
    (fun node ->
      for step = r.steps downto 0 do
        let pce = pce_at r ~node ~step in
        rows :=
          [
            string_of_int step;
            Util.Csv.float_cell (float_of_int step *. r.h);
            string_of_int node;
            Util.Csv.float_cell (Polychaos.Pce.mean pce);
            Util.Csv.float_cell (Polychaos.Pce.std pce);
            Util.Csv.float_cell (Polychaos.Pce.skewness pce);
          ]
          :: !rows
      done)
    r.probes;
  Util.Csv.save path ~header:[ "step"; "time_s"; "node"; "mean_v"; "sigma_v"; "skewness" ]
    ~rows:!rows

let worst_mean_drop r ~step =
  check_step r step;
  let base = step * r.n in
  let worst = ref 0 in
  for node = 1 to r.n - 1 do
    if r.mean.(base + node) < r.mean.(base + !worst) then worst := node
  done;
  (r.vdd -. r.mean.(base + !worst), !worst)
