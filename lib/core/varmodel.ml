type mode = Combined | Separate | Grouped_wires of int

type family = Gaussian | Uniform

type t = {
  sigma_w : float;
  sigma_t : float;
  sigma_l : float;
  current_sensitivity : float;
  pad_varies : bool;
  mode : mode;
  family : family;
  multiplicative_wt : bool;
}

let paper_default =
  {
    sigma_w = 0.20 /. 3.0;
    sigma_t = 0.15 /. 3.0;
    sigma_l = 0.20 /. 3.0;
    current_sensitivity = 0.20 /. 3.0;
    pad_varies = true;
    mode = Combined;
    family = Gaussian;
    multiplicative_wt = false;
  }

let sigma_g m = sqrt ((m.sigma_w *. m.sigma_w) +. (m.sigma_t *. m.sigma_t))

let dim m =
  match m.mode with
  | Combined -> 2
  | Separate -> 3
  | Grouped_wires k ->
      if k < 1 then invalid_arg "Varmodel.dim: need at least one wire group";
      k + 1

let describe m =
  let mode =
    match m.mode with
    | Combined -> "combined(xiG,xiL)"
    | Separate -> "separate(xiW,xiT,xiL)"
    | Grouped_wires k -> Printf.sprintf "grouped(%d wire RVs + xiL)" k
  in
  let family = match m.family with Gaussian -> "gaussian" | Uniform -> "uniform" in
  Printf.sprintf "3s_W=%.0f%% 3s_T=%.0f%% 3s_L=%.0f%% (3s_G=%.0f%%), %s, %s, pads %s"
    (300.0 *. m.sigma_w) (300.0 *. m.sigma_t) (300.0 *. m.sigma_l) (300.0 *. sigma_g m) mode
    family
    (if m.pad_varies then "varying" else "fixed")
