(* Matrix-free application of the augmented stochastic Galerkin operator
   [At = sum_r T_r (x) A_r] — see galerkin_op.mli.  The coupling tensor is
   flattened per OUTPUT block j into a dense triplet array so the apply is
   one linear scan per block, and blocks parallelize trivially (disjoint
   output slices, per-block summation order fixed => bitwise-deterministic
   results for any domain count). *)

type t = {
  n : int;  (* grid dimension per block *)
  size : int;  (* N+1 chaos blocks *)
  domains : int;  (* resolved domain count for apply *)
  terms : Linalg.Sparse.t array;  (* merged per-rank matrices *)
  block_terms : int array array;  (* per output block j: term indices *)
  block_inputs : int array array;  (* per output block j: input blocks k *)
  block_coefs : float array array;  (* per output block j: E(psi_r psi_j psi_k) *)
  coupling_nnz : int;
}

let merge_terms terms =
  List.fold_left
    (fun acc (r, mat) ->
      match List.assoc_opt r acc with
      | Some m0 -> (r, Linalg.Sparse.add m0 mat) :: List.remove_assoc r acc
      | None -> (r, mat) :: acc)
    [] terms
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let of_terms ?(domains = 0) ~tp ~n terms =
  let size = Polychaos.Basis.size (Polychaos.Triple_product.basis tp) in
  let terms = merge_terms terms in
  List.iter
    (fun (r, mat) ->
      if r < 0 || r >= size then
        invalid_arg (Printf.sprintf "Galerkin_op.of_terms: rank %d outside basis of size %d" r size);
      let nr, nc = Linalg.Sparse.dims mat in
      if nr <> n || nc <> n then
        invalid_arg
          (Printf.sprintf "Galerkin_op.of_terms: term %d is %dx%d, expected %dx%d" r nr nc n n))
    terms;
  let term_mats = Array.of_list (List.map snd terms) in
  let ranks = Array.of_list (List.map fst terms) in
  let nterms = Array.length ranks in
  (* Flatten the nonzero coupling entries, grouped by output block j. *)
  let coupling_nnz = ref 0 in
  let bt = Array.make size [||] and bi = Array.make size [||] and bc = Array.make size [||] in
  for j = 0 to size - 1 do
    let ts = ref [] and ks = ref [] and cs = ref [] and cnt = ref 0 in
    for ti = 0 to nterms - 1 do
      let r = ranks.(ti) in
      for k = 0 to size - 1 do
        let c = Polychaos.Triple_product.value tp r j k in
        if Util.Floats.nonzero c then begin
          ts := ti :: !ts;
          ks := k :: !ks;
          cs := c :: !cs;
          incr cnt
        end
      done
    done;
    let m = !cnt in
    coupling_nnz := !coupling_nnz + m;
    let ta = Array.make m 0 and ka = Array.make m 0 and ca = Array.make m 0.0 in
    List.iteri (fun idx v -> ta.(m - 1 - idx) <- v) !ts;
    List.iteri (fun idx v -> ka.(m - 1 - idx) <- v) !ks;
    List.iteri (fun idx v -> ca.(m - 1 - idx) <- v) !cs;
    bt.(j) <- ta;
    bi.(j) <- ka;
    bc.(j) <- ca
  done;
  {
    n;
    size;
    domains = Util.Parallel.resolve domains;
    terms = term_mats;
    block_terms = bt;
    block_inputs = bi;
    block_coefs = bc;
    coupling_nnz = !coupling_nnz;
  }

let gt ?domains (m : Stochastic_model.t) =
  of_terms ?domains ~tp:m.Stochastic_model.tp ~n:m.Stochastic_model.n m.Stochastic_model.g_terms

let ct ?domains (m : Stochastic_model.t) =
  of_terms ?domains ~tp:m.Stochastic_model.tp ~n:m.Stochastic_model.n m.Stochastic_model.c_terms

let gt_plus_ct ?domains ~ct_scale (m : Stochastic_model.t) =
  (* Merge the capacitance terms into the conductance list rank-by-rank
     so every rank costs one coupling scan and one kernel per entry. *)
  let merged =
    List.fold_left
      (fun acc (r, mat) ->
        let scaled = Linalg.Sparse.scale ct_scale mat in
        match List.assoc_opt r acc with
        | Some m0 -> (r, Linalg.Sparse.add m0 scaled) :: List.remove_assoc r acc
        | None -> (r, scaled) :: acc)
      m.Stochastic_model.g_terms m.Stochastic_model.c_terms
  in
  of_terms ?domains ~tp:m.Stochastic_model.tp ~n:m.Stochastic_model.n merged

let dim op = op.size * op.n

let block_dim op = op.n

let blocks op = op.size

let coupling_nnz op = op.coupling_nnz

let nnz op =
  Array.fold_left (fun acc a -> acc + Linalg.Sparse.nnz a) op.coupling_nnz op.terms

let domains op = op.domains

let with_domains op d = { op with domains = Util.Parallel.resolve d }

let[@opera.hot] apply_into op x y =
  let d = dim op in
  if Array.length x <> d || Array.length y <> d then
    invalid_arg "Galerkin_op.apply_into: dimension mismatch";
  if x == y then invalid_arg "Galerkin_op.apply_into: x and y must be distinct";
  let n = op.n in
  (* One counter bump and one timed span per operator application, on the
     calling domain only: the worker domains spawned by [parallel_for]
     never touch the registry. *)
  Util.Metrics.incr Util.Metrics.global "galerkin_op.matvecs";
  Util.Metrics.span Util.Metrics.global "galerkin_op.matvec_s" (fun () ->
      (* opera-lint: race — j owns slice y[j*n,(j+1)*n); x is read-only *)
      Util.Parallel.parallel_for ~domains:op.domains op.size (fun j ->
          let yoff = j * n in
          Array.fill y yoff n 0.0;
          let ts = op.block_terms.(j) and ks = op.block_inputs.(j) and cs = op.block_coefs.(j) in
          for e = 0 to Array.length ts - 1 do
            Linalg.Sparse.mul_vec_acc_off ~alpha:cs.(e) op.terms.(ts.(e)) x ~xoff:(ks.(e) * n) y
              ~yoff
          done))

let apply op x =
  let y = Array.make (dim op) 0.0 in
  apply_into op x y;
  y
