let drop_stats (r : Response.t) ~node ~step =
  let mu_drop = r.Response.vdd -. Response.mean_at r ~step ~node in
  let sigma = Response.std_at r ~step ~node in
  (mu_drop, sigma)

let failure_probability_gaussian r ~node ~step ~budget =
  let mu_drop, sigma = drop_stats r ~node ~step in
  if sigma <= 0.0 then if mu_drop > budget then 1.0 else 0.0
  else 1.0 -. Prob.Normal.cdf ((budget -. mu_drop) /. sigma)

let failure_probability_sampled r ~node ~step ~budget ~samples rng =
  if samples <= 0 then invalid_arg "Yield: need at least one sample";
  let pce = Response.pce_at r ~node ~step in
  let failures = ref 0 in
  for _ = 1 to samples do
    let v = Polychaos.Pce.sample pce rng in
    if r.Response.vdd -. v > budget then incr failures
  done;
  float_of_int !failures /. float_of_int samples

let worst_case_drop r ~node ~step ~quantile =
  if quantile <= 0.0 || quantile >= 1.0 then invalid_arg "Yield: quantile must lie in (0, 1)";
  let mu_drop, sigma = drop_stats r ~node ~step in
  mu_drop +. (Prob.Normal.ppf quantile *. sigma)

let grid_failure_probability_gaussian r ~step ~budget =
  let total = ref 0.0 and worst = ref 0 and worst_p = ref (-1.0) in
  for node = 0 to r.Response.n - 1 do
    let p = failure_probability_gaussian r ~node ~step ~budget in
    total := !total +. p;
    if p > !worst_p then begin
      worst_p := p;
      worst := node
    end
  done;
  (Float.min 1.0 !total, !worst)

let sampled_probe_yield (r : Response.t) ~budget ~samples rng =
  if samples <= 0 then invalid_arg "Yield: need at least one sample";
  if Array.length r.Response.probes = 0 then invalid_arg "Yield: response has no probes";
  (* Pre-extract every probe/step PCE once. *)
  let pces =
    Array.map
      (fun node ->
        Array.init (r.Response.steps + 1) (fun step -> Response.pce_at r ~node ~step))
      r.Response.probes
  in
  let basis = r.Response.basis in
  let ok = ref 0 in
  for _ = 1 to samples do
    let xi = Polychaos.Basis.sample_point basis rng in
    let values = Polychaos.Basis.eval_all basis xi in
    let pass = ref true in
    Array.iter
      (fun per_step ->
        Array.iter
          (fun (pce : Polychaos.Pce.t) ->
            if !pass then begin
              let acc = ref 0.0 in
              Array.iteri (fun k v -> acc := !acc +. (pce.Polychaos.Pce.coefs.(k) *. v)) values;
              if r.Response.vdd -. !acc > budget then pass := false
            end)
          per_step)
      pces;
    if !pass then incr ok
  done;
  float_of_int !ok /. float_of_int samples
