type t = {
  mna : Powergrid.Mna.t;
  basis : Polychaos.Basis.t;
  leaks : (int * int * float) array;
  lambda : float;
  regions : int;
  vdd : float;
}

let make ?(order = 2) ~regions ~lambda ~leaks ~vdd circuit =
  if regions < 1 then invalid_arg "Special_case.make: need at least one region";
  let mna = Powergrid.Mna.assemble circuit in
  Array.iter
    (fun (node, region, i0) ->
      if node < 0 || node >= mna.Powergrid.Mna.n then
        invalid_arg "Special_case.make: leak node out of range";
      if region < 0 || region >= regions then
        invalid_arg "Special_case.make: leak region out of range";
      if i0 < 0.0 then invalid_arg "Special_case.make: negative leakage")
    leaks;
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim:regions ~order in
  { mna; basis; leaks; lambda; regions; vdd }

(* Hermite coefficient of exp(lambda xi) on He_d: exp(lambda^2/2) lambda^d / d!. *)
let lognormal_coef lambda d =
  exp (lambda *. lambda /. 2.0) *. (lambda ** float_of_int d)
  /. Prob.Special_functions.factorial d

let excitation_term t k =
  let n = t.mna.Powergrid.Mna.n in
  let u = Linalg.Vec.create n in
  let idx = Polychaos.Basis.index t.basis k in
  (* Which single dimension does this index involve? *)
  let active = ref [] in
  Array.iteri (fun d deg -> if deg > 0 then active := (d, deg) :: !active) idx;
  (match !active with
  | [] ->
      (* rank 0: pads plus mean leakage *)
      Linalg.Vec.axpy ~alpha:1.0 t.mna.Powergrid.Mna.u_pad u;
      Array.iter
        (fun (node, _region, i0) -> u.(node) <- u.(node) -. (i0 *. lognormal_coef t.lambda 0))
        t.leaks
  | [ (d, deg) ] ->
      Array.iter
        (fun (node, region, i0) ->
          if region = d then u.(node) <- u.(node) -. (i0 *. lognormal_coef t.lambda deg))
        t.leaks
  | _ -> (* mixed indices never receive single-variable lognormal content *) ());
  u

(* The N+1 decoupled blocks share two factorizations and nothing else:
   each block k owns its state x.(k), its slice of [coefs] and (inside a
   chunk) its scratch, so the per-step block loop runs chunked across
   domains.  The shared factors are applied through the
   workspace-explicit solve; the drain profile of the step is computed
   once, sequentially, before the parallel region. *)
let run_decoupled ?(domains = 0) ?(metrics = Util.Metrics.global) ?factors t ~h ~steps ~probes
    ~record =
  let n = t.mna.Powergrid.Mna.n in
  let size = Polychaos.Basis.size t.basis in
  let c = Powergrid.Mna.c_total t.mna in
  let t0 = Util.Timer.start () in
  let fdc, fbe =
    match factors with
    | Some (fdc, fbe) ->
        if Linalg.Sparse_cholesky.dim fdc <> n || Linalg.Sparse_cholesky.dim fbe <> n then
          invalid_arg "Special_case.run_decoupled: factor dimension mismatch";
        (fdc, fbe)
    | None ->
        Util.Metrics.span metrics "special.factor_s" (fun () ->
            let g = Powergrid.Mna.g_total t.mna in
            let fdc =
              Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection g
            in
            let fbe =
              Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection
                (Linalg.Sparse.axpy ~alpha:(1.0 /. h) c g)
            in
            (fdc, fbe))
  in
  let static = Array.init size (excitation_term t) in
  let drain = Linalg.Vec.create n in
  (* Per-block state across time. *)
  let x = Array.init size (fun _ -> Linalg.Vec.create n) in
  let coefs = Array.make (size * n) 0.0 in
  let d = Util.Parallel.resolve domains in
  let chunks = Int.max 1 (Int.min d size) in
  (* Blocks are decoupled, so parallelism goes across blocks first;
     with a single block the spare domains level-schedule the
     triangular sweeps inside each factor solve instead. *)
  let inner_domains = if chunks > 1 then 1 else d in
  let u_bufs = Array.init chunks (fun _ -> Linalg.Vec.create n) in
  let work_bufs = Array.init chunks (fun _ -> Linalg.Vec.create n) in
  let fill_u u_k k =
    Array.blit static.(k) 0 u_k 0 n;
    (* Rank 0 carries the deterministic drain profile of the step. *)
    if k = 0 then Linalg.Vec.axpy ~alpha:1.0 drain u_k
  in
  let set_drain time =
    Linalg.Vec.fill drain 0.0;
    Powergrid.Mna.drain_into t.mna time drain
  in
  (* DC initial condition per block. *)
  set_drain 0.0;
  (* opera-lint: race — fill_u writes only the chunk-owned u_k buffer *)
  Util.Parallel.for_chunks ~domains:d size (fun ~chunk ~lo ~hi ->
      let u_k = u_bufs.(chunk) and work = work_bufs.(chunk) in
      for k = lo to hi - 1 do
        fill_u u_k k;
        Array.blit u_k 0 x.(k) 0 n;
        Linalg.Sparse_cholesky.solve_in_place_ws fdc ~domains:inner_domains ~work x.(k);
        Array.blit x.(k) 0 coefs (k * n) n
      done);
  record 0 coefs;
  for step = 1 to steps do
    let time = float_of_int step *. h in
    let span = Util.Metrics.start_span () in
    set_drain time;
    (* opera-lint: race — fill_u writes only the chunk-owned u_k buffer *)
    Util.Parallel.for_chunks ~domains:d size (fun ~chunk ~lo ~hi ->
        let u_k = u_bufs.(chunk) and work = work_bufs.(chunk) in
        for k = lo to hi - 1 do
          fill_u u_k k;
          let xk = x.(k) in
          (* rhs = u_k + (C/h) x_k, built allocation-free in x_k's slot:
             stage u_k, then accumulate the capacitance product. *)
          Linalg.Sparse.mul_vec_acc ~alpha:(1.0 /. h) c xk u_k;
          Array.blit u_k 0 xk 0 n;
          Linalg.Sparse_cholesky.solve_in_place_ws fbe ~domains:inner_domains ~work xk;
          Array.blit xk 0 coefs (k * n) n
        done);
    ignore (Util.Metrics.stop_span metrics "special.step_s" span);
    record step coefs
  done;
  ignore probes;
  Util.Timer.elapsed_s t0

let solve ?domains ?metrics ?factors t ~h ~steps ~probes =
  let n = t.mna.Powergrid.Mna.n in
  let response = Response.create ~basis:t.basis ~n ~steps ~h ~vdd:t.vdd ~probes in
  let elapsed =
    run_decoupled ?domains ?metrics ?factors t ~h ~steps ~probes ~record:(fun step coefs ->
        Response.record_step response ~step ~coefs)
  in
  (response, elapsed)

let to_stochastic_model t =
  let size = Polychaos.Basis.size t.basis in
  let statics =
    List.init size (fun k -> (k, excitation_term t k))
    |> List.filter (fun (_, v) -> Linalg.Vec.norm2 v > 0.0)
  in
  {
    Stochastic_model.basis = t.basis;
    tp = Polychaos.Triple_product.create t.basis;
    n = t.mna.Powergrid.Mna.n;
    g_terms = [ (0, Powergrid.Mna.g_total t.mna) ];
    c_terms = [ (0, Powergrid.Mna.c_total t.mna) ];
    u_static_terms = statics;
    u_drain_coefs = [ (0, 1.0) ];
    mna = t.mna;
    vdd = t.vdd;
  }

let solve_coupled ?solver ?policy t ~h ~steps ~probes =
  let model = to_stochastic_model t in
  let options = { Galerkin.default_options with probes } in
  let options = match solver with Some s -> { options with solver = s } | None -> options in
  let options = match policy with Some p -> { options with policy = p } | None -> options in
  let t0 = Util.Timer.start () in
  let response, _stats = Galerkin.solve_transient ~options model ~h ~steps in
  (response, Util.Timer.elapsed_s t0)

let monte_carlo t ~samples ~seed ~h ~steps ~probes =
  if samples <= 0 then invalid_arg "Special_case.monte_carlo: need samples";
  let n = t.mna.Powergrid.Mna.n in
  let g = Powergrid.Mna.g_total t.mna in
  let c = Powergrid.Mna.c_total t.mna in
  let rng = Prob.Rng.create ~seed () in
  let total = (steps + 1) * n in
  let mean = Array.make total 0.0 and m2 = Array.make total 0.0 in
  let probe_values =
    Array.map (fun _ -> Array.init (steps + 1) (fun _ -> Array.make samples 0.0)) probes
  in
  let t0 = Util.Timer.start () in
  (* Deterministic matrices: hoist both factorizations out of the loop. *)
  let fdc = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection g in
  let fbe = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection (Linalg.Sparse.axpy ~alpha:(1.0 /. h) c g) in
  let drain = Linalg.Vec.create n in
  let leak_static = Linalg.Vec.create n in
  let u = Linalg.Vec.create n in
  let x = Linalg.Vec.create n in
  let cx = Linalg.Vec.create n in
  for s = 0 to samples - 1 do
    let xi = Prob.Rng.gaussian_vector rng t.regions in
    Linalg.Vec.fill leak_static 0.0;
    Linalg.Vec.axpy ~alpha:1.0 t.mna.Powergrid.Mna.u_pad leak_static;
    Array.iter
      (fun (node, region, i0) ->
        leak_static.(node) <- leak_static.(node) -. (i0 *. exp (t.lambda *. xi.(region))))
      t.leaks;
    let inject time =
      Array.blit leak_static 0 u 0 n;
      Linalg.Vec.fill drain 0.0;
      Powergrid.Mna.drain_into t.mna time drain;
      Linalg.Vec.axpy ~alpha:1.0 drain u
    in
    let count = float_of_int (s + 1) in
    let accumulate step v =
      let base = step * n in
      for i = 0 to n - 1 do
        let value = v.(i) in
        let delta = value -. mean.(base + i) in
        mean.(base + i) <- mean.(base + i) +. (delta /. count);
        m2.(base + i) <- m2.(base + i) +. (delta *. (value -. mean.(base + i)))
      done;
      Array.iteri (fun p node -> probe_values.(p).(step).(s) <- v.(node)) probes
    in
    inject 0.0;
    Array.blit u 0 x 0 n;
    Linalg.Sparse_cholesky.solve_in_place fdc x;
    accumulate 0 x;
    for step = 1 to steps do
      inject (float_of_int step *. h);
      Linalg.Sparse.mul_vec_into c x cx;
      for i = 0 to n - 1 do
        x.(i) <- u.(i) +. (cx.(i) /. h)
      done;
      Linalg.Sparse_cholesky.solve_in_place fbe x;
      accumulate step x
    done
  done;
  let variance = Array.map (fun v -> v /. float_of_int samples) m2 in
  {
    Monte_carlo.n;
    steps;
    h;
    samples;
    mean;
    variance;
    probe_values;
    elapsed_seconds = Util.Timer.elapsed_s t0;
  }
