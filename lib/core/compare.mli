(** OPERA vs Monte-Carlo error metrics — the columns of the paper's
    Table 1. *)

type report = {
  nodes : int;
  steps : int;
  avg_err_mean_pct : float;
      (** average % error of the mean voltage (relative to MC mean),
          across all nodes and timesteps *)
  max_err_mean_pct : float;
  avg_err_std_pct : float;
      (** average % error of the voltage standard deviation (relative to
          MC sigma, where sigma is resolvable) *)
  max_err_std_pct : float;
  three_sigma_pct_of_nominal_drop : float;
      (** average of [3 sigma / nominal drop * 100] over meaningful drops —
          the paper's "±35%" column *)
  mean_shift_pct_vdd : float;
      (** average |mu - mu0| as % of VDD — the paper's "mu ≈ mu0" claim *)
  opera_seconds : float;
  mc_seconds : float;
  speedup : float;
}

val compare :
  response:Response.t ->
  mc:Monte_carlo.result ->
  nominal:float array ->
  vdd:float ->
  opera_seconds:float ->
  report
(** [nominal] is the deterministic (variation-free) voltage trajectory in
    the same [(steps+1) * n] layout. *)

val row_strings : string -> report -> string list
(** Render as a Table-1-style row: label, nodes, the four error columns,
    ±3sigma column, times and speedup. *)

val header : (string * Util.Table.align) list
