type sampler = Pseudo | Quasi_halton

type config = {
  samples : int;
  seed : int64;
  h : float;
  steps : int;
  ordering : Linalg.Ordering.kind;
  probes : int array;
  sampler : sampler;
}

let default_config ~h ~steps =
  {
    samples = 1000;
    seed = 7L;
    h;
    steps;
    ordering = Linalg.Ordering.Nested_dissection;
    probes = [||];
    sampler = Pseudo;
  }

type result = {
  n : int;
  steps : int;
  h : float;
  samples : int;
  mean : float array;
  variance : float array;
  probe_values : float array array array;
  elapsed_seconds : float;
}

(* One worker's accumulation state. *)
type chunk = {
  count : int;
  c_mean : float array;  (** per (step, node) *)
  c_m2 : float array;
  c_probes : float array array array;  (** probe x step x local sample *)
}

(* Run [samples] Monte-Carlo transients with the given rng, accumulating
   Welford sums locally.  Pure function of its inputs: safe to run in
   parallel domains over the shared immutable model. *)
let run_chunk (m : Stochastic_model.t) (cfg : config) ~perm ~rng ~halton_offset ~samples
    ~progress =
  let n = m.Stochastic_model.n in
  let dim = Polychaos.Basis.dim m.Stochastic_model.basis in
  let families = Polychaos.Basis.families m.Stochastic_model.basis in
  let draw_xi =
    match cfg.sampler with
    | Pseudo -> fun () -> Polychaos.Basis.sample_point m.Stochastic_model.basis rng
    | Quasi_halton ->
        let halton = Prob.Halton.create ~skip:(32 + halton_offset) ~dim () in
        fun () ->
          let u = Prob.Halton.next halton in
          Array.mapi
            (fun d ud ->
              match families.(d).Polychaos.Family.name with
              | "hermite" -> Prob.Normal.ppf (Float.max 1e-12 (Float.min (1.0 -. 1e-12) ud))
              | "legendre" -> (2.0 *. ud) -. 1.0
              | other ->
                  invalid_arg
                    (Printf.sprintf "Monte_carlo: no quasi-random transform for %s" other))
            u
  in
  let total = (cfg.steps + 1) * n in
  let c_mean = Array.make total 0.0 in
  let c_m2 = Array.make total 0.0 in
  let c_probes =
    Array.map (fun _ -> Array.init (cfg.steps + 1) (fun _ -> Array.make samples 0.0)) cfg.probes
  in
  let drain = Array.make n 0.0 in
  let u = Array.make n 0.0 in
  let x = Array.make n 0.0 in
  let cx = Array.make n 0.0 in
  for s = 0 to samples - 1 do
    (* Draw from the basis' own orthogonality measure so Gaussian/Hermite
       and Uniform/Legendre models are both sampled consistently. *)
    let xi = draw_xi () in
    let g = Stochastic_model.g_of_sample m xi in
    let c = Stochastic_model.c_of_sample m xi in
    let psi = Polychaos.Basis.eval_all m.Stochastic_model.basis xi in
    let static = Array.make n 0.0 in
    List.iter
      (fun (rank, vec) -> Linalg.Vec.axpy ~alpha:psi.(rank) vec static)
      m.Stochastic_model.u_static_terms;
    let drain_coef =
      List.fold_left
        (fun acc (rank, cf) -> acc +. (cf *. psi.(rank)))
        0.0 m.Stochastic_model.u_drain_coefs
    in
    let inject t out =
      Array.blit static 0 out 0 n;
      Linalg.Vec.fill drain 0.0;
      Powergrid.Mna.drain_into m.Stochastic_model.mna t drain;
      Linalg.Vec.axpy ~alpha:drain_coef drain out
    in
    let count = float_of_int (s + 1) in
    let accumulate step x =
      let base = step * n in
      for i = 0 to n - 1 do
        let v = x.(i) in
        let delta = v -. c_mean.(base + i) in
        c_mean.(base + i) <- c_mean.(base + i) +. (delta /. count);
        c_m2.(base + i) <- c_m2.(base + i) +. (delta *. (v -. c_mean.(base + i)))
      done;
      Array.iteri (fun p node -> c_probes.(p).(step).(s) <- x.(node)) cfg.probes
    in
    (* DC initial condition, then backward Euler — both factorizations are
       fresh per sample (the matrices changed), the symbolic ordering is
       shared. *)
    let fdc = Linalg.Sparse_cholesky.factor ~perm g in
    inject 0.0 u;
    Array.blit u 0 x 0 n;
    Linalg.Sparse_cholesky.solve_in_place fdc x;
    accumulate 0 x;
    let fbe =
      Linalg.Sparse_cholesky.factor ~perm (Linalg.Sparse.axpy ~alpha:(1.0 /. cfg.h) c g)
    in
    for k = 1 to cfg.steps do
      inject (float_of_int k *. cfg.h) u;
      Linalg.Sparse.mul_vec_into c x cx;
      for i = 0 to n - 1 do
        x.(i) <- u.(i) +. (cx.(i) /. cfg.h)
      done;
      Linalg.Sparse_cholesky.solve_in_place fbe x;
      accumulate k x
    done;
    progress (s + 1)
  done;
  { count = samples; c_mean; c_m2; c_probes }

(* Chan/Pébay pairwise combination of two Welford states. *)
let merge_chunks a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let na = float_of_int a.count and nb = float_of_int b.count in
    let nab = na +. nb in
    let total = Array.length a.c_mean in
    let mean = Array.make total 0.0 and m2 = Array.make total 0.0 in
    for i = 0 to total - 1 do
      let delta = b.c_mean.(i) -. a.c_mean.(i) in
      mean.(i) <- a.c_mean.(i) +. (delta *. nb /. nab);
      m2.(i) <- a.c_m2.(i) +. b.c_m2.(i) +. (delta *. delta *. na *. nb /. nab)
    done;
    let c_probes =
      Array.mapi
        (fun p per_step ->
          Array.mapi (fun step xs -> Array.append xs b.c_probes.(p).(step)) per_step)
        a.c_probes
    in
    { count = a.count + b.count; c_mean = mean; c_m2 = m2; c_probes }
  end

let run ?(progress = fun _ -> ()) ?(domains = 1) (m : Stochastic_model.t) (cfg : config) =
  if cfg.samples <= 0 then invalid_arg "Monte_carlo.run: need at least one sample";
  if cfg.h <= 0.0 then invalid_arg "Monte_carlo.run: step must be positive";
  if domains < 1 then invalid_arg "Monte_carlo.run: need at least one domain";
  let n = m.Stochastic_model.n in
  let t0 = Util.Timer.start () in
  (* The pattern is identical across samples: order once, refactor per
     sample with the precomputed permutation. *)
  let perm = Linalg.Ordering.compute cfg.ordering (Stochastic_model.node_pattern m) in
  let domains = Int.min domains cfg.samples in
  let merged =
    if domains = 1 then
      run_chunk m cfg ~perm
        ~rng:(Prob.Rng.create ~seed:cfg.seed ())
        ~halton_offset:0 ~samples:cfg.samples ~progress
    else begin
      (* Split the samples across domains; each worker gets its own rng
         stream (or Halton segment) and local accumulators, merged at the
         end.  Workers only read the shared model. *)
      let base = cfg.samples / domains and extra = cfg.samples mod domains in
      let sizes = Array.init domains (fun d -> base + if d < extra then 1 else 0) in
      let offsets = Array.make domains 0 in
      for d = 1 to domains - 1 do
        offsets.(d) <- offsets.(d - 1) + sizes.(d - 1)
      done;
      let worker d =
        let seed = Int64.add cfg.seed (Int64.of_int (1_000_003 * (d + 1))) in
        run_chunk m cfg ~perm
          ~rng:(Prob.Rng.create ~seed ())
          ~halton_offset:offsets.(d) ~samples:sizes.(d)
          ~progress:(fun _ -> ())
      in
      let handles =
        Array.init (domains - 1) (fun d -> Domain.spawn (fun () -> worker (d + 1)))
      in
      let first = worker 0 in
      Array.fold_left (fun acc h -> merge_chunks acc (Domain.join h)) first handles
    end
  in
  let elapsed_seconds = Util.Timer.elapsed_s t0 in
  let variance = Array.map (fun v -> v /. float_of_int merged.count) merged.c_m2 in
  {
    n;
    steps = cfg.steps;
    h = cfg.h;
    samples = merged.count;
    mean = merged.c_mean;
    variance;
    probe_values = merged.c_probes;
    elapsed_seconds;
  }

let mean_at r ~step ~node = r.mean.((step * r.n) + node)

let variance_at r ~step ~node = r.variance.((step * r.n) + node)

let std_at r ~step ~node = sqrt (variance_at r ~step ~node)
