(** Stochastic-testing (ST) collocation backend — decoupled gPC solves on
    one factorization (Zhang et al., the intrusive collocation view of
    the Galerkin system).

    Instead of solving the coupled [(N+1) n] augmented system, the gPC
    solution is pinned down at [N+1] {e testing points}: at each selected
    point [xi_i] the original deterministic system
    [(G(xi_i) + s C(xi_i)) x = U(xi_i, t)] is solved on its own, and the
    Galerkin-style coefficients are recovered through the dense
    [(N+1) x (N+1)] Vandermonde transform [a = V^{-1} x].  The points are
    chosen from a tensor-grid (plus optional random top-up) candidate set
    by a greedy maximum-volume rule, which keeps [V] well conditioned and
    the recovery stable.

    Per point the work is purely deterministic sparse linear algebra:

    - DC: one Cholesky factorization of the {e mean} matrix [G(0)],
      shared read-only by every point; each point converges by iterative
      refinement [x <- x + G(0)^{-1} (b - G(xi_i) x)] (falling back to a
      per-point factorization when a far-out point refuses to contract —
      counted in [stats.health]).
    - Transient: one factorization of [G(xi_i) + C(xi_i)/h] {e per
      point}, reused across every backward-Euler step; each step is one
      level-scheduled triangular solve per point, warm-started trivially
      because the point states carry across steps.

    Points fan out across {!Util.Parallel.for_chunks} with per-chunk
    scratch; results are bitwise identical for any domain count.  All
    moments, yield bounds and {!Response} plumbing downstream are
    backend-agnostic — the recovered coefficients use the same block
    layout as {!Galerkin}. *)

type points = {
  basis : Polychaos.Basis.t;
  pts : float array array;  (** [size] testing points, each of length [dim] *)
  vand : Linalg.Dense.t;  (** [V.(i).(k) = psi_k(pts.(i))] *)
  inv : Linalg.Dense.t;  (** [V^{-1}] — point values to coefficients *)
}

val select_points : ?candidates:int -> ?seed:int64 -> Polychaos.Basis.t -> points
(** Greedy maximum-volume selection of [Basis.size] testing points.

    The candidate pool is the tensor grid of [(order+1)]-point Gaussian
    quadrature nodes per dimension, ranked by quadrature weight
    (heaviest first).  [candidates] bounds the pool: [0] (the default)
    keeps the whole tensor grid; a smaller value keeps only the
    heaviest candidates (never fewer than [Basis.size]); a larger value
    tops the pool up with random draws from the orthogonality measure
    seeded by [seed] — everything is deterministic given
    [(candidates, seed)].  Selection is modified Gram–Schmidt with
    exact ties broken toward the lower candidate index.  Raises
    [Invalid_argument] if the pool cannot span the basis. *)

val mean_g : Stochastic_model.t -> Linalg.Sparse.t
(** The nominal (rank-0) conductance matrix [G(0)] — what {!solve_dc}
    factorizes once.  Exposed so the batch engine can build and cache
    the factor itself. *)

val step_matrix : Stochastic_model.t -> points -> int -> h:float -> Linalg.Sparse.t
(** [step_matrix m p i ~h] is the point-[i] backward-Euler stepping
    matrix [G(xi_i) + C(xi_i)/h] — the engine's hook for caching the
    per-point factors. *)

type options = {
  candidates : int;  (** candidate-pool bound for {!select_points} *)
  seed : int64;  (** point-selection seed (random top-up only) *)
  refine_tol : float;  (** relative residual target of the DC refinement *)
  refine_max : int;  (** refinement sweeps before the per-point fallback *)
  ordering : Linalg.Ordering.kind;
  precond : Linalg.Precond.kind;
      (** mean-solver backend for the point refinements: exact Cholesky
          (default — historical behavior bitwise), [Ic0], [Amg], or
          [Auto] (resolves on [n]).  A non-exact backend also replaces
          the transient's N+1 per-point stepping factors with one mean
          stepping-matrix solver plus warm per-step refinement —
          bounded memory at 10^5+ nodes.  A caller-supplied [f0] /
          [fstep] cache always takes the exact path. *)
  probes : int array;
  domains : int;
      (** {!Util.Parallel.resolve} convention; points fan out across
          domains, results bitwise identical for any count *)
  metrics : Util.Metrics.t;
      (** receives [st.points], [st.refine_sweeps], [st.fallbacks] and
          the [st.select_s] / [st.factor_s] / [st.step_s] /
          [st.transform_s] spans (calling domain only) *)
}

val default_options : options
(** Tensor-grid candidates, seed 1, refinement to 1e-10 within 100
    sweeps, nested dissection, no probes, domains from the environment,
    global metrics. *)

type stats = {
  points : int;  (** N+1, the number of decoupled systems *)
  factorizations : int;  (** numeric factorizations performed here *)
  refine_sweeps : int;  (** total DC refinement sweeps over all points *)
  nnz_point : int;  (** stored nonzeros summed over per-point operators *)
  nnz_factor : int;  (** nonzeros summed over the factors applied *)
  select_seconds : float;  (** point selection + transform inversion *)
  factor_seconds : float;
  step_seconds : float;  (** point solves + coefficient recovery *)
  health : Linalg.Solve_report.aggregate;
      (** one report per DC refinement; a point that fell back to its
          own factorization counts as a repaired fallback *)
}

val solve_dc :
  ?options:options ->
  ?points:points ->
  ?f0:Linalg.Sparse_cholesky.t ->
  Stochastic_model.t ->
  Linalg.Vec.t * stats
(** Stochastic DC: refine all [N+1] points against one factorization of
    {!mean_g} and recover the augmented coefficient vector (same layout
    as {!Galerkin.solve_dc}).  [points] and [f0] inject a precomputed
    selection / factor (the engine's cache hook); [f0] must match the
    grid dimension ([Invalid_argument] otherwise). *)

val solve_transient :
  ?options:options ->
  ?points:points ->
  ?f0:Linalg.Sparse_cholesky.t ->
  ?fstep:Linalg.Sparse_cholesky.t array ->
  Stochastic_model.t ->
  h:float ->
  steps:int ->
  Response.t * stats
(** Backward-Euler transient from the stochastic DC state: [N+1]
    factorizations up front (or none, when [fstep] supplies the cached
    per-point factors — one per testing point, in point order), then one
    triangular solve per point per step with the point states carried
    across steps.  [fstep] must hold exactly [N+1] factors of the grid
    dimension. *)
