type t = {
  basis : Polychaos.Basis.t;
  tp : Polychaos.Triple_product.t;
  n : int;
  g_terms : (int * Linalg.Sparse.t) list;
  c_terms : (int * Linalg.Sparse.t) list;
  u_static_terms : (int * Linalg.Vec.t) list;
  u_drain_coefs : (int * float) list;
  mna : Powergrid.Mna.t;
  vdd : float;
}

let degree1_rank basis d =
  let idx = Array.make (Polychaos.Basis.dim basis) 0 in
  idx.(d) <- 1;
  Polychaos.Basis.rank_of_index basis idx

(* Split the wire conductance into [k] vertical stripes by node id. *)
let grouped_wire_matrices (circuit : Powergrid.Circuit.t) k =
  let n = circuit.num_nodes in
  let builders =
    Array.init k (fun _ -> Linalg.Sparse_builder.create ~nrows:n ~ncols:n ())
  in
  let group_of_node node = Int.min (k - 1) (node * k / n) in
  Array.iter
    (fun (r : Powergrid.Circuit.resistor) ->
      match r.rkind with
      | Powergrid.Circuit.Metal | Powergrid.Circuit.Via ->
          let anchor = if r.rnode1 >= 0 then r.rnode1 else r.rnode2 in
          let b = builders.(group_of_node anchor) in
          let opt n = if n = Powergrid.Circuit.ground then None else Some n in
          Linalg.Sparse_builder.stamp_conductance b (opt r.rnode1) (opt r.rnode2) (1.0 /. r.ohms)
      | Powergrid.Circuit.Package -> ())
    circuit.resistors;
  Array.map Linalg.Sparse_builder.to_csc builders

let build ?(order = 2) ?tp (vm : Varmodel.t) ~vdd circuit =
  let mna = Powergrid.Mna.assemble circuit in
  let n = mna.Powergrid.Mna.n in
  let dim = Varmodel.dim vm in
  if vm.multiplicative_wt && vm.mode <> Varmodel.Separate then
    invalid_arg "Stochastic_model.build: multiplicative_wt needs Separate mode (xiW, xiT kept apart)";
  let family =
    match vm.family with
    | Varmodel.Gaussian -> Polychaos.Family.hermite
    | Varmodel.Uniform ->
        if vm.mode = Varmodel.Combined then
          invalid_arg
            "Stochastic_model.build: the Combined (Eq. 14) reduction needs Gaussian closure; \
             use Separate or Grouped_wires with Uniform variations";
        Polychaos.Family.legendre
  in
  let basis = Polychaos.Basis.isotropic family ~dim ~order in
  let tp =
    match tp with
    | Some provider -> provider basis
    | None -> Polychaos.Triple_product.create basis
  in
  let rank = degree1_rank basis in
  (* A degree-1 basis polynomial has variance norm_sq 1 (= 1 for Hermite,
     1/3 for Legendre); scale its coefficient so the parameter's standard
     deviation equals the requested sigma regardless of the family. *)
  let unit_scale = 1.0 /. sqrt (Polychaos.Family.norm_sq family 1) in
  let vm =
    {
      vm with
      Varmodel.sigma_w = vm.sigma_w *. unit_scale;
      sigma_t = vm.sigma_t *. unit_scale;
      sigma_l = vm.sigma_l *. unit_scale;
      current_sensitivity = vm.current_sensitivity *. unit_scale;
    }
  in
  let ga = Powergrid.Mna.g_total mna in
  let ca = Powergrid.Mna.c_total mna in
  let sg = Varmodel.sigma_g vm in
  let g_wire = mna.Powergrid.Mna.g_wire and g_pad = mna.Powergrid.Mna.g_pad in
  let c_gate = mna.Powergrid.Mna.c_gate in
  let u_pad = mna.Powergrid.Mna.u_pad in
  let g_var_full =
    (* The conductances that follow xiG; pads optionally included. *)
    if vm.pad_varies then Linalg.Sparse.add g_wire g_pad else g_wire
  in
  let g_terms, u_static_terms, u_drain_coefs =
    match vm.mode with
    | Varmodel.Combined ->
        let rg = rank 0 and rl = rank 1 in
        let g_terms = [ (0, ga); (rg, Linalg.Sparse.scale sg g_var_full) ] in
        let u_static =
          (0, Array.copy u_pad)
          :: (if vm.pad_varies then [ (rg, Linalg.Vec.scaled sg u_pad) ] else [])
        in
        let u_drain = [ (0, 1.0); (rl, vm.current_sensitivity) ] in
        (g_terms, u_static, u_drain)
    | Varmodel.Separate ->
        let rw = rank 0 and rt = rank 1 and rl = rank 2 in
        let g_terms =
          [
            (0, ga);
            (rw, Linalg.Sparse.scale vm.sigma_w g_var_full);
            (rt, Linalg.Sparse.scale vm.sigma_t g_var_full);
          ]
          @
          (* Exact multiplicative W*T conductance: the (1 + sw xiW)(1 + st
             xiT) product contributes a degree-2 cross term sw st xiW xiT
             — the basis function with multi-index (1, 1, 0). *)
          if vm.multiplicative_wt then begin
            if order < 2 then
              invalid_arg "Stochastic_model.build: multiplicative_wt needs order >= 2";
            let idx = Array.make dim 0 in
            idx.(0) <- 1;
            idx.(1) <- 1;
            let rwt = Polychaos.Basis.rank_of_index basis idx in
            [ (rwt, Linalg.Sparse.scale (vm.sigma_w *. vm.sigma_t) g_var_full) ]
          end
          else []
        in
        let u_static =
          (0, Array.copy u_pad)
          ::
          (if vm.pad_varies then
             [
               (rw, Linalg.Vec.scaled vm.sigma_w u_pad);
               (rt, Linalg.Vec.scaled vm.sigma_t u_pad);
             ]
           else [])
        in
        let u_drain = [ (0, 1.0); (rl, vm.current_sensitivity) ] in
        (g_terms, u_static, u_drain)
    | Varmodel.Grouped_wires k ->
        if k < 1 then invalid_arg "Stochastic_model.build: need at least one wire group";
        let groups = grouped_wire_matrices circuit k in
        let rl = rank k in
        let g_terms =
          (0, ga)
          :: (Array.to_list groups
             |> List.mapi (fun g m -> (rank g, Linalg.Sparse.scale sg m))
             |> List.filter (fun (_, m) -> Linalg.Sparse.nnz m > 0))
        in
        (* Pad variation is not attributed to a stripe in grouped mode. *)
        let u_static = [ (0, Array.copy u_pad) ] in
        let u_drain = [ (0, 1.0); (rl, vm.current_sensitivity) ] in
        (g_terms, u_static, u_drain)
  in
  let c_terms =
    let rl =
      match vm.mode with
      | Varmodel.Combined -> rank 1
      | Varmodel.Separate -> rank 2
      | Varmodel.Grouped_wires k -> rank k
    in
    let gate_term = Linalg.Sparse.scale vm.sigma_l c_gate in
    (0, ca) :: (if Linalg.Sparse.nnz gate_term > 0 then [ (rl, gate_term) ] else [])
  in
  { basis; tp; n; g_terms; c_terms; u_static_terms; u_drain_coefs; mna; vdd }

let eval_terms_matrix m terms xi =
  let psi = Polychaos.Basis.eval_all m.basis xi in
  List.fold_left
    (fun acc (rank, mat) ->
      match acc with
      | None -> Some (Linalg.Sparse.scale psi.(rank) mat)
      | Some sum -> Some (Linalg.Sparse.axpy ~alpha:psi.(rank) mat sum))
    None terms
  |> function
  | Some s -> s
  | None -> Linalg.Sparse.zero ~nrows:m.n ~ncols:m.n

let g_of_sample m xi = eval_terms_matrix m m.g_terms xi

let c_of_sample m xi = eval_terms_matrix m m.c_terms xi

let xi_rank m d = degree1_rank m.basis d

let node_pattern m =
  let add acc (_, mat) = Linalg.Sparse.add acc (Linalg.Sparse.map_values Float.abs mat) in
  let zero = Linalg.Sparse.zero ~nrows:m.n ~ncols:m.n in
  List.fold_left add (List.fold_left add zero m.g_terms) m.c_terms

let drain_profile_into m t u =
  Linalg.Vec.fill u 0.0;
  Powergrid.Mna.drain_into m.mna t u

let u_of_sample m xi t =
  let psi = Polychaos.Basis.eval_all m.basis xi in
  let u = Linalg.Vec.create m.n in
  List.iter (fun (rank, vec) -> Linalg.Vec.axpy ~alpha:psi.(rank) vec u) m.u_static_terms;
  let drain = Linalg.Vec.create m.n in
  Powergrid.Mna.drain_into m.mna t drain;
  let coef =
    List.fold_left (fun acc (rank, c) -> acc +. (c *. psi.(rank))) 0.0 m.u_drain_coefs
  in
  Linalg.Vec.axpy ~alpha:coef drain u;
  u
