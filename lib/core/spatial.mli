(** Intra-die (spatially correlated) variation via Karhunen–Loève modes.

    The paper models parameters as *spatial stochastic processes* but
    evaluates the inter-die case where one die sees a single value.  This
    module supplies the intra-die extension: a Gaussian random field with
    exponential covariance over the die, discretized on the chip-region
    grid and truncated by Karhunen–Loève (eigen) decomposition into a few
    independent standard normals — which then drive a chaos expansion
    exactly like the inter-die variables. *)

type t = {
  centers : (float * float) array;  (** region centers in normalized die coords *)
  mode_weights : float array array;
      (** [mode_weights.(m).(r)] = sqrt(lambda_m) phi_m(r): the parameter
          shift in region [r] per unit of mode variable [m] *)
  captured : float;  (** fraction of the field variance kept *)
}

val region_centers : Powergrid.Grid_spec.t -> (float * float) array
(** Centers of the spec's regions_x x regions_y partition, in [0,1]^2. *)

val exponential_covariance :
  sigma:float -> corr_length:float -> (float * float) array -> Linalg.Dense.t
(** [C(r, s) = sigma^2 exp (-dist(r, s) / corr_length)]. *)

val karhunen_loeve :
  sigma:float -> corr_length:float -> centers:(float * float) array -> energy:float -> t
(** Keep the leading eigenmodes until [energy] (in (0, 1]) of the total
    variance is captured. *)

val modes : t -> int

val field_variance : t -> int -> float
(** Truncated variance of the field at a region (should approach sigma^2
    as [energy] tends to 1). *)

val sample_field : t -> Prob.Rng.t -> float array
(** Draw one realization of the (truncated) field over the regions. *)

val build_model :
  ?order:int ->
  t ->
  base:Varmodel.t ->
  spec:Powergrid.Grid_spec.t ->
  Powergrid.Circuit.t ->
  Stochastic_model.t
(** Stochastic grid model where the wire conductance in region [r] follows
    the spatial field (relative variation) while [xiL] remains a global
    inter-die variable as in [base]:
    [G(xi) = Ga + sum_m (sum_r w_m(r) G_r) xi_m].
    The basis has [modes t + 1] dimensions, [xiL] last. *)
