(** Non-intrusive stochastic collocation (pseudo-spectral projection).

    The intrusive Galerkin method of the paper couples all chaos
    coefficients into one augmented system.  The standard non-intrusive
    alternative runs ordinary *deterministic* transients at the nodes of a
    tensor Gaussian quadrature grid and projects the results onto the same
    basis:

    [a_k(t) = sum_q w_q x(t; xi_q) psi_k(xi_q) / E(psi_k^2)]

    For the paper's linear(ized) models both methods converge to the same
    expansion; collocation reuses an off-the-shelf simulator ([Transient])
    unchanged, at the cost of [points ^ dim] full transients.  Provided as
    an independent cross-check of the Galerkin solver and as the ablation
    the gPC literature always tabulates. *)

val solve_transient :
  ?points:int ->
  ?probes:int array ->
  Stochastic_model.t ->
  h:float ->
  steps:int ->
  Response.t * int
(** [solve_transient m ~h ~steps] runs the tensor-collocation transient.
    [points] is the 1-D quadrature size (default [order + 1], which
    integrates the linear model's projections exactly).  Returns the
    response and the number of deterministic transients performed. *)
