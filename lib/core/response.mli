(** The stochastic voltage response produced by the Galerkin solve.

    For every node and timestep the first two moments are kept; at selected
    probe nodes the full chaos coefficient vector is kept, giving the
    explicit analytic response [x(t, xi) = sum_k a_k(t) psi_k(xi)] that can
    be evaluated, sampled, and turned into densities. *)

type t = {
  basis : Polychaos.Basis.t;
  n : int;  (** nodes *)
  steps : int;  (** timesteps after t = 0 *)
  h : float;
  vdd : float;
  mean : float array;  (** [(steps+1) * n], index [step * n + node] *)
  variance : float array;  (** same layout *)
  probes : int array;
  probe_coefs : float array array;
      (** [probe_coefs.(p).(step * size + k)] = coefficient of [psi_k] *)
}

val create :
  basis:Polychaos.Basis.t ->
  n:int ->
  steps:int ->
  h:float ->
  vdd:float ->
  probes:int array ->
  t
(** Zero-initialized container; the solver fills it step by step. *)

val record_step : t -> step:int -> coefs:Linalg.Vec.t -> unit
(** [record_step r ~step ~coefs] ingests the full augmented coefficient
    vector (block k = coefficients of [psi_k], length n each) at a step. *)

val mean_at : t -> step:int -> node:int -> float

val variance_at : t -> step:int -> node:int -> float

val std_at : t -> step:int -> node:int -> float

val probe_index : t -> int -> int
(** Position of a node in the probe list. Raises [Not_found]. *)

val pce_at : t -> node:int -> step:int -> Polychaos.Pce.t
(** The explicit voltage PCE at a probe node. Raises [Not_found] if the
    node is not probed. *)

val sample_voltage : t -> node:int -> step:int -> Prob.Rng.t -> float
(** Draw one voltage realization at a probe node by sampling [xi]. *)

val moments_at : t -> node:int -> step:int -> Prob.Gram_charlier.moments
(** First four moments of a probe node's voltage, computed from the
    expansion (mean/variance exactly, skew/kurtosis by exact quadrature). *)

val density_at : t -> node:int -> step:int -> float -> float
(** Gram–Charlier density of a probe node's voltage reconstructed from
    {!moments_at} — the paper's Sec. 5 route from moments to PDFs. *)

val worst_mean_drop : t -> step:int -> float * int
(** Largest mean voltage drop at a step and its node. *)

val export_csv : t -> string -> unit
(** Write the probe trajectories as CSV
    ([step, time_s, node, mean_v, sigma_v, skewness]) for external
    plotting. *)
