(** The paper's Sec. 5.1 special case: deterministic grid, stochastic
    excitation only.

    Threshold-voltage variation per chip region makes the leakage currents
    lognormal; expanding the excitation in the Hermite basis decouples the
    Galerkin system into [N + 1] independent deterministic transients that
    share a *single* factorization of [G + C/h] — and unlike the
    bound-based approaches of Ferzli & Najm, the moments come out exactly. *)

type t = {
  mna : Powergrid.Mna.t;
  basis : Polychaos.Basis.t;
  leaks : (int * int * float) array;  (** (node, region, nominal amps) *)
  lambda : float;  (** leakage = I0 exp (lambda xi_region) *)
  regions : int;
  vdd : float;
}

val make :
  ?order:int ->
  regions:int ->
  lambda:float ->
  leaks:(int * int * float) array ->
  vdd:float ->
  Powergrid.Circuit.t ->
  t
(** [lambda = sigma_vth * d(ln I)/d(Vth)] in physical terms; here it is the
    lognormal shape parameter directly. Default order 2. *)

val excitation_term : t -> int -> Linalg.Vec.t
(** Static excitation coefficient [U_k] of basis rank [k] (leakage part
    only; rank 0 also carries the mean leakage). *)

val solve :
  ?domains:int ->
  ?metrics:Util.Metrics.t ->
  ?factors:Linalg.Sparse_cholesky.t * Linalg.Sparse_cholesky.t ->
  t ->
  h:float ->
  steps:int ->
  probes:int array ->
  Response.t * float
(** Decoupled solves: one factorization, [ (N+1) * steps ] triangular
    solves. Returns the response and elapsed seconds.  The [N+1]
    independent block solves of each step run chunked across [domains]
    ({!Util.Parallel.resolve} convention: [0] = [OPERA_DOMAINS]
    environment variable, default sequential); results are identical for
    any domain count.

    [metrics] receives the [special.factor_s] / [special.step_s] spans
    (default {!Util.Metrics.global}).  [factors] injects prefactorized
    [(G, G + C/h)] Cholesky factors — the batch engine's
    factor-once/solve-many hook; both must match the grid dimension
    ([Invalid_argument] otherwise), and the factor of the stepping
    matrix must of course correspond to the same [h]. *)

val solve_coupled :
  ?solver:Galerkin.solver ->
  ?policy:Galerkin.policy ->
  t ->
  h:float ->
  steps:int ->
  probes:int array ->
  Response.t * float
(** The same problem through the full coupled Galerkin machinery (used by
    tests to verify the decoupling is exact).  [solver] defaults to
    {!Galerkin.default_options}' direct route; [policy] (iterative solvers
    only) defaults to [Warn]. *)

val monte_carlo :
  t -> samples:int -> seed:int64 -> h:float -> steps:int -> probes:int array ->
  Monte_carlo.result
(** Baseline sampling of the lognormal leakage (factorization hoisted out
    of the sample loop since the matrix is deterministic — the favorable
    MC implementation). *)
