(* Stochastic-testing collocation: pin the gPC solution down at N+1
   well-chosen testing points, solve each point as an ordinary
   deterministic system, and recover the Galerkin-layout coefficients
   through the dense inverse-Vandermonde transform.  The point solves
   are embarrassingly parallel and share factors read-only, so the
   whole backend rides the PR 5 kernel discipline: per-chunk scratch,
   disjoint output slices, bitwise-identical results at any domain
   count. *)

type points = {
  basis : Polychaos.Basis.t;
  pts : float array array;
  vand : Linalg.Dense.t;
  inv : Linalg.Dense.t;
}

let default_seed = 1L

(* ---- point selection -------------------------------------------------

   Candidates: the tensor grid of (order+1)-point Gaussian nodes per
   dimension, ranked heaviest quadrature weight first (ties toward the
   lower enumeration index), optionally topped up with seeded draws
   from the orthogonality measure.  Selection: greedy maximum volume by
   modified Gram-Schmidt on the candidate rows of the Vandermonde
   matrix — each round takes the candidate with the largest residual
   norm (exact ties toward the lower index), which keeps |det V| large
   and V^-1 tame.  Everything is a deterministic function of
   (basis, candidates, seed). *)

let select_points ?(candidates = 0) ?(seed = default_seed) basis =
  let size = Polychaos.Basis.size basis in
  let dim = Polychaos.Basis.dim basis in
  let order = Polychaos.Basis.order basis in
  let fams = Polychaos.Basis.families basis in
  let npts = order + 1 in
  let rules = Array.map (fun f -> Polychaos.Quadrature.gauss f npts) fams in
  let tensor_n =
    let acc = ref 1 in
    for _ = 1 to dim do
      acc := !acc * npts
    done;
    !acc
  in
  let tensor_pts = Array.init tensor_n (fun _ -> Array.make dim 0.0) in
  let tensor_w = Array.make tensor_n 1.0 in
  for idx = 0 to tensor_n - 1 do
    let rest = ref idx in
    for d = 0 to dim - 1 do
      let digit = !rest mod npts in
      rest := !rest / npts;
      tensor_pts.(idx).(d) <- rules.(d).Polychaos.Quadrature.nodes.(digit);
      tensor_w.(idx) <- tensor_w.(idx) *. rules.(d).Polychaos.Quadrature.weights.(digit)
    done
  done;
  let by_weight = Array.init tensor_n Fun.id in
  Array.sort
    (fun a b ->
      let c = compare tensor_w.(b) tensor_w.(a) in
      if c <> 0 then c else compare a b)
    by_weight;
  let pool_n =
    if candidates <= 0 then Int.max size tensor_n else Int.max size candidates
  in
  let pool =
    if pool_n <= tensor_n then Array.init pool_n (fun i -> tensor_pts.(by_weight.(i)))
    else begin
      let rng = Prob.Rng.create ~seed () in
      Array.init pool_n (fun i ->
          if i < tensor_n then tensor_pts.(by_weight.(i))
          else Polychaos.Basis.sample_point basis rng)
    end
  in
  let rows = Array.map (Polychaos.Basis.eval_all basis) pool in
  let resid = Array.map Array.copy rows in
  let taken = Array.make pool_n false in
  let chosen = Array.make size 0 in
  for s = 0 to size - 1 do
    let best = ref (-1) and best_norm = ref 0.0 in
    for c = 0 to pool_n - 1 do
      if not taken.(c) then begin
        let nrm = Linalg.Vec.norm2 resid.(c) in
        if nrm > !best_norm then begin
          best := c;
          best_norm := nrm
        end
      end
    done;
    if !best < 0 || !best_norm <= 1e-10 then
      invalid_arg "St_solver.select_points: candidate set does not span the basis";
    taken.(!best) <- true;
    chosen.(s) <- !best;
    let q = Array.copy resid.(!best) in
    Linalg.Vec.scale (1.0 /. !best_norm) q;
    for c = 0 to pool_n - 1 do
      if not taken.(c) then
        Linalg.Vec.axpy ~alpha:(-.Linalg.Vec.dot resid.(c) q) q resid.(c)
    done
  done;
  let pts = Array.init size (fun s -> Array.copy pool.(chosen.(s))) in
  let vand = Linalg.Dense.init size size (fun i k -> rows.(chosen.(i)).(k)) in
  let inv = Linalg.Lu.inverse (Linalg.Lu.factor vand) in
  { basis; pts; vand; inv }

(* ---- per-point operators and excitations ----------------------------- *)

let nominal (m : Stochastic_model.t) terms =
  match List.assoc_opt 0 terms with
  | Some mat -> mat
  | None -> Linalg.Sparse.zero ~nrows:m.n ~ncols:m.n

let mean_g m = nominal m m.Stochastic_model.g_terms

let step_matrix (m : Stochastic_model.t) (p : points) i ~h =
  if h <= 0.0 then invalid_arg "St_solver.step_matrix: step must be positive";
  let gi = Stochastic_model.g_of_sample m p.pts.(i) in
  let ci = Stochastic_model.c_of_sample m p.pts.(i) in
  Linalg.Sparse.axpy ~alpha:(1.0 /. h) ci gi

(* The excitation at a point splits as [u_static(xi) + dcoef(xi) i(t)]
   (the decomposition Stochastic_model.u_of_sample evaluates), so the
   drain profile is computed once per step on the main domain and each
   point only scales it. *)
let static_of_point (m : Stochastic_model.t) psi =
  let v = Array.make m.n 0.0 in
  List.iter (fun (rank, vec) -> Linalg.Vec.axpy ~alpha:psi.(rank) vec v) m.u_static_terms;
  v

let drain_coef_of_point (m : Stochastic_model.t) psi =
  List.fold_left (fun acc (rank, c) -> acc +. (psi.(rank) *. c)) 0.0 m.u_drain_coefs

(* ---- options / stats -------------------------------------------------- *)

type options = {
  candidates : int;
  seed : int64;
  refine_tol : float;
  refine_max : int;
  ordering : Linalg.Ordering.kind;
  precond : Linalg.Precond.kind;
  probes : int array;
  domains : int;
  metrics : Util.Metrics.t;
}

let default_options =
  {
    candidates = 0;
    seed = default_seed;
    refine_tol = 1e-10;
    refine_max = 100;
    ordering = Linalg.Ordering.Nested_dissection;
    precond = Linalg.Precond.Cholesky;
    probes = [||];
    domains = 0;
    metrics = Util.Metrics.global;
  }

type stats = {
  points : int;
  factorizations : int;
  refine_sweeps : int;
  nnz_point : int;
  nnz_factor : int;
  select_seconds : float;
  factor_seconds : float;
  step_seconds : float;
  health : Linalg.Solve_report.aggregate;
}

(* ---- shared machinery ------------------------------------------------- *)

let checked_points ~options (m : Stochastic_model.t) = function
  | Some p ->
      if p.basis != m.basis && Polychaos.Basis.size p.basis <> Polychaos.Basis.size m.basis
      then invalid_arg "St_solver: supplied points were selected for another basis";
      p
  | None -> select_points ~candidates:options.candidates ~seed:options.seed m.basis

(* The shared mean solver behind the point refinements: a caller-cached
   exact factor when supplied, otherwise whatever backend
   [options.precond] resolves to on n — exact Cholesky below the auto
   threshold (today's behavior bitwise), AMG above it.  Only an exact
   factorization ticks the [count] stat. *)
let checked_ms ~options (m : Stochastic_model.t) ~count = function
  | Some f ->
      if Linalg.Sparse_cholesky.dim f <> m.n then
        invalid_arg "St_solver: mean factor does not match the grid dimension";
      Linalg.Precond.of_factor f
  | None ->
      let kind = Linalg.Precond.resolve options.precond ~n:m.n in
      if kind = Linalg.Precond.Cholesky then count ();
      Linalg.Precond.make ~ordering:options.ordering kind (mean_g m)

(* One point's solve against the shared mean solver: start from
   [M^{-1} b] (or the caller's iterate when [warm]), then iteratively
   refine [x <- x + M^{-1} r] until the relative residual meets [tol].
   With the exact mean factor the contraction rate is the spectral
   radius of [I - G(0)^{-1} G(xi)] ~ O(sigma |xi|); the approximate
   backends (ic0, AMG V-cycles) fold their own contraction on the mean
   into the same stationary iteration.  Points that refuse to contract
   within [refine_max] sweeps fall back to their own factorization
   (returned so the caller can count it — and reuse it).  Everything
   writes chunk-local or point-owned buffers only; [resid] doubles as
   the triangular-solve workspace of the fallback. *)
let refine_point ?(warm = false) ~ms ~msws ~ordering ~tol ~max_refine ~g ~b ~resid x =
  let n = Array.length b in
  let t0 = Util.Timer.start () in
  let bnorm = Linalg.Vec.norm2 b in
  if not warm then begin
    Array.blit b 0 x 0 n;
    Linalg.Precond.apply_in_place ms msws x
  end;
  let sweeps = ref 0 and rn = ref 0.0 and converged = ref (Util.Floats.is_zero bnorm) in
  let fell_back = ref None in
  let running = ref (not !converged) in
  while !running do
    Array.blit b 0 resid 0 n;
    Linalg.Sparse.mul_vec_acc ~alpha:(-1.0) g x resid;
    rn := Linalg.Vec.norm2 resid;
    if !rn <= tol *. bnorm then begin
      converged := true;
      running := false
    end
    else if !sweeps >= max_refine then running := false
    else begin
      Linalg.Precond.apply_in_place ms msws resid;
      Linalg.Vec.axpy ~alpha:1.0 resid x;
      incr sweeps
    end
  done;
  if not !converged then begin
    (* A tail point whose G(xi) drifted too far from the mean: factor it
       directly so the returned state always meets the tolerance. *)
    let fi = Linalg.Sparse_cholesky.factor ~ordering g in
    fell_back := Some fi;
    Array.blit b 0 x 0 n;
    Linalg.Sparse_cholesky.solve_in_place_ws fi ~work:resid x
  end;
  let report =
    Linalg.Solve_report.make ~solver:"st-refine" ~iterations:!sweeps ~residual_norm:!rn
      ~rhs_norm:bnorm ~tol ~converged:!converged
      ~wall_seconds:(Util.Timer.elapsed_s t0) ()
  in
  (report, !fell_back)

(* Coefficient recovery: block k of [coefs] is [sum_i inv(k,i) x_i],
   chunked over blocks with disjoint writes (i ascends in a fixed order,
   so the summation is bitwise stable). *)
let[@opera.hot] transform_into (p : points) ~n ~domains x_pts coefs =
  let size = Array.length p.pts in
  Util.Parallel.for_chunks ~domains size (fun ~chunk:_ ~lo ~hi ->
      for k = lo to hi - 1 do
        let base = k * n in
        Array.fill coefs base n 0.0;
        for i = 0 to size - 1 do
          let w = Linalg.Dense.get p.inv k i in
          if Util.Floats.nonzero w then begin
            let xi = x_pts.(i) in
            for j = 0 to n - 1 do
              coefs.(base + j) <- coefs.(base + j) +. (w *. xi.(j))
            done
          end
        done
      done)

(* Aggregate per-point refinement results into the health ledger and
   metrics — after the barrier, from the calling domain only. *)
let settle_reports ~metrics ~agg reports =
  let sweeps = ref 0 and fallbacks = ref 0 in
  Array.iter
    (fun entry ->
      match entry with
      | None -> ()
      | Some ((report : Linalg.Solve_report.t), fell_back) ->
          Linalg.Solve_report.agg_add agg report;
          sweeps := !sweeps + report.Linalg.Solve_report.iterations;
          if Option.is_some fell_back then begin
            Linalg.Solve_report.agg_count_fallback agg;
            incr fallbacks
          end)
    reports;
  Util.Metrics.incr ~by:!sweeps metrics "st.refine_sweeps";
  if !fallbacks > 0 then Util.Metrics.incr ~by:!fallbacks metrics "st.fallbacks";
  (!sweeps, !fallbacks)

(* Fan the N+1 points across domains.  [chunks > 1] forces the inner
   triangular sweeps sequential (each domain owns whole points); with a
   single chunk the spare domains level-schedule inside the solves —
   the same split as the mean-block preconditioner. *)
let point_dc_sweep ~options ~ms ~g_pts ~b_pts ~x_pts reports =
  let size = Array.length g_pts in
  let n = Array.length b_pts.(0) in
  let d = Util.Parallel.resolve options.domains in
  let chunks = Int.max 1 (Int.min d size) in
  let msws = Array.init chunks (fun _ -> Linalg.Precond.create_ws ms) in
  let resid = Array.init chunks (fun _ -> Array.make n 0.0) in
  let tol = options.refine_tol and max_refine = options.refine_max in
  let ordering = options.ordering in
  Util.Parallel.for_chunks ~domains:d size (fun ~chunk ~lo ~hi ->
      for i = lo to hi - 1 do
        let r =
          refine_point ~ms ~msws:msws.(chunk) ~ordering ~tol ~max_refine ~g:g_pts.(i)
            ~b:b_pts.(i) ~resid:resid.(chunk) x_pts.(i)
        in
        reports.(i) <- Some r
      done)

(* ---- DC ---------------------------------------------------------------- *)

let solve_dc ?(options = default_options) ?points ?f0 (m : Stochastic_model.t) =
  let metrics = options.metrics in
  let factorizations = ref 0 in
  let count () = incr factorizations in
  let t_sel = Util.Metrics.start_span () in
  let p = checked_points ~options m points in
  let select_seconds = Util.Metrics.stop_span metrics "st.select_s" t_sel in
  let size = Array.length p.pts in
  let n = m.n in
  Util.Metrics.incr ~by:size metrics "st.points";
  let t_f = Util.Metrics.start_span () in
  let ms = checked_ms ~options m ~count f0 in
  let factor_seconds = Util.Metrics.stop_span metrics "st.factor_s" t_f in
  let g_pts = Array.init size (fun i -> Stochastic_model.g_of_sample m p.pts.(i)) in
  let b_pts = Array.init size (fun i -> Stochastic_model.u_of_sample m p.pts.(i) 0.0) in
  let x_pts = Array.init size (fun _ -> Array.make n 0.0) in
  let reports = Array.make size None in
  let agg = Linalg.Solve_report.agg_create () in
  let t_steps = Util.Timer.start () in
  Util.Metrics.span metrics "st.step_s" (fun () ->
      point_dc_sweep ~options ~ms ~g_pts ~b_pts ~x_pts reports);
  let sweeps, fallbacks = settle_reports ~metrics ~agg reports in
  let coefs = Array.make (size * n) 0.0 in
  Util.Metrics.span metrics "st.transform_s" (fun () ->
      transform_into p ~n ~domains:options.domains x_pts coefs);
  let step_seconds = Util.Timer.elapsed_s t_steps in
  let nnz_point = Array.fold_left (fun acc g -> acc + Linalg.Sparse.nnz g) 0 g_pts in
  ( coefs,
    {
      points = size;
      factorizations = !factorizations + fallbacks;
      refine_sweeps = sweeps;
      nnz_point;
      nnz_factor = Linalg.Precond.stored_nnz ms;
      select_seconds;
      factor_seconds;
      step_seconds;
      health = agg;
    } )

(* ---- transient --------------------------------------------------------- *)

let solve_transient ?(options = default_options) ?points ?f0 ?fstep
    (m : Stochastic_model.t) ~h ~steps =
  if h <= 0.0 then invalid_arg "St_solver.solve_transient: step must be positive";
  let metrics = options.metrics in
  let factorizations = ref 0 in
  let count () = incr factorizations in
  let t_sel = Util.Metrics.start_span () in
  let p = checked_points ~options m points in
  let select_seconds = Util.Metrics.stop_span metrics "st.select_s" t_sel in
  let size = Array.length p.pts in
  let n = m.n in
  Util.Metrics.incr ~by:size metrics "st.points";
  let g_pts = Array.init size (fun i -> Stochastic_model.g_of_sample m p.pts.(i)) in
  let c_pts = Array.init size (fun i -> Stochastic_model.c_of_sample m p.pts.(i)) in
  let t_f = Util.Metrics.start_span () in
  let ms = checked_ms ~options m ~count f0 in
  (* Stepping backend: cached exact factors when supplied; otherwise the
     exact route builds the classic N+1 per-point factors, while the
     approximate backends (amg / ic0 / auto at large n) build ONE mean
     stepping-matrix solver [G(0) + C(0)/h] plus the per-point stepping
     matrices, and every step refines each point against the mean solver
     from its (structurally warm) previous state — no N+1 factors
     resident, which is what survives at 10^5+ nodes. *)
  let fstep, mstep, a_pts =
    match fstep with
    | Some fs ->
        if Array.length fs <> size then
          invalid_arg "St_solver.solve_transient: need one stepping factor per testing point";
        Array.iter
          (fun f ->
            if Linalg.Sparse_cholesky.dim f <> n then
              invalid_arg "St_solver.solve_transient: stepping factor dimension mismatch")
          fs;
        (Some fs, None, [||])
    | None -> (
        match Linalg.Precond.resolve options.precond ~n with
        | Linalg.Precond.Cholesky ->
            (* One symbolic ordering serves every point: all realizations
               share the node pattern, only the numeric values move. *)
            let perm =
              Linalg.Ordering.compute options.ordering (Stochastic_model.node_pattern m)
            in
            ( Some
                (Array.init size (fun i ->
                     count ();
                     Linalg.Sparse_cholesky.factor ~perm
                       (Linalg.Sparse.axpy ~alpha:(1.0 /. h) c_pts.(i) g_pts.(i)))),
              None,
              [||] )
        | kind ->
            let mean_step =
              Linalg.Sparse.axpy ~alpha:(1.0 /. h) (nominal m m.c_terms) (mean_g m)
            in
            ( None,
              Some (Linalg.Precond.make ~ordering:options.ordering kind mean_step),
              Array.init size (fun i ->
                  Linalg.Sparse.axpy ~alpha:(1.0 /. h) c_pts.(i) g_pts.(i)) ))
  in
  let factor_seconds = Util.Metrics.stop_span metrics "st.factor_s" t_f in
  let psi_pts = Array.map (Polychaos.Basis.eval_all m.basis) p.pts in
  let static_pts = Array.map (static_of_point m) psi_pts in
  let dcoef_pts = Array.map (drain_coef_of_point m) psi_pts in
  let response =
    Response.create ~basis:m.basis ~n ~steps ~h ~vdd:m.vdd ~probes:options.probes
  in
  let d = Util.Parallel.resolve options.domains in
  let chunks = Int.max 1 (Int.min d size) in
  let work = Array.init chunks (fun _ -> Array.make n 0.0) in
  let ubuf = Array.init chunks (fun _ -> Array.make n 0.0) in
  let x_pts = Array.init size (fun _ -> Array.make n 0.0) in
  let coefs = Array.make (size * n) 0.0 in
  let drain_buf = Array.make n 0.0 in
  let reports = Array.make size None in
  let agg = Linalg.Solve_report.agg_create () in
  let t_steps = Util.Timer.start () in
  (* Stochastic DC initial state: refine every point against the shared
     mean factor, exactly as solve_dc does. *)
  let b_pts = Array.init size (fun i -> Stochastic_model.u_of_sample m p.pts.(i) 0.0) in
  point_dc_sweep ~options ~ms ~g_pts ~b_pts ~x_pts reports;
  let dc_sweeps, dc_fallbacks = settle_reports ~metrics ~agg reports in
  let sweeps = ref dc_sweeps and fallbacks = ref dc_fallbacks in
  transform_into p ~n ~domains:options.domains x_pts coefs;
  Response.record_step response ~step:0 ~coefs;
  (* Backward Euler per point: rhs_i = u_i(t) + C_i x_i / h, then either
     one triangular solve with the point's cached factor or a warm
     refinement against the mean stepping solver.  The state x_i carries
     across steps — the warm start is structural.  The drain profile is
     shared read-only; every write inside the fan-out lands in
     point-owned or chunk-owned buffers / slots. *)
  let msws_step =
    match mstep with
    | Some msp -> Array.init chunks (fun _ -> Linalg.Precond.create_ws msp)
    | None -> [||]
  in
  (* A point whose refinement broke down keeps its direct factor for the
     remaining steps instead of re-failing every step. *)
  let fallback_f = Array.make size None in
  let step_reports = Array.make size None in
  let tol = options.refine_tol and max_refine = options.refine_max in
  let ordering = options.ordering in
  for k = 1 to steps do
    let t = float_of_int k *. h in
    Stochastic_model.drain_profile_into m t drain_buf;
    (match fstep with
    | Some fstep ->
        (* opera-lint: race — drain_buf is read-only inside (axpy source) *)
        Util.Parallel.for_chunks ~domains:d size (fun ~chunk ~lo ~hi ->
            let u = ubuf.(chunk) and wk = work.(chunk) in
            for i = lo to hi - 1 do
              Array.blit static_pts.(i) 0 u 0 n;
              Linalg.Vec.axpy ~alpha:dcoef_pts.(i) drain_buf u;
              Linalg.Sparse.mul_vec_acc ~alpha:(1.0 /. h) c_pts.(i) x_pts.(i) u;
              Array.blit u 0 x_pts.(i) 0 n;
              Linalg.Sparse_cholesky.solve_in_place_ws fstep.(i) ~work:wk x_pts.(i)
            done)
    | None ->
        let msp = Option.get mstep in
        (* opera-lint: race — drain_buf is read-only inside (axpy source); x_pts / step_reports / fallback_f writes land in per-point slots disjoint across chunks *)
        Util.Parallel.for_chunks ~domains:d size (fun ~chunk ~lo ~hi ->
            let u = ubuf.(chunk) and wk = work.(chunk) in
            for i = lo to hi - 1 do
              Array.blit static_pts.(i) 0 u 0 n;
              Linalg.Vec.axpy ~alpha:dcoef_pts.(i) drain_buf u;
              Linalg.Sparse.mul_vec_acc ~alpha:(1.0 /. h) c_pts.(i) x_pts.(i) u;
              match fallback_f.(i) with
              | Some fi ->
                  Array.blit u 0 x_pts.(i) 0 n;
                  Linalg.Sparse_cholesky.solve_in_place_ws fi ~work:wk x_pts.(i)
              | None ->
                  let r =
                    refine_point ~warm:true ~ms:msp ~msws:msws_step.(chunk) ~ordering ~tol
                      ~max_refine ~g:a_pts.(i) ~b:u ~resid:wk x_pts.(i)
                  in
                  step_reports.(i) <- Some r;
                  let _, fb = r in
                  if Option.is_some fb then fallback_f.(i) <- fb
            done);
        let s, f = settle_reports ~metrics ~agg step_reports in
        sweeps := !sweeps + s;
        fallbacks := !fallbacks + f;
        Array.fill step_reports 0 size None);
    Util.Metrics.span metrics "st.transform_s" (fun () ->
        transform_into p ~n ~domains:options.domains x_pts coefs);
    Response.record_step response ~step:k ~coefs
  done;
  let step_seconds = Util.Timer.elapsed_s t_steps in
  Util.Metrics.observe metrics "st.step_s" step_seconds;
  if not (Linalg.Solve_report.agg_healthy agg) then
    Util.Log.warnf "st transient finished UNHEALTHY: %s" (Linalg.Solve_report.agg_summary agg);
  let nnz_point =
    Array.fold_left (fun acc g -> acc + Linalg.Sparse.nnz g) 0 g_pts
    + Array.fold_left (fun acc c -> acc + Linalg.Sparse.nnz c) 0 c_pts
    + Array.fold_left (fun acc a -> acc + Linalg.Sparse.nnz a) 0 a_pts
  in
  let nnz_factor =
    match fstep with
    | Some fs -> Array.fold_left (fun acc f -> acc + Linalg.Sparse_cholesky.nnz_l f) 0 fs
    | None ->
        Array.fold_left
          (fun acc -> function
            | Some f -> acc + Linalg.Sparse_cholesky.nnz_l f
            | None -> acc)
          (Linalg.Precond.stored_nnz (Option.get mstep))
          fallback_f
  in
  ( response,
    {
      points = size;
      factorizations = !factorizations + !fallbacks;
      refine_sweeps = !sweeps;
      nnz_point;
      nnz_factor;
      select_seconds;
      factor_seconds;
      step_seconds;
      health = agg;
    } )
