type config = {
  order : int;
  h : float;
  steps : int;
  mc_samples : int;
  seed : int64;
  solver : Galerkin.solver;
  ordering : Linalg.Ordering.kind;
  probes : int array;
  domains : int;  (* Util.Parallel.resolve convention: 0 = OPERA_DOMAINS *)
  policy : Galerkin.policy;  (* convergence policy for iterative solves *)
  warm_start : bool;  (* seed per-step Krylov solves from the previous step *)
}

let default_config =
  {
    order = 2;
    h = 0.125e-9;
    steps = 40;
    mc_samples = 300;
    seed = 7L;
    solver = Galerkin.Mean_pcg { tol = 1e-10; max_iter = 500 };
    ordering = Linalg.Ordering.Nested_dissection;
    probes = [||];
    domains = 0;
    policy = Galerkin.Warn;
    warm_start = true;
  }

type outcome = {
  label : string;
  spec : Powergrid.Grid_spec.t;
  model : Stochastic_model.t;
  response : Response.t;
  galerkin_stats : Galerkin.stats;
  opera_seconds : float;
  mc : Monte_carlo.result;
  nominal : float array;
  report : Compare.report;
}

let nominal_transient (m : Stochastic_model.t) ~h ~steps =
  let n = m.Stochastic_model.n in
  let g = Powergrid.Mna.g_total m.Stochastic_model.mna in
  let c = Powergrid.Mna.c_total m.Stochastic_model.mna in
  let out = Array.make ((steps + 1) * n) 0.0 in
  let inject t u = Powergrid.Mna.inject_into m.Stochastic_model.mna t u in
  let fdc = Linalg.Sparse_cholesky.factor g in
  let u0 = Powergrid.Mna.inject m.Stochastic_model.mna 0.0 in
  let x0 = Linalg.Sparse_cholesky.solve fdc u0 in
  Array.blit x0 0 out 0 n;
  let cfg = Powergrid.Transient.default_config ~h ~steps in
  Powergrid.Transient.run cfg ~g ~c ~inject ~x0 ~on_step:(fun k _t x ->
      Array.blit x 0 out (k * n) n);
  out

let solve_opera config model =
  let options =
    { Galerkin.default_options with
      Galerkin.solver = config.solver; ordering = config.ordering; probes = config.probes;
      domains = config.domains; policy = config.policy; warm_start = config.warm_start }
  in
  let t0 = Util.Timer.start () in
  let response, stats = Galerkin.solve_transient ~options model ~h:config.h ~steps:config.steps in
  (response, stats, Util.Timer.elapsed_s t0)

let probes_for config spec =
  if Array.length config.probes > 0 then config.probes
  else [| Powergrid.Grid_gen.center_node spec |]

let build_model ?tp config spec vm =
  let circuit = Powergrid.Grid_gen.generate spec in
  Stochastic_model.build ~order:config.order ?tp vm ~vdd:spec.Powergrid.Grid_spec.vdd circuit

(* Everything downstream of the expanded model: the Galerkin solve, the
   Monte-Carlo baseline, the deterministic reference and the comparison
   report.  [run_grid] is this after a one-model "batch" of setup work;
   the scenario engine calls the same pieces with models (and cached
   artifacts) it prepared itself. *)
let evaluate ~label config spec model =
  let response, galerkin_stats, opera_seconds = solve_opera config model in
  let mc_config =
    {
      Monte_carlo.samples = config.mc_samples;
      seed = config.seed;
      h = config.h;
      steps = config.steps;
      ordering = config.ordering;
      probes = config.probes;
      sampler = Monte_carlo.Pseudo;
    }
  in
  let mc = Monte_carlo.run model mc_config in
  let nominal = nominal_transient model ~h:config.h ~steps:config.steps in
  let report =
    Compare.compare ~response ~mc ~nominal ~vdd:spec.Powergrid.Grid_spec.vdd ~opera_seconds
  in
  { label; spec; model; response; galerkin_stats; opera_seconds; mc; nominal; report }

let run_grid ?label config spec vm =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "%dn" (Powergrid.Grid_spec.node_count spec)
  in
  let config = { config with probes = probes_for config spec } in
  let model = build_model config spec vm in
  evaluate ~label config spec model
