(** One-call experiment orchestration used by the CLI, the examples and the
    benchmark harness. *)

type config = {
  order : int;
  h : float;
  steps : int;
  mc_samples : int;
  seed : int64;
  solver : Galerkin.solver;
  ordering : Linalg.Ordering.kind;
  probes : int array;
  domains : int;
      (** domain count for the block-parallel Galerkin paths
          ({!Util.Parallel.resolve} convention: 0 = [OPERA_DOMAINS]) *)
  policy : Galerkin.policy;
      (** what an iterative solve does when it exhausts [max_iter]
          without converging ({!Galerkin.policy}; default [Warn]) *)
  warm_start : bool;
      (** seed per-step Krylov solves from the previous accepted step,
          linearly extrapolated; see {!Galerkin.options} (default on) *)
}

val default_config : config
(** Order-2 expansion, 1 ns clock sampled at h = 0.125 ns for 40 steps,
    300 MC samples, mean-block-preconditioned CG (the fastest accurate
    configuration; see the solver ablation bench), [Warn] policy,
    warm starting on. *)

type outcome = {
  label : string;
  spec : Powergrid.Grid_spec.t;
  model : Stochastic_model.t;
  response : Response.t;
  galerkin_stats : Galerkin.stats;
  opera_seconds : float;
  mc : Monte_carlo.result;
  nominal : float array;  (** deterministic trajectory, [(steps+1) * n] *)
  report : Compare.report;
}

val nominal_transient : Stochastic_model.t -> h:float -> steps:int -> float array
(** Variation-free transient of the grid (the paper's [mu0]). *)

val solve_opera :
  config -> Stochastic_model.t -> Response.t * Galerkin.stats * float
(** Galerkin solve only; returns (response, stats, wall seconds). *)

val probes_for : config -> Powergrid.Grid_spec.t -> int array
(** [config.probes] if non-empty, else the grid's center node. *)

val build_model :
  ?tp:(Polychaos.Basis.t -> Polychaos.Triple_product.t) ->
  config ->
  Powergrid.Grid_spec.t ->
  Varmodel.t ->
  Stochastic_model.t
(** Generate the grid and expand it into chaos form ([tp] is forwarded to
    {!Stochastic_model.build} — the artifact-store hook). *)

val evaluate :
  label:string -> config -> Powergrid.Grid_spec.t -> Stochastic_model.t -> outcome
(** Everything downstream of the expanded model: OPERA solve, Monte-Carlo
    baseline, nominal reference, comparison report.  [config.probes] must
    already be resolved (see {!probes_for}); {!run_grid} is
    [evaluate ~label config spec (build_model config spec vm)]. *)

val run_grid : ?label:string -> config -> Powergrid.Grid_spec.t -> Varmodel.t -> outcome
(** Full Table-1 pipeline for one grid: generate, expand, OPERA solve,
    Monte-Carlo baseline, nominal reference, comparison report.
    If [config.probes] is empty, the grid's center node is probed. *)
