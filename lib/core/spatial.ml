type t = {
  centers : (float * float) array;
  mode_weights : float array array;
  captured : float;
}

let region_centers (spec : Powergrid.Grid_spec.t) =
  let rx = spec.regions_x and ry = spec.regions_y in
  Array.init (rx * ry) (fun r ->
      let ix = r mod rx and iy = r / rx in
      ( (float_of_int ix +. 0.5) /. float_of_int rx,
        (float_of_int iy +. 0.5) /. float_of_int ry ))

let exponential_covariance ~sigma ~corr_length centers =
  if corr_length <= 0.0 then invalid_arg "Spatial: correlation length must be positive";
  let n = Array.length centers in
  Linalg.Dense.init n n (fun i j ->
      let xi, yi = centers.(i) and xj, yj = centers.(j) in
      let d = Float.hypot (xi -. xj) (yi -. yj) in
      sigma *. sigma *. exp (-.d /. corr_length))

let karhunen_loeve ~sigma ~corr_length ~centers ~energy =
  if energy <= 0.0 || energy > 1.0 then invalid_arg "Spatial: energy must lie in (0, 1]";
  let cov = exponential_covariance ~sigma ~corr_length centers in
  let values, vectors = Linalg.Eig.symmetric cov in
  let n = Array.length values in
  (* Eigenvalues come ascending; walk from the largest. *)
  let total = Array.fold_left (fun acc v -> acc +. Float.max 0.0 v) 0.0 values in
  let picked = ref [] in
  let acc = ref 0.0 in
  let m = ref 0 in
  while !acc < energy *. total && !m < n do
    let idx = n - 1 - !m in
    let lambda = Float.max 0.0 values.(idx) in
    acc := !acc +. lambda;
    picked := (lambda, Linalg.Dense.col vectors idx) :: !picked;
    incr m
  done;
  let mode_weights =
    List.rev !picked
    |> List.map (fun (lambda, phi) -> Array.map (fun p -> sqrt lambda *. p) phi)
    |> Array.of_list
  in
  { centers; mode_weights; captured = (if total > 0.0 then !acc /. total else 1.0) }

let modes t = Array.length t.mode_weights

let field_variance t r =
  Array.fold_left (fun acc w -> acc +. (w.(r) *. w.(r))) 0.0 t.mode_weights

let sample_field t rng =
  let n = Array.length t.centers in
  let field = Array.make n 0.0 in
  Array.iter
    (fun w ->
      let xi = Prob.Rng.gaussian rng in
      for r = 0 to n - 1 do
        field.(r) <- field.(r) +. (w.(r) *. xi)
      done)
    t.mode_weights;
  field

(* Wire conductance of each chip region as its own matrix. *)
let region_wire_matrices (spec : Powergrid.Grid_spec.t) (circuit : Powergrid.Circuit.t) regions =
  let n = circuit.num_nodes in
  let builders = Array.init regions (fun _ -> Linalg.Sparse_builder.create ~nrows:n ~ncols:n ()) in
  Array.iter
    (fun (r : Powergrid.Circuit.resistor) ->
      match r.rkind with
      | Powergrid.Circuit.Metal | Powergrid.Circuit.Via ->
          let anchor = if r.rnode1 >= 0 then r.rnode1 else r.rnode2 in
          let region = Powergrid.Grid_gen.region_of_node spec anchor in
          let opt v = if v = Powergrid.Circuit.ground then None else Some v in
          Linalg.Sparse_builder.stamp_conductance builders.(region) (opt r.rnode1) (opt r.rnode2)
            (1.0 /. r.ohms)
      | Powergrid.Circuit.Package -> ())
    circuit.resistors;
  Array.map Linalg.Sparse_builder.to_csc builders

let build_model ?(order = 2) t ~(base : Varmodel.t) ~spec circuit =
  if base.family <> Varmodel.Gaussian then
    invalid_arg "Spatial.build_model: the KL field is Gaussian; use a Gaussian base model";
  let mna = Powergrid.Mna.assemble circuit in
  let n = mna.Powergrid.Mna.n in
  let regions = Array.length t.centers in
  let nmodes = modes t in
  let dim = nmodes + 1 in
  let basis = Polychaos.Basis.isotropic Polychaos.Family.hermite ~dim ~order in
  let tp = Polychaos.Triple_product.create basis in
  let rank d =
    let idx = Array.make dim 0 in
    idx.(d) <- 1;
    Polychaos.Basis.rank_of_index basis idx
  in
  let region_g = region_wire_matrices spec circuit regions in
  let ga = Powergrid.Mna.g_total mna in
  let ca = Powergrid.Mna.c_total mna in
  (* Mode m: G-perturbation sum_r w_m(r) G_r (relative variation). *)
  let mode_term m =
    let w = t.mode_weights.(m) in
    let acc = ref (Linalg.Sparse.zero ~nrows:n ~ncols:n) in
    Array.iteri
      (fun r g_r -> if Util.Floats.nonzero w.(r) then acc := Linalg.Sparse.axpy ~alpha:w.(r) g_r !acc)
      region_g;
    !acc
  in
  let g_terms =
    (0, ga)
    :: List.init nmodes (fun m -> (rank m, mode_term m))
    |> List.filter (fun (_, mat) -> Linalg.Sparse.nnz mat > 0)
  in
  let rl = rank nmodes in
  let gate_term = Linalg.Sparse.scale base.sigma_l mna.Powergrid.Mna.c_gate in
  let c_terms =
    (0, ca) :: (if Linalg.Sparse.nnz gate_term > 0 then [ (rl, gate_term) ] else [])
  in
  {
    Stochastic_model.basis;
    tp;
    n;
    g_terms;
    c_terms;
    u_static_terms = [ (0, Array.copy mna.Powergrid.Mna.u_pad) ];
    u_drain_coefs = [ (0, 1.0); (rl, base.current_sensitivity) ];
    mna;
    vdd = spec.Powergrid.Grid_spec.vdd;
  }
