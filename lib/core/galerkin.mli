(** Galerkin projection of the stochastic MNA system — the heart of OPERA.

    With the response expanded as [x(t, xi) = sum_k a_k(t) psi_k(xi)] and
    the truncation error forced orthogonal to every basis function
    (Eq. (10)), one deterministic block system appears:

    [Gt + s Ct] in block form, block (j, k) = [sum_i E(psi_i psi_j psi_k) A_i]

    — exactly the paper's Eq. (19)–(22), kept in its symmetric
    (norm-weighted) form so the augmented matrix stays SPD and sparse
    Cholesky applies.  Assembly is a Kronecker sum
    [sum_i T_i (x) A_i] over the model's matrix terms. *)

type solver =
  | Direct  (** sparse Cholesky of the augmented matrix *)
  | Mean_pcg of { tol : float; max_iter : int }
      (** conjugate gradient on the augmented system, preconditioned by the
          factorized nominal block — the "iterative block solver" route of
          Sec. 5.2 *)
  | Matrix_free_pcg of { tol : float; max_iter : int }
      (** same mean-block PCG, but the augmented operator is never
          assembled: the matvec is {!Galerkin_op}'s block-structured
          apply straight from the per-rank matrices and the sparse
          triple-product coupling.  Memory drops from
          [O((N+1)^2 nnz)] to [O(sum_r nnz_r + (N+1) n)], and the matvec
          parallelizes across chaos blocks (see [options.domains]). *)
  | St of { tol : float; max_refine : int; candidates : int; seed : int64 }
      (** stochastic-testing collocation ({!St_solver}): the gPC system
          is solved at [N+1] selected testing points as fully decoupled
          deterministic systems and the coefficients recovered through a
          dense [(N+1) x (N+1)] transform — no coupled Krylov iteration
          at all.  [tol]/[max_refine] control the DC refinement against
          the one mean-matrix factorization; [candidates]/[seed] shape
          the point-selection pool (see {!St_solver.select_points}).
          Every point is refined to [tol] or repaired by its own
          factorization, so [options.policy] is never consulted; the
          transient supports backward Euler only ([Invalid_argument]
          under a trapezoidal scheme). *)

val default_st : solver
(** [St] with the stock knobs: tol 1e-10, 100 refinement sweeps,
    tensor-grid candidates, seed 1 — the CLI's [--solver st]. *)

type policy =
  | Fail  (** raise {!Solver_diverged} on the first unconverged solve *)
  | Warn
      (** log the report to stderr, keep the approximate iterate, and
          mark the run unhealthy in [stats.health] (the default) *)
  | Fallback
      (** re-solve with the assembled direct factor (built lazily on
          first failure) so the returned vector always meets the
          tolerance; every repair is counted in [stats.health] *)

exception Solver_diverged of string * Linalg.Solve_report.t
(** Raised under the [Fail] policy: the context string names the solve
    ("dc solve (mean-pcg)", "transient step 17 (matrix-free-pcg)", ...)
    and the report carries iterations / relative residual / wall time. *)

type options = {
  solver : solver;
  ordering : Linalg.Ordering.kind;
  precond : Linalg.Precond.kind;
      (** mean-block backend for the iterative solvers: the exact
          nominal Cholesky factor ([Cholesky], default — historical
          behavior bitwise), [Ic0], [Amg] (near-linear setup and apply,
          the 10^5+-node backend), or [Auto] (resolves on [n] at
          {!Linalg.Precond.auto_threshold}).  Ignored by [Direct].
          Every backend keeps solves bitwise-identical across
          [domains]. *)
  probes : int array;  (** nodes whose full PCE trajectory is kept *)
  scheme : Powergrid.Transient.scheme;
      (** time integration of the augmented system; backward Euler is the
          paper's fixed-step choice, trapezoidal halves the local error at
          the same cost structure *)
  domains : int;
      (** domain count for the block-parallel paths (matrix-free matvec,
          mean-block preconditioner); {!Util.Parallel.resolve} convention:
          [0] defers to the [OPERA_DOMAINS] environment variable, default
          sequential.  Results are bitwise identical for any value. *)
  policy : policy;
      (** what to do when an iterative solve exhausts [max_iter] without
          reaching the tolerance *)
  metrics : Util.Metrics.t;
      (** registry receiving the per-phase counters and timers
          ([galerkin.assemble_s], [galerkin.factor_s], [galerkin.step_s],
          [galerkin.precond_s], [galerkin.pcg_iterations], the per-solve
          [galerkin.pcg_iters_per_solve] histogram, ...); defaults to
          {!Util.Metrics.global}.  Updated from the calling domain
          only. *)
  warm_start : bool;
      (** seed each transient step's Krylov solve from the previous
          accepted coefficients, linearly extrapolated ([2 a_k -
          a_{k-1}]) once two steps exist; [false] restarts every step
          from a zero guess.  Changes only where the iteration starts —
          the convergence test is unchanged, so results agree with cold
          starts within solver tolerance while using (typically far)
          fewer iterations per step.  Ignored by the [Direct] solver. *)
}

val default_options : options
(** Direct solver, nested-dissection ordering, exact-Cholesky mean
    block, no probes, backward Euler, domains from the environment,
    [Warn] policy, global metrics, warm starting on. *)

type stats = {
  aug_dim : int;  (** (N+1) * n *)
  nnz_aug : int;
      (** stored nonzeros of the stepping operator: the assembled
          [Gt + Ct/h] for [Direct]/[Mean_pcg], the matrix-free block
          data ([sum_r nnz_r] + coupling entries) for
          [Matrix_free_pcg], the per-point realizations summed for
          [St] — the peak-memory figure of each route *)
  nnz_factor : int;
      (** nonzeros of its Cholesky factor ([Direct]; summed over the
          per-point factors for [St]) *)
  assemble_seconds : float;
  factor_seconds : float;
  step_seconds : float;
  pcg_iterations : int;
      (** total over all steps (iterative solvers only; mirrors
          [health.iterations]) *)
  health : Linalg.Solve_report.aggregate;
      (** solver-health ledger of the run: solves, iterations,
          unconverged count, fallbacks taken, worst relative residual,
          accumulated iterative wall time.  Check
          {!Linalg.Solve_report.agg_healthy} before trusting the
          response of an iterative run under the [Warn] policy. *)
}

val assemble : Stochastic_model.t -> (int * Linalg.Sparse.t) list -> Linalg.Sparse.t
(** [assemble m terms] = [sum_i kron (coupling_matrix tp i) A_i]. *)

val assemble_g : Stochastic_model.t -> Linalg.Sparse.t

val assemble_c : Stochastic_model.t -> Linalg.Sparse.t

val rhs_into :
  Stochastic_model.t -> drain_buf:Linalg.Vec.t -> float -> Linalg.Vec.t -> unit
(** Augmented excitation [Ut(t)]: block j receives
    [norm_sq j * (u_static_j + drain_coef_j * i(t))]. *)

val block_ordering : ?kind:Linalg.Ordering.kind -> Stochastic_model.t -> Linalg.Perm.t
(** The fill-reducing elimination order of the augmented system: the grid's
    node connectivity is ordered once (on [n] nodes, default nested
    dissection), then each node's [N+1] chaos coefficients are kept
    adjacent.  Exposed so batch engines can compute (or cache) one symbolic
    ordering and reuse it across every factorization that shares the
    grid pattern. *)

val solve_dc : ?options:options -> Stochastic_model.t -> Linalg.Vec.t
(** Stochastic DC solution (augmented coefficients at t = 0). *)

val solve_transient :
  ?options:options -> Stochastic_model.t -> h:float -> steps:int -> Response.t * stats
(** Backward-Euler transient of the augmented system starting from the
    stochastic DC state; one factorization, [steps] solves.  Under the
    [St] solver the same response comes from [N+1] decoupled per-point
    transients (one small factorization per point, reused across every
    step) with the coefficients recovered each step — [stats] then maps
    the ST ledger: [pcg_iterations] counts DC refinement sweeps and
    [factor_seconds]/[nnz_factor] cover the per-point factors. *)
