(** Galerkin projection of the stochastic MNA system — the heart of OPERA.

    With the response expanded as [x(t, xi) = sum_k a_k(t) psi_k(xi)] and
    the truncation error forced orthogonal to every basis function
    (Eq. (10)), one deterministic block system appears:

    [Gt + s Ct] in block form, block (j, k) = [sum_i E(psi_i psi_j psi_k) A_i]

    — exactly the paper's Eq. (19)–(22), kept in its symmetric
    (norm-weighted) form so the augmented matrix stays SPD and sparse
    Cholesky applies.  Assembly is a Kronecker sum
    [sum_i T_i (x) A_i] over the model's matrix terms. *)

type solver =
  | Direct  (** sparse Cholesky of the augmented matrix *)
  | Mean_pcg of { tol : float; max_iter : int }
      (** conjugate gradient on the augmented system, preconditioned by the
          factorized nominal block — the "iterative block solver" route of
          Sec. 5.2 *)
  | Matrix_free_pcg of { tol : float; max_iter : int }
      (** same mean-block PCG, but the augmented operator is never
          assembled: the matvec is {!Galerkin_op}'s block-structured
          apply straight from the per-rank matrices and the sparse
          triple-product coupling.  Memory drops from
          [O((N+1)^2 nnz)] to [O(sum_r nnz_r + (N+1) n)], and the matvec
          parallelizes across chaos blocks (see [options.domains]). *)

type options = {
  solver : solver;
  ordering : Linalg.Ordering.kind;
  probes : int array;  (** nodes whose full PCE trajectory is kept *)
  scheme : Powergrid.Transient.scheme;
      (** time integration of the augmented system; backward Euler is the
          paper's fixed-step choice, trapezoidal halves the local error at
          the same cost structure *)
  domains : int;
      (** domain count for the block-parallel paths (matrix-free matvec,
          mean-block preconditioner); {!Util.Parallel.resolve} convention:
          [0] defers to the [OPERA_DOMAINS] environment variable, default
          sequential.  Results are bitwise identical for any value. *)
}

val default_options : options
(** Direct solver, nested-dissection ordering, no probes, backward
    Euler, domains from the environment. *)

type stats = {
  aug_dim : int;  (** (N+1) * n *)
  nnz_aug : int;
      (** stored nonzeros of the stepping operator: the assembled
          [Gt + Ct/h] for [Direct]/[Mean_pcg], the matrix-free block
          data ([sum_r nnz_r] + coupling entries) for
          [Matrix_free_pcg] — the peak-memory figure of each route *)
  nnz_factor : int;  (** nonzeros of its Cholesky factor (Direct only) *)
  assemble_seconds : float;
  factor_seconds : float;
  step_seconds : float;
  pcg_iterations : int;  (** total over all steps (Mean_pcg only) *)
}

val assemble : Stochastic_model.t -> (int * Linalg.Sparse.t) list -> Linalg.Sparse.t
(** [assemble m terms] = [sum_i kron (coupling_matrix tp i) A_i]. *)

val assemble_g : Stochastic_model.t -> Linalg.Sparse.t

val assemble_c : Stochastic_model.t -> Linalg.Sparse.t

val rhs_into :
  Stochastic_model.t -> drain_buf:Linalg.Vec.t -> float -> Linalg.Vec.t -> unit
(** Augmented excitation [Ut(t)]: block j receives
    [norm_sq j * (u_static_j + drain_coef_j * i(t))]. *)

val solve_dc : ?options:options -> Stochastic_model.t -> Linalg.Vec.t
(** Stochastic DC solution (augmented coefficients at t = 0). *)

val solve_transient :
  ?options:options -> Stochastic_model.t -> h:float -> steps:int -> Response.t * stats
(** Backward-Euler transient of the augmented system starting from the
    stochastic DC state; one factorization, [steps] solves. *)
