(** Matrix-free stochastic Galerkin operator.

    The coupled system of Eq. (19)–(22) is the Kronecker sum
    [At = sum_r T_r (x) A_r] with [T_r.(j).(k) = E(psi_r psi_j psi_k)].
    {!Galerkin.assemble} materializes it — an [O((N+1)^2 nnz)] memory
    wall that caps the chaos order and variable count.  This module
    applies the same operator directly from the per-rank [n x n] matrices
    and the sparse triple-product coupling:

    [y_j = sum_r sum_k T_r(j,k) A_r x_k]

    — block [j] of the output touches only the coupling entries
    [(r, j, k)] with [E(psi_r psi_j psi_k) <> 0], each one an
    allocation-free [Sparse.mul_vec_acc_off] on flat block slices.
    Storage is [O(sum_r nnz(A_r) + coupling entries)], independent of the
    Kronecker fill; no [Sparse.kron] is ever called.

    Output blocks are disjoint, so the apply parallelizes over chaos
    blocks with {!Util.Parallel} — results are bitwise identical for any
    domain count because each block's summation order never changes. *)

type t

val of_terms :
  ?domains:int -> tp:Polychaos.Triple_product.t -> n:int -> (int * Linalg.Sparse.t) list -> t
(** [of_terms ~tp ~n terms] builds the operator [sum_r T_r (x) A_r] from
    the per-rank matrices [terms = [(r, A_r); ...]] (each [n x n]; ranks
    must be valid for [tp]'s basis).  Repeated ranks are merged.
    [domains] follows the {!Util.Parallel.resolve} convention ([0] =
    [OPERA_DOMAINS] environment variable, default sequential). *)

val gt : ?domains:int -> Stochastic_model.t -> t
(** The stochastic conductance operator [Gt] of a model. *)

val ct : ?domains:int -> Stochastic_model.t -> t
(** The stochastic capacitance operator [Ct]. *)

val gt_plus_ct : ?domains:int -> ct_scale:float -> Stochastic_model.t -> t
(** [gt_plus_ct ~ct_scale m] is the transient stepping operator
    [Gt + ct_scale * Ct] (backward Euler: [ct_scale = 1/h]), with the
    per-rank matrices merged once so each rank costs one coupling scan. *)

val apply_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit
(** [apply_into op x y] sets [y <- At x] without allocating.  [x] and [y]
    must both have length {!dim} and be distinct arrays. *)

val apply : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Allocating variant of {!apply_into}. *)

val dim : t -> int
(** [(N+1) * n], the augmented dimension. *)

val block_dim : t -> int
(** [n], the per-block (grid) dimension. *)

val blocks : t -> int
(** [N+1], the number of chaos blocks. *)

val nnz : t -> int
(** Stored nonzeros: [sum_r nnz(A_r)] over the merged per-rank matrices
    plus one entry per nonzero coupling coefficient — the matrix-free
    peak-memory figure to set against [Sparse.nnz] of the assembled
    augmented operator. *)

val coupling_nnz : t -> int
(** Number of nonzero [E(psi_r psi_j psi_k)] coefficients stored. *)

val domains : t -> int
(** The resolved domain count used by {!apply_into}. *)

val with_domains : t -> int -> t
(** Same operator, different domain count (cheap; shares all tables). *)
