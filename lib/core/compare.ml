type report = {
  nodes : int;
  steps : int;
  avg_err_mean_pct : float;
  max_err_mean_pct : float;
  avg_err_std_pct : float;
  max_err_std_pct : float;
  three_sigma_pct_of_nominal_drop : float;
  mean_shift_pct_vdd : float;
  opera_seconds : float;
  mc_seconds : float;
  speedup : float;
}

let compare ~(response : Response.t) ~(mc : Monte_carlo.result) ~nominal ~vdd ~opera_seconds =
  if response.Response.n <> mc.Monte_carlo.n || response.Response.steps <> mc.Monte_carlo.steps
  then invalid_arg "Compare.compare: OPERA and MC shapes differ";
  let n = response.Response.n and steps = response.Response.steps in
  if Array.length nominal <> (steps + 1) * n then
    invalid_arg "Compare.compare: nominal trajectory shape mismatch";
  let sum_mean = ref 0.0 and max_mean = ref 0.0 and count_mean = ref 0 in
  let sum_std = ref 0.0 and max_std = ref 0.0 and count_std = ref 0 in
  let sum_ratio = ref 0.0 and count_ratio = ref 0 in
  let sum_shift = ref 0.0 and count_shift = ref 0 in
  let sigma_floor = 1e-7 *. vdd in
  let drop_floor = 0.005 *. vdd in
  for step = 1 to steps do
    let base = step * n in
    for node = 0 to n - 1 do
      let mu_op = response.Response.mean.(base + node) in
      let mu_mc = mc.Monte_carlo.mean.(base + node) in
      let sd_op = sqrt response.Response.variance.(base + node) in
      let sd_mc = sqrt mc.Monte_carlo.variance.(base + node) in
      let mu0 = nominal.(base + node) in
      (* Mean error relative to the MC mean voltage. *)
      if Float.abs mu_mc > 1e-12 then begin
        let e = 100.0 *. Float.abs (mu_op -. mu_mc) /. Float.abs mu_mc in
        sum_mean := !sum_mean +. e;
        if e > !max_mean then max_mean := e;
        incr count_mean
      end;
      (* Sigma error where MC resolves a sigma. *)
      if sd_mc > sigma_floor then begin
        let e = 100.0 *. Float.abs (sd_op -. sd_mc) /. sd_mc in
        sum_std := !sum_std +. e;
        if e > !max_std then max_std := e;
        incr count_std
      end;
      (* ±3sigma spread as % of the nominal drop, over meaningful drops. *)
      let drop0 = vdd -. mu0 in
      if drop0 > drop_floor then begin
        sum_ratio := !sum_ratio +. (100.0 *. 3.0 *. sd_op /. drop0);
        incr count_ratio
      end;
      sum_shift := !sum_shift +. (100.0 *. Float.abs (mu_op -. mu0) /. vdd);
      incr count_shift
    done
  done;
  let avg s c = if c = 0 then 0.0 else s /. float_of_int c in
  {
    nodes = n;
    steps;
    avg_err_mean_pct = avg !sum_mean !count_mean;
    max_err_mean_pct = !max_mean;
    avg_err_std_pct = avg !sum_std !count_std;
    max_err_std_pct = !max_std;
    three_sigma_pct_of_nominal_drop = avg !sum_ratio !count_ratio;
    mean_shift_pct_vdd = avg !sum_shift !count_shift;
    opera_seconds;
    mc_seconds = mc.Monte_carlo.elapsed_seconds;
    speedup = (if opera_seconds > 0.0 then mc.Monte_carlo.elapsed_seconds /. opera_seconds else 0.0);
  }

let header =
  [
    ("grid", Util.Table.Left);
    ("nodes", Util.Table.Right);
    ("avg%err mu", Util.Table.Right);
    ("max%err mu", Util.Table.Right);
    ("avg%err sigma", Util.Table.Right);
    ("max%err sigma", Util.Table.Right);
    ("+-3sigma (%mu0)", Util.Table.Right);
    ("mu-mu0 (%VDD)", Util.Table.Right);
    ("MC (s)", Util.Table.Right);
    ("OPERA (s)", Util.Table.Right);
    ("speedup", Util.Table.Right);
  ]

let row_strings label r =
  [
    label;
    string_of_int r.nodes;
    Printf.sprintf "%.4f" r.avg_err_mean_pct;
    Printf.sprintf "%.4f" r.max_err_mean_pct;
    Printf.sprintf "%.2f" r.avg_err_std_pct;
    Printf.sprintf "%.2f" r.max_err_std_pct;
    Printf.sprintf "+-%.0f" r.three_sigma_pct_of_nominal_drop;
    Printf.sprintf "%.4f" r.mean_shift_pct_vdd;
    Printf.sprintf "%.2f" r.mc_seconds;
    Printf.sprintf "%.2f" r.opera_seconds;
    Printf.sprintf "%.0fx" r.speedup;
  ]
