(** Static (DC / IR-drop) analysis. *)

val solve : Mna.t -> Linalg.Vec.t
(** Node voltages with all current sources at their t = 0 values. *)

val solve_at : Mna.t -> float -> Linalg.Vec.t
(** Node voltages with the current sources frozen at time [t]. *)

val solve_full : Mna.Full.system -> Linalg.Vec.t
(** DC solve of the full-MNA system (sparse LU); returns node voltages
    only, branch currents dropped. *)
