(** Parameters of a synthetic multi-layer mesh power grid.

    Stands in for the paper's proprietary industrial grids: a fine
    lower-layer mesh, progressively coarser upper layers stitched by vias,
    C4-style supply pads with package series resistance on the top layer,
    and clusters of current sources ("functional blocks") drawing
    clock-correlated random profiles on the bottom layer. *)

type t = {
  rows : int;  (** bottom-layer mesh rows *)
  cols : int;  (** bottom-layer mesh columns *)
  layers : int;  (** total mesh layers (>= 1) *)
  coarsening : int;  (** linear shrink factor per upper layer (>= 2) *)
  seg_res : float;  (** ohms per bottom-layer wire segment *)
  layer_res_scale : float;  (** per-layer multiplier (< 1: wider wires up top) *)
  via_res : float;  (** ohms per via *)
  pad_res : float;  (** package + bump series resistance per pad *)
  pad_pitch : int;  (** a pad every [pad_pitch] nodes along the top layer *)
  node_cap : float;  (** farads of load capacitance per bottom node *)
  gate_cap_fraction : float;  (** share of node_cap that is gate cap (paper: 0.4) *)
  vdd : float;
  block_count : int;  (** number of functional blocks *)
  block_size : int;  (** block footprint is block_size x block_size nodes *)
  block_peak : float;  (** peak current per block, amps *)
  clock_period : float;
  duty : float;  (** per-cycle switching probability *)
  sim_cycles : int;
  regions_x : int;  (** chip-region grid for intra-die models (Sec. 5.1) *)
  regions_y : int;
  seed : int64;  (** seeds the block activity profiles *)
}

val default : t
(** A ~1k-node grid drawing realistic currents with peak IR drop below
    10% of VDD, mirroring the paper's loading rule. *)

val with_size : t -> rows:int -> cols:int -> t

val scale_to_nodes : t -> int -> t
(** Pick [rows = cols] so that the total node count across layers is
    approximately the request, scaling block count and pad pitch along. *)

val node_count : t -> int
(** Total nodes over all layers. *)

val layer_dims : t -> int -> int * int
(** Rows and columns of a given layer (0 = bottom). *)

val layer_shrink : t -> int -> int
(** Exact integer [coarsening^l], saturated at the bottom-mesh side.
    (Float exponentiation rounds past 2^53, which silently corrupts node
    addressing on deep hierarchies; all layer-scale math goes through
    this.) *)

val describe : t -> string
