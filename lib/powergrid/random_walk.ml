type t = {
  (* per node: cumulative transition probabilities over neighbors, the
     absorption probability, the per-visit cost and the absorption award *)
  neighbors : int array array;
  cumprob : float array array;  (** same length as neighbors; ascending *)
  absorb_prob : float array;
  visit_cost : float array;
  award : float;
}

let max_steps_guard = 10_000_000

let prepare (a : Mna.t) ~time =
  let n = a.n in
  let g = Mna.g_total a in
  let { Linalg.Sparse.colptr; rowind; values; _ } = g in
  let pad_diag = Linalg.Sparse.diag a.g_pad in
  let drain = Linalg.Vec.create n in
  Mna.drain_into a time drain;
  let neighbors = Array.make n [||] in
  let cumprob = Array.make n [||] in
  let absorb_prob = Array.make n 0.0 in
  let visit_cost = Array.make n 0.0 in
  (* The award is the ideal pad voltage: u_pad = g_pad * VDD, so VDD =
     u_pad / g_pad at any pad node. Grids have a single VDD here. *)
  let award = ref 0.0 in
  for i = 0 to n - 1 do
    if pad_diag.(i) > 0.0 then award := a.u_pad.(i) /. pad_diag.(i)
  done;
  for j = 0 to n - 1 do
    let ns = ref [] and gs = ref [] and total = ref 0.0 in
    for k = colptr.(j) to colptr.(j + 1) - 1 do
      let i = rowind.(k) in
      if i = j then total := !total +. values.(k)
      else begin
        (* off-diagonal of a conductance stamp is -g *)
        ns := i :: !ns;
        gs := -.values.(k) :: !gs
      end
    done;
    let d = !total in
    if d <= 0.0 then invalid_arg "Random_walk.prepare: node with no conductance";
    let ns = Array.of_list (List.rev !ns) and gs = Array.of_list (List.rev !gs) in
    let cum = Array.make (Array.length gs) 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun k gk ->
        acc := !acc +. (gk /. d);
        cum.(k) <- !acc)
      gs;
    neighbors.(j) <- ns;
    cumprob.(j) <- cum;
    absorb_prob.(j) <- pad_diag.(j) /. d;
    (* drain.(j) is the (negative) injection; cost = drain / d *)
    visit_cost.(j) <- drain.(j) /. d
  done;
  (* Termination check: every node must reach a pad. *)
  let reachable = Array.make n false in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if absorb_prob.(i) > 0.0 then begin
      reachable.(i) <- true;
      Queue.add i queue
    end
  done;
  (* reverse reachability over the symmetric graph *)
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if not reachable.(u) then begin
          reachable.(u) <- true;
          Queue.add u queue
        end)
      neighbors.(v)
  done;
  if not (Array.for_all (fun r -> r) reachable) then
    invalid_arg "Random_walk.prepare: some nodes cannot reach a supply pad";
  { neighbors; cumprob; absorb_prob; visit_cost; award = !award }

let one_walk t rng start =
  let v = ref start in
  let gain = ref 0.0 in
  let steps = ref 0 in
  let running = ref true in
  while !running do
    incr steps;
    if !steps > max_steps_guard then failwith "Random_walk: walk exceeded step guard";
    gain := !gain +. t.visit_cost.(!v);
    let u = Prob.Rng.float rng in
    if u < t.absorb_prob.(!v) then begin
      gain := !gain +. t.award;
      running := false
    end
    else begin
      (* Rescale u into the neighbor range and binary-search the cdf. *)
      let u' = (u -. t.absorb_prob.(!v)) /. (1.0 -. t.absorb_prob.(!v)) in
      let cum = t.cumprob.(!v) in
      let m = Array.length cum in
      let total = cum.(m - 1) in
      let target = u' *. total in
      let lo = ref 0 and hi = ref (m - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cum.(mid) < target then lo := mid + 1 else hi := mid
      done;
      v := t.neighbors.(!v).(!lo)
    end
  done;
  !gain

let estimate t rng ~node ~walks =
  if walks <= 0 then invalid_arg "Random_walk.estimate: need at least one walk";
  if node < 0 || node >= Array.length t.absorb_prob then
    invalid_arg "Random_walk.estimate: node out of range";
  let acc = Prob.Stats.Online.create () in
  for _ = 1 to walks do
    Prob.Stats.Online.add acc (one_walk t rng node)
  done;
  let stderr = Prob.Stats.Online.std acc /. sqrt (float_of_int walks) in
  (Prob.Stats.Online.mean acc, stderr)
