(** Vectorless (pattern-independent) worst-case IR-drop bounds.

    Instead of simulating specific input vectors, bound the drop under
    *current constraints* (the estimation problem of the paper's refs
    [2], [7], [9]): each block current lies in [0, local budget] and the
    total current is capped by a global (power) budget.  For a fixed node
    the drop is linear in the currents, so the worst case is the classic
    fractional-knapsack: allocate the global budget to the largest
    transfer impedances first.

    One linear solve yields the full impedance row of a node (G is
    symmetric, so [Z_v = G^-1 e_v] gives [Z_vi] for all sources i). *)

type t

val prepare : Mna.t -> t
(** Factor the conductance matrix once; each subsequent node query is a
    single triangular solve. *)

val worst_case_drop :
  t ->
  node:int ->
  local_budgets:(int * float) array ->
  total_budget:float ->
  float * (int * float) list
(** [worst_case_drop t ~node ~local_budgets ~total_budget] maximizes the
    drop at [node] over current allocations: source [i] draws at most its
    local budget (amps), the sum draws at most [total_budget].  Returns
    the worst-case drop (volts) and the optimal allocation (source node,
    amps), largest contributors first. *)

val transfer_impedance : t -> node:int -> Linalg.Vec.t
(** The impedance row [Z_v]: entry [i] is the voltage drop at [node] per
    ampere drawn at node [i]. *)
