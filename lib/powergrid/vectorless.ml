type t = { factor : Linalg.Sparse_cholesky.t; n : int }

let prepare (a : Mna.t) =
  let g = Mna.g_total a in
  { factor = Linalg.Sparse_cholesky.factor ~ordering:Linalg.Ordering.Nested_dissection g;
    n = a.n }

let transfer_impedance t ~node =
  if node < 0 || node >= t.n then invalid_arg "Vectorless.transfer_impedance: node out of range";
  let e = Linalg.Vec.create t.n in
  e.(node) <- 1.0;
  (* G symmetric: column node of G^-1 = row node. *)
  Linalg.Sparse_cholesky.solve t.factor e

let worst_case_drop t ~node ~local_budgets ~total_budget =
  if total_budget < 0.0 then invalid_arg "Vectorless.worst_case_drop: negative total budget";
  Array.iter
    (fun (i, b) ->
      if i < 0 || i >= t.n then invalid_arg "Vectorless.worst_case_drop: source out of range";
      if b < 0.0 then invalid_arg "Vectorless.worst_case_drop: negative local budget")
    local_budgets;
  let z = transfer_impedance t ~node in
  (* Fractional knapsack: spend the global budget on the largest Z first. *)
  let ranked = Array.copy local_budgets in
  Array.sort (fun (i, _) (j, _) -> compare z.(j) z.(i)) ranked;
  let remaining = ref total_budget in
  let drop = ref 0.0 in
  let allocation = ref [] in
  Array.iter
    (fun (i, budget) ->
      if !remaining > 0.0 && z.(i) > 0.0 then begin
        let take = Float.min budget !remaining in
        if take > 0.0 then begin
          drop := !drop +. (z.(i) *. take);
          remaining := !remaining -. take;
          allocation := (i, take) :: !allocation
        end
      end)
    ranked;
  (!drop, List.rev !allocation)
