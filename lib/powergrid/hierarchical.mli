(** Hierarchical (macromodel / Schur-complement) grid analysis — the
    approach of Zhao, Panda, Sapatnekar et al. (the paper's ref. [5]).

    The grid is partitioned into blocks; each block's internal nodes are
    eliminated exactly, leaving a dense "port macromodel" (its Schur
    complement) on the block boundary.  A small global system over the
    ports is solved, then internal voltages are recovered block by block.
    Useful when many solves share the same partition (what-if analysis,
    per-block updates), and as an independent check of the flat solver. *)

type t

val partition_by_stripes : n:int -> blocks:int -> int array
(** Simple contiguous-index partition: node [i] belongs to block
    [i * blocks / n]. Adequate for the generator's row-major meshes. *)

val build : Linalg.Sparse.t -> part:int array -> t
(** [build a ~part] factorizes the SPD matrix [a] hierarchically using the
    given node-to-block map.  Boundary (port) nodes are those with a
    neighbor in another block.  Raises if a block's internal matrix is not
    SPD. *)

val ports : t -> int
(** Number of boundary nodes in the global port system. *)

val internal_blocks : t -> int

val solve : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Solve [A x = b] through the macromodels: block forward-eliminations,
    one dense port solve, block back-substitutions. *)
