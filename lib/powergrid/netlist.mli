(** SPICE-subset netlist reader/writer.

    Supported cards (case-insensitive, [*] comments, [.end] terminator):

    - [R<name> n1 n2 value [KIND=metal|via|package]]
    - [C<name> n1 n2 value [KIND=gate|fixed]]
    - [L<name> n1 n2 value]
    - [I<name> n1 n2 value] — DC current from n1 to n2
    - [I<name> n1 n2 PULSE(base peak delay rise fall width period)]
    - [I<name> n1 n2 PWL(t1 v1 t2 v2 ...)]
    - [V<name> n+ 0 value [RS=ohms]] — supply pad with series resistance

    Values accept SI suffixes [f p n u m k meg g t].  Node [0] (or [gnd])
    is ground; other names are assigned indices in order of appearance.
    Current sources must have one terminal grounded (power-drain model). *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

type parsed = { circuit : Circuit.t; node_names : string array }

val parse_string : string -> parsed

val parse_file : string -> parsed

val to_string : ?title:string -> Circuit.t -> string
(** Render a circuit back to netlist text (nodes named [n<i>]).
    PWL waveforms are emitted exactly; [random_activity] profiles
    round-trip because they are PWL underneath. *)

val write_file : string -> ?title:string -> Circuit.t -> unit

val parse_value : string -> float
(** Parse one SI-suffixed number (exposed for tests). Raises [Failure]. *)
