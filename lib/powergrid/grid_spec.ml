type t = {
  rows : int;
  cols : int;
  layers : int;
  coarsening : int;
  seg_res : float;
  layer_res_scale : float;
  via_res : float;
  pad_res : float;
  pad_pitch : int;
  node_cap : float;
  gate_cap_fraction : float;
  vdd : float;
  block_count : int;
  block_size : int;
  block_peak : float;
  clock_period : float;
  duty : float;
  sim_cycles : int;
  regions_x : int;
  regions_y : int;
  seed : int64;
}

let default =
  {
    rows = 30;
    cols = 30;
    layers = 2;
    coarsening = 3;
    seg_res = 0.5;
    layer_res_scale = 0.5;
    via_res = 0.2;
    pad_res = 0.15;
    pad_pitch = 4;
    node_cap = 1.2e-12;
    gate_cap_fraction = 0.4;
    vdd = 1.2;
    block_count = 6;
    block_size = 4;
    block_peak = 0.3;
    clock_period = 1e-9;
    duty = 0.55;
    sim_cycles = 4;
    regions_x = 2;
    regions_y = 1;
    seed = 42L;
  }

let layer_shrink spec l =
  (* Exact integer coarsening^l.  Float [( ** )] loses exactness past 2^53
     and [int_of_float] of the rounded value then misaddresses every node
     above the bad layer; saturating at the mesh side is both exact and
     overflow-free (layers past the floor are 2x2 anyway). *)
  let cap = Int.max 2 (Int.max spec.rows spec.cols) in
  let s = ref 1 in
  (try
     for _ = 1 to l do
       s := !s * spec.coarsening;
       if !s >= cap then raise Exit
     done
   with Exit -> s := cap);
  !s

let layer_dims spec l =
  if l < 0 || l >= spec.layers then invalid_arg "Grid_spec.layer_dims: layer out of range";
  let shrink = layer_shrink spec l in
  (Int.max 2 (spec.rows / shrink), Int.max 2 (spec.cols / shrink))

let node_count spec =
  let acc = ref 0 in
  for l = 0 to spec.layers - 1 do
    let r, c = layer_dims spec l in
    acc := !acc + (r * c)
  done;
  !acc

let with_size spec ~rows ~cols =
  if rows < 2 || cols < 2 then invalid_arg "Grid_spec.with_size: mesh needs at least 2x2";
  { spec with rows; cols }

let scale_to_nodes spec target =
  if target < 8 then invalid_arg "Grid_spec.scale_to_nodes: target too small";
  (* Nodes ~ rows*cols * (1 + 1/coarsening^2 + ...) ~ rows^2 * factor. *)
  let factor = ref 0.0 in
  for l = 0 to spec.layers - 1 do
    let shrink = float_of_int spec.coarsening ** float_of_int l in
    factor := !factor +. (1.0 /. (shrink *. shrink))
  done;
  let side = int_of_float (Float.round (sqrt (float_of_int target /. !factor))) in
  let side = Int.max 4 side in
  (* Keep block loading proportional to area so the peak drop stays in the
     sub-10%-VDD regime of the paper. *)
  let area_ratio = float_of_int (side * side) /. float_of_int (spec.rows * spec.cols) in
  let blocks = Int.max 2 (int_of_float (Float.round (float_of_int spec.block_count *. area_ratio))) in
  { spec with rows = side; cols = side; block_count = blocks }

let describe spec =
  Printf.sprintf "%dx%d x%d layers (%d nodes), %d blocks, %d pads-pitch, VDD=%.2f"
    spec.rows spec.cols spec.layers (node_count spec) spec.block_count spec.pad_pitch spec.vdd
