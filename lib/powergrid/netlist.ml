exception Parse_error of int * string

type parsed = { circuit : Circuit.t; node_names : string array }

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then failwith "Netlist.parse_value: empty token";
  (* Split the longest numeric prefix from the suffix. *)
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '+' || c = '-' || c = 'e' in
  let n = String.length s in
  let rec prefix_end i =
    if i >= n then i
    else if is_num s.[i] then
      (* 'e' only counts as numeric when followed by a digit or sign *)
      if s.[i] = 'e' && not (i + 1 < n && (is_num s.[i + 1] || s.[i + 1] = '+' || s.[i + 1] = '-'))
      then i
      else prefix_end (i + 1)
    else i
  in
  let cut = prefix_end 0 in
  if cut = 0 then failwith (Printf.sprintf "Netlist.parse_value: %S is not a number" s);
  let base =
    match float_of_string_opt (String.sub s 0 cut) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Netlist.parse_value: %S is not a number" s)
  in
  let suffix = String.sub s cut (n - cut) in
  let multiplier =
    match suffix with
    | "" -> 1.0
    | "f" -> 1e-15
    | "p" -> 1e-12
    | "n" -> 1e-9
    | "u" -> 1e-6
    | "m" -> 1e-3
    | "k" -> 1e3
    | "meg" -> 1e6
    | "g" -> 1e9
    | "t" -> 1e12
    | _ ->
        (* Trailing unit letters like "9k" vs "9kohm": accept a few units. *)
        if suffix = "ohm" || suffix = "ohms" || suffix = "v" || suffix = "a" || suffix = "s" then 1.0
        else failwith (Printf.sprintf "Netlist.parse_value: unknown suffix %S" suffix)
  in
  base *. multiplier

(* Tokenize a card, keeping parenthesized groups together:
   "I1 n1 0 PULSE(0 1m 0 1n 1n 2n 4n)" ->
   ["I1"; "n1"; "0"; "PULSE(0 1m 0 1n 1n 2n 4n)"] *)
let tokenize line =
  let n = String.length line in
  let tokens = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = line.[i] in
    if c = '(' then begin
      incr depth;
      Buffer.add_char buf c
    end
    else if c = ')' then begin
      decr depth;
      Buffer.add_char buf c
    end
    else if (c = ' ' || c = '\t') && !depth = 0 then flush ()
    else Buffer.add_char buf c
  done;
  flush ();
  List.rev !tokens

let parse_paren_group lineno token =
  (* "PULSE(a b c)" -> ("pulse", [a; b; c]) *)
  match String.index_opt token '(' with
  | None -> raise (Parse_error (lineno, "expected FUNC(...) waveform"))
  | Some open_pos ->
      let name = String.lowercase_ascii (String.sub token 0 open_pos) in
      let close = String.rindex token ')' in
      let inner = String.sub token (open_pos + 1) (close - open_pos - 1) in
      let args =
        String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) inner)
        |> List.filter (fun s -> s <> "")
      in
      (name, args)

let parse_string text =
  let node_table = Hashtbl.create 64 in
  let node_names = ref [] in
  let next_node = ref 0 in
  let node_of lineno tok =
    let t = String.lowercase_ascii tok in
    if t = "0" || t = "gnd" then Circuit.ground
    else
      match Hashtbl.find_opt node_table t with
      | Some id -> id
      | None ->
          let id = !next_node in
          incr next_node;
          Hashtbl.replace node_table t id;
          node_names := tok :: !node_names;
          ignore lineno;
          id
  in
  let value lineno tok =
    try parse_value tok with Failure msg -> raise (Parse_error (lineno, msg))
  in
  let resistors = ref [] and capacitors = ref [] in
  let isources = ref [] and vsources = ref [] in
  let inductors = ref [] in
  let keyword_arg tokens key =
    List.find_map
      (fun tok ->
        let t = String.lowercase_ascii tok in
        let prefix = key ^ "=" in
        if String.length t > String.length prefix && String.sub t 0 (String.length prefix) = prefix
        then Some (String.sub t (String.length prefix) (String.length t - String.length prefix))
        else None)
      tokens
  in
  let lines = String.split_on_char '\n' text in
  let ended = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if (not !ended) && line <> "" && line.[0] <> '*' then begin
        if String.lowercase_ascii line = ".end" then ended := true
        else if line.[0] = '.' then () (* other dot-cards ignored *)
        else begin
          match tokenize line with
          | [] -> ()
          | name :: rest -> begin
              let kind_char = Char.lowercase_ascii name.[0] in
              match (kind_char, rest) with
              | 'r', n1 :: n2 :: v :: extra ->
                  let rkind =
                    match Option.map String.lowercase_ascii (keyword_arg extra "kind") with
                    | Some "via" -> Circuit.Via
                    | Some "package" -> Circuit.Package
                    | Some "metal" | None -> Circuit.Metal
                    | Some other ->
                        raise (Parse_error (lineno, "unknown resistor kind " ^ other))
                  in
                  resistors :=
                    { Circuit.rnode1 = node_of lineno n1; rnode2 = node_of lineno n2;
                      ohms = value lineno v; rkind }
                    :: !resistors
              | 'c', n1 :: n2 :: v :: extra ->
                  let ckind =
                    match Option.map String.lowercase_ascii (keyword_arg extra "kind") with
                    | Some "gate" -> Circuit.Gate
                    | Some "fixed" | None -> Circuit.Fixed
                    | Some other ->
                        raise (Parse_error (lineno, "unknown capacitor kind " ^ other))
                  in
                  capacitors :=
                    { Circuit.cnode1 = node_of lineno n1; cnode2 = node_of lineno n2;
                      farads = value lineno v; ckind }
                    :: !capacitors
              | 'l', n1 :: n2 :: v :: _ ->
                  inductors :=
                    { Circuit.lnode1 = node_of lineno n1; lnode2 = node_of lineno n2;
                      henries = value lineno v }
                    :: !inductors
              | 'i', n1 :: n2 :: spec :: extra ->
                  let a = node_of lineno n1 and b = node_of lineno n2 in
                  let inode, sign =
                    if b = Circuit.ground then (a, 1.0)
                    else if a = Circuit.ground then (b, -1.0)
                    else raise (Parse_error (lineno, "current source must touch ground"))
                  in
                  let wave =
                    if String.contains spec '(' then begin
                      match parse_paren_group lineno spec with
                      | "pulse", [ base; peak; delay; rise; fall; width; period ] ->
                          Waveform.Pulse
                            {
                              base = value lineno base;
                              peak = value lineno peak;
                              delay = value lineno delay;
                              rise = value lineno rise;
                              fall = value lineno fall;
                              width = value lineno width;
                              period = value lineno period;
                            }
                      | "pulse", _ -> raise (Parse_error (lineno, "PULSE needs 7 arguments"))
                      | "pwl", args ->
                          let rec pairs = function
                            | [] -> []
                            | t :: v :: rest -> (value lineno t, value lineno v) :: pairs rest
                            | [ _ ] -> raise (Parse_error (lineno, "PWL needs time/value pairs"))
                          in
                          Waveform.Pwl (Array.of_list (pairs args))
                      | other, _ -> raise (Parse_error (lineno, "unknown waveform " ^ other))
                    end
                    else Waveform.Dc (value lineno spec)
                  in
                  let wave = if Util.Floats.equal_exact sign 1.0 then wave else Waveform.scale sign wave in
                  let region =
                    match keyword_arg extra "region" with
                    | Some r -> int_of_string r
                    | None -> 0
                  in
                  isources := { Circuit.inode; wave; region } :: !isources
              | 'v', np :: nm :: v :: extra ->
                  let p = node_of lineno np and m = node_of lineno nm in
                  if m <> Circuit.ground then
                    raise (Parse_error (lineno, "supply pads must reference ground"));
                  let series_ohms =
                    match keyword_arg extra "rs" with Some r -> value lineno r | None -> 0.0
                  in
                  vsources :=
                    { Circuit.vnode = p; volts = value lineno v; series_ohms } :: !vsources
              | _ -> raise (Parse_error (lineno, "unrecognized card: " ^ line))
            end
        end
      end)
    lines;
  let circuit =
    try
      Circuit.make
        ~inductors:(List.rev !inductors)
        ~num_nodes:(Int.max 1 !next_node) ~resistors:(List.rev !resistors)
        ~capacitors:(List.rev !capacitors) ~isources:(List.rev !isources)
        ~vsources:(List.rev !vsources) ()
    with Invalid_argument msg -> raise (Parse_error (0, msg))
  in
  { circuit; node_names = Array.of_list (List.rev !node_names) }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let float_str v = Printf.sprintf "%.9g" v

let wave_str = function
  | Waveform.Dc v -> float_str v
  | Waveform.Pulse p ->
      Printf.sprintf "PULSE(%s %s %s %s %s %s %s)" (float_str p.base) (float_str p.peak)
        (float_str p.delay) (float_str p.rise) (float_str p.fall) (float_str p.width)
        (float_str p.period)
  | Waveform.Pwl points ->
      let body =
        Array.to_list points
        |> List.map (fun (t, v) -> Printf.sprintf "%s %s" (float_str t) (float_str v))
        |> String.concat " "
      in
      Printf.sprintf "PWL(%s)" body

let to_string ?(title = "generated by opera") (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  let node i = if i = Circuit.ground then "0" else Printf.sprintf "n%d" i in
  Array.iteri
    (fun k (r : Circuit.resistor) ->
      let kind =
        match r.rkind with Circuit.Metal -> "metal" | Circuit.Via -> "via" | Circuit.Package -> "package"
      in
      Buffer.add_string buf
        (Printf.sprintf "R%d %s %s %s KIND=%s\n" k (node r.rnode1) (node r.rnode2)
           (float_str r.ohms) kind))
    c.resistors;
  Array.iteri
    (fun k (cap : Circuit.capacitor) ->
      let kind = match cap.ckind with Circuit.Gate -> "gate" | Circuit.Fixed -> "fixed" in
      Buffer.add_string buf
        (Printf.sprintf "C%d %s %s %s KIND=%s\n" k (node cap.cnode1) (node cap.cnode2)
           (float_str cap.farads) kind))
    c.capacitors;
  Array.iteri
    (fun k (src : Circuit.current_source) ->
      Buffer.add_string buf
        (Printf.sprintf "I%d %s 0 %s REGION=%d\n" k (node src.inode) (wave_str src.wave)
           src.region))
    c.isources;
  Array.iteri
    (fun k (l : Circuit.inductor) ->
      Buffer.add_string buf
        (Printf.sprintf "L%d %s %s %s\n" k (node l.lnode1) (node l.lnode2) (float_str l.henries)))
    c.inductors;
  Array.iteri
    (fun k (v : Circuit.vsource) ->
      Buffer.add_string buf
        (Printf.sprintf "V%d %s 0 %s RS=%s\n" k (node v.vnode) (float_str v.volts)
           (float_str v.series_ohms)))
    c.vsources;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path ?title c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ?title c);
      close_out oc)
