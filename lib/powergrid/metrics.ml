let drops ~vdd v = Array.map (fun x -> vdd -. x) v

let max_drop ~vdd v =
  if Array.length v = 0 then invalid_arg "Metrics.max_drop: empty voltage vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) < v.(!best) then best := i
  done;
  (vdd -. v.(!best), !best)

let drop_percent ~vdd d = 100.0 *. d /. vdd

let worst_nodes ~vdd v k =
  let indexed = Array.mapi (fun i x -> (i, vdd -. x)) v in
  Array.sort (fun (_, d1) (_, d2) -> compare d2 d1) indexed;
  Array.to_list (Array.sub indexed 0 (Int.min k (Array.length indexed)))
