(** Modified nodal analysis assembly.

    Supply pads (ideal source + series resistance) are Norton-transformed:
    a conductance [1/Rs] to ground plus a current injection [VDD/Rs], which
    keeps the nodal matrix symmetric positive definite.  The conductance and
    capacitance matrices are returned *split by physical origin* so the
    variation model can perturb each part with its own random variable:

    - [g_wire]: metal + via conductances (vary with xiW, xiT -> xiG)
    - [g_pad]:  pad Norton conductances (package; nominally fixed)
    - [c_gate]: gate capacitance (varies with xiL)
    - [c_fixed]: diffusion/wire capacitance (nominal)

    Ideal pads ([series_ohms = 0]) cannot be Norton-transformed; use
    {!assemble_full} which keeps branch currents as extra unknowns (solved
    with sparse LU since the system is then indefinite). *)

type t = {
  n : int;  (** number of node unknowns *)
  g_wire : Linalg.Sparse.t;
  g_pad : Linalg.Sparse.t;
  c_gate : Linalg.Sparse.t;
  c_fixed : Linalg.Sparse.t;
  u_pad : Linalg.Vec.t;  (** Norton pad injection [G_pad * VDD] *)
  isources : Circuit.current_source array;
}

val assemble : Circuit.t -> t
(** Raises [Invalid_argument] if a pad has zero series resistance
    (use {!assemble_full} for that). *)

val g_total : t -> Linalg.Sparse.t

val c_total : t -> Linalg.Sparse.t

val drain_into : t -> float -> Linalg.Vec.t -> unit
(** [drain_into a t u] adds the block drain currents at time [t] into [u]
    with their MNA sign (current leaving a node is negative injection). *)

val inject : t -> float -> Linalg.Vec.t
(** Full right-hand side [u(t) = u_pad + drains(t)]. *)

val inject_into : t -> float -> Linalg.Vec.t -> unit
(** Allocation-free version of {!inject}; overwrites the argument. *)

(** Full MNA with explicit voltage-source branch currents. *)
module Full : sig
  type system = {
    dim : int;  (** nodes + vsource branches *)
    nodes : int;
    a : Linalg.Sparse.t;  (** [G] block plus incidence rows/columns *)
    c : Linalg.Sparse.t;  (** capacitance, zero on branch rows *)
    rhs : float -> Linalg.Vec.t;
  }

  val assemble : Circuit.t -> system
  (** Handles pads with any series resistance, including 0 (the series
      resistance is stamped into the branch row), and inductors (one
      branch-current unknown each, with [-L] on the branch row of the
      [c] matrix). *)
end
