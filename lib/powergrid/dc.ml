let solve_at a t =
  let g = Mna.g_total a in
  let f = Linalg.Sparse_cholesky.factor g in
  Linalg.Sparse_cholesky.solve f (Mna.inject a t)

let solve a = solve_at a 0.0

let solve_full (sys : Mna.Full.system) =
  let f = Linalg.Sparse_lu.factor sys.a in
  let x = Linalg.Sparse_lu.solve f (sys.rhs 0.0) in
  Array.sub x 0 sys.nodes
