(** SVG heat maps of per-node quantities over the bottom grid layer
    (IR-drop maps, sigma maps) for reports and debugging. *)

val render :
  Grid_spec.t ->
  values:Linalg.Vec.t ->
  ?title:string ->
  ?unit_label:string ->
  unit ->
  string
(** [render spec ~values ()] draws the bottom-layer mesh as colored cells
    (cool blue = low, warm red = high, per-map normalization) with a
    legend.  [values] is indexed by global node id; only bottom-layer
    nodes are drawn.  Returns the SVG document. *)

val save :
  string ->
  Grid_spec.t ->
  values:Linalg.Vec.t ->
  ?title:string ->
  ?unit_label:string ->
  unit ->
  unit
